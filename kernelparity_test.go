package mrskyline_test

import (
	"fmt"
	"testing"

	mrskyline "mrskyline"
)

// TestKernelCountParity pins the exact DominanceTests of every algorithm
// on fixed workloads. The values were captured with the scalar
// tuple-at-a-time window before the columnar block kernel replaced it:
// the block kernel must classify exactly the same tuple pairs — including
// scans a dominator cuts short mid-block — so any drift here means the
// kernels no longer agree pair for pair, even if the skyline itself is
// still correct. Skyline cardinality is pinned alongside as a sanity
// anchor.
func TestKernelCountParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep runs every algorithm; skipped in -short mode")
	}
	type golden struct {
		tests int64
		size  int
	}
	want := map[string]golden{
		"independent/MR-GPMRS/bnl":     {25609, 88},
		"independent/MR-GPMRS/sfs":     {23083, 88},
		"independent/MR-GPSRS/bnl":     {16111, 88},
		"independent/MR-GPSRS/sfs":     {14013, 88},
		"independent/Hybrid/bnl":       {16111, 88},
		"independent/Hybrid/sfs":       {14013, 88},
		"independent/MR-BNL/bnl":       {20716, 88},
		"independent/MR-BNL/sfs":       {20716, 88},
		"independent/MR-SFS/bnl":       {18458, 88},
		"independent/MR-SFS/sfs":       {18458, 88},
		"independent/MR-Angle/bnl":     {15604, 88},
		"independent/MR-Angle/sfs":     {15604, 88},
		"independent/SKY-MR/bnl":       {9754, 88},
		"independent/SKY-MR/sfs":       {9754, 88},
		"independent/MR-Bitmap/bnl":    {6000, 88},
		"independent/MR-Bitmap/sfs":    {6000, 88},
		"anticorrelated/MR-GPMRS/bnl":  {177711, 551},
		"anticorrelated/MR-GPMRS/sfs":  {173716, 551},
		"anticorrelated/MR-GPSRS/bnl":  {112135, 551},
		"anticorrelated/MR-GPSRS/sfs":  {109494, 551},
		"anticorrelated/Hybrid/bnl":    {112135, 551},
		"anticorrelated/Hybrid/sfs":    {109494, 551},
		"anticorrelated/MR-BNL/bnl":    {98548, 551},
		"anticorrelated/MR-BNL/sfs":    {98548, 551},
		"anticorrelated/MR-SFS/bnl":    {95951, 551},
		"anticorrelated/MR-SFS/sfs":    {95951, 551},
		"anticorrelated/MR-Angle/bnl":  {242746, 551},
		"anticorrelated/MR-Angle/sfs":  {242746, 551},
		"anticorrelated/SKY-MR/bnl":    {32007, 551},
		"anticorrelated/SKY-MR/sfs":    {32007, 551},
		"anticorrelated/MR-Bitmap/bnl": {6000, 551},
		"anticorrelated/MR-Bitmap/sfs": {6000, 551},
		"correlated/MR-GPMRS/bnl":      {3658, 4},
		"correlated/MR-GPMRS/sfs":      {2828, 4},
		"correlated/MR-GPSRS/bnl":      {3349, 4},
		"correlated/MR-GPSRS/sfs":      {2542, 4},
		"correlated/Hybrid/bnl":        {3349, 4},
		"correlated/Hybrid/sfs":        {2542, 4},
		"correlated/MR-BNL/bnl":        {10847, 4},
		"correlated/MR-BNL/sfs":        {10847, 4},
		"correlated/MR-SFS/bnl":        {9000, 4},
		"correlated/MR-SFS/sfs":        {9000, 4},
		"correlated/MR-Angle/bnl":      {2602, 4},
		"correlated/MR-Angle/sfs":      {2602, 4},
		"correlated/SKY-MR/bnl":        {2335, 4},
		"correlated/SKY-MR/sfs":        {2335, 4},
		"correlated/MR-Bitmap/bnl":     {6000, 4},
		"correlated/MR-Bitmap/sfs":     {6000, 4},
	}
	for _, dist := range []string{"independent", "anticorrelated", "correlated"} {
		data, err := mrskyline.Generate(dist, 1500, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range mrskyline.Algorithms() {
			for _, kern := range []string{"bnl", "sfs"} {
				key := fmt.Sprintf("%s/%s/%s", dist, algo, kern)
				res, err := mrskyline.Compute(data, mrskyline.Options{Algorithm: algo, Nodes: 4, Kernel: kern})
				if err != nil {
					t.Errorf("%s: %v", key, err)
					continue
				}
				g, ok := want[key]
				if !ok {
					t.Errorf("%s: no golden recorded (new algorithm? capture its counts)", key)
					continue
				}
				if res.Stats.DominanceTests != g.tests || res.Stats.SkylineSize != g.size {
					t.Errorf("%s: tests=%d size=%d, want tests=%d size=%d",
						key, res.Stats.DominanceTests, res.Stats.SkylineSize, g.tests, g.size)
				}
			}
		}
	}
}
