// Hotels: the classic skyline motivating example — find hotels where no
// other hotel is simultaneously cheaper, closer to the beach AND better
// rated. Demonstrates mixed minimize/maximize dimensions and non-unit
// domains on real-world-looking data.
//
//	go run ./examples/hotels
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	mrskyline "mrskyline"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Synthesize a city's hotel market: price correlates inversely with
	// distance to the beach (close hotels charge more), ratings correlate
	// loosely with price.
	const n = 5000
	hotels := make([][]float64, n)
	names := make([]string, n)
	for i := range hotels {
		dist := 0.1 + rng.ExpFloat64()*3.0       // km to the beach
		base := 300/(1+dist) + 40                // closer → pricier
		price := base * (0.7 + rng.Float64()*.9) // nightly rate, EUR
		rating := 3 + rng.Float64()*2            // 3.0–5.0 stars
		if price > 200 {
			rating = 3.5 + rng.Float64()*1.5 // expensive places rate a bit better
		}
		hotels[i] = []float64{price, dist, rating}
		names[i] = fmt.Sprintf("hotel-%04d", i)
	}

	res, err := mrskyline.Compute(hotels, mrskyline.Options{
		Algorithm: mrskyline.Hybrid,
		// price ↓, distance ↓, rating ↑
		Maximize: []bool{false, false, true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d hotels, %d on the skyline — %s in %v\n\n",
		n, res.Stats.SkylineSize, res.Stats.Algorithm, res.Stats.Runtime)
	fmt.Println("no other hotel beats these on price, beach distance and rating at once:")
	fmt.Printf("%-12s  %8s  %8s  %6s\n", "hotel", "price", "beach", "stars")

	sky := res.Skyline
	sort.Slice(sky, func(i, j int) bool { return sky[i][0] < sky[j][0] })
	show := len(sky)
	if show > 12 {
		show = 12
	}
	for _, h := range sky[:show] {
		fmt.Printf("%-12s  %7.0f€  %6.2fkm  %5.1f★\n", nameOf(hotels, names, h), h[0], h[1], h[2])
	}
	if len(sky) > show {
		fmt.Printf("… and %d more\n", len(sky)-show)
	}
}

// nameOf recovers a hotel's name by value identity (fine for an example).
func nameOf(hotels [][]float64, names []string, h []float64) string {
	for i, row := range hotels {
		if row[0] == h[0] && row[1] == h[1] && row[2] == h[2] {
			return names[i]
		}
	}
	return "?"
}
