// Chaos: fault tolerance end to end — every task's first attempt is
// crashed, a storage node dies mid-experiment and is repaired, and the
// skyline still comes out exactly right. Demonstrates the engine's task
// retry, the task history, and DFS re-replication. This example drives the
// internal engine directly (the public API hides these knobs).
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/dfs"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func main() {
	clus, err := cluster.Uniform(5, 2)
	if err != nil {
		log.Fatal(err)
	}
	eng := mapreduce.NewEngine(clus)

	// Crash the first attempt of every single task.
	crashed := 0
	eng.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if attempt == 1 {
			crashed++
			return fmt.Errorf("chaos: %v task %d attempt %d killed", phase, taskID, attempt)
		}
		return nil
	}

	// Store the dataset in the simulated DFS, lose a storage node, repair.
	const card, d = 20_000, 3
	data := datagen.Generate(datagen.AntiCorrelated, card, d, 99)
	fsys, err := dfs.New(dfs.Config{BlockSize: 64 * 1024, Replication: 2, Nodes: clus.Nodes()})
	if err != nil {
		log.Fatal(err)
	}
	w, _ := fsys.Create("data.csv")
	if err := datagen.WriteCSV(w, data); err != nil {
		log.Fatal(err)
	}
	w.Close()

	if err := fsys.SetNodeDown("node2", true); err != nil {
		log.Fatal(err)
	}
	if err := fsys.ReReplicate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node2 lost; blocks re-replicated onto surviving nodes")

	// Run MR-GPMRS straight off the damaged-but-repaired file system while
	// every task crashes once.
	cfg := core.Config{
		Engine:       eng,
		NumReducers:  4,
		DecodeRecord: core.CSVRecordDecoder(d),
	}
	sky, stats, err := core.GPMRSFromInput(cfg,
		mapreduce.DFSLineInput{FS: fsys, Path: "data.csv"}, d, card)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the sequential oracle.
	want := skyline.Naive(data)
	if !tuple.EqualAsSet(sky, want) {
		log.Fatalf("skyline wrong under chaos: %d vs %d tuples", len(sky), len(want))
	}

	fmt.Printf("crashed %d first attempts — every task retried on another node\n", crashed)
	fmt.Printf("skyline: %d of %d tuples, verified against the sequential oracle\n", len(sky), card)
	fmt.Printf("grid: PPD %d, %d non-empty partitions, %d after pruning, %d groups\n",
		stats.PPD, stats.NonEmpty, stats.Surviving, stats.Groups)

	// Act two: the same computation under a seeded FaultPlan — random
	// crashes (errors and panics), straggler nodes masked by speculative
	// execution, corrupted shuffle fetches caught by checksums, and a whole
	// node dying mid-map-phase. The plan is fully deterministic: rerun with
	// the same seed and the schedule replays bit-for-bit.
	clus2, err := cluster.Uniform(5, 2)
	if err != nil {
		log.Fatal(err)
	}
	eng2 := mapreduce.NewEngine(clus2)
	eng2.Faults = &mapreduce.FaultPlan{
		Seed:          42,
		CrashRate:     0.1,
		StragglerRate: 0.2,
		CorruptRate:   0.2,
		NodeFailure:   &mapreduce.NodeFailure{Node: "node3", At: 150 * time.Millisecond},
		Speculative:   &mapreduce.SpeculativeConfig{},
	}
	sky2, stats2, err := core.GPMRS(core.Config{Engine: eng2, NumReducers: 4}, data)
	if err != nil {
		log.Fatal(err)
	}
	if !tuple.EqualAsSet(sky2, want) {
		log.Fatalf("skyline wrong under fault plan: %d vs %d tuples", len(sky2), len(want))
	}
	fmt.Printf("\nfault plan seed 42: skyline identical under %d task failures, "+
		"%d node failure(s), %d corrupted fetches, %d speculative launches (%d won)\n",
		stats2.TaskFailures, stats2.NodeFailures, stats2.ShuffleCorruptions,
		stats2.SpeculativeLaunched, stats2.SpeculativeWon)
}
