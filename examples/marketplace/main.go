// Marketplace: constrained and subspace skyline queries over a used-car
// marketplace — "best deals under €20k within 100km", and "best overall
// ignoring mileage". Demonstrates ComputeConstrained and ComputeSubspace.
//
//	go run ./examples/marketplace
package main

import (
	"fmt"
	"log"
	"math/rand"

	mrskyline "mrskyline"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// Listings: price (k€), mileage (1000 km), age (years), distance (km).
	// All minimized: a car is better when cheaper, fresher, newer, closer.
	const n = 15_000
	cars := make([][]float64, n)
	for i := range cars {
		age := rng.Float64() * 15
		mileage := age*14 + rng.Float64()*40
		price := 42 - 2.2*age - 0.08*mileage + rng.Float64()*6
		if price < 0.5 {
			price = 0.5 + rng.Float64()
		}
		cars[i] = []float64{price, mileage, age, rng.Float64() * 300}
	}

	// Query 1 — constrained skyline: budget of €20k, within 100 km.
	constraints := []mrskyline.Range{
		{Min: 0, Max: 20}, // price ≤ 20k€
		mrskyline.Unbounded(),
		mrskyline.Unbounded(),
		{Min: 0, Max: 100}, // distance ≤ 100km
	}
	res, err := mrskyline.ComputeConstrained(cars, constraints, mrskyline.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constrained skyline (≤ €20k, ≤ 100km): %d of %d cars, %s in %v\n",
		len(res.Skyline), n, res.Stats.Algorithm, res.Stats.Runtime)
	for i, car := range res.Skyline {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(res.Skyline)-5)
			break
		}
		fmt.Printf("  €%5.1fk  %5.0ftkm  %4.1fy  %3.0fkm away\n", car[0], car[1], car[2], car[3])
	}

	// Query 2 — subspace skyline: ignore mileage and distance, judge by
	// price and age alone.
	sub, err := mrskyline.ComputeSubspace(cars, []int{0, 2}, mrskyline.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubspace skyline (price × age only): %d cars\n", len(sub.Skyline))
	for i, car := range sub.Skyline {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(sub.Skyline)-5)
			break
		}
		fmt.Printf("  €%5.1fk  %4.1fy\n", car[0], car[1])
	}
}
