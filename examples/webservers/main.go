// Webservers: multi-criteria server selection across a fleet — minimize
// p99 latency, cost per million requests, and error rate. Compares the
// paper's two algorithms on the same workload and shows where each wins,
// mirroring the paper's "best scenarios for each proposed algorithm"
// discussion.
//
//	go run ./examples/webservers
package main

import (
	"fmt"
	"log"
	"math/rand"

	mrskyline "mrskyline"
)

func main() {
	// Two fleets with different performance trade-off structures:
	//  - "tuned": independent metrics → tiny skyline → MR-GPSRS regime.
	//  - "mixed": strongly anti-correlated metrics (fast servers are
	//    expensive and error-prone under load) → huge skyline → MR-GPMRS
	//    regime.
	for _, fleet := range []struct {
		name string
		gen  func(rng *rand.Rand) []float64
	}{
		{"tuned (independent metrics)", func(rng *rand.Rand) []float64 {
			return []float64{
				5 + rng.Float64()*95,  // p99 latency ms
				10 + rng.Float64()*40, // $/M requests
				rng.Float64() * 2,     // error %
			}
		}},
		{"mixed (anti-correlated metrics)", func(rng *rand.Rand) []float64 {
			speed := rng.Float64() // 0 slow … 1 fast
			return []float64{
				5 + (1-speed)*95 + rng.Float64()*5, // fast → low latency
				10 + speed*40 + rng.Float64()*4,    // fast → expensive
				speed*1.5 + rng.Float64()*0.5,      // fast → flakier
			}
		}},
	} {
		rng := rand.New(rand.NewSource(3))
		const n = 20_000
		servers := make([][]float64, n)
		for i := range servers {
			servers[i] = fleet.gen(rng)
		}

		fmt.Printf("== fleet: %s (%d servers) ==\n", fleet.name, n)
		for _, algo := range []mrskyline.Algorithm{mrskyline.GPSRS, mrskyline.GPMRS, mrskyline.Hybrid} {
			res, err := mrskyline.Compute(servers, mrskyline.Options{
				Algorithm: algo,
				Nodes:     8,
				Reducers:  8,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %6d skyline servers  %10v  (pruned %d→%d partitions)\n",
				res.Stats.Algorithm, res.Stats.SkylineSize, res.Stats.Runtime,
				res.Stats.NonEmpty, res.Stats.Surviving)
		}
		fmt.Println()
	}
}
