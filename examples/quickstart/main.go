// Quickstart: compute the skyline of a small synthetic dataset with the
// default algorithm (MR-GPMRS) and print what the MapReduce pipeline did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mrskyline "mrskyline"
)

func main() {
	// 10,000 anti-correlated points in [0,1)³ — the skyline-heavy regime
	// the paper's multi-reducer algorithm is built for. Smaller is better
	// on every dimension.
	data, err := mrskyline.Generate("anticorrelated", 10_000, 3, 42)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mrskyline.Compute(data, mrskyline.Options{})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Printf("input:     %d tuples, %d dimensions\n", len(data), len(data[0]))
	fmt.Printf("skyline:   %d tuples (%.1f%%)\n", s.SkylineSize, 100*float64(s.SkylineSize)/float64(len(data)))
	fmt.Printf("algorithm: %s in %v\n", s.Algorithm, s.Runtime)
	fmt.Printf("grid:      PPD %d → %d partitions, %d non-empty, %d after bitstring pruning\n",
		s.PPD, s.Partitions, s.NonEmpty, s.Surviving)
	fmt.Printf("groups:    %d independent partition groups across parallel reducers\n", s.Groups)
	fmt.Printf("work:      %d dominance tests, %d bytes shuffled\n", s.DominanceTests, s.ShuffleBytes)

	fmt.Println("\nfirst few skyline tuples:")
	for i, t := range res.Skyline {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(res.Skyline)-5)
			break
		}
		fmt.Printf("  (%.4f, %.4f, %.4f)\n", t[0], t[1], t[2])
	}
}
