// Housing: end-to-end CSV workflow — write a listings dataset to disk,
// read it back, and shortlist the Pareto-optimal homes (cheap, big, close
// to the city, new). Demonstrates the CSV helpers, four mixed-orientation
// dimensions, and run statistics.
//
//	go run ./examples/housing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	mrskyline "mrskyline"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Synthesize listings: price per m² falls with commute distance, and
	// bigger, newer places cost more — the anti-correlation that makes
	// housing shortlists long.
	const n = 10_000
	listings := make([][]float64, n)
	for i := range listings {
		commute := 5 + rng.Float64()*55 // minutes
		size := 35 + rng.Float64()*165  // m²
		age := rng.Float64() * 80       // years
		sqm := 8000 - commute*90 - age*15 + rng.Float64()*900
		price := sqm * size / 1000 // k€
		listings[i] = []float64{price, size, commute, age}
	}

	dir, err := os.MkdirTemp("", "mrskyline-housing")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "listings.csv")

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := mrskyline.WriteCSV(f, listings); err != nil {
		log.Fatal(err)
	}
	f.Close()

	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	data, err := mrskyline.ReadCSV(in)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mrskyline.Compute(data, mrskyline.Options{
		Algorithm: mrskyline.GPMRS,
		// price ↓, size ↑, commute ↓, age ↓
		Maximize: []bool{false, true, false, false},
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Printf("read %d listings from %s\n", len(data), path)
	fmt.Printf("Pareto-optimal shortlist: %d homes (%s, %v)\n",
		s.SkylineSize, s.Algorithm, s.Runtime)
	fmt.Printf("grid %d^4: %d non-empty partitions, %d after pruning, %d groups\n\n",
		s.PPD, s.NonEmpty, s.Surviving, s.Groups)

	fmt.Printf("%9s  %6s  %9s  %6s\n", "price k€", "m²", "commute", "age")
	for i, h := range res.Skyline {
		if i == 10 {
			fmt.Printf("… and %d more\n", len(res.Skyline)-10)
			break
		}
		fmt.Printf("%9.0f  %6.0f  %7.0fmin  %5.0fy\n", h[0], h[1], h[2], h[3])
	}
}
