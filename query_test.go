package mrskyline_test

import (
	"math"
	"testing"

	mrskyline "mrskyline"
)

func TestComputeConstrained(t *testing.T) {
	data := [][]float64{
		{0.1, 0.9}, // outside the price constraint below
		{0.4, 0.5},
		{0.5, 0.4},
		{0.6, 0.6}, // dominated by {0.5, 0.4} within the region
		{0.45, 0.45},
	}
	constraints := []mrskyline.Range{
		{Min: 0.3, Max: 0.7},
		mrskyline.Unbounded(),
	}
	res, err := mrskyline.ComputeConstrained(data, constraints, mrskyline.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.4, 0.5}, {0.5, 0.4}, {0.45, 0.45}}
	if !sameSet(res.Skyline, want) {
		t.Fatalf("constrained skyline = %v, want %v", res.Skyline, want)
	}
}

func TestComputeConstrainedExcludedDominatorRevealsTuples(t *testing.T) {
	// The defining property of the constrained skyline: a dominator outside
	// the constraint region does not suppress tuples inside it.
	data := [][]float64{
		{0.05, 0.05}, // dominates everything, but excluded below
		{0.5, 0.5},
	}
	constraints := []mrskyline.Range{{Min: 0.2, Max: 1}, {Min: 0.2, Max: 1}}
	res, err := mrskyline.ComputeConstrained(data, constraints, mrskyline.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(res.Skyline, [][]float64{{0.5, 0.5}}) {
		t.Fatalf("constrained skyline = %v", res.Skyline)
	}
}

func TestComputeConstrainedValidation(t *testing.T) {
	data := [][]float64{{1, 2}}
	if _, err := mrskyline.ComputeConstrained(data, []mrskyline.Range{mrskyline.Unbounded()}, mrskyline.Options{}); err == nil {
		t.Error("wrong constraint arity accepted")
	}
	if _, err := mrskyline.ComputeConstrained([][]float64{{1, 2}, {3}}, []mrskyline.Range{mrskyline.Unbounded(), mrskyline.Unbounded()}, mrskyline.Options{}); err == nil {
		t.Error("ragged data accepted")
	}
	// Missing constraints are an error even on empty data (the empty
	// fast path no longer skips validation).
	if _, err := mrskyline.ComputeConstrained(nil, nil, mrskyline.Options{}); err == nil {
		t.Error("nil constraints accepted on empty data")
	}
	// Empty data with well-formed constraints passes through.
	res, err := mrskyline.ComputeConstrained(nil, []mrskyline.Range{mrskyline.Unbounded()}, mrskyline.Options{})
	if err != nil || len(res.Skyline) != 0 {
		t.Errorf("empty constrained = %v, %v", res, err)
	}
	// Constraints filtering everything out yield an empty skyline.
	res, err = mrskyline.ComputeConstrained(data, []mrskyline.Range{{Min: 5, Max: 6}, mrskyline.Unbounded()}, mrskyline.Options{Nodes: 2})
	if err != nil || len(res.Skyline) != 0 {
		t.Errorf("all-filtered constrained = %v, %v", res, err)
	}
}

func TestUnbounded(t *testing.T) {
	r := mrskyline.Unbounded()
	if !math.IsInf(r.Min, -1) || !math.IsInf(r.Max, 1) {
		t.Errorf("Unbounded = %+v", r)
	}
}

func TestComputeSubspace(t *testing.T) {
	// In the full space all three are incomparable; projected onto dims
	// {0, 1}, the third is dominated by the first.
	data := [][]float64{
		{0.2, 0.3, 0.9},
		{0.9, 0.1, 0.1},
		{0.3, 0.4, 0.05},
	}
	res, err := mrskyline.ComputeSubspace(data, []int{0, 1}, mrskyline.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.2, 0.3}, {0.9, 0.1}}
	if !sameSet(res.Skyline, want) {
		t.Fatalf("subspace skyline = %v, want %v", res.Skyline, want)
	}
}

func TestComputeSubspaceReorder(t *testing.T) {
	data := [][]float64{{1, 2, 3}}
	res, err := mrskyline.ComputeSubspace(data, []int{2, 0}, mrskyline.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 1 || res.Skyline[0][0] != 3 || res.Skyline[0][1] != 1 {
		t.Fatalf("reordered projection = %v", res.Skyline)
	}
}

func TestComputeSubspaceValidation(t *testing.T) {
	data := [][]float64{{1, 2}}
	if _, err := mrskyline.ComputeSubspace(data, nil, mrskyline.Options{}); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := mrskyline.ComputeSubspace(data, []int{2}, mrskyline.Options{}); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if _, err := mrskyline.ComputeSubspace(data, []int{0, 0}, mrskyline.Options{}); err == nil {
		t.Error("duplicate dim accepted")
	}
	if _, err := mrskyline.ComputeSubspace([][]float64{{1, 2}, {3}}, []int{0}, mrskyline.Options{}); err == nil {
		t.Error("ragged data accepted")
	}
	res, err := mrskyline.ComputeSubspace(nil, []int{0}, mrskyline.Options{})
	if err != nil || len(res.Skyline) != 0 {
		t.Errorf("empty subspace = %v, %v", res, err)
	}
}

func TestComputeSubspaceAgainstNaive(t *testing.T) {
	data, _ := mrskyline.Generate("anticorrelated", 300, 5, 8)
	dims := []int{1, 3, 4}
	res, err := mrskyline.ComputeSubspace(data, dims, mrskyline.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	projected := make([][]float64, len(data))
	for i, row := range data {
		projected[i] = []float64{row[1], row[3], row[4]}
	}
	if !sameSet(res.Skyline, naive(projected, nil)) {
		t.Fatal("subspace skyline disagrees with reference")
	}
}
