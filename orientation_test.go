package mrskyline_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	mrskyline "mrskyline"
)

// TestOrientationDominates pins the public Dominates contract across
// orientations, including the edge cases the sign normalization must
// preserve: a maximize vector shorter than the tuples (missing
// dimensions minimize), an all-false vector (identity), and mismatched
// lengths (never dominates).
func TestOrientationDominates(t *testing.T) {
	cases := []struct {
		a, b     []float64
		maximize []bool
		want     bool
	}{
		{[]float64{1, 2}, []float64{2, 2}, nil, true},
		{[]float64{2, 2}, []float64{1, 2}, nil, false},
		{[]float64{1, 1}, []float64{1, 1}, nil, false},
		// Mixed orientation: dimension 0 minimizes, dimension 1 maximizes.
		{[]float64{1, 5}, []float64{2, 3}, []bool{false, true}, true},
		{[]float64{1, 3}, []float64{2, 5}, []bool{false, true}, false},
		{[]float64{1, 5}, []float64{1, 5}, []bool{false, true}, false},
		// All-false maximize behaves exactly like nil.
		{[]float64{1, 2}, []float64{2, 2}, []bool{false, false}, true},
		// Maximize shorter than the tuples: trailing dimensions minimize.
		{[]float64{5, 1, 1}, []float64{3, 1, 2}, []bool{true}, true},
		{[]float64{3, 1, 1}, []float64{5, 1, 1}, []bool{true}, false},
		// Length mismatch never dominates.
		{[]float64{1}, []float64{1, 2}, nil, false},
		// Zero values keep working under negation (-0.0 compares equal).
		{[]float64{0, 1}, []float64{0, 2}, []bool{true, false}, true},
	}
	for i, c := range cases {
		if got := mrskyline.Dominates(c.a, c.b, c.maximize); got != c.want {
			t.Errorf("case %d: Dominates(%v, %v, %v) = %v, want %v", i, c.a, c.b, c.maximize, got, c.want)
		}
		o := mrskyline.NewOrientation(c.maximize)
		if got := o.Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Orientation.Dominates(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestOrientationApply checks the sign-vector normalization: identity
// orientations return the row unchanged without copying, oriented
// applications negate exactly the maximized dimensions, and applying
// twice restores the original values.
func TestOrientationApply(t *testing.T) {
	id := mrskyline.NewOrientation([]bool{false, false})
	if !id.Identity() {
		t.Error("all-false maximize is not the identity orientation")
	}
	row := []float64{1, 2}
	if got := id.Apply(row); &got[0] != &row[0] {
		t.Error("identity Apply copied the row")
	}

	o := mrskyline.NewOrientation([]bool{true, false, true})
	if o.Identity() {
		t.Error("mixed orientation reported as identity")
	}
	in := []float64{1, 2, 3}
	once := o.Apply(in)
	if want := []float64{-1, 2, -3}; fmt.Sprint(once) != fmt.Sprint(want) {
		t.Errorf("Apply(%v) = %v, want %v", in, once, want)
	}
	if twice := o.Apply(once); fmt.Sprint(twice) != fmt.Sprint(in) {
		t.Errorf("Apply is not an involution: %v", twice)
	}
	if in[0] != 1 || once[0] != -1 {
		t.Error("Apply mutated its input")
	}
}

// TestMixedMinMaxSkyline is the regression test for the orientation
// refactor: a mixed min/max query must agree with the brute-force oracle
// under Dominates(maximize) and with a manually pre-negated
// all-minimize query, across every algorithm.
func TestMixedMinMaxSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const card, d = 300, 3
	maximize := []bool{false, true, true}
	data := make([][]float64, card)
	negated := make([][]float64, card)
	for i := range data {
		row := make([]float64, d)
		neg := make([]float64, d)
		for k := range row {
			row[k] = rng.Float64()
			neg[k] = row[k]
			if maximize[k] {
				neg[k] = -row[k]
			}
		}
		data[i] = row
		negated[i] = neg
	}

	// Brute-force oracle under the mixed orientation.
	var oracle [][]float64
	for i, a := range data {
		dominated := false
		for j, b := range data {
			if i != j && mrskyline.Dominates(b, a, maximize) {
				dominated = true
				break
			}
		}
		if !dominated {
			oracle = append(oracle, a)
		}
	}

	canon := func(rows [][]float64) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r)
		}
		sort.Strings(out)
		return out
	}
	wantSet := fmt.Sprint(canon(oracle))

	for _, algo := range mrskyline.Algorithms() {
		if algo == mrskyline.MRBitmap {
			continue // rejects continuous domains
		}
		opts := mrskyline.Options{Algorithm: algo, Nodes: 2, Maximize: maximize}
		res, err := mrskyline.Compute(data, opts)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := fmt.Sprint(canon(res.Skyline)); got != wantSet {
			t.Errorf("%s: mixed min/max skyline (%d tuples) disagrees with oracle (%d tuples)",
				algo, len(res.Skyline), len(oracle))
		}

		// The same query phrased as pre-negated minimization must select
		// the same tuples.
		resNeg, err := mrskyline.Compute(negated, mrskyline.Options{Algorithm: algo, Nodes: 2})
		if err != nil {
			t.Fatalf("%s (negated): %v", algo, err)
		}
		unneg := make([][]float64, len(resNeg.Skyline))
		for i, r := range resNeg.Skyline {
			row := make([]float64, len(r))
			for k := range r {
				row[k] = r[k]
				if maximize[k] {
					row[k] = -r[k]
				}
			}
			unneg[i] = row
		}
		if got := fmt.Sprint(canon(unneg)); got != wantSet {
			t.Errorf("%s: pre-negated minimization disagrees with Maximize query", algo)
		}
	}
}
