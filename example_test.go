package mrskyline_test

import (
	"fmt"
	"sort"

	mrskyline "mrskyline"
)

// Example computes the skyline of a small dataset: cheaper and closer is
// better, so only the Pareto-optimal rows survive.
func Example() {
	data := [][]float64{
		{100, 5}, // dominated by {80, 3}
		{80, 3},
		{60, 8},
		{90, 2},
		{70, 9}, // dominated by {60, 8}
	}
	res, err := mrskyline.Compute(data, mrskyline.Options{Nodes: 2, PPD: 2})
	if err != nil {
		panic(err)
	}
	sky := res.Skyline
	sort.Slice(sky, func(i, j int) bool { return sky[i][0] < sky[j][0] })
	for _, t := range sky {
		fmt.Println(t[0], t[1])
	}
	// Output:
	// 60 8
	// 80 3
	// 90 2
}

// ExampleCompute_maximize flips a dimension's orientation: minimize price,
// maximize rating.
func ExampleCompute_maximize() {
	data := [][]float64{
		{100, 4.5},
		{80, 4.0},
		{90, 3.0}, // dominated: pricier than 80 and worse rated
		{80, 4.5}, // dominates {100, 4.5} and {80, 4.0}
	}
	res, err := mrskyline.Compute(data, mrskyline.Options{
		Nodes:    2,
		PPD:      2,
		Maximize: []bool{false, true},
	})
	if err != nil {
		panic(err)
	}
	sky := res.Skyline
	sort.Slice(sky, func(i, j int) bool { return sky[i][0] < sky[j][0] })
	for _, t := range sky {
		fmt.Println(t[0], t[1])
	}
	// Output:
	// 80 4.5
}

// ExampleDominates shows the dominance test underlying every algorithm.
func ExampleDominates() {
	fmt.Println(mrskyline.Dominates([]float64{1, 2}, []float64{2, 2}, nil))
	fmt.Println(mrskyline.Dominates([]float64{1, 2}, []float64{2, 1}, nil))
	// Output:
	// true
	// false
}
