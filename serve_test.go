package mrskyline_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	mrskyline "mrskyline"
)

func newTestService(t *testing.T, cfg mrskyline.ServiceConfig) *mrskyline.Service {
	t.Helper()
	svc, err := mrskyline.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestServiceMatchesPackageLevel(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	data, err := mrskyline.Generate("independent", 400, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := mrskyline.Options{Algorithm: mrskyline.GPSRS}

	want, err := mrskyline.Compute(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Compute(context.Background(), data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got.Skyline, want.Skyline) {
		t.Errorf("service skyline disagrees with package-level Compute")
	}

	cons := []mrskyline.Range{{Min: 0.2, Max: 1}, mrskyline.Unbounded(), mrskyline.Unbounded()}
	wantC, err := mrskyline.ComputeConstrained(data, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := svc.ComputeConstrained(context.Background(), data, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(gotC.Skyline, wantC.Skyline) {
		t.Errorf("service constrained skyline disagrees with package level")
	}

	dims := []int{0, 2}
	wantS, err := mrskyline.ComputeSubspace(data, dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := svc.ComputeSubspace(context.Background(), data, dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(gotS.Skyline, wantS.Skyline) {
		t.Errorf("service subspace skyline disagrees with package level")
	}
}

// TestServiceConcurrentQueries fires 32 concurrent mixed queries at one
// service and requires all of them to succeed with correct results.
func TestServiceConcurrentQueries(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2, MaxInFlight: 4, MaxQueue: 64})
	data, err := mrskyline.Generate("correlated", 300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mrskyline.Compute(data, mrskyline.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				res, err := svc.Compute(context.Background(), data, mrskyline.Options{})
				if err == nil && !sameSet(res.Skyline, want.Skyline) {
					err = errors.New("wrong skyline under concurrency")
				}
				errs[i] = err
			case 1:
				unb := []mrskyline.Range{mrskyline.Unbounded(), mrskyline.Unbounded(), mrskyline.Unbounded()}
				res, err := svc.ComputeConstrained(context.Background(), data, unb, mrskyline.Options{})
				if err == nil && !sameSet(res.Skyline, want.Skyline) {
					err = errors.New("wrong constrained skyline under concurrency")
				}
				errs[i] = err
			default:
				_, errs[i] = svc.ComputeSubspace(context.Background(), data, []int{0, 1}, mrskyline.Options{})
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}

	st := svc.Stats()
	if st.Admitted < n {
		t.Errorf("admitted = %d, want ≥ %d", st.Admitted, n)
	}
	if st.InFlight != 0 || st.Queued != 0 || st.BusySlots != 0 {
		t.Errorf("service not idle after queries: %+v", st)
	}
}

func TestServiceTimeout(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2, QueryTimeout: time.Nanosecond})
	data, err := mrskyline.Generate("independent", 500, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compute(context.Background(), data, mrskyline.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timed-out query error = %v, want DeadlineExceeded", err)
	}
	if got := svc.Stats(); got.InFlight != 0 || got.Queued != 0 {
		t.Errorf("service not idle after timeout: %+v", got)
	}
}

func TestServiceOverload(t *testing.T) {
	// MaxQueue < 0 rejects whenever the single in-flight slot is busy.
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2, MaxInFlight: 1, MaxQueue: -1})
	data, err := mrskyline.Generate("anticorrelated", 8000, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := svc.Compute(context.Background(), data, mrskyline.Options{})
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := svc.Stats(); st.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first query never reached in-flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
	_, err = svc.Compute(context.Background(), [][]float64{{1, 2}}, mrskyline.Options{})
	if !errors.Is(err, mrskyline.ErrOverloaded) {
		t.Errorf("second query error = %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first query: %v", err)
	}
	if st := svc.Stats(); st.Rejected < 1 {
		t.Errorf("rejected = %d, want ≥ 1", st.Rejected)
	}
}

func TestServiceValidation(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	// Same contract as the package level: invalid arguments fail on empty
	// data too.
	if _, err := svc.Compute(context.Background(), nil, mrskyline.Options{Algorithm: "MR-Nope"}); err == nil {
		t.Error("unknown algorithm accepted on empty data")
	}
	if _, err := svc.ComputeConstrained(context.Background(), nil, nil, mrskyline.Options{}); err == nil {
		t.Error("nil constraints accepted on empty data")
	}
	if _, err := svc.ComputeSubspace(context.Background(), nil, []int{0, 0}, mrskyline.Options{}); err == nil {
		t.Error("duplicate dims accepted on empty data")
	}
	if _, err := mrskyline.NewService(mrskyline.ServiceConfig{Nodes: -3}); err == nil {
		t.Error("negative cluster shape accepted")
	}
}

func TestServiceMetricsJSON(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	if _, err := svc.Compute(context.Background(), [][]float64{{1, 2}, {2, 1}}, mrskyline.Options{}); err != nil {
		t.Fatal(err)
	}
	raw, err := svc.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "mr.queue.admitted" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("mr.queue.admitted missing from metrics JSON: %s", raw)
	}
}
