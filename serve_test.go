package mrskyline_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	mrskyline "mrskyline"
)

func newTestService(t *testing.T, cfg mrskyline.ServiceConfig) *mrskyline.Service {
	t.Helper()
	svc, err := mrskyline.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestServiceMatchesPackageLevel(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	data, err := mrskyline.Generate("independent", 400, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := mrskyline.Options{Algorithm: mrskyline.GPSRS}

	want, err := mrskyline.Compute(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Compute(context.Background(), data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(got.Skyline, want.Skyline) {
		t.Errorf("service skyline disagrees with package-level Compute")
	}

	cons := []mrskyline.Range{{Min: 0.2, Max: 1}, mrskyline.Unbounded(), mrskyline.Unbounded()}
	wantC, err := mrskyline.ComputeConstrained(data, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := svc.ComputeConstrained(context.Background(), data, cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(gotC.Skyline, wantC.Skyline) {
		t.Errorf("service constrained skyline disagrees with package level")
	}

	dims := []int{0, 2}
	wantS, err := mrskyline.ComputeSubspace(data, dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := svc.ComputeSubspace(context.Background(), data, dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(gotS.Skyline, wantS.Skyline) {
		t.Errorf("service subspace skyline disagrees with package level")
	}
}

// TestServiceConcurrentQueries fires 32 concurrent mixed queries at one
// service and requires all of them to succeed with correct results.
func TestServiceConcurrentQueries(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2, MaxInFlight: 4, MaxQueue: 64})
	data, err := mrskyline.Generate("correlated", 300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mrskyline.Compute(data, mrskyline.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				res, err := svc.Compute(context.Background(), data, mrskyline.Options{})
				if err == nil && !sameSet(res.Skyline, want.Skyline) {
					err = errors.New("wrong skyline under concurrency")
				}
				errs[i] = err
			case 1:
				unb := []mrskyline.Range{mrskyline.Unbounded(), mrskyline.Unbounded(), mrskyline.Unbounded()}
				res, err := svc.ComputeConstrained(context.Background(), data, unb, mrskyline.Options{})
				if err == nil && !sameSet(res.Skyline, want.Skyline) {
					err = errors.New("wrong constrained skyline under concurrency")
				}
				errs[i] = err
			default:
				_, errs[i] = svc.ComputeSubspace(context.Background(), data, []int{0, 1}, mrskyline.Options{})
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}

	st := svc.Stats()
	if st.Admitted < n {
		t.Errorf("admitted = %d, want ≥ %d", st.Admitted, n)
	}
	if st.InFlight != 0 || st.Queued != 0 || st.BusySlots != 0 {
		t.Errorf("service not idle after queries: %+v", st)
	}
}

func TestServiceTimeout(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2, QueryTimeout: time.Nanosecond})
	data, err := mrskyline.Generate("independent", 500, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compute(context.Background(), data, mrskyline.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timed-out query error = %v, want DeadlineExceeded", err)
	}
	if got := svc.Stats(); got.InFlight != 0 || got.Queued != 0 {
		t.Errorf("service not idle after timeout: %+v", got)
	}
}

// TestServiceExpiredContextBeforeFiltering is the regression for the
// serve-path deadline bug: the per-query deadline used to start only
// AFTER constraint filtering / subspace projection, so a caller context
// that was already expired still paid for the full dataset scan. The
// deadline now covers the filtering work too: an expired context must
// fail with its context error on every query path.
func TestServiceExpiredContextBeforeFiltering(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	data, err := mrskyline.Generate("independent", 2000, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before the call

	unb := []mrskyline.Range{mrskyline.Unbounded(), mrskyline.Unbounded(), mrskyline.Unbounded()}
	if _, err := svc.ComputeConstrained(ctx, data, unb, mrskyline.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ComputeConstrained with expired context = %v, want context.Canceled", err)
	}
	if _, err := svc.ComputeSubspace(ctx, data, []int{0, 2}, mrskyline.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ComputeSubspace with expired context = %v, want context.Canceled", err)
	}
	// An expired deadline surfaces as DeadlineExceeded likewise.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := svc.ComputeConstrained(dctx, data, unb, mrskyline.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ComputeConstrained with past deadline = %v, want DeadlineExceeded", err)
	}
	// Constraint filtering down to an empty set still honors the expired
	// context (the empty-result fast path must not mask it).
	none := []mrskyline.Range{{Min: 99, Max: 100}, mrskyline.Unbounded(), mrskyline.Unbounded()}
	if _, err := svc.ComputeConstrained(ctx, data, none, mrskyline.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ComputeConstrained(empty result) with expired context = %v, want context.Canceled", err)
	}
	// Validation errors still win over the context: bad arguments are
	// caller bugs regardless of deadline.
	if _, err := svc.ComputeSubspace(ctx, data, []int{0, 0}, mrskyline.Options{}); errors.Is(err, context.Canceled) {
		t.Error("duplicate-dims validation masked by expired context")
	}
}

func TestServiceOverload(t *testing.T) {
	// MaxQueue < 0 rejects whenever the single in-flight slot is busy.
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2, MaxInFlight: 1, MaxQueue: -1})
	data, err := mrskyline.Generate("anticorrelated", 8000, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := svc.Compute(context.Background(), data, mrskyline.Options{})
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := svc.Stats(); st.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first query never reached in-flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
	_, err = svc.Compute(context.Background(), [][]float64{{1, 2}}, mrskyline.Options{})
	if !errors.Is(err, mrskyline.ErrOverloaded) {
		t.Errorf("second query error = %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first query: %v", err)
	}
	if st := svc.Stats(); st.Rejected < 1 {
		t.Errorf("rejected = %d, want ≥ 1", st.Rejected)
	}
}

func TestServiceValidation(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	// Same contract as the package level: invalid arguments fail on empty
	// data too.
	if _, err := svc.Compute(context.Background(), nil, mrskyline.Options{Algorithm: "MR-Nope"}); err == nil {
		t.Error("unknown algorithm accepted on empty data")
	}
	if _, err := svc.ComputeConstrained(context.Background(), nil, nil, mrskyline.Options{}); err == nil {
		t.Error("nil constraints accepted on empty data")
	}
	if _, err := svc.ComputeSubspace(context.Background(), nil, []int{0, 0}, mrskyline.Options{}); err == nil {
		t.Error("duplicate dims accepted on empty data")
	}
	if _, err := mrskyline.NewService(mrskyline.ServiceConfig{Nodes: -3}); err == nil {
		t.Error("negative cluster shape accepted")
	}
}

func TestServiceMetricsJSON(t *testing.T) {
	svc := newTestService(t, mrskyline.ServiceConfig{Nodes: 2})
	if _, err := svc.Compute(context.Background(), [][]float64{{1, 2}, {2, 1}}, mrskyline.Options{}); err != nil {
		t.Fatal(err)
	}
	raw, err := svc.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "mr.queue.admitted" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("mr.queue.admitted missing from metrics JSON: %s", raw)
	}
}

// TestSpillConfigSharedAcrossFrontEnds: every front end routes the spill
// budget/dir pair through the same shared rule, so the same bad configs
// fail everywhere — they used to be three slightly different checks.
func TestSpillConfigSharedAcrossFrontEnds(t *testing.T) {
	bad := []struct {
		name   string
		budget int64
		dir    string
	}{
		{"negative budget", -1, ""},
		{"dir without budget", 0, t.TempDir()},
		{"missing dir", 1 << 20, "/no/such/dir/exists/here"},
	}
	for _, c := range bad {
		if _, err := mrskyline.NewService(mrskyline.ServiceConfig{SpillBudget: c.budget, SpillDir: c.dir}); err == nil {
			t.Errorf("NewService accepted %s", c.name)
		}
		opts := mrskyline.Options{SpillBudget: c.budget, SpillDir: c.dir}
		if _, err := mrskyline.Compute(nil, opts); err == nil {
			t.Errorf("Compute options accepted %s", c.name)
		}
	}
	// Budget without dir is fine everywhere (the system temp dir is the
	// default spill location).
	if _, err := mrskyline.Compute(nil, mrskyline.Options{SpillBudget: 1 << 20}); err != nil {
		t.Errorf("Compute rejected budget-without-dir: %v", err)
	}
	svc, err := mrskyline.NewService(mrskyline.ServiceConfig{SpillBudget: 1 << 20})
	if err != nil {
		t.Errorf("NewService rejected budget-without-dir: %v", err)
	} else {
		svc.Close()
	}
}
