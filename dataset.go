package mrskyline

import (
	"io"

	"mrskyline/internal/datagen"
	"mrskyline/internal/tuple"
)

// Generate returns a synthetic benchmark dataset in [0,1)^dim drawn from
// one of the classic skyline evaluation distributions: "independent",
// "correlated" or "anticorrelated" [Börzsönyi et al., ICDE 2001]. The
// result is deterministic for a given seed.
func Generate(distribution string, card, dim int, seed int64) ([][]float64, error) {
	dist, err := datagen.ParseDistribution(distribution)
	if err != nil {
		return nil, err
	}
	return fromList(datagen.Generate(dist, card, dim, seed)), nil
}

// ReadCSV parses a dataset from comma-separated lines: one tuple per line,
// blank lines and '#' comments skipped. All rows must share one width and
// contain only finite numbers.
func ReadCSV(r io.Reader) ([][]float64, error) {
	l, err := datagen.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return fromList(l), nil
}

// WriteCSV writes a dataset as comma-separated lines.
func WriteCSV(w io.Writer, data [][]float64) error {
	return datagen.WriteCSV(w, toList(data))
}

func fromList(l tuple.List) [][]float64 {
	out := make([][]float64, len(l))
	for i, t := range l {
		out[i] = t
	}
	return out
}

func toList(data [][]float64) tuple.List {
	l := make(tuple.List, len(data))
	for i, row := range data {
		l[i] = row
	}
	return l
}
