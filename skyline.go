// Package mrskyline computes skylines of multi-dimensional datasets on an
// in-process MapReduce substrate, reproducing the algorithms of
// "Efficient Skyline Computation in MapReduce" (Mullesgaard, Pedersen, Lu,
// Zhou — EDBT 2014).
//
// The skyline of a dataset is the set of tuples not dominated by any other
// tuple: a tuple dominates another when it is at least as good on every
// dimension and strictly better on at least one. By default smaller values
// are better; Options.Maximize flips individual dimensions.
//
// Two algorithms from the paper are provided — MR-GPSRS (grid partitioning,
// single reducer) and MR-GPMRS (grid partitioning, multiple parallel
// reducers) — together with the baselines they were evaluated against
// (MR-BNL, MR-SFS, MR-Angle) and the paper's future-work Hybrid that picks
// between the two automatically. All of them execute as real MapReduce
// jobs: input splits, serialized shuffle, distributed cache, task retry,
// scheduled over a simulated multi-node cluster.
//
// Quick start:
//
//	sky, err := mrskyline.Compute(points, mrskyline.Options{})
//
// For serving many queries, NewService runs them on one long-lived
// simulated cluster with admission control; cmd/skylined wraps a Service
// in an HTTP API.
//
// # Validation contract
//
// Every entry point — Compute, ComputeConstrained, ComputeSubspace, and
// the Service equivalents — validates its arguments identically whether
// the input data is empty or not: an unknown Options.Algorithm or
// Options.Kernel, a negative cluster shape, a constraint or subspace
// selection inconsistent with Options.Maximize, NaN constraint bounds, an
// inverted Range, and duplicate or negative subspace dimensions all fail
// regardless of data. Checks that need the data's dimensionality
// (Maximize/constraints/dims length versus d, ragged rows, non-finite
// values) apply whenever data is present; rows are validated before any
// filtering, so a dataset that Compute rejects is never silently filtered
// into acceptance by a constrained query.
//
// See the examples/ directory for complete programs and cmd/skybench for
// the harness regenerating every figure of the paper's evaluation.
package mrskyline

import (
	"context"
	"fmt"
	"os"
	"time"

	"mrskyline/internal/baseline"
	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/spill"
	"mrskyline/internal/tuple"
)

// Algorithm selects the MapReduce skyline algorithm.
type Algorithm string

// The available algorithms.
const (
	// GPMRS is MR-GPMRS: grid partitioning with multiple parallel reducers
	// (the paper's headline algorithm, best on skyline-heavy data).
	GPMRS Algorithm = "MR-GPMRS"
	// GPSRS is MR-GPSRS: grid partitioning with a single reducer (best
	// when the skyline is a small fraction of the data).
	GPSRS Algorithm = "MR-GPSRS"
	// Hybrid picks GPSRS or GPMRS automatically from the bitstring, per
	// the paper's future-work proposal.
	Hybrid Algorithm = "Hybrid"
	// MRBNL is the MR-BNL baseline [Zhang et al., DASFAA-W 2011].
	MRBNL Algorithm = "MR-BNL"
	// MRSFS is the MR-SFS baseline [Zhang et al., DASFAA-W 2011].
	MRSFS Algorithm = "MR-SFS"
	// MRAngle is the MR-Angle baseline [Chen et al., IPDPS-W 2012].
	MRAngle Algorithm = "MR-Angle"
	// SKYMR is the sampling/sky-quadtree algorithm SKY-MR [Park et al.,
	// PVLDB 2013], provided as an extension baseline.
	SKYMR Algorithm = "SKY-MR"
	// MRBitmap is the MR-Bitmap baseline [Zhang et al., DASFAA-W 2011 /
	// Tan et al., VLDB 2001]. It requires a bounded number of distinct
	// values per dimension and errors otherwise — the reason the paper
	// excludes it from its continuous-domain experiments.
	MRBitmap Algorithm = "MR-Bitmap"
)

// Algorithms lists every supported Algorithm value.
func Algorithms() []Algorithm {
	return []Algorithm{GPMRS, GPSRS, Hybrid, MRBNL, MRSFS, MRAngle, SKYMR, MRBitmap}
}

// Options configures Compute. The zero value is ready to use: MR-GPMRS on
// a simulated 8-node cluster with auto-selected grid granularity.
type Options struct {
	// Algorithm defaults to GPMRS.
	Algorithm Algorithm
	// Nodes is the simulated cluster size (default 8).
	Nodes int
	// SlotsPerNode is the per-node concurrent task count (default 2).
	SlotsPerNode int
	// Mappers is the map task count (default: all slots).
	Mappers int
	// Reducers is the reduce task count for GPMRS/Hybrid (default: one per
	// node).
	Reducers int
	// PPD fixes the grid's partitions-per-dimension; 0 selects it with the
	// paper's MapReduce heuristic (Section 3.3).
	PPD int
	// Maximize marks dimensions where larger values are better. Nil means
	// all dimensions minimize. Length must equal the data dimensionality.
	Maximize []bool
	// UseSFSKernel switches the in-task local skyline kernel from BNL (the
	// paper's) to sort-filter-skyline. Kernel, when non-empty, takes
	// precedence.
	UseSFSKernel bool
	// Kernel names the in-task local skyline kernel for the grid
	// algorithms: "bnl" (default, the paper's Algorithm 4), "sfs", "dc"
	// (divide & conquer) or "bbs" (branch-and-bound over an R-tree).
	Kernel string
	// SpillBudget, when positive, bounds shuffle residency in bytes: map
	// outputs beyond the budget spill to sorted run files and reducers
	// stream a merge of those runs. 0 keeps the shuffle in memory. The
	// spilled path produces byte-identical results.
	SpillBudget int64
	// SpillDir is where run files go when SpillBudget is set (default:
	// the system temp dir). Per-job files are removed when the job ends.
	SpillDir string
}

// Stats describes what a Compute call did.
type Stats struct {
	// Algorithm is the algorithm that ran (Hybrid reports its choice as
	// "Hybrid(MR-GPSRS)" or "Hybrid(MR-GPMRS)").
	Algorithm string
	// Runtime is the end-to-end wall-clock duration, including bitstring
	// generation for the grid algorithms.
	Runtime time.Duration
	// SkylineSize is the number of skyline tuples.
	SkylineSize int
	// PPD is the grid granularity used (grid algorithms; 0 otherwise).
	PPD int
	// Partitions, NonEmpty and Surviving describe the grid and the
	// bitstring pruning (grid algorithms; 0 otherwise).
	Partitions int
	NonEmpty   int
	Surviving  int
	// Groups is the independent-partition-group count (MR-GPMRS only).
	Groups int
	// DominanceTests counts tuple-pair comparisons across all tasks.
	DominanceTests int64
	// ShuffleBytes is the total volume crossing the MapReduce shuffle.
	ShuffleBytes int64
}

// Result is a computed skyline plus its run statistics.
type Result struct {
	// Skyline holds the skyline tuples with their original values (and
	// orientations, when Maximize was used). Order is deterministic but
	// unspecified.
	Skyline [][]float64
	// Stats describes the run.
	Stats Stats
}

// Compute returns the skyline of data. Every row must have the same number
// of columns and contain only finite values. The input is not modified.
// Options are validated before the empty-input fast path, so an unknown
// algorithm or kernel fails on empty data too (see the package-level
// validation contract).
func Compute(data [][]float64, opts Options) (*Result, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return emptyResult(opts), nil
	}
	eng, err := newEngine(opts)
	if err != nil {
		return nil, err
	}
	return computeOn(context.Background(), eng, data, opts)
}

// emptyResult is the successful outcome of any query over empty data.
func emptyResult(opts Options) *Result {
	return &Result{Stats: Stats{Algorithm: string(algorithmOrDefault(opts.Algorithm))}}
}

// validateOptions checks the data-independent parts of opts — the
// algorithm and kernel names and the simulated cluster shape — so invalid
// options fail identically on empty and non-empty data.
func validateOptions(opts Options) error {
	switch algorithmOrDefault(opts.Algorithm) {
	case GPMRS, GPSRS, Hybrid, MRBNL, MRSFS, MRAngle, SKYMR, MRBitmap:
	default:
		return fmt.Errorf("mrskyline: unknown algorithm %q", opts.Algorithm)
	}
	if _, err := kernelFromOptions(opts); err != nil {
		return err
	}
	if opts.Nodes < 0 {
		return fmt.Errorf("mrskyline: Nodes must be ≥ 0, got %d", opts.Nodes)
	}
	if opts.SlotsPerNode < 0 {
		return fmt.Errorf("mrskyline: SlotsPerNode must be ≥ 0, got %d", opts.SlotsPerNode)
	}
	if opts.Mappers < 0 {
		return fmt.Errorf("mrskyline: Mappers must be ≥ 0, got %d", opts.Mappers)
	}
	if opts.Reducers < 0 {
		return fmt.Errorf("mrskyline: Reducers must be ≥ 0, got %d", opts.Reducers)
	}
	if err := spill.ValidateSetup(opts.SpillBudget, opts.SpillDir); err != nil {
		return fmt.Errorf("mrskyline: %w", err)
	}
	return nil
}

// computeOn runs the pipeline — orientation, row validation, algorithm
// dispatch — on an existing executor, which may be shared across
// concurrent callers (Service runs all its queries through one) and may be
// the in-process engine or a multi-process backend. opts must already have
// passed validateOptions; ctx bounds every MapReduce job of the run.
func computeOn(ctx context.Context, eng mapreduce.Executor, data [][]float64, opts Options) (*Result, error) {
	if len(data) == 0 {
		return emptyResult(opts), nil
	}
	d := len(data[0])
	if opts.Maximize != nil && len(opts.Maximize) != d {
		return nil, fmt.Errorf("mrskyline: Maximize has %d entries for %d-dimensional data", len(opts.Maximize), d)
	}

	// Orient: negate maximized dimensions once (exact in IEEE 754), so the
	// rest of the pipeline is pure minimization with no per-comparison
	// orientation branching.
	orient := NewOrientation(opts.Maximize)
	work := make(tuple.List, len(data))
	for i, row := range data {
		work[i] = tuple.Tuple(orient.Apply(row))
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}

	lo, hi := domainBounds(work)

	algo := algorithmOrDefault(opts.Algorithm)
	var (
		sky tuple.List
		st  Stats
		err error
	)
	switch algo {
	case GPSRS, GPMRS, Hybrid:
		cfg := core.Config{
			Engine:      eng,
			Ctx:         ctx,
			NumMappers:  opts.Mappers,
			NumReducers: opts.Reducers,
			PPD:         opts.PPD,
			Lo:          lo,
			Hi:          hi,
		}
		k, err := kernelFromOptions(opts)
		if err != nil {
			return nil, err
		}
		cfg.Kernel = k
		var cs *core.Stats
		switch algo {
		case GPSRS:
			sky, cs, err = core.GPSRS(cfg, work)
		case GPMRS:
			sky, cs, err = core.GPMRS(cfg, work)
		default:
			sky, cs, err = core.Hybrid(cfg, work)
		}
		if err != nil {
			return nil, err
		}
		st = Stats{
			Algorithm:      cs.Algorithm,
			Runtime:        cs.Total,
			SkylineSize:    cs.SkylineSize,
			PPD:            cs.PPD,
			Partitions:     cs.Partitions,
			NonEmpty:       cs.NonEmpty,
			Surviving:      cs.Surviving,
			Groups:         cs.Groups,
			DominanceTests: cs.DominanceTests,
			ShuffleBytes:   cs.ShuffleBytes,
		}
	case MRBNL, MRSFS, MRAngle, SKYMR, MRBitmap:
		cfg := baseline.Config{Engine: eng, Ctx: ctx, NumMappers: opts.Mappers, Lo: lo, Hi: hi}
		var bs *baseline.Stats
		switch algo {
		case MRBNL:
			sky, bs, err = baseline.MRBNL(cfg, work)
		case MRSFS:
			sky, bs, err = baseline.MRSFS(cfg, work)
		case SKYMR:
			sky, bs, err = baseline.SKYMR(cfg, work)
		case MRBitmap:
			sky, bs, err = baseline.MRBitmap(cfg, work)
		default:
			sky, bs, err = baseline.MRAngle(cfg, work)
		}
		if err != nil {
			return nil, err
		}
		st = Stats{
			Algorithm:      bs.Algorithm,
			Runtime:        bs.Total,
			SkylineSize:    bs.SkylineSize,
			DominanceTests: bs.DominanceTests,
			ShuffleBytes:   bs.ShuffleBytes,
		}
	default:
		return nil, fmt.Errorf("mrskyline: unknown algorithm %q", opts.Algorithm)
	}

	// Orient back (Apply is an involution) and hand out plain slices.
	out := make([][]float64, len(sky))
	for i, t := range sky {
		out[i] = orient.Apply([]float64(t))
	}
	return &Result{Skyline: out, Stats: st}, nil
}

// kernelFromOptions resolves the local-kernel selection.
func kernelFromOptions(opts Options) (skyline.Kernel, error) {
	switch opts.Kernel {
	case "":
		if opts.UseSFSKernel {
			return skyline.KernelSFS, nil
		}
		return skyline.KernelBNL, nil
	case "bnl":
		return skyline.KernelBNL, nil
	case "sfs":
		return skyline.KernelSFS, nil
	case "dc":
		return skyline.KernelDC, nil
	case "bbs":
		return skyline.KernelBBS, nil
	default:
		return 0, fmt.Errorf("mrskyline: unknown kernel %q (want bnl|sfs|dc|bbs)", opts.Kernel)
	}
}

func algorithmOrDefault(a Algorithm) Algorithm {
	if a == "" {
		return GPMRS
	}
	return a
}

func newEngine(opts Options) (*mapreduce.Engine, error) {
	nodes := opts.Nodes
	if nodes == 0 {
		nodes = 8
	}
	slots := opts.SlotsPerNode
	if slots == 0 {
		slots = 2
	}
	c, err := cluster.Uniform(nodes, slots)
	if err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	eng := mapreduce.NewEngine(c)
	if opts.SpillBudget > 0 {
		dir := opts.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("mrskyline: SpillDir %q is not a usable directory", dir)
		}
		eng.Spill = &spill.Config{Dir: dir, Budget: opts.SpillBudget, Stats: &spill.Stats{}}
	}
	return eng, nil
}

// domainBounds computes a half-open bounding box [lo, hi) for the grid.
// Values equal to a dimension's maximum clamp into the top grid cell, which
// is always safe, so hi is simply the observed maximum (widened when the
// dimension is constant, since grids reject empty extents).
func domainBounds(data tuple.List) (lo, hi tuple.Tuple) {
	d := data.Dim()
	lo = data[0].Clone()
	hi = data[0].Clone()
	for _, t := range data[1:] {
		lo.MinWith(t)
		hi.MaxWith(t)
	}
	for k := 0; k < d; k++ {
		if hi[k] <= lo[k] {
			hi[k] = lo[k] + 1
		}
	}
	return lo, hi
}

// Orientation captures a per-dimension min/max preference, normalized
// once into a sign vector: minimized dimensions carry +1, maximized ones
// −1, and multiplying a value by its sign turns every later comparison
// into pure minimization with no per-dimension branching (negation is
// exact in IEEE 754). Build one with NewOrientation and reuse it when
// comparing many tuple pairs under the same preference.
type Orientation struct {
	// signs is nil for the identity orientation (all dimensions
	// minimize); dimensions beyond its length minimize.
	signs []float64
}

// NewOrientation builds the orientation for maximize, interpreted as in
// Options.Maximize: nil (or all-false) means every dimension minimizes.
func NewOrientation(maximize []bool) Orientation {
	var signs []float64
	for k, m := range maximize {
		if m {
			if signs == nil {
				signs = make([]float64, len(maximize))
				for j := range signs {
					signs[j] = 1
				}
			}
			signs[k] = -1
		}
	}
	return Orientation{signs: signs}
}

// Identity reports whether the orientation leaves values unchanged.
func (o Orientation) Identity() bool { return o.signs == nil }

// Apply returns row under the all-minimize view: maximized dimensions
// are negated. The identity orientation returns row itself (no copy);
// otherwise a fresh slice is returned. Apply is its own inverse up to
// the copy: applying it to an oriented row restores the original values.
func (o Orientation) Apply(row []float64) []float64 {
	if o.signs == nil {
		return row
	}
	out := make([]float64, len(row))
	for k, v := range row {
		if k < len(o.signs) {
			v *= o.signs[k]
		}
		out[k] = v
	}
	return out
}

// Dominates reports whether a dominates b under the orientation: at
// least as good on every dimension and strictly better on at least one.
func (o Orientation) Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	better, worse := false, false
	for k := range a {
		av, bv := a[k], b[k]
		if k < len(o.signs) {
			s := o.signs[k]
			av *= s
			bv *= s
		}
		switch {
		case av < bv:
			better = true
		case av > bv:
			worse = true
		}
	}
	return better && !worse
}

// Dominates reports whether tuple a dominates tuple b under the orientation
// given by maximize (nil = minimize everything): a is at least as good on
// every dimension and strictly better on at least one. Callers comparing
// many pairs under one preference should build a NewOrientation once and
// use its Dominates method instead.
func Dominates(a, b []float64, maximize []bool) bool {
	return NewOrientation(maximize).Dominates(a, b)
}
