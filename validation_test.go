package mrskyline_test

import (
	"math"
	"testing"

	mrskyline "mrskyline"
)

// TestValidationContract crosses {empty, non-empty} data with every
// invalid-argument class of the three public Compute functions. Rows with
// onEmpty true are data-independent checks that must fire even on empty
// input — the regression surface of the empty-fast-path bugs, where
// Compute echoed an unknown algorithm back as success and the constrained
// and subspace queries skipped argument validation entirely.
func TestValidationContract(t *testing.T) {
	valid := [][]float64{{1, 2}, {3, 1}}
	nan := math.NaN()
	unb := []mrskyline.Range{mrskyline.Unbounded(), mrskyline.Unbounded()}

	type call func(data [][]float64) error
	compute := func(opts mrskyline.Options) call {
		return func(data [][]float64) error {
			_, err := mrskyline.Compute(data, opts)
			return err
		}
	}
	constrained := func(cons []mrskyline.Range, opts mrskyline.Options) call {
		return func(data [][]float64) error {
			_, err := mrskyline.ComputeConstrained(data, cons, opts)
			return err
		}
	}
	subspace := func(dims []int, opts mrskyline.Options) call {
		return func(data [][]float64) error {
			_, err := mrskyline.ComputeSubspace(data, dims, opts)
			return err
		}
	}

	cases := []struct {
		name string
		call call
		// onEmpty: the check is data-independent and must fire on empty
		// data too. false: the check needs the data's dimensionality, so
		// empty data must succeed.
		onEmpty bool
	}{
		{"compute/unknown algorithm", compute(mrskyline.Options{Algorithm: "MR-Nope"}), true},
		{"compute/unknown kernel", compute(mrskyline.Options{Kernel: "quantum"}), true},
		{"compute/negative nodes", compute(mrskyline.Options{Nodes: -1}), true},
		{"compute/negative slots", compute(mrskyline.Options{SlotsPerNode: -2}), true},
		{"compute/negative mappers", compute(mrskyline.Options{Mappers: -3}), true},
		{"compute/negative reducers", compute(mrskyline.Options{Reducers: -1}), true},
		{"compute/maximize length vs d", compute(mrskyline.Options{Maximize: []bool{true}}), false},
		{"constrained/no constraints", constrained(nil, mrskyline.Options{}), true},
		{"constrained/nan bound", constrained([]mrskyline.Range{{Min: nan, Max: 1}, mrskyline.Unbounded()}, mrskyline.Options{}), true},
		{"constrained/inverted range", constrained([]mrskyline.Range{{Min: 2, Max: 1}, mrskyline.Unbounded()}, mrskyline.Options{}), true},
		{"constrained/maximize vs constraints", constrained(unb, mrskyline.Options{Maximize: []bool{true}}), true},
		{"constrained/unknown algorithm", constrained(unb, mrskyline.Options{Algorithm: "MR-Nope"}), true},
		{"constrained/unknown kernel", constrained(unb, mrskyline.Options{Kernel: "quantum"}), true},
		{"constrained/arity vs d", constrained([]mrskyline.Range{mrskyline.Unbounded()}, mrskyline.Options{}), false},
		{"subspace/empty dims", subspace(nil, mrskyline.Options{}), true},
		{"subspace/negative dim", subspace([]int{0, -1}, mrskyline.Options{}), true},
		{"subspace/duplicate dim", subspace([]int{0, 0}, mrskyline.Options{}), true},
		{"subspace/maximize vs dims", subspace([]int{0}, mrskyline.Options{Maximize: []bool{true, false}}), true},
		{"subspace/unknown algorithm", subspace([]int{0}, mrskyline.Options{Algorithm: "MR-Nope"}), true},
		{"subspace/unknown kernel", subspace([]int{0}, mrskyline.Options{Kernel: "quantum"}), true},
		{"subspace/dim vs d", subspace([]int{5}, mrskyline.Options{}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(valid); err == nil {
				t.Error("non-empty data: invalid arguments accepted")
			}
			err := tc.call(nil)
			if tc.onEmpty && err == nil {
				t.Error("empty data: invalid arguments accepted")
			}
			if !tc.onEmpty && err != nil {
				t.Errorf("empty data: data-dependent check fired early: %v", err)
			}
		})
	}
}

// TestConstrainedRejectsNaNRows pins the NaN-row fix: a NaN lies outside
// every Range, so before rows were validated ahead of filtering, a NaN
// row was silently dropped instead of reported — the same dataset Compute
// rejects must fail the constrained query too.
func TestConstrainedRejectsNaNRows(t *testing.T) {
	data := [][]float64{
		{0.5, 0.5},
		{math.NaN(), 0.2},
	}
	unb := []mrskyline.Range{mrskyline.Unbounded(), mrskyline.Unbounded()}
	if _, err := mrskyline.ComputeConstrained(data, unb, mrskyline.Options{Nodes: 2}); err == nil {
		t.Fatal("NaN row was silently filtered out instead of rejected")
	}
	// Same for infinities, which Compute also rejects.
	data[1][0] = math.Inf(1)
	if _, err := mrskyline.ComputeConstrained(data, unb, mrskyline.Options{Nodes: 2}); err == nil {
		t.Fatal("Inf row was silently filtered out instead of rejected")
	}
}

// TestEmptyDataStillSucceedsWithValidArgs guards the other side of the
// contract: hoisting validation must not break the empty fast paths.
func TestEmptyDataStillSucceedsWithValidArgs(t *testing.T) {
	if res, err := mrskyline.Compute(nil, mrskyline.Options{Algorithm: mrskyline.GPSRS}); err != nil || len(res.Skyline) != 0 {
		t.Errorf("Compute(nil) = %v, %v", res, err)
	}
	unb := []mrskyline.Range{mrskyline.Unbounded()}
	if res, err := mrskyline.ComputeConstrained(nil, unb, mrskyline.Options{}); err != nil || len(res.Skyline) != 0 {
		t.Errorf("ComputeConstrained(nil) = %v, %v", res, err)
	}
	if res, err := mrskyline.ComputeSubspace(nil, []int{0, 1}, mrskyline.Options{}); err != nil || len(res.Skyline) != 0 {
		t.Errorf("ComputeSubspace(nil) = %v, %v", res, err)
	}
}
