package mrskyline

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"
)

func sortRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// TestMaintainedMatchesCompute is the serving-layer differential: after
// every delta batch, the maintained skyline must equal what the batch
// pipeline computes from scratch over the same residents.
func TestMaintainedMatchesCompute(t *testing.T) {
	data, err := Generate("independent", 400, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h, err := svc.OpenMaintained(data, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Generate("independent", 100, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 5; b++ {
		rows := h.Rows()
		deltas := []Delta{
			{Op: DeltaInsert, Row: fresh[b*2]},
			{Op: DeltaInsert, Row: fresh[b*2+1]},
			{Op: DeltaDelete, Row: rows[b*7%len(rows)]},
		}
		res, err := h.ApplyDeltas(deltas)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inserted != 2 || res.Deleted != 1 {
			t.Fatalf("batch %d: DeltaResult = %+v", b, res)
		}
		want, err := svc.Compute(context.Background(), h.Rows(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := h.Skyline()
		if got.Gen != res.Gen {
			t.Fatalf("snapshot gen %d, apply gen %d", got.Gen, res.Gen)
		}
		if !reflect.DeepEqual(sortRows(got.Skyline), sortRows(want.Skyline)) {
			t.Fatalf("batch %d: maintained %d rows, recompute %d rows", b, len(got.Skyline), len(want.Skyline))
		}
	}
	// Maintenance counters landed in the service registry.
	if n := svc.trace.Metrics().Counter("maintain.publishes"); n != 5 {
		t.Fatalf("maintain.publishes = %d, want 5", n)
	}
	if n := svc.trace.Metrics().Counter("maintain.deltas.inserted"); n != 10 {
		t.Fatalf("maintain.deltas.inserted = %d, want 10", n)
	}
}

func TestMaintainedMaximizeOrientation(t *testing.T) {
	// Under Maximize both dimensions, the skyline keeps the HIGHEST values.
	data := [][]float64{{1, 1}, {9, 9}, {2, 8}}
	h, err := OpenMaintained(data, MaintainOptions{Maximize: []bool{true, true}})
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Skyline()
	if len(snap.Skyline) != 1 || snap.Skyline[0][0] != 9 || snap.Skyline[0][1] != 9 {
		t.Fatalf("maximize skyline = %v, want [[9 9]]", snap.Skyline)
	}
	// An even better point replaces it; rows come back in user orientation.
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{10, 10}}}); err != nil {
		t.Fatal(err)
	}
	snap = h.Skyline()
	if len(snap.Skyline) != 1 || snap.Skyline[0][0] != 10 {
		t.Fatalf("maximize skyline after insert = %v, want [[10 10]]", snap.Skyline)
	}
	// Deleting it (specified in user orientation) restores {9, 9}.
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaDelete, Row: []float64{10, 10}}}); err != nil {
		t.Fatal(err)
	}
	if snap = h.Skyline(); len(snap.Skyline) != 1 || snap.Skyline[0][0] != 9 {
		t.Fatalf("maximize skyline after delete = %v, want [[9 9]]", snap.Skyline)
	}
}

func TestContinuousQuery(t *testing.T) {
	h, err := OpenMaintained([][]float64{{0.5, 0.5}}, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := h.Continuous()
	snap, changed := q.Poll()
	if !changed || snap == nil || snap.Gen != 1 {
		t.Fatalf("first Poll = (%v, %v), want seed snapshot", snap, changed)
	}
	// Nothing changed: the cheap path returns no rows.
	if snap, changed := q.Poll(); changed || snap != nil {
		t.Fatalf("idle Poll = (%v, %v), want (nil, false)", snap, changed)
	}
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{0.1, 0.1}}}); err != nil {
		t.Fatal(err)
	}
	snap, changed = q.Poll()
	if !changed || snap == nil || snap.Gen != 2 || len(snap.Skyline) != 1 {
		t.Fatalf("post-delta Poll = (%+v, %v)", snap, changed)
	}
	// A delta that cannot change the skyline still advances the
	// generation: Poll reports it (result-set diffing is the caller's
	// concern, generation change is ours).
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{0.9, 0.9}}}); err != nil {
		t.Fatal(err)
	}
	if _, changed := q.Poll(); !changed {
		t.Fatal("Poll missed a generation advance")
	}
	// Two independent cursors do not disturb each other.
	q2 := h.Continuous()
	if _, changed := q2.Poll(); !changed {
		t.Fatal("fresh cursor saw no state")
	}
	if _, changed := q.Poll(); changed {
		t.Fatal("cursor advanced by another cursor's poll")
	}
}

func TestMaintainedErrors(t *testing.T) {
	if _, err := OpenMaintained(nil, MaintainOptions{}); err == nil {
		t.Fatal("empty seed without Dim accepted")
	}
	if _, err := OpenMaintained([][]float64{{1, 2}}, MaintainOptions{Maximize: []bool{true}}); err == nil {
		t.Fatal("Maximize dimensionality mismatch accepted")
	}
	h, err := OpenMaintained([][]float64{{1, 2}}, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ApplyDeltas([]Delta{{Op: "upsert", Row: []float64{1, 2}}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{math.Inf(1), 2}}}); err == nil {
		t.Fatal("non-finite row accepted")
	}
	// Stats reflects the seed state.
	st := h.Stats()
	if st.Size != 1 || st.Gen != 1 || st.SkylineSize != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestMaintainedSlidingWindow(t *testing.T) {
	h, err := OpenMaintained(nil, MaintainOptions{Dim: 2, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v := 1.0 - float64(i)*0.05
		if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{v, v}}}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Size() != 4 {
		t.Fatalf("Size = %d, want 4", h.Size())
	}
	// Monotone decreasing stream: the newest resident dominates the rest.
	snap := h.Skyline()
	if len(snap.Skyline) != 1 || snap.Skyline[0][0] != 1.0-9*0.05 {
		t.Fatalf("sliding skyline = %v", snap.Skyline)
	}
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaDelete, Row: []float64{0.6, 0.6}}}); err == nil {
		t.Fatal("delete accepted on sliding window")
	}
}
