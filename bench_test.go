package mrskyline_test

// One benchmark per table and figure of the paper's evaluation (Section 7),
// plus one per ablation called out in DESIGN.md. Each benchmark iteration
// regenerates the complete figure at a small scale; run
//
//	go test -bench=Fig -benchtime=1x
//
// for a single full sweep per figure, or cmd/skybench for the full-size
// tables with printed rows.

import (
	"fmt"
	"testing"

	"mrskyline/internal/datagen"
	"mrskyline/internal/experiments"
)

// benchSetup keeps per-iteration work small while preserving every sweep
// point of the figure being regenerated. MeasureParallelism is left at its
// default (min(GOMAXPROCS, cluster slots)): simulated runtimes are a pure
// function of measured task durations, so parallel measurement only speeds
// the sweep; pass MeasureParallelism: 1 for publication-grade isolation.
func benchSetup() experiments.Setup {
	return experiments.Setup{Seed: 1, Scale: 0.001, Nodes: 13, SlotsPerNode: 2}
}

func benchFigure(b *testing.B, name string) {
	b.Helper()
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(name, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (a–d): runtime vs dimensionality on
// independent data at both cardinalities, all four algorithms.
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (a–d): runtime vs dimensionality on
// anti-correlated data at both cardinalities, all four algorithms.
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (a–d): runtime vs cardinality at
// d ∈ {3, 8} on both distributions, all four algorithms.
func BenchmarkFig9(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: MR-GPMRS runtime vs reducer count
// (1 = MR-GPSRS) on 8-dimensional data, both distributions.
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (a, b): measured vs estimated
// partition-wise comparisons for the busiest mapper and reducer.
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkAblationMerging contrasts the Section 5.4.1 group-merging
// strategies (computation-cost vs communication-cost).
func BenchmarkAblationMerging(b *testing.B) { benchFigure(b, "ablation-merge") }

// BenchmarkAblationPruning measures what the Equation 2 bitstring pruning
// buys (runtime and shuffle volume with pruning on vs off).
func BenchmarkAblationPruning(b *testing.B) { benchFigure(b, "ablation-prune") }

// BenchmarkAblationPPD sweeps fixed PPD values against the Section 3.3
// heuristic.
func BenchmarkAblationPPD(b *testing.B) { benchFigure(b, "ablation-ppd") }

// BenchmarkAblationKernel swaps the in-task local skyline kernel (BNL vs
// SFS), the paper's "optimize the local skyline computation" future work.
func BenchmarkAblationKernel(b *testing.B) { benchFigure(b, "ablation-kernel") }

// BenchmarkAblationHybrid compares the future-work Hybrid against fixed
// algorithm choices across the regimes where each base algorithm wins.
func BenchmarkAblationHybrid(b *testing.B) { benchFigure(b, "ablation-hybrid") }

// BenchmarkAlgorithm benchmarks each algorithm end-to-end on a fixed
// workload per distribution — the per-point cost underlying the figures.
func BenchmarkAlgorithm(b *testing.B) {
	const card, dim = 5000, 4
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
		data := datagen.Generate(dist, card, dim, 1)
		for _, algo := range experiments.AllAlgorithms() {
			b.Run(fmt.Sprintf("%s/%v", algo, dist), func(b *testing.B) {
				s := benchSetup()
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RunAlgorithm(algo, s, data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtensionSKYMR compares the grid algorithms against the SKY-MR
// extension baseline (not a paper figure).
func BenchmarkExtensionSKYMR(b *testing.B) { benchFigure(b, "extension-skymr") }

// BenchmarkExtensionScaleOut measures MR-GPMRS's simulated runtime as the
// cluster grows at a fixed workload (not a paper figure).
func BenchmarkExtensionScaleOut(b *testing.B) { benchFigure(b, "extension-scaleout") }
