// Command skyreport regenerates every figure of the paper's evaluation,
// runs the shape checks comparing measured behaviour against the paper's
// findings, and writes a Markdown report (the source of EXPERIMENTS.md).
//
// Usage:
//
//	skyreport -o EXPERIMENTS.md -scale 0.05
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"mrskyline/internal/experiments"
	"mrskyline/internal/obs"
)

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		scale    = flag.Float64("scale", experiments.DefaultScale, "cardinality scale factor relative to the paper")
		nodes    = flag.Int("nodes", 13, "simulated cluster nodes")
		paper    = flag.Bool("paper", false, "use the paper's exact heterogeneous 13-machine cluster")
		slots    = flag.Int("slots", 2, "task slots per node")
		reducers = flag.Int("reducers", 0, "MR-GPMRS reduce tasks (0 = one per node)")
		seed     = flag.Int64("seed", 1, "data generation seed")
		nosim    = flag.Bool("nosim", false, "report host wall-clock instead of simulated cluster time")
		// Publication runs default to strictly serial task measurement:
		// per-task durations must reflect each task's work alone, free of
		// even scheduler noise from sibling tasks.
		measurePar  = flag.Int("measurepar", 1, "concurrently measured tasks (1 = serial isolation for publishable figures, 0 = min(GOMAXPROCS, slots))")
		faultrate   = flag.Float64("faultrate", 0, "deterministic fault-injection rate for crashes/stragglers/corruption (0 = fault-free)")
		faultseed   = flag.Int64("faultseed", 0, "fault plan seed (0 = data seed; only with -faultrate > 0)")
		spillbudget = flag.Int64("spillbudget", 0, "external-memory shuffle budget in bytes (0 = all in RAM)")
		spilldir    = flag.String("spilldir", "", "directory for spill run files (default: the system temp dir; only with -spillbudget > 0)")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto / chrome://tracing)")
	)
	flag.Parse()

	flagSet := func(name string) bool {
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == name {
				set = true
			}
		})
		return set
	}
	if err := experiments.ValidateFaultConfig(*faultrate, flagSet("faultseed")); err != nil {
		fmt.Fprintf(os.Stderr, "skyreport: %v\n", err)
		os.Exit(1)
	}
	if err := experiments.ValidateSpillConfig(*spillbudget, *spilldir, flagSet("spillbudget"), flagSet("spilldir")); err != nil {
		fmt.Fprintf(os.Stderr, "skyreport: %v\n", err)
		os.Exit(1)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.New()
		defer func() {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = obs.WriteChromeTrace(f, tracer)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "skyreport: -trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "skyreport: wrote trace %s (%d spans)\n", *traceOut, len(tracer.Spans()))
		}()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	setup := experiments.Setup{
		PaperCluster:       *paper,
		Nodes:              *nodes,
		SlotsPerNode:       *slots,
		Reducers:           *reducers,
		Seed:               *seed,
		Scale:              *scale,
		NoSim:              *nosim,
		MeasureParallelism: *measurePar,
		FaultRate:          *faultrate,
		FaultSeed:          *faultseed,
		SpillBudget:        *spillbudget,
		SpillDir:           *spilldir,
		Trace:              tracer,
	}
	if err := experiments.Report(setup, w); err != nil {
		fmt.Fprintf(os.Stderr, "skyreport: %v\n", err)
		os.Exit(1)
	}
}
