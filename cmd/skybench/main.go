// Command skybench regenerates the paper's evaluation: every figure of
// Section 7 plus the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	skybench -exp fig7                # one experiment
//	skybench -exp fig7,fig10          # several
//	skybench -exp all                 # everything
//	skybench -exp all -scale 1        # the paper's full cardinalities
//	skybench -exp fig9 -csv           # machine-readable output
//	skybench -exp all -json           # write BENCH_<figure>.json per figure
//	skybench -spillbench -spillbudget 33554432  # beyond-RAM shuffle bench
//	skybench -recoverybench           # WAL crash-recovery bench
//
// By default cardinalities are scaled down (see -scale) so the full suite
// completes on a laptop while preserving the figures' shapes, and task
// measurement runs in parallel (see -measurepar) so a sweep uses every
// host core.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	mrskyline "mrskyline"
	"mrskyline/internal/experiments"
	"mrskyline/internal/obs"
	"mrskyline/internal/rpcexec"
)

func main() {
	// Worker re-exec entry: when the master spawned this process, serve
	// tasks and exit instead of parsing flags.
	rpcexec.WorkerMain()
	var (
		exp             = flag.String("exp", "all", "experiments to run: comma-separated ids or 'all' (ids: "+strings.Join(experiments.FigureNames(), ", ")+")")
		scale           = flag.Float64("scale", experiments.DefaultScale, "cardinality scale factor relative to the paper (1 = full size)")
		nodes           = flag.Int("nodes", 13, "simulated cluster nodes (paper: 13)")
		paper           = flag.Bool("paper", false, "use the paper's exact heterogeneous 13-machine cluster")
		slots           = flag.Int("slots", 2, "task slots per node")
		mappers         = flag.Int("mappers", 0, "map tasks (0 = all slots)")
		reds            = flag.Int("reducers", 0, "reduce tasks for MR-GPMRS (0 = one per node)")
		ppd             = flag.Int("ppd", 0, "fixed partitions-per-dimension (0 = Section 3.3 heuristic)")
		seed            = flag.Int64("seed", 1, "data generation seed")
		noskip          = flag.Bool("noskip", false, "run even the combinations the paper reports as DNF")
		asCSV           = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		asJSON          = flag.Bool("json", false, "also write BENCH_<figure>.json bench records for perf trajectory tracking")
		outdir          = flag.String("outdir", ".", "directory for -json output files")
		mpar            = flag.Int("measurepar", 0, "concurrently measured tasks (0 = min(GOMAXPROCS, slots), 1 = serial isolation)")
		faultrate       = flag.Float64("faultrate", 0, "deterministic fault-injection rate for crashes/stragglers/corruption (0 = fault-free)")
		faultseed       = flag.Int64("faultseed", 0, "fault plan seed (0 = data seed; only with -faultrate > 0)")
		spillbudget     = flag.Int64("spillbudget", 0, "external-memory shuffle budget in bytes (0 = all in RAM); map outputs beyond the budget spill to sorted run files and merge back under it")
		spilldir        = flag.String("spilldir", "", "directory for spill run files (default: the system temp dir; only with -spillbudget > 0)")
		spillbench      = flag.Bool("spillbench", false, "run the beyond-RAM spill bench instead of figures; writes BENCH_spill.json to -outdir")
		recoverybench   = flag.Bool("recoverybench", false, "run the WAL crash-recovery bench instead of figures; writes BENCH_recovery.json to -outdir")
		recoverybatches = flag.Int("recoverybatches", 0, "delta batches for -recoverybench (0 = default 1200)")
		serveload       = flag.Bool("serveload", false, "run the concurrent serving-load harness instead of figures; writes BENCH_serve.json to -outdir")
		kernelbench     = flag.Bool("kernel", false, "run the dominance-kernel micro-benchmark (scalar vs columnar) instead of figures; writes BENCH_kernel.json to -outdir")
		servequeries    = flag.Int("servequeries", 64, "total queries for -serveload")
		serveworkers    = flag.Int("serveworkers", 8, "concurrent clients for -serveload")
		servechurn      = flag.Float64("servechurn", 0, "update-heavy mix for -serveload: fraction of the dataset churned per delta batch against a maintained skyline (0 = queries only)")
		servebatches    = flag.Int("servebatches", 0, "delta batches for -servechurn (0 = default 16)")
		executor        = flag.String("executor", "inproc", "MapReduce backend: inproc (simulated cluster figures) or process (multi-process workers over RPC; runs the backend comparison instead of figures and writes BENCH_executor.json to -outdir)")
		workers         = flag.Int("workers", 4, "worker processes for -executor=process")
		tracedir        = flag.String("tracedir", "", "with -executor=process, directory where each worker process writes its own Chrome trace (worker-<i>.trace.json)")
		traceOut        = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto / chrome://tracing)")
		cpuprof         = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof         = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if err := experiments.ValidateFaultConfig(*faultrate, flagSet("faultseed")); err != nil {
		fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
		os.Exit(1)
	}
	if err := experiments.ValidateSpillConfig(*spillbudget, *spilldir, flagSet("spillbudget"), flagSet("spilldir")); err != nil {
		fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
		os.Exit(1)
	}

	if *spillbench {
		rec, err := experiments.RunSpillBench(experiments.SpillBenchConfig{
			Seed:   *seed,
			Budget: *spillbudget,
			Dir:    *spilldir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -spillbench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outdir, "BENCH_spill.json")
		if err := experiments.WriteSpillBenchJSON(path, rec); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -spillbench: %v\n", err)
			os.Exit(1)
		}
		for _, a := range rec.Algorithms {
			fmt.Printf("%-9s in-RAM %.3fs  spilled %.3fs  skyline %d  identical %v  runs %d  merge rounds %d\n",
				a.Algorithm, a.InMemorySec, a.SpilledSec, a.SkylineSize, a.Identical, a.RunsWritten, a.MergeRounds)
		}
		fmt.Printf("spill: %d tuples (%s), budget %d B, dataset %d B, peak resident %d B\nwrote %s\n",
			rec.Card, rec.Distribution, rec.Budget, rec.DatasetBytes, rec.PeakResidentBytes, path)
		return
	}

	if *recoverybench {
		rec, err := experiments.RunRecoveryBench(experiments.RecoveryBenchConfig{
			Seed:    *seed,
			Batches: *recoverybatches,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -recoverybench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outdir, "BENCH_recovery.json")
		if err := experiments.WriteRecoveryBenchJSON(path, rec); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -recoverybench: %v\n", err)
			os.Exit(1)
		}
		for _, p := range rec.LogLength {
			fmt.Printf("loglen   %5d batches  replay %6d records  recover %8.3f ms  identical %v\n",
				p.Batches, p.ReplayedRecords, p.RecoverySec*1e3, p.Identical)
		}
		for _, p := range rec.CheckpointSweep {
			fmt.Printf("ckpt %4d  %5d batches  snapshot %5d rows  replay %6d records  recover %8.3f ms  identical %v\n",
				p.CheckpointEvery, p.Batches, p.SnapshotRows, p.ReplayedRecords, p.RecoverySec*1e3, p.Identical)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	switch *executor {
	case "inproc":
	case "process":
		if err := experiments.ValidateWorkers(*workers); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		var masterTrace *obs.Tracer
		if *traceOut != "" {
			masterTrace = obs.New()
		}
		rec, err := experiments.RunExecutorBench(experiments.ExecBenchConfig{
			Workers:     *workers,
			Seed:        *seed,
			Trace:       masterTrace,
			TraceDir:    *tracedir,
			SpillBudget: *spillbudget,
			SpillDir:    *spilldir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -executor=process: %v\n", err)
			os.Exit(1)
		}
		if masterTrace != nil {
			if err := writeTrace(*traceOut, masterTrace); err != nil {
				fmt.Fprintf(os.Stderr, "skybench: -trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote trace %s (%d spans)\n", *traceOut, len(masterTrace.Spans()))
		}
		path := filepath.Join(*outdir, "BENCH_executor.json")
		if err := experiments.WriteExecBenchJSON(path, rec); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -executor=process: %v\n", err)
			os.Exit(1)
		}
		for _, a := range rec.Algorithms {
			fmt.Printf("%-9s inproc %.3fs  process %.3fs  skyline %d  identical %v\n",
				a.Algorithm, a.InprocSec, a.ProcessSec, a.SkylineSize, a.Identical)
		}
		fmt.Printf("rpc: %d leases, %d wire shuffle bytes, heartbeat RTT p50 %dns\nwrote %s\n",
			rec.LeasesGranted, rec.WireShuffleBytes, rec.HeartbeatRTTP50, path)
		return
	default:
		fmt.Fprintf(os.Stderr, "skybench: unknown -executor %q (want inproc|process)\n", *executor)
		os.Exit(1)
	}

	if *serveload {
		res, err := experiments.ServeLoad(experiments.ServeLoadConfig{
			Queries:       *servequeries,
			Workers:       *serveworkers,
			Seed:          *seed,
			Service:       mrskyline.ServiceConfig{Nodes: *nodes, SlotsPerNode: *slots},
			ChurnFraction: *servechurn,
			DeltaBatches:  *servebatches,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -serveload: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outdir, "BENCH_serve.json")
		if err := experiments.WriteServeBenchJSON(path, res); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -serveload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serveload: %d queries, %d workers: %.1f q/s, p50 %.1f ms, p99 %.1f ms, %d errors\nwrote %s\n",
			res.Queries, res.Workers, res.ThroughputQPS, res.LatencyP50Ms, res.LatencyP99Ms, res.Errors, path)
		if res.ChurnFraction > 0 {
			fmt.Printf("churn: %d batches × %.1f%%, apply p50 %.3f ms, maintained read p50 %.6f ms, recompute p50 %.3f ms, speedup %.0f×, gen %d\n",
				res.DeltaBatches, res.ChurnFraction*100, res.DeltaApplyP50Ms, res.MaintainedP50Ms, res.RecomputeP50Ms, res.MaintainedSpeedupP50, res.FinalGen)
		}
		return
	}

	if *kernelbench {
		rec := experiments.RunKernelBench(*seed)
		path := filepath.Join(*outdir, "BENCH_kernel.json")
		if err := experiments.WriteKernelBenchJSON(path, rec); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -kernel: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kernel: block size %d, %d cells; min insert speedup at window ≥ 256, d ≤ 6: %.2fx\nwrote %s\n",
			rec.BlockSize, len(rec.Points), rec.GateMinInsertSpeedup, path)
		return
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skybench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "skybench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.New()
		defer func() {
			if err := writeTrace(*traceOut, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "skybench: -trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote trace %s (%d spans)\n", *traceOut, len(tracer.Spans()))
			if flame := obs.FlameSummary(tracer); flame != "" {
				fmt.Println(flame)
			}
		}()
	}

	setup := experiments.Setup{
		PaperCluster:       *paper,
		Nodes:              *nodes,
		SlotsPerNode:       *slots,
		Mappers:            *mappers,
		Reducers:           *reds,
		PPD:                *ppd,
		Seed:               *seed,
		Scale:              *scale,
		NoSkip:             *noskip,
		MeasureParallelism: *mpar,
		FaultRate:          *faultrate,
		FaultSeed:          *faultseed,
		SpillBudget:        *spillbudget,
		SpillDir:           *spilldir,
		Trace:              tracer,
	}

	// The per-algorithm probe workload is shared by every figure's bench
	// record; measure it once. Check the output directory first so a typo
	// fails before minutes of sweeping.
	var probes []experiments.AlgoProbe
	if *asJSON {
		if st, err := os.Stat(*outdir); err != nil || !st.IsDir() {
			fmt.Fprintf(os.Stderr, "skybench: -outdir %s is not a directory\n", *outdir)
			os.Exit(1)
		}
		var err error
		if probes, err = experiments.ProbeAlgorithms(setup); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
	}

	var names []string
	if *exp == "all" {
		names = experiments.FigureNames()
	} else {
		names = strings.Split(*exp, ",")
	}

	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		var (
			res *experiments.FigureResult
			rec *experiments.BenchRecord
			err error
		)
		if *asJSON {
			rec, res, err = experiments.RunFigureBench(name, setup)
		} else {
			res, err = experiments.RunFigure(name, setup)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (completed in %.1fs) ==\n\n", res.Name, time.Since(start).Seconds())
		for _, tab := range res.Tables {
			if *asCSV {
				fmt.Printf("# %s\n%s\n", tab.Title, tab.CSV())
			} else {
				fmt.Println(tab.String())
			}
		}
		if *asJSON {
			rec.Probes = probes
			path := filepath.Join(*outdir, "BENCH_"+name+".json")
			if err := experiments.WriteBenchJSON(path, rec); err != nil {
				fmt.Fprintf(os.Stderr, "skybench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

// flagSet reports whether the named flag was passed explicitly on the
// command line (as opposed to holding its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// writeTrace exports the tracer as Chrome trace-event JSON.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
