// Command skygen generates synthetic skyline benchmark datasets in the
// classic distributions of [Börzsönyi et al., ICDE 2001].
//
// Usage:
//
//	skygen -dist anticorrelated -card 1000000 -dim 6 -o data.csv
//	skygen -dist independent -card 1000 -dim 2        # to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	mrskyline "mrskyline"
)

func main() {
	var (
		dist = flag.String("dist", "independent", "distribution: independent, correlated, anticorrelated")
		card = flag.Int("card", 10000, "number of tuples")
		dim  = flag.Int("dim", 2, "dimensionality")
		seed = flag.Int64("seed", 1, "random seed (generation is deterministic per seed)")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if err := run(*dist, *card, *dim, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
		os.Exit(1)
	}
}

func run(dist string, card, dim int, seed int64, out string) error {
	if card < 0 || dim < 1 {
		return fmt.Errorf("invalid shape: card=%d dim=%d", card, dim)
	}
	data, err := mrskyline.Generate(dist, card, dim, seed)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return mrskyline.WriteCSV(w, data)
}
