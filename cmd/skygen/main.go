// Command skygen generates synthetic skyline benchmark datasets in the
// classic distributions of [Börzsönyi et al., ICDE 2001].
//
// Usage:
//
//	skygen -dist anticorrelated -card 1000000 -dim 6 -o data.csv
//	skygen -dist independent -card 1000 -dim 2        # to stdout
//	skygen -stream -card 100000000 -dim 4 -o big.csv  # constant memory
//
// With -stream, tuples are written as they are drawn instead of
// materializing the dataset first, so cardinality is bounded by disk, not
// RAM. The output is byte-identical to the non-streaming mode for the same
// parameters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	mrskyline "mrskyline"
	"mrskyline/internal/datagen"
)

func main() {
	var (
		dist   = flag.String("dist", "independent", "distribution: independent, correlated, anticorrelated")
		card   = flag.Int("card", 10000, "number of tuples")
		dim    = flag.Int("dim", 2, "dimensionality")
		seed   = flag.Int64("seed", 1, "random seed (generation is deterministic per seed)")
		out    = flag.String("o", "", "output file (default stdout)")
		stream = flag.Bool("stream", false, "write tuples as they are generated (constant memory, identical output)")
	)
	flag.Parse()

	if err := run(*dist, *card, *dim, *seed, *out, *stream); err != nil {
		fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
		os.Exit(1)
	}
}

func run(dist string, card, dim int, seed int64, out string, stream bool) error {
	if card < 0 || dim < 1 {
		return fmt.Errorf("invalid shape: card=%d dim=%d", card, dim)
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if stream {
		d, err := datagen.ParseDistribution(dist)
		if err != nil {
			return err
		}
		return datagen.StreamCSV(w, d, card, dim, seed)
	}
	data, err := mrskyline.Generate(dist, card, dim, seed)
	if err != nil {
		return err
	}
	return mrskyline.WriteCSV(w, data)
}
