package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.csv")
	if err := run("anticorrelated", 50, 3, 9, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 50 {
		t.Fatalf("wrote %d lines, want 50", len(lines))
	}
	if got := strings.Count(lines[0], ",") + 1; got != 3 {
		t.Fatalf("dimensionality = %d, want 3", got)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a := filepath.Join(t.TempDir(), "a.csv")
	b := filepath.Join(t.TempDir(), "b.csv")
	if err := run("independent", 20, 2, 4, a); err != nil {
		t.Fatal(err)
	}
	if err := run("independent", 20, 2, 4, b); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if string(ba) != string(bb) {
		t.Error("same seed produced different datasets")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("zipf", 10, 2, 1, ""); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run("independent", -1, 2, 1, ""); err == nil {
		t.Error("negative cardinality accepted")
	}
	if err := run("independent", 10, 0, 1, ""); err == nil {
		t.Error("zero dimensionality accepted")
	}
	if err := run("independent", 1, 1, 1, filepath.Join(t.TempDir(), "no", "such", "dir", "f.csv")); err == nil {
		t.Error("unwritable output accepted")
	}
}
