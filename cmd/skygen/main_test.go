package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.csv")
	if err := run("anticorrelated", 50, 3, 9, out, false); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 50 {
		t.Fatalf("wrote %d lines, want 50", len(lines))
	}
	if got := strings.Count(lines[0], ",") + 1; got != 3 {
		t.Fatalf("dimensionality = %d, want 3", got)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a := filepath.Join(t.TempDir(), "a.csv")
	b := filepath.Join(t.TempDir(), "b.csv")
	if err := run("independent", 20, 2, 4, a, false); err != nil {
		t.Fatal(err)
	}
	if err := run("independent", 20, 2, 4, b, false); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if string(ba) != string(bb) {
		t.Error("same seed produced different datasets")
	}
}

func TestRunStreamIdentical(t *testing.T) {
	for _, dist := range []string{"independent", "correlated", "anticorrelated"} {
		mem := filepath.Join(t.TempDir(), "mem.csv")
		str := filepath.Join(t.TempDir(), "stream.csv")
		if err := run(dist, 100, 4, 7, mem, false); err != nil {
			t.Fatal(err)
		}
		if err := run(dist, 100, 4, 7, str, true); err != nil {
			t.Fatal(err)
		}
		bm, _ := os.ReadFile(mem)
		bs, _ := os.ReadFile(str)
		if string(bm) != string(bs) {
			t.Errorf("%s: -stream output differs from in-memory output", dist)
		}
	}
}

func TestRunValidation(t *testing.T) {
	for _, stream := range []bool{false, true} {
		if err := run("zipf", 10, 2, 1, "", stream); err == nil {
			t.Errorf("stream=%v: unknown distribution accepted", stream)
		}
		if err := run("independent", -1, 2, 1, "", stream); err == nil {
			t.Errorf("stream=%v: negative cardinality accepted", stream)
		}
		if err := run("independent", 10, 0, 1, "", stream); err == nil {
			t.Errorf("stream=%v: zero dimensionality accepted", stream)
		}
		if err := run("independent", 1, 1, 1, filepath.Join(t.TempDir(), "no", "such", "dir", "f.csv"), stream); err == nil {
			t.Errorf("stream=%v: unwritable output accepted", stream)
		}
	}
}
