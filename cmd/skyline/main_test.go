package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mrskyline "mrskyline"
)

func writeTempCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSpace(string(b)), "\n")
}

func TestRunEndToEnd(t *testing.T) {
	in := writeTempCSV(t, "0.5,0.5\n0.2,0.8\n0.8,0.2\n0.9,0.9\n")
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run(in, out, "MR-GPSRS", 2, 1, 0, 0, 2, "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, out)
	if len(lines) != 3 {
		t.Fatalf("skyline lines = %v", lines)
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "0.9") {
			t.Errorf("dominated tuple in output: %s", l)
		}
	}
}

func TestRunMaximize(t *testing.T) {
	// Maximizing the second column flips which tuples survive.
	in := writeTempCSV(t, "1,5\n1,9\n2,9\n")
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run(in, out, "MR-GPMRS", 2, 1, 0, 0, 2, "1", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, out)
	if len(lines) != 1 || lines[0] != "1,9" {
		t.Fatalf("maximize output = %v", lines)
	}
}

func TestRunMaximizeValidation(t *testing.T) {
	in := writeTempCSV(t, "1,2\n")
	if err := run(in, "", "MR-GPSRS", 2, 1, 0, 0, 2, "7", false, 0, ""); err == nil {
		t.Error("out-of-range maximize column accepted")
	}
	if err := run(in, "", "MR-GPSRS", 2, 1, 0, 0, 2, "x", false, 0, ""); err == nil {
		t.Error("garbage maximize column accepted")
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.csv"), "", "MR-GPSRS", 2, 1, 0, 0, 2, "", false, 0, ""); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunViaDFSEndToEnd(t *testing.T) {
	data, err := mrskyline.Generate("anticorrelated", 800, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := mrskyline.WriteCSV(&sb, data); err != nil {
		t.Fatal(err)
	}
	in := writeTempCSV(t, sb.String())
	outDirect := filepath.Join(t.TempDir(), "direct.csv")
	outDFS := filepath.Join(t.TempDir(), "dfs.csv")

	if err := run(in, outDirect, "MR-GPMRS", 3, 2, 0, 0, 0, "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := runViaDFS(in, outDFS, "MR-GPMRS", 3, 2, 0, 0, 0, "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	direct := readLines(t, outDirect)
	viaDFS := readLines(t, outDFS)
	if len(direct) != len(viaDFS) {
		t.Fatalf("direct skyline has %d tuples, via-dfs %d", len(direct), len(viaDFS))
	}
	set := map[string]bool{}
	for _, l := range direct {
		set[l] = true
	}
	for _, l := range viaDFS {
		if !set[l] {
			t.Fatalf("via-dfs tuple %q missing from direct result", l)
		}
	}
}

func TestRunViaDFSValidation(t *testing.T) {
	in := writeTempCSV(t, "0.1,0.2\n")
	if err := runViaDFS(in, "", "MR-GPSRS", 2, 1, 0, 0, 2, "1", false, 0, ""); err == nil {
		t.Error("maximize accepted with -via-dfs")
	}
	if err := runViaDFS(in, "", "MR-Angle", 2, 1, 0, 0, 2, "", false, 0, ""); err == nil {
		t.Error("baseline accepted with -via-dfs")
	}
	empty := writeTempCSV(t, "# only comments\n")
	if err := runViaDFS(empty, "", "MR-GPSRS", 2, 1, 0, 0, 2, "", false, 0, ""); err == nil {
		t.Error("comment-only input accepted")
	}
}

func TestProbeCSV(t *testing.T) {
	d, card, err := probeCSV([]byte("# c\n0.1,0.2,0.3\n0.4,0.5,0.6\n"))
	if err != nil || d != 3 {
		t.Fatalf("probeCSV = %d, %d, %v", d, card, err)
	}
	if card < 1 {
		t.Errorf("card estimate = %d", card)
	}
	if _, _, err := probeCSV([]byte("")); err == nil {
		t.Error("empty content accepted")
	}
}

func TestCSVBounds(t *testing.T) {
	lo, hi, err := csvBounds([]byte("1,10\n3,5\n2,20\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 1 || lo[1] != 5 || hi[0] != 3 || hi[1] != 20 {
		t.Errorf("bounds = %v %v", lo, hi)
	}
	// Constant dimension widens.
	lo, hi, err = csvBounds([]byte("1,7\n2,7\n"), 2)
	if err != nil || hi[1] <= lo[1] {
		t.Errorf("constant-dim bounds = %v %v, %v", lo, hi, err)
	}
}

func TestRunSpilledIdentical(t *testing.T) {
	var rows strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&rows, "0.%03d,0.%03d\n", (i*37)%1000, (i*61)%1000)
	}
	in := writeTempCSV(t, rows.String())
	mem := filepath.Join(t.TempDir(), "mem.csv")
	sp := filepath.Join(t.TempDir(), "spilled.csv")
	if err := run(in, mem, "MR-GPMRS", 2, 1, 0, 0, 2, "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(in, sp, "MR-GPMRS", 2, 1, 0, 0, 2, "", false, 256, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	bm, _ := os.ReadFile(mem)
	bs, _ := os.ReadFile(sp)
	if string(bm) != string(bs) {
		t.Error("-spillbudget output differs from in-memory output")
	}
}
