// Command skyline computes the skyline of a CSV dataset with one of the
// MapReduce algorithms.
//
// Usage:
//
//	skyline -in hotels.csv -out sky.csv
//	skygen -dist anti -card 100000 -dim 4 | skyline -algo MR-GPMRS -stats
//	skyline -in offers.csv -maximize 1,2   # maximize columns 1 and 2
//	skyline -in big.csv -via-dfs           # stream from the simulated DFS
//
// Input is comma-separated, one tuple per line; '#' comments and blank
// lines are skipped. The skyline is written in the same format.
//
// With -via-dfs the file is loaded into the simulated distributed file
// system, split into blocks, and the map tasks parse CSV records straight
// from their splits — the exact input path the paper's Hadoop jobs use.
// Only the grid algorithms (MR-GPSRS, MR-GPMRS) support this mode, and
// -maximize does not apply (records are processed as stored).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	mrskyline "mrskyline"
	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/dfs"
	"mrskyline/internal/experiments"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/spill"
	"mrskyline/internal/tuple"
)

func main() {
	var (
		viaDFS   = flag.Bool("via-dfs", false, "load the input into the simulated DFS and stream map tasks from block splits")
		in       = flag.String("in", "", "input CSV file (default stdin)")
		out      = flag.String("out", "", "output CSV file (default stdout)")
		algo     = flag.String("algo", string(mrskyline.GPMRS), "algorithm: MR-GPMRS, MR-GPSRS, Hybrid, MR-BNL, MR-SFS, MR-Angle")
		nodes    = flag.Int("nodes", 8, "simulated cluster nodes")
		slots    = flag.Int("slots", 2, "task slots per node")
		mappers  = flag.Int("mappers", 0, "map tasks (0 = all slots)")
		reducers = flag.Int("reducers", 0, "reduce tasks (0 = one per node)")
		ppd      = flag.Int("ppd", 0, "fixed partitions-per-dimension (0 = auto)")
		maximize = flag.String("maximize", "", "comma-separated 0-based column indexes where larger is better")
		stats    = flag.Bool("stats", false, "print run statistics to stderr")

		spillbudget = flag.Int64("spillbudget", 0, "external-memory shuffle budget in bytes (0 = all in RAM); map outputs beyond the budget spill to sorted run files and merge back under it")
		spilldir    = flag.String("spilldir", "", "directory for spill run files (default: the system temp dir; only with -spillbudget > 0)")
	)
	flag.Parse()

	flagSet := func(name string) bool {
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == name {
				set = true
			}
		})
		return set
	}
	if err := experiments.ValidateSpillConfig(*spillbudget, *spilldir, flagSet("spillbudget"), flagSet("spilldir")); err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(1)
	}

	var err error
	if *viaDFS {
		err = runViaDFS(*in, *out, *algo, *nodes, *slots, *mappers, *reducers, *ppd, *maximize, *stats, *spillbudget, *spilldir)
	} else {
		err = run(*in, *out, *algo, *nodes, *slots, *mappers, *reducers, *ppd, *maximize, *stats, *spillbudget, *spilldir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out, algo string, nodes, slots, mappers, reducers, ppd int, maximize string, stats bool, spillBudget int64, spillDir string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	data, err := mrskyline.ReadCSV(r)
	if err != nil {
		return err
	}

	var maxMask []bool
	if maximize != "" {
		if len(data) == 0 {
			return fmt.Errorf("-maximize given but input is empty")
		}
		maxMask = make([]bool, len(data[0]))
		for _, fld := range strings.Split(maximize, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(fld))
			if err != nil || idx < 0 || idx >= len(maxMask) {
				return fmt.Errorf("invalid -maximize column %q for %d-column data", fld, len(maxMask))
			}
			maxMask[idx] = true
		}
	}

	res, err := mrskyline.Compute(data, mrskyline.Options{
		Algorithm:    mrskyline.Algorithm(algo),
		Nodes:        nodes,
		SlotsPerNode: slots,
		Mappers:      mappers,
		Reducers:     reducers,
		PPD:          ppd,
		Maximize:     maxMask,
		SpillBudget:  spillBudget,
		SpillDir:     spillDir,
	})
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := mrskyline.WriteCSV(w, res.Skyline); err != nil {
		return err
	}

	if stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "algorithm:        %s\n", s.Algorithm)
		fmt.Fprintf(os.Stderr, "input tuples:     %d\n", len(data))
		fmt.Fprintf(os.Stderr, "skyline tuples:   %d\n", s.SkylineSize)
		fmt.Fprintf(os.Stderr, "runtime:          %v\n", s.Runtime)
		if s.PPD > 0 {
			fmt.Fprintf(os.Stderr, "grid:             %d^%d partitions (PPD %d)\n", s.PPD, len(data[0]), s.PPD)
			fmt.Fprintf(os.Stderr, "non-empty:        %d\n", s.NonEmpty)
			fmt.Fprintf(os.Stderr, "after pruning:    %d\n", s.Surviving)
			if s.Groups > 0 {
				fmt.Fprintf(os.Stderr, "independent grps: %d\n", s.Groups)
			}
		}
		fmt.Fprintf(os.Stderr, "dominance tests:  %d\n", s.DominanceTests)
		fmt.Fprintf(os.Stderr, "shuffle bytes:    %d\n", s.ShuffleBytes)
	}
	return nil
}

// runViaDFS executes the grid algorithms over the simulated distributed
// file system: the input file is written into block-split, replicated DFS
// storage and map tasks parse CSV records from their own splits.
func runViaDFS(in, out, algo string, nodes, slots, mappers, reducers, ppd int, maximize string, stats bool, spillBudget int64, spillDir string) error {
	if maximize != "" {
		return fmt.Errorf("-maximize is not supported with -via-dfs")
	}
	var content []byte
	var err error
	if in == "" {
		content, err = io.ReadAll(os.Stdin)
	} else {
		content, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}

	clus, err := cluster.Uniform(nodes, slots)
	if err != nil {
		return err
	}
	eng := mapreduce.NewEngine(clus)
	if spillBudget > 0 {
		dir := spillDir
		if dir == "" {
			dir = os.TempDir()
		}
		eng.Spill = &spill.Config{Dir: dir, Budget: spillBudget, Stats: &spill.Stats{}}
	}
	fsys, err := dfs.New(dfs.Config{
		BlockSize:   256 * 1024,
		Replication: 3,
		Nodes:       clus.Nodes(),
	})
	if err != nil {
		return err
	}
	const path = "input.csv"
	if err := fsys.WriteFile(path, content); err != nil {
		return err
	}

	// Shape discovery: dimensionality from the first data line, cardinality
	// estimated from the file size and that line's length (only the PPD
	// heuristic consumes the estimate).
	d, approxCard, err := probeCSV(content)
	if err != nil {
		return err
	}

	cfg := core.Config{
		Engine:       eng,
		NumMappers:   mappers,
		NumReducers:  reducers,
		PPD:          ppd,
		DecodeRecord: core.CSVRecordDecoder(d),
	}
	// The grid needs the data's bounding box; one streaming pass suffices.
	lo, hi, err := csvBounds(content, d)
	if err != nil {
		return err
	}
	cfg.Lo, cfg.Hi = lo, hi

	input := mapreduce.DFSLineInput{FS: fsys, Path: path}
	var (
		sky tuple.List
		st  *core.Stats
	)
	switch algo {
	case string(mrskyline.GPSRS):
		sky, st, err = core.GPSRSFromInput(cfg, input, d, approxCard)
	case string(mrskyline.GPMRS):
		sky, st, err = core.GPMRSFromInput(cfg, input, d, approxCard)
	default:
		return fmt.Errorf("-via-dfs supports MR-GPSRS and MR-GPMRS, not %q", algo)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	rows := make([][]float64, len(sky))
	for i, t := range sky {
		rows[i] = t
	}
	if err := mrskyline.WriteCSV(w, rows); err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(os.Stderr, "algorithm:        %s (via simulated DFS)\n", st.Algorithm)
		fmt.Fprintf(os.Stderr, "skyline tuples:   %d\n", st.SkylineSize)
		fmt.Fprintf(os.Stderr, "runtime:          %v\n", st.Total)
		fmt.Fprintf(os.Stderr, "grid:             PPD %d, %d partitions, %d non-empty, %d surviving\n",
			st.PPD, st.Partitions, st.NonEmpty, st.Surviving)
	}
	return nil
}

// probeCSV returns the dimensionality of the first data line and an
// estimated line count.
func probeCSV(content []byte) (d, approxCard int, err error) {
	sc := bufio.NewScanner(bytes.NewReader(content))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d = strings.Count(line, ",") + 1
		approxCard = len(content) / (len(line) + 1)
		if approxCard < 1 {
			approxCard = 1
		}
		return d, approxCard, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return 0, 0, fmt.Errorf("input contains no data lines")
}

// csvBounds scans the dataset once for its per-dimension bounding box.
func csvBounds(content []byte, d int) (lo, hi []float64, err error) {
	data, err := mrskyline.ReadCSV(bytes.NewReader(content))
	if err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("input contains no data lines")
	}
	lo = append([]float64(nil), data[0]...)
	hi = append([]float64(nil), data[0]...)
	for _, t := range data[1:] {
		for k := range t {
			if t[k] < lo[k] {
				lo[k] = t[k]
			}
			if t[k] > hi[k] {
				hi[k] = t[k]
			}
		}
	}
	for k := 0; k < d; k++ {
		if hi[k] <= lo[k] {
			hi[k] = lo[k] + 1
		}
	}
	return lo, hi, nil
}
