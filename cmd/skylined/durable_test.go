package main

// Process-level durability tests: a real skylined child process (the
// test binary re-executed through TestMain) is restarted gracefully and
// SIGKILLed mid-churn, and the restarted server must republish the exact
// skyline and generation implied by the batches it acknowledged.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	mrskyline "mrskyline"
)

func TestMain(m *testing.M) {
	if argsJSON := os.Getenv("SKYLINED_TEST_ARGS"); argsJSON != "" {
		var args []string
		if err := json.Unmarshal([]byte(argsJSON), &args); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Args = append([]string{"skylined"}, args...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// skylinedProc is one spawned server process.
type skylinedProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

// startSkylined spawns the server and waits for its listen line.
func startSkylined(t *testing.T, args ...string) *skylinedProc {
	t.Helper()
	argsJSON, err := json.Marshal(append([]string{"-addr", "127.0.0.1:0", "-nodes", "2", "-slots", "1"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), "SKYLINED_TEST_ARGS="+string(argsJSON))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				addrCh <- addr
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &skylinedProc{cmd: cmd, base: "http://" + addr}
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("skylined child never reported its listen address")
		return nil
	}
}

func (p *skylinedProc) do(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, p.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// stop terminates the process with sig and waits for it to exit,
// reporting whether the exit was clean (code 0).
func (p *skylinedProc) stop(t *testing.T, sig syscall.Signal) bool {
	t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	err := p.cmd.Wait()
	return err == nil
}

func testDeltas(n int) [][]mrskyline.Delta {
	out := make([][]mrskyline.Delta, n)
	v := 0.9
	for i := range out {
		v *= 0.93
		out[i] = []mrskyline.Delta{{Op: mrskyline.DeltaInsert, Row: []float64{v, 1 - v, 0.5}}}
	}
	return out
}

var seedData = [][]float64{{0.5, 0.5, 0.5}, {0.9, 0.1, 0.4}, {0.1, 0.9, 0.6}}

func TestSkylinedRestartRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	dataDir := t.TempDir()
	p := startSkylined(t, "-datadir", dataDir)
	code, body := p.do(t, "POST", "/v1/datasets", map[string]any{"name": "churn", "data": seedData, "maintain": true})
	if code != 200 {
		t.Fatalf("register: %d %s", code, body)
	}
	for _, batch := range testDeltas(12) {
		code, body := p.do(t, "POST", "/v1/datasets/churn/deltas", map[string]any{"deltas": batch})
		if code != 200 {
			t.Fatalf("deltas: %d %s", code, body)
		}
	}
	_, want := p.do(t, "GET", "/v1/datasets/churn/skyline", nil)
	if !p.stop(t, syscall.SIGTERM) {
		t.Fatal("graceful shutdown exited non-zero")
	}

	// Same -datadir: the dataset must come back at the same generation
	// with the identical skyline, with no deltas re-sent.
	p2 := startSkylined(t, "-datadir", dataDir)
	code, got := p2.do(t, "GET", "/v1/datasets/churn/skyline", nil)
	if code != 200 {
		t.Fatalf("restored skyline: %d %s", code, got)
	}
	var wantJS, gotJS map[string]any
	if err := json.Unmarshal(want, &wantJS); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got, &gotJS); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJS, wantJS) {
		t.Fatalf("restored skyline differs:\n got %s\nwant %s", got, want)
	}
	// And it must still accept churn.
	code, body = p2.do(t, "POST", "/v1/datasets/churn/deltas", map[string]any{"deltas": []mrskyline.Delta{{Op: mrskyline.DeltaInsert, Row: []float64{0.05, 0.05, 0.05}}}})
	if code != 200 {
		t.Fatalf("post-restart deltas: %d %s", code, body)
	}

	// DELETE removes the durable state: a third restart must not see it.
	if code, body := p2.do(t, "DELETE", "/v1/datasets/churn", nil); code != 200 {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, _ := p2.do(t, "GET", "/v1/datasets/churn/skyline", nil); code != http.StatusNotFound {
		t.Fatalf("skyline after delete: %d, want 404", code)
	}
	if !p2.stop(t, syscall.SIGTERM) {
		t.Fatal("second graceful shutdown exited non-zero")
	}
	p3 := startSkylined(t, "-datadir", dataDir)
	if code, _ := p3.do(t, "GET", "/v1/datasets/churn/skyline", nil); code != http.StatusNotFound {
		t.Fatalf("deleted dataset resurrected after restart: %d", code)
	}
}

func TestSkylinedSigkillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	dataDir := t.TempDir()
	p := startSkylined(t, "-datadir", dataDir, "-walsync", "always", "-checkpointevery", "4")
	if code, body := p.do(t, "POST", "/v1/datasets", map[string]any{"name": "kill", "data": seedData, "maintain": true}); code != 200 {
		t.Fatalf("register: %d %s", code, body)
	}
	batches := testDeltas(10)
	var ackedGen uint64
	for _, batch := range batches {
		code, body := p.do(t, "POST", "/v1/datasets/kill/deltas", map[string]any{"deltas": batch})
		if code != 200 {
			t.Fatalf("deltas: %d %s", code, body)
		}
		var res mrskyline.DeltaResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		ackedGen = res.Gen
	}
	// No grace: the durability contract is that every acknowledged batch
	// above survives a SIGKILL under -walsync=always.
	p.cmd.Process.Kill()
	p.cmd.Wait()

	p2 := startSkylined(t, "-datadir", dataDir)
	code, got := p2.do(t, "GET", "/v1/datasets/kill/skyline", nil)
	if code != 200 {
		t.Fatalf("skyline after SIGKILL restart: %d %s", code, got)
	}
	var snap struct {
		Gen     uint64      `json:"gen"`
		Skyline [][]float64 `json:"skyline"`
	}
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gen < ackedGen {
		t.Fatalf("recovered generation %d below acknowledged %d", snap.Gen, ackedGen)
	}
	// Differential check: the recovered skyline must equal a fresh rebuild
	// of exactly the batches the recovered generation covers.
	ref, err := mrskyline.OpenMaintained(seedData, mrskyline.MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:snap.Gen-1] {
		if _, err := ref.ApplyDeltas(b); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Skyline()
	if !reflect.DeepEqual(snap.Skyline, want.Skyline) {
		t.Fatalf("recovered skyline differs from rebuild of %d acknowledged batches:\n got %v\nwant %v", snap.Gen-1, snap.Skyline, want.Skyline)
	}
}

// In-process endpoint satellites: dataset name validation and DELETE.
func TestDatasetNameValidation(t *testing.T) {
	svc, err := mrskyline.NewService(mrskyline.ServiceConfig{Nodes: 2, SlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(newServer(svc, t.TempDir()).handler())
	defer ts.Close()
	bad := []string{"", "..", ".", "a/b", `a\b`, "x\x00y", "ctrl\nname", strings.Repeat("n", 200)}
	for _, name := range bad {
		code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{"name": name, "data": seedData})
		if code != http.StatusBadRequest {
			t.Fatalf("name %q: %d %s, want 400", name, code, body)
		}
	}
	if code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{"name": "ok-name_1.2", "data": seedData}); code != 200 {
		t.Fatalf("valid name rejected: %d %s", code, body)
	}
}

func TestDeleteDataset(t *testing.T) {
	svc, err := mrskyline.NewService(mrskyline.ServiceConfig{Nodes: 2, SlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	dataDir := t.TempDir()
	ts := httptest.NewServer(newServer(svc, dataDir).handler())
	defer ts.Close()

	del := func(name string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("ghost"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown dataset: %d, want 404", code)
	}
	if code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{"name": "tmp", "data": seedData, "maintain": true}); code != 200 {
		t.Fatalf("register: %d %s", code, body)
	}
	dsDir := filepath.Join(dataDir, "datasets", "tmp")
	if _, err := os.Stat(dsDir); err != nil {
		t.Fatalf("durable dir missing after registration: %v", err)
	}
	// Re-registering a durable dataset without deleting must 409.
	if code, _ := postJSON(t, ts.URL+"/v1/datasets", map[string]any{"name": "tmp", "data": seedData, "maintain": true}); code != http.StatusConflict {
		t.Fatalf("durable re-register: %d, want 409", code)
	}
	if code := del("tmp"); code != 200 {
		t.Fatalf("DELETE: %d, want 200", code)
	}
	if _, err := os.Stat(dsDir); !os.IsNotExist(err) {
		t.Fatalf("durable dir still present after DELETE: %v", err)
	}
	// The name is immediately reusable.
	if code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{"name": "tmp", "data": seedData, "maintain": true}); code != 200 {
		t.Fatalf("re-register after delete: %d %s", code, body)
	}
}
