package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	mrskyline "mrskyline"
)

func newTestServer(t *testing.T, cfg mrskyline.ServiceConfig) *httptest.Server {
	t.Helper()
	svc, err := mrskyline.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc, "").handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeQueryResponse(t *testing.T, raw []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("bad query response %s: %v", raw, err)
	}
	return qr
}

func TestSkylineEndpoint(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	code, raw := postJSON(t, ts.URL+"/v1/skyline", map[string]any{
		"data":      [][]float64{{1, 2}, {2, 1}, {2, 2}},
		"algorithm": "MR-GPSRS",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	qr := decodeQueryResponse(t, raw)
	if len(qr.Skyline) != 2 {
		t.Errorf("skyline = %v, want 2 tuples", qr.Skyline)
	}
	if qr.Stats.Algorithm != "MR-GPSRS" {
		t.Errorf("algorithm = %q", qr.Stats.Algorithm)
	}
}

func TestConstrainedEndpoint(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	low := 0.3
	code, raw := postJSON(t, ts.URL+"/v1/constrained", map[string]any{
		"data":        [][]float64{{0.1, 0.9}, {0.4, 0.5}, {0.5, 0.4}},
		"constraints": []map[string]any{{"min": low}, {}},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	qr := decodeQueryResponse(t, raw)
	if len(qr.Skyline) != 2 {
		t.Errorf("constrained skyline = %v, want the two in-range tuples", qr.Skyline)
	}
}

func TestSubspaceEndpoint(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	code, raw := postJSON(t, ts.URL+"/v1/subspace", map[string]any{
		"data": [][]float64{{0.2, 0.3, 0.9}, {0.9, 0.1, 0.1}, {0.3, 0.4, 0.05}},
		"dims": []int{0, 1},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	qr := decodeQueryResponse(t, raw)
	if len(qr.Skyline) != 2 {
		t.Errorf("subspace skyline = %v, want 2 tuples", qr.Skyline)
	}
	for _, row := range qr.Skyline {
		if len(row) != 2 {
			t.Errorf("projected row %v has %d columns, want 2", row, len(row))
		}
	}
}

func TestDatasetCacheRoundTrip(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	code, raw := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":     "anti",
		"generate": map[string]any{"distribution": "anticorrelated", "card": 200, "dim": 3, "seed": 7},
	})
	if code != http.StatusOK {
		t.Fatalf("dataset registration: status %d: %s", code, raw)
	}

	code, raw = postJSON(t, ts.URL+"/v1/skyline", map[string]any{"dataset": "anti"})
	if code != http.StatusOK {
		t.Fatalf("query by dataset name: status %d: %s", code, raw)
	}
	if qr := decodeQueryResponse(t, raw); len(qr.Skyline) == 0 {
		t.Error("empty skyline from cached dataset")
	}

	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Datasets []struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "anti" || list.Datasets[0].Rows != 200 {
		t.Errorf("dataset listing = %+v", list)
	}

	code, raw = postJSON(t, ts.URL+"/v1/skyline", map[string]any{"dataset": "missing"})
	if code != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d: %s", code, raw)
	}
}

func TestErrorMapping(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	cases := []struct {
		name string
		path string
		body map[string]any
		want int
	}{
		{"unknown algorithm", "/v1/skyline", map[string]any{"data": [][]float64{}, "algorithm": "nope"}, http.StatusBadRequest},
		{"unknown kernel on empty data", "/v1/skyline", map[string]any{"kernel": "quantum"}, http.StatusBadRequest},
		{"missing constraints", "/v1/constrained", map[string]any{"data": [][]float64{{1, 2}}}, http.StatusBadRequest},
		{"duplicate dims", "/v1/subspace", map[string]any{"data": [][]float64{{1, 2}}, "dims": []int{0, 0}}, http.StatusBadRequest},
		// NaN is not expressible in JSON, so exercise the pre-filter row
		// validation with its other trigger: a ragged row.
		{"invalid row", "/v1/constrained", map[string]any{"dataset": "badrows", "constraints": []map[string]any{{}, {}}}, http.StatusBadRequest},
	}
	code, raw := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "badrows",
		"data": [][]float64{{1, 2}, {3}},
	})
	if code != http.StatusOK {
		t.Fatalf("dataset registration: status %d: %s", code, raw)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := postJSON(t, ts.URL+tc.path, tc.body)
			if code != tc.want {
				t.Errorf("status = %d, want %d (%s)", code, tc.want, raw)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/v1/skyline"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET on query endpoint: status %d", resp.StatusCode)
		}
	}
}

// TestConcurrentHTTPQueries is the serving acceptance check: 32
// concurrent HTTP queries against one server, zero errors.
func TestConcurrentHTTPQueries(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2, MaxInFlight: 4, MaxQueue: 64})
	code, raw := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":     "load",
		"generate": map[string]any{"distribution": "independent", "card": 300, "dim": 3, "seed": 42},
	})
	if code != http.StatusOK {
		t.Fatalf("dataset registration: status %d: %s", code, raw)
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var (
				path string
				body map[string]any
			)
			switch i % 3 {
			case 0:
				path, body = "/v1/skyline", map[string]any{"dataset": "load"}
			case 1:
				path, body = "/v1/constrained", map[string]any{
					"dataset":     "load",
					"constraints": []map[string]any{{"min": 0.1}, {}, {}},
				}
			default:
				path, body = "/v1/subspace", map[string]any{"dataset": "load", "dims": []int{0, 2}}
			}
			rawBody, _ := json.Marshal(body)
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(rawBody))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, out)
				return
			}
			var qr queryResponse
			if err := json.Unmarshal(out, &qr); err != nil {
				errs <- fmt.Errorf("query %d: bad body: %v", i, err)
				return
			}
			if len(qr.Skyline) == 0 {
				errs <- fmt.Errorf("query %d: empty skyline", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// /v1/stats reflects the served load.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Service struct {
			Admitted int64 `json:"admitted"`
			InFlight int   `json:"in_flight"`
		} `json:"service"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Service.Admitted < n {
		t.Errorf("admitted = %d, want ≥ %d", stats.Service.Admitted, n)
	}
	if len(stats.Metrics) == 0 {
		t.Error("stats response lacks metrics registry")
	}
}

// TestMaintainedDatasetEndpoints exercises the maintained-dataset flow
// end to end: register with "maintain": true, push deltas, poll the
// skyline with since_gen, and query the live residents by name.
func TestMaintainedDatasetEndpoints(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	code, raw := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":     "live",
		"maintain": true,
		"generate": map[string]any{"distribution": "independent", "card": 200, "dim": 2, "seed": 5},
	})
	if code != http.StatusOK {
		t.Fatalf("maintained registration: status %d: %s", code, raw)
	}
	var reg struct {
		Maintained  bool   `json:"maintained"`
		Gen         uint64 `json:"gen"`
		SkylineSize int    `json:"skyline_size"`
		Rows        int    `json:"rows"`
	}
	if err := json.Unmarshal(raw, &reg); err != nil {
		t.Fatal(err)
	}
	if !reg.Maintained || reg.Gen != 1 || reg.Rows != 200 || reg.SkylineSize == 0 {
		t.Fatalf("registration response = %+v", reg)
	}

	// Full read, then a cheap no-change poll against the same generation.
	var snap struct {
		Gen     uint64      `json:"gen"`
		Changed bool        `json:"changed"`
		Skyline [][]float64 `json:"skyline"`
	}
	getSkyline := func(query string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/datasets/live/skyline" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET skyline%s: status %d", query, resp.StatusCode)
		}
		snap = struct {
			Gen     uint64      `json:"gen"`
			Changed bool        `json:"changed"`
			Skyline [][]float64 `json:"skyline"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	getSkyline("")
	if !snap.Changed || snap.Gen != 1 || len(snap.Skyline) != reg.SkylineSize {
		t.Fatalf("initial skyline read = %+v", snap)
	}
	getSkyline("?since_gen=1")
	if snap.Changed || snap.Gen != 1 || snap.Skyline != nil {
		t.Fatalf("no-change poll = %+v, want changed=false with no rows", snap)
	}

	// A delta batch advances the generation; the stale cursor sees it.
	code, raw = postJSON(t, ts.URL+"/v1/datasets/live/deltas", map[string]any{
		"deltas": []map[string]any{
			{"op": "insert", "row": []float64{0.001, 0.001}},
			{"op": "insert", "row": []float64{0.999, 0.999}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("deltas: status %d: %s", code, raw)
	}
	var dres struct {
		Inserted int    `json:"inserted"`
		Gen      uint64 `json:"gen"`
	}
	if err := json.Unmarshal(raw, &dres); err != nil {
		t.Fatal(err)
	}
	if dres.Inserted != 2 || dres.Gen != 2 {
		t.Fatalf("delta result = %+v", dres)
	}
	getSkyline("?since_gen=1")
	if !snap.Changed || snap.Gen != 2 {
		t.Fatalf("stale poll after deltas = %+v", snap)
	}
	// {0.001, 0.001} dominates (nearly) everything.
	found := false
	for _, row := range snap.Skyline {
		if row[0] == 0.001 && row[1] == 0.001 {
			found = true
		}
	}
	if !found {
		t.Errorf("inserted dominator missing from maintained skyline %v", snap.Skyline)
	}

	// Regular query endpoints see the maintained dataset's live residents.
	code, raw = postJSON(t, ts.URL+"/v1/skyline", map[string]any{"dataset": "live"})
	if code != http.StatusOK {
		t.Fatalf("query maintained dataset: status %d: %s", code, raw)
	}
	qr := decodeQueryResponse(t, raw)
	if len(qr.Skyline) != len(snap.Skyline) {
		t.Errorf("recompute over residents = %d rows, maintained = %d", len(qr.Skyline), len(snap.Skyline))
	}

	// The dataset listing reports maintenance state and generation.
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Datasets []struct {
			Name       string `json:"name"`
			Rows       int    `json:"rows"`
			Maintained bool   `json:"maintained"`
			Gen        uint64 `json:"gen"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 || !list.Datasets[0].Maintained || list.Datasets[0].Gen != 2 || list.Datasets[0].Rows != 202 {
		t.Errorf("dataset listing = %+v", list)
	}
}

func TestMaintainedEndpointErrors(t *testing.T) {
	ts := newTestServer(t, mrskyline.ServiceConfig{Nodes: 2})
	code, raw := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "plain",
		"data": [][]float64{{1, 2}, {2, 1}},
	})
	if code != http.StatusOK {
		t.Fatalf("plain registration: status %d: %s", code, raw)
	}

	// Deltas against an unknown dataset: 404. Against a plain one: 409.
	code, _ = postJSON(t, ts.URL+"/v1/datasets/nope/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "row": []float64{1, 1}}},
	})
	if code != http.StatusNotFound {
		t.Errorf("unknown dataset deltas: status %d, want 404", code)
	}
	code, _ = postJSON(t, ts.URL+"/v1/datasets/plain/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "row": []float64{1, 1}}},
	})
	if code != http.StatusConflict {
		t.Errorf("non-maintained deltas: status %d, want 409", code)
	}
	if resp, err := http.Get(ts.URL + "/v1/datasets/plain/skyline"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("non-maintained skyline read: status %d, want 409", resp.StatusCode)
		}
	}

	// Maintained tuning fields without "maintain": true are rejected.
	code, _ = postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":         "tuned",
		"data":         [][]float64{{1, 2}},
		"maintain_ppd": 4,
	})
	if code != http.StatusBadRequest {
		t.Errorf("tuning without maintain: status %d, want 400", code)
	}

	code, raw = postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":     "live",
		"maintain": true,
		"data":     [][]float64{{0.5, 0.5}},
	})
	if code != http.StatusOK {
		t.Fatalf("maintained registration: status %d: %s", code, raw)
	}
	// Empty delta batches and unknown ops are 400s.
	code, _ = postJSON(t, ts.URL+"/v1/datasets/live/deltas", map[string]any{"deltas": []map[string]any{}})
	if code != http.StatusBadRequest {
		t.Errorf("empty delta batch: status %d, want 400", code)
	}
	code, _ = postJSON(t, ts.URL+"/v1/datasets/live/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "upsert", "row": []float64{1, 1}}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", code)
	}
	// Malformed since_gen is a 400.
	if resp, err := http.Get(ts.URL + "/v1/datasets/live/skyline?since_gen=banana"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad since_gen: status %d, want 400", resp.StatusCode)
		}
	}
}
