// Command skylined serves skyline queries over HTTP. One mrskyline.Service
// — a single long-lived simulated cluster behind a FIFO admission
// controller — executes every query, so concurrent requests share the
// cluster's task slots the way concurrent jobs share a real cluster.
//
// Endpoints (all JSON):
//
//	POST /v1/skyline      {"data": [[..]], "algorithm": "MR-GPMRS", ...}
//	POST /v1/constrained  {..., "constraints": [{"min":0.2,"max":1}, {}]}
//	POST /v1/subspace     {..., "dims": [0, 2]}
//	POST   /v1/datasets        {"name":"hotels", "data":[[..]]} or
//	                           {"name":"anti", "generate":{"distribution":"anticorrelated","card":1000,"dim":4,"seed":7}}
//	GET    /v1/datasets        list cached datasets
//	DELETE /v1/datasets/{name} drop a dataset (and its durable state)
//	GET    /v1/stats           service load + metrics registry
//	GET    /healthz            liveness
//
// A dataset registered with "maintain": true keeps its skyline
// incrementally up to date under churn instead of recomputing per query:
//
//	POST /v1/datasets/{name}/deltas   {"deltas":[{"op":"insert","row":[..]},{"op":"delete","row":[..]}]}
//	GET  /v1/datasets/{name}/skyline  latest skyline + generation; ?since_gen=N
//	                                  answers {"changed":false} cheaply when nothing moved
//
// With -datadir, maintained datasets are durable: every acknowledged
// delta batch is in the write-ahead log under
// <datadir>/datasets/<name>/ before the response is sent (policy per
// -walsync), and on startup every dataset found there is restored to its
// exact pre-shutdown skyline and generation.
//
// Query requests name a cached dataset ("dataset":"hotels") or carry rows
// inline ("data"). Overload surfaces as 429, a deadline as 504, invalid
// arguments as 400.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	mrskyline "mrskyline"
	"mrskyline/internal/experiments"
	"mrskyline/internal/rpcexec"
)

func main() {
	// Worker re-exec entry: when a process-executor master spawned this
	// process, serve tasks and exit instead of starting the HTTP server.
	rpcexec.WorkerMain()
	addr := flag.String("addr", ":8080", "listen address")
	executor := flag.String("executor", "inproc", "MapReduce backend: inproc (simulated cluster) or process (multi-process workers over RPC)")
	workers := flag.Int("workers", 4, "worker processes for -executor=process")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes (inproc)")
	slots := flag.Int("slots", 2, "task slots per node (inproc)")
	maxInFlight := flag.Int("maxinflight", 4, "concurrently executing queries (inproc)")
	maxQueue := flag.Int("maxqueue", 64, "queued queries beyond maxinflight (negative: reject when busy; inproc)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query deadline (0: none)")
	spillBudget := flag.Int64("spillbudget", 0, "external-memory shuffle budget in bytes (0 = all in RAM)")
	spillDir := flag.String("spilldir", "", "directory for spill run files (default: the system temp dir; only with -spillbudget > 0)")
	dataDir := flag.String("datadir", "", "root directory for durable maintained datasets (empty: memory-only)")
	walSync := flag.String("walsync", "always", "WAL fsync policy for durable datasets: always|batch|interval")
	walSyncInterval := flag.Duration("walsyncinterval", 0, "fsync cadence for -walsync=interval (default 50ms)")
	checkpointEvery := flag.Int("checkpointevery", 0, "checkpoint a durable dataset after this many delta batches (default 256, negative: only on shutdown)")
	flag.Parse()

	if err := experiments.ValidateSpillConfig(*spillBudget, *spillDir, flagSet("spillbudget"), flagSet("spilldir")); err != nil {
		log.Fatalf("skylined: %v", err)
	}

	if *dataDir == "" && (flagSet("walsync") || flagSet("walsyncinterval") || flagSet("checkpointevery")) {
		log.Fatalf("skylined: -walsync/-walsyncinterval/-checkpointevery require -datadir")
	}
	cfg := mrskyline.ServiceConfig{
		Nodes:              *nodes,
		SlotsPerNode:       *slots,
		MaxInFlight:        *maxInFlight,
		MaxQueue:           *maxQueue,
		QueryTimeout:       *timeout,
		SpillBudget:        *spillBudget,
		SpillDir:           *spillDir,
		WALSync:            *walSync,
		WALSyncInterval:    *walSyncInterval,
		WALCheckpointEvery: *checkpointEvery,
	}
	switch *executor {
	case "inproc":
	case "process":
		if err := experiments.ValidateWorkers(*workers); err != nil {
			log.Fatalf("skylined: %v", err)
		}
		spillDirProc := *spillDir
		if *spillBudget > 0 && spillDirProc == "" {
			spillDirProc = os.TempDir()
		}
		pe, err := rpcexec.New(rpcexec.Config{
			Workers:     *workers,
			SpillBudget: *spillBudget,
			SpillDir:    spillDirProc,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Executor = pe
	default:
		log.Fatalf("skylined: unknown -executor %q (want inproc|process)", *executor)
	}
	svc, err := mrskyline.NewService(cfg)
	if err != nil {
		log.Fatal(err)
	}
	web := newServer(svc, *dataDir)
	if *dataDir != "" {
		if err := web.restoreDatasets(); err != nil {
			log.Fatalf("skylined: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting requests, write a
	// final checkpoint for every durable dataset, shut worker processes
	// down. A later restart with the same -datadir replays nothing.
	httpSrv := &http.Server{Handler: web.handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		<-sigs
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		httpSrv.Shutdown(ctx) // Serve returns ErrServerClosed
		cancel()
		web.closeDatasets()
		svc.Close()
		close(shutdownDone)
	}()
	if *executor == "process" {
		log.Printf("skylined: listening on %s (%d worker processes)", ln.Addr(), *workers)
	} else {
		log.Printf("skylined: listening on %s (%d nodes × %d slots, %d in flight)", ln.Addr(), *nodes, *slots, *maxInFlight)
	}
	err = httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		<-shutdownDone
		return
	}
	web.closeDatasets()
	svc.Close()
	log.Fatal(err)
}

// flagSet reports whether the named flag was passed explicitly on the
// command line (as opposed to holding its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// server is the HTTP front-end: one Service plus a named-dataset cache so
// repeated queries against the same data do not re-ship rows in every
// request body.
type server struct {
	svc *mrskyline.Service
	// dataDir is the root for durable maintained datasets ("" = memory
	// only); each lives in dataDir/datasets/<name>/.
	dataDir string

	mu       sync.RWMutex
	datasets map[string]*dataset
}

// dataset is one cache entry: plain rows, or a maintained skyline handle
// when the dataset was registered with "maintain": true. Maintained
// entries serve regular queries from their current resident rows. dir is
// the durable directory ("" for memory-only entries).
type dataset struct {
	data  [][]float64
	maint *mrskyline.MaintainedSkyline
	dir   string
}

// rows returns the dataset's current rows (a maintained dataset's
// residents change under deltas; a plain dataset is immutable).
func (d *dataset) rows() [][]float64 {
	if d.maint != nil {
		return d.maint.Rows()
	}
	return d.data
}

func (d *dataset) size() int {
	if d.maint != nil {
		return d.maint.Size()
	}
	return len(d.data)
}

func newServer(svc *mrskyline.Service, dataDir string) *server {
	return &server{svc: svc, dataDir: dataDir, datasets: make(map[string]*dataset)}
}

// datasetDir returns the durable directory for name, or "" when the
// server runs memory-only.
func (s *server) datasetDir(name string) string {
	if s.dataDir == "" {
		return ""
	}
	return filepath.Join(s.dataDir, "datasets", name)
}

// restoreDatasets reopens every durable maintained dataset found under
// dataDir at startup. A directory holding no durable state is skipped
// with a warning; corrupt state is a startup error — skylined refuses to
// serve data it cannot prove correct.
func (s *server) restoreDatasets() error {
	root := filepath.Join(s.dataDir, "datasets")
	ents, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if err := validateDatasetName(name); err != nil {
			log.Printf("skylined: skipping %s: %v", filepath.Join(root, name), err)
			continue
		}
		dir := filepath.Join(root, name)
		h, err := s.svc.RestoreMaintained(mrskyline.MaintainOptions{DataDir: dir})
		if errors.Is(err, mrskyline.ErrNoDurableState) {
			log.Printf("skylined: skipping %s: no durable state", dir)
			continue
		}
		if err != nil {
			return fmt.Errorf("restoring dataset %q: %w", name, err)
		}
		s.datasets[name] = &dataset{maint: h, dir: dir}
		log.Printf("skylined: restored dataset %q (%d rows, gen %d)", name, h.Size(), h.Generation())
	}
	return nil
}

// closeDatasets closes every maintained handle, writing final checkpoints
// for the durable ones.
func (s *server) closeDatasets() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, ds := range s.datasets {
		if ds.maint == nil {
			continue
		}
		if err := ds.maint.Close(); err != nil {
			log.Printf("skylined: closing dataset %q: %v", name, err)
		}
	}
}

// validateDatasetName rejects names that could escape the datasets
// directory or break filenames once they become on-disk paths: path
// separators, "." / "..", NUL and other control bytes, and unbounded
// length.
func validateDatasetName(name string) error {
	if name == "" {
		return errors.New(`"name" is required`)
	}
	if len(name) > 128 {
		return fmt.Errorf(`"name" is too long (%d bytes, max 128)`, len(name))
	}
	if name == "." || name == ".." {
		return fmt.Errorf(`invalid dataset name %q`, name)
	}
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c == '/' || c == '\\':
			return fmt.Errorf(`dataset name %q must not contain path separators`, name)
		case c < 0x20 || c == 0x7f:
			return fmt.Errorf(`dataset name %q must not contain control characters`, name)
		}
	}
	return nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/skyline", s.postOnly(s.handleSkyline))
	mux.HandleFunc("/v1/constrained", s.postOnly(s.handleConstrained))
	mux.HandleFunc("/v1/subspace", s.postOnly(s.handleSubspace))
	mux.HandleFunc("/v1/datasets", s.handleDatasets)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/deltas", s.handleDeltas)
	mux.HandleFunc("GET /v1/datasets/{name}/skyline", s.handleMaintainedSkyline)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// queryRequest is the shared body of the three query endpoints.
type queryRequest struct {
	// Dataset names a cached dataset; Data carries rows inline. Exactly
	// one must be set (empty data is expressed as "data": []).
	Dataset string      `json:"dataset,omitempty"`
	Data    [][]float64 `json:"data,omitempty"`

	Algorithm string `json:"algorithm,omitempty"`
	Kernel    string `json:"kernel,omitempty"`
	Maximize  []bool `json:"maximize,omitempty"`
	PPD       int    `json:"ppd,omitempty"`
	Mappers   int    `json:"mappers,omitempty"`
	Reducers  int    `json:"reducers,omitempty"`

	// Constraints applies to /v1/constrained: one range per dimension; a
	// missing side is unbounded.
	Constraints []rangeJSON `json:"constraints,omitempty"`
	// Dims applies to /v1/subspace.
	Dims []int `json:"dims,omitempty"`
}

type rangeJSON struct {
	Min *float64 `json:"min"`
	Max *float64 `json:"max"`
}

func (r rangeJSON) toRange() mrskyline.Range {
	out := mrskyline.Unbounded()
	if r.Min != nil {
		out.Min = *r.Min
	}
	if r.Max != nil {
		out.Max = *r.Max
	}
	return out
}

func (q *queryRequest) options() mrskyline.Options {
	return mrskyline.Options{
		Algorithm: mrskyline.Algorithm(q.Algorithm),
		Kernel:    q.Kernel,
		Maximize:  q.Maximize,
		PPD:       q.PPD,
		Mappers:   q.Mappers,
		Reducers:  q.Reducers,
	}
}

type queryResponse struct {
	Skyline [][]float64     `json:"skyline"`
	Stats   mrskyline.Stats `json:"stats"`
}

// httpError pairs a message with its status code.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errCode(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, mrskyline.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(errCode(err))
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) postOnly(h func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
			return
		}
		h(w, r)
	}
}

// decodeQuery parses the body and resolves the dataset reference.
func (s *server) decodeQuery(r *http.Request) (*queryRequest, [][]float64, error) {
	var q queryRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		return nil, nil, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	if q.Dataset == "" {
		return &q, q.Data, nil
	}
	if q.Data != nil {
		return nil, nil, &httpError{http.StatusBadRequest, `"dataset" and "data" are mutually exclusive`}
	}
	s.mu.RLock()
	ds, ok := s.datasets[q.Dataset]
	s.mu.RUnlock()
	if !ok {
		return nil, nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown dataset %q", q.Dataset)}
	}
	return &q, ds.rows(), nil
}

// lookupMaintained resolves a path's {name} to a maintained dataset.
func (s *server) lookupMaintained(r *http.Request) (*mrskyline.MaintainedSkyline, error) {
	name := r.PathValue("name")
	s.mu.RLock()
	ds, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name)}
	}
	if ds.maint == nil {
		return nil, &httpError{http.StatusConflict, fmt.Sprintf("dataset %q is not maintained (register it with \"maintain\": true)", name)}
	}
	return ds.maint, nil
}

// handleDeltas applies a batch of inserts/deletes to a maintained
// dataset and reports the new generation.
func (s *server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	h, err := s.lookupMaintained(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req struct {
		Deltas []mrskyline.Delta `json:"deltas"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()})
		return
	}
	if len(req.Deltas) == 0 {
		writeError(w, &httpError{http.StatusBadRequest, `"deltas" is required and must be non-empty`})
		return
	}
	res, err := h.ApplyDeltas(req.Deltas)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, res)
}

// handleMaintainedSkyline serves the latest maintained skyline. With
// ?since_gen=N it is a cheap continuous-query poll: when the generation
// still equals N the response is {"gen":N,"changed":false} with no rows.
func (s *server) handleMaintainedSkyline(w http.ResponseWriter, r *http.Request) {
	h, err := s.lookupMaintained(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if sg := r.URL.Query().Get("since_gen"); sg != "" {
		since, err := strconv.ParseUint(sg, 10, 64)
		if err != nil {
			writeError(w, &httpError{http.StatusBadRequest, "bad since_gen: " + err.Error()})
			return
		}
		if cur := h.Generation(); cur == since {
			writeJSON(w, map[string]any{"gen": cur, "changed": false})
			return
		}
	}
	snap := h.Skyline()
	writeJSON(w, map[string]any{"gen": snap.Gen, "changed": true, "skyline": snap.Skyline})
}

func (s *server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	q, data, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.svc.Compute(r.Context(), data, q.options())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, queryResponse{Skyline: res.Skyline, Stats: res.Stats})
}

func (s *server) handleConstrained(w http.ResponseWriter, r *http.Request) {
	q, data, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	constraints := make([]mrskyline.Range, len(q.Constraints))
	for i, rng := range q.Constraints {
		constraints[i] = rng.toRange()
	}
	res, err := s.svc.ComputeConstrained(r.Context(), data, constraints, q.options())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, queryResponse{Skyline: res.Skyline, Stats: res.Stats})
}

func (s *server) handleSubspace(w http.ResponseWriter, r *http.Request) {
	q, data, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.svc.ComputeSubspace(r.Context(), data, q.Dims, q.options())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, queryResponse{Skyline: res.Skyline, Stats: res.Stats})
}

// datasetRequest registers a named dataset: inline rows or a synthetic
// generator spec (the distributions of the paper's evaluation).
type datasetRequest struct {
	Name     string      `json:"name"`
	Data     [][]float64 `json:"data,omitempty"`
	Generate *struct {
		Distribution string `json:"distribution"`
		Card         int    `json:"card"`
		Dim          int    `json:"dim"`
		Seed         int64  `json:"seed"`
	} `json:"generate,omitempty"`
	// Maintain opens the dataset as an incrementally maintained skyline:
	// POST {name}/deltas applies churn and GET {name}/skyline reads the
	// up-to-date result without recomputing. The remaining fields tune the
	// maintained handle (see mrskyline.MaintainOptions) and require
	// Maintain; MaintainDim permits an empty seed ("data": []).
	Maintain       bool   `json:"maintain,omitempty"`
	MaintainDim    int    `json:"maintain_dim,omitempty"`
	MaintainPPD    int    `json:"maintain_ppd,omitempty"`
	MaintainWindow int    `json:"maintain_window,omitempty"`
	Maximize       []bool `json:"maximize,omitempty"`
}

func (s *server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		type entry struct {
			Name       string `json:"name"`
			Rows       int    `json:"rows"`
			Maintained bool   `json:"maintained,omitempty"`
			Gen        uint64 `json:"gen,omitempty"`
		}
		list := make([]entry, 0, len(s.datasets))
		for name, ds := range s.datasets {
			e := entry{Name: name, Rows: ds.size()}
			if ds.maint != nil {
				e.Maintained = true
				e.Gen = ds.maint.Generation()
			}
			list = append(list, e)
		}
		s.mu.RUnlock()
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
		writeJSON(w, map[string]any{"datasets": list})
	case http.MethodPost:
		var req datasetRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()})
			return
		}
		if err := validateDatasetName(req.Name); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
		data := req.Data
		if req.Generate != nil {
			if data != nil {
				writeError(w, &httpError{http.StatusBadRequest, `"data" and "generate" are mutually exclusive`})
				return
			}
			g := req.Generate
			var err error
			data, err = mrskyline.Generate(g.Distribution, g.Card, g.Dim, g.Seed)
			if err != nil {
				writeError(w, err)
				return
			}
		}
		if data == nil {
			writeError(w, &httpError{http.StatusBadRequest, `either "data" or "generate" is required`})
			return
		}
		if !req.Maintain && (req.MaintainDim != 0 || req.MaintainPPD != 0 || req.MaintainWindow != 0) {
			writeError(w, &httpError{http.StatusBadRequest, `"maintain_dim"/"maintain_ppd"/"maintain_window" require "maintain": true`})
			return
		}
		ds := &dataset{data: data}
		if req.Maintain {
			dir := s.datasetDir(req.Name)
			if dir != "" {
				// A durable dataset owns an on-disk directory; silently
				// overwriting it would destroy logged state. Require an explicit
				// DELETE first.
				s.mu.RLock()
				_, loaded := s.datasets[req.Name]
				s.mu.RUnlock()
				if loaded {
					writeError(w, &httpError{http.StatusConflict, fmt.Sprintf("dataset %q already exists; DELETE it first", req.Name)})
					return
				}
			}
			h, err := s.svc.OpenMaintained(data, mrskyline.MaintainOptions{
				Dim:        req.MaintainDim,
				PPD:        req.MaintainPPD,
				WindowSize: req.MaintainWindow,
				Maximize:   req.Maximize,
				DataDir:    dir,
			})
			if err != nil {
				writeError(w, err)
				return
			}
			ds = &dataset{maint: h, dir: dir}
		}
		s.mu.Lock()
		if old := s.datasets[req.Name]; old != nil && old.maint != nil {
			old.maint.Close()
		}
		s.datasets[req.Name] = ds
		s.mu.Unlock()
		resp := map[string]any{"name": req.Name, "rows": ds.size()}
		if req.Maintain {
			resp["maintained"] = true
			resp["gen"] = ds.maint.Generation()
			resp["skyline_size"] = len(ds.maint.Skyline().Skyline)
		}
		writeJSON(w, resp)
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET or POST required"})
	}
}

// handleDeleteDataset drops a dataset: the maintained handle (if any) is
// closed and its durable state — log segments and checkpoints — removed
// from disk, so the name is immediately reusable.
func (s *server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ds, ok := s.datasets[name]
	if ok {
		delete(s.datasets, name)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, &httpError{http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name)})
		return
	}
	if ds.maint != nil {
		if err := ds.maint.Close(); err != nil {
			log.Printf("skylined: closing dataset %q: %v", name, err)
		}
	}
	if ds.dir != "" {
		if err := os.RemoveAll(ds.dir); err != nil {
			writeError(w, &httpError{http.StatusInternalServerError, fmt.Sprintf("removing durable state: %v", err)})
			return
		}
	}
	writeJSON(w, map[string]any{"name": name, "deleted": true})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET required"})
		return
	}
	metrics, err := s.svc.MetricsJSON()
	if err != nil {
		writeError(w, &httpError{http.StatusInternalServerError, err.Error()})
		return
	}
	writeJSON(w, map[string]any{
		"service": s.svc.Stats(),
		"metrics": json.RawMessage(metrics),
	})
}
