// Command skylined serves skyline queries over HTTP. One mrskyline.Service
// — a single long-lived simulated cluster behind a FIFO admission
// controller — executes every query, so concurrent requests share the
// cluster's task slots the way concurrent jobs share a real cluster.
//
// Endpoints (all JSON):
//
//	POST /v1/skyline      {"data": [[..]], "algorithm": "MR-GPMRS", ...}
//	POST /v1/constrained  {..., "constraints": [{"min":0.2,"max":1}, {}]}
//	POST /v1/subspace     {..., "dims": [0, 2]}
//	POST /v1/datasets     {"name":"hotels", "data":[[..]]} or
//	                      {"name":"anti", "generate":{"distribution":"anticorrelated","card":1000,"dim":4,"seed":7}}
//	GET  /v1/datasets     list cached datasets
//	GET  /v1/stats        service load + metrics registry
//	GET  /healthz         liveness
//
// Query requests name a cached dataset ("dataset":"hotels") or carry rows
// inline ("data"). Overload surfaces as 429, a deadline as 504, invalid
// arguments as 400.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	mrskyline "mrskyline"
	"mrskyline/internal/experiments"
	"mrskyline/internal/rpcexec"
)

func main() {
	// Worker re-exec entry: when a process-executor master spawned this
	// process, serve tasks and exit instead of starting the HTTP server.
	rpcexec.WorkerMain()
	addr := flag.String("addr", ":8080", "listen address")
	executor := flag.String("executor", "inproc", "MapReduce backend: inproc (simulated cluster) or process (multi-process workers over RPC)")
	workers := flag.Int("workers", 4, "worker processes for -executor=process")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes (inproc)")
	slots := flag.Int("slots", 2, "task slots per node (inproc)")
	maxInFlight := flag.Int("maxinflight", 4, "concurrently executing queries (inproc)")
	maxQueue := flag.Int("maxqueue", 64, "queued queries beyond maxinflight (negative: reject when busy; inproc)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query deadline (0: none)")
	spillBudget := flag.Int64("spillbudget", 0, "external-memory shuffle budget in bytes (0 = all in RAM)")
	spillDir := flag.String("spilldir", "", "directory for spill run files (default: the system temp dir; only with -spillbudget > 0)")
	flag.Parse()

	if err := experiments.ValidateSpillConfig(*spillBudget, *spillDir, flagSet("spillbudget"), flagSet("spilldir")); err != nil {
		log.Fatalf("skylined: %v", err)
	}

	cfg := mrskyline.ServiceConfig{
		Nodes:        *nodes,
		SlotsPerNode: *slots,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueryTimeout: *timeout,
		SpillBudget:  *spillBudget,
		SpillDir:     *spillDir,
	}
	switch *executor {
	case "inproc":
	case "process":
		if err := experiments.ValidateWorkers(*workers); err != nil {
			log.Fatalf("skylined: %v", err)
		}
		spillDirProc := *spillDir
		if *spillBudget > 0 && spillDirProc == "" {
			spillDirProc = os.TempDir()
		}
		pe, err := rpcexec.New(rpcexec.Config{
			Workers:     *workers,
			SpillBudget: *spillBudget,
			SpillDir:    spillDirProc,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Executor = pe
	default:
		log.Fatalf("skylined: unknown -executor %q (want inproc|process)", *executor)
	}
	svc, err := mrskyline.NewService(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Shut worker processes down on SIGINT/SIGTERM (no-op for inproc).
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		svc.Close()
		os.Exit(0)
	}()
	if *executor == "process" {
		log.Printf("skylined: listening on %s (%d worker processes)", *addr, *workers)
	} else {
		log.Printf("skylined: listening on %s (%d nodes × %d slots, %d in flight)", *addr, *nodes, *slots, *maxInFlight)
	}
	err = http.ListenAndServe(*addr, newServer(svc).handler())
	svc.Close()
	log.Fatal(err)
}

// flagSet reports whether the named flag was passed explicitly on the
// command line (as opposed to holding its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// server is the HTTP front-end: one Service plus a named-dataset cache so
// repeated queries against the same data do not re-ship rows in every
// request body.
type server struct {
	svc *mrskyline.Service

	mu       sync.RWMutex
	datasets map[string][][]float64
}

func newServer(svc *mrskyline.Service) *server {
	return &server{svc: svc, datasets: make(map[string][][]float64)}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/skyline", s.postOnly(s.handleSkyline))
	mux.HandleFunc("/v1/constrained", s.postOnly(s.handleConstrained))
	mux.HandleFunc("/v1/subspace", s.postOnly(s.handleSubspace))
	mux.HandleFunc("/v1/datasets", s.handleDatasets)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// queryRequest is the shared body of the three query endpoints.
type queryRequest struct {
	// Dataset names a cached dataset; Data carries rows inline. Exactly
	// one must be set (empty data is expressed as "data": []).
	Dataset string      `json:"dataset,omitempty"`
	Data    [][]float64 `json:"data,omitempty"`

	Algorithm string `json:"algorithm,omitempty"`
	Kernel    string `json:"kernel,omitempty"`
	Maximize  []bool `json:"maximize,omitempty"`
	PPD       int    `json:"ppd,omitempty"`
	Mappers   int    `json:"mappers,omitempty"`
	Reducers  int    `json:"reducers,omitempty"`

	// Constraints applies to /v1/constrained: one range per dimension; a
	// missing side is unbounded.
	Constraints []rangeJSON `json:"constraints,omitempty"`
	// Dims applies to /v1/subspace.
	Dims []int `json:"dims,omitempty"`
}

type rangeJSON struct {
	Min *float64 `json:"min"`
	Max *float64 `json:"max"`
}

func (r rangeJSON) toRange() mrskyline.Range {
	out := mrskyline.Unbounded()
	if r.Min != nil {
		out.Min = *r.Min
	}
	if r.Max != nil {
		out.Max = *r.Max
	}
	return out
}

func (q *queryRequest) options() mrskyline.Options {
	return mrskyline.Options{
		Algorithm: mrskyline.Algorithm(q.Algorithm),
		Kernel:    q.Kernel,
		Maximize:  q.Maximize,
		PPD:       q.PPD,
		Mappers:   q.Mappers,
		Reducers:  q.Reducers,
	}
}

type queryResponse struct {
	Skyline [][]float64     `json:"skyline"`
	Stats   mrskyline.Stats `json:"stats"`
}

// httpError pairs a message with its status code.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errCode(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, mrskyline.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(errCode(err))
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) postOnly(h func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
			return
		}
		h(w, r)
	}
}

// decodeQuery parses the body and resolves the dataset reference.
func (s *server) decodeQuery(r *http.Request) (*queryRequest, [][]float64, error) {
	var q queryRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		return nil, nil, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	if q.Dataset == "" {
		return &q, q.Data, nil
	}
	if q.Data != nil {
		return nil, nil, &httpError{http.StatusBadRequest, `"dataset" and "data" are mutually exclusive`}
	}
	s.mu.RLock()
	data, ok := s.datasets[q.Dataset]
	s.mu.RUnlock()
	if !ok {
		return nil, nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown dataset %q", q.Dataset)}
	}
	return &q, data, nil
}

func (s *server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	q, data, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.svc.Compute(r.Context(), data, q.options())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, queryResponse{Skyline: res.Skyline, Stats: res.Stats})
}

func (s *server) handleConstrained(w http.ResponseWriter, r *http.Request) {
	q, data, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	constraints := make([]mrskyline.Range, len(q.Constraints))
	for i, rng := range q.Constraints {
		constraints[i] = rng.toRange()
	}
	res, err := s.svc.ComputeConstrained(r.Context(), data, constraints, q.options())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, queryResponse{Skyline: res.Skyline, Stats: res.Stats})
}

func (s *server) handleSubspace(w http.ResponseWriter, r *http.Request) {
	q, data, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.svc.ComputeSubspace(r.Context(), data, q.Dims, q.options())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, queryResponse{Skyline: res.Skyline, Stats: res.Stats})
}

// datasetRequest registers a named dataset: inline rows or a synthetic
// generator spec (the distributions of the paper's evaluation).
type datasetRequest struct {
	Name     string      `json:"name"`
	Data     [][]float64 `json:"data,omitempty"`
	Generate *struct {
		Distribution string `json:"distribution"`
		Card         int    `json:"card"`
		Dim          int    `json:"dim"`
		Seed         int64  `json:"seed"`
	} `json:"generate,omitempty"`
}

func (s *server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		type entry struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
		}
		list := make([]entry, 0, len(s.datasets))
		for name, data := range s.datasets {
			list = append(list, entry{name, len(data)})
		}
		s.mu.RUnlock()
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
		writeJSON(w, map[string]any{"datasets": list})
	case http.MethodPost:
		var req datasetRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()})
			return
		}
		if req.Name == "" {
			writeError(w, &httpError{http.StatusBadRequest, `"name" is required`})
			return
		}
		data := req.Data
		if req.Generate != nil {
			if data != nil {
				writeError(w, &httpError{http.StatusBadRequest, `"data" and "generate" are mutually exclusive`})
				return
			}
			g := req.Generate
			var err error
			data, err = mrskyline.Generate(g.Distribution, g.Card, g.Dim, g.Seed)
			if err != nil {
				writeError(w, err)
				return
			}
		}
		if data == nil {
			writeError(w, &httpError{http.StatusBadRequest, `either "data" or "generate" is required`})
			return
		}
		s.mu.Lock()
		s.datasets[req.Name] = data
		s.mu.Unlock()
		writeJSON(w, map[string]any{"name": req.Name, "rows": len(data)})
	default:
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET or POST required"})
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &httpError{http.StatusMethodNotAllowed, "GET required"})
		return
	}
	metrics, err := s.svc.MetricsJSON()
	if err != nil {
		writeError(w, &httpError{http.StatusInternalServerError, err.Error()})
		return
	}
	writeJSON(w, map[string]any{
		"service": s.svc.Stats(),
		"metrics": json.RawMessage(metrics),
	})
}
