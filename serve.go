package mrskyline

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/spill"
	"mrskyline/internal/wal"
)

// ErrOverloaded is returned by Service queries rejected because the
// admission queue is full. Test with errors.Is.
var ErrOverloaded = mapreduce.ErrQueueFull

// ServiceConfig shapes a Service. The zero value is ready to use.
type ServiceConfig struct {
	// Executor, when non-nil, runs every query instead of a fresh
	// in-process simulated cluster — e.g. rpcexec's multi-process backend.
	// Nodes, SlotsPerNode, MaxInFlight and MaxQueue are then ignored
	// (admission control is an in-process-engine feature), and the Service
	// takes ownership: Close shuts the executor down.
	Executor mapreduce.Executor
	// Nodes is the simulated cluster size (default 8).
	Nodes int
	// SlotsPerNode is the per-node concurrent task count (default 2).
	SlotsPerNode int
	// MaxInFlight is the number of MapReduce jobs admitted concurrently
	// (default 4). Queries beyond it queue FIFO.
	MaxInFlight int
	// MaxQueue bounds the admission queue (default 64). Negative means
	// reject immediately whenever all in-flight slots are busy.
	MaxQueue int
	// QueryTimeout is the per-query deadline (default none). It covers
	// queue wait and execution; an expired query returns the context
	// error.
	QueryTimeout time.Duration
	// SpillBudget, when positive, runs every query through the
	// external-memory shuffle: map-output bytes beyond the budget spill to
	// sorted run files under SpillDir (default: the system temp dir) and
	// merge back in bounded memory. Zero keeps the all-in-RAM shuffle;
	// skylines are byte-identical either way. Ignored when an external
	// Executor is supplied (configure spilling on the executor instead).
	SpillBudget int64
	SpillDir    string
	// WALSync, WALSyncInterval and WALCheckpointEvery are service-wide
	// defaults for durable maintained handles (MaintainOptions.DataDir
	// set) opened through this Service: any handle that leaves the
	// corresponding MaintainOptions field zero inherits the service value.
	// WALSync is "always", "batch" or "interval" (empty means the
	// per-handle default, "always"). They do not affect memory-only
	// handles.
	WALSync            string
	WALSyncInterval    time.Duration
	WALCheckpointEvery int
}

// Service executes skyline queries on one long-lived simulated cluster —
// the serving-layer counterpart of the one-shot Compute functions, which
// build a fresh cluster per call. Concurrent queries share the cluster's
// task slots and pass through a FIFO admission controller; admission
// decisions and queue waits are recorded in the service's metrics
// registry (the mr.queue.* series).
//
// Service methods validate arguments exactly like their package-level
// counterparts. Options.Nodes and Options.SlotsPerNode are ignored: the
// cluster shape is fixed at NewService time.
//
// All methods are safe for concurrent use.
type Service struct {
	exec    mapreduce.Executor
	eng     *mapreduce.Engine // nil when an external Executor was supplied
	trace   *obs.Tracer
	timeout time.Duration
	walCfg  ServiceConfig // only the WAL* fields are read back
}

// applyWALDefaults fills zero WAL knobs from the service-wide defaults.
func (s *Service) applyWALDefaults(opts MaintainOptions) MaintainOptions {
	if opts.Sync == "" {
		opts.Sync = s.walCfg.WALSync
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = s.walCfg.WALSyncInterval
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = s.walCfg.WALCheckpointEvery
	}
	return opts
}

// NewService builds a Service on a fresh simulated cluster, or on
// cfg.Executor when one is supplied.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.QueryTimeout < 0 {
		return nil, fmt.Errorf("mrskyline: QueryTimeout must be ≥ 0, got %v", cfg.QueryTimeout)
	}
	if err := spill.ValidateSetup(cfg.SpillBudget, cfg.SpillDir); err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	if cfg.WALSync != "" {
		if _, err := wal.ParseSyncMode(cfg.WALSync); err != nil {
			return nil, fmt.Errorf("mrskyline: %w", err)
		}
	}
	if cfg.WALSyncInterval < 0 {
		return nil, fmt.Errorf("mrskyline: WALSyncInterval must be ≥ 0, got %v", cfg.WALSyncInterval)
	}
	if cfg.Executor != nil {
		return &Service{exec: cfg.Executor, trace: cfg.Executor.WallTracer(), timeout: cfg.QueryTimeout, walCfg: cfg}, nil
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 8
	}
	slots := cfg.SlotsPerNode
	if slots == 0 {
		slots = 2
	}
	if nodes < 0 || slots < 0 {
		return nil, fmt.Errorf("mrskyline: negative cluster shape %d nodes × %d slots", cfg.Nodes, cfg.SlotsPerNode)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = 4
	}
	if maxInFlight < 0 {
		return nil, fmt.Errorf("mrskyline: MaxInFlight must be ≥ 0, got %d", cfg.MaxInFlight)
	}
	maxQueue := cfg.MaxQueue
	switch {
	case maxQueue == 0:
		maxQueue = 64
	case maxQueue < 0:
		maxQueue = 0
	}
	c, err := cluster.Uniform(nodes, slots)
	if err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	eng := mapreduce.NewEngine(c)
	if cfg.SpillBudget > 0 {
		dir := cfg.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("mrskyline: SpillDir %q is not a usable directory", dir)
		}
		eng.Spill = &spill.Config{Dir: dir, Budget: cfg.SpillBudget, Stats: &spill.Stats{}}
	}
	tr := obs.New()
	eng.SetTrace(tr)
	eng.SetAdmission(maxInFlight, maxQueue)
	return &Service{exec: eng, eng: eng, trace: tr, timeout: cfg.QueryTimeout, walCfg: cfg}, nil
}

// Close releases the service's executor. With an external Executor that
// implements io.Closer (rpcexec's multi-process backend does), its worker
// processes are shut down; the default in-process engine needs no cleanup.
// The Service must not be used after Close.
func (s *Service) Close() error {
	if c, ok := s.exec.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// queryCtx applies the service deadline.
func (s *Service) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.timeout > 0 {
		return context.WithTimeout(ctx, s.timeout)
	}
	return context.WithCancel(ctx)
}

// Compute is the Service counterpart of the package-level Compute,
// running the job on the shared cluster under ctx and the service
// deadline.
func (s *Service) Compute(ctx context.Context, data [][]float64, opts Options) (*Result, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return emptyResult(opts), nil
	}
	ctx, cancel := s.queryCtx(ctx)
	defer cancel()
	return computeOn(ctx, s.exec, data, opts)
}

// ComputeConstrained is the Service counterpart of the package-level
// ComputeConstrained.
func (s *Service) ComputeConstrained(ctx context.Context, data [][]float64, constraints []Range, opts Options) (*Result, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if err := validateConstraints(constraints, opts); err != nil {
		return nil, err
	}
	// The deadline starts before constraint filtering: scanning a large
	// dataset against the constraint box is part of serving the query, so a
	// caller-supplied context that is already expired (or expires mid-scan)
	// must not be billed only against the MapReduce job.
	ctx, cancel := s.queryCtx(ctx)
	defer cancel()
	filtered, err := filterConstrained(data, constraints)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(filtered) == 0 {
		return emptyResult(opts), nil
	}
	return computeOn(ctx, s.exec, filtered, opts)
}

// ComputeSubspace is the Service counterpart of the package-level
// ComputeSubspace.
func (s *Service) ComputeSubspace(ctx context.Context, data [][]float64, dims []int, opts Options) (*Result, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if err := validateDims(dims, opts); err != nil {
		return nil, err
	}
	// As in ComputeConstrained: projection work counts against the query
	// deadline, so the context starts before it, not after.
	ctx, cancel := s.queryCtx(ctx)
	defer cancel()
	projected, err := projectSubspace(data, dims)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(projected) == 0 {
		return emptyResult(opts), nil
	}
	return computeOn(ctx, s.exec, projected, opts)
}

// ServiceStats is a point-in-time view of the service's load.
type ServiceStats struct {
	// InFlight and Queued report the admission controller: jobs currently
	// admitted and jobs waiting in the FIFO queue.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// BusySlots and TotalSlots report the simulated cluster's task slots.
	BusySlots  int `json:"busy_slots"`
	TotalSlots int `json:"total_slots"`
	// Admitted, Rejected and Canceled are cumulative admission outcomes
	// (the mr.queue.admitted / .rejected / .canceled counters).
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
}

// Stats returns the service's current load. With an external Executor the
// admission and busy-slot figures stay zero: they are in-process-engine
// telemetry.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{TotalSlots: s.exec.TotalSlots()}
	if s.eng != nil {
		st.InFlight, st.Queued = s.eng.AdmissionStats()
		st.BusySlots = s.eng.Cluster().BusySlots()
	}
	// Direct counter lookups: Stats sits on skylined's polling path, and a
	// full Snapshot would copy and sort every metric just to read three.
	reg := s.trace.Metrics()
	st.Admitted = reg.Counter("mr.queue.admitted")
	st.Rejected = reg.Counter("mr.queue.rejected")
	st.Canceled = reg.Counter("mr.queue.canceled")
	return st
}

// MetricsJSON returns the full metrics registry — counters, gauges and
// histogram summaries across every query served so far — marshaled as
// JSON. cmd/skylined serves it at /v1/stats.
func (s *Service) MetricsJSON() ([]byte, error) {
	return json.Marshal(s.trace.Metrics().Snapshot())
}
