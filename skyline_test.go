package mrskyline_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	mrskyline "mrskyline"
)

// naive computes the reference skyline under the given orientation.
func naive(data [][]float64, maximize []bool) [][]float64 {
	var out [][]float64
	for i, t := range data {
		dominated := false
		for j, u := range data {
			if i != j && mrskyline.Dominates(u, t, maximize) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	return out
}

func sameSet(a, b [][]float64) bool {
	contains := func(set [][]float64, row []float64) bool {
	next:
		for _, s := range set {
			if len(s) != len(row) {
				continue
			}
			for k := range s {
				if s[k] != row[k] {
					continue next
				}
			}
			return true
		}
		return false
	}
	for _, r := range a {
		if !contains(b, r) {
			return false
		}
	}
	for _, r := range b {
		if !contains(a, r) {
			return false
		}
	}
	return true
}

func TestComputeAllAlgorithms(t *testing.T) {
	data, err := mrskyline.Generate("anticorrelated", 400, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := naive(data, nil)
	for _, algo := range mrskyline.Algorithms() {
		res, err := mrskyline.Compute(data, mrskyline.Options{Algorithm: algo, Nodes: 4})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !sameSet(res.Skyline, want) {
			t.Fatalf("%s: wrong skyline (%d vs %d tuples)", algo, len(res.Skyline), len(want))
		}
		if res.Stats.SkylineSize != len(res.Skyline) {
			t.Errorf("%s: SkylineSize %d != %d", algo, res.Stats.SkylineSize, len(res.Skyline))
		}
		if res.Stats.Runtime <= 0 {
			t.Errorf("%s: Runtime = %v", algo, res.Stats.Runtime)
		}
	}
}

func TestComputeDefaultsToGPMRS(t *testing.T) {
	data, _ := mrskyline.Generate("independent", 200, 2, 1)
	res, err := mrskyline.Compute(data, mrskyline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm != "MR-GPMRS" {
		t.Errorf("default Algorithm = %q", res.Stats.Algorithm)
	}
	if res.Stats.PPD < 2 || res.Stats.Partitions == 0 {
		t.Errorf("grid stats missing: %+v", res.Stats)
	}
}

func TestComputeNonUnitDomain(t *testing.T) {
	// Real-world-looking data far from the unit box: hotel price [50, 900]
	// and distance [0.1, 25].
	rng := rand.New(rand.NewSource(9))
	data := make([][]float64, 500)
	for i := range data {
		data[i] = []float64{50 + rng.Float64()*850, 0.1 + rng.Float64()*24.9}
	}
	want := naive(data, nil)
	for _, algo := range []mrskyline.Algorithm{mrskyline.GPSRS, mrskyline.GPMRS, mrskyline.MRBNL, mrskyline.MRAngle} {
		res, err := mrskyline.Compute(data, mrskyline.Options{Algorithm: algo, Nodes: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !sameSet(res.Skyline, want) {
			t.Fatalf("%s: wrong skyline on non-unit domain", algo)
		}
	}
}

func TestComputeMaximize(t *testing.T) {
	// Minimize price, maximize rating.
	data := [][]float64{
		{100, 4.5},
		{80, 4.0},
		{120, 5.0},
		{90, 3.0}, // dominated by {80, 4.0}
		{80, 4.5}, // dominates {100, 4.5} and {80, 4.0}
	}
	maximize := []bool{false, true}
	want := naive(data, maximize)
	res, err := mrskyline.Compute(data, mrskyline.Options{Maximize: maximize, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(res.Skyline, want) {
		t.Fatalf("maximize skyline = %v, want %v", res.Skyline, want)
	}
	// Values must come back in their original orientation.
	for _, row := range res.Skyline {
		if row[1] < 0 {
			t.Fatalf("rating came back negated: %v", row)
		}
	}
}

func TestComputeMaximizeAllDims(t *testing.T) {
	data, _ := mrskyline.Generate("anticorrelated", 300, 3, 4)
	maximize := []bool{true, true, true}
	want := naive(data, maximize)
	res, err := mrskyline.Compute(data, mrskyline.Options{Maximize: maximize, Nodes: 3, Algorithm: mrskyline.GPSRS})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(res.Skyline, want) {
		t.Fatalf("all-maximize skyline wrong: %d vs %d", len(res.Skyline), len(want))
	}
}

func TestComputeInputNotModified(t *testing.T) {
	data := [][]float64{{3, 1}, {1, 3}, {2, 2}}
	orig := make([][]float64, len(data))
	for i, r := range data {
		orig[i] = append([]float64(nil), r...)
	}
	if _, err := mrskyline.Compute(data, mrskyline.Options{Maximize: []bool{true, false}, Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		for k := range data[i] {
			if data[i][k] != orig[i][k] {
				t.Fatal("Compute modified its input")
			}
		}
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := mrskyline.Compute([][]float64{{1, 2}}, mrskyline.Options{Maximize: []bool{true}}); err == nil {
		t.Error("mismatched Maximize accepted")
	}
	if _, err := mrskyline.Compute([][]float64{{1, 2}, {3}}, mrskyline.Options{}); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := mrskyline.Compute([][]float64{{1}}, mrskyline.Options{Algorithm: "MR-Quantum"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestComputeEmpty(t *testing.T) {
	res, err := mrskyline.Compute(nil, mrskyline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 0 || res.Stats.Algorithm != "MR-GPMRS" {
		t.Errorf("empty Compute = %+v", res)
	}
}

func TestComputeConstantDimension(t *testing.T) {
	// A constant dimension makes the bounding box empty on that axis; the
	// facade must widen it rather than fail.
	data := [][]float64{{1, 7}, {2, 7}, {3, 7}}
	res, err := mrskyline.Compute(data, mrskyline.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 1 || res.Skyline[0][0] != 1 {
		t.Errorf("constant-dim skyline = %v", res.Skyline)
	}
}

func TestGenerateAndCSV(t *testing.T) {
	data, err := mrskyline.Generate("correlated", 50, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 50 || len(data[0]) != 4 {
		t.Fatalf("Generate shape = %dx%d", len(data), len(data[0]))
	}
	if _, err := mrskyline.Generate("zipfian", 10, 2, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
	var buf bytes.Buffer
	if err := mrskyline.WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := mrskyline.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(data, back) {
		t.Error("CSV round trip lost tuples")
	}
	if _, err := mrskyline.ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("garbage CSV accepted")
	}
}

func TestDominatesHelper(t *testing.T) {
	if !mrskyline.Dominates([]float64{1, 1}, []float64{2, 2}, nil) {
		t.Error("minimize dominance wrong")
	}
	if !mrskyline.Dominates([]float64{2, 2}, []float64{1, 1}, []bool{true, true}) {
		t.Error("maximize dominance wrong")
	}
	if mrskyline.Dominates([]float64{1, 1}, []float64{1, 1}, nil) {
		t.Error("equal tuples dominate")
	}
	if mrskyline.Dominates([]float64{1}, []float64{1, 2}, nil) {
		t.Error("mismatched lengths dominate")
	}
}

func TestComputeKernels(t *testing.T) {
	data, _ := mrskyline.Generate("anticorrelated", 300, 3, 6)
	want := naive(data, nil)
	for _, kernel := range []string{"", "bnl", "sfs", "dc", "bbs"} {
		res, err := mrskyline.Compute(data, mrskyline.Options{
			Algorithm: mrskyline.GPMRS,
			Nodes:     3,
			Kernel:    kernel,
		})
		if err != nil {
			t.Fatalf("kernel %q: %v", kernel, err)
		}
		if !sameSet(res.Skyline, want) {
			t.Fatalf("kernel %q: wrong skyline", kernel)
		}
	}
	if _, err := mrskyline.Compute(data, mrskyline.Options{Kernel: "quantum"}); err == nil {
		t.Error("unknown kernel accepted")
	}
	// Legacy flag still works.
	res, err := mrskyline.Compute(data, mrskyline.Options{UseSFSKernel: true, Nodes: 2})
	if err != nil || !sameSet(res.Skyline, want) {
		t.Errorf("UseSFSKernel path broken: %v", err)
	}
}
