package mrskyline

import (
	"fmt"
	"math"
)

// Range is a closed per-dimension interval used by constrained skyline
// queries. Use math.Inf values to leave a side open.
type Range struct {
	Min, Max float64
}

// Unbounded is the range imposing no constraint.
func Unbounded() Range { return Range{Min: math.Inf(-1), Max: math.Inf(1)} }

// contains reports whether v lies within the range.
func (r Range) contains(v float64) bool { return v >= r.Min && v <= r.Max }

// ComputeConstrained returns the constrained skyline: the skyline of the
// tuples falling inside every dimension's range (the constrained skyline
// query of [Chen, Cui, Lu, TKDE 2011], cited by the paper). constraints
// must have one Range per dimension; tuples outside any range are excluded
// before the skyline computation, so the result can contain tuples that a
// filtered-out tuple would have dominated — exactly the constrained
// skyline semantics.
func ComputeConstrained(data [][]float64, constraints []Range, opts Options) (*Result, error) {
	if len(data) == 0 {
		return Compute(data, opts)
	}
	d := len(data[0])
	if len(constraints) != d {
		return nil, fmt.Errorf("mrskyline: %d constraints for %d-dimensional data", len(constraints), d)
	}
	filtered := make([][]float64, 0, len(data))
	for _, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("mrskyline: ragged row of %d columns, want %d", len(row), d)
		}
		in := true
		for k, v := range row {
			if !constraints[k].contains(v) {
				in = false
				break
			}
		}
		if in {
			filtered = append(filtered, row)
		}
	}
	return Compute(filtered, opts)
}

// ComputeSubspace returns the subspace skyline over the selected 0-based
// dimensions (cf. SUBSKY [Tao, Xiao, Pei, ICDE 2006], cited by the paper):
// the skyline of the data projected onto dims. Result rows contain only
// the selected dimensions, in the order given. opts.Maximize, when set,
// applies to the projected dimensions.
func ComputeSubspace(data [][]float64, dims []int, opts Options) (*Result, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mrskyline: no subspace dimensions selected")
	}
	if len(data) == 0 {
		return Compute(nil, opts)
	}
	d := len(data[0])
	seen := make(map[int]bool, len(dims))
	for _, k := range dims {
		if k < 0 || k >= d {
			return nil, fmt.Errorf("mrskyline: subspace dimension %d out of range [0,%d)", k, d)
		}
		if seen[k] {
			return nil, fmt.Errorf("mrskyline: subspace dimension %d selected twice", k)
		}
		seen[k] = true
	}
	projected := make([][]float64, len(data))
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("mrskyline: ragged row of %d columns, want %d", len(row), d)
		}
		p := make([]float64, len(dims))
		for j, k := range dims {
			p[j] = row[k]
		}
		projected[i] = p
	}
	return Compute(projected, opts)
}
