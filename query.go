package mrskyline

import (
	"context"
	"fmt"
	"math"

	"mrskyline/internal/tuple"
)

// Range is a closed per-dimension interval used by constrained skyline
// queries. Use math.Inf values to leave a side open; NaN bounds are
// rejected.
type Range struct {
	Min, Max float64
}

// Unbounded is the range imposing no constraint.
func Unbounded() Range { return Range{Min: math.Inf(-1), Max: math.Inf(1)} }

// contains reports whether v lies within the range.
func (r Range) contains(v float64) bool { return v >= r.Min && v <= r.Max }

// ComputeConstrained returns the constrained skyline: the skyline of the
// tuples falling inside every dimension's range (the constrained skyline
// query of [Chen, Cui, Lu, TKDE 2011], cited by the paper). constraints
// must have one Range per dimension; tuples outside any range are excluded
// before the skyline computation, so the result can contain tuples that a
// filtered-out tuple would have dominated — exactly the constrained
// skyline semantics.
//
// Arguments are validated before the empty-data fast path, and rows are
// validated before range filtering: a row with a NaN value is an error,
// not a silently filtered-out tuple (NaN lies outside every Range).
func ComputeConstrained(data [][]float64, constraints []Range, opts Options) (*Result, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if err := validateConstraints(constraints, opts); err != nil {
		return nil, err
	}
	filtered, err := filterConstrained(data, constraints)
	if err != nil {
		return nil, err
	}
	if len(filtered) == 0 {
		return emptyResult(opts), nil
	}
	eng, err := newEngine(opts)
	if err != nil {
		return nil, err
	}
	return computeOn(context.Background(), eng, filtered, opts)
}

// validateConstraints checks the data-independent constraint invariants:
// at least one range, no NaN bounds, no inverted range, and agreement
// with opts.Maximize when both are given.
func validateConstraints(constraints []Range, opts Options) error {
	if len(constraints) == 0 {
		return fmt.Errorf("mrskyline: constrained query needs one Range per dimension, got none")
	}
	for k, r := range constraints {
		if math.IsNaN(r.Min) || math.IsNaN(r.Max) {
			return fmt.Errorf("mrskyline: constraint %d has a NaN bound", k)
		}
		if r.Min > r.Max {
			return fmt.Errorf("mrskyline: constraint %d is inverted: Min %v > Max %v", k, r.Min, r.Max)
		}
	}
	if opts.Maximize != nil && len(opts.Maximize) != len(constraints) {
		return fmt.Errorf("mrskyline: %d constraints but Maximize has %d entries", len(constraints), len(opts.Maximize))
	}
	return nil
}

// filterConstrained validates the rows and keeps those inside every
// range. Row validation happens before filtering so that a dataset
// Compute rejects (ragged rows, NaN/Inf values) fails here too instead of
// being filtered into acceptance.
func filterConstrained(data [][]float64, constraints []Range) ([][]float64, error) {
	if len(data) == 0 {
		return nil, nil
	}
	d := len(data[0])
	if len(constraints) != d {
		return nil, fmt.Errorf("mrskyline: %d constraints for %d-dimensional data", len(constraints), d)
	}
	work := make(tuple.List, len(data))
	for i, row := range data {
		work[i] = tuple.Tuple(row)
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	filtered := make([][]float64, 0, len(data))
	for _, row := range data {
		in := true
		for k, v := range row {
			if !constraints[k].contains(v) {
				in = false
				break
			}
		}
		if in {
			filtered = append(filtered, row)
		}
	}
	return filtered, nil
}

// ComputeSubspace returns the subspace skyline over the selected 0-based
// dimensions (cf. SUBSKY [Tao, Xiao, Pei, ICDE 2006], cited by the paper):
// the skyline of the data projected onto dims. Result rows contain only
// the selected dimensions, in the order given. opts.Maximize, when set,
// applies to the projected dimensions.
//
// Arguments are validated before the empty-data fast path: an empty,
// duplicate or negative dims selection, or a Maximize length disagreeing
// with dims, is an error regardless of data.
func ComputeSubspace(data [][]float64, dims []int, opts Options) (*Result, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if err := validateDims(dims, opts); err != nil {
		return nil, err
	}
	projected, err := projectSubspace(data, dims)
	if err != nil {
		return nil, err
	}
	if len(projected) == 0 {
		return emptyResult(opts), nil
	}
	eng, err := newEngine(opts)
	if err != nil {
		return nil, err
	}
	return computeOn(context.Background(), eng, projected, opts)
}

// validateDims checks the data-independent subspace invariants: a
// non-empty selection of distinct non-negative dimensions, agreeing with
// opts.Maximize when both are given. Upper bounds need the data's
// dimensionality and are checked in projectSubspace.
func validateDims(dims []int, opts Options) error {
	if len(dims) == 0 {
		return fmt.Errorf("mrskyline: no subspace dimensions selected")
	}
	seen := make(map[int]bool, len(dims))
	for _, k := range dims {
		if k < 0 {
			return fmt.Errorf("mrskyline: negative subspace dimension %d", k)
		}
		if seen[k] {
			return fmt.Errorf("mrskyline: subspace dimension %d selected twice", k)
		}
		seen[k] = true
	}
	if opts.Maximize != nil && len(opts.Maximize) != len(dims) {
		return fmt.Errorf("mrskyline: %d subspace dimensions but Maximize has %d entries", len(dims), len(opts.Maximize))
	}
	return nil
}

// projectSubspace checks dims against the data's dimensionality and
// returns the projected rows.
func projectSubspace(data [][]float64, dims []int) ([][]float64, error) {
	if len(data) == 0 {
		return nil, nil
	}
	d := len(data[0])
	for _, k := range dims {
		if k >= d {
			return nil, fmt.Errorf("mrskyline: subspace dimension %d out of range [0,%d)", k, d)
		}
	}
	projected := make([][]float64, len(data))
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("mrskyline: ragged row of %d columns, want %d", len(row), d)
		}
		p := make([]float64, len(dims))
		for j, k := range dims {
			p[j] = row[k]
		}
		projected[i] = p
	}
	return projected, nil
}
