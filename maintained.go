package mrskyline

// This file is the public face of internal/maintain: incrementally
// maintained skylines for the serving layer. A MaintainedSkyline keeps
// the grid, per-cell local skylines and the pruning bitstring resident so
// a delta batch costs work proportional to the cells it touches, while
// Compute-style queries rebuild all of it per call. Handles come from
// OpenMaintained or Service.OpenMaintained; the latter also publishes
// maintenance counters into the service's metrics registry.

import (
	"encoding/json"
	"fmt"
	"time"

	"mrskyline/internal/maintain"
	"mrskyline/internal/obs"
	"mrskyline/internal/tuple"
	"mrskyline/internal/wal"
)

// MaintainOptions shapes OpenMaintained. The zero value derives
// everything from the seed data.
type MaintainOptions struct {
	// Dim fixes the dimensionality; required only when the seed data is
	// empty (otherwise it must match the data, 0 = derive).
	Dim int
	// PPD fixes the grid's partitions-per-dimension; 0 chooses it with the
	// paper's Equation 4 from the seed cardinality. The grid is fixed for
	// the handle's lifetime.
	PPD int
	// Maximize flips dimensions to "higher is better", exactly as in
	// Options.Maximize. The preference is fixed at open time.
	Maximize []bool
	// WindowSize, when positive, maintains the skyline of a sliding window
	// over the insert stream: once the resident set reaches WindowSize,
	// each insert evicts the oldest tuple. Sliding handles are insert-only.
	WindowSize int

	// DataDir, when non-empty, makes the handle durable: every delta batch
	// is appended to a write-ahead log under DataDir before it is applied,
	// background checkpoints bound replay length, and RestoreMaintained
	// reopens the directory to the exact pre-crash state after a restart.
	// The directory is created if missing, must be empty on first open, and
	// must not be shared between handles. Empty keeps the handle
	// memory-only, exactly as before.
	DataDir string
	// Sync selects the WAL fsync policy for durable handles: "always"
	// (fsync before every acknowledged batch; the default), "batch" (group
	// commit — acknowledged batches are fsynced by a background syncer,
	// coalescing bursts) or "interval" (time-driven fsync every
	// SyncInterval; crash loss window is at most one interval of
	// acknowledged batches).
	Sync string
	// SyncInterval is the fsync cadence for Sync="interval" (default 50ms).
	SyncInterval time.Duration
	// CheckpointEvery triggers a background checkpoint after that many
	// logged batches (default 256; negative disables automatic
	// checkpoints — Close still writes a final one).
	CheckpointEvery int
	// SegmentBytes rolls the log to a new segment file once the active one
	// reaches this size (default 1 MiB).
	SegmentBytes int64
}

// ErrNoDurableState is wrapped by RestoreMaintained when the DataDir
// holds no durable state (no checkpoint and no log). Test with errors.Is.
var ErrNoDurableState = wal.ErrNoState

// DeltaOp names a delta operation in wire form.
type DeltaOp string

// The delta operations.
const (
	DeltaInsert DeltaOp = "insert"
	DeltaDelete DeltaOp = "delete"
)

// Delta is one insert or delete against a maintained skyline.
type Delta struct {
	Op  DeltaOp   `json:"op"`
	Row []float64 `json:"row"`
}

// DeltaResult summarizes one ApplyDeltas batch.
type DeltaResult struct {
	// Inserted and Deleted count applied operations; Missing counts
	// deletes whose tuple was not resident (no-ops, not errors); Evicted
	// counts sliding-window evictions triggered by inserts.
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	Missing  int `json:"missing"`
	Evicted  int `json:"evicted"`
	// Gen and SkylineSize describe the snapshot published after the batch.
	Gen         uint64 `json:"gen"`
	SkylineSize int    `json:"skyline_size"`
}

// MaintainedSnapshot is one consistent published state of a maintained
// skyline. Rows are copies in the caller's orientation; the caller owns
// them.
type MaintainedSnapshot struct {
	Gen     uint64      `json:"gen"`
	Skyline [][]float64 `json:"skyline"`
}

// MaintainStats reports a maintained handle's cumulative work.
type MaintainStats struct {
	Inserts           uint64 `json:"inserts"`
	Deletes           uint64 `json:"deletes"`
	DeleteMisses      uint64 `json:"delete_misses"`
	Evictions         uint64 `json:"evictions"`
	CellRebuilds      uint64 `json:"cell_rebuilds"`
	ContribRecomputes uint64 `json:"contrib_recomputes"`
	DominanceTests    int64  `json:"dominance_tests"`
	Size              int    `json:"size"`
	Cells             int    `json:"cells"`
	Surviving         int    `json:"surviving"`
	Gen               uint64 `json:"gen"`
	SkylineSize       int    `json:"skyline_size"`
}

// MaintainedSkyline is an incrementally maintained skyline handle. All
// methods are safe for concurrent use: ApplyDeltas serializes writers,
// Skyline and Continuous readers never block.
type MaintainedSkyline struct {
	m      *maintain.Maintained
	d      *wal.Durable // nil for memory-only handles
	orient Orientation
	reg    *obs.Registry // nil unless opened through a Service
}

// durableMeta is the opaque blob persisted in every snapshot: the pieces
// of MaintainOptions that wal's own snapshot header does not carry.
type durableMeta struct {
	Maximize []bool `json:"maximize,omitempty"`
}

// walOptions translates the public knobs into wal.Options.
func walOptions(opts MaintainOptions, reg *obs.Registry) (wal.Options, error) {
	mode := wal.SyncAlways
	if opts.Sync != "" {
		var err error
		if mode, err = wal.ParseSyncMode(opts.Sync); err != nil {
			return wal.Options{}, fmt.Errorf("mrskyline: %w", err)
		}
	}
	return wal.Options{
		Sync:            mode,
		SyncEvery:       opts.SyncInterval,
		SegmentBytes:    opts.SegmentBytes,
		CheckpointEvery: opts.CheckpointEvery,
		Metrics:         reg,
	}, nil
}

// OpenMaintained seeds a maintained skyline with data. The data is
// copied; later mutations of the caller's rows do not affect the handle.
// With opts.DataDir set the handle is durable — see MaintainOptions.
func OpenMaintained(data [][]float64, opts MaintainOptions) (*MaintainedSkyline, error) {
	return openMaintained(data, opts, nil)
}

func openMaintained(data [][]float64, opts MaintainOptions, reg *obs.Registry) (*MaintainedSkyline, error) {
	if opts.Maximize != nil && len(data) > 0 && len(opts.Maximize) != len(data[0]) {
		return nil, fmt.Errorf("mrskyline: Maximize has %d entries for %d-dimensional data", len(opts.Maximize), len(data[0]))
	}
	orient := NewOrientation(opts.Maximize)
	seed := make(tuple.List, len(data))
	for i, row := range data {
		seed[i] = tuple.Tuple(orient.Apply(row)).Clone()
	}
	cfg := maintain.Config{
		Dim:       opts.Dim,
		PPD:       opts.PPD,
		WindowCap: opts.WindowSize,
	}
	if opts.DataDir == "" {
		m, err := maintain.New(seed, cfg)
		if err != nil {
			return nil, fmt.Errorf("mrskyline: %w", err)
		}
		return &MaintainedSkyline{m: m, orient: orient, reg: reg}, nil
	}
	wo, err := walOptions(opts, reg)
	if err != nil {
		return nil, err
	}
	meta, err := json.Marshal(durableMeta{Maximize: opts.Maximize})
	if err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	d, err := wal.Create(opts.DataDir, seed, cfg, meta, wo)
	if err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	return &MaintainedSkyline{m: d.Maintained(), d: d, orient: orient, reg: reg}, nil
}

// RestoreMaintained reopens a durable maintained skyline from
// opts.DataDir: the newest intact checkpoint is loaded, the write-ahead
// log replayed, and the handle resumes at the exact generation and
// skyline bytes of the last acknowledged batch (per the sync policy the
// directory was written under). Grid shape, sliding-window size and
// orientation come from the persisted state; opts.Dim, PPD, WindowSize
// and Maximize are ignored. Restoring a directory that holds no durable
// state returns an error wrapping ErrNoDurableState.
func RestoreMaintained(opts MaintainOptions) (*MaintainedSkyline, error) {
	return restoreMaintained(opts, nil)
}

func restoreMaintained(opts MaintainOptions, reg *obs.Registry) (*MaintainedSkyline, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("mrskyline: RestoreMaintained needs DataDir")
	}
	wo, err := walOptions(opts, reg)
	if err != nil {
		return nil, err
	}
	d, err := wal.Recover(opts.DataDir, wo)
	if err != nil {
		return nil, fmt.Errorf("mrskyline: %w", err)
	}
	var meta durableMeta
	if raw := d.Meta(); len(raw) > 0 {
		if err := json.Unmarshal(raw, &meta); err != nil {
			d.Abandon()
			return nil, fmt.Errorf("mrskyline: corrupt handle metadata in %s: %w", opts.DataDir, err)
		}
	}
	return &MaintainedSkyline{m: d.Maintained(), d: d, orient: NewOrientation(meta.Maximize), reg: reg}, nil
}

// OpenMaintained seeds a maintained skyline attached to the service: its
// maintenance counters (maintain.deltas.*, maintain.publishes) and — for
// durable handles — the wal.* durability series land in the service's
// metrics registry alongside the mr.* series, so MetricsJSON and
// /v1/stats cover churn too. The handle itself serves reads from resident
// state and never runs MapReduce jobs on the service's cluster.
func (s *Service) OpenMaintained(data [][]float64, opts MaintainOptions) (*MaintainedSkyline, error) {
	return openMaintained(data, s.applyWALDefaults(opts), s.trace.Metrics())
}

// RestoreMaintained is the Service counterpart of the package-level
// RestoreMaintained; recovery metrics (wal.recovery.ns, wal.replay.*)
// land in the service's registry.
func (s *Service) RestoreMaintained(opts MaintainOptions) (*MaintainedSkyline, error) {
	return restoreMaintained(s.applyWALDefaults(opts), s.trace.Metrics())
}

// ApplyDeltas applies a batch of inserts and deletes atomically and
// publishes exactly one new snapshot: the whole batch is validated first
// (a NaN or ragged row rejects the batch with no state change), and
// concurrent readers observe either the pre- or post-batch skyline.
func (h *MaintainedSkyline) ApplyDeltas(deltas []Delta) (DeltaResult, error) {
	batch := make([]maintain.Delta, len(deltas))
	for i, d := range deltas {
		switch d.Op {
		case DeltaInsert:
			batch[i].Op = maintain.OpInsert
		case DeltaDelete:
			batch[i].Op = maintain.OpDelete
		default:
			return DeltaResult{}, fmt.Errorf("mrskyline: unknown delta op %q (delta %d)", d.Op, i)
		}
		batch[i].Row = tuple.Tuple(h.orient.Apply(d.Row)).Clone()
	}
	var res maintain.ApplyResult
	var err error
	if h.d != nil {
		res, err = h.d.Apply(batch) // logged (and fsynced per policy) before applying
	} else {
		res, err = h.m.Apply(batch)
	}
	if err != nil {
		return DeltaResult{}, fmt.Errorf("mrskyline: %w", err)
	}
	h.reg.Count("maintain.deltas.inserted", int64(res.Inserted))
	h.reg.Count("maintain.deltas.deleted", int64(res.Deleted))
	h.reg.Count("maintain.deltas.missing", int64(res.Missing))
	h.reg.Count("maintain.deltas.evicted", int64(res.Evicted))
	h.reg.Count("maintain.publishes", 1)
	return DeltaResult{
		Inserted:    res.Inserted,
		Deleted:     res.Deleted,
		Missing:     res.Missing,
		Evicted:     res.Evicted,
		Gen:         res.Gen,
		SkylineSize: res.SkylineSize,
	}, nil
}

// Skyline returns the latest published skyline. It never blocks, even
// while a delta batch is being applied.
func (h *MaintainedSkyline) Skyline() *MaintainedSnapshot {
	return h.snapshotRows(h.m.Snapshot())
}

// snapshotRows copies a published snapshot out in the caller's
// orientation.
func (h *MaintainedSkyline) snapshotRows(s *maintain.Snapshot) *MaintainedSnapshot {
	out := &MaintainedSnapshot{Gen: s.Gen, Skyline: make([][]float64, len(s.Skyline))}
	for i, t := range s.Skyline {
		out.Skyline[i] = tuple.Tuple(h.orient.Apply(t)).Clone()
	}
	return out
}

// Rows returns a copy of every resident tuple in the caller's
// orientation — the dataset a full recompute would run over.
func (h *MaintainedSkyline) Rows() [][]float64 {
	rows := h.m.Rows()
	out := make([][]float64, len(rows))
	for i, t := range rows {
		out[i] = tuple.Tuple(h.orient.Apply(t)).Clone()
	}
	return out
}

// Size returns the number of resident tuples.
func (h *MaintainedSkyline) Size() int { return h.m.Size() }

// Generation returns the latest published generation. Generations start
// at 1 (the seed publish) and increase by one per ApplyDeltas batch.
func (h *MaintainedSkyline) Generation() uint64 { return h.m.Generation() }

// Stats returns the handle's cumulative maintenance work.
func (h *MaintainedSkyline) Stats() MaintainStats {
	st := h.m.Stats()
	return MaintainStats{
		Inserts:           st.Inserts,
		Deletes:           st.Deletes,
		DeleteMisses:      st.DeleteMisses,
		Evictions:         st.Evictions,
		CellRebuilds:      st.CellRebuilds,
		ContribRecomputes: st.ContribRecomputes,
		DominanceTests:    st.DominanceTests,
		Size:              st.Size,
		Cells:             st.Cells,
		Surviving:         st.Surviving,
		Gen:               st.Gen,
		SkylineSize:       st.SkylineSize,
	}
}

// Durable reports whether the handle persists its state to a DataDir.
func (h *MaintainedSkyline) Durable() bool { return h.d != nil }

// Checkpoint forces a durable handle to write a checkpoint now, bounding
// the next recovery's replay to batches applied after it. It is a no-op
// on memory-only handles. Automatic checkpoints (CheckpointEvery) make
// calling this optional.
func (h *MaintainedSkyline) Checkpoint() error {
	if h.d == nil {
		return nil
	}
	return h.d.Checkpoint()
}

// Close writes a final checkpoint and releases the handle's files. On
// memory-only handles it is a no-op. The handle must not be used after
// Close; Close is idempotent.
func (h *MaintainedSkyline) Close() error {
	if h.d == nil {
		return nil
	}
	return h.d.Close()
}

// Continuous opens a continuous query over the maintained skyline: a
// cursor that reports the result set only when it changed since the last
// poll. Each cursor tracks its own position; any number may run
// concurrently with writers.
func (h *MaintainedSkyline) Continuous() *ContinuousQuery {
	return &ContinuousQuery{h: h}
}

// ContinuousQuery is a generation cursor over a MaintainedSkyline. Not
// safe for concurrent use of the same cursor; open one per consumer.
type ContinuousQuery struct {
	h       *MaintainedSkyline
	lastGen uint64
}

// Poll returns the latest skyline and true when its generation advanced
// past the cursor (the first Poll always reports the seed state), or
// (nil, false) when nothing changed — the cheap no-change path copies no
// rows. Poll never blocks.
func (c *ContinuousQuery) Poll() (*MaintainedSnapshot, bool) {
	s := c.h.m.Snapshot()
	if s.Gen == c.lastGen {
		return nil, false
	}
	c.lastGen = s.Gen
	return c.h.snapshotRows(s), true
}
