package mrskyline

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func durableRows(rng *rand.Rand, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for d := range rows[i] {
			rows[i][d] = rng.Float64()
		}
	}
	return rows
}

func TestDurableMaintainedRestartRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := filepath.Join(t.TempDir(), "ds")
	seed := durableRows(rng, 40, 3)

	h, err := OpenMaintained(seed, MaintainOptions{DataDir: dir, Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Durable() {
		t.Fatal("handle with DataDir is not durable")
	}
	var deltas []Delta
	for _, row := range durableRows(rng, 25, 3) {
		deltas = append(deltas, Delta{Op: DeltaInsert, Row: row})
	}
	deltas = append(deltas, Delta{Op: DeltaDelete, Row: seed[3]})
	for _, d := range deltas {
		if _, err := h.ApplyDeltas([]Delta{d}); err != nil {
			t.Fatal(err)
		}
	}
	wantSnap := h.Skyline()
	wantGen := h.Generation()
	wantSize := h.Size()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreMaintained(MaintainOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Generation() != wantGen || r.Size() != wantSize {
		t.Fatalf("restored gen/size = %d/%d, want %d/%d", r.Generation(), r.Size(), wantGen, wantSize)
	}
	gotSnap := r.Skyline()
	if !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatalf("restored skyline differs from pre-shutdown skyline")
	}
	// The restored handle keeps working.
	res, err := r.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{0.01, 0.01, 0.01}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != wantGen+1 {
		t.Fatalf("post-restore generation = %d, want %d", res.Gen, wantGen+1)
	}
}

// TestDurableMaximizeSurvivesRestore: orientation is not derivable from
// the stored (oriented) tuples, so it rides in the snapshot meta blob.
func TestDurableMaximizeSurvivesRestore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	data := [][]float64{{1, 9}, {2, 8}, {9, 1}}
	maximize := []bool{false, true}

	h, err := OpenMaintained(data, MaintainOptions{DataDir: dir, Maximize: maximize})
	if err != nil {
		t.Fatal(err)
	}
	want := h.Skyline()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreMaintained(MaintainOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Skyline()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored skyline %v, want %v (orientation lost?)", got.Skyline, want.Skyline)
	}
	for _, row := range got.Skyline {
		if row[1] < 5 {
			t.Fatalf("skyline row %v not in caller orientation (maximize dim 1)", row)
		}
	}
}

func TestRestoreMaintainedErrors(t *testing.T) {
	if _, err := RestoreMaintained(MaintainOptions{}); err == nil {
		t.Fatal("RestoreMaintained without DataDir succeeded")
	}
	if _, err := RestoreMaintained(MaintainOptions{DataDir: t.TempDir()}); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("restore of empty dir = %v, want ErrNoDurableState", err)
	}
	if _, err := OpenMaintained([][]float64{{1, 2}}, MaintainOptions{DataDir: t.TempDir(), Sync: "sometimes"}); err == nil || !strings.Contains(err.Error(), "sync mode") {
		t.Fatalf("bad sync mode error = %v", err)
	}
}

func TestMemoryOnlyHandleCloseNoop(t *testing.T) {
	h, err := OpenMaintained([][]float64{{1, 2}, {2, 1}}, MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Durable() {
		t.Fatal("memory-only handle claims to be durable")
	}
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Memory-only handles stay usable semantics-wise: Close is a no-op.
	if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{0.5, 0.5}}}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceDurableMaintained(t *testing.T) {
	svc, err := NewService(ServiceConfig{WALSync: "batch", WALCheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	dir := filepath.Join(t.TempDir(), "ds")
	h, err := svc.OpenMaintained(durableRows(rand.New(rand.NewSource(5)), 20, 3), MaintainOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := h.ApplyDeltas([]Delta{{Op: DeltaInsert, Row: []float64{0.1 * float64(i), 0.5, 0.5}}}); err != nil {
			t.Fatal(err)
		}
	}
	want := h.Skyline()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Durability metrics must land in the service registry.
	metrics, err := svc.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"wal.append.records", "wal.fsyncs"} {
		if !strings.Contains(string(metrics), series) {
			t.Fatalf("service metrics missing %q:\n%s", series, metrics)
		}
	}
	r, err := svc.RestoreMaintained(MaintainOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !reflect.DeepEqual(r.Skyline(), want) {
		t.Fatalf("service restore diverged from pre-close skyline")
	}
}

func TestServiceConfigWALValidation(t *testing.T) {
	if _, err := NewService(ServiceConfig{WALSync: "nope"}); err == nil {
		t.Fatal("NewService accepted an unknown WALSync")
	}
	if _, err := NewService(ServiceConfig{WALSyncInterval: -1}); err == nil {
		t.Fatal("NewService accepted a negative WALSyncInterval")
	}
}
