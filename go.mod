module mrskyline

go 1.22
