// Package tuple defines the multi-dimensional tuple model used throughout
// the library, together with the tuple dominance relation (Definition 1 of
// the paper) and a compact binary codec used when tuples cross the
// MapReduce shuffle.
//
// All algorithms in this repository assume a minimization skyline: a smaller
// value is better on every dimension, matching the convention adopted by the
// paper ("this paper assumes that a smaller value is better").
package tuple

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tuple is a point in d-dimensional space. The dimensionality is the slice
// length; all tuples taking part in one skyline computation must share it.
type Tuple []float64

// Dim returns the dimensionality of the tuple.
func (t Tuple) Dim() int { return len(t) }

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether t and u have the same dimensionality and identical
// values on every dimension.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as "(v0, v1, ...)" with compact float formatting.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// DominanceResult classifies the relationship between two tuples as seen
// from the first tuple's perspective.
type DominanceResult int8

const (
	// DomNone means neither tuple dominates the other.
	DomNone DominanceResult = iota
	// DomLeft means the first tuple dominates the second.
	DomLeft
	// DomRight means the first tuple is dominated by the second.
	DomRight
	// DomEqual means the tuples coincide on every dimension. Equal tuples do
	// not dominate each other under Definition 1.
	DomEqual
)

// String implements fmt.Stringer for DominanceResult.
func (r DominanceResult) String() string {
	switch r {
	case DomNone:
		return "incomparable"
	case DomLeft:
		return "dominates"
	case DomRight:
		return "dominated-by"
	case DomEqual:
		return "equals"
	default:
		return fmt.Sprintf("DominanceResult(%d)", int8(r))
	}
}

// Compare performs a single pass over both tuples and classifies their
// dominance relationship (Definition 1, minimization semantics):
// t dominates u iff t is not worse (not larger) than u on all dimensions and
// strictly better (smaller) on at least one.
//
// Compare panics if the tuples disagree on dimensionality: mixing
// dimensionalities is a programming error, not a data condition.
func Compare(t, u Tuple) DominanceResult {
	if len(t) != len(u) {
		panic(fmt.Sprintf("tuple: dimensionality mismatch %d vs %d", len(t), len(u)))
	}
	better, worse := false, false
	for i := range t {
		switch {
		case t[i] < u[i]:
			better = true
		case t[i] > u[i]:
			worse = true
		}
		if better && worse {
			return DomNone
		}
	}
	switch {
	case better && !worse:
		return DomLeft
	case worse && !better:
		return DomRight
	default:
		return DomEqual
	}
}

// Dominates reports whether t dominates u under Definition 1.
func Dominates(t, u Tuple) bool { return Compare(t, u) == DomLeft }

// DominatesWeak reports whether t is not worse than u on every dimension
// (i.e. t dominates u or t equals u). The grid partition dominance check
// uses this weak form on cell corners; see internal/grid.
func DominatesWeak(t, u Tuple) bool {
	r := Compare(t, u)
	return r == DomLeft || r == DomEqual
}

// Sum returns the sum of the tuple's entries. It is the classic monotone
// scoring function used by the SFS presorting technique: if sum(t) < sum(u),
// then u cannot dominate t.
func (t Tuple) Sum() float64 {
	s := 0.0
	for _, v := range t {
		s += v
	}
	return s
}

// MinWith lowers each entry of t to the minimum of t and u in place.
// Both tuples must share dimensionality.
func (t Tuple) MinWith(u Tuple) {
	for i := range t {
		if u[i] < t[i] {
			t[i] = u[i]
		}
	}
}

// MaxWith raises each entry of t to the maximum of t and u in place.
// Both tuples must share dimensionality.
func (t Tuple) MaxWith(u Tuple) {
	for i := range t {
		if u[i] > t[i] {
			t[i] = u[i]
		}
	}
}

// Valid reports whether every entry of the tuple is a finite number.
// NaN and infinities break the transitivity arguments the skyline
// algorithms rely on, so loaders reject such tuples up front.
func (t Tuple) Valid() bool {
	for _, v := range t {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// List is a set of tuples sharing one dimensionality.
type List []Tuple

// Clone deep-copies the list.
func (l List) Clone() List {
	c := make(List, len(l))
	for i, t := range l {
		c[i] = t.Clone()
	}
	return c
}

// Dim returns the dimensionality of the list's tuples, or 0 for an empty
// list.
func (l List) Dim() int {
	if len(l) == 0 {
		return 0
	}
	return len(l[0])
}

// Validate checks that all tuples share one dimensionality and contain only
// finite values.
func (l List) Validate() error {
	if len(l) == 0 {
		return nil
	}
	d := len(l[0])
	if d == 0 {
		return fmt.Errorf("tuple: zero-dimensional tuple at index 0")
	}
	for i, t := range l {
		if len(t) != d {
			return fmt.Errorf("tuple: dimensionality mismatch at index %d: got %d, want %d", i, len(t), d)
		}
		if !t.Valid() {
			return fmt.Errorf("tuple: non-finite value in tuple at index %d: %v", i, t)
		}
	}
	return nil
}

// Contains reports whether the list contains a tuple equal to t.
func (l List) Contains(t Tuple) bool {
	for _, u := range l {
		if t.Equal(u) {
			return true
		}
	}
	return false
}

// EqualAsSet reports whether two lists contain exactly the same tuples,
// ignoring order and multiplicity of duplicates beyond presence.
// It is intended for test assertions on skyline results, which are sets.
func EqualAsSet(a, b List) bool {
	return subset(a, b) && subset(b, a)
}

func subset(a, b List) bool {
	for _, t := range a {
		if !b.Contains(t) {
			return false
		}
	}
	return true
}
