package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary codec is deliberately simple and allocation-conscious: tuples
// cross the simulated MapReduce shuffle in serialized form, so the encoding
// here is on the hot path of every experiment.
//
// Wire formats (little endian):
//
//	Tuple: uvarint dim | dim × float64 bits
//	List:  uvarint count | count × Tuple

// AppendEncode appends the wire encoding of t to dst and returns the
// extended slice.
func AppendEncode(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Encode returns the wire encoding of t.
func Encode(t Tuple) []byte {
	return AppendEncode(make([]byte, 0, binary.MaxVarintLen64+8*len(t)), t)
}

// Decode parses one tuple from the front of b, returning the tuple and the
// number of bytes consumed.
func Decode(b []byte) (Tuple, int, error) {
	dim, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: truncated dimension header")
	}
	if dim > uint64(len(b)-n)/8 {
		return nil, 0, fmt.Errorf("tuple: truncated payload: dim %d with %d bytes left", dim, len(b)-n)
	}
	t := make(Tuple, dim)
	off := n
	for i := range t {
		t[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return t, off, nil
}

// AppendEncodeList appends the wire encoding of the list to dst.
func AppendEncodeList(dst []byte, l List) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l)))
	for _, t := range l {
		dst = AppendEncode(dst, t)
	}
	return dst
}

// EncodeList returns the wire encoding of the list.
func EncodeList(l List) []byte {
	return AppendEncodeList(make([]byte, 0, 2+len(l)*(1+8*l.Dim())), l)
}

// DecodeList parses one list from the front of b, returning the list and
// the number of bytes consumed.
func DecodeList(b []byte) (List, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: truncated list header")
	}
	// A tuple occupies at least 1 byte, so count cannot exceed what remains.
	if count > uint64(len(b)-n) {
		return nil, 0, fmt.Errorf("tuple: implausible list count %d with %d bytes left", count, len(b)-n)
	}
	l := make(List, 0, count)
	off := n
	for i := uint64(0); i < count; i++ {
		t, m, err := Decode(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("tuple: list element %d: %w", i, err)
		}
		l = append(l, t)
		off += m
	}
	return l, off, nil
}
