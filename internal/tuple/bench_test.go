package tuple

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkTupleCodec measures the encode/decode round-trip on the shuffle's
// hot path, both the allocating Encode and the scratch-reusing AppendEncode
// every converted emit site uses.
func BenchmarkTupleCodec(b *testing.B) {
	for _, d := range []int{2, 8} {
		rng := rand.New(rand.NewSource(1))
		t := make(Tuple, d)
		for i := range t {
			t[i] = rng.Float64()
		}
		b.Run(fmt.Sprintf("encode/d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Encode(t)
			}
		})
		b.Run(fmt.Sprintf("append-encode/d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			var scratch []byte
			for i := 0; i < b.N; i++ {
				scratch = AppendEncode(scratch[:0], t)
			}
		})
		b.Run(fmt.Sprintf("roundtrip/d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			enc := Encode(t)
			for i := 0; i < b.N; i++ {
				if _, _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("list/n=64/d=4", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		l := make(List, 64)
		for i := range l {
			l[i] = make(Tuple, 4)
			for j := range l[i] {
				l[i][j] = rng.Float64()
			}
		}
		b.ReportAllocs()
		var scratch []byte
		for i := 0; i < b.N; i++ {
			scratch = AppendEncodeList(scratch[:0], l)
			if _, _, err := DecodeList(scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
