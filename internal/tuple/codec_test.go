package tuple

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		orig := Tuple(vals)
		enc := Encode(orig)
		dec, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if len(dec) != len(orig) {
			return false
		}
		for i := range dec {
			// Use bit-level equality so NaN round-trips too.
			if !bytes.Equal(Encode(Tuple{dec[i]}), Encode(Tuple{orig[i]})) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := Encode(Tuple{1, 2, 3})
	for i := 0; i < len(enc); i++ {
		if _, _, err := Decode(enc[:i]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded unexpectedly", i, len(enc))
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
}

func TestListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(8)
		n := rng.Intn(40)
		l := make(List, n)
		for i := range l {
			l[i] = make(Tuple, d)
			for k := range l[i] {
				l[i][k] = rng.NormFloat64()
			}
		}
		enc := EncodeList(l)
		dec, consumed, err := DecodeList(enc)
		if err != nil {
			t.Fatalf("DecodeList: %v", err)
		}
		if consumed != len(enc) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(enc))
		}
		if len(dec) != len(l) {
			t.Fatalf("len=%d want %d", len(dec), len(l))
		}
		for i := range l {
			if !dec[i].Equal(l[i]) {
				t.Fatalf("element %d: got %v want %v", i, dec[i], l[i])
			}
		}
	}
}

func TestListDecodeTruncated(t *testing.T) {
	enc := EncodeList(List{{1, 2}, {3, 4}})
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeList(enc[:i]); err == nil {
			t.Errorf("DecodeList of %d/%d bytes succeeded unexpectedly", i, len(enc))
		}
	}
}

func TestListDecodeImplausibleCount(t *testing.T) {
	// A header claiming 2^40 tuples in a few bytes must error, not OOM.
	b := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, _, err := DecodeList(b); err == nil {
		t.Error("implausible count accepted")
	}
}

func TestConcatenatedDecode(t *testing.T) {
	// Multiple tuples can be streamed back-to-back.
	var buf []byte
	want := List{{1}, {2, 3}, {4, 5, 6}}
	for _, tp := range want {
		buf = AppendEncode(buf, tp)
	}
	var got List
	for len(buf) > 0 {
		tp, n, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tp)
		buf = buf[n:]
	}
	if !EqualAsSet(got, want) || len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func BenchmarkEncode(b *testing.B) {
	t := Tuple{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	var dst []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = AppendEncode(dst[:0], t)
	}
}

func BenchmarkDecode(b *testing.B) {
	enc := Encode(Tuple{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
