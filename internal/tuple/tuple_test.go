package tuple

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	cases := []struct {
		name string
		a, b Tuple
		want DominanceResult
	}{
		{"dominates-strict-all", Tuple{1, 1}, Tuple{2, 2}, DomLeft},
		{"dominates-one-tie", Tuple{1, 2}, Tuple{2, 2}, DomLeft},
		{"dominated", Tuple{3, 3}, Tuple{2, 2}, DomRight},
		{"dominated-one-tie", Tuple{3, 2}, Tuple{2, 2}, DomRight},
		{"incomparable", Tuple{1, 3}, Tuple{3, 1}, DomNone},
		{"equal", Tuple{2, 2}, Tuple{2, 2}, DomEqual},
		{"equal-1d", Tuple{5}, Tuple{5}, DomEqual},
		{"dominates-1d", Tuple{4}, Tuple{5}, DomLeft},
		{"high-dim-incomparable", Tuple{0, 0, 0, 0, 1}, Tuple{1, 0, 0, 0, 0}, DomNone},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Compare(c.a, c.b); got != c.want {
				t.Errorf("Compare(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	// Compare(a,b) and Compare(b,a) must be mirror images.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d := 1 + rng.Intn(6)
		a, b := make(Tuple, d), make(Tuple, d)
		for k := 0; k < d; k++ {
			// Small discrete domain to exercise ties often.
			a[k] = float64(rng.Intn(3))
			b[k] = float64(rng.Intn(3))
		}
		ab, ba := Compare(a, b), Compare(b, a)
		ok := (ab == DomLeft && ba == DomRight) ||
			(ab == DomRight && ba == DomLeft) ||
			(ab == DomNone && ba == DomNone) ||
			(ab == DomEqual && ba == DomEqual)
		if !ok {
			t.Fatalf("asymmetric result: Compare(%v,%v)=%v but Compare(%v,%v)=%v", a, b, ab, b, a, ba)
		}
	}
}

func TestDominanceTransitivity(t *testing.T) {
	// If a ≺ b and b ≺ c then a ≺ c (the transitivity property Lemma 1
	// relies on).
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for i := 0; i < 20000 && checked < 500; i++ {
		d := 1 + rng.Intn(4)
		a, b, c := make(Tuple, d), make(Tuple, d), make(Tuple, d)
		for k := 0; k < d; k++ {
			a[k] = float64(rng.Intn(4))
			b[k] = float64(rng.Intn(4))
			c[k] = float64(rng.Intn(4))
		}
		if Dominates(a, b) && Dominates(b, c) {
			checked++
			if !Dominates(a, c) {
				t.Fatalf("transitivity violated: %v ≺ %v ≺ %v but not %v ≺ %v", a, b, c, a, c)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("too few transitive triples exercised: %d", checked)
	}
}

func TestDominanceIrreflexive(t *testing.T) {
	f := func(vals []float64) bool {
		t := Tuple(vals)
		return !Dominates(t, t)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimensionality mismatch")
		}
	}()
	Compare(Tuple{1}, Tuple{1, 2})
}

func TestDominatesWeak(t *testing.T) {
	if !DominatesWeak(Tuple{1, 1}, Tuple{1, 1}) {
		t.Error("equal tuples must weakly dominate")
	}
	if !DominatesWeak(Tuple{1, 1}, Tuple{1, 2}) {
		t.Error("dominating tuple must weakly dominate")
	}
	if DominatesWeak(Tuple{2, 1}, Tuple{1, 2}) {
		t.Error("incomparable tuples must not weakly dominate")
	}
}

func TestMinMaxWith(t *testing.T) {
	a := Tuple{1, 5, 3}
	b := Tuple{2, 2, 4}
	mn := a.Clone()
	mn.MinWith(b)
	if !mn.Equal(Tuple{1, 2, 3}) {
		t.Errorf("MinWith: got %v", mn)
	}
	mx := a.Clone()
	mx.MaxWith(b)
	if !mx.Equal(Tuple{2, 5, 4}) {
		t.Errorf("MaxWith: got %v", mx)
	}
}

func TestValid(t *testing.T) {
	if !(Tuple{1, 2}).Valid() {
		t.Error("finite tuple must be valid")
	}
	if (Tuple{1, math.NaN()}).Valid() {
		t.Error("NaN tuple must be invalid")
	}
	if (Tuple{math.Inf(1), 1}).Valid() {
		t.Error("Inf tuple must be invalid")
	}
}

func TestListValidate(t *testing.T) {
	good := List{{1, 2}, {3, 4}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	if err := (List{}).Validate(); err != nil {
		t.Errorf("empty list rejected: %v", err)
	}
	bad := List{{1, 2}, {3}}
	if err := bad.Validate(); err == nil {
		t.Error("dimension mismatch not detected")
	}
	nan := List{{1, math.NaN()}}
	if err := nan.Validate(); err == nil {
		t.Error("NaN not detected")
	}
	zero := List{{}}
	if err := zero.Validate(); err == nil {
		t.Error("zero-dimensional tuple not detected")
	}
}

func TestEqualAsSet(t *testing.T) {
	a := List{{1, 2}, {3, 4}}
	b := List{{3, 4}, {1, 2}}
	if !EqualAsSet(a, b) {
		t.Error("order must not matter")
	}
	c := List{{1, 2}}
	if EqualAsSet(a, c) {
		t.Error("different sets reported equal")
	}
	if !EqualAsSet(List{}, List{}) {
		t.Error("empty sets must be equal")
	}
}

func TestSum(t *testing.T) {
	if got := (Tuple{1, 2, 3}).Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	// SFS invariant: a dominating tuple never has a larger sum.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d := 1 + rng.Intn(5)
		a, b := make(Tuple, d), make(Tuple, d)
		for k := 0; k < d; k++ {
			a[k] = rng.Float64()
			b[k] = rng.Float64()
		}
		if Dominates(a, b) && a.Sum() >= b.Sum() {
			t.Fatalf("dominating tuple %v has sum >= dominated %v", a, b)
		}
	}
}

func TestString(t *testing.T) {
	if got := (Tuple{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Errorf("empty String = %q", got)
	}
}

func TestDominanceResultString(t *testing.T) {
	for r, want := range map[DominanceResult]string{
		DomNone:  "incomparable",
		DomLeft:  "dominates",
		DomRight: "dominated-by",
		DomEqual: "equals",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if got := DominanceResult(42).String(); got != "DominanceResult(42)" {
		t.Errorf("unknown String = %q", got)
	}
}
