package baseline

import (
	"math"
	"sort"
	"time"

	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// anglePartitioner maps tuples to angular partitions following the
// angle-based space partitioning of [Vlachou et al., SIGMOD 2008] that
// MR-Angle adapts: a point is converted to hyperspherical coordinates
// (dropping the radius) and the (d−1)-dimensional angle space [0, π/2]^{d−1}
// is cut into a uniform grid. Every angular partition is a cone from the
// origin, so skyline tuples — which cluster near the origin — spread evenly
// across partitions.
type anglePartitioner struct {
	d      int
	k      int       // cells per angle dimension
	width  float64   // cell width in radians
	origin []float64 // domain origin; angles are measured from it
}

// newAnglePartitioner builds a partitioner with roughly target partitions:
// k = ceil(target^(1/(d−1))) cells per angular dimension.
func newAnglePartitioner(d, target int, origin []float64) *anglePartitioner {
	if target < 1 {
		target = 1
	}
	k := 1
	if d > 1 {
		k = int(math.Ceil(math.Pow(float64(target), 1/float64(d-1))))
		if k < 1 {
			k = 1
		}
	}
	if origin == nil {
		origin = make([]float64, d)
	}
	return &anglePartitioner{d: d, k: k, width: (math.Pi / 2) / float64(k), origin: origin}
}

// partitions returns the total angular partition count k^(d−1).
func (a *anglePartitioner) partitions() int {
	p := 1
	for i := 1; i < a.d; i++ {
		p *= a.k
	}
	return p
}

// locate returns the angular partition id of t.
func (a *anglePartitioner) locate(t tuple.Tuple) int {
	id := 0
	// v is the tuple relative to the domain origin (clamped to the first
	// quadrant); tail2 accumulates v_{i+1}² + … + v_d² from the back.
	v := make([]float64, a.d)
	for i := range v {
		v[i] = t[i] - a.origin[i]
		if v[i] < 0 {
			v[i] = 0
		}
	}
	tail2 := 0.0
	for i := a.d - 1; i >= 1; i-- {
		tail2 += v[i] * v[i]
	}
	for i := 0; i < a.d-1; i++ {
		var phi float64
		if v[i] == 0 {
			phi = math.Pi / 2
		} else {
			phi = math.Atan(math.Sqrt(tail2) / v[i])
			if phi < 0 {
				phi = 0
			}
		}
		cell := int(phi / a.width)
		if cell >= a.k {
			cell = a.k - 1
		}
		id = id*a.k + cell
		tail2 -= v[i+1] * v[i+1]
		if tail2 < 0 {
			tail2 = 0
		}
	}
	return id
}

// MRAngle computes the skyline with the MR-Angle baseline: angular
// partitioning, BNL local skylines on the mappers, and a single reducer
// merging all local skylines with BNL. Angular partitions cannot dominate
// one another, so the reducer performs a full merge.
func MRAngle(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	start := time.Now()
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(data.Dim()); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, &Stats{Algorithm: "MR-Angle"}, nil
	}
	d := data.Dim()
	target := cfg.AngularPartitions
	if target < 1 {
		target = cfg.mappers()
	}
	ap := newAnglePartitioner(d, target, cfg.origin(d))

	sky, res, err := runSingleReducerJob(&cfg, "mr-angle", data, ap.locate, skyline.KernelBNL,
		func(s map[int]*window.Window, cnt *skyline.Count) tuple.List {
			ids := make([]int, 0, len(s))
			for id := range s {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			merge := window.New(d)
			for _, id := range ids {
				for _, t := range s[id].Rows() {
					merge.Insert(t, cnt)
				}
			}
			return merge.Rows()
		}, "", nil) // no kind: the angle partitioner is not spec-serialized
	if err != nil {
		return nil, nil, err
	}
	return sky, buildStats("MR-Angle", ap.partitions(), sky, res, start), nil
}
