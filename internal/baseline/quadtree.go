package baseline

import (
	"fmt"
	"sort"

	"mrskyline/internal/tuple"
)

// This file implements the sky-quadtree of SKY-MR [Park, Min, Shim:
// Parallel computation of skyline and reverse skyline queries using
// MapReduce, PVLDB 6(14), 2013], the sampling-based alternative the paper
// contrasts its bitstring with ("the bitstring used in this work does not
// require sampling, and it is built in parallel by MapReduce").
//
// A sky-quadtree recursively splits the data space into 2^d equal children
// until a node holds at most a threshold of sample points. Leaves dominated
// by a sample point are marked pruned: no tuple falling there can be a
// skyline tuple. Remaining leaves become the data partitions of the SKY-MR
// jobs.

// quadNode is one node of the sky-quadtree. Regions are half-open boxes.
type quadNode struct {
	lo, hi   tuple.Tuple
	children []*quadNode // nil for leaves; else 2^d children
	// id is the leaf's index in depth-first order (leaves only).
	id int
	// pruned marks leaves dominated by a sample point.
	pruned bool
}

// quadTree is a built sky-quadtree with indexed leaves.
type quadTree struct {
	d      int
	root   *quadNode
	leaves []*quadNode
}

// buildQuadTree builds a sky-quadtree over the sample within [lo, hi).
// Nodes split while they hold more than leafCapacity sample points and
// maxDepth has not been reached. Leaves whose minimum corner is dominated
// by a sample point outside... strictly: whose entire region is dominated
// by some sample point (the point dominates the region's min corner) are
// marked pruned.
func buildQuadTree(sample tuple.List, lo, hi tuple.Tuple, leafCapacity, maxDepth int) (*quadTree, error) {
	d := len(lo)
	if d < 1 || len(hi) != d {
		return nil, fmt.Errorf("baseline: invalid quadtree bounds")
	}
	if leafCapacity < 1 {
		leafCapacity = 1
	}
	if maxDepth < 1 {
		maxDepth = 1
	}
	if d > 16 {
		return nil, fmt.Errorf("baseline: quadtree with 2^%d children per node is not applicable", d)
	}
	t := &quadTree{d: d}
	t.root = t.build(sample, lo.Clone(), hi.Clone(), leafCapacity, maxDepth)

	// Index leaves depth-first and apply sample-based pruning: a leaf is
	// pruned when some sample point dominates its min corner — then every
	// possible tuple in the leaf is dominated (cf. Lemma 1's reasoning).
	t.walk(t.root, func(n *quadNode) {
		if n.children != nil {
			return
		}
		n.id = len(t.leaves)
		t.leaves = append(t.leaves, n)
		for _, s := range sample {
			if tuple.Dominates(s, n.lo) {
				n.pruned = true
				break
			}
		}
	})
	return t, nil
}

func (t *quadTree) build(sample tuple.List, lo, hi tuple.Tuple, leafCapacity, depthLeft int) *quadNode {
	n := &quadNode{lo: lo, hi: hi}
	if len(sample) <= leafCapacity || depthLeft <= 1 {
		return n
	}
	mid := make(tuple.Tuple, t.d)
	for k := 0; k < t.d; k++ {
		mid[k] = (lo[k] + hi[k]) / 2
	}
	// Partition the sample into 2^d children by mid-plane comparisons.
	buckets := make([]tuple.List, 1<<uint(t.d))
	for _, s := range sample {
		buckets[t.childIndex(s, mid)] = append(buckets[t.childIndex(s, mid)], s)
	}
	n.children = make([]*quadNode, 1<<uint(t.d))
	for c := range n.children {
		clo := make(tuple.Tuple, t.d)
		chi := make(tuple.Tuple, t.d)
		for k := 0; k < t.d; k++ {
			if c&(1<<uint(k)) != 0 {
				clo[k], chi[k] = mid[k], hi[k]
			} else {
				clo[k], chi[k] = lo[k], mid[k]
			}
		}
		n.children[c] = t.build(buckets[c], clo, chi, leafCapacity, depthLeft-1)
	}
	return n
}

// childIndex returns the child octant of a point given the split midpoint.
func (t *quadTree) childIndex(p tuple.Tuple, mid tuple.Tuple) int {
	c := 0
	for k := 0; k < t.d; k++ {
		if p[k] >= mid[k] {
			c |= 1 << uint(k)
		}
	}
	return c
}

func (t *quadTree) walk(n *quadNode, fn func(*quadNode)) {
	fn(n)
	for _, c := range n.children {
		t.walk(c, fn)
	}
}

// locate returns the leaf containing p (clamping out-of-domain points into
// boundary leaves).
func (t *quadTree) locate(p tuple.Tuple) *quadNode {
	n := t.root
	for n.children != nil {
		mid := make(tuple.Tuple, t.d)
		for k := 0; k < t.d; k++ {
			mid[k] = (n.lo[k] + n.hi[k]) / 2
		}
		n = n.children[t.childIndex(p, mid)]
	}
	return n
}

// numLeaves returns the leaf count.
func (t *quadTree) numLeaves() int { return len(t.leaves) }

// mayDominate reports whether tuples in leaf a could dominate tuples in
// leaf b: a's best corner must dominate b's worst corner's upper bound —
// conservatively, a.lo must not be worse than b.hi on any dimension.
func (t *quadTree) mayDominate(a, b int) bool {
	if a == b {
		return false
	}
	la, lb := t.leaves[a], t.leaves[b]
	for k := 0; k < t.d; k++ {
		if la.lo[k] >= lb.hi[k] {
			return false
		}
	}
	return true
}

// dominatorLeaves returns, for leaf b, the sorted ids of unpruned leaves
// whose tuples could dominate tuples of b.
func (t *quadTree) dominatorLeaves(b int) []int {
	var out []int
	for a := range t.leaves {
		if !t.leaves[a].pruned && t.mayDominate(a, b) {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}
