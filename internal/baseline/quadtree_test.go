package baseline

import (
	"math/rand"
	"testing"

	"mrskyline/internal/datagen"
	"mrskyline/internal/tuple"
)

func unitBounds(d int) (tuple.Tuple, tuple.Tuple) {
	lo := make(tuple.Tuple, d)
	hi := make(tuple.Tuple, d)
	for k := range hi {
		hi[k] = 1
	}
	return lo, hi
}

func TestQuadTreeSingleLeaf(t *testing.T) {
	lo, hi := unitBounds(2)
	qt, err := buildQuadTree(tuple.List{{0.5, 0.5}}, lo, hi, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qt.numLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1", qt.numLeaves())
	}
	if qt.leaves[0].pruned {
		t.Error("sole leaf pruned")
	}
}

func TestQuadTreeSplitsOverCapacity(t *testing.T) {
	lo, hi := unitBounds(2)
	sample := datagen.Generate(datagen.Independent, 100, 2, 1)
	qt, err := buildQuadTree(sample, lo, hi, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qt.numLeaves() < 4 {
		t.Fatalf("100 samples with capacity 8 produced only %d leaves", qt.numLeaves())
	}
}

func TestQuadTreeLocateConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 3, 5} {
		lo, hi := unitBounds(d)
		sample := datagen.Generate(datagen.Independent, 80, d, 3)
		qt, err := buildQuadTree(sample, lo, hi, 4, 6)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			p := make(tuple.Tuple, d)
			for k := range p {
				p[k] = rng.Float64()
			}
			leaf := qt.locate(p)
			for k := 0; k < d; k++ {
				if p[k] < leaf.lo[k] || p[k] >= leaf.hi[k] {
					t.Fatalf("d=%d: point %v located in leaf [%v,%v)", d, p, leaf.lo, leaf.hi)
				}
			}
		}
	}
}

func TestQuadTreeLeafRegionsPartitionSpace(t *testing.T) {
	// Leaves tile the space: every grid probe lands in exactly one leaf.
	lo, hi := unitBounds(2)
	sample := datagen.Generate(datagen.AntiCorrelated, 60, 2, 5)
	qt, err := buildQuadTree(sample, lo, hi, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x < 1; x += 0.05 {
		for y := 0.0; y < 1; y += 0.05 {
			p := tuple.Tuple{x, y}
			count := 0
			for _, l := range qt.leaves {
				if p[0] >= l.lo[0] && p[0] < l.hi[0] && p[1] >= l.lo[1] && p[1] < l.hi[1] {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("point %v covered by %d leaves", p, count)
			}
		}
	}
}

func TestQuadTreePruningIsSound(t *testing.T) {
	// A pruned leaf's entire region must be dominated by a sample point:
	// no probe in a pruned leaf may be non-dominated.
	sample := datagen.Generate(datagen.Independent, 200, 2, 9)
	lo, hi := unitBounds(2)
	qt, err := buildQuadTree(sample, lo, hi, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	prunedSeen := 0
	for _, l := range qt.leaves {
		if !l.pruned {
			continue
		}
		prunedSeen++
		// Even the best point of the region (its min corner) is dominated.
		dominated := false
		for _, s := range sample {
			if tuple.Dominates(s, l.lo) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("leaf [%v,%v) pruned without dominating sample", l.lo, l.hi)
		}
	}
	if prunedSeen == 0 {
		t.Error("200 independent samples pruned no leaves; pruning inert")
	}
}

func TestQuadTreeMayDominate(t *testing.T) {
	// Build a 2×2 split: four children of the root.
	sample := tuple.List{{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.9, 0.9}}
	lo, hi := unitBounds(2)
	qt, err := buildQuadTree(sample, lo, hi, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if qt.numLeaves() != 4 {
		t.Fatalf("leaves = %d, want 4", qt.numLeaves())
	}
	// Identify leaves by region.
	find := func(x, y float64) int { return qt.locate(tuple.Tuple{x, y}).id }
	ll := find(0.1, 0.1) // lower-left
	ur := find(0.9, 0.9) // upper-right
	lr := find(0.9, 0.1)
	if !qt.mayDominate(ll, ur) {
		t.Error("lower-left must be able to dominate upper-right")
	}
	if qt.mayDominate(ur, ll) {
		t.Error("upper-right cannot dominate lower-left")
	}
	if !qt.mayDominate(ll, lr) {
		t.Error("lower-left may dominate lower-right")
	}
	if qt.mayDominate(ll, ll) {
		t.Error("a leaf must not self-dominate")
	}
	doms := qt.dominatorLeaves(ur)
	if len(doms) == 0 {
		t.Error("upper-right has no dominator leaves")
	}
}

func TestQuadTreeRejectsAbsurdDimensionality(t *testing.T) {
	d := 20
	lo := make(tuple.Tuple, d)
	hi := make(tuple.Tuple, d)
	for k := range hi {
		hi[k] = 1
	}
	if _, err := buildQuadTree(nil, lo, hi, 1, 4); err == nil {
		t.Error("2^20-child quadtree accepted")
	}
	if _, err := buildQuadTree(nil, tuple.Tuple{0}, tuple.Tuple{1, 1}, 1, 4); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestQuadTreeDeterministic(t *testing.T) {
	sample := datagen.Generate(datagen.AntiCorrelated, 120, 3, 4)
	lo, hi := unitBounds(3)
	a, err := buildQuadTree(sample, lo, hi, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildQuadTree(sample, lo, hi, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.numLeaves() != b.numLeaves() {
		t.Fatal("leaf counts differ across builds")
	}
	for i := range a.leaves {
		if !a.leaves[i].lo.Equal(b.leaves[i].lo) || a.leaves[i].pruned != b.leaves[i].pruned {
			t.Fatalf("leaf %d differs across builds", i)
		}
	}
}
