package baseline

import (
	"encoding/binary"
	"fmt"
)

// encodeKey renders a non-negative partition id as an 8-byte big-endian
// shuffle key, so lexicographic key order equals numeric order.
func encodeKey(id int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

// decodeKey parses a key produced by encodeKey.
func decodeKey(k []byte) (int, error) {
	if len(k) != 8 {
		return 0, fmt.Errorf("baseline: malformed key of %d bytes", len(k))
	}
	return int(binary.BigEndian.Uint64(k)), nil
}
