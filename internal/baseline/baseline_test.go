package baseline_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mrskyline/internal/baseline"
	"mrskyline/internal/cluster"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func testConfig(t testing.TB) baseline.Config {
	t.Helper()
	c, err := cluster.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return baseline.Config{Engine: mapreduce.NewEngine(c)}
}

type algo struct {
	name string
	run  func(baseline.Config, tuple.List) (tuple.List, *baseline.Stats, error)
}

var algos = []algo{
	{"MR-BNL", baseline.MRBNL},
	{"MR-SFS", baseline.MRSFS},
	{"MR-Angle", baseline.MRAngle},
	{"SKY-MR", baseline.SKYMR},
	{"MR-Bitmap", baseline.MRBitmap},
}

func TestAgainstReference(t *testing.T) {
	cfg := testConfig(t)
	for _, a := range algos {
		for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
			for _, shape := range []struct{ card, d int }{{200, 1}, {300, 2}, {400, 3}, {250, 5}, {150, 8}} {
				name := fmt.Sprintf("%s/%v/c%d-d%d", a.name, dist, shape.card, shape.d)
				t.Run(name, func(t *testing.T) {
					data := datagen.Generate(dist, shape.card, shape.d, 77)
					want := skyline.Naive(data)
					got, stats, err := a.run(cfg, data)
					if err != nil {
						t.Fatal(err)
					}
					if !tuple.EqualAsSet(got, want) {
						t.Fatalf("skyline mismatch: got %d, want %d", len(got), len(want))
					}
					if stats.SkylineSize != len(got) || stats.Partitions < 1 {
						t.Errorf("stats = %+v", stats)
					}
				})
			}
		}
	}
}

func TestVaryMappers(t *testing.T) {
	data := datagen.Generate(datagen.AntiCorrelated, 500, 4, 3)
	want := skyline.Naive(data)
	for _, m := range []int{1, 3, 7} {
		cfg := testConfig(t)
		cfg.NumMappers = m
		for _, a := range algos {
			got, _, err := a.run(cfg, data)
			if err != nil {
				t.Fatalf("%s m=%d: %v", a.name, m, err)
			}
			if !tuple.EqualAsSet(got, want) {
				t.Fatalf("%s m=%d: wrong skyline", a.name, m)
			}
		}
	}
}

func TestEmptyAndValidation(t *testing.T) {
	cfg := testConfig(t)
	for _, a := range algos {
		got, stats, err := a.run(cfg, nil)
		if err != nil || len(got) != 0 || stats.SkylineSize != 0 {
			t.Errorf("%s: empty input → %v, %+v, %v", a.name, got, stats, err)
		}
		if _, _, err := a.run(baseline.Config{}, tuple.List{{0.1}}); err == nil {
			t.Errorf("%s: missing engine accepted", a.name)
		}
		if _, _, err := a.run(cfg, tuple.List{{0.1, 0.2}, {0.3}}); err == nil {
			t.Errorf("%s: ragged data accepted", a.name)
		}
	}
}

func TestMRBNLRejectsAbsurdDimensionality(t *testing.T) {
	cfg := testConfig(t)
	data := make(tuple.List, 1)
	data[0] = make(tuple.Tuple, 25)
	if _, _, err := baseline.MRBNL(cfg, data); err == nil {
		t.Error("2^25 subspaces accepted")
	}
}

func TestMRAngleExplicitPartitions(t *testing.T) {
	cfg := testConfig(t)
	cfg.AngularPartitions = 16
	data := datagen.Generate(datagen.Independent, 400, 3, 9)
	got, stats, err := baseline.MRAngle(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.EqualAsSet(got, skyline.Naive(data)) {
		t.Fatal("wrong skyline")
	}
	if stats.Partitions != 16 { // k = ceil(16^(1/2)) = 4; 4² = 16
		t.Errorf("Partitions = %d, want 16", stats.Partitions)
	}
}

func TestStatsCounters(t *testing.T) {
	cfg := testConfig(t)
	data := datagen.Generate(datagen.AntiCorrelated, 500, 3, 1)
	for _, a := range algos {
		_, stats, err := a.run(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		if stats.DominanceTests == 0 {
			t.Errorf("%s: DominanceTests = 0", a.name)
		}
		if stats.ShuffleBytes == 0 {
			t.Errorf("%s: ShuffleBytes = 0", a.name)
		}
		if stats.Total <= 0 {
			t.Errorf("%s: Total = %v", a.name, stats.Total)
		}
	}
}

func TestBoundaryTuples(t *testing.T) {
	// Zeros (which hit the atan(∞) branch of the angle transform and the
	// lowest subspace) and values at the half boundary.
	cfg := testConfig(t)
	data := tuple.List{
		{0, 0, 0},
		{0.5, 0.5, 0.5},
		{0, 0.999, 0.5},
		{0.999, 0, 0},
		{0.25, 0.75, 0.5},
	}
	want := skyline.Naive(data)
	for _, a := range algos {
		got, _, err := a.run(cfg, data)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("%s: got %v, want %v", a.name, got, want)
		}
	}
}

func TestMRBitmapDiscreteDomains(t *testing.T) {
	// MR-Bitmap's natural habitat: few distinct values per dimension.
	cfg := testConfig(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		d := 1 + rng.Intn(4)
		data := make(tuple.List, 300)
		for i := range data {
			data[i] = make(tuple.Tuple, d)
			for k := range data[i] {
				data[i][k] = float64(rng.Intn(5)) / 5
			}
		}
		got, stats, err := baseline.MRBitmap(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		if !tuple.EqualAsSet(got, skyline.Naive(data)) {
			t.Fatalf("trial %d: MR-Bitmap wrong on discrete data", trial)
		}
		if stats.Partitions < 1 || stats.Partitions > 5*d {
			t.Errorf("trial %d: %d bit-slices for %d-valued %d-d data", trial, stats.Partitions, 5, d)
		}
	}
}

func TestMRBitmapRejectsContinuousDomains(t *testing.T) {
	// The paper's exclusion, reproduced: continuous data exceeds the
	// distinct-value budget and MR-Bitmap refuses rather than exploding.
	cfg := testConfig(t)
	data := datagen.Generate(datagen.Independent, baseline.MaxBitmapDistinct+100, 2, 9)
	_, _, err := baseline.MRBitmap(cfg, data)
	if err == nil {
		t.Fatal("continuous domain accepted")
	}
	if !strings.Contains(err.Error(), "distinct values") {
		t.Errorf("unexpected error: %v", err)
	}
}
