package baseline

import (
	"fmt"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// SKY-MR [Park, Min, Shim, PVLDB 2013] is the sampling-based MapReduce
// skyline algorithm the paper positions its bitstring against. It is
// implemented here as an extension baseline (the paper's experiments do
// not include it):
//
//  1. The driver draws a deterministic sample and builds a sky-quadtree
//     over it; leaves dominated by a sample point are pruned. The sample
//     ships to every task through the distributed cache — tasks rebuild
//     the identical quadtree locally, just as SKY-MR distributes its
//     quadtree.
//  2. Job 1 (local skyline): mappers route tuples to quadtree leaves,
//     skip pruned leaves, and keep one BNL window per leaf; reducers —
//     note: parallel, keyed by leaf — merge the mappers' windows into
//     per-leaf local skylines.
//  3. Job 2 (global skyline): every leaf's local skyline is checked
//     against the local skylines of leaves that could contain dominators
//     (region-level dominance test). Each leaf is finished by one
//     reducer, in parallel, and the union of survivors is the skyline.
//
// Unlike MR-GPMRS, SKY-MR needs the extra sampling pass, and its pruning
// depends on the sample's luck; unlike MR-BNL and MR-Angle, both of its
// jobs use parallel reducers.

// Default SKY-MR parameters.
const (
	// DefaultSampleSize is the sky-quadtree sample size.
	DefaultSampleSize = 512
	// DefaultQuadLeafCapacity stops splitting nodes holding at most this
	// many sample points.
	DefaultQuadLeafCapacity = 8
	// DefaultQuadMaxDepth bounds the quadtree height.
	DefaultQuadMaxDepth = 8
)

const cacheKeySample = "skymr-sample"

// SKYMR computes the skyline with the SKY-MR algorithm.
func SKYMR(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	start := time.Now()
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(data.Dim()); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, &Stats{Algorithm: "SKY-MR"}, nil
	}
	d := data.Dim()
	lo, hi := cfg.bounds(d)

	// Deterministic sample: evenly strided over the input, so every task
	// (and every retry) sees the same quadtree.
	sampleSize := DefaultSampleSize
	if sampleSize > len(data) {
		sampleSize = len(data)
	}
	sample := make(tuple.List, sampleSize)
	for i := range sample {
		sample[i] = data[i*len(data)/sampleSize]
	}
	qt, err := buildQuadTree(sample, lo, hi, DefaultQuadLeafCapacity, DefaultQuadMaxDepth)
	if err != nil {
		return nil, nil, err
	}
	cache := mapreduce.Cache{cacheKeySample: tuple.EncodeList(sample)}
	reducers := cfg.Engine.TotalSlots()
	if reducers > qt.numLeaves() {
		reducers = qt.numLeaves()
	}

	rebuild := func(ctx *mapreduce.TaskContext) (*quadTree, error) {
		s, _, err := tuple.DecodeList(ctx.Cache.MustGet(cacheKeySample))
		if err != nil {
			return nil, err
		}
		return buildQuadTree(s, lo, hi, DefaultQuadLeafCapacity, DefaultQuadMaxDepth)
	}

	// ---- Job 1: per-leaf local skylines --------------------------------
	local := &mapreduce.Job{
		Name:        "sky-mr-local",
		Input:       mapreduce.TupleInput(data),
		NumMappers:  cfg.mappers(),
		NumReducers: reducers,
		MaxAttempts: cfg.MaxAttempts,
		Cache:       cache,
		NewMapper: func() mapreduce.Mapper {
			var (
				t       *quadTree
				windows map[int]*window.Window
				cnt     skyline.Count
			)
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
					if t == nil {
						var err error
						if t, err = rebuild(ctx); err != nil {
							return err
						}
						windows = make(map[int]*window.Window)
					}
					tp, err := mapreduce.DecodeTupleRecord(rec)
					if err != nil {
						return err
					}
					leaf := t.locate(tp)
					if leaf.pruned {
						return nil
					}
					getWindow(windows, leaf.id, d, ctx.Trace.Metrics()).Insert(tp, &cnt)
					return nil
				},
				FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
					ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
					var scratch []byte
					for _, w := range sortedWindows(windows) {
						scratch = tuple.AppendEncodeList(scratch[:0], w.win.Rows())
						emit(encodeKey(w.id), scratch)
					}
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			var cnt skyline.Count
			var scratch []byte
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					w := window.New(d)
					w.Instrument(ctx.Trace.Metrics())
					for _, v := range values {
						l, _, err := tuple.DecodeList(v)
						if err != nil {
							return err
						}
						for _, tp := range l {
							w.Insert(tp, &cnt)
						}
					}
					scratch = tuple.AppendEncodeList(scratch[:0], w.Rows())
					emit(key, scratch)
					return nil
				},
				FlushFn: func(ctx *mapreduce.TaskContext, _ mapreduce.Emitter) error {
					ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
					return nil
				},
			}
		},
	}
	res1, err := cfg.Engine.RunContext(cfg.ctx(), local)
	if err != nil {
		return nil, nil, err
	}

	// ---- Job 2: global skyline ------------------------------------------
	// Input records are (leaf, local skyline). Each mapper forwards every
	// leaf's skyline to that leaf's reducer as candidates, and to the
	// reducers of all leaves the region could dominate as filters.
	const (
		tagCandidate byte = 'C'
		tagFilter    byte = 'F'
	)
	global := &mapreduce.Job{
		Name:        "sky-mr-global",
		Input:       mapreduce.RecordsInput(res1.Output),
		NumMappers:  cfg.mappers(),
		NumReducers: reducers,
		MaxAttempts: cfg.MaxAttempts,
		Cache:       cache,
		NewMapper: func() mapreduce.Mapper {
			var t *quadTree
			var scratch []byte
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					if t == nil {
						var err error
						if t, err = rebuild(ctx); err != nil {
							return err
						}
					}
					a, err := decodeKey(rec.Key)
					if err != nil {
						return err
					}
					if a < 0 || a >= t.numLeaves() {
						return fmt.Errorf("baseline: unknown leaf %d in SKY-MR job 2", a)
					}
					scratch = append(scratch[:0], tagCandidate)
					scratch = append(scratch, rec.Value...)
					emit(rec.Key, scratch)
					for b := 0; b < t.numLeaves(); b++ {
						if t.mayDominate(a, b) && !t.leaves[b].pruned {
							scratch = append(scratch[:0], tagFilter)
							scratch = append(scratch, rec.Value...)
							emit(encodeKey(b), scratch)
						}
					}
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			var cnt skyline.Count
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					var candidates tuple.List
					var filters tuple.List
					for _, v := range values {
						if len(v) == 0 {
							return fmt.Errorf("baseline: empty SKY-MR value")
						}
						l, _, err := tuple.DecodeList(v[1:])
						if err != nil {
							return err
						}
						switch v[0] {
						case tagCandidate:
							candidates = append(candidates, l...)
						case tagFilter:
							filters = append(filters, l...)
						default:
							return fmt.Errorf("baseline: unknown SKY-MR tag %q", v[0])
						}
					}
					var scratch []byte
					for _, tp := range skyline.Filter(candidates, filters, &cnt) {
						scratch = tuple.AppendEncode(scratch[:0], tp)
						emit(nil, scratch)
					}
					return nil
				},
				FlushFn: func(ctx *mapreduce.TaskContext, _ mapreduce.Emitter) error {
					ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
					return nil
				},
			}
		},
	}
	res2, err := cfg.Engine.RunContext(cfg.ctx(), global)
	if err != nil {
		return nil, nil, err
	}

	sky := make(tuple.List, 0, len(res2.Output))
	for _, rec := range res2.Output {
		tp, _, err := tuple.Decode(rec.Value)
		if err != nil {
			return nil, nil, err
		}
		sky = append(sky, tp)
	}
	unpruned := 0
	for _, l := range qt.leaves {
		if !l.pruned {
			unpruned++
		}
	}
	st := &Stats{
		Algorithm:      "SKY-MR",
		Partitions:     unpruned,
		SkylineSize:    len(sky),
		DominanceTests: res1.Counters.Get(counterDominanceTests) + res2.Counters.Get(counterDominanceTests),
		ShuffleBytes:   res1.Counters.Get(mapreduce.CounterShuffleBytes) + res2.Counters.Get(mapreduce.CounterShuffleBytes),
		Total:          time.Since(start),
		SimulatedTotal: res1.SimulatedTime + res2.SimulatedTime,
	}
	st.addFaultCounters(res1, res2)
	return sky, st, nil
}

// bounds returns the configured domain (unit box by default).
func (c *Config) bounds(d int) (lo, hi tuple.Tuple) {
	lo = make(tuple.Tuple, d)
	hi = make(tuple.Tuple, d)
	for k := 0; k < d; k++ {
		if c.Lo == nil {
			hi[k] = 1
		} else {
			lo[k], hi[k] = c.Lo[k], c.Hi[k]
		}
	}
	return lo, hi
}
