package baseline

import (
	"fmt"
	"sort"
	"time"

	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// subspaceOf computes the MR-BNL subspace code of a tuple: one bit per
// dimension, set when the value lies in the upper half of the domain.
// The code is "merely a code for the data partition, not for data
// contents" — MR-BNL has no analogue of the occupancy bitstring, so no
// pruning happens before the shuffle.
func subspaceOf(t tuple.Tuple, mid []float64) int {
	code := 0
	for k, v := range t {
		if v >= mid[k] {
			code |= 1 << uint(k)
		}
	}
	return code
}

// subspaceMayDominate reports whether tuples of subspace a can dominate
// tuples of subspace b: a's half must not be above b's on any dimension.
func subspaceMayDominate(a, b int) bool {
	// A dimension where a is in the upper half but b in the lower rules
	// dominance out: a&^b must be empty.
	return a != b && a&^b == 0
}

// MRBNL computes the skyline with the MR-BNL baseline: 2^d half-space
// subspaces, BNL local skylines on the mappers, a single reducer merging
// subspace skylines and removing cross-subspace false positives.
func MRBNL(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	return mrHalfspace(cfg, "mr-bnl", data, skyline.KernelBNL)
}

// MRSFS is MR-BNL with the sort-filter-skyline local kernel, the variant
// the paper cites and skips; see the package comment.
func MRSFS(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	return mrHalfspace(cfg, "mr-sfs", data, skyline.KernelSFS)
}

// halfspaceFinish is MR-BNL's global merge: filter each subspace skyline
// by every subspace that may dominate it, then output the union. Windows
// stay columnar throughout, so every pass runs on the block kernel.
func halfspaceFinish(s map[int]*window.Window, cnt *skyline.Count) tuple.List {
	codes := make([]int, 0, len(s))
	for c := range s {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, b := range codes {
		w := s[b]
		for _, a := range codes {
			if s[a].Len() == 0 || !subspaceMayDominate(a, b) {
				continue
			}
			w.FilterBy(s[a], cnt)
			if w.Len() == 0 {
				break
			}
		}
	}
	var out tuple.List
	for _, c := range codes {
		out = append(out, s[c].Rows()...)
	}
	return out
}

func mrHalfspace(cfg Config, name string, data tuple.List, kernel skyline.Kernel) (tuple.List, *Stats, error) {
	start := time.Now()
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(data.Dim()); err != nil {
		return nil, nil, err
	}
	algoName := "MR-BNL"
	if kernel == skyline.KernelSFS {
		algoName = "MR-SFS"
	}
	if len(data) == 0 {
		return nil, &Stats{Algorithm: algoName}, nil
	}
	d := data.Dim()
	if d > 20 {
		return nil, nil, fmt.Errorf("baseline: %d dimensions give 2^%d subspaces; MR-BNL is not applicable", d, d)
	}

	mid := cfg.mid(d)
	sky, res, err := runSingleReducerJob(&cfg, name, data,
		func(t tuple.Tuple) int { return subspaceOf(t, mid) }, kernel,
		halfspaceFinish, KindHalfspace, halfspaceSpecBytes(d, mid, kernel))
	if err != nil {
		return nil, nil, err
	}
	return sky, buildStats(algoName, 1<<uint(d), sky, res, start), nil
}
