package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/tuple"
)

// MR-Bitmap is the third algorithm of [Zhang et al., DASFAA-W 2011]: the
// bitmap skyline technique of [Tan, Eng, Ooi, VLDB 2001] adapted to
// MapReduce. The reproduced paper excludes it from its experiments
// "because it cannot apply to the continuous numeric data domains that we
// work on" — the bitmap representation needs one bit-slice per distinct
// value per dimension, which explodes on continuous data. This
// implementation is exact on any input but enforces that objection with
// explicit budgets (MaxBitmapDistinct, MaxBitmapBits), so the paper's
// exclusion is reproducible as an error rather than an out-of-memory kill.
//
// Structure (two jobs, mirroring the original):
//
//  1. Value collection: mappers emit each dimension's distinct values;
//     one reducer merges them into sorted per-dimension value tables.
//  2. Membership: the driver builds the bit-slices (LE_i[r] = tuples whose
//     dimension-i rank is ≤ r; LT strictly), ships tables and slices
//     through the distributed cache, and parallel reducers — MR-Bitmap is
//     the one baseline with a parallel reduce phase — test their share of
//     tuples: p is dominated iff (∧_i LE_i[rank_i(p)]) ∧ (∨_i
//     LT_i[rank_i(p)]) is non-empty, because the conjunction holds the
//     tuples not worse than p everywhere and the disjunction those
//     strictly better somewhere.

const (
	// MaxBitmapDistinct bounds the per-dimension distinct-value count.
	MaxBitmapDistinct = 4096
	// MaxBitmapBits bounds the total bit-slice volume (d × distinct × n).
	MaxBitmapBits = 1 << 28

	cacheKeyBitmapTables = "mr-bitmap-tables"
	cacheKeyBitmapSlices = "mr-bitmap-slices"
)

// MRBitmap computes the skyline with the MR-Bitmap baseline. It returns an
// error when the data's distinct-value structure exceeds the bitmap
// budgets — the regime the reproduced paper excluded it for.
func MRBitmap(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	start := time.Now()
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(data.Dim()); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, &Stats{Algorithm: "MR-Bitmap"}, nil
	}
	d := data.Dim()

	// ---- Job 1: per-dimension distinct value tables ----------------------
	collect := &mapreduce.Job{
		Name:        "mr-bitmap-values",
		Input:       mapreduce.TupleInput(data),
		NumMappers:  cfg.mappers(),
		NumReducers: 1,
		MaxAttempts: cfg.MaxAttempts,
		NewMapper: func() mapreduce.Mapper {
			distinct := make([]map[float64]bool, d)
			for k := range distinct {
				distinct[k] = make(map[float64]bool)
			}
			return mapreduce.MapperFuncs{
				MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
					t, err := mapreduce.DecodeTupleRecord(rec)
					if err != nil {
						return err
					}
					for k, v := range t {
						distinct[k][v] = true
					}
					return nil
				},
				FlushFn: func(_ *mapreduce.TaskContext, emit mapreduce.Emitter) error {
					var scratch []byte
					for k := 0; k < d; k++ {
						vals := make(tuple.Tuple, 0, len(distinct[k]))
						for v := range distinct[k] {
							vals = append(vals, v)
						}
						sort.Float64s(vals)
						scratch = tuple.AppendEncode(scratch[:0], vals)
						emit(encodeKey(k), scratch)
					}
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(_ *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					merged := make(map[float64]bool)
					for _, v := range values {
						vals, _, err := tuple.Decode(v)
						if err != nil {
							return err
						}
						for _, x := range vals {
							merged[x] = true
						}
					}
					if len(merged) > MaxBitmapDistinct {
						k, _ := decodeKey(key)
						return fmt.Errorf("baseline: dimension %d has %d distinct values (> %d): MR-Bitmap cannot handle continuous domains",
							k, len(merged), MaxBitmapDistinct)
					}
					out := make(tuple.Tuple, 0, len(merged))
					for v := range merged {
						out = append(out, v)
					}
					sort.Float64s(out)
					emit(key, tuple.Encode(out))
					return nil
				},
			}
		},
	}
	res1, err := cfg.Engine.RunContext(cfg.ctx(), collect)
	if err != nil {
		return nil, nil, err
	}
	tables := make([]tuple.Tuple, d)
	for _, rec := range res1.Output {
		k, err := decodeKey(rec.Key)
		if err != nil {
			return nil, nil, err
		}
		vals, _, err := tuple.Decode(rec.Value)
		if err != nil {
			return nil, nil, err
		}
		if k < 0 || k >= d {
			return nil, nil, fmt.Errorf("baseline: bitmap table for dimension %d of %d", k, d)
		}
		tables[k] = vals
	}

	// ---- Driver: bit-slices over global tuple ids -----------------------
	n := len(data)
	totalBits := 0
	for k := 0; k < d; k++ {
		totalBits += len(tables[k]) * n
	}
	if totalBits > MaxBitmapBits {
		return nil, nil, fmt.Errorf("baseline: bitmap would need %d bit-slices × %d tuples (> %d bits): MR-Bitmap cannot handle this domain",
			totalBits/max(n, 1), n, MaxBitmapBits)
	}
	// le[k][r] holds the ids of tuples whose dim-k rank ≤ r; lt is implied
	// by le[k][r-1], so only le is materialized and shipped.
	le := make([][]*bitstring.Bitstring, d)
	for k := 0; k < d; k++ {
		le[k] = make([]*bitstring.Bitstring, len(tables[k]))
		for r := range le[k] {
			le[k][r] = bitstring.New(n)
		}
	}
	for id, t := range data {
		for k, v := range t {
			r := rankOf(tables[k], v)
			for ; r < len(tables[k]); r++ {
				le[k][r].Set(id)
			}
		}
	}

	var tablesBlob []byte
	for k := 0; k < d; k++ {
		tablesBlob = tuple.AppendEncode(tablesBlob, tables[k])
	}
	var slicesBlob []byte
	for k := 0; k < d; k++ {
		slicesBlob = binary.AppendUvarint(slicesBlob, uint64(len(le[k])))
		for _, bs := range le[k] {
			slicesBlob = bs.AppendEncode(slicesBlob)
		}
	}

	// ---- Job 2: parallel membership tests --------------------------------
	reducers := cfg.Engine.TotalSlots()
	recs := make([]mapreduce.Record, n)
	// Values share one backing arena (cf. mapreduce.TupleInput); keys are
	// the 8-byte tuple ids routing round-robin across reducers.
	valArena := make([]byte, 0, n*(1+8*d))
	for id, t := range data {
		start := len(valArena)
		valArena = tuple.AppendEncode(valArena, t)
		recs[id] = mapreduce.Record{Key: encodeKey(id), Value: valArena[start:len(valArena):len(valArena)]}
	}
	check := &mapreduce.Job{
		Name:        "mr-bitmap-check",
		Input:       mapreduce.MemoryInput{Records: recs},
		NumMappers:  cfg.mappers(),
		NumReducers: reducers,
		MaxAttempts: cfg.MaxAttempts,
		Cache: mapreduce.Cache{
			cacheKeyBitmapTables: tablesBlob,
			cacheKeyBitmapSlices: slicesBlob,
		},
		Partition: func(key []byte, r int) int {
			id := int(binary.BigEndian.Uint64(key))
			return id % r
		},
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					emit(rec.Key, rec.Value)
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer { return newBitmapReducer(d, n) },
	}
	res2, err := cfg.Engine.RunContext(cfg.ctx(), check)
	if err != nil {
		return nil, nil, err
	}
	sky := make(tuple.List, 0, len(res2.Output))
	for _, rec := range res2.Output {
		t, _, err := tuple.Decode(rec.Value)
		if err != nil {
			return nil, nil, err
		}
		sky = append(sky, t)
	}
	parts := 0
	for k := 0; k < d; k++ {
		parts += len(tables[k])
	}
	st := &Stats{
		Algorithm:      "MR-Bitmap",
		Partitions:     parts, // bit-slices stand in for data partitions
		SkylineSize:    len(sky),
		DominanceTests: int64(n) * int64(d), // one bitmap probe per tuple-dim
		ShuffleBytes:   res1.Counters.Get(mapreduce.CounterShuffleBytes) + res2.Counters.Get(mapreduce.CounterShuffleBytes),
		Total:          time.Since(start),
		SimulatedTotal: res1.SimulatedTime + res2.SimulatedTime,
	}
	st.addFaultCounters(res1, res2)
	return sky, st, nil
}

// newBitmapReducer tests each received tuple against the cached bit-slices.
func newBitmapReducer(d, n int) mapreduce.Reducer {
	var (
		tables []tuple.Tuple
		le     [][]*bitstring.Bitstring
	)
	load := func(ctx *mapreduce.TaskContext) error {
		if tables != nil {
			return nil
		}
		blob := ctx.Cache.MustGet(cacheKeyBitmapTables)
		tables = make([]tuple.Tuple, d)
		off := 0
		for k := 0; k < d; k++ {
			t, m, err := tuple.Decode(blob[off:])
			if err != nil {
				return err
			}
			tables[k] = t
			off += m
		}
		blob = ctx.Cache.MustGet(cacheKeyBitmapSlices)
		le = make([][]*bitstring.Bitstring, d)
		off = 0
		for k := 0; k < d; k++ {
			cnt, m := binary.Uvarint(blob[off:])
			if m <= 0 {
				return fmt.Errorf("baseline: truncated bitmap slices")
			}
			off += m
			le[k] = make([]*bitstring.Bitstring, cnt)
			for r := range le[k] {
				bs, m, err := bitstring.Decode(blob[off:])
				if err != nil {
					return err
				}
				le[k][r] = bs
				off += m
			}
		}
		return nil
	}
	return mapreduce.ReducerFuncs{
		ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
			if err := load(ctx); err != nil {
				return err
			}
			for _, v := range values {
				t, _, err := tuple.Decode(v)
				if err != nil {
					return err
				}
				// C = ∧ LE_k(rank): tuples not worse than t anywhere.
				// D = ∨ LT_k(rank): tuples strictly better somewhere.
				// t is dominated iff C ∧ D ≠ ∅.
				c := le[0][rankOf(tables[0], t[0])].Clone()
				dset := bitstring.New(n)
				for k := 0; k < d; k++ {
					r := rankOf(tables[k], t[k])
					if k > 0 {
						c.And(le[k][r])
					}
					if r > 0 {
						dset.Or(le[k][r-1])
					}
				}
				c.And(dset)
				if !c.Any() {
					emit(nil, v)
				}
			}
			return nil
		},
	}
}

// rankOf returns the index of v in the sorted table (v must be present).
func rankOf(table tuple.Tuple, v float64) int {
	i := sort.SearchFloat64s(table, v)
	return i
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
