// Package baseline implements the MapReduce skyline algorithms the paper
// compares against:
//
//   - MR-BNL [Zhang, Zhou, Guan: Adapting skyline computation to the
//     MapReduce framework, DASFAA Workshops 2011]: each dimension is split
//     into two halves, yielding 2^d subspaces; mappers compute one BNL
//     local skyline per subspace; a single reducer merges the subspace
//     skylines and removes cross-subspace false positives using the
//     subspace codes.
//   - MR-SFS [same source]: MR-BNL with the presorting local kernel. The
//     paper skips it experimentally ("less efficient than MR-BNL"); it is
//     included here for completeness and the kernel ablation.
//   - MR-Angle [Chen, Hwang, Wu: MapReduce skyline query processing with a
//     new angular partitioning approach, IPDPS Workshops 2012]: tuples are
//     partitioned by hyperspherical angles (adapting [Vlachou et al.,
//     SIGMOD 2008]); mappers compute one BNL local skyline per angular
//     partition; a single reducer merges everything with BNL. Angular
//     partitions cannot prune each other, but they slice the space so that
//     each partition's local skyline is small.
//
// MR-Bitmap is omitted for the same reason the paper omits it: it cannot
// handle continuous numeric domains.
package baseline

import (
	"context"
	"fmt"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// Config parametrizes the baseline algorithms.
type Config struct {
	// Engine executes the MapReduce job; required. Any mapreduce.Executor
	// works: the in-process *mapreduce.Engine or rpcexec's multi-process
	// backend.
	Engine mapreduce.Executor
	// Ctx, when non-nil, bounds every job of the run (deadline or
	// cancellation; flows into mapreduce.Engine.RunContext). Nil means
	// context.Background().
	Ctx context.Context
	// NumMappers is the map task count; defaults to the cluster's total
	// slots.
	NumMappers int
	// AngularPartitions is the number of angular partitions MR-Angle aims
	// for; defaults to the mapper count, following the baseline paper's
	// "one partition per map slot" guidance.
	AngularPartitions int
	// MaxAttempts bounds task attempts.
	MaxAttempts int
	// Lo and Hi bound the data domain per dimension; both nil selects the
	// unit box [0,1)^d. MR-BNL splits each dimension at the domain
	// midpoint; MR-Angle measures angles from the domain origin.
	Lo, Hi []float64
}

func (c *Config) validate(d int) error {
	if c.Engine == nil {
		return fmt.Errorf("baseline: Config.Engine is required")
	}
	if (c.Lo == nil) != (c.Hi == nil) {
		return fmt.Errorf("baseline: Lo and Hi must both be set or both nil")
	}
	if c.Lo != nil && d > 0 && (len(c.Lo) != d || len(c.Hi) != d) {
		return fmt.Errorf("baseline: bounds dimensionality %d/%d does not match data d=%d", len(c.Lo), len(c.Hi), d)
	}
	return nil
}

// ctx resolves the run context.
func (c *Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// mid returns the per-dimension domain midpoints for d dimensions.
func (c *Config) mid(d int) []float64 {
	m := make([]float64, d)
	for k := range m {
		if c.Lo == nil {
			m[k] = 0.5
		} else {
			m[k] = (c.Lo[k] + c.Hi[k]) / 2
		}
	}
	return m
}

// origin returns the per-dimension domain origin for d dimensions.
func (c *Config) origin(d int) []float64 {
	o := make([]float64, d)
	if c.Lo != nil {
		copy(o, c.Lo)
	}
	return o
}

func (c *Config) mappers() int {
	if c.NumMappers > 0 {
		return c.NumMappers
	}
	return c.Engine.TotalSlots()
}

// Stats reports a baseline run.
type Stats struct {
	// Algorithm names the baseline.
	Algorithm string
	// Partitions is the number of data partitions used (2^d subspaces for
	// MR-BNL/MR-SFS, angular cells for MR-Angle).
	Partitions int
	// SkylineSize is the global skyline cardinality.
	SkylineSize int
	// DominanceTests counts tuple-pair comparisons across all tasks.
	DominanceTests int64
	// ShuffleBytes is the shuffled key+value volume.
	ShuffleBytes int64
	// Total is the wall-clock duration of the run.
	Total time.Duration
	// SimulatedTotal is the simulated cluster time of the job; zero unless
	// the engine carries a mapreduce.SimConfig.
	SimulatedTotal time.Duration
	// ReduceOutputRecords is the final job's reduce output record count,
	// used by the chaos harness to check recovery did not duplicate or drop
	// output.
	ReduceOutputRecords int64
	// TaskFailures, SpeculativeLaunched, SpeculativeWon, NodeFailures and
	// ShuffleCorruptions sum the engine's fault-injection counters across
	// the baseline's jobs; all zero without a mapreduce.FaultPlan.
	TaskFailures        int64
	SpeculativeLaunched int64
	SpeculativeWon      int64
	NodeFailures        int64
	ShuffleCorruptions  int64
}

// addFaultCounters folds the fault-injection counters of the run's jobs
// into the stats; the last result's reduce output count is recorded (it is
// the job that emits the skyline).
func (s *Stats) addFaultCounters(results ...*mapreduce.Result) {
	for _, res := range results {
		s.TaskFailures += res.Counters.Get(mapreduce.CounterTaskFailures)
		s.SpeculativeLaunched += res.Counters.Get(mapreduce.CounterSpeculativeLaunched)
		s.SpeculativeWon += res.Counters.Get(mapreduce.CounterSpeculativeWon)
		s.NodeFailures += res.Counters.Get(mapreduce.CounterNodeFailures)
		s.ShuffleCorruptions += res.Counters.Get(mapreduce.CounterShuffleCorruptions)
	}
	if len(results) > 0 {
		s.ReduceOutputRecords = results[len(results)-1].Counters.Get(mapreduce.CounterReduceOutputRecords)
	}
}

const counterDominanceTests = "baseline.dominance.tests"

// getWindow returns the partition's columnar window from m, creating and
// instrumenting an empty one on first use.
func getWindow(m map[int]*window.Window, p, dim int, reg *obs.Registry) *window.Window {
	w := m[p]
	if w == nil {
		w = window.New(dim)
		w.Instrument(reg)
		m[p] = w
	}
	return w
}

// newPartitionMapper builds the shared baseline mapper: maintain one
// columnar local-skyline window per partition id (locate routes tuples to
// partitions) and emit (partition, window) on flush. Non-BNL kernels
// buffer per partition and run the batch kernel at flush time.
func newPartitionMapper(dim int, locate func(t tuple.Tuple) int, kernel skyline.Kernel) mapreduce.Mapper {
	windows := make(map[int]*window.Window)
	pending := make(map[int]tuple.List) // batch-kernel buffers
	var cnt skyline.Count
	return mapreduce.MapperFuncs{
		MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
			t, err := mapreduce.DecodeTupleRecord(rec)
			if err != nil {
				return err
			}
			p := locate(t)
			if kernel != skyline.KernelBNL {
				pending[p] = append(pending[p], t)
				return nil
			}
			getWindow(windows, p, dim, ctx.Trace.Metrics()).Insert(t, &cnt)
			return nil
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			doneLocal := ctx.Trace.Timed(ctx.Track, "local-skyline", obs.CatAlgo, "algo.local_skyline.ns")
			for p, buf := range pending {
				windows[p] = window.FromList(dim, kernel.Compute(buf, &cnt))
			}
			doneLocal()
			ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
			var scratch []byte
			for _, w := range sortedWindows(windows) {
				scratch = tuple.AppendEncodeList(scratch[:0], w.win.Rows())
				emit(encodeKey(w.id), scratch)
			}
			return nil
		},
	}
}

// newSingleReducer builds the shared baseline reducer: merge the mappers'
// per-partition windows, then run the algorithm-specific global merge
// (finishReduce) and emit the skyline.
func newSingleReducer(dim int, finishReduce func(s map[int]*window.Window, cnt *skyline.Count) tuple.List) mapreduce.Reducer {
	s := make(map[int]*window.Window)
	var cnt skyline.Count
	return mapreduce.ReducerFuncs{
		ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, _ mapreduce.Emitter) error {
			p, err := decodeKey(key)
			if err != nil {
				return err
			}
			w := getWindow(s, p, dim, ctx.Trace.Metrics())
			for _, v := range values {
				l, _, err := tuple.DecodeList(v)
				if err != nil {
					return err
				}
				for _, t := range l {
					w.Insert(t, &cnt)
				}
			}
			return nil
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			doneMerge := ctx.Trace.Timed(ctx.Track, "merge", obs.CatAlgo, "algo.merge.ns")
			sky := finishReduce(s, &cnt)
			doneMerge()
			ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
			var scratch []byte
			for _, t := range sky {
				scratch = tuple.AppendEncode(scratch[:0], t)
				emit(nil, scratch)
			}
			return nil
		},
	}
}

// runSingleReducerJob executes the shared shape of all three baselines:
// mappers maintain one columnar local-skyline window per partition id and
// emit (partition, window); a single reducer merges and finishes. The
// finishReduce callback implements the algorithm-specific global merge.
// A non-empty kind stamps the job for the process executor (spec must then
// reconstruct locate/finishReduce; see kinds.go).
func runSingleReducerJob(
	cfg *Config,
	name string,
	data tuple.List,
	locate func(t tuple.Tuple) int,
	kernel skyline.Kernel,
	finishReduce func(s map[int]*window.Window, cnt *skyline.Count) tuple.List,
	kind string,
	spec []byte,
) (tuple.List, *mapreduce.Result, error) {
	dim := data.Dim()
	job := &mapreduce.Job{
		Name:        name,
		Input:       mapreduce.TupleInput(data),
		NumMappers:  cfg.mappers(),
		NumReducers: 1,
		MaxAttempts: cfg.MaxAttempts,
		Kind:        kind,
		Spec:        spec,
		NewMapper:   func() mapreduce.Mapper { return newPartitionMapper(dim, locate, kernel) },
		NewReducer:  func() mapreduce.Reducer { return newSingleReducer(dim, finishReduce) },
	}
	res, err := cfg.Engine.RunContext(cfg.ctx(), job)
	if err != nil {
		return nil, nil, err
	}
	out := make(tuple.List, 0, len(res.Output))
	for _, rec := range res.Output {
		t, _, err := tuple.Decode(rec.Value)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, t)
	}
	return out, res, nil
}

type idWindow struct {
	id  int
	win *window.Window
}

// sortedWindows returns windows ordered by partition id for deterministic
// emission.
func sortedWindows(m map[int]*window.Window) []idWindow {
	out := make([]idWindow, 0, len(m))
	for id, w := range m {
		if w.Len() == 0 {
			continue
		}
		out = append(out, idWindow{id, w})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].id < out[j-1].id; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func buildStats(name string, partitions int, sky tuple.List, res *mapreduce.Result, start time.Time) *Stats {
	st := &Stats{
		Algorithm:      name,
		Partitions:     partitions,
		SkylineSize:    len(sky),
		DominanceTests: res.Counters.Get(counterDominanceTests),
		ShuffleBytes:   res.Counters.Get(mapreduce.CounterShuffleBytes),
		Total:          time.Since(start),
		SimulatedTotal: res.SimulatedTime,
	}
	st.addFaultCounters(res)
	return st
}
