package baseline

import (
	"encoding/json"
	"fmt"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// KindHalfspace is the job kind of the MR-BNL / MR-SFS half-space job:
// the subspace routing and the cross-subspace merge are pure functions of
// (d, mid, kernel), so worker processes reconstruct the exact task
// closures the driver built. MR-Angle and SKY-MR jobs are not stamped
// with a kind and stay in-process-only.
const KindHalfspace = "baseline/halfspace"

func init() {
	mapreduce.RegisterKind(KindHalfspace, buildHalfspaceKind)
}

// halfspaceSpec parametrizes the MR-BNL/MR-SFS job.
type halfspaceSpec struct {
	D      int       `json:"d"`
	Mid    []float64 `json:"mid"`
	Kernel int       `json:"kernel"`
}

// halfspaceSpecBytes serializes the spec; specs are plain data, so
// marshalling cannot fail.
func halfspaceSpecBytes(d int, mid []float64, kernel skyline.Kernel) []byte {
	b, err := json.Marshal(halfspaceSpec{D: d, Mid: mid, Kernel: int(kernel)})
	if err != nil {
		panic(fmt.Sprintf("baseline: marshalling halfspace spec: %v", err))
	}
	return b
}

func buildHalfspaceKind(spec []byte) (*mapreduce.JobFuncs, error) {
	var s halfspaceSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, fmt.Errorf("baseline: halfspace spec: %w", err)
	}
	if len(s.Mid) != s.D {
		return nil, fmt.Errorf("baseline: halfspace spec mid has %d dims, want %d", len(s.Mid), s.D)
	}
	locate := func(t tuple.Tuple) int { return subspaceOf(t, s.Mid) }
	kernel := skyline.Kernel(s.Kernel)
	return &mapreduce.JobFuncs{
		NewMapper:  func() mapreduce.Mapper { return newPartitionMapper(s.D, locate, kernel) },
		NewReducer: func() mapreduce.Reducer { return newSingleReducer(s.D, halfspaceFinish) },
	}, nil
}
