package mapreduce

import (
	"runtime"
	"time"
)

// SimConfig enables simulated-time accounting. When an Engine carries a
// SimConfig, every task's execution is measured while the number of
// concurrently running task bodies is bounded by MeasureParallelism (so
// measurements stay contention-free), and the job's Result gains a
// SimulatedTime: the wall-clock the job would have taken on the simulated
// cluster — list-scheduling makespan of the map tasks over the cluster's
// slots, a per-reducer shuffle transfer at the configured bandwidth, the
// reduce makespan, and fixed per-job and per-task overheads.
//
// This is how the repository reproduces the paper's cluster results on a
// laptop: the paper's headline effect — the single reducer of
// MR-GPSRS/MR-BNL/MR-Angle serializing the global merge while MR-GPMRS
// spreads it over r reducers — is a makespan property of the schedule, not
// of summed CPU work, and summed CPU work is all a single host can observe
// directly.
type SimConfig struct {
	// TaskStartup is the fixed cost of launching one task attempt
	// (Hadoop 1.x JVM spin-up). Default 1s.
	TaskStartup time.Duration
	// JobSetup is the fixed per-job overhead (job submission, split
	// computation, cache distribution). Default 5s.
	JobSetup time.Duration
	// NetBandwidth is the per-link bandwidth in bytes/second used for the
	// shuffle transfer; each reducer pulls its input over one such link.
	// Default 12.5 MB/s — the 100 Mbit/s LAN of the paper's cluster.
	NetBandwidth int64
	// MeasureParallelism bounds how many task bodies execute concurrently
	// while their durations are measured. 0 (the default) resolves to
	// min(GOMAXPROCS, cluster slots): each in-flight task is a single
	// CPU-bound goroutine on its own core, so individual measurements stay
	// contention-free in practice and a sweep finishes in roughly 1/P of
	// the serial wall clock. 1 serializes task bodies — the strict
	// isolation mode this repository's publication runs (cmd/skyreport)
	// use, where per-task durations must not carry even scheduler noise
	// from sibling tasks. Values above GOMAXPROCS trade measurement
	// fidelity for throughput and are not recommended.
	//
	// The makespan computation is a pure function of the measured
	// durations, so any two runs that observe the same durations produce
	// the same SimulatedTime regardless of this setting.
	MeasureParallelism int
}

// measureSlots resolves the measurement-semaphore capacity against the
// cluster's slot count.
func (c *SimConfig) measureSlots(clusterSlots int) int {
	p := c.MeasureParallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
		if clusterSlots < p {
			p = clusterSlots
		}
	}
	if p < 1 {
		p = 1
	}
	return p
}

// withDefaults fills zero fields.
func (c SimConfig) withDefaults() SimConfig {
	if c.TaskStartup == 0 {
		c.TaskStartup = time.Second
	}
	if c.JobSetup == 0 {
		c.JobSetup = 5 * time.Second
	}
	if c.NetBandwidth == 0 {
		c.NetBandwidth = 12_500_000
	}
	return c
}

// makespan computes the finish time of greedy list scheduling: tasks are
// assigned in order to the slot that would finish them earliest, with each
// slot's relative speed scaling task durations (a 0.76-speed slot runs a
// 1s task in ~1.3s). This mirrors how a MapReduce scheduler drains a task
// queue over a fixed, possibly heterogeneous slot pool.
func makespan(durations []time.Duration, speeds []float64) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if len(speeds) == 0 {
		speeds = []float64{1}
	}
	free := make([]time.Duration, len(speeds))
	var end time.Duration
	for _, d := range durations {
		// Pick the slot with the earliest finish time for this task.
		best := 0
		bestFinish := time.Duration(0)
		for i, f := range free {
			scaled := time.Duration(float64(d) / speedOf(speeds, i))
			finish := f + scaled
			if i == 0 || finish < bestFinish {
				best, bestFinish = i, finish
			}
		}
		free[best] = bestFinish
		if bestFinish > end {
			end = bestFinish
		}
	}
	return end
}

// speedOf reads a slot speed, defaulting zeros to 1.
func speedOf(speeds []float64, i int) float64 {
	if speeds[i] <= 0 {
		return 1
	}
	return speeds[i]
}

// simulate computes a job's simulated wall-clock from measured task
// durations, per-reducer shuffle volumes and the cluster's slot speeds.
func (c SimConfig) simulate(mapDurs, reduceDurs []time.Duration, perReducerBytes []int64, speeds []float64) time.Duration {
	c = c.withDefaults()
	withStartup := func(ds []time.Duration) []time.Duration {
		out := make([]time.Duration, len(ds))
		for i, d := range ds {
			out[i] = d + c.TaskStartup
		}
		return out
	}
	total := c.JobSetup
	total += makespan(withStartup(mapDurs), speeds)
	total += c.shuffleTime(perReducerBytes)
	total += makespan(withStartup(reduceDurs), speeds)
	return total
}

// shuffleTime is the simulated shuffle-transfer duration: each reducer
// pulls its input over one NetBandwidth link; the slowest pull gates the
// reduce phase. Callers pass a defaulted config.
func (c SimConfig) shuffleTime(perReducerBytes []int64) time.Duration {
	var shuffle time.Duration
	for _, b := range perReducerBytes {
		t := time.Duration(float64(b) / float64(c.NetBandwidth) * float64(time.Second))
		if t > shuffle {
			shuffle = t
		}
	}
	return shuffle
}

// simulateVirtual converts a fault-schedule finish time into the job's
// SimulatedTime. Under a FaultPlan the virtual scheduler already charges
// every attempt — including crashed, killed and duplicate speculative ones
// — to slot time on its event clock, so the makespan accounts for wasted
// and duplicate work; reduceEnd is the clock value when the last reduce
// task committed (map makespan and shuffle transfer included), and only the
// per-job setup overhead remains to be added.
func (c SimConfig) simulateVirtual(reduceEnd time.Duration) time.Duration {
	return c.withDefaults().JobSetup + reduceEnd
}
