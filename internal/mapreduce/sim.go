package mapreduce

import (
	"time"
)

// SimConfig enables simulated-time accounting. When an Engine carries a
// SimConfig, every task's execution is measured in isolation (tasks are
// serialized onto the host CPU so measurements are contention-free) and the
// job's Result gains a SimulatedTime: the wall-clock the job would have
// taken on the simulated cluster — list-scheduling makespan of the map
// tasks over the cluster's slots, a per-reducer shuffle transfer at the
// configured bandwidth, the reduce makespan, and fixed per-job and
// per-task overheads.
//
// This is how the repository reproduces the paper's cluster results on a
// laptop: the paper's headline effect — the single reducer of
// MR-GPSRS/MR-BNL/MR-Angle serializing the global merge while MR-GPMRS
// spreads it over r reducers — is a makespan property of the schedule, not
// of summed CPU work, and summed CPU work is all a single host can observe
// directly.
type SimConfig struct {
	// TaskStartup is the fixed cost of launching one task attempt
	// (Hadoop 1.x JVM spin-up). Default 1s.
	TaskStartup time.Duration
	// JobSetup is the fixed per-job overhead (job submission, split
	// computation, cache distribution). Default 5s.
	JobSetup time.Duration
	// NetBandwidth is the per-link bandwidth in bytes/second used for the
	// shuffle transfer; each reducer pulls its input over one such link.
	// Default 12.5 MB/s — the 100 Mbit/s LAN of the paper's cluster.
	NetBandwidth int64
}

// withDefaults fills zero fields.
func (c SimConfig) withDefaults() SimConfig {
	if c.TaskStartup == 0 {
		c.TaskStartup = time.Second
	}
	if c.JobSetup == 0 {
		c.JobSetup = 5 * time.Second
	}
	if c.NetBandwidth == 0 {
		c.NetBandwidth = 12_500_000
	}
	return c
}

// makespan computes the finish time of greedy list scheduling: tasks are
// assigned in order to the slot that would finish them earliest, with each
// slot's relative speed scaling task durations (a 0.76-speed slot runs a
// 1s task in ~1.3s). This mirrors how a MapReduce scheduler drains a task
// queue over a fixed, possibly heterogeneous slot pool.
func makespan(durations []time.Duration, speeds []float64) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if len(speeds) == 0 {
		speeds = []float64{1}
	}
	free := make([]time.Duration, len(speeds))
	var end time.Duration
	for _, d := range durations {
		// Pick the slot with the earliest finish time for this task.
		best := 0
		bestFinish := time.Duration(0)
		for i, f := range free {
			scaled := time.Duration(float64(d) / speedOf(speeds, i))
			finish := f + scaled
			if i == 0 || finish < bestFinish {
				best, bestFinish = i, finish
			}
		}
		free[best] = bestFinish
		if bestFinish > end {
			end = bestFinish
		}
	}
	return end
}

// speedOf reads a slot speed, defaulting zeros to 1.
func speedOf(speeds []float64, i int) float64 {
	if speeds[i] <= 0 {
		return 1
	}
	return speeds[i]
}

// simulate computes a job's simulated wall-clock from measured task
// durations, per-reducer shuffle volumes and the cluster's slot speeds.
func (c SimConfig) simulate(mapDurs, reduceDurs []time.Duration, perReducerBytes []int64, speeds []float64) time.Duration {
	c = c.withDefaults()
	withStartup := func(ds []time.Duration) []time.Duration {
		out := make([]time.Duration, len(ds))
		for i, d := range ds {
			out[i] = d + c.TaskStartup
		}
		return out
	}
	total := c.JobSetup
	total += makespan(withStartup(mapDurs), speeds)
	var shuffle time.Duration
	for _, b := range perReducerBytes {
		t := time.Duration(float64(b) / float64(c.NetBandwidth) * float64(time.Second))
		if t > shuffle {
			shuffle = t
		}
	}
	total += shuffle
	total += makespan(withStartup(reduceDurs), speeds)
	return total
}
