package mapreduce

import (
	"testing"
	"time"
)

func TestMakespanListScheduling(t *testing.T) {
	ms := func(ds ...int) []time.Duration {
		out := make([]time.Duration, len(ds))
		for i, d := range ds {
			out[i] = time.Duration(d) * time.Millisecond
		}
		return out
	}
	uniform := func(slots int) []float64 {
		out := make([]float64, slots)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	cases := []struct {
		name   string
		durs   []time.Duration
		speeds []float64
		want   time.Duration
	}{
		{"empty", nil, uniform(4), 0},
		{"single", ms(10), uniform(4), 10 * time.Millisecond},
		{"serial", ms(10, 20, 30), uniform(1), 60 * time.Millisecond},
		{"fully-parallel", ms(10, 20, 30), uniform(3), 30 * time.Millisecond},
		{"two-waves", ms(10, 10, 10, 10), uniform(2), 20 * time.Millisecond},
		{"greedy-fill", ms(30, 10, 10, 10), uniform(2), 30 * time.Millisecond},
		{"no-slots-clamped", ms(5, 5), nil, 10 * time.Millisecond},
		// A half-speed slot doubles its task: both tasks go to the fast
		// slot (earliest finish) for a 20ms makespan.
		{"heterogeneous", ms(10, 10), []float64{1, 0.5}, 20 * time.Millisecond},
		// With a big first task, the slow slot still takes the second.
		{"heterogeneous-split", ms(40, 10), []float64{1, 0.5}, 40 * time.Millisecond},
	}
	for _, c := range cases {
		if got := makespan(c.durs, c.speeds); got != c.want {
			t.Errorf("%s: makespan = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSimConfigDefaults(t *testing.T) {
	c := SimConfig{}.withDefaults()
	if c.TaskStartup != time.Second || c.JobSetup != 5*time.Second || c.NetBandwidth != 12_500_000 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = SimConfig{TaskStartup: time.Millisecond, JobSetup: time.Second, NetBandwidth: 1}.withDefaults()
	if c.TaskStartup != time.Millisecond || c.JobSetup != time.Second || c.NetBandwidth != 1 {
		t.Errorf("overrides lost: %+v", c)
	}
}

func TestSimulateComposition(t *testing.T) {
	c := SimConfig{
		TaskStartup:  time.Second,
		JobSetup:     2 * time.Second,
		NetBandwidth: 1000, // bytes/s
	}
	mapDurs := []time.Duration{time.Second, time.Second}
	reduceDurs := []time.Duration{3 * time.Second}
	// 2000 bytes to the single reducer → 2s shuffle.
	got := c.simulate(mapDurs, reduceDurs, []int64{2000}, []float64{1, 1})
	// setup 2s + map makespan (1+1 startup = 2s parallel) + shuffle 2s +
	// reduce (3+1 = 4s) = 10s.
	want := 10 * time.Second
	if got != want {
		t.Errorf("simulate = %v, want %v", got, want)
	}
}

func TestSimulateShuffleIsMaxPerReducer(t *testing.T) {
	c := SimConfig{TaskStartup: 0, JobSetup: 0, NetBandwidth: 1000}
	c = SimConfig{TaskStartup: time.Nanosecond, JobSetup: time.Nanosecond, NetBandwidth: 1000}
	// Reducers pull in parallel: the slowest link dominates.
	a := c.simulate(nil, nil, []int64{1000, 4000, 2000}, []float64{1, 1, 1, 1})
	b := c.simulate(nil, nil, []int64{4000}, []float64{1, 1, 1, 1})
	if a != b {
		t.Errorf("parallel shuffle: %v vs %v", a, b)
	}
	if a < 4*time.Second {
		t.Errorf("shuffle time %v, want ≥ 4s", a)
	}
}

func TestSingleReducerBottleneckVisibleInSimTime(t *testing.T) {
	// The effect the simulation exists for: the same total reduce work is
	// slower through one reducer than spread over many.
	c := SimConfig{TaskStartup: time.Millisecond, JobSetup: time.Millisecond, NetBandwidth: 1 << 40}
	slots := make([]float64, 26)
	for i := range slots {
		slots[i] = 1
	}
	single := c.simulate(nil, []time.Duration{8 * time.Second}, []int64{0}, slots)
	spread := c.simulate(nil, []time.Duration{
		time.Second, time.Second, time.Second, time.Second,
		time.Second, time.Second, time.Second, time.Second,
	}, make([]int64, 8), slots)
	if spread >= single {
		t.Errorf("parallel reduce %v not faster than single %v", spread, single)
	}
}
