package mapreduce

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// FaultPlan is a fully deterministic fault-injection schedule, the chaos
// side of the engine. Every decision — whether an attempt crashes, which
// nodes straggle, which shuffle segments arrive corrupted — is a pure
// function of the Seed and the decision's coordinates (phase, task id,
// attempt, node name), never of wall-clock time or scheduling order. Two
// runs with the same plan therefore inject exactly the same faults, and the
// whole job executes on a virtual clock (see Engine.Faults), so task
// placements, histories and counters reproduce bit-for-bit.
//
// Each fault mirrors a Hadoop failure mode:
//
//   - Crashes model task-attempt failures (a thrown exception or a JVM
//     crash); the error flavor returns from the attempt, the panic flavor
//     panics out of it, and both flow through the MaxAttempts retry budget.
//   - Stragglers model slow TaskTrackers: a straggling node multiplies
//     every attempt's duration, which is what speculative execution exists
//     to mask.
//   - Shuffle corruption models a bad fetch of a map-output segment; the
//     engine detects it via a per-segment checksum and refetches, as
//     Hadoop's reducers re-pull a failed map-output transfer.
//   - NodeFailure models losing a whole TaskTracker at a simulated time:
//     running attempts on the node die, and completed map tasks whose
//     output lived there are re-executed elsewhere (map output is stored on
//     the mapper's local disk in Hadoop, so it dies with the node).
type FaultPlan struct {
	// Seed drives every pseudo-random decision. Plans with equal seeds and
	// rates are identical; different seeds give independent schedules.
	Seed int64

	// CrashRate is the per-attempt probability that a task attempt crashes
	// mid-run. Crashed attempts consume half their virtual duration.
	CrashRate float64
	// PanicFraction is the fraction of crashes delivered as panics instead
	// of returned errors (exercising the engine's panic recovery). Zero
	// defaults to 0.5; set negative for errors only.
	PanicFraction float64

	// StragglerRate is the per-node probability that a node is a straggler
	// for the whole job.
	StragglerRate float64
	// StragglerFactor multiplies attempt durations on straggler nodes.
	// Zero defaults to 4.
	StragglerFactor float64

	// CorruptRate is the per-segment probability that the first fetch of a
	// (mapper, reducer) shuffle segment arrives corrupted. The corruption is
	// transient: the checksum catches it and the refetch succeeds.
	CorruptRate float64

	// NodeFailure, when non-nil, kills one whole node at a simulated time.
	NodeFailure *NodeFailure

	// TaskBaseCost is the virtual duration of one attempt before jitter,
	// node speed and straggler scaling. Zero defaults to 100ms.
	TaskBaseCost time.Duration

	// Speculative, when non-nil, enables speculative execution on the
	// virtual schedule.
	Speculative *SpeculativeConfig
}

// NodeFailure schedules the loss of one node.
type NodeFailure struct {
	// Node names the node that dies (must exist in the cluster; unknown
	// names are ignored).
	Node string
	// At is the simulated time of death, on the job's virtual clock
	// (time zero = first task of the map phase starts).
	At time.Duration
}

// SpeculativeConfig tunes speculative execution: when a running attempt's
// virtual elapsed time exceeds SlowdownThreshold times the median completed
// attempt duration of its phase, and a slot is free on another node, the
// scheduler launches a duplicate attempt and takes whichever copy finishes
// first (Hadoop's mapred.map/reduce.tasks.speculative.execution).
type SpeculativeConfig struct {
	// SlowdownThreshold is the multiple of the median completed-task
	// duration beyond which a task is considered a straggler. Zero defaults
	// to 1.5.
	SlowdownThreshold float64
	// MinCompleted is how many attempts of the phase must have completed
	// before the median is trusted. Zero defaults to 3.
	MinCompleted int
}

// crashKind classifies the injected failure flavor of one attempt.
type crashKind int

const (
	crashNone crashKind = iota
	crashError
	crashPanic
)

// Defaulted knob accessors.

func (p *FaultPlan) panicFraction() float64 {
	switch {
	case p.PanicFraction < 0:
		return 0
	case p.PanicFraction == 0:
		return 0.5
	default:
		return p.PanicFraction
	}
}

func (p *FaultPlan) stragglerFactor() float64 {
	if p.StragglerFactor <= 0 {
		return 4
	}
	return p.StragglerFactor
}

func (p *FaultPlan) taskBaseCost() time.Duration {
	if p.TaskBaseCost <= 0 {
		return 100 * time.Millisecond
	}
	return p.TaskBaseCost
}

func (s *SpeculativeConfig) slowdownThreshold() float64 {
	if s.SlowdownThreshold <= 0 {
		return 1.5
	}
	return s.SlowdownThreshold
}

func (s *SpeculativeConfig) minCompleted() int {
	if s.MinCompleted <= 0 {
		return 3
	}
	return s.MinCompleted
}

// roll hashes the seed with a decision label and integer coordinates into a
// uniform float64 in [0, 1). FNV-1a keeps it dependency-free and stable
// across platforms and Go versions.
func (p *FaultPlan) roll(label string, coords ...int64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	h.Write([]byte(label))
	for _, c := range coords {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	// 53 mantissa bits of the hash give a uniform dyadic in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// rollNode is roll keyed by a node name.
func (p *FaultPlan) rollNode(label, node string) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	h.Write([]byte(label))
	h.Write([]byte(node))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// crash decides whether (and how) one task attempt crashes.
func (p *FaultPlan) crash(phase Phase, task, attempt int) crashKind {
	r := p.roll("crash", int64(phase), int64(task), int64(attempt))
	if r >= p.CrashRate {
		return crashNone
	}
	// Reuse the position of r inside the accepted interval to pick the
	// flavor, so flavor choice needs no second hash.
	if r < p.CrashRate*p.panicFraction() {
		return crashPanic
	}
	return crashError
}

// stragglerMult returns the duration multiplier of a node: 1 for healthy
// nodes, StragglerFactor for stragglers.
func (p *FaultPlan) stragglerMult(node string) float64 {
	if p.StragglerRate > 0 && p.rollNode("straggler", node) < p.StragglerRate {
		return p.stragglerFactor()
	}
	return 1
}

// corruptSegment decides whether the first fetch of mapper m's segment for
// reducer r arrives corrupted.
func (p *FaultPlan) corruptSegment(m, r int) bool {
	return p.CorruptRate > 0 && p.roll("corrupt", int64(m), int64(r)) < p.CorruptRate
}

// costJitter spreads attempt durations over [0.75, 1.25)× the base cost so
// medians and stragglers are meaningful; it depends on the task, not the
// attempt, so retries of a task model re-running the same work.
func (p *FaultPlan) costJitter(phase Phase, task int) float64 {
	return 0.75 + 0.5*p.roll("cost", int64(phase), int64(task))
}
