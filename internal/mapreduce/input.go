package mapreduce

import (
	"bytes"
	"fmt"
	"io"

	"mrskyline/internal/dfs"
	"mrskyline/internal/tuple"
)

// Input provides the splits of a job's input data. hint is the desired
// split count for sources that can chunk freely; block-backed sources
// ignore it.
type Input interface {
	Splits(hint int) ([]Split, error)
}

// Split is one mapper's share of the input.
type Split interface {
	// Hosts lists nodes holding the split's data locally (may be empty).
	Hosts() []string
	// Each streams the split's records in order.
	Each(fn func(Record) error) error
}

// ---------------------------------------------------------------------------
// In-memory record input

// MemoryInput serves records from memory, chunked into the hinted number of
// splits. It is the fast path used by the experiment harness, where data is
// generated in-process.
type MemoryInput struct {
	// Records are served in order, round-robin-free: split i gets the i-th
	// contiguous chunk.
	Records []Record
}

// Splits implements Input.
func (m MemoryInput) Splits(hint int) ([]Split, error) {
	if hint < 1 {
		hint = 1
	}
	n := len(m.Records)
	if hint > n && n > 0 {
		hint = n
	}
	if n == 0 {
		return []Split{memorySplit(nil)}, nil
	}
	splits := make([]Split, 0, hint)
	for i := 0; i < hint; i++ {
		lo := i * n / hint
		hi := (i + 1) * n / hint
		splits = append(splits, memorySplit(m.Records[lo:hi]))
	}
	return splits, nil
}

type memorySplit []Record

func (s memorySplit) Hosts() []string { return nil }

func (s memorySplit) Each(fn func(Record) error) error {
	for _, r := range s {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// TupleInput adapts a tuple list into an input: each record's value is the
// binary encoding of one tuple (key nil). All encodings share one exactly
// sized backing arena, so building the input costs two allocations instead
// of one per tuple.
func TupleInput(data tuple.List) MemoryInput {
	size := 0
	for _, t := range data {
		size += uvarintLen(uint64(len(t))) + 8*len(t)
	}
	buf := make([]byte, 0, size)
	recs := make([]Record, len(data))
	for i, t := range data {
		start := len(buf)
		buf = tuple.AppendEncode(buf, t)
		recs[i] = Record{Value: buf[start:len(buf):len(buf)]}
	}
	return MemoryInput{Records: recs}
}

// uvarintLen returns the encoded size of v, mirroring binary.AppendUvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeTupleRecord recovers a tuple from a TupleInput record.
func DecodeTupleRecord(rec Record) (tuple.Tuple, error) {
	t, _, err := tuple.Decode(rec.Value)
	return t, err
}

// ---------------------------------------------------------------------------
// DFS-backed line input

// DFSLineInput reads newline-separated records from a file in the simulated
// distributed file system. One split is produced per block, and split
// boundaries are healed the way Hadoop's TextInputFormat heals them: a
// split whose offset is non-zero skips the (partial) line it starts inside,
// and every split reads past its end to finish its last line.
type DFSLineInput struct {
	FS   *dfs.FS
	Path string
}

// Splits implements Input.
func (in DFSLineInput) Splits(int) ([]Split, error) {
	blocks, err := in.FS.Blocks(in.Path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: listing blocks: %w", err)
	}
	info, err := in.FS.Stat(in.Path)
	if err != nil {
		return nil, err
	}
	splits := make([]Split, len(blocks))
	for i, b := range blocks {
		splits[i] = &dfsLineSplit{
			fs:       in.FS,
			path:     in.Path,
			offset:   b.Offset,
			length:   int64(b.Length),
			fileSize: info.Size,
			hosts:    b.Hosts,
		}
	}
	return splits, nil
}

type dfsLineSplit struct {
	fs       *dfs.FS
	path     string
	offset   int64
	length   int64
	fileSize int64
	hosts    []string
}

func (s *dfsLineSplit) Hosts() []string { return s.hosts }

func (s *dfsLineSplit) Each(fn func(Record) error) error {
	r := &dfsReader{fs: s.fs, path: s.path, pos: s.offset}
	pos := s.offset
	// A split that does not start the file begins mid-line (or exactly at a
	// line start — indistinguishable without reading backwards), so it
	// skips through the first newline; the previous split owns that line.
	if s.offset > 0 {
		skipped, err := r.readLine()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		pos += int64(len(skipped))
	}
	// Read lines while their first byte is at or before the split end: a
	// line starting exactly at the boundary belongs to this split, because
	// the next split unconditionally skips its first line (Hadoop's
	// LineRecordReader contract).
	end := s.offset + s.length
	for pos <= end && pos < s.fileSize {
		line, err := r.readLine()
		if err == io.EOF && len(line) == 0 {
			return nil
		}
		if err != nil && err != io.EOF {
			return err
		}
		pos += int64(len(line))
		rec := bytes.TrimSuffix(line, []byte("\n"))
		rec = bytes.TrimSuffix(rec, []byte("\r"))
		if err := fn(Record{Value: rec}); err != nil {
			return err
		}
		if err == io.EOF {
			return nil
		}
	}
	return nil
}

// dfsReader is a buffered line reader over FS.ReadAt.
type dfsReader struct {
	fs   *dfs.FS
	path string
	pos  int64
	buf  []byte
	eof  bool
}

// readLine returns the next line including its trailing newline (if any).
// io.EOF is returned together with the final unterminated line, or alone.
func (r *dfsReader) readLine() ([]byte, error) {
	var line []byte
	for {
		if i := bytes.IndexByte(r.buf, '\n'); i >= 0 {
			line = append(line, r.buf[:i+1]...)
			r.buf = r.buf[i+1:]
			return line, nil
		}
		line = append(line, r.buf...)
		r.buf = r.buf[:0]
		if r.eof {
			if len(line) == 0 {
				return nil, io.EOF
			}
			return line, io.EOF
		}
		chunk := make([]byte, 64*1024)
		n, err := r.fs.ReadAt(r.path, chunk, r.pos)
		r.pos += int64(n)
		r.buf = append(r.buf, chunk[:n]...)
		if err == io.EOF {
			r.eof = true
		} else if err != nil {
			return nil, err
		}
	}
}

// ---------------------------------------------------------------------------
// Result chaining

// RecordsInput wraps the output of a previous job so it can feed the next
// one, split into the hinted number of chunks.
func RecordsInput(recs []Record) MemoryInput { return MemoryInput{Records: recs} }
