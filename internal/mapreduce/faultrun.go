package mapreduce

// Fault-schedule execution: when an Engine carries a FaultPlan, jobs run on
// a deterministic virtual clock instead of the concurrent cluster
// scheduler. Each phase is a discrete-event simulation over the cluster's
// slot topology — attempts occupy slots for a virtual duration derived from
// the plan (base cost × per-task jitter ÷ node speed × straggler factor),
// and the event loop advances from completion to completion, processing
// injected crashes, speculative launches and whole-node death strictly in
// virtual-time order with deterministic tie-breaking (slot index, then
// queue FIFO). Because no decision depends on wall-clock time or goroutine
// interleaving, two runs of the same job under the same plan produce
// bit-identical Histories, counters and per-node placement stats — the
// property the chaos test harness is built on.
//
// Task bodies (the actual mapper/reducer work) still execute for real, but
// sequentially, at the moment their attempt's completion event fires; an
// attempt's output and counters are committed only when it wins — crashed
// attempts, speculative losers and attempts on dead nodes never contribute,
// so fault-free and faulty runs of a deterministic job emit identical
// output and identical job counters.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/obs"
)

var errNoAliveVNodes = errors.New("no alive nodes")

// vslot is one schedulable slot of the virtual topology.
type vslot struct {
	node  string
	idx   int // slot index within the node (names the trace track)
	speed float64
	dead  bool
}

// vcluster is the virtual scheduler's view of the cluster: a flat slot list
// in configuration order plus node liveness, shared across the job's phases
// so a node death in the map phase stays dead for the reduce phase.
type vcluster struct {
	slots []vslot
	nodes []string // node names, configuration order
	dead  map[string]bool
	death *NodeFailure // pending death event; nil once fired or absent
}

func newVCluster(c *cluster.Cluster, plan *FaultPlan) *vcluster {
	vc := &vcluster{dead: make(map[string]bool)}
	for _, n := range c.NodeInfo() {
		down := c.IsDown(n.Name)
		if down {
			vc.dead[n.Name] = true
		}
		vc.nodes = append(vc.nodes, n.Name)
		sp := n.Speed
		if sp <= 0 {
			sp = 1
		}
		for s := 0; s < n.Slots; s++ {
			vc.slots = append(vc.slots, vslot{node: n.Name, idx: s, speed: sp, dead: down})
		}
	}
	if plan.NodeFailure != nil {
		nf := *plan.NodeFailure
		vc.death = &nf
	}
	return vc
}

// kill marks a node dead; it reports false for unknown or already-dead
// nodes (the death event is then a no-op).
func (vc *vcluster) kill(node string) bool {
	if vc.dead[node] {
		return false
	}
	known := false
	for s := range vc.slots {
		if vc.slots[s].node == node {
			vc.slots[s].dead = true
			known = true
		}
	}
	if known {
		vc.dead[node] = true
	}
	return known
}

// vattempt is one attempt occupying a slot on the virtual clock.
type vattempt struct {
	task    int
	attempt int
	slot    int
	start   time.Duration
	finish  time.Duration
	crash   crashKind // decided at launch from the plan
	spec    bool
}

// vtask is the scheduler's per-task state.
type vtask struct {
	issued    int // attempt numbers issued so far
	failures  int // failed attempts, counted against MaxAttempts
	running   int // attempts currently on slots (0..2)
	avoid     map[string]bool
	specTried bool
	done      bool
	node      string // node the winning attempt committed on
}

// vrequest is one queued execution request (FIFO).
type vrequest struct {
	task  int
	retry bool // re-execution after a failure, kill or lost output
}

// vphaseConfig describes one phase to the virtual scheduler.
type vphaseConfig struct {
	phase       Phase
	numTasks    int
	startAt     time.Duration // virtual clock at phase start
	maxAttempts int
	preferred   func(task int) []string
	taskName    func(task int) string
	// body runs the task's real work and commits its output; called only at
	// the completion event of an attempt that is about to win.
	body func(task, attempt int, node string) error
	// uncommit discards a committed task's output after its node died; set
	// only for the map phase (reduce output survives node death, as HDFS
	// output does in Hadoop).
	uncommit func(task int)
	// vbase shifts this job's virtual span timestamps so consecutive jobs
	// on one tracer occupy disjoint windows (obs.Tracer.VirtualBase).
	vbase time.Duration
	// tr is the job's tracer (the engine's unless the job overrides it).
	tr *obs.Tracer
}

// runVAttempt executes the injected-fault and user halves of one attempt,
// with panics (injected or from user code) recovered into errors exactly as
// the concurrent path does.
func (e *Engine) runVAttempt(cfg *vphaseConfig, a *vattempt, node string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s task %d on %s: panic: %v", cfg.phase, a.task, node, p)
		}
	}()
	if e.FaultInjector != nil {
		if err := e.FaultInjector(cfg.phase, a.task, a.attempt); err != nil {
			return err
		}
	}
	switch a.crash {
	case crashError:
		return fmt.Errorf("fault: injected crash (%s task %d attempt %d on %s)", cfg.phase, a.task, a.attempt, node)
	case crashPanic:
		panic(fmt.Sprintf("fault: injected panic (%s task %d attempt %d on %s)", cfg.phase, a.task, a.attempt, node))
	}
	return cfg.body(a.task, a.attempt, node)
}

// runVirtualPhase executes one phase as a discrete-event simulation and
// returns the virtual clock value when its last task committed.
func (e *Engine) runVirtualPhase(vc *vcluster, cfg *vphaseConfig, res *Result) (time.Duration, error) {
	plan := e.Faults
	now := cfg.startAt
	const never = time.Duration(math.MaxInt64)

	tasks := make([]vtask, cfg.numTasks)
	remaining := cfg.numTasks
	queue := make([]vrequest, 0, cfg.numTasks)
	for t := range tasks {
		tasks[t].avoid = make(map[string]bool)
		queue = append(queue, vrequest{task: t})
	}
	busy := make([]*vattempt, len(vc.slots))
	var completedDurs []time.Duration

	recordStats := func(node string, local, retry bool) {
		st := &res.ClusterStats
		st.TasksRun++
		if local {
			st.LocalityHits++
		}
		if retry {
			st.Retries++
		}
		if st.PerNode == nil {
			st.PerNode = make(map[string]int64)
		}
		st.PerNode[node]++
	}

	attemptCost := func(task, slot int) time.Duration {
		s := vc.slots[slot]
		d := float64(plan.taskBaseCost()) * plan.costJitter(cfg.phase, task)
		if e.Sim != nil {
			d += float64(e.Sim.withDefaults().TaskStartup)
		}
		return time.Duration(d / s.speed * plan.stragglerMult(s.node))
	}

	launch := func(task, slot int, local, retry, spec bool) {
		st := &tasks[task]
		st.issued++
		crash := plan.crash(cfg.phase, task, st.issued)
		cost := attemptCost(task, slot)
		if crash != crashNone {
			cost /= 2 // crashed attempts die mid-run
		}
		busy[slot] = &vattempt{
			task: task, attempt: st.issued, slot: slot,
			start: now, finish: now + cost, crash: crash, spec: spec,
		}
		st.running++
		recordStats(vc.slots[slot].node, local, retry)
	}

	// place finds a slot for a queued task: preferred nodes first, then any
	// free slot in configuration order, with the task's avoid set relaxed
	// when it covers every alive node — mirroring cluster.acquire.
	place := func(task int) (slot int, local, ok bool) {
		st := &tasks[task]
		for _, p := range cfg.preferred(task) {
			if vc.dead[p] || st.avoid[p] {
				continue
			}
			for s := range vc.slots {
				if vc.slots[s].node == p && !vc.slots[s].dead && busy[s] == nil {
					return s, true, true
				}
			}
		}
		usable := 0
		for _, name := range vc.nodes {
			if !vc.dead[name] && !st.avoid[name] {
				usable++
			}
		}
		if usable == 0 {
			for n := range st.avoid {
				delete(st.avoid, n)
			}
		}
		for s := range vc.slots {
			if vc.slots[s].dead || busy[s] != nil || st.avoid[vc.slots[s].node] {
				continue
			}
			return s, false, true
		}
		return -1, false, false
	}

	schedule := func() {
		var kept []vrequest
		for _, req := range queue {
			if tasks[req.task].done {
				continue
			}
			slot, local, ok := place(req.task)
			if !ok {
				kept = append(kept, req)
				continue
			}
			launch(req.task, slot, local, req.retry, false)
		}
		queue = kept
	}

	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		n := len(s)
		return (s[(n-1)/2] + s[n/2]) / 2
	}
	specThreshold := func() (time.Duration, bool) {
		sc := plan.Speculative
		if sc == nil || len(completedDurs) < sc.minCompleted() {
			return 0, false
		}
		return time.Duration(sc.slowdownThreshold() * float64(median(completedDurs))), true
	}
	// specSlotFor returns a free slot on a different alive node than the
	// running attempt's, or -1 (Hadoop never speculates on the same node).
	specSlotFor := func(a *vattempt) int {
		node := vc.slots[a.slot].node
		for s := range vc.slots {
			if vc.slots[s].dead || busy[s] != nil || vc.slots[s].node == node {
				continue
			}
			if tasks[a.task].avoid[vc.slots[s].node] {
				continue
			}
			return s
		}
		return -1
	}
	speculate := func() {
		if len(queue) > 0 { // pending originals outrank duplicates
			return
		}
		threshold, ok := specThreshold()
		if !ok {
			return
		}
		for s := range busy {
			a := busy[s]
			if a == nil || a.spec {
				continue
			}
			st := &tasks[a.task]
			if st.specTried || st.running != 1 || now-a.start < threshold {
				continue
			}
			dup := specSlotFor(a)
			if dup < 0 {
				continue
			}
			st.specTried = true
			launch(a.task, dup, false, false, true)
			res.Counters.Add(CounterSpeculativeLaunched, 1)
		}
	}

	// attemptSpan records one finished (committed, failed or killed)
	// attempt on its slot track, on the virtual clock.
	attemptSpan := func(a *vattempt, end time.Duration, state string) {
		cfg.tr.Record(obs.Span{
			Track: cluster.SlotTrack(vc.slots[a.slot].node, vc.slots[a.slot].idx),
			Name:  cfg.taskName(a.task), Cat: obs.CatTask,
			Start: cfg.vbase + a.start, End: cfg.vbase + end,
			Args: []obs.Arg{
				{Key: "attempt", Value: fmt.Sprint(a.attempt)},
				{Key: "state", Value: state},
			},
		})
	}

	kill := func(slot int, reason string) {
		a := busy[slot]
		res.History.add(TaskRecord{
			Phase: cfg.phase, TaskID: a.task, Attempt: a.attempt,
			Node: vc.slots[slot].node, Slot: vc.slots[slot].idx,
			Start: a.start, Duration: now - a.start,
			Err: reason, Speculative: a.spec, Killed: true,
		})
		attemptSpan(a, now, "killed")
		busy[slot] = nil
		tasks[a.task].running--
	}

	complete := func(slot int) error {
		a := busy[slot]
		node := vc.slots[slot].node
		busy[slot] = nil
		st := &tasks[a.task]
		st.running--
		err := e.runVAttempt(cfg, a, node)
		rec := TaskRecord{
			Phase: cfg.phase, TaskID: a.task, Attempt: a.attempt,
			Node: node, Slot: vc.slots[a.slot].idx,
			Start: a.start, Duration: a.finish - a.start, Speculative: a.spec,
		}
		if err != nil {
			rec.Err = err.Error()
			res.History.add(rec)
			attemptSpan(a, a.finish, "error")
			res.Counters.Add(CounterTaskFailures, 1)
			st.failures++
			st.avoid[node] = true
			if st.running > 0 {
				return nil // the task's other copy may still win
			}
			if st.failures >= cfg.maxAttempts {
				return fmt.Errorf("task %q failed after %d attempts: %w", cfg.taskName(a.task), st.failures, err)
			}
			queue = append(queue, vrequest{task: a.task, retry: true})
			return nil
		}
		res.History.add(rec)
		attemptSpan(a, a.finish, "ok")
		cfg.tr.Metrics().Observe("mr.task."+cfg.phase.String()+".ns", int64(a.finish-a.start))
		st.done = true
		st.node = node
		remaining--
		completedDurs = append(completedDurs, a.finish-a.start)
		if a.spec {
			res.Counters.Add(CounterSpeculativeWon, 1)
		}
		if st.running > 0 {
			// The losing copy of the speculative race is killed the moment
			// the winner commits; its output is never observed.
			reason := "killed: original attempt finished first"
			if a.spec {
				reason = "killed: speculative duplicate finished first"
			}
			for s := range busy {
				if b := busy[s]; b != nil && b.task == a.task {
					kill(s, reason)
				}
			}
		}
		return nil
	}

	processDeath := func() {
		nf := vc.death
		vc.death = nil
		if !vc.kill(nf.Node) {
			return
		}
		res.Counters.Add(CounterNodeFailures, 1)
		for s := range busy {
			if busy[s] == nil || vc.slots[s].node != nf.Node {
				continue
			}
			a := busy[s]
			kill(s, fmt.Sprintf("killed: node %s failed", nf.Node))
			// Killed is not failed: the retry consumes no MaxAttempts budget.
			if st := &tasks[a.task]; !st.done && st.running == 0 {
				queue = append(queue, vrequest{task: a.task, retry: true})
			}
		}
		// Map output lives on the mapper's local disk in Hadoop, so committed
		// map tasks whose output sat on the dead node re-execute elsewhere.
		if cfg.uncommit != nil {
			for t := range tasks {
				st := &tasks[t]
				if st.done && st.node == nf.Node {
					cfg.uncommit(t)
					st.done = false
					st.node = ""
					remaining++
					queue = append(queue, vrequest{task: t, retry: true})
				}
			}
		}
	}

	for {
		schedule()
		speculate()
		if remaining == 0 {
			return now, nil
		}

		// Next completion event (earliest finish; ties break on slot index
		// because the scan takes the first strictly-smaller finish).
		nextFinish, nextSlot := never, -1
		for s := range busy {
			if busy[s] != nil && busy[s].finish < nextFinish {
				nextFinish, nextSlot = busy[s].finish, s
			}
		}

		// Pending node death, clamped forward to the current clock.
		tDeath := never
		if vc.death != nil {
			tDeath = vc.death.At
			if tDeath < now {
				tDeath = now
			}
		}

		// Earliest instant a running attempt becomes speculatable (median
		// known, duplicate slot available): a synthetic event, because the
		// straggler's own completion may be far beyond every other finish and
		// the speculator must fire between events, not just at them.
		tSpec := never
		if threshold, ok := specThreshold(); ok && len(queue) == 0 {
			for s := range busy {
				a := busy[s]
				if a == nil || a.spec || tasks[a.task].specTried || tasks[a.task].running != 1 {
					continue
				}
				if specSlotFor(a) < 0 {
					continue
				}
				if due := a.start + threshold; due > now && due < tSpec {
					tSpec = due
				}
			}
		}

		switch {
		case tDeath <= nextFinish && tDeath <= tSpec && tDeath < never:
			now = tDeath
			processDeath()
		case tSpec < nextFinish:
			now = tSpec // speculate() fires at the top of the loop
		case nextSlot < 0:
			// Tasks remain but nothing runs and nothing can be placed.
			return now, errNoAliveVNodes
		default:
			now = nextFinish
			if err := complete(nextSlot); err != nil {
				return now, err
			}
		}
	}
}

// runFaulty executes a job under the engine's FaultPlan: both phases on the
// shared virtual clock, the checksummed shuffle in between, and — when the
// engine also carries a SimConfig — a SimulatedTime taken from the virtual
// schedule itself, so crashed, killed and duplicate attempts all cost
// makespan exactly as wasted slot-time does on a real cluster.
func (e *Engine) runFaulty(job *Job, rj *resolvedJob) (*Result, error) {
	res := &Result{Counters: NewCounters(), History: &History{}}
	vc := newVCluster(e.cluster, e.Faults)
	numMappers, numReducers := rj.numMappers, rj.numReducers

	// Virtual-clock tracing: every span in this function carries explicit
	// offsets from the job's deterministic event clock, shifted by vbase so
	// consecutive jobs share one timeline. No wall-clock span is ever
	// recorded on this path (see Engine.WallTracer).
	tr := e.jobTracer(job)
	vbase := tr.VirtualBase()
	vspan := func(name, cat string, start, end time.Duration, args ...obs.Arg) {
		tr.Record(obs.Span{
			Track: obs.DriverTrack, Name: name, Cat: cat,
			Start: vbase + start, End: vbase + end, Args: args,
		})
	}

	newCtx := func(id, attempt int, node string) *TaskContext {
		return &TaskContext{
			Job: job.Name, TaskID: id, Attempt: attempt,
			NumMappers: numMappers, NumReducers: numReducers,
			Node: node, Cache: job.Cache, Counters: NewCounters(),
		}
	}

	// ---- Map phase -------------------------------------------------------
	// Outputs and counters are staged per task and merged only after the
	// phase succeeds: a task re-executed after node death, or raced by a
	// speculative duplicate, contributes exactly once.
	mapStart := time.Now()
	mapOut := make([][]bucketArena, numMappers)
	mapCtrs := make([]*Counters, numMappers)
	mapEnd, err := e.runVirtualPhase(vc, &vphaseConfig{
		phase:       PhaseMap,
		numTasks:    numMappers,
		startAt:     0,
		vbase:       vbase,
		tr:          tr,
		maxAttempts: rj.maxAttempts,
		preferred:   func(m int) []string { return rj.splits[m].Hosts() },
		taskName:    func(m int) string { return fmt.Sprintf("%s-map-%d", job.Name, m) },
		body: func(m, attempt int, node string) error {
			ctx := newCtx(m, attempt, node)
			buckets, err := attemptMap(job, rj, rj.splits[m], ctx)
			if err != nil {
				return fmt.Errorf("map task %d on %s: %w", m, node, err)
			}
			mapOut[m] = buckets
			mapCtrs[m] = ctx.Counters
			var spill int64
			for i := range buckets {
				spill += buckets[i].payloadBytes()
			}
			tr.Metrics().Observe("mr.spill.map.bytes", spill)
			return nil
		},
		uncommit: func(m int) { mapOut[m], mapCtrs[m] = nil, nil },
	}, res)
	if err != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	for _, c := range mapCtrs {
		if c != nil {
			res.Counters.Merge(c)
		}
	}
	res.MapTime = time.Since(mapStart)
	vspan("map", obs.CatPhase, 0, mapEnd)

	// ---- Shuffle ---------------------------------------------------------
	reduceStart := time.Now()
	reduceIn, perReducerBytes, err := e.shuffleMapOutput(mapOut, rj, res, nil)
	if err != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	var shuffleDur time.Duration
	if e.Sim != nil {
		shuffleDur = e.Sim.withDefaults().shuffleTime(perReducerBytes)
	}
	vspan("shuffle", obs.CatPhase, mapEnd, mapEnd+shuffleDur)
	if tr != nil {
		// Per-reducer fetches start when the map phase ends and each lasts
		// its own transfer time, so every fetch nests inside the shuffle
		// span (shuffleTime is the slowest fetch).
		sim := SimConfig{}.withDefaults()
		if e.Sim != nil {
			sim = e.Sim.withDefaults()
		}
		for r, b := range perReducerBytes {
			fetchDur := time.Duration(0)
			if e.Sim != nil {
				fetchDur = sim.shuffleTime(perReducerBytes[r : r+1])
			}
			vspan("fetch:r"+fmt.Sprint(r), obs.CatShuffle, mapEnd, mapEnd+fetchDur,
				obs.Arg{Key: "bytes", Value: fmt.Sprint(b)})
			tr.Metrics().Observe("mr.shuffle.reducer.bytes", b)
		}
	}

	// ---- Reduce phase ----------------------------------------------------
	// A node death timed after the map phase ends is applied at reduce
	// start: the shuffle has already fetched every segment by then, so only
	// the node's slots are lost — no map re-execution, matching a tracker
	// lost after its outputs were pulled.
	idxs := make([][]int32, numReducers)
	groups := make([][]span, numReducers)
	for r := range reduceIn {
		idxs[r] = reduceIn[r].sortedIndex()
		groups[r] = reduceIn[r].groupRuns(idxs[r])
	}
	reduceOut := make([][]Record, numReducers)
	reduceCtrs := make([]*Counters, numReducers)
	reduceEnd, err := e.runVirtualPhase(vc, &vphaseConfig{
		phase:       PhaseReduce,
		numTasks:    numReducers,
		startAt:     mapEnd + shuffleDur,
		vbase:       vbase,
		tr:          tr,
		maxAttempts: rj.maxAttempts,
		preferred:   func(int) []string { return nil },
		taskName:    func(r int) string { return fmt.Sprintf("%s-reduce-%d", job.Name, r) },
		body: func(r, attempt int, node string) error {
			ctx := newCtx(r, attempt, node)
			out, err := attemptReduce(job, &arenaGroups{in: &reduceIn[r], idx: idxs[r], groups: groups[r]}, ctx)
			if err != nil {
				return fmt.Errorf("reduce task %d on %s: %w", r, node, err)
			}
			reduceOut[r] = out.records()
			reduceCtrs[r] = ctx.Counters
			return nil
		},
	}, res)
	if err != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	for _, c := range reduceCtrs {
		if c != nil {
			res.Counters.Merge(c)
		}
	}
	res.ReduceTime = time.Since(reduceStart)
	vspan("reduce", obs.CatPhase, mapEnd+shuffleDur, reduceEnd)
	vspan("job:"+job.Name, obs.CatJob, 0, reduceEnd,
		obs.Arg{Key: "mappers", Value: fmt.Sprint(numMappers)},
		obs.Arg{Key: "reducers", Value: fmt.Sprint(numReducers)})
	tr.AdvanceVirtualBase(vbase + reduceEnd)

	if e.Sim != nil {
		res.SimulatedTime = e.Sim.simulateVirtual(reduceEnd)
	}
	for r := 0; r < numReducers; r++ {
		res.Output = append(res.Output, reduceOut[r]...)
	}
	return res, nil
}
