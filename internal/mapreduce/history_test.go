package mapreduce_test

import (
	"errors"
	"strings"
	"testing"

	"mrskyline/internal/mapreduce"
)

func TestHistoryRecordsAllAttempts(t *testing.T) {
	e := newEngine(t, 3, 1)
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if phase == mapreduce.PhaseMap && taskID == 0 && attempt == 1 {
			return errors.New("flaky map")
		}
		return nil
	}
	res, err := e.Run(wordCountJob([]string{"a b", "c d"}, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	recs := res.History.Records()
	// 2 map tasks (one retried) + 2 reduce tasks = 5 attempts.
	if len(recs) != 5 {
		t.Fatalf("history has %d records, want 5: %+v", len(recs), recs)
	}
	failed := res.History.Failed()
	if len(failed) != 1 || failed[0].Phase != mapreduce.PhaseMap || failed[0].TaskID != 0 || failed[0].Attempt != 1 {
		t.Fatalf("failed = %+v", failed)
	}
	if !strings.Contains(failed[0].Err, "flaky map") {
		t.Errorf("failure message = %q", failed[0].Err)
	}
	// Records are sorted: maps before reduces, attempts ascending.
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.Phase > b.Phase {
			t.Fatal("records not sorted by phase")
		}
		if a.Phase == b.Phase && a.TaskID == b.TaskID && a.Attempt >= b.Attempt {
			t.Fatal("attempts not ascending")
		}
	}
	// Successful records carry their node and a duration.
	for _, r := range recs {
		if r.Err == "" && r.Node == "" {
			t.Errorf("successful record missing node: %+v", r)
		}
	}
}

func TestHistorySummary(t *testing.T) {
	e := newEngine(t, 2, 2)
	res, err := e.Run(wordCountJob([]string{"x y z"}, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.History.Summary()
	if !strings.Contains(sum, "map: 1 attempts, 0 failed") {
		t.Errorf("summary = %q", sum)
	}
	if !strings.Contains(sum, "reduce: 1 attempts, 0 failed") {
		t.Errorf("summary = %q", sum)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *mapreduce.History
	if h.Records() != nil || h.Failed() != nil {
		t.Error("nil history not empty")
	}
}
