package mapreduce_test

import (
	"errors"
	"strings"
	"testing"

	"mrskyline/internal/cluster"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

func TestHistoryRecordsAllAttempts(t *testing.T) {
	e := newEngine(t, 3, 1)
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if phase == mapreduce.PhaseMap && taskID == 0 && attempt == 1 {
			return errors.New("flaky map")
		}
		return nil
	}
	res, err := e.Run(wordCountJob([]string{"a b", "c d"}, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	recs := res.History.Records()
	// 2 map tasks (one retried) + 2 reduce tasks = 5 attempts.
	if len(recs) != 5 {
		t.Fatalf("history has %d records, want 5: %+v", len(recs), recs)
	}
	failed := res.History.Failed()
	if len(failed) != 1 || failed[0].Phase != mapreduce.PhaseMap || failed[0].TaskID != 0 || failed[0].Attempt != 1 {
		t.Fatalf("failed = %+v", failed)
	}
	if !strings.Contains(failed[0].Err, "flaky map") {
		t.Errorf("failure message = %q", failed[0].Err)
	}
	// Records are sorted: maps before reduces, attempts ascending.
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.Phase > b.Phase {
			t.Fatal("records not sorted by phase")
		}
		if a.Phase == b.Phase && a.TaskID == b.TaskID && a.Attempt >= b.Attempt {
			t.Fatal("attempts not ascending")
		}
	}
	// Successful records carry their node and a duration.
	for _, r := range recs {
		if r.Err == "" && r.Node == "" {
			t.Errorf("successful record missing node: %+v", r)
		}
	}
}

func TestHistorySummary(t *testing.T) {
	e := newEngine(t, 2, 2)
	res, err := e.Run(wordCountJob([]string{"x y z"}, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.History.Summary()
	if !strings.Contains(sum, "map: 1 attempts, 0 failed") {
		t.Errorf("summary = %q", sum)
	}
	if !strings.Contains(sum, "reduce: 1 attempts, 0 failed") {
		t.Errorf("summary = %q", sum)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *mapreduce.History
	if h.Records() != nil || h.Failed() != nil {
		t.Error("nil history not empty")
	}
}

// faultyTimelineRun executes one word-count job under a seeded FaultPlan
// with stragglers and speculation, returning the history and the tracer
// holding the job's virtual-clock spans.
func faultyTimelineRun(t *testing.T, seed int64) (*mapreduce.Result, *obs.Tracer) {
	t.Helper()
	e := newEngine(t, 4, 2)
	e.Faults = &mapreduce.FaultPlan{
		Seed:          seed,
		CrashRate:     0.15,
		StragglerRate: 0.5,
		Speculative:   &mapreduce.SpeculativeConfig{},
	}
	tr := obs.New()
	e.SetTrace(tr)
	job := wordCountJob([]string{"a b c d", "b c d e", "c d e f", "d e f g"}, 4, 2)
	job.MaxAttempts = 4
	res, err := e.Run(job)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res, tr
}

// TestHistoryTimelineSlotsNeverOverlap checks the schedule invariant: two
// attempts placed on the same (node, slot) must occupy disjoint time
// windows, across many fault schedules.
func TestHistoryTimelineSlotsNeverOverlap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		res, _ := faultyTimelineRun(t, seed)
		// Records() sorts by phase/task/attempt, so re-bucket by slot and
		// verify windows pairwise (attempt counts are tiny).
		type slotKey struct {
			node string
			slot int
		}
		bySlot := make(map[slotKey][]mapreduce.TaskRecord)
		for _, r := range res.History.Records() {
			if r.Node == "" {
				continue // attempt never placed (e.g. injector veto)
			}
			k := slotKey{r.Node, r.Slot}
			for _, prev := range bySlot[k] {
				pEnd, rEnd := prev.Start+prev.Duration, r.Start+r.Duration
				if r.Start < pEnd && prev.Start < rEnd {
					t.Fatalf("seed %d: %s/s%d: overlapping attempts [%v,%v) and [%v,%v)",
						seed, r.Node, r.Slot, prev.Start, pEnd, r.Start, rEnd)
				}
			}
			bySlot[k] = append(bySlot[k], r)
		}
	}
}

// TestHistoryTimelineAttemptsNestInJobSpan checks the trace invariant:
// every virtual task-attempt span lies inside the job span the tracer
// recorded on the driver track.
func TestHistoryTimelineAttemptsNestInJobSpan(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		_, tr := faultyTimelineRun(t, seed)
		var job *obs.Span
		spans := tr.Spans()
		for i := range spans {
			if spans[i].Cat == obs.CatJob {
				if job != nil {
					t.Fatalf("seed %d: more than one job span", seed)
				}
				job = &spans[i]
			}
		}
		if job == nil {
			t.Fatalf("seed %d: no job span recorded", seed)
		}
		tasks := 0
		for _, s := range spans {
			if s.Cat != obs.CatTask {
				continue
			}
			tasks++
			if s.Start < job.Start || s.End > job.End {
				t.Fatalf("seed %d: task span %s [%v,%v) outside job span [%v,%v)",
					seed, s.Name, s.Start, s.End, job.Start, job.End)
			}
		}
		if tasks < 6 {
			t.Fatalf("seed %d: only %d task spans, want ≥ 6 (4 mappers + 2 reducers)", seed, tasks)
		}
	}
}

// TestHistoryTimelineSpeculativeLosersKilled forces speculative races on
// a 5x-slow node and checks the loser invariants: every race's losing
// attempt appears in the history as killed — Killed set, an explanatory
// Err — and killed attempts never count as failures.
func TestHistoryTimelineSpeculativeLosersKilled(t *testing.T) {
	c, err := cluster.New([]cluster.Node{
		{Name: "fast0", Slots: 2, Speed: 1},
		{Name: "fast1", Slots: 2, Speed: 1},
		{Name: "slow", Slots: 2, Speed: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c)
	eng.Faults = &mapreduce.FaultPlan{
		Seed:        3,
		Speculative: &mapreduce.SpeculativeConfig{},
	}
	input := []string{"a b", "c d", "e f", "g h", "i j", "k l", "m n", "o p", "q r", "s t"}
	res, err := eng.Run(wordCountJob(input, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if won := res.Counters.Get(mapreduce.CounterSpeculativeWon); won == 0 {
		t.Fatal("no speculative win; the 5x-slow node should lose at least one race")
	}
	killedOriginals := 0
	for _, r := range res.History.Records() {
		if !r.Killed {
			continue
		}
		if r.Err == "" {
			t.Fatalf("killed attempt %+v has no Err", r)
		}
		if !r.Speculative && strings.Contains(r.Err, "speculative") {
			killedOriginals++
		}
	}
	if killedOriginals == 0 {
		t.Fatalf("speculative wins recorded but no killed original in history: %+v",
			res.History.Records())
	}
	for _, r := range res.History.Failed() {
		if r.Killed {
			t.Fatalf("killed attempt counted as failure: %+v", r)
		}
	}
}
