package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TaskRecord describes one task attempt, successful or not — the
// per-attempt bookkeeping a JobTracker would expose in its history UI.
type TaskRecord struct {
	// Phase is the attempt's phase (map or reduce).
	Phase Phase
	// TaskID is the task index within the phase.
	TaskID int
	// Attempt numbers the attempt, starting at 1.
	Attempt int
	// Node is the simulated node the attempt ran on.
	Node string
	// Slot is the 0-based slot index on Node the attempt occupied.
	Slot int
	// Start is the attempt's start offset — from job start on the
	// wall-clock path, or on the virtual clock under a FaultPlan. Together
	// with Duration it places the attempt on the job timeline.
	Start time.Duration
	// Duration is the attempt's execution time (excluding queueing). Under
	// a FaultPlan this is the attempt's virtual duration on the simulated
	// clock, so it reproduces exactly across runs.
	Duration time.Duration
	// Err holds the failure message for failed attempts, "" on success.
	Err string
	// Speculative marks duplicate attempts launched by speculative
	// execution (the backup copy, not the original).
	Speculative bool
	// Killed marks attempts terminated by the scheduler rather than failed:
	// the losing copy of a speculative race, or an attempt running on a
	// node when it died. Killed attempts carry an Err describing the kill
	// but do not count as task failures.
	Killed bool
}

// History collects the task attempts of one job. It is safe for
// concurrent use during the job and immutable afterwards.
type History struct {
	mu      sync.Mutex
	records []TaskRecord
}

func (h *History) add(r TaskRecord) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.records = append(h.records, r)
	h.mu.Unlock()
}

// Append records one attempt. Execution backends outside this package
// (internal/rpcexec's master) report remote task attempts through it; the
// in-process engine uses the same path internally.
func (h *History) Append(r TaskRecord) { h.add(r) }

// Records returns all attempts ordered by phase, task id, then attempt.
func (h *History) Records() []TaskRecord {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := make([]TaskRecord, len(h.records))
	copy(out, h.records)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		if out[i].TaskID != out[j].TaskID {
			return out[i].TaskID < out[j].TaskID
		}
		return out[i].Attempt < out[j].Attempt
	})
	return out
}

// Failed returns the attempts that ended in an error (killed attempts are
// not failures).
func (h *History) Failed() []TaskRecord {
	var out []TaskRecord
	for _, r := range h.Records() {
		if r.Err != "" && !r.Killed {
			out = append(out, r)
		}
	}
	return out
}

// Summary renders a compact per-phase digest: attempt counts, failures,
// and the slowest successful task of each phase.
func (h *History) Summary() string {
	var b strings.Builder
	for _, phase := range []Phase{PhaseMap, PhaseReduce} {
		attempts, failures := 0, 0
		var slowest TaskRecord
		for _, r := range h.Records() {
			if r.Phase != phase {
				continue
			}
			attempts++
			if r.Killed {
				continue
			}
			if r.Err != "" {
				failures++
				continue
			}
			if r.Duration > slowest.Duration {
				slowest = r
			}
		}
		if attempts == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: %d attempts, %d failed; slowest task %d on %s (%v)\n",
			phase, attempts, failures, slowest.TaskID, slowest.Node, slowest.Duration)
	}
	return b.String()
}
