package mapreduce_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// TestConcurrentJobsMatchSerial runs more jobs concurrently than the
// shared cluster has slot tracks and checks that (a) every job's output
// matches its serial run on a private engine, and (b) the slot-occupancy
// trace shows jobs interleaving on the shared slots — by pigeonhole, with
// 6 jobs on 4 slot tracks some track must host tasks of at least two
// jobs, so an engine that secretly serialized per-slot would still pass;
// the real assertion is that the concurrent outputs stay correct while
// that sharing happens.
func TestConcurrentJobsMatchSerial(t *testing.T) {
	const jobs = 6
	shared := newEngine(t, 2, 2) // 4 slot tracks
	tr := obs.New()
	shared.SetTrace(tr)

	inputs := make([][]string, jobs)
	want := make([]map[string]int, jobs)
	for j := range inputs {
		inputs[j] = []string{
			fmt.Sprintf("alpha beta j%d", j),
			fmt.Sprintf("beta gamma j%d j%d", j, j),
			"alpha alpha delta",
		}
		ref, err := newEngine(t, 2, 2).Run(namedWordCount(fmt.Sprintf("serial%d", j), inputs[j]))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = countsFromResult(ref)
	}

	var wg sync.WaitGroup
	got := make([]map[string]int, jobs)
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			res, err := shared.Run(namedWordCount(fmt.Sprintf("conc%d", j), inputs[j]))
			if err != nil {
				errs[j] = err
				return
			}
			got[j] = countsFromResult(res)
			if len(res.History.Records()) == 0 {
				errs[j] = errors.New("empty per-job history")
			}
		}(j)
	}
	wg.Wait()

	for j := 0; j < jobs; j++ {
		if errs[j] != nil {
			t.Fatalf("job %d: %v", j, errs[j])
		}
		if !reflect.DeepEqual(got[j], want[j]) {
			t.Errorf("job %d: concurrent counts = %v, want %v", j, got[j], want[j])
		}
	}

	// Interleaving: some slot track hosted tasks of ≥ 2 distinct jobs.
	jobsPerTrack := make(map[string]map[string]bool)
	for _, sp := range tr.Spans() {
		if sp.Cat != obs.CatSlot {
			continue
		}
		name, _, ok := strings.Cut(sp.Name, "-map-")
		if !ok {
			name, _, ok = strings.Cut(sp.Name, "-reduce-")
		}
		if !ok || !strings.HasPrefix(name, "conc") {
			continue
		}
		if jobsPerTrack[sp.Track] == nil {
			jobsPerTrack[sp.Track] = make(map[string]bool)
		}
		jobsPerTrack[sp.Track][name] = true
	}
	maxSharing := 0
	for _, names := range jobsPerTrack {
		if len(names) > maxSharing {
			maxSharing = len(names)
		}
	}
	if maxSharing < 2 {
		t.Errorf("no slot track hosted more than one job (tracks: %v) — jobs did not share the cluster", jobsPerTrack)
	}
}

// namedWordCount clones the canonical word-count job under a unique name
// so trace spans and errors are attributable to one submission.
func namedWordCount(name string, input []string) *mapreduce.Job {
	job := wordCountJob(input, 4, 2)
	job.Name = name
	return job
}

// blockingJob returns a single-task job whose map phase blocks until
// release is closed, pinning the job in the in-flight state.
func blockingJob(name string, release <-chan struct{}) *mapreduce.Job {
	return &mapreduce.Job{
		Name:        name,
		Input:       mapreduce.MemoryInput{Records: []mapreduce.Record{{Value: []byte("x")}}},
		NumMappers:  1,
		NumReducers: 1,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					<-release
					emit(rec.Value, rec.Value)
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(_ *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					emit(key, values[0])
					return nil
				},
			}
		},
	}
}

// waitFor polls the admission stats until cond holds or the deadline
// passes.
func waitFor(t *testing.T, e *mapreduce.Engine, cond func(inFlight, queued int) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(e.AdmissionStats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	inFlight, queued := e.AdmissionStats()
	t.Fatalf("admission state never reached: inFlight=%d queued=%d", inFlight, queued)
}

// TestAdmissionFIFO holds one job in flight with maxInFlight 1, queues
// two more, and checks they execute in submission order.
func TestAdmissionFIFO(t *testing.T) {
	e := newEngine(t, 1, 1)
	tr := obs.New()
	e.SetTrace(tr)
	e.SetAdmission(1, 8)

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Run(blockingJob("first", release)); err != nil {
			t.Errorf("first: %v", err)
		}
	}()
	waitFor(t, e, func(inFlight, queued int) bool { return inFlight == 1 })

	var mu sync.Mutex
	var order []string
	runOrdered := func(name string) {
		defer wg.Done()
		job := blockingJob(name, closedChan())
		job.NewMapper = func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					mu.Lock()
					order = append(order, name)
					mu.Unlock()
					emit(rec.Value, rec.Value)
					return nil
				},
			}
		}
		if _, err := e.Run(job); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	wg.Add(1)
	go runOrdered("second")
	waitFor(t, e, func(inFlight, queued int) bool { return queued == 1 })
	wg.Add(1)
	go runOrdered("third")
	waitFor(t, e, func(inFlight, queued int) bool { return queued == 2 })

	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(order, []string{"second", "third"}) {
		t.Errorf("execution order = %v, want FIFO [second third]", order)
	}
	if got := counterValue(tr, "mr.queue.admitted"); got != 3 {
		t.Errorf("mr.queue.admitted = %d, want 3", got)
	}
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// counterValue reads one counter out of the tracer's metrics snapshot.
func counterValue(tr *obs.Tracer, name string) int64 {
	for _, c := range tr.Metrics().Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestAdmissionQueueFull checks that with a zero-length queue a second
// submission is rejected with ErrQueueFull while the first is in flight.
func TestAdmissionQueueFull(t *testing.T) {
	e := newEngine(t, 1, 1)
	tr := obs.New()
	e.SetTrace(tr)
	e.SetAdmission(1, 0)

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Run(blockingJob("holder", release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	waitFor(t, e, func(inFlight, queued int) bool { return inFlight == 1 })

	_, err := e.Run(blockingJob("overflow", closedChan()))
	if !errors.Is(err, mapreduce.ErrQueueFull) {
		t.Errorf("overflow error = %v, want ErrQueueFull", err)
	}
	close(release)
	wg.Wait()

	if got := counterValue(tr, "mr.queue.rejected"); got != 1 {
		t.Errorf("mr.queue.rejected = %d, want 1", got)
	}
}

// TestAdmissionDeadlineWhileQueued checks that a queued job whose context
// deadline expires leaves the queue with context.DeadlineExceeded and is
// counted as canceled, and that the queue then drains normally.
func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	e := newEngine(t, 1, 1)
	tr := obs.New()
	e.SetTrace(tr)
	e.SetAdmission(1, 8)

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Run(blockingJob("holder", release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	waitFor(t, e, func(inFlight, queued int) bool { return inFlight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.RunContext(ctx, blockingJob("expired", closedChan()))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired error = %v, want DeadlineExceeded", err)
	}
	inFlight, queued := e.AdmissionStats()
	if inFlight != 1 || queued != 0 {
		t.Errorf("after expiry: inFlight=%d queued=%d, want 1/0", inFlight, queued)
	}
	close(release)
	wg.Wait()

	if got := counterValue(tr, "mr.queue.canceled"); got != 1 {
		t.Errorf("mr.queue.canceled = %d, want 1", got)
	}
	// The controller still admits after the cancellation.
	if _, err := e.Run(blockingJob("after", closedChan())); err != nil {
		t.Errorf("post-cancel job: %v", err)
	}
}

// TestPerJobTracer checks that a job carrying its own tracer keeps its
// driver spans off the engine tracer (and vice versa), so concurrent
// submissions can collect isolated traces.
func TestPerJobTracer(t *testing.T) {
	e := newEngine(t, 2, 2)
	engineTr := obs.New()
	e.SetTrace(engineTr)

	jobTr := obs.New()
	job := namedWordCount("traced", []string{"a b", "b c"})
	job.Trace = jobTr
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	plain := namedWordCount("plain", []string{"x y"})
	if _, err := e.Run(plain); err != nil {
		t.Fatal(err)
	}

	if n := spanCount(jobTr, "job:traced"); n != 1 {
		t.Errorf("job tracer has %d 'job:traced' spans, want 1", n)
	}
	if n := spanCount(engineTr, "job:traced"); n != 0 {
		t.Errorf("engine tracer has %d 'job:traced' spans, want 0", n)
	}
	if n := spanCount(engineTr, "job:plain"); n != 1 {
		t.Errorf("engine tracer has %d 'job:plain' spans, want 1", n)
	}
	// Slot occupancy stays with the cluster's (engine) tracer either way.
	slotSpans := 0
	for _, sp := range engineTr.Spans() {
		if sp.Cat == obs.CatSlot && strings.HasPrefix(sp.Name, "traced-") {
			slotSpans++
		}
	}
	if slotSpans == 0 {
		t.Error("engine tracer lost the traced job's slot spans")
	}
}

func spanCount(tr *obs.Tracer, name string) int {
	n := 0
	for _, sp := range tr.Spans() {
		if sp.Name == name {
			n++
		}
	}
	return n
}
