// Package mapreduce is an in-process MapReduce engine: the execution
// substrate the paper's algorithms run on in this repository, standing in
// for Hadoop 1.1.0 on the authors' 13-node cluster.
//
// The engine preserves the structural properties the paper's arguments
// depend on:
//
//   - Input files are split per mapper (via internal/dfs blocks or
//     in-memory chunking) and map tasks are scheduled with data locality on
//     a simulated multi-node cluster (internal/cluster).
//   - Mappers and reducers are stateless tasks communicating only through
//     the key-value shuffle; all map output is genuinely serialized, so
//     communication volume is measured rather than assumed.
//   - A distributed cache ships small read-only artifacts (the global
//     bitstring) to every task, as the paper assumes ("this paper assumes
//     that the Distributed Cache, or something similar, is available").
//   - Tasks that fail are retried on other nodes, mirroring Hadoop's
//     fault tolerance; counters from failed attempts are discarded.
//   - Jobs can be chained, later phases consuming earlier results.
package mapreduce

import (
	"fmt"
	"hash/fnv"

	"mrskyline/internal/obs"
)

// Record is one key-value pair. A nil key is legal (map inputs often have
// no meaningful key).
type Record struct {
	Key   []byte
	Value []byte
}

// Emitter receives key-value pairs produced by Map and Reduce calls. The
// key and value bytes are copied into the engine's shuffle arenas before
// Emitter returns, so callers may reuse their backing arrays — emit sites
// on hot paths encode into a per-task scratch buffer via
// tuple.AppendEncode and hand the same buffer to every emit.
type Emitter func(key, value []byte)

// Cache is the distributed cache: small read-only blobs replicated to every
// task of a job before it starts.
type Cache map[string][]byte

// Get returns the named cache entry.
func (c Cache) Get(name string) ([]byte, bool) {
	v, ok := c[name]
	return v, ok
}

// MustGet returns the named cache entry or panics; tasks use it for
// entries the job setup is contractually required to provide.
func (c Cache) MustGet(name string) []byte {
	v, ok := c[name]
	if !ok {
		panic(fmt.Sprintf("mapreduce: cache entry %q missing", name))
	}
	return v
}

// TaskContext carries per-task state into Map and Reduce functions.
type TaskContext struct {
	// Job is the job name.
	Job string
	// TaskID is the mapper or reducer index within its phase.
	TaskID int
	// Attempt is 1 for the first execution and increases on retry.
	Attempt int
	// NumMappers and NumReducers describe the job's task layout.
	NumMappers  int
	NumReducers int
	// Node is the simulated cluster node executing the task.
	Node string
	// Cache is the job's distributed cache.
	Cache Cache
	// Counters is the task-local counter set; it is merged into the job's
	// counters if and only if the task attempt succeeds.
	Counters *Counters
	// Trace is the engine's tracer and Track the slot track this attempt
	// occupies (cluster.SlotTrack). Task code records algorithm-phase
	// spans with ctx.Trace.Start(ctx.Track, ...). Both are zero on the
	// virtual-clock (FaultPlan) path — wall-clock spans from task bodies
	// would pollute a virtual trace — and Trace is nil whenever tracing is
	// off, which every obs method tolerates.
	Trace *obs.Tracer
	Track string
}

// Mapper processes one input split. One Mapper instance is created per task
// attempt, so implementations may keep per-split state in struct fields
// without synchronization.
type Mapper interface {
	// Map is invoked once per input record.
	Map(ctx *TaskContext, rec Record, emit Emitter) error
	// Flush is invoked once after the split is exhausted. Algorithms that
	// aggregate per split (every algorithm in this repository) emit their
	// results here.
	Flush(ctx *TaskContext, emit Emitter) error
}

// Reducer processes the groups assigned to one reduce task. One Reducer
// instance is created per task attempt.
type Reducer interface {
	// Reduce is invoked once per distinct key, with all values for that
	// key in deterministic order (mapper index, then emission order).
	Reduce(ctx *TaskContext, key []byte, values [][]byte, emit Emitter) error
	// Flush is invoked once after the last key.
	Flush(ctx *TaskContext, emit Emitter) error
}

// MapperFuncs adapts plain functions to the Mapper interface; FlushFn may
// be nil.
type MapperFuncs struct {
	MapFn   func(ctx *TaskContext, rec Record, emit Emitter) error
	FlushFn func(ctx *TaskContext, emit Emitter) error
}

// Map implements Mapper.
func (m MapperFuncs) Map(ctx *TaskContext, rec Record, emit Emitter) error {
	if m.MapFn == nil {
		return nil
	}
	return m.MapFn(ctx, rec, emit)
}

// Flush implements Mapper.
func (m MapperFuncs) Flush(ctx *TaskContext, emit Emitter) error {
	if m.FlushFn == nil {
		return nil
	}
	return m.FlushFn(ctx, emit)
}

// ReducerFuncs adapts plain functions to the Reducer interface; FlushFn may
// be nil.
type ReducerFuncs struct {
	ReduceFn func(ctx *TaskContext, key []byte, values [][]byte, emit Emitter) error
	FlushFn  func(ctx *TaskContext, emit Emitter) error
}

// Reduce implements Reducer.
func (r ReducerFuncs) Reduce(ctx *TaskContext, key []byte, values [][]byte, emit Emitter) error {
	if r.ReduceFn == nil {
		return nil
	}
	return r.ReduceFn(ctx, key, values, emit)
}

// Flush implements Reducer.
func (r ReducerFuncs) Flush(ctx *TaskContext, emit Emitter) error {
	if r.FlushFn == nil {
		return nil
	}
	return r.FlushFn(ctx, emit)
}

// Combiner performs map-side pre-aggregation: after a map task finishes,
// each of its per-reducer output groups is folded through Combine before
// crossing the shuffle, cutting communication volume the way Hadoop's
// combiners do. Combine receives all map-local values of one key and
// returns the values that should be shipped (commonly a single one).
type Combiner interface {
	Combine(key []byte, values [][]byte) ([][]byte, error)
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(key []byte, values [][]byte) ([][]byte, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(key []byte, values [][]byte) ([][]byte, error) {
	return f(key, values)
}

// PartitionFunc routes a map-output key to one of r reducers.
type PartitionFunc func(key []byte, r int) int

// HashPartition is the default partitioner: FNV-1a modulo reducer count.
func HashPartition(key []byte, r int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(r))
}
