package mapreduce_test

import (
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"mrskyline/internal/mapreduce"
)

// sumCombiner folds word-count "1" values into partial sums map-side.
func sumCombiner() mapreduce.Combiner {
	return mapreduce.CombinerFunc(func(key []byte, values [][]byte) ([][]byte, error) {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	})
}

// combinerWordCount is word count where the reducer sums partial counts,
// so it works with and without the combiner.
func combinerWordCount(input []string, mappers, reducers int) *mapreduce.Job {
	job := wordCountJob(input, mappers, reducers)
	job.NewReducer = func() mapreduce.Reducer {
		return mapreduce.ReducerFuncs{
			ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
				total := 0
				for _, v := range values {
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					total += n
				}
				emit(key, []byte(strconv.Itoa(total)))
				return nil
			},
		}
	}
	return job
}

func TestCombinerCutsShuffleVolume(t *testing.T) {
	e := newEngine(t, 3, 2)
	input := []string{
		strings.Repeat("spark ", 50) + "flink",
		strings.Repeat("spark ", 50) + "beam",
	}

	plain, err := e.Run(combinerWordCount(input, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	withC := combinerWordCount(input, 2, 2)
	withC.NewCombiner = sumCombiner
	combined, err := e.Run(withC)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(countsFromResult(plain), countsFromResult(combined)) {
		t.Fatalf("combiner changed results: %v vs %v",
			countsFromResult(plain), countsFromResult(combined))
	}
	want := map[string]int{"spark": 100, "flink": 1, "beam": 1}
	if !reflect.DeepEqual(countsFromResult(combined), want) {
		t.Fatalf("counts = %v, want %v", countsFromResult(combined), want)
	}
	ps := plain.Counters.Get(mapreduce.CounterShuffleBytes)
	cs := combined.Counters.Get(mapreduce.CounterShuffleBytes)
	if cs >= ps {
		t.Errorf("combiner did not cut shuffle volume: %d vs %d", cs, ps)
	}
	// 2 mappers × ≤3 distinct words each = at most 6 shuffled records.
	if got := combined.Counters.Get(mapreduce.CounterReduceInputRecords); got > 6 {
		t.Errorf("reduce input records = %d after combining", got)
	}
}

func TestCombinerErrorFailsTask(t *testing.T) {
	e := newEngine(t, 2, 1)
	job := combinerWordCount([]string{"a a"}, 1, 1)
	job.NewCombiner = func() mapreduce.Combiner {
		return mapreduce.CombinerFunc(func([]byte, [][]byte) ([][]byte, error) {
			return nil, errors.New("combiner exploded")
		})
	}
	job.MaxAttempts = 2
	if _, err := e.Run(job); err == nil || !strings.Contains(err.Error(), "combiner exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestCombinerMayExpandValues(t *testing.T) {
	// A combiner returning multiple values per key must ship all of them.
	e := newEngine(t, 2, 1)
	job := combinerWordCount([]string{"x x x"}, 1, 1)
	job.NewCombiner = func() mapreduce.Combiner {
		return mapreduce.CombinerFunc(func(key []byte, values [][]byte) ([][]byte, error) {
			// Pass values through untouched (identity combiner).
			return values, nil
		})
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := countsFromResult(res)["x"]; got != 3 {
		t.Errorf("identity combiner count = %d, want 3", got)
	}
}
