package mapreduce_test

// Chaos harness for the deterministic fault-injection subsystem. The core
// contract under test: for every seeded FaultPlan, a job either fails
// cleanly (every attempt on record, MaxAttempts respected) or produces
// output and counters byte-identical to the fault-free run — recovery never
// duplicates, drops or reorders work. And the same seed reproduces the same
// execution bit-for-bit: History, counters, per-node placements.
//
// The CHAOS_SEED environment variable (CI runs a small matrix of values)
// offsets every seed in the sweep so different CI legs explore different
// fault schedules without any test code changes.

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/tuple"
)

// chaosSeedOffset shifts every plan seed in the sweep tests; CI sets
// CHAOS_SEED per matrix leg.
func chaosSeedOffset() int64 {
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0
	}
	return n * 1_000_003
}

// chaosPlan builds the sweep's fault mix for one seed: crashes (both
// flavors), stragglers, shuffle corruption, speculation, and — every fifth
// seed — a whole-node death mid-map-phase.
func chaosPlan(seed int64) *mapreduce.FaultPlan {
	plan := &mapreduce.FaultPlan{
		Seed:          seed,
		CrashRate:     0.15,
		StragglerRate: 0.2,
		CorruptRate:   0.1,
		Speculative:   &mapreduce.SpeculativeConfig{},
	}
	if seed%5 == 0 {
		plan.NodeFailure = &mapreduce.NodeFailure{Node: "node1", At: 150 * time.Millisecond}
	}
	return plan
}

func newFaultyCoreConfig(t *testing.T, plan *mapreduce.FaultPlan) core.Config {
	t.Helper()
	c, err := cluster.Uniform(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c)
	eng.Faults = plan
	return core.Config{Engine: eng, PPD: 4}
}

func sameSkyline(a, b tuple.List) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestChaosSkylineAlgorithms is the property sweep: MR-GPSRS and MR-GPMRS
// end-to-end under 50 seeded fault plans each. Every run must either fail
// cleanly after exhausting MaxAttempts or produce a skyline and reduce
// output count identical to the fault-free run.
func TestChaosSkylineAlgorithms(t *testing.T) {
	data := datagen.Generate(datagen.Independent, 400, 3, 42)

	type algo struct {
		name string
		run  func(cfg core.Config) (tuple.List, *core.Stats, error)
	}
	algos := []algo{
		{"MR-GPSRS", func(cfg core.Config) (tuple.List, *core.Stats, error) { return core.GPSRS(cfg, data) }},
		{"MR-GPMRS", func(cfg core.Config) (tuple.List, *core.Stats, error) { return core.GPMRS(cfg, data) }},
	}
	offset := chaosSeedOffset()

	for _, a := range algos {
		a := a
		t.Run(a.name, func(t *testing.T) {
			wantSky, wantStats, err := a.run(newFaultyCoreConfig(t, nil))
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			failed, succeeded := 0, 0
			for seed := int64(1); seed <= 50; seed++ {
				sky, stats, err := a.run(newFaultyCoreConfig(t, chaosPlan(offset+seed)))
				if err != nil {
					// A clean failure must come from MaxAttempts exhaustion.
					if !strings.Contains(err.Error(), "failed after") {
						t.Fatalf("seed %d: unexpected error shape: %v", seed, err)
					}
					failed++
					continue
				}
				succeeded++
				if !sameSkyline(sky, wantSky) {
					t.Errorf("seed %d: skyline differs from fault-free run (%d vs %d tuples)", seed, len(sky), len(wantSky))
				}
				if stats.ReduceOutputRecords != wantStats.ReduceOutputRecords {
					t.Errorf("seed %d: reduce output records = %d, want %d",
						seed, stats.ReduceOutputRecords, wantStats.ReduceOutputRecords)
				}
			}
			t.Logf("%s: %d succeeded, %d failed cleanly", a.name, succeeded, failed)
			if succeeded == 0 {
				t.Error("every seed failed; sweep exercised nothing")
			}
		})
	}
}

// chaosWordCount runs the word-count job under the given plan with
// simulated time on a heterogeneous cluster, returning the full result.
func chaosWordCount(t *testing.T, plan *mapreduce.FaultPlan) (*mapreduce.Result, error) {
	t.Helper()
	c, err := cluster.New([]cluster.Node{
		{Name: "alpha", Slots: 2, Speed: 1},
		{Name: "beta", Slots: 2, Speed: 1},
		{Name: "gamma", Slots: 2, Speed: 0.76},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c)
	eng.Faults = plan
	eng.Sim = &mapreduce.SimConfig{}
	input := []string{
		"the quick brown fox jumps over the lazy dog",
		"pack my box with five dozen liquor jugs",
		"how vexingly quick daft zebras jump",
		"sphinx of black quartz judge my vow",
		"the five boxing wizards jump quickly",
		"jackdaws love my big sphinx of quartz",
	}
	return eng.Run(wordCountJob(input, 8, 3))
}

// TestChaosDeterminism: identical seeds reproduce the execution
// bit-for-bit — History, counter snapshot, per-node placements, simulated
// time — while different seeds produce different schedules.
func TestChaosDeterminism(t *testing.T) {
	plan := func(seed int64) *mapreduce.FaultPlan {
		return &mapreduce.FaultPlan{
			Seed:          seed,
			CrashRate:     0.25,
			StragglerRate: 0.3,
			CorruptRate:   0.2,
			Speculative:   &mapreduce.SpeculativeConfig{},
			NodeFailure:   &mapreduce.NodeFailure{Node: "beta", At: 1800 * time.Millisecond},
		}
	}

	// Find a seed whose run survives the aggressive fault mix (a clean
	// failure is valid chaos behaviour but useless here), then demand
	// bit-identical replays of it.
	var (
		seed  int64
		first *mapreduce.Result
	)
	for offset := int64(0); offset < 20; offset++ {
		s := chaosSeedOffset() + 7 + offset
		res, err := chaosWordCount(t, plan(s))
		if err == nil {
			seed, first = s, res
			break
		}
	}
	if first == nil {
		t.Fatal("no seed in the probe window survives the fault mix")
	}
	second, err := chaosWordCount(t, plan(seed))
	if err != nil {
		t.Fatalf("seed %d survived once and failed on replay: %v", seed, err)
	}

	if !reflect.DeepEqual(first.History.Records(), second.History.Records()) {
		t.Errorf("History differs between identical-seed runs:\nrun1: %+v\nrun2: %+v",
			first.History.Records(), second.History.Records())
	}
	if !reflect.DeepEqual(first.Counters.Snapshot(), second.Counters.Snapshot()) {
		t.Errorf("counters differ between identical-seed runs:\nrun1: %+v\nrun2: %+v",
			first.Counters.Snapshot(), second.Counters.Snapshot())
	}
	if !reflect.DeepEqual(first.ClusterStats.PerNode, second.ClusterStats.PerNode) {
		t.Errorf("per-node placements differ: %v vs %v",
			first.ClusterStats.PerNode, second.ClusterStats.PerNode)
	}
	if first.SimulatedTime != second.SimulatedTime {
		t.Errorf("simulated time differs: %v vs %v", first.SimulatedTime, second.SimulatedTime)
	}
	if !reflect.DeepEqual(countsFromResult(first), countsFromResult(second)) {
		t.Error("output differs between identical-seed runs")
	}

	// A different seed must produce a different schedule (the fault mix is
	// aggressive enough that identical histories would mean the seed is
	// being ignored).
	other, err := chaosWordCount(t, plan(seed+1))
	if err == nil && reflect.DeepEqual(first.History.Records(), other.History.Records()) {
		t.Error("different seeds produced identical histories; plan seed appears unused")
	}
}

// TestChaosMaxAttemptsExhaustion: with CrashRate 1 every attempt crashes;
// the job must fail cleanly with the attempt budget in the message and a
// History carrying every attempt of the exhausted task.
func TestChaosMaxAttemptsExhaustion(t *testing.T) {
	e := newEngine(t, 3, 2)
	e.Faults = &mapreduce.FaultPlan{Seed: 1, CrashRate: 1}
	job := wordCountJob([]string{"a b c", "d e f"}, 2, 1)
	job.MaxAttempts = 3

	res, err := e.Run(job)
	if err == nil {
		t.Fatal("expected the job to fail with every attempt crashing")
	}
	if !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("error %q does not report the attempt budget", err)
	}
	if res == nil {
		t.Fatal("failing run returned no partial result")
	}
	// The exhausted task must have all three attempts on record, each with
	// an error and increasing attempt numbers.
	byTask := map[int][]mapreduce.TaskRecord{}
	for _, r := range res.History.Records() {
		if r.Phase == mapreduce.PhaseMap {
			byTask[r.TaskID] = append(byTask[r.TaskID], r)
		}
	}
	exhausted := false
	for id, recs := range byTask {
		if len(recs) != 3 {
			continue
		}
		exhausted = true
		for i, r := range recs {
			if r.Attempt != i+1 {
				t.Errorf("task %d record %d: attempt = %d, want %d", id, i, r.Attempt, i+1)
			}
			if r.Err == "" {
				t.Errorf("task %d attempt %d: crashed attempt has no Err", id, r.Attempt)
			}
		}
	}
	if !exhausted {
		t.Errorf("no map task shows 3 recorded attempts; history: %+v", res.History.Records())
	}
}

// TestChaosSpeculativeExecution: a slow node stragglers its tasks; the
// scheduler must launch duplicates, the duplicate must win at least once,
// and output must be unaffected.
func TestChaosSpeculativeExecution(t *testing.T) {
	c, err := cluster.New([]cluster.Node{
		{Name: "fast0", Slots: 2, Speed: 1},
		{Name: "fast1", Slots: 2, Speed: 1},
		{Name: "slow", Slots: 2, Speed: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c)
	eng.Faults = &mapreduce.FaultPlan{
		Seed:        3,
		Speculative: &mapreduce.SpeculativeConfig{},
	}
	input := []string{"a b", "c d", "e f", "g h", "i j", "k l", "m n", "o p", "q r", "s t"}
	res, err := eng.Run(wordCountJob(input, 10, 2))
	if err != nil {
		t.Fatal(err)
	}

	launched := res.Counters.Get(mapreduce.CounterSpeculativeLaunched)
	won := res.Counters.Get(mapreduce.CounterSpeculativeWon)
	if launched == 0 {
		t.Fatalf("no speculative attempts launched; history: %+v", res.History.Records())
	}
	if won == 0 {
		t.Errorf("speculative duplicates never won (launched %d); a 5x-slow node should lose the race", launched)
	}
	specRecords, killedRecords := 0, 0
	for _, r := range res.History.Records() {
		if r.Speculative {
			specRecords++
		}
		if r.Killed {
			killedRecords++
		}
	}
	if int64(specRecords) < launched {
		t.Errorf("history shows %d speculative records for %d launches", specRecords, launched)
	}
	if killedRecords == 0 {
		t.Error("no killed attempts recorded; every speculative race must kill its loser")
	}

	want := map[string]int{}
	for _, line := range input {
		for _, w := range strings.Fields(line) {
			want[w]++
		}
	}
	if got := countsFromResult(res); !reflect.DeepEqual(got, want) {
		t.Errorf("output under speculation = %v, want %v", got, want)
	}
}

// TestChaosNodeDeath: a node dies mid-map-phase. Its running attempts are
// killed, its completed map tasks re-execute elsewhere (map output dies
// with the node, Hadoop semantics), and the job's output is identical to
// the fault-free run.
func TestChaosNodeDeath(t *testing.T) {
	input := make([]string, 12)
	for i := range input {
		input[i] = fmt.Sprintf("w%d w%d common", i, (i+1)%12)
	}
	run := func(plan *mapreduce.FaultPlan) *mapreduce.Result {
		t.Helper()
		e := newEngine(t, 3, 2)
		e.Faults = plan
		res, err := e.Run(wordCountJob(input, 12, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(&mapreduce.FaultPlan{Seed: 9})
	res := run(&mapreduce.FaultPlan{
		Seed:        9,
		NodeFailure: &mapreduce.NodeFailure{Node: "node0", At: 150 * time.Millisecond},
	})

	if got := res.Counters.Get(mapreduce.CounterNodeFailures); got != 1 {
		t.Errorf("node failures = %d, want 1", got)
	}
	// 12 tasks on 6 slots run in two waves of ~100ms each: at 150ms node0
	// has committed wave-1 maps (re-executed after death) and is running
	// wave-2 attempts (killed).
	reExecuted, killed := 0, 0
	success := map[int]int{}
	for _, r := range res.History.Records() {
		if r.Phase != mapreduce.PhaseMap {
			continue
		}
		if r.Killed {
			killed++
			if r.Node != "node0" {
				t.Errorf("attempt killed on %s; only node0 died", r.Node)
			}
			continue
		}
		if r.Err == "" {
			success[r.TaskID]++
		}
	}
	for _, n := range success {
		if n > 1 {
			reExecuted++
		}
	}
	if reExecuted == 0 {
		t.Errorf("no map task was re-executed after node death; history: %+v", res.History.Records())
	}
	if killed == 0 {
		t.Errorf("no attempt was killed by the node death; history: %+v", res.History.Records())
	}
	// No attempt may start on the dead node after its death.
	if !reflect.DeepEqual(countsFromResult(res), countsFromResult(clean)) {
		t.Error("output after node death differs from fault-free run")
	}
}

// TestChaosShuffleCorruption: with CorruptRate 1 every non-empty segment's
// first fetch is corrupted; the checksum must catch each one, the refetch
// must recover, and the output must be identical to the fault-free run.
func TestChaosShuffleCorruption(t *testing.T) {
	input := []string{"a b c d", "b c d e", "c d e f"}
	run := func(plan *mapreduce.FaultPlan) *mapreduce.Result {
		t.Helper()
		e := newEngine(t, 3, 2)
		e.Faults = plan
		res, err := e.Run(wordCountJob(input, 3, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(&mapreduce.FaultPlan{Seed: 5})
	res := run(&mapreduce.FaultPlan{Seed: 5, CorruptRate: 1})

	if got := res.Counters.Get(mapreduce.CounterShuffleCorruptions); got == 0 {
		t.Fatal("no shuffle corruptions detected at CorruptRate 1")
	}
	if !reflect.DeepEqual(countsFromResult(res), countsFromResult(clean)) {
		t.Error("output after corruption recovery differs from clean run")
	}
	if clean.Counters.Get(mapreduce.CounterShuffleCorruptions) != 0 {
		t.Error("corruption-free plan recorded corruptions")
	}
}

// TestChaosFaultFreePlanIsNoop: a nil FaultPlan must leave the concurrent
// engine path untouched — counters carry no fault counter names at all.
func TestChaosFaultFreePlanIsNoop(t *testing.T) {
	e := newEngine(t, 3, 2)
	res, err := e.Run(wordCountJob([]string{"x y", "y z"}, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, cv := range res.Counters.Snapshot() {
		switch cv.Name {
		case mapreduce.CounterTaskFailures, mapreduce.CounterSpeculativeLaunched,
			mapreduce.CounterSpeculativeWon, mapreduce.CounterNodeFailures,
			mapreduce.CounterShuffleCorruptions:
			t.Errorf("fault-free run created fault counter %q", cv.Name)
		}
	}
	for _, r := range res.History.Records() {
		if r.Speculative || r.Killed {
			t.Errorf("fault-free run produced speculative/killed record: %+v", r)
		}
	}
}
