package mapreduce

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// referenceGrouping reimplements the grouping the arena shuffle replaced —
// a map[string][][]byte per reducer plus a sort.Strings pass — as the
// oracle the sort-based path is checked against.
func referenceGrouping(recs []Record) (keys []string, groups map[string][][]byte) {
	groups = make(map[string][][]byte)
	for _, r := range recs {
		groups[string(r.Key)] = append(groups[string(r.Key)], r.Value)
	}
	keys = make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}

// randomRecords generates a record set exercising the shuffle's edge cases:
// duplicate keys, empty values, and nil keys.
func randomRecords(rng *rand.Rand, n, keyCard int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		var key []byte
		if rng.Intn(10) != 0 { // 1 in 10 records keeps a nil key
			key = []byte(fmt.Sprintf("key-%03d", rng.Intn(keyCard)))
		}
		var val []byte
		if vlen := rng.Intn(24); vlen > 0 { // zero-length values stay nil
			val = make([]byte, vlen)
			rng.Read(val)
		}
		recs[i] = Record{Key: key, Value: val}
	}
	return recs
}

// TestArenaGroupingMatchesReference is the shuffle property test: records
// absorbed mapper-by-mapper into one arena, then sort-grouped, must produce
// exactly the reference grouping's key order, per-key value order, and
// payload byte count.
func TestArenaGroupingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// Several source arenas stand in for per-mapper buckets.
		numSources := 1 + rng.Intn(4)
		var all []Record
		var merged bucketArena
		var wantBytes int64
		for s := 0; s < numSources; s++ {
			var src bucketArena
			for _, r := range randomRecords(rng, rng.Intn(40), 1+rng.Intn(8)) {
				src.add(r.Key, r.Value)
				all = append(all, r)
				wantBytes += int64(len(r.Key) + len(r.Value))
			}
			merged.absorb(&src)
		}
		if got := merged.payloadBytes(); got != wantBytes {
			t.Fatalf("trial %d: payloadBytes = %d, want %d", trial, got, wantBytes)
		}
		if merged.len() != len(all) {
			t.Fatalf("trial %d: len = %d, want %d", trial, merged.len(), len(all))
		}

		wantKeys, wantGroups := referenceGrouping(all)
		idx := merged.sortedIndex()
		runs := merged.groupRuns(idx)
		if len(runs) != len(wantKeys) {
			t.Fatalf("trial %d: %d key runs, want %d", trial, len(runs), len(wantKeys))
		}
		for g, run := range runs {
			key := merged.key(int(idx[run.lo]))
			if string(key) != wantKeys[g] {
				t.Fatalf("trial %d: run %d key = %q, want %q", trial, g, key, wantKeys[g])
			}
			wantVals := wantGroups[wantKeys[g]]
			if int(run.hi-run.lo) != len(wantVals) {
				t.Fatalf("trial %d: key %q has %d values, want %d", trial, key, run.hi-run.lo, len(wantVals))
			}
			for i := run.lo; i < run.hi; i++ {
				r := int(idx[i])
				if !bytes.Equal(merged.key(r), key) {
					t.Fatalf("trial %d: run %d holds key %q, want %q", trial, g, merged.key(r), key)
				}
				if !bytes.Equal(merged.value(r), wantVals[i-run.lo]) {
					t.Fatalf("trial %d: key %q value %d = %q, want %q", trial, key, i-run.lo, merged.value(r), wantVals[i-run.lo])
				}
			}
		}
	}
}

// TestArenaNilSemantics pins the nil/empty contract: zero-length keys and
// values come back nil, exactly as the []Record shuffle stored them.
func TestArenaNilSemantics(t *testing.T) {
	var a bucketArena
	a.add(nil, []byte("v"))
	a.add([]byte{}, nil)
	a.add([]byte("k"), []byte{})
	if a.key(0) != nil || a.key(1) != nil {
		t.Errorf("empty keys = %v, %v, want nil", a.key(0), a.key(1))
	}
	if a.value(1) != nil || a.value(2) != nil {
		t.Errorf("empty values = %v, %v, want nil", a.value(1), a.value(2))
	}
	if string(a.value(0)) != "v" || string(a.key(2)) != "k" {
		t.Errorf("non-empty views corrupted: %q, %q", a.value(0), a.key(2))
	}
}

// TestArenaViewsCapacityClamped guards the aliasing hazard: appending to a
// returned view must reallocate, never clobber the neighbouring record.
func TestArenaViewsCapacityClamped(t *testing.T) {
	var a bucketArena
	a.add([]byte("aa"), []byte("11"))
	a.add([]byte("bb"), []byte("22"))
	v := a.value(0)
	_ = append(v, []byte("XXXX")...)
	k := a.key(0)
	_ = append(k, 'Y')
	if string(a.key(1)) != "bb" || string(a.value(1)) != "22" {
		t.Fatalf("append through a view corrupted record 1: key %q value %q", a.key(1), a.value(1))
	}
}

// TestArenaStability checks the tie-break: equal keys keep arrival order,
// which is what gives reducers the (mapper index, emission order) value
// sequence.
func TestArenaStability(t *testing.T) {
	var a bucketArena
	for i := 0; i < 20; i++ {
		a.add([]byte("k"), []byte{byte(i)})
	}
	idx := a.sortedIndex()
	for i, r := range idx {
		if int(r) != i {
			t.Fatalf("sortedIndex()[%d] = %d, want %d", i, r, i)
		}
	}
}

func TestMeasureSlots(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct {
		par, clusterSlots, want int
	}{
		{0, 1024, min(procs, 1024)}, // default: min(GOMAXPROCS, slots)
		{0, 1, 1},                   // tiny cluster bounds the default
		{1, 1024, 1},                // serial isolation mode
		{4, 2, 4},                   // explicit values pass through unclamped
		{-3, 1024, min(procs, 1024)},
	}
	for _, c := range cases {
		cfg := &SimConfig{MeasureParallelism: c.par}
		if got := cfg.measureSlots(c.clusterSlots); got != c.want {
			t.Errorf("measureSlots(par=%d, slots=%d) = %d, want %d", c.par, c.clusterSlots, got, c.want)
		}
	}
}

// benchRecords builds a deterministic workload for the grouping benchmarks.
func benchRecords(n, keyCard int) []Record {
	rng := rand.New(rand.NewSource(1))
	recs := make([]Record, n)
	for i := range recs {
		val := make([]byte, 16+rng.Intn(16))
		rng.Read(val)
		recs[i] = Record{
			Key:   []byte(fmt.Sprintf("key-%06d", rng.Intn(keyCard))),
			Value: val,
		}
	}
	return recs
}

// BenchmarkGrouping compares the sort-based arena grouping against the
// map[string][][]byte + sort.Strings grouping it replaced, on identical
// workloads. The arena path is the allocation-reduction claim of the shuffle
// rewrite; keep both sides so regressions show up as a ratio, not a guess.
func BenchmarkGrouping(b *testing.B) {
	for _, keyCard := range []int{16, 1024} {
		for _, n := range []int{1_000, 50_000} {
			recs := benchRecords(n, keyCard)
			b.Run(fmt.Sprintf("arena/keys=%d/recs=%d", keyCard, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var a bucketArena
					for _, r := range recs {
						a.add(r.Key, r.Value)
					}
					idx := a.sortedIndex()
					runs := a.groupRuns(idx)
					for _, run := range runs {
						vals := make([][]byte, 0, run.hi-run.lo)
						for j := run.lo; j < run.hi; j++ {
							vals = append(vals, a.value(int(idx[j])))
						}
						_ = vals
					}
				}
			})
			b.Run(fmt.Sprintf("reference/keys=%d/recs=%d", keyCard, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var bucket []Record
					for _, r := range recs {
						key := append([]byte(nil), r.Key...)
						val := append([]byte(nil), r.Value...)
						bucket = append(bucket, Record{Key: key, Value: val})
					}
					keys, groups := referenceGrouping(bucket)
					for _, k := range keys {
						_ = groups[k]
					}
				}
			})
		}
	}
}
