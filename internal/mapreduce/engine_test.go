package mapreduce_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mrskyline/internal/cluster"
	"mrskyline/internal/dfs"
	"mrskyline/internal/mapreduce"
)

func newEngine(t testing.TB, nodes, slots int) *mapreduce.Engine {
	t.Helper()
	c, err := cluster.Uniform(nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return mapreduce.NewEngine(c)
}

// wordCountJob is the canonical smoke test: count words across lines.
func wordCountJob(input []string, mappers, reducers int) *mapreduce.Job {
	recs := make([]mapreduce.Record, len(input))
	for i, line := range input {
		recs[i] = mapreduce.Record{Value: []byte(line)}
	}
	return &mapreduce.Job{
		Name:        "wordcount",
		Input:       mapreduce.MemoryInput{Records: recs},
		NumMappers:  mappers,
		NumReducers: reducers,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					for _, w := range strings.Fields(string(rec.Value)) {
						emit([]byte(w), []byte("1"))
					}
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					emit(key, []byte(strconv.Itoa(len(values))))
					return nil
				},
			}
		},
	}
}

func countsFromResult(res *mapreduce.Result) map[string]int {
	out := map[string]int{}
	for _, rec := range res.Output {
		n, _ := strconv.Atoi(string(rec.Value))
		out[string(rec.Key)] = n
	}
	return out
}

func TestWordCount(t *testing.T) {
	e := newEngine(t, 3, 2)
	input := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	for _, reducers := range []int{1, 2, 5} {
		res, err := e.Run(wordCountJob(input, 2, reducers))
		if err != nil {
			t.Fatal(err)
		}
		got := countsFromResult(res)
		want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reducers=%d: counts = %v, want %v", reducers, got, want)
		}
		if got := res.Counters.Get(mapreduce.CounterMapInputRecords); got != 3 {
			t.Errorf("map input records = %d", got)
		}
		if got := res.Counters.Get(mapreduce.CounterMapOutputRecords); got != 10 {
			t.Errorf("map output records = %d", got)
		}
		if got := res.Counters.Get(mapreduce.CounterReduceInputRecords); got != 10 {
			t.Errorf("reduce input records = %d", got)
		}
		if got := res.Counters.Get(mapreduce.CounterReduceInputKeys); got != 6 {
			t.Errorf("reduce input keys = %d", got)
		}
		if res.Counters.Get(mapreduce.CounterShuffleBytes) == 0 {
			t.Error("shuffle bytes not counted")
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	e := newEngine(t, 4, 2)
	input := []string{"b a c", "a c b", "c b a", "z y x w v u"}
	var first []mapreduce.Record
	for i := 0; i < 5; i++ {
		res, err := e.Run(wordCountJob(input, 3, 3))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Output
			continue
		}
		if len(res.Output) != len(first) {
			t.Fatalf("run %d: output length changed", i)
		}
		for j := range first {
			if !bytes.Equal(res.Output[j].Key, first[j].Key) || !bytes.Equal(res.Output[j].Value, first[j].Value) {
				t.Fatalf("run %d: output[%d] differs", i, j)
			}
		}
	}
}

func TestValuesOrderedByMapper(t *testing.T) {
	// All mappers emit under one key; values must arrive ordered by mapper
	// index then emission order.
	e := newEngine(t, 2, 2)
	recs := make([]mapreduce.Record, 6)
	for i := range recs {
		recs[i] = mapreduce.Record{Value: []byte(strconv.Itoa(i))}
	}
	job := &mapreduce.Job{
		Name:       "order",
		Input:      mapreduce.MemoryInput{Records: recs},
		NumMappers: 3,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					emit([]byte("k"), []byte(fmt.Sprintf("m%d:%s", ctx.TaskID, rec.Value)))
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					var parts []string
					for _, v := range values {
						parts = append(parts, string(v))
					}
					emit(key, []byte(strings.Join(parts, ",")))
					return nil
				},
			}
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := "m0:0,m0:1,m1:2,m1:3,m2:4,m2:5"
	if got := string(res.Output[0].Value); got != want {
		t.Errorf("value order = %q, want %q", got, want)
	}
}

func TestMapperFlushEmits(t *testing.T) {
	// Flush-time emission is the pattern every skyline mapper uses.
	e := newEngine(t, 2, 1)
	recs := []mapreduce.Record{{Value: []byte("a")}, {Value: []byte("b")}}
	job := &mapreduce.Job{
		Name:       "flush",
		Input:      mapreduce.MemoryInput{Records: recs},
		NumMappers: 1,
		NewMapper: func() mapreduce.Mapper {
			var seen []string
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					seen = append(seen, string(rec.Value))
					return nil
				},
				FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
					emit(nil, []byte(strings.Join(seen, "+")))
					return nil
				},
			}
		},
		NewReducer: identityReducer(),
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || string(res.Output[0].Value) != "a+b" {
		t.Errorf("output = %v", res.Output)
	}
}

func identityReducer() func() mapreduce.Reducer {
	return func() mapreduce.Reducer {
		return mapreduce.ReducerFuncs{
			ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
				for _, v := range values {
					emit(key, v)
				}
				return nil
			},
		}
	}
}

func TestDistributedCache(t *testing.T) {
	e := newEngine(t, 2, 1)
	job := &mapreduce.Job{
		Name:       "cache",
		Input:      mapreduce.MemoryInput{Records: []mapreduce.Record{{Value: []byte("x")}}},
		NumMappers: 1,
		Cache:      mapreduce.Cache{"greeting": []byte("hello")},
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					emit(nil, ctx.Cache.MustGet("greeting"))
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					g, ok := ctx.Cache.Get("greeting")
					if !ok {
						return errors.New("cache missing in reducer")
					}
					for _, v := range values {
						emit(nil, append(v, g...))
					}
					return nil
				},
			}
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || string(res.Output[0].Value) != "hellohello" {
		t.Errorf("output = %q", res.Output)
	}
	if _, ok := (mapreduce.Cache{}).Get("nope"); ok {
		t.Error("empty cache returned a value")
	}
}

func TestCacheMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(mapreduce.Cache{}).MustGet("nope")
}

func TestFaultInjectionRetries(t *testing.T) {
	e := newEngine(t, 3, 1)
	var mu sync.Mutex
	injected := map[string]int{}
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		key := fmt.Sprintf("%v-%d", phase, taskID)
		injected[key]++
		if attempt == 1 {
			return fmt.Errorf("injected crash for %s", key)
		}
		return nil
	}
	res, err := e.Run(wordCountJob([]string{"a b", "b c"}, 2, 2))
	if err != nil {
		t.Fatalf("job did not survive single-attempt faults: %v", err)
	}
	got := countsFromResult(res)
	want := map[string]int{"a": 1, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("counts after retries = %v, want %v", got, want)
	}
	// Counters must reflect successful attempts only: exactly 2 map inputs.
	if got := res.Counters.Get(mapreduce.CounterMapInputRecords); got != 2 {
		t.Errorf("map input records after retries = %d, want 2", got)
	}
	if res.ClusterStats.Retries == 0 {
		t.Error("no retries recorded")
	}
}

func TestPermanentFaultFailsJob(t *testing.T) {
	e := newEngine(t, 2, 1)
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if phase == mapreduce.PhaseReduce && taskID == 0 {
			return errors.New("reducer 0 is cursed")
		}
		return nil
	}
	_, err := e.Run(wordCountJob([]string{"a"}, 1, 1))
	if err == nil || !strings.Contains(err.Error(), "cursed") {
		t.Fatalf("err = %v", err)
	}
}

func TestJobValidation(t *testing.T) {
	e := newEngine(t, 1, 1)
	base := wordCountJob([]string{"a"}, 1, 1)
	for name, mutate := range map[string]func(j *mapreduce.Job){
		"no-input":   func(j *mapreduce.Job) { j.Input = nil },
		"no-mapper":  func(j *mapreduce.Job) { j.NewMapper = nil },
		"no-reducer": func(j *mapreduce.Job) { j.NewReducer = nil },
	} {
		j := *base
		mutate(&j)
		if _, err := e.Run(&j); err == nil {
			t.Errorf("%s: job accepted", name)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	e := newEngine(t, 2, 1)
	res, err := e.Run(wordCountJob(nil, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestMemoryInputSplitCounts(t *testing.T) {
	recs := make([]mapreduce.Record, 10)
	in := mapreduce.MemoryInput{Records: recs}
	for _, hint := range []int{1, 3, 10, 25, 0} {
		splits, err := in.Splits(hint)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := hint
		if hint > 10 || hint < 1 {
			wantLen = 10
		}
		if hint == 0 {
			wantLen = 1
		}
		if len(splits) != wantLen {
			t.Errorf("hint %d: %d splits, want %d", hint, len(splits), wantLen)
		}
		total := 0
		for _, s := range splits {
			s.Each(func(mapreduce.Record) error { total++; return nil })
		}
		if total != 10 {
			t.Errorf("hint %d: splits cover %d records", hint, total)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	e := newEngine(t, 1, 1)
	job := wordCountJob([]string{"a"}, 1, 1)
	job.NewMapper = func() mapreduce.Mapper {
		return mapreduce.MapperFuncs{
			MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
				return errors.New("map exploded")
			},
		}
	}
	job.MaxAttempts = 2
	if _, err := e.Run(job); err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestDFSLineInput(t *testing.T) {
	// Lines crossing block boundaries must be read exactly once.
	fsys, err := dfs.New(dfs.Config{BlockSize: 10, Replication: 2, Nodes: []string{"node0", "node1", "node2"}})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	var content bytes.Buffer
	for i := 0; i < 40; i++ {
		line := fmt.Sprintf("line-%02d-%s", i, strings.Repeat("x", i%7))
		lines = append(lines, line)
		content.WriteString(line)
		content.WriteByte('\n')
	}
	if err := fsys.WriteFile("input.txt", content.Bytes()); err != nil {
		t.Fatal(err)
	}

	in := mapreduce.DFSLineInput{FS: fsys, Path: "input.txt"}
	splits, err := in.Splits(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("expected multiple splits, got %d", len(splits))
	}
	var got []string
	for _, s := range splits {
		if len(s.Hosts()) == 0 {
			t.Error("split has no hosts")
		}
		if err := s.Each(func(rec mapreduce.Record) error {
			got = append(got, string(rec.Value))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, lines) {
		t.Fatalf("split healing broken:\ngot  %d lines %v\nwant %d lines %v", len(got), got[:5], len(lines), lines[:5])
	}
}

func TestDFSLineInputNoTrailingNewline(t *testing.T) {
	fsys, _ := dfs.New(dfs.Config{BlockSize: 8, Replication: 1, Nodes: []string{"n0"}})
	fsys.WriteFile("f", []byte("aaa\nbbbbbbbbbb\nccc")) // no trailing \n
	in := mapreduce.DFSLineInput{FS: fsys, Path: "f"}
	splits, err := in.Splits(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range splits {
		s.Each(func(rec mapreduce.Record) error {
			got = append(got, string(rec.Value))
			return nil
		})
	}
	want := []string{"aaa", "bbbbbbbbbb", "ccc"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDFSLineInputCRLF(t *testing.T) {
	fsys, _ := dfs.New(dfs.Config{BlockSize: 64, Replication: 1, Nodes: []string{"n0"}})
	fsys.WriteFile("f", []byte("a\r\nb\r\n"))
	in := mapreduce.DFSLineInput{FS: fsys, Path: "f"}
	splits, _ := in.Splits(0)
	var got []string
	for _, s := range splits {
		s.Each(func(rec mapreduce.Record) error {
			got = append(got, string(rec.Value))
			return nil
		})
	}
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("got %v", got)
	}
}

func TestWordCountOverDFS(t *testing.T) {
	fsys, err := dfs.New(dfs.Config{BlockSize: 32, Replication: 2, Nodes: []string{"node0", "node1", "node2"}})
	if err != nil {
		t.Fatal(err)
	}
	fsys.WriteFile("corpus", []byte("to be or not to be\nthat is the question\nto be is to do\n"))
	e := newEngine(t, 3, 2)
	job := wordCountJob(nil, 1, 2)
	job.Input = mapreduce.DFSLineInput{FS: fsys, Path: "corpus"}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromResult(res)
	if got["to"] != 4 || got["be"] != 3 || got["question"] != 1 {
		t.Errorf("counts = %v", got)
	}
	if res.ClusterStats.LocalityHits == 0 {
		t.Error("no locality hits scheduling DFS splits")
	}
}

func TestPhaseString(t *testing.T) {
	if mapreduce.PhaseMap.String() != "map" || mapreduce.PhaseReduce.String() != "reduce" {
		t.Error("Phase.String wrong")
	}
}

func TestHashPartitionInRange(t *testing.T) {
	for r := 1; r <= 7; r++ {
		for i := 0; i < 100; i++ {
			k := []byte(strconv.Itoa(i * 31))
			p := mapreduce.HashPartition(k, r)
			if p < 0 || p >= r {
				t.Fatalf("HashPartition(%q, %d) = %d", k, r, p)
			}
		}
	}
	// Must spread across reducers reasonably.
	hit := map[int]bool{}
	for i := 0; i < 100; i++ {
		hit[mapreduce.HashPartition([]byte(strconv.Itoa(i)), 4)] = true
	}
	if len(hit) != 4 {
		t.Errorf("HashPartition used only %d of 4 buckets", len(hit))
	}
}

// TestMapPanicRecovery: a panicking map attempt (here: a panicking fault
// injector, standing in for panicking user code) must become a failed,
// Err-bearing History record and be retried like a returned error, on the
// concurrent scheduler path.
func TestMapPanicRecovery(t *testing.T) {
	e := newEngine(t, 3, 1)
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if phase == mapreduce.PhaseMap && taskID == 0 && attempt == 1 {
			panic("mapper 0 exploded")
		}
		return nil
	}
	res, err := e.Run(wordCountJob([]string{"a b", "b c"}, 2, 1))
	if err != nil {
		t.Fatalf("job did not survive a single map panic: %v", err)
	}
	want := map[string]int{"a": 1, "b": 2, "c": 1}
	if got := countsFromResult(res); !reflect.DeepEqual(got, want) {
		t.Errorf("counts after panic retry = %v, want %v", got, want)
	}
	var panicked *mapreduce.TaskRecord
	for _, r := range res.History.Records() {
		if r.Phase == mapreduce.PhaseMap && r.TaskID == 0 && r.Attempt == 1 {
			r := r
			panicked = &r
		}
	}
	if panicked == nil {
		t.Fatalf("no History record for the panicking attempt; history: %+v", res.History.Records())
	}
	if !strings.Contains(panicked.Err, "panic") {
		t.Errorf("panicking attempt's Err = %q, want a panic message", panicked.Err)
	}
	// Counters reflect the successful attempt only.
	if got := res.Counters.Get(mapreduce.CounterMapInputRecords); got != 2 {
		t.Errorf("map input records after panic retry = %d, want 2", got)
	}
}

// TestReducePanicRecovery: same contract for the reduce phase — the
// reducer panics on attempt 1, succeeds on attempt 2, and the job delivers
// exactly one Err-bearing record plus the correct result.
func TestReducePanicRecovery(t *testing.T) {
	e := newEngine(t, 3, 1)
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if phase == mapreduce.PhaseReduce && attempt == 1 {
			panic(fmt.Sprintf("reducer %d exploded", taskID))
		}
		return nil
	}
	res, err := e.Run(wordCountJob([]string{"a b", "b c"}, 2, 1))
	if err != nil {
		t.Fatalf("job did not survive a single reduce panic: %v", err)
	}
	want := map[string]int{"a": 1, "b": 2, "c": 1}
	if got := countsFromResult(res); !reflect.DeepEqual(got, want) {
		t.Errorf("counts after reduce panic retry = %v, want %v", got, want)
	}
	failed, succeeded := 0, 0
	for _, r := range res.History.Records() {
		if r.Phase != mapreduce.PhaseReduce {
			continue
		}
		if r.Err != "" {
			failed++
			if !strings.Contains(r.Err, "panic") {
				t.Errorf("failed reduce attempt Err = %q, want a panic message", r.Err)
			}
		} else {
			succeeded++
		}
	}
	if failed != 1 || succeeded != 1 {
		t.Errorf("reduce history has %d failed / %d successful attempts, want 1/1; history: %+v",
			failed, succeeded, res.History.Records())
	}
	if got := res.Counters.Get(mapreduce.CounterReduceOutputRecords); got != 3 {
		t.Errorf("reduce output records = %d, want 3 (no double-count from the panicked attempt)", got)
	}
}
