package mapreduce

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/obs"
	"mrskyline/internal/spill"
)

// Phase identifies the half of a job a task belongs to; the fault injector
// receives it.
type Phase int

const (
	// PhaseMap marks map tasks.
	PhaseMap Phase = iota
	// PhaseReduce marks reduce tasks.
	PhaseReduce
)

// String implements fmt.Stringer for Phase.
func (p Phase) String() string {
	if p == PhaseMap {
		return "map"
	}
	return "reduce"
}

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in errors and logs.
	Name string
	// Input supplies the splits; required.
	Input Input
	// NumMappers is the desired mapper count. Chunkable inputs honour it;
	// block-backed inputs derive the count from their block layout.
	// Defaults to the cluster's total slot count.
	NumMappers int
	// NumReducers is the reduce task count; defaults to 1 (the shape of
	// MR-BNL, MR-Angle and MR-GPSRS).
	NumReducers int
	// NewMapper constructs a fresh Mapper per map-task attempt; required.
	NewMapper func() Mapper
	// NewReducer constructs a fresh Reducer per reduce-task attempt;
	// required unless NumReducers is 0 and the job is map-only... reduce
	// is always present in this repository, so it is simply required.
	NewReducer func() Reducer
	// Partition routes map-output keys to reducers; defaults to
	// HashPartition.
	Partition PartitionFunc
	// NewCombiner, when non-nil, constructs a map-side combiner per map
	// task; see Combiner.
	NewCombiner func() Combiner
	// Kind and Spec, when set, make the job executable out of process: Kind
	// names a builder registered with RegisterKind and Spec is the builder's
	// serialized parameters, from which worker processes reconstruct the
	// mapper/reducer/combiner/partition functions. The in-process engine
	// ignores both and always runs the closures above; process backends
	// reject jobs whose Kind is empty or unregistered.
	Kind string
	Spec []byte
	// Cache is the distributed cache content shipped to every task.
	Cache Cache
	// MaxAttempts bounds per-task attempts (default 3, mirroring Hadoop's
	// mapred.map.max.attempts spirit).
	MaxAttempts int
	// Trace, when non-nil, overrides the engine's tracer for this job's
	// spans and metrics (job/phase/task/shuffle instrumentation), so
	// concurrent jobs can record isolated timelines. Slot-occupancy spans
	// are emitted by the cluster and stay on the cluster's tracer; queue
	// spans and mr.queue.* metrics describe engine-level state and stay on
	// the engine tracer.
	Trace *obs.Tracer
}

// Result is a finished job's output.
type Result struct {
	// Output contains every record emitted by the reducers. Records are
	// ordered by reduce task, then emission order, so results are
	// deterministic for deterministic jobs.
	Output []Record
	// Counters are the job's aggregated counters (successful attempts
	// only).
	Counters *Counters
	// ClusterStats records scheduling telemetry for both phases.
	ClusterStats cluster.Stats
	// MapTime and ReduceTime are the wall-clock durations of the two
	// phases (shuffle accounted to the reduce phase, as Hadoop reports).
	MapTime    time.Duration
	ReduceTime time.Duration
	// SimulatedTime is the job's modelled duration on the simulated
	// cluster; zero unless the engine carries a SimConfig. See SimConfig.
	SimulatedTime time.Duration
	// History records every task attempt of the job.
	History *History
}

// Engine executes jobs on a simulated cluster.
//
// Run and RunContext are safe for concurrent use: jobs submitted from
// multiple goroutines share the cluster's slots through its scheduler, so
// concurrent jobs genuinely contend for capacity, while trace, history and
// counter state stay per job. The exceptions are configuration (SetTrace,
// SetAdmission, and the exported fields), which must be set before jobs
// are submitted, and fault-schedule execution: jobs on an engine carrying
// a FaultPlan serialize on an internal mutex, because the deterministic
// virtual clock admits no concurrent interleaving.
type Engine struct {
	cluster *cluster.Cluster
	// FaultInjector, when non-nil, is invoked at the start of every task
	// attempt; a non-nil return fails the attempt, and a panic inside it is
	// recovered into a failed attempt. Tests use it to exercise retry
	// behaviour.
	FaultInjector func(phase Phase, taskID, attempt int) error
	// Faults, when non-nil, switches the engine into deterministic
	// fault-schedule execution: the job runs on a virtual clock driven by
	// the plan's seed, with injected crashes, stragglers, shuffle
	// corruption, node death and (optionally) speculative execution. Task
	// placement, History and counters then reproduce exactly for a given
	// seed. See FaultPlan.
	Faults *FaultPlan
	// trace, when non-nil, records the job timeline: job/phase/shuffle
	// spans on the driver track, task-attempt spans on per-slot tracks,
	// and duration/byte histograms. Set with SetTrace.
	trace *obs.Tracer
	// Spill, when non-nil with a positive budget, switches the shuffle to
	// the external-memory path: map outputs are flushed to sorted run
	// files under a per-job subdirectory of Spill.Dir and each reducer
	// streams a budget-bounded multi-round merge of its runs instead of a
	// materialized arena. Nil (or a zero budget) keeps every shuffle byte
	// resident — the historical behaviour. Fault-schedule execution
	// (Faults) ignores Spill: the virtual clock models shuffle faults on
	// in-memory segments, and mixing in host I/O would break its
	// determinism.
	Spill *spill.Config
	// Sim, when non-nil, turns on simulated-time accounting: concurrent
	// task bodies are bounded by SimConfig.MeasureParallelism for
	// contention-free measurement and Result gains a SimulatedTime
	// computed from the cluster schedule. See SimConfig. Under a FaultPlan
	// the SimulatedTime comes from the virtual fault schedule instead,
	// which also charges wasted (crashed, killed, duplicate) work.
	Sim *SimConfig
	// admission, when non-nil, bounds concurrent job execution; see
	// SetAdmission.
	admission *admission
	// faultMu serializes fault-schedule jobs: the virtual clock and the
	// tracer's virtual base are job-at-a-time resources.
	faultMu sync.Mutex
}

// NewEngine creates an engine on the given cluster.
func NewEngine(c *cluster.Cluster) *Engine {
	return &Engine{cluster: c}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// SetTrace attaches a tracer to the engine (and its cluster, which emits
// slot-occupancy spans on the wall-clock path). nil disables tracing.
// Call before Run.
func (e *Engine) SetTrace(tr *obs.Tracer) {
	e.trace = tr
	e.cluster.SetTrace(tr)
}

// Trace returns the engine's tracer (nil when tracing is off).
func (e *Engine) Trace() *obs.Tracer { return e.trace }

// jobTracer resolves the tracer for one job: its own override, or the
// engine's.
func (e *Engine) jobTracer(job *Job) *obs.Tracer {
	if job.Trace != nil {
		return job.Trace
	}
	return e.trace
}

// WallTracer returns the tracer for wall-clock instrumentation: the
// engine's tracer on the concurrent path, nil under a FaultPlan — a
// virtual-clock run's trace must contain only deterministic virtual
// spans, never host timings.
func (e *Engine) WallTracer() *obs.Tracer {
	if e.Faults != nil {
		return nil
	}
	return e.trace
}

// stateArg renders an error as a span state annotation.
func stateArg(err error) obs.Arg {
	if err != nil {
		return obs.Arg{Key: "state", Value: "error"}
	}
	return obs.Arg{Key: "state", Value: "ok"}
}

// combineBuckets applies a map-side combiner to every per-reducer bucket:
// records are grouped by key (in byte order, for determinism, via the same
// sort-based grouping the shuffle uses), folded through the combiner, and
// re-emitted into fresh arenas.
func combineBuckets(c Combiner, buckets []bucketArena) ([]bucketArena, error) {
	out := make([]bucketArena, len(buckets))
	for r := range buckets {
		b := &buckets[r]
		if b.len() == 0 {
			continue
		}
		idx := b.sortedIndex()
		var dst bucketArena
		for _, g := range b.groupRuns(idx) {
			key := b.key(int(idx[g.lo]))
			values := make([][]byte, 0, g.hi-g.lo)
			for _, i := range idx[g.lo:g.hi] {
				values = append(values, b.value(int(i)))
			}
			vals, err := c.Combine(key, values)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				dst.add(key, v)
			}
		}
		out[r] = dst
	}
	return out, nil
}

// resolvedJob holds a job's validated and defaulted execution parameters,
// shared by the concurrent and fault-schedule execution paths.
type resolvedJob struct {
	numMappers  int
	numReducers int
	maxAttempts int
	partition   PartitionFunc
	splits      []Split
}

// resolve validates the job and computes its task layout.
func (e *Engine) resolve(job *Job) (*resolvedJob, error) {
	if job.Input == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no input", job.Name)
	}
	if job.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if job.NewReducer == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no reducer", job.Name)
	}
	rj := &resolvedJob{
		numReducers: job.NumReducers,
		maxAttempts: job.MaxAttempts,
		partition:   job.Partition,
	}
	if rj.numReducers < 1 {
		rj.numReducers = 1
	}
	if rj.partition == nil {
		rj.partition = HashPartition
	}
	if rj.maxAttempts < 1 {
		rj.maxAttempts = 3
	}
	mapperHint := job.NumMappers
	if mapperHint < 1 {
		mapperHint = e.cluster.TotalSlots()
	}
	splits, err := job.Input.Splits(mapperHint)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: splitting input: %w", job.Name, err)
	}
	rj.splits = splits
	rj.numMappers = len(splits)
	return rj, nil
}

// attemptMap executes the user half of one map-task attempt: feed the split
// through a fresh Mapper, partition its output into per-reducer buckets,
// apply the combiner, and record the attempt's I/O counters in
// ctx.Counters. It has no side effects outside ctx and its return value, so
// either execution path can retry or discard an attempt freely.
func attemptMap(job *Job, rj *resolvedJob, split Split, ctx *TaskContext) ([]bucketArena, error) {
	buckets := make([]bucketArena, rj.numReducers)
	emitted := int64(0)
	// A partitioner that routes outside [0, numReducers) fails the task
	// attempt — recorded here and surfaced after the mapper returns, so it
	// flows through the retry and MaxAttempts machinery like any other task
	// error instead of panicking past it.
	var emitErr error
	emit := func(key, value []byte) {
		if emitErr != nil {
			return
		}
		r := rj.partition(key, rj.numReducers)
		if r < 0 || r >= rj.numReducers {
			emitErr = fmt.Errorf("partitioner returned %d for %d reducers (key %q)", r, rj.numReducers, key)
			return
		}
		buckets[r].add(key, value)
		emitted++
	}
	mapper := job.NewMapper()
	inRecords := int64(0)
	err := split.Each(func(rec Record) error {
		inRecords++
		return mapper.Map(ctx, rec, emit)
	})
	if err == nil {
		err = mapper.Flush(ctx, emit)
	}
	if err == nil {
		err = emitErr
	}
	if err != nil {
		return nil, err
	}
	if job.NewCombiner != nil {
		if buckets, err = combineBuckets(job.NewCombiner(), buckets); err != nil {
			return nil, fmt.Errorf("combiner: %w", err)
		}
	}
	ctx.Counters.Add(CounterMapInputRecords, inRecords)
	ctx.Counters.Add(CounterMapOutputRecords, emitted)
	return buckets, nil
}

// attemptReduce executes the user half of one reduce-task attempt, pulling
// its input from src — a sorted in-memory arena or a spilled run merge;
// both sources present the identical (key order, per-key value order)
// group stream. Like attemptMap it is free of external side effects.
func attemptReduce(job *Job, src groupSource, ctx *TaskContext) (bucketArena, error) {
	var out bucketArena
	emitted := int64(0)
	emit := func(key, value []byte) {
		out.add(key, value)
		emitted++
	}
	reducer := job.NewReducer()
	inRecords := int64(0)
	inKeys := int64(0)
	for {
		key, vals, ok, err := src.next()
		if err != nil {
			return bucketArena{}, err
		}
		if !ok {
			break
		}
		inKeys++
		inRecords += int64(len(vals))
		if err := reducer.Reduce(ctx, key, vals, emit); err != nil {
			return bucketArena{}, err
		}
	}
	if err := reducer.Flush(ctx, emit); err != nil {
		return bucketArena{}, err
	}
	ctx.Counters.Add(CounterReduceInputKeys, inKeys)
	ctx.Counters.Add(CounterReduceInputRecords, inRecords)
	ctx.Counters.Add(CounterReduceOutputRecords, emitted)
	return out, nil
}

// shuffleMapOutput concatenates each reducer's map-output segments (mapper
// order preserved, so values group per key in (mapper index, emission
// order)) and reports per-reducer and total shuffle volumes.
//
// When the engine carries a FaultPlan, every non-empty segment is
// checksummed before being fetched and the fetched bytes are verified
// against that checksum; the plan may corrupt a segment's first fetch, in
// which case the mismatch is detected, counted in
// CounterShuffleCorruptions, and the segment refetched — Hadoop reducers
// re-pull a map output whose IFile checksum fails the same way. Without a
// plan the function is byte-for-byte the pre-fault shuffle.
// tr, when non-nil, brackets each reducer's fetch in a wall-clock span and
// feeds the shuffle-volume histogram; the virtual path passes nil and
// records its own deterministic spans.
func (e *Engine) shuffleMapOutput(mapOut [][]bucketArena, rj *resolvedJob, res *Result, tr *obs.Tracer) ([]bucketArena, []int64, error) {
	reduceIn := make([]bucketArena, rj.numReducers)
	perReducerBytes := make([]int64, rj.numReducers)
	shuffleBytes := int64(0)
	for r := 0; r < rj.numReducers; r++ {
		var fetchSp obs.SpanRef
		if tr != nil {
			fetchSp = tr.Start(obs.DriverTrack, "fetch:r"+strconv.Itoa(r), obs.CatShuffle)
		}
		var dataLen, recCount int
		for m := 0; m < rj.numMappers; m++ {
			dataLen += len(mapOut[m][r].data)
			recCount += len(mapOut[m][r].recs)
		}
		reduceIn[r].data = make([]byte, 0, dataLen)
		reduceIn[r].recs = make([]arenaRec, 0, recCount)
		for m := 0; m < rj.numMappers; m++ {
			seg := &mapOut[m][r]
			if e.Faults != nil && seg.len() > 0 {
				want := seg.checksum()
				fetched := e.fetchSegment(seg, m, r)
				if fetched.checksum() != want {
					res.Counters.Add(CounterShuffleCorruptions, 1)
					fetched = seg // refetch the pristine segment
					if fetched.checksum() != want {
						return nil, nil, fmt.Errorf("shuffle: segment map %d → reduce %d corrupt after refetch", m, r)
					}
				}
				reduceIn[r].absorb(fetched)
			} else {
				reduceIn[r].absorb(seg)
			}
			mapOut[m][r] = bucketArena{} // release as we go
		}
		n := reduceIn[r].payloadBytes()
		shuffleBytes += n
		perReducerBytes[r] += n
		tr.Metrics().Observe("mr.shuffle.reducer.bytes", n)
		fetchSp.EndWith(obs.Arg{Key: "bytes", Value: strconv.FormatInt(n, 10)})
	}
	res.Counters.Add(CounterShuffleBytes, shuffleBytes)
	return reduceIn, perReducerBytes, nil
}

// fetchSegment models one reducer pulling one mapper's output segment:
// under the plan's corruption schedule the first fetch returns a copy with
// one deterministically chosen byte flipped; otherwise the pristine segment
// is returned directly (no copy).
func (e *Engine) fetchSegment(seg *bucketArena, m, r int) *bucketArena {
	if !e.Faults.corruptSegment(m, r) {
		return seg
	}
	bad := seg.clone()
	i := int(e.Faults.roll("corrupt-byte", int64(m), int64(r)) * float64(len(bad.data)))
	if i >= len(bad.data) {
		i = len(bad.data) - 1
	}
	bad.data[i] ^= 0xFF
	return &bad
}

// Run executes the job and returns its result. The first task failure
// (after retries) aborts the job; on error the returned Result, when
// non-nil, carries the partial History and counters accumulated so far —
// chaos tests inspect it to verify that every attempt was recorded.
func (e *Engine) Run(job *Job) (*Result, error) {
	return e.RunContext(context.Background(), job)
}

// RunContext is Run with admission control and cancellation. When the
// engine carries an admission controller (SetAdmission) the job first
// waits FIFO for an execution slot — failing fast with ErrQueueFull at
// queue capacity, or with ctx's error if the context ends while queued.
// Once running, cancelling ctx (e.g. a per-job deadline) stops the
// scheduler from placing further task attempts and fails the job with
// ctx's error after in-flight attempts drain.
func (e *Engine) RunContext(ctx context.Context, job *Job) (*Result, error) {
	rj, err := e.resolve(job)
	if err != nil {
		return nil, err
	}
	if e.admission != nil {
		if err := e.admit(ctx, job.Name); err != nil {
			return nil, err
		}
		defer e.admission.release(e.trace.Metrics())
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	if e.Faults != nil {
		// Virtual-clock jobs serialize: the deterministic event clock and
		// the tracer's virtual base are job-at-a-time resources.
		e.faultMu.Lock()
		defer e.faultMu.Unlock()
		return e.runFaulty(job, rj)
	}
	return e.runConcurrent(ctx, job, rj)
}

// runConcurrent executes the job on the concurrent wall-clock path.
func (e *Engine) runConcurrent(ctx context.Context, job *Job, rj *resolvedJob) (_ *Result, retErr error) {
	numMappers, numReducers := rj.numMappers, rj.numReducers
	res := &Result{Counters: NewCounters(), History: &History{}}

	tr := e.jobTracer(job) // wall-clock path: the job tracer is the wall tracer
	jobSpan := tr.Start(obs.DriverTrack, "job:"+job.Name, obs.CatJob,
		obs.Arg{Key: "mappers", Value: strconv.Itoa(numMappers)},
		obs.Arg{Key: "reducers", Value: strconv.Itoa(numReducers)})
	defer func() { jobSpan.EndWith(stateArg(retErr)) }()

	// External-memory shuffle: a per-job copy of the engine's spill
	// configuration pointing at a fresh subdirectory, removed when the job
	// resolves. Nil when spilling is off, which leaves every code path
	// below byte-identical to the all-in-RAM engine.
	var spillCfg *spill.Config
	if e.Spill.Enabled() {
		dir, err := os.MkdirTemp(e.Spill.Dir, "job-")
		if err != nil {
			return res, fmt.Errorf("mapreduce: job %q: creating spill directory: %w", job.Name, err)
		}
		defer os.RemoveAll(dir)
		cfg := *e.Spill
		cfg.Dir = dir
		if cfg.Metrics == nil {
			cfg.Metrics = tr.Metrics()
		}
		spillCfg = &cfg
	}

	// Simulated-time instrumentation: a counting semaphore bounds how many
	// task bodies run while being measured. At the default capacity
	// (min(GOMAXPROCS, cluster slots)) every in-flight task is one
	// CPU-bound goroutine on its own core, so per-task measurements stay
	// contention-free in practice while the suite uses the whole host;
	// capacity 1 restores strict serial isolation. See
	// SimConfig.MeasureParallelism for the fidelity trade-off.
	var (
		simSem     chan struct{}
		mapDurs    []time.Duration
		reduceDurs []time.Duration
	)
	if e.Sim != nil {
		simSem = make(chan struct{}, e.Sim.measureSlots(e.cluster.TotalSlots()))
		mapDurs = make([]time.Duration, numMappers)
		reduceDurs = make([]time.Duration, numReducers)
	}

	// ---- Map phase -------------------------------------------------------
	mapStart := time.Now()
	jobStart := mapStart // TaskRecord.Start offsets are from job start
	mapSpan := tr.Start(obs.DriverTrack, "map", obs.CatPhase)
	// mapOut[m][r] holds mapper m's records destined for reducer r; on the
	// spill path the records go to disk instead and mapRuns[m][r] holds
	// the run files of the (m, r) segment.
	mapOut := make([][]bucketArena, numMappers)
	var mapRuns [][][]spill.RunFile
	if spillCfg != nil {
		mapRuns = make([][][]spill.RunFile, numMappers)
	}
	mapTasks := make([]cluster.Task, numMappers)
	for m := 0; m < numMappers; m++ {
		m := m
		split := rj.splits[m]
		attempts := 0
		mapTasks[m] = cluster.Task{
			Name:      fmt.Sprintf("%s-map-%d", job.Name, m),
			Preferred: split.Hosts(),
			Run: func(node string, slot int) (err error) {
				attempts++
				attempt := attempts
				// A panicking mapper (user code or fault injector) becomes a
				// failed attempt with an Err-bearing History record, flowing
				// through the same retry budget as a returned error.
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("map task %d on %s: panic: %v", m, node, p)
						res.History.add(TaskRecord{Phase: PhaseMap, TaskID: m, Attempt: attempt, Node: node, Slot: slot, Err: err.Error()})
					}
				}()
				ctx := &TaskContext{
					Job:         job.Name,
					TaskID:      m,
					Attempt:     attempt,
					NumMappers:  numMappers,
					NumReducers: numReducers,
					Node:        node,
					Cache:       job.Cache,
					Counters:    NewCounters(),
				}
				if tr != nil {
					ctx.Trace, ctx.Track = tr, cluster.SlotTrack(node, slot)
				}
				if e.FaultInjector != nil {
					if err := e.FaultInjector(PhaseMap, m, attempt); err != nil {
						res.History.add(TaskRecord{Phase: PhaseMap, TaskID: m, Attempt: attempt, Node: node, Slot: slot, Err: err.Error()})
						return err
					}
				}
				if simSem != nil {
					simSem <- struct{}{}
					defer func() { <-simSem }()
				}
				taskStart := time.Now()
				startOff := taskStart.Sub(jobStart)
				buckets, err := attemptMap(job, rj, split, ctx)
				if err != nil {
					err = fmt.Errorf("map task %d on %s: %w", m, node, err)
					res.History.add(TaskRecord{
						Phase: PhaseMap, TaskID: m, Attempt: attempt,
						Node: node, Slot: slot, Start: startOff, Duration: time.Since(taskStart), Err: err.Error(),
					})
					return err
				}
				var runs [][]spill.RunFile
				if spillCfg != nil {
					if runs, err = spillMapBuckets(spillCfg, buckets, m, attempt); err != nil {
						err = fmt.Errorf("map task %d on %s: spilling output: %w", m, node, err)
						res.History.add(TaskRecord{
							Phase: PhaseMap, TaskID: m, Attempt: attempt,
							Node: node, Slot: slot, Start: startOff, Duration: time.Since(taskStart), Err: err.Error(),
						})
						return err
					}
				}
				// Install output and counters only on success.
				dur := time.Since(taskStart)
				if mapDurs != nil {
					mapDurs[m] = dur
				}
				if tr != nil {
					tr.Metrics().Observe("mr.task.map.ns", int64(dur))
					spilled := int64(0)
					for i := range buckets {
						spilled += buckets[i].payloadBytes()
					}
					for _, rs := range runs {
						for _, rf := range rs {
							spilled += rf.PayloadBytes
						}
					}
					tr.Metrics().Observe("mr.spill.map.bytes", spilled)
				}
				res.History.add(TaskRecord{
					Phase: PhaseMap, TaskID: m, Attempt: attempt,
					Node: node, Slot: slot, Start: startOff, Duration: dur,
				})
				if spillCfg != nil {
					mapRuns[m] = runs
				} else {
					mapOut[m] = buckets
				}
				res.Counters.Merge(ctx.Counters)
				return nil
			},
		}
	}
	mapErr := e.cluster.RunContext(ctx, mapTasks, rj.maxAttempts, &res.ClusterStats)
	mapSpan.EndWith(stateArg(mapErr))
	if mapErr != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, mapErr)
	}
	res.MapTime = time.Since(mapStart)
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	// ---- Shuffle ---------------------------------------------------------
	// Each reducer's arenas are concatenated (mapper order preserved) and an
	// offset index is sorted by raw key bytes; equal keys keep arrival
	// order, so values group per key in (mapper index, emission order) —
	// byte-identical to the hash-of-strings grouping this replaced. The
	// sort work happens driver-side, outside measured task bodies, exactly
	// where the old grouping ran.
	reduceStart := time.Now()
	shuffleSpan := tr.Start(obs.DriverTrack, "shuffle", obs.CatPhase)
	var (
		reduceIn        []bucketArena
		perReducerBytes []int64
		err             error
	)
	if spillCfg != nil {
		// Spilled jobs shuffle lazily: each reduce attempt merges its run
		// files itself, so this phase only accounts volumes.
		perReducerBytes = e.spilledShuffleStats(mapRuns, rj, res, tr)
	} else {
		reduceIn, perReducerBytes, err = e.shuffleMapOutput(mapOut, rj, res, tr)
	}
	shuffleSpan.EndWith(stateArg(err))
	if err != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	// ---- Reduce phase ----------------------------------------------------
	reduceSpan := tr.Start(obs.DriverTrack, "reduce", obs.CatPhase)
	reduceOut := make([][]Record, numReducers)
	reduceTasks := make([]cluster.Task, numReducers)
	for r := 0; r < numReducers; r++ {
		r := r
		var (
			in     *bucketArena
			idx    []int32
			groups []span
		)
		if spillCfg == nil {
			in = &reduceIn[r]
			idx = in.sortedIndex()
			groups = in.groupRuns(idx)
		}
		attempts := 0
		reduceTasks[r] = cluster.Task{
			Name: fmt.Sprintf("%s-reduce-%d", job.Name, r),
			Run: func(node string, slot int) (err error) {
				attempts++
				attempt := attempts
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("reduce task %d on %s: panic: %v", r, node, p)
						res.History.add(TaskRecord{Phase: PhaseReduce, TaskID: r, Attempt: attempt, Node: node, Slot: slot, Err: err.Error()})
					}
				}()
				ctx := &TaskContext{
					Job:         job.Name,
					TaskID:      r,
					Attempt:     attempt,
					NumMappers:  numMappers,
					NumReducers: numReducers,
					Node:        node,
					Cache:       job.Cache,
					Counters:    NewCounters(),
				}
				if tr != nil {
					ctx.Trace, ctx.Track = tr, cluster.SlotTrack(node, slot)
				}
				if e.FaultInjector != nil {
					if err := e.FaultInjector(PhaseReduce, r, attempt); err != nil {
						res.History.add(TaskRecord{Phase: PhaseReduce, TaskID: r, Attempt: attempt, Node: node, Slot: slot, Err: err.Error()})
						return err
					}
				}
				if simSem != nil {
					simSem <- struct{}{}
					defer func() { <-simSem }()
				}
				taskStart := time.Now()
				startOff := taskStart.Sub(jobStart)
				var out bucketArena
				if spillCfg != nil {
					out, err = e.spilledReduce(job, rj, spillCfg, mapRuns, r, attempt, ctx, res.Counters)
				} else {
					out, err = attemptReduce(job, &arenaGroups{in: in, idx: idx, groups: groups}, ctx)
				}
				if err != nil {
					err = fmt.Errorf("reduce task %d on %s: %w", r, node, err)
					res.History.add(TaskRecord{
						Phase: PhaseReduce, TaskID: r, Attempt: attempt,
						Node: node, Slot: slot, Start: startOff, Duration: time.Since(taskStart), Err: err.Error(),
					})
					return err
				}
				dur := time.Since(taskStart)
				if reduceDurs != nil {
					reduceDurs[r] = dur
				}
				tr.Metrics().Observe("mr.task.reduce.ns", int64(dur))
				res.History.add(TaskRecord{
					Phase: PhaseReduce, TaskID: r, Attempt: attempt,
					Node: node, Slot: slot, Start: startOff, Duration: dur,
				})
				reduceOut[r] = out.records()
				res.Counters.Merge(ctx.Counters)
				return nil
			},
		}
	}
	reduceErr := e.cluster.RunContext(ctx, reduceTasks, rj.maxAttempts, &res.ClusterStats)
	reduceSpan.EndWith(stateArg(reduceErr))
	if reduceErr != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", job.Name, reduceErr)
	}
	res.ReduceTime = time.Since(reduceStart)

	if e.Sim != nil {
		res.SimulatedTime = e.Sim.simulate(mapDurs, reduceDurs, perReducerBytes, e.cluster.SlotSpeeds())
	}
	for r := 0; r < numReducers; r++ {
		res.Output = append(res.Output, reduceOut[r]...)
	}
	return res, nil
}
