package mapreduce

import (
	"fmt"
	"time"

	"mrskyline/internal/cluster"
)

// Phase identifies the half of a job a task belongs to; the fault injector
// receives it.
type Phase int

const (
	// PhaseMap marks map tasks.
	PhaseMap Phase = iota
	// PhaseReduce marks reduce tasks.
	PhaseReduce
)

// String implements fmt.Stringer for Phase.
func (p Phase) String() string {
	if p == PhaseMap {
		return "map"
	}
	return "reduce"
}

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in errors and logs.
	Name string
	// Input supplies the splits; required.
	Input Input
	// NumMappers is the desired mapper count. Chunkable inputs honour it;
	// block-backed inputs derive the count from their block layout.
	// Defaults to the cluster's total slot count.
	NumMappers int
	// NumReducers is the reduce task count; defaults to 1 (the shape of
	// MR-BNL, MR-Angle and MR-GPSRS).
	NumReducers int
	// NewMapper constructs a fresh Mapper per map-task attempt; required.
	NewMapper func() Mapper
	// NewReducer constructs a fresh Reducer per reduce-task attempt;
	// required unless NumReducers is 0 and the job is map-only... reduce
	// is always present in this repository, so it is simply required.
	NewReducer func() Reducer
	// Partition routes map-output keys to reducers; defaults to
	// HashPartition.
	Partition PartitionFunc
	// NewCombiner, when non-nil, constructs a map-side combiner per map
	// task; see Combiner.
	NewCombiner func() Combiner
	// Cache is the distributed cache content shipped to every task.
	Cache Cache
	// MaxAttempts bounds per-task attempts (default 3, mirroring Hadoop's
	// mapred.map.max.attempts spirit).
	MaxAttempts int
}

// Result is a finished job's output.
type Result struct {
	// Output contains every record emitted by the reducers. Records are
	// ordered by reduce task, then emission order, so results are
	// deterministic for deterministic jobs.
	Output []Record
	// Counters are the job's aggregated counters (successful attempts
	// only).
	Counters *Counters
	// ClusterStats records scheduling telemetry for both phases.
	ClusterStats cluster.Stats
	// MapTime and ReduceTime are the wall-clock durations of the two
	// phases (shuffle accounted to the reduce phase, as Hadoop reports).
	MapTime    time.Duration
	ReduceTime time.Duration
	// SimulatedTime is the job's modelled duration on the simulated
	// cluster; zero unless the engine carries a SimConfig. See SimConfig.
	SimulatedTime time.Duration
	// History records every task attempt of the job.
	History *History
}

// Engine executes jobs on a simulated cluster.
type Engine struct {
	cluster *cluster.Cluster
	// FaultInjector, when non-nil, is invoked at the start of every task
	// attempt; a non-nil return fails the attempt. Tests use it to
	// exercise retry behaviour.
	FaultInjector func(phase Phase, taskID, attempt int) error
	// Sim, when non-nil, turns on simulated-time accounting: concurrent
	// task bodies are bounded by SimConfig.MeasureParallelism for
	// contention-free measurement and Result gains a SimulatedTime
	// computed from the cluster schedule. See SimConfig.
	Sim *SimConfig
}

// NewEngine creates an engine on the given cluster.
func NewEngine(c *cluster.Cluster) *Engine {
	return &Engine{cluster: c}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// combineBuckets applies a map-side combiner to every per-reducer bucket:
// records are grouped by key (in byte order, for determinism, via the same
// sort-based grouping the shuffle uses), folded through the combiner, and
// re-emitted into fresh arenas.
func combineBuckets(c Combiner, buckets []bucketArena) ([]bucketArena, error) {
	out := make([]bucketArena, len(buckets))
	for r := range buckets {
		b := &buckets[r]
		if b.len() == 0 {
			continue
		}
		idx := b.sortedIndex()
		var dst bucketArena
		for _, g := range b.groupRuns(idx) {
			key := b.key(int(idx[g.lo]))
			values := make([][]byte, 0, g.hi-g.lo)
			for _, i := range idx[g.lo:g.hi] {
				values = append(values, b.value(int(i)))
			}
			vals, err := c.Combine(key, values)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				dst.add(key, v)
			}
		}
		out[r] = dst
	}
	return out, nil
}

// Run executes the job and returns its result. The first task failure
// (after retries) aborts the job.
func (e *Engine) Run(job *Job) (*Result, error) {
	if job.Input == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no input", job.Name)
	}
	if job.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if job.NewReducer == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no reducer", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers < 1 {
		numReducers = 1
	}
	partition := job.Partition
	if partition == nil {
		partition = HashPartition
	}
	maxAttempts := job.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 3
	}
	mapperHint := job.NumMappers
	if mapperHint < 1 {
		mapperHint = e.cluster.TotalSlots()
	}

	splits, err := job.Input.Splits(mapperHint)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: splitting input: %w", job.Name, err)
	}
	numMappers := len(splits)
	res := &Result{Counters: NewCounters(), History: &History{}}

	// Simulated-time instrumentation: a counting semaphore bounds how many
	// task bodies run while being measured. At the default capacity
	// (min(GOMAXPROCS, cluster slots)) every in-flight task is one
	// CPU-bound goroutine on its own core, so per-task measurements stay
	// contention-free in practice while the suite uses the whole host;
	// capacity 1 restores strict serial isolation. See
	// SimConfig.MeasureParallelism for the fidelity trade-off.
	var (
		simSem     chan struct{}
		mapDurs    []time.Duration
		reduceDurs []time.Duration
	)
	if e.Sim != nil {
		simSem = make(chan struct{}, e.Sim.measureSlots(e.cluster.TotalSlots()))
		mapDurs = make([]time.Duration, numMappers)
		reduceDurs = make([]time.Duration, numReducers)
	}

	// ---- Map phase -------------------------------------------------------
	mapStart := time.Now()
	// mapOut[m][r] holds mapper m's records destined for reducer r.
	mapOut := make([][]bucketArena, numMappers)
	mapTasks := make([]cluster.Task, numMappers)
	for m := 0; m < numMappers; m++ {
		m := m
		split := splits[m]
		attempts := 0
		mapTasks[m] = cluster.Task{
			Name:      fmt.Sprintf("%s-map-%d", job.Name, m),
			Preferred: split.Hosts(),
			Run: func(node string) error {
				attempts++
				ctx := &TaskContext{
					Job:         job.Name,
					TaskID:      m,
					Attempt:     attempts,
					NumMappers:  numMappers,
					NumReducers: numReducers,
					Node:        node,
					Cache:       job.Cache,
					Counters:    NewCounters(),
				}
				if e.FaultInjector != nil {
					if err := e.FaultInjector(PhaseMap, m, attempts); err != nil {
						res.History.add(TaskRecord{Phase: PhaseMap, TaskID: m, Attempt: attempts, Node: node, Err: err.Error()})
						return err
					}
				}
				if simSem != nil {
					simSem <- struct{}{}
					defer func() { <-simSem }()
				}
				taskStart := time.Now()
				record := func(err error) {
					msg := ""
					if err != nil {
						msg = err.Error()
					}
					res.History.add(TaskRecord{
						Phase: PhaseMap, TaskID: m, Attempt: attempts,
						Node: node, Duration: time.Since(taskStart), Err: msg,
					})
				}
				buckets := make([]bucketArena, numReducers)
				emitted := int64(0)
				// A partitioner that routes outside [0, numReducers) fails
				// the task attempt — recorded here and surfaced after the
				// mapper returns, so it flows through the cluster's retry
				// and MaxAttempts machinery like any other task error
				// instead of panicking past it.
				var emitErr error
				emit := func(key, value []byte) {
					if emitErr != nil {
						return
					}
					r := partition(key, numReducers)
					if r < 0 || r >= numReducers {
						emitErr = fmt.Errorf("partitioner returned %d for %d reducers (key %q)", r, numReducers, key)
						return
					}
					buckets[r].add(key, value)
					emitted++
				}
				mapper := job.NewMapper()
				inRecords := int64(0)
				err := split.Each(func(rec Record) error {
					inRecords++
					return mapper.Map(ctx, rec, emit)
				})
				if err == nil {
					err = mapper.Flush(ctx, emit)
				}
				if err == nil {
					err = emitErr
				}
				if err != nil {
					err = fmt.Errorf("map task %d on %s: %w", m, node, err)
					record(err)
					return err
				}
				if job.NewCombiner != nil {
					buckets, err = combineBuckets(job.NewCombiner(), buckets)
					if err != nil {
						err = fmt.Errorf("map task %d on %s: combiner: %w", m, node, err)
						record(err)
						return err
					}
				}
				ctx.Counters.Add(CounterMapInputRecords, inRecords)
				ctx.Counters.Add(CounterMapOutputRecords, emitted)
				// Install output and counters only on success.
				if mapDurs != nil {
					mapDurs[m] = time.Since(taskStart)
				}
				record(nil)
				mapOut[m] = buckets
				res.Counters.Merge(ctx.Counters)
				return nil
			},
		}
	}
	if err := e.cluster.Run(mapTasks, maxAttempts, &res.ClusterStats); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	res.MapTime = time.Since(mapStart)

	// ---- Shuffle ---------------------------------------------------------
	// Each reducer's arenas are concatenated (mapper order preserved) and an
	// offset index is sorted by raw key bytes; equal keys keep arrival
	// order, so values group per key in (mapper index, emission order) —
	// byte-identical to the hash-of-strings grouping this replaced. The
	// sort work happens driver-side, outside measured task bodies, exactly
	// where the old grouping ran.
	reduceStart := time.Now()
	reduceIn := make([]bucketArena, numReducers)
	perReducerBytes := make([]int64, numReducers)
	shuffleBytes := int64(0)
	for r := 0; r < numReducers; r++ {
		var dataLen, recCount int
		for m := 0; m < numMappers; m++ {
			dataLen += len(mapOut[m][r].data)
			recCount += len(mapOut[m][r].recs)
		}
		reduceIn[r].data = make([]byte, 0, dataLen)
		reduceIn[r].recs = make([]arenaRec, 0, recCount)
		for m := 0; m < numMappers; m++ {
			reduceIn[r].absorb(&mapOut[m][r])
			mapOut[m][r] = bucketArena{} // release as we go
		}
		n := reduceIn[r].payloadBytes()
		shuffleBytes += n
		perReducerBytes[r] += n
	}
	res.Counters.Add(CounterShuffleBytes, shuffleBytes)

	// ---- Reduce phase ----------------------------------------------------
	reduceOut := make([][]Record, numReducers)
	reduceTasks := make([]cluster.Task, numReducers)
	for r := 0; r < numReducers; r++ {
		r := r
		in := &reduceIn[r]
		idx := in.sortedIndex()
		groups := in.groupRuns(idx)
		attempts := 0
		reduceTasks[r] = cluster.Task{
			Name: fmt.Sprintf("%s-reduce-%d", job.Name, r),
			Run: func(node string) error {
				attempts++
				ctx := &TaskContext{
					Job:         job.Name,
					TaskID:      r,
					Attempt:     attempts,
					NumMappers:  numMappers,
					NumReducers: numReducers,
					Node:        node,
					Cache:       job.Cache,
					Counters:    NewCounters(),
				}
				if e.FaultInjector != nil {
					if err := e.FaultInjector(PhaseReduce, r, attempts); err != nil {
						res.History.add(TaskRecord{Phase: PhaseReduce, TaskID: r, Attempt: attempts, Node: node, Err: err.Error()})
						return err
					}
				}
				if simSem != nil {
					simSem <- struct{}{}
					defer func() { <-simSem }()
				}
				taskStart := time.Now()
				record := func(err error) {
					msg := ""
					if err != nil {
						msg = err.Error()
					}
					res.History.add(TaskRecord{
						Phase: PhaseReduce, TaskID: r, Attempt: attempts,
						Node: node, Duration: time.Since(taskStart), Err: msg,
					})
				}
				var out bucketArena
				emitted := int64(0)
				emit := func(key, value []byte) {
					out.add(key, value)
					emitted++
				}
				reducer := job.NewReducer()
				inRecords := int64(0)
				for _, g := range groups {
					key := in.key(int(idx[g.lo]))
					vals := make([][]byte, 0, g.hi-g.lo)
					for _, i := range idx[g.lo:g.hi] {
						vals = append(vals, in.value(int(i)))
					}
					inRecords += int64(len(vals))
					if err := reducer.Reduce(ctx, key, vals, emit); err != nil {
						err = fmt.Errorf("reduce task %d on %s: %w", r, node, err)
						record(err)
						return err
					}
				}
				if err := reducer.Flush(ctx, emit); err != nil {
					err = fmt.Errorf("reduce task %d on %s: %w", r, node, err)
					record(err)
					return err
				}
				ctx.Counters.Add(CounterReduceInputKeys, int64(len(groups)))
				ctx.Counters.Add(CounterReduceInputRecords, inRecords)
				ctx.Counters.Add(CounterReduceOutputRecords, emitted)
				if reduceDurs != nil {
					reduceDurs[r] = time.Since(taskStart)
				}
				record(nil)
				reduceOut[r] = out.records()
				res.Counters.Merge(ctx.Counters)
				return nil
			},
		}
	}
	if err := e.cluster.Run(reduceTasks, maxAttempts, &res.ClusterStats); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	res.ReduceTime = time.Since(reduceStart)

	if e.Sim != nil {
		res.SimulatedTime = e.Sim.simulate(mapDurs, reduceDurs, perReducerBytes, e.cluster.SlotSpeeds())
	}
	for r := 0; r < numReducers; r++ {
		res.Output = append(res.Output, reduceOut[r]...)
	}
	return res, nil
}
