package mapreduce

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"hash/fnv"
	"slices"
)

// The shuffle stores map output in per-reducer arenas instead of one
// []Record per bucket: emitted key and value bytes are appended to a single
// flat byte slice and each record is described by a fixed-size offset
// triple. Grouping for the reduce phase is sort-based — an index over the
// records is ordered by raw key bytes, exactly as Hadoop's sort-merge
// shuffle orders its spills — which removes the per-record string
// conversion, the map[string][][]byte, and the sort.Strings pass of the
// hash-based grouping this replaced. Reduce-key order (lexicographic byte
// order) and per-key value order (mapper index, then emission order) are
// unchanged.

// arenaRec locates one record inside a bucketArena: the key starts at off,
// the value immediately follows it.
type arenaRec struct {
	off  int
	klen int32
	vlen int32
}

// bucketArena accumulates the records of one shuffle bucket. The zero value
// is an empty, ready-to-use arena.
type bucketArena struct {
	data []byte
	recs []arenaRec
}

// add copies one key/value pair into the arena. Because the bytes are
// copied here, emitters are free to reuse their scratch buffers — the basis
// of the Emitter contract.
func (a *bucketArena) add(key, value []byte) {
	off := len(a.data)
	a.data = append(a.data, key...)
	a.data = append(a.data, value...)
	a.recs = append(a.recs, arenaRec{off: off, klen: int32(len(key)), vlen: int32(len(value))})
}

// len returns the record count.
func (a *bucketArena) len() int { return len(a.recs) }

// payloadBytes returns the total key+value volume, the quantity
// CounterShuffleBytes measures.
func (a *bucketArena) payloadBytes() int64 { return int64(len(a.data)) }

// key returns record i's key. Zero-length keys come back nil, matching the
// nil-key records many mappers emit. The capacity is clamped so appending
// to the view cannot clobber the neighbouring record.
func (a *bucketArena) key(i int) []byte {
	r := a.recs[i]
	if r.klen == 0 {
		return nil
	}
	end := r.off + int(r.klen)
	return a.data[r.off:end:end]
}

// value returns record i's value (nil when empty), capacity-clamped like
// key.
func (a *bucketArena) value(i int) []byte {
	r := a.recs[i]
	if r.vlen == 0 {
		return nil
	}
	lo := r.off + int(r.klen)
	end := lo + int(r.vlen)
	return a.data[lo:end:end]
}

// checksum hashes the segment's payload and record framing (FNV-1a). The
// engine records one checksum per (mapper, reducer) segment when a
// FaultPlan is active and verifies each fetch against it, the role
// Hadoop's IFile checksums play for map-output transfers: a corrupted
// fetch is detected and re-pulled instead of silently grouped.
func (a *bucketArena) checksum() uint64 {
	h := fnv.New64a()
	h.Write(a.data)
	var buf [8]byte
	for _, r := range a.recs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(r.klen))
		binary.LittleEndian.PutUint32(buf[4:], uint32(r.vlen))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// clone deep-copies the arena; the corrupted first fetch of a segment
// mutates a clone so the pristine original survives for the refetch.
func (a *bucketArena) clone() bucketArena {
	return bucketArena{
		data: append([]byte(nil), a.data...),
		recs: append([]arenaRec(nil), a.recs...),
	}
}

// absorb appends every record of src to a, preserving order.
func (a *bucketArena) absorb(src *bucketArena) {
	base := len(a.data)
	a.data = append(a.data, src.data...)
	for _, r := range src.recs {
		r.off += base
		a.recs = append(a.recs, r)
	}
}

// sortKey pairs a record index with the big-endian packing of its key's
// first eight bytes plus the key length. Prefix order agrees with
// lexicographic byte order whenever the prefixes differ (shorter keys
// zero-pad, and a zero pad byte only collides with a real 0x00 key byte — a
// prefix tie). On a prefix tie, keys of at most eight bytes order by length
// alone: equal prefixes mean the shorter key is the longer one's prefix. So
// the arena is only touched when two keys longer than eight bytes collide
// on their prefix — every other comparison is integer arithmetic on the
// 16-byte sortKey itself.
type sortKey struct {
	prefix uint64
	klen   int32
	idx    int32
}

func keyPrefix(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var p uint64
	for i, b := range k {
		p |= uint64(b) << (56 - 8*i)
	}
	return p
}

// sortedIndex returns the arena's record indices ordered by key bytes,
// ties broken by arrival order. Records absorbed mapper-by-mapper therefore
// group per key in (mapper index, emission order) — the engine's documented
// value order.
func (a *bucketArena) sortedIndex() []int32 {
	sk := make([]sortKey, len(a.recs))
	for i := range sk {
		sk[i] = sortKey{prefix: keyPrefix(a.key(i)), klen: a.recs[i].klen, idx: int32(i)}
	}
	slices.SortFunc(sk, func(x, y sortKey) int {
		if x.prefix != y.prefix {
			return cmp.Compare(x.prefix, y.prefix)
		}
		if x.klen > 8 && y.klen > 8 {
			if c := bytes.Compare(a.key(int(x.idx))[8:], a.key(int(y.idx))[8:]); c != 0 {
				return c
			}
		} else if x.klen != y.klen {
			return cmp.Compare(x.klen, y.klen)
		}
		return cmp.Compare(x.idx, y.idx)
	})
	idx := make([]int32, len(sk))
	for i, k := range sk {
		idx[i] = k.idx
	}
	return idx
}

// span is one key's run inside a sorted index.
type span struct{ lo, hi int32 }

// groupRuns slices a sorted index into per-key runs.
func (a *bucketArena) groupRuns(idx []int32) []span {
	var groups []span
	for i := 0; i < len(idx); {
		key := a.key(int(idx[i]))
		j := i + 1
		for j < len(idx) && bytes.Equal(a.key(int(idx[j])), key) {
			j++
		}
		groups = append(groups, span{lo: int32(i), hi: int32(j)})
		i = j
	}
	return groups
}

// records materializes the arena as []Record views for Result.Output.
func (a *bucketArena) records() []Record {
	if a.len() == 0 {
		return nil
	}
	out := make([]Record, a.len())
	for i := range out {
		out[i] = Record{Key: a.key(i), Value: a.value(i)}
	}
	return out
}
