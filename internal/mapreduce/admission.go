package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mrskyline/internal/obs"
)

// ErrQueueFull is returned by RunContext when the admission queue is at
// capacity; callers (e.g. an HTTP front-end) should surface it as
// backpressure rather than retry immediately.
var ErrQueueFull = errors.New("mapreduce: admission queue full")

// admission is the engine's job admission controller: at most maxInFlight
// jobs execute at once, and up to maxQueued further submissions wait in
// FIFO order. A waiter whose context is cancelled leaves the queue; a slot
// freed by a finishing job is handed to the oldest waiter.
type admission struct {
	mu          sync.Mutex
	maxInFlight int
	maxQueued   int // < 0 means unlimited
	inFlight    int
	queue       []chan struct{}
}

// SetAdmission installs an admission controller on the engine: at most
// maxInFlight concurrent RunContext calls execute (values < 1 clamp to 1),
// and at most maxQueued further calls wait FIFO for a slot — beyond that,
// submissions fail fast with ErrQueueFull. A negative maxQueued leaves the
// queue unbounded; maxQueued 0 rejects whenever all in-flight slots are
// busy. Call before submitting jobs; not synchronized with running ones.
//
// Admission decisions are recorded on the engine tracer: one CatQueue span
// per submission on the driver track, mr.queue.wait.ns wait-time samples,
// mr.queue.{depth,inflight} gauges and mr.queue.{admitted,rejected,
// canceled} counters.
func (e *Engine) SetAdmission(maxInFlight, maxQueued int) {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	e.admission = &admission{maxInFlight: maxInFlight, maxQueued: maxQueued}
}

// AdmissionStats reports the controller's instantaneous state: jobs
// currently executing and jobs waiting in the queue. Both are 0 when no
// controller is installed.
func (e *Engine) AdmissionStats() (inFlight, queued int) {
	a := e.admission
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, len(a.queue)
}

// admit blocks until the job may execute, recording the wait as a span and
// metrics on the engine tracer (the queue is engine-level state, so its
// telemetry stays on the engine tracer even for jobs carrying their own).
func (e *Engine) admit(ctx context.Context, jobName string) error {
	a, tr := e.admission, e.trace
	sp := tr.Start(obs.DriverTrack, "queue:"+jobName, obs.CatQueue)
	start := time.Now()
	err := a.acquire(ctx, tr.Metrics())
	tr.Metrics().Observe("mr.queue.wait.ns", int64(time.Since(start)))
	state := "admitted"
	switch {
	case err == nil:
		tr.Metrics().Count("mr.queue.admitted", 1)
	case errors.Is(err, ErrQueueFull):
		state = "rejected"
		tr.Metrics().Count("mr.queue.rejected", 1)
	default:
		state = "canceled"
		tr.Metrics().Count("mr.queue.canceled", 1)
	}
	sp.EndWith(obs.Arg{Key: "state", Value: state})
	if err != nil {
		return fmt.Errorf("mapreduce: job %q: %w", jobName, err)
	}
	return nil
}

// gauges publishes the controller's state; callers hold a.mu.
func (a *admission) gauges(reg *obs.Registry) {
	reg.Gauge("mr.queue.depth", int64(len(a.queue)))
	reg.Gauge("mr.queue.inflight", int64(a.inFlight))
}

// acquire claims an execution slot, waiting FIFO behind earlier
// submissions. It returns ErrQueueFull when the queue is at capacity and
// ctx.Err() when the caller's context ends first.
func (a *admission) acquire(ctx context.Context, reg *obs.Registry) error {
	a.mu.Lock()
	if a.inFlight < a.maxInFlight && len(a.queue) == 0 {
		a.inFlight++
		a.gauges(reg)
		a.mu.Unlock()
		return nil
	}
	if a.maxQueued >= 0 && len(a.queue) >= a.maxQueued {
		a.mu.Unlock()
		return ErrQueueFull
	}
	grant := make(chan struct{})
	a.queue = append(a.queue, grant)
	a.gauges(reg)
	a.mu.Unlock()

	select {
	case <-grant:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, g := range a.queue {
			if g == grant {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.gauges(reg)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// The grant raced the cancellation and won: the slot is ours, so
		// hand it back before reporting the cancellation.
		a.release(reg)
		return ctx.Err()
	}
}

// release returns an execution slot: the oldest waiter inherits it
// directly (inFlight stays constant), otherwise the in-flight count drops.
func (a *admission) release(reg *obs.Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) > 0 {
		grant := a.queue[0]
		a.queue = a.queue[1:]
		a.gauges(reg)
		close(grant)
		return
	}
	a.inFlight--
	a.gauges(reg)
}
