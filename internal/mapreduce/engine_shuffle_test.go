package mapreduce_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// TestPartitionOutOfRangeFailsJob pins the bugfix: a partitioner routing
// outside [0, numReducers) must fail the job through the normal task-error
// path — retried up to MaxAttempts — not panic out of the engine.
func TestPartitionOutOfRangeFailsJob(t *testing.T) {
	e := newEngine(t, 2, 1)
	calls := 0
	job := wordCountJob([]string{"a"}, 1, 2)
	job.MaxAttempts = 2
	job.Partition = func(key []byte, r int) int {
		calls++
		return r // one past the last valid reducer
	}
	_, err := e.Run(job)
	if err == nil || !strings.Contains(err.Error(), "partitioner") {
		t.Fatalf("err = %v, want partitioner error", err)
	}
	// One partition call per attempt: the error must have gone through the
	// retry machinery, not aborted on first touch.
	if calls != 2 {
		t.Errorf("partitioner called %d times, want 2 (one per attempt)", calls)
	}
}

// shuffleEmissions generates mapper m's deterministic emissions for the
// reference test: duplicate keys within and across mappers, nil keys, and
// empty values.
func shuffleEmissions(m int) []mapreduce.Record {
	rng := rand.New(rand.NewSource(int64(m) + 1))
	n := 20 + rng.Intn(20)
	out := make([]mapreduce.Record, n)
	for i := range out {
		var key []byte
		if rng.Intn(8) != 0 {
			key = []byte(fmt.Sprintf("k%02d", rng.Intn(6)))
		}
		var val []byte
		if vlen := rng.Intn(12); vlen > 0 {
			val = make([]byte, vlen)
			rng.Read(val)
		}
		out[i] = mapreduce.Record{Key: key, Value: val}
	}
	return out
}

// TestShuffleMatchesReferenceGrouping replays the old shuffle —
// map[string][][]byte per reducer plus sort.Strings — driver-side and
// demands the engine's sort-based path produce byte-identical output,
// identical shuffle-byte accounting, and the same reduce-key order.
func TestShuffleMatchesReferenceGrouping(t *testing.T) {
	const mappers, reducers = 4, 3
	e := newEngine(t, 3, 2)
	recs := make([]mapreduce.Record, mappers)
	for i := range recs {
		recs[i] = mapreduce.Record{Value: []byte{byte(i)}}
	}
	job := &mapreduce.Job{
		Name:        "shuffle-ref",
		Input:       mapreduce.MemoryInput{Records: recs},
		NumMappers:  mappers,
		NumReducers: reducers,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					for _, r := range shuffleEmissions(int(rec.Value[0])) {
						emit(r.Key, r.Value)
					}
					return nil
				},
			}
		},
		NewReducer: identityReducer(),
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: route the same emissions with the default partitioner, group
	// per reducer with the replaced map+sort.Strings scheme, and flatten in
	// reducer order (the identity reducer emits each value under its key).
	var want []mapreduce.Record
	var wantBytes int64
	perReducer := make([][]mapreduce.Record, reducers)
	for m := 0; m < mappers; m++ {
		for _, r := range shuffleEmissions(m) {
			p := mapreduce.HashPartition(r.Key, reducers)
			perReducer[p] = append(perReducer[p], r)
			wantBytes += int64(len(r.Key) + len(r.Value))
		}
	}
	for _, bucket := range perReducer {
		groups := make(map[string][][]byte)
		for _, r := range bucket {
			groups[string(r.Key)] = append(groups[string(r.Key)], r.Value)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, v := range groups[k] {
				want = append(want, mapreduce.Record{Key: []byte(k), Value: v})
			}
		}
	}

	if len(res.Output) != len(want) {
		t.Fatalf("output has %d records, want %d", len(res.Output), len(want))
	}
	for i := range want {
		if !bytes.Equal(res.Output[i].Key, want[i].Key) || !bytes.Equal(res.Output[i].Value, want[i].Value) {
			t.Fatalf("output[%d] = {%q %q}, want {%q %q}",
				i, res.Output[i].Key, res.Output[i].Value, want[i].Key, want[i].Value)
		}
	}
	if got := res.Counters.Get(mapreduce.CounterShuffleBytes); got != wantBytes {
		t.Errorf("shuffle bytes = %d, want %d", got, wantBytes)
	}
}

// TestMeasureParallelismOutputParity checks the fidelity contract: parallel
// measurement may only change wall-clock, never the job's output, counters,
// or the fact that simulated time is accounted.
func TestMeasureParallelismOutputParity(t *testing.T) {
	input := []string{"b a c a", "d c b a", "e f g", "a a a"}
	run := func(par int) *mapreduce.Result {
		t.Helper()
		e := newEngine(t, 4, 2)
		e.Sim = &mapreduce.SimConfig{MeasureParallelism: par}
		res, err := e.Run(wordCountJob(input, 4, 3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if serial.SimulatedTime <= 0 || parallel.SimulatedTime <= 0 {
		t.Fatalf("simulated time not accounted: serial %v, parallel %v", serial.SimulatedTime, parallel.SimulatedTime)
	}
	if len(serial.Output) != len(parallel.Output) {
		t.Fatalf("output lengths differ: %d vs %d", len(serial.Output), len(parallel.Output))
	}
	for i := range serial.Output {
		if !bytes.Equal(serial.Output[i].Key, parallel.Output[i].Key) ||
			!bytes.Equal(serial.Output[i].Value, parallel.Output[i].Value) {
			t.Fatalf("output[%d] differs between serial and parallel measurement", i)
		}
	}
	for _, c := range []string{
		mapreduce.CounterMapOutputRecords,
		mapreduce.CounterReduceInputKeys,
		mapreduce.CounterShuffleBytes,
	} {
		if s, p := serial.Counters.Get(c), parallel.Counters.Get(c); s != p {
			t.Errorf("counter %s: serial %d, parallel %d", c, s, p)
		}
	}
}

// benchShuffleJob builds the shuffle-dominated benchmark job: n records
// hashed over keyCard keys, 8 mappers, 4 reducers.
func benchShuffleJob(keyCard, n int) *mapreduce.Job {
	recs := make([]mapreduce.Record, n)
	for i := range recs {
		recs[i] = mapreduce.Record{Value: []byte(fmt.Sprintf("%d %d", i%keyCard, i))}
	}
	return &mapreduce.Job{
		Name:        "bench-shuffle",
		Input:       mapreduce.MemoryInput{Records: recs},
		NumMappers:  8,
		NumReducers: 4,
		NewMapper: func() mapreduce.Mapper {
			var scratch []byte
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					f := bytes.Fields(rec.Value)
					scratch = append(scratch[:0], 'k')
					scratch = append(scratch, f[0]...)
					emit(scratch, f[1])
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					emit(key, []byte{byte(len(values))})
					return nil
				},
			}
		},
	}
}

// BenchmarkShuffle drives a full map-shuffle-reduce job whose cost is
// dominated by the shuffle, across key cardinalities and record counts.
// It runs with the default nil tracer, so comparing its ns/op against the
// pre-instrumentation baseline measures the disabled tracer's overhead
// (the acceptance bar is < 5%); BenchmarkShuffleTraced measures the
// enabled tracer on the same job.
func BenchmarkShuffle(b *testing.B) {
	for _, keyCard := range []int{16, 4096} {
		for _, n := range []int{10_000, 100_000} {
			b.Run(fmt.Sprintf("keys=%d/recs=%d", keyCard, n), func(b *testing.B) {
				c := newEngine(b, 4, 2)
				job := benchShuffleJob(keyCard, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(job); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShuffleTraced is BenchmarkShuffle's mid-size shape with an
// enabled tracer attached, quantifying the full cost of span and metric
// recording relative to BenchmarkShuffle's nil-tracer runs.
func BenchmarkShuffleTraced(b *testing.B) {
	c := newEngine(b, 4, 2)
	c.SetTrace(obs.New())
	job := benchShuffleJob(16, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(job); err != nil {
			b.Fatal(err)
		}
	}
}
