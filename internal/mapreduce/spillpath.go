package mapreduce

import (
	"errors"
	"fmt"
	"os"

	"mrskyline/internal/obs"
	"mrskyline/internal/spill"
)

// The external-memory shuffle path. When the engine carries a spill
// configuration with a positive budget, map outputs are flushed to sorted
// run files on disk (one writer per (mapper, reducer) segment, so runs
// inherit the segment's arrival order) and each reduce attempt lazily
// merges its runs through a budget-bounded merge tree instead of
// materializing a bucketArena. The reducer consumes both shapes through
// the groupSource interface below, which presents the identical
// (key order, per-key value order) stream either way — the basis of the
// spilled-versus-resident byte-identity property the tests pin down.

// groupSource streams one reduce attempt's input as per-key groups in key
// order. Returned slices are valid until the following next call.
type groupSource interface {
	// next returns the next key group; ok is false when the input is
	// cleanly drained.
	next() (key []byte, vals [][]byte, ok bool, err error)
	close()
}

// arenaGroups serves groups from a sorted in-memory arena — the original
// all-in-RAM reduce input. The zero value is an empty source.
type arenaGroups struct {
	in     *bucketArena
	idx    []int32
	groups []span
	pos    int
}

func (g *arenaGroups) next() ([]byte, [][]byte, bool, error) {
	if g.pos >= len(g.groups) {
		return nil, nil, false, nil
	}
	sp := g.groups[g.pos]
	g.pos++
	key := g.in.key(int(g.idx[sp.lo]))
	vals := make([][]byte, 0, sp.hi-sp.lo)
	for _, i := range g.idx[sp.lo:sp.hi] {
		vals = append(vals, g.in.value(int(i)))
	}
	return key, vals, true, nil
}

func (g *arenaGroups) close() {}

// spillGroups adapts the spill package's streaming merge to groupSource.
type spillGroups struct{ g *spill.Groups }

func (s spillGroups) next() ([]byte, [][]byte, bool, error) { return s.g.Next() }
func (s spillGroups) close()                                { s.g.Close() }

// removeRunFiles deletes run files, best effort.
func removeRunFiles(runs []spill.RunFile) {
	for _, rf := range runs {
		os.Remove(rf.Path)
	}
}

// spillArena writes one bucket's records (arrival order preserved)
// through a budget-tracked writer, producing the segment's sorted runs.
// An empty bucket produces no runs.
func spillArena(cfg *spill.Config, b *bucketArena, prefix string, tag int) ([]spill.RunFile, error) {
	if b.len() == 0 {
		return nil, nil
	}
	w := spill.NewWriter(cfg, prefix, tag)
	for i := 0; i < b.len(); i++ {
		if err := w.Add(b.key(i), b.value(i)); err != nil {
			w.Discard()
			return nil, err
		}
	}
	runs, err := w.Finish()
	if err != nil {
		w.Discard()
		return nil, err
	}
	return runs, nil
}

// spillMapBuckets spills every per-reducer bucket of one successful map
// attempt, releasing each arena as it lands on disk. The attempt number
// keys the file names so a retried attempt never collides with a
// previous one's files.
func spillMapBuckets(cfg *spill.Config, buckets []bucketArena, m, attempt int) ([][]spill.RunFile, error) {
	runs := make([][]spill.RunFile, len(buckets))
	for r := range buckets {
		rs, err := spillArena(cfg, &buckets[r], fmt.Sprintf("m%d-a%d-r%d", m, attempt, r), m)
		if err != nil {
			for _, prev := range runs[:r] {
				removeRunFiles(prev)
			}
			return nil, err
		}
		runs[r] = rs
		buckets[r] = bucketArena{}
	}
	return runs, nil
}

// spilledShuffleStats reports shuffle volumes for a spilled job. The data
// is already on disk as per-(mapper, reducer) runs, so "shuffle" is pure
// accounting — the byte movement happens lazily inside each reduce
// attempt's merge.
func (e *Engine) spilledShuffleStats(mapRuns [][][]spill.RunFile, rj *resolvedJob, res *Result, tr *obs.Tracer) []int64 {
	perReducerBytes := make([]int64, rj.numReducers)
	shuffleBytes := int64(0)
	for r := 0; r < rj.numReducers; r++ {
		for m := 0; m < rj.numMappers; m++ {
			for _, rf := range mapRuns[m][r] {
				perReducerBytes[r] += rf.PayloadBytes
			}
		}
		shuffleBytes += perReducerBytes[r]
		tr.Metrics().Observe("mr.shuffle.reducer.bytes", perReducerBytes[r])
	}
	res.Counters.Add(CounterShuffleBytes, shuffleBytes)
	return perReducerBytes
}

// maxSpillRepairs bounds how many corrupt source runs one reduce attempt
// repairs (by re-executing the producing map task) before the attempt
// fails outright and falls back to the cluster's retry budget.
const maxSpillRepairs = 2

// spilledReduce is the reduce attempt body on the spill path: merge this
// reducer's runs under the budget, stream the groups through the reducer,
// and — when a source run fails its checksum — re-execute the map task
// that produced it and retry, the spilled twin of the shuffle refetch.
// attemptMap is free of side effects, so re-running it for repair is
// always safe.
func (e *Engine) spilledReduce(job *Job, rj *resolvedJob, cfg *spill.Config, mapRuns [][][]spill.RunFile, r, attempt int, ctx *TaskContext, counters *Counters) (bucketArena, error) {
	for repair := 0; ; repair++ {
		var runs []spill.RunFile
		for m := range mapRuns {
			runs = append(runs, mapRuns[m][r]...)
		}
		// Each try runs against fresh task counters so a half-consumed
		// corrupt try cannot double-count; only the successful try merges.
		tryCtx := *ctx
		tryCtx.Counters = NewCounters()
		out, err := e.spilledReduceOnce(job, cfg, runs, r, attempt, repair, &tryCtx)
		if err == nil {
			ctx.Counters.Merge(tryCtx.Counters)
			return out, nil
		}
		var ce *spill.CorruptError
		if !errors.As(err, &ce) {
			return bucketArena{}, err
		}
		counters.Add(CounterShuffleCorruptions, 1)
		if ce.Tag < 0 || repair >= maxSpillRepairs {
			return bucketArena{}, err
		}
		if rerr := e.respillMap(job, rj, cfg, mapRuns, ce.Tag, r, attempt, repair); rerr != nil {
			return bucketArena{}, fmt.Errorf("repairing corrupt run: %w", rerr)
		}
	}
}

// spilledReduceOnce performs one merge-and-reduce try. Intermediate merge
// runs live in a per-try directory removed when the try resolves; the
// source runs are never deleted here — they are the repair path's input.
func (e *Engine) spilledReduceOnce(job *Job, cfg *spill.Config, runs []spill.RunFile, r, attempt, repair int, ctx *TaskContext) (bucketArena, error) {
	if len(runs) == 0 {
		return attemptReduce(job, &arenaGroups{}, ctx)
	}
	dir, err := os.MkdirTemp(cfg.Dir, fmt.Sprintf("r%d-a%d-p%d-", r, attempt, repair))
	if err != nil {
		return bucketArena{}, err
	}
	defer os.RemoveAll(dir)
	final, _, err := spill.MergeTree(cfg, dir, "merge", runs)
	if err != nil {
		return bucketArena{}, err
	}
	g, err := spill.NewGroups(cfg, final)
	if err != nil {
		return bucketArena{}, err
	}
	src := spillGroups{g}
	defer src.close()
	return attemptReduce(job, src, ctx)
}

// respillMap re-executes map task m and rewrites its runs for reducer r,
// replacing the corrupt set. Distinct reducers repair distinct
// (m, r) slots, so concurrent repairs of the same mapper never collide.
func (e *Engine) respillMap(job *Job, rj *resolvedJob, cfg *spill.Config, mapRuns [][][]spill.RunFile, m, r, attempt, repair int) error {
	mctx := &TaskContext{
		Job:         job.Name,
		TaskID:      m,
		Attempt:     1,
		NumMappers:  rj.numMappers,
		NumReducers: rj.numReducers,
		Node:        "repair",
		Cache:       job.Cache,
		Counters:    NewCounters(),
	}
	buckets, err := attemptMap(job, rj, rj.splits[m], mctx)
	if err != nil {
		return fmt.Errorf("re-executing map task %d: %w", m, err)
	}
	runs, err := spillArena(cfg, &buckets[r], fmt.Sprintf("m%d-r%d-a%d-p%d", m, r, attempt, repair), m)
	if err != nil {
		return err
	}
	removeRunFiles(mapRuns[m][r])
	mapRuns[m][r] = runs
	return nil
}
