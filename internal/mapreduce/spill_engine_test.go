package mapreduce_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/spill"
)

// indexJob pins down the full shuffle contract: every word maps to the
// list of its occurrence positions, so the reduce output encodes not just
// grouping but the exact per-key value order (mapper index, then emission
// order) — any reordering on the spilled path changes the output bytes.
func indexJob(lines []string, mappers, reducers int) *mapreduce.Job {
	recs := make([]mapreduce.Record, len(lines))
	for i, line := range lines {
		recs[i] = mapreduce.Record{Key: []byte(fmt.Sprintf("L%04d", i)), Value: []byte(line)}
	}
	return &mapreduce.Job{
		Name:        "index",
		Input:       mapreduce.MemoryInput{Records: recs},
		NumMappers:  mappers,
		NumReducers: reducers,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFuncs{
				MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
					for pos, w := range strings.Fields(string(rec.Value)) {
						emit([]byte(w), []byte(fmt.Sprintf("%s:%d", rec.Key, pos)))
					}
					return nil
				},
			}
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFuncs{
				ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
					parts := make([]string, len(values))
					for i, v := range values {
						parts[i] = string(v)
					}
					emit(key, []byte(strings.Join(parts, "|")))
					return nil
				},
			}
		},
	}
}

// randomLines builds a corpus from a small vocabulary so keys collide
// across lines and mappers.
func randomLines(rng *rand.Rand, lines int) []string {
	vocab := []string{"ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen", "ibis", "jay"}
	out := make([]string, lines)
	for i := range out {
		n := 1 + rng.Intn(8)
		words := make([]string, n)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		out[i] = strings.Join(words, " ")
	}
	return out
}

func recordsIdentical(a, b []mapreduce.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestSpilledMatchesInMemory is the spilled-versus-resident differential:
// across 30 seeds of random corpora and task layouts, a job run under a
// tiny spill budget with fan-in 2 (forcing multiple runs per segment and
// multi-round merge trees) must produce byte-identical output and the same
// shuffle byte count as the all-in-RAM engine.
func TestSpilledMatchesInMemory(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	totalRuns, totalRounds := int64(0), int64(0)
	for seed := 1; seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		lines := randomLines(rng, 20+rng.Intn(60))
		mappers := 1 + rng.Intn(5)
		reducers := 1 + rng.Intn(4)

		e := newEngine(t, 2+rng.Intn(3), 1+rng.Intn(2))
		resMem, err := e.Run(indexJob(lines, mappers, reducers))
		if err != nil {
			t.Fatalf("seed %d: in-memory run: %v", seed, err)
		}

		stats := &spill.Stats{}
		e.Spill = &spill.Config{Dir: t.TempDir(), Budget: 256, FanIn: 2, Stats: stats}
		resSp, err := e.Run(indexJob(lines, mappers, reducers))
		if err != nil {
			t.Fatalf("seed %d: spilled run: %v", seed, err)
		}
		e.Spill = nil

		if !recordsIdentical(resMem.Output, resSp.Output) {
			t.Errorf("seed %d (mappers=%d reducers=%d): spilled output differs from in-memory output",
				seed, mappers, reducers)
		}
		if m, s := resMem.Counters.Get(mapreduce.CounterShuffleBytes), resSp.Counters.Get(mapreduce.CounterShuffleBytes); m != s {
			t.Errorf("seed %d: shuffle bytes diverge: in-memory %d, spilled %d", seed, m, s)
		}
		if stats.RunsWritten.Load() == 0 {
			t.Errorf("seed %d: spilled run wrote no run files", seed)
		}
		totalRuns += stats.RunsWritten.Load()
		totalRounds += stats.MergeRounds.Load()
	}
	if totalRounds == 0 {
		t.Errorf("no merge rounds across %d seeds: the 256-byte budget with fan-in 2 should force multi-round merges", seeds)
	}
	t.Logf("across %d seeds: %d runs written, %d merge rounds", seeds, totalRuns, totalRounds)
}

// TestSpilledEmptyReducers covers reducers whose input is empty (no runs at
// all) and jobs whose whole shuffle fits one record.
func TestSpilledEmptyReducers(t *testing.T) {
	e := newEngine(t, 2, 1)
	e.Spill = &spill.Config{Dir: t.TempDir(), Budget: 64, FanIn: 2, Stats: &spill.Stats{}}
	res, err := e.Run(indexJob([]string{"only"}, 2, 4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Output) != 1 || string(res.Output[0].Key) != "only" {
		t.Fatalf("output = %v, want the single word", res.Output)
	}
}

// TestSpilledJobCleansSpillDir: the per-job spill subdirectory is removed
// when the job resolves.
func TestSpilledJobCleansSpillDir(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, 2, 2)
	e.Spill = &spill.Config{Dir: dir, Budget: 128, Stats: &spill.Stats{}}
	if _, err := e.Run(indexJob(randomLines(rand.New(rand.NewSource(9)), 30), 3, 2)); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill dir not cleaned after job: %d entries remain", len(ents))
	}
}

// TestSpilledCorruptSourceRunRepaired: a map-output run corrupted on disk
// before the reduce phase reads it must be detected by its checksum and
// repaired by re-executing the producing map task — the job succeeds with
// the exact fault-free output and counts the corruption.
func TestSpilledCorruptSourceRunRepaired(t *testing.T) {
	lines := randomLines(rand.New(rand.NewSource(11)), 40)

	clean := newEngine(t, 2, 2)
	want, err := clean.Run(indexJob(lines, 3, 2))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	e := newEngine(t, 2, 2)
	e.Spill = &spill.Config{Dir: dir, Budget: 256, FanIn: 2, Stats: &spill.Stats{}}
	var once sync.Once
	corrupted := false
	e.FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if phase != mapreduce.PhaseReduce {
			return nil
		}
		// The reduce phase starting means every map run is on disk; flip
		// one byte in the middle of the first map-output run file.
		once.Do(func() {
			matches, err := filepath.Glob(filepath.Join(dir, "job-*", "m*.run"))
			if err != nil || len(matches) == 0 {
				t.Errorf("no map run files found to corrupt: %v (err %v)", matches, err)
				return
			}
			raw, err := os.ReadFile(matches[0])
			if err != nil {
				t.Errorf("reading run to corrupt: %v", err)
				return
			}
			raw[len(raw)/2] ^= 0xFF
			if err := os.WriteFile(matches[0], raw, 0o600); err != nil {
				t.Errorf("writing corrupted run: %v", err)
				return
			}
			corrupted = true
		})
		return nil
	}
	res, err := e.Run(indexJob(lines, 3, 2))
	if err != nil {
		t.Fatalf("corrupted run did not recover: %v", err)
	}
	if !corrupted {
		t.Fatal("injector never corrupted a run file")
	}
	if !recordsIdentical(res.Output, want.Output) {
		t.Error("recovered output differs from the fault-free output")
	}
	if got := res.Counters.Get(mapreduce.CounterShuffleCorruptions); got < 1 {
		t.Errorf("CounterShuffleCorruptions = %d, want >= 1", got)
	}
}
