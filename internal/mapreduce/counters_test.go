package mapreduce_test

import (
	"sync"
	"testing"

	"mrskyline/internal/mapreduce"
)

func TestCountersAddGet(t *testing.T) {
	c := mapreduce.NewCounters()
	if c.Get("x") != 0 {
		t.Error("fresh counter not zero")
	}
	c.Add("x", 3)
	c.Add("x", 4)
	if got := c.Get("x"); got != 7 {
		t.Errorf("Get = %d", got)
	}
}

func TestCountersSetMax(t *testing.T) {
	c := mapreduce.NewCounters()
	c.SetMax("m", 5)
	c.SetMax("m", 3)
	c.SetMax("m", 9)
	if got := c.GetMax("m"); got != 9 {
		t.Errorf("GetMax = %d", got)
	}
	if c.GetMax("absent") != 0 {
		t.Error("absent max not zero")
	}
}

func TestCountersMerge(t *testing.T) {
	a := mapreduce.NewCounters()
	a.Add("s", 1)
	a.SetMax("m", 10)
	b := mapreduce.NewCounters()
	b.Add("s", 2)
	b.Add("t", 5)
	b.SetMax("m", 7)
	b.SetMax("n", 3)
	a.Merge(b)
	if a.Get("s") != 3 || a.Get("t") != 5 {
		t.Errorf("sums after merge: s=%d t=%d", a.Get("s"), a.Get("t"))
	}
	if a.GetMax("m") != 10 || a.GetMax("n") != 3 {
		t.Errorf("maxes after merge: m=%d n=%d", a.GetMax("m"), a.GetMax("n"))
	}
}

func TestCountersSnapshot(t *testing.T) {
	c := mapreduce.NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	c.SetMax("a", 9)
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Sorted: "a", "a.max", "b".
	if snap[0].Name != "a" || snap[0].Value != 1 ||
		snap[1].Name != "a.max" || snap[1].Value != 9 ||
		snap[2].Name != "b" || snap[2].Value != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := mapreduce.NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
				c.SetMax("m", int64(i*1000+j))
			}
		}(i)
	}
	wg.Wait()
	if c.Get("n") != 8000 {
		t.Errorf("n = %d", c.Get("n"))
	}
	if c.GetMax("m") != 7999 {
		t.Errorf("m = %d", c.GetMax("m"))
	}
}
