package mapreduce

import (
	"sort"
	"sync"
)

// Standard counter names maintained by the engine. User code may add its
// own counters through TaskContext.Counters; names are free-form strings.
const (
	// CounterMapInputRecords counts records fed to Map across all mappers.
	CounterMapInputRecords = "map.input.records"
	// CounterMapOutputRecords counts key-value pairs emitted by mappers.
	CounterMapOutputRecords = "map.output.records"
	// CounterShuffleBytes counts key+value bytes crossing the shuffle.
	CounterShuffleBytes = "shuffle.bytes"
	// CounterReduceInputKeys counts distinct keys seen by reducers.
	CounterReduceInputKeys = "reduce.input.keys"
	// CounterReduceInputRecords counts values fed to Reduce calls.
	CounterReduceInputRecords = "reduce.input.records"
	// CounterReduceOutputRecords counts key-value pairs emitted by reducers.
	CounterReduceOutputRecords = "reduce.output.records"

	// Fault-injection and recovery counters, maintained only when the
	// engine carries a FaultPlan (fault-free runs never create them, so
	// their counter snapshots are unchanged).

	// CounterTaskFailures counts failed task attempts (crashes and genuine
	// task errors; killed attempts are excluded).
	CounterTaskFailures = "task.failures"
	// CounterSpeculativeLaunched counts speculative duplicate attempts
	// launched.
	CounterSpeculativeLaunched = "task.speculative.launched"
	// CounterSpeculativeWon counts tasks where the speculative duplicate
	// finished before the original.
	CounterSpeculativeWon = "task.speculative.won"
	// CounterNodeFailures counts whole-node failures during the job.
	CounterNodeFailures = "node.failures"
	// CounterShuffleCorruptions counts shuffle segments whose first fetch
	// failed checksum verification and were refetched.
	CounterShuffleCorruptions = "shuffle.corruptions"
)

// Counters is a set of named int64 counters with two aggregation modes:
// Add-counters accumulate sums, Max-counters keep the maximum reported
// value. The Figure 11 experiment uses Max-counters to record the busiest
// mapper's and reducer's partition-wise comparison counts.
//
// Counters is safe for concurrent use.
type Counters struct {
	mu   sync.Mutex
	sums map[string]int64
	maxs map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{sums: make(map[string]int64), maxs: make(map[string]int64)}
}

// Add increases the sum-counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.sums[name] += delta
	c.mu.Unlock()
}

// SetMax raises the max-counter name to v if v is larger than the current
// value.
func (c *Counters) SetMax(name string, v int64) {
	c.mu.Lock()
	if v > c.maxs[name] {
		c.maxs[name] = v
	}
	c.mu.Unlock()
}

// Get returns the value of the sum-counter name (zero if absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sums[name]
}

// GetMax returns the value of the max-counter name (zero if absent).
func (c *Counters) GetMax(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxs[name]
}

// Merge folds other into c: sums add, maxes take the maximum. The engine
// merges a task's counters only after the task succeeds, so retried
// attempts never double-count.
func (c *Counters) Merge(other *Counters) {
	other.mu.Lock()
	sums := make(map[string]int64, len(other.sums))
	for k, v := range other.sums {
		sums[k] = v
	}
	maxs := make(map[string]int64, len(other.maxs))
	for k, v := range other.maxs {
		maxs[k] = v
	}
	other.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range sums {
		c.sums[k] += v
	}
	for k, v := range maxs {
		if v > c.maxs[k] {
			c.maxs[k] = v
		}
	}
}

// Snapshot returns all counters as a sorted list of name/value pairs, with
// max-counters suffixed ".max". It exists for logging and EXPERIMENTS.md
// generation.
func (c *Counters) Snapshot() []CounterValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CounterValue, 0, len(c.sums)+len(c.maxs))
	for k, v := range c.sums {
		out = append(out, CounterValue{Name: k, Value: v})
	}
	for k, v := range c.maxs {
		out = append(out, CounterValue{Name: k + ".max", Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value int64
}
