package mapreduce

import (
	"context"

	"mrskyline/internal/obs"
)

// Executor runs MapReduce jobs. It is the seam between the algorithms
// (core, baseline) and the execution substrate: the in-process Engine is
// the default backend — tasks are goroutines on a simulated cluster — and
// internal/rpcexec provides a second backend where workers are real OS
// processes driven by a master over net/rpc. Algorithms depend only on
// this interface, so future backends (goroutine pool, remote fleet) plug
// in without touching them.
type Executor interface {
	// RunContext executes the job under ctx; see Engine.RunContext for the
	// cancellation contract every backend honours (stop placing attempts,
	// drain in-flight work, return ctx's error).
	RunContext(ctx context.Context, job *Job) (*Result, error)
	// TotalSlots is the backend's concurrent task capacity; algorithms use
	// it as the default map task count.
	TotalSlots() int
	// NumNodes is the number of failure domains (simulated nodes, or worker
	// processes); algorithms use it as the default reducer count.
	NumNodes() int
	// WallTracer returns the tracer for driver-side wall-clock
	// instrumentation, nil when tracing is off or wall spans would pollute
	// a virtual-clock trace.
	WallTracer() *obs.Tracer
}

// Engine implements Executor.
var _ Executor = (*Engine)(nil)

// TotalSlots returns the cluster-wide slot count.
func (e *Engine) TotalSlots() int { return e.cluster.TotalSlots() }

// NumNodes returns the simulated cluster's node count.
func (e *Engine) NumNodes() int { return len(e.cluster.Nodes()) }
