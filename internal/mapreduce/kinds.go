package mapreduce

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"

	"mrskyline/internal/spill"
)

// Jobs built in the driver close over live Go state (grids, bitstrings,
// configuration), which cannot cross a process boundary. The kind registry
// is the bridge: a job that sets Job.Kind and Job.Spec names a registered
// builder that reconstructs its Mapper/Reducer/Combiner/Partition functions
// from the spec bytes alone. Worker processes link the same binary, so a
// kind registered in an init() on the driver is registered in the worker
// too; everything else the tasks need travels in the job's distributed
// cache. The in-process Engine ignores Kind entirely — it always uses the
// closures — so registering a kind never changes in-process behaviour, and
// the two paths stay byte-for-byte comparable.

// JobFuncs is the executable half of a job, reconstructed from a spec by a
// registered kind builder. NewCombiner and Partition may be nil (no
// combiner; hash partitioning).
type JobFuncs struct {
	NewMapper   func() Mapper
	NewReducer  func() Reducer
	NewCombiner func() Combiner
	Partition   PartitionFunc
}

// KindBuilder reconstructs a job's functions from its serialized spec.
type KindBuilder func(spec []byte) (*JobFuncs, error)

var (
	kindMu    sync.RWMutex
	kindTable = make(map[string]KindBuilder)
)

// RegisterKind makes a job kind available for out-of-process execution.
// Call from an init() so driver and worker binaries agree; registering the
// same name twice panics.
func RegisterKind(name string, b KindBuilder) {
	if name == "" || b == nil {
		panic("mapreduce: RegisterKind with empty name or nil builder")
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kindTable[name]; dup {
		panic(fmt.Sprintf("mapreduce: job kind %q registered twice", name))
	}
	kindTable[name] = b
}

// BuildKind reconstructs the functions of a registered kind.
func BuildKind(name string, spec []byte) (*JobFuncs, error) {
	kindMu.RLock()
	b, ok := kindTable[name]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job kind %q not registered in this binary", name)
	}
	return b(spec)
}

// KindRegistered reports whether the kind is available in this binary.
func KindRegistered(name string) bool {
	kindMu.RLock()
	defer kindMu.RUnlock()
	_, ok := kindTable[name]
	return ok
}

// ---------------------------------------------------------------------------
// Wire framing

// Records and shuffle segments cross the wire in one flat framing:
// per record uvarint(keyLen), key bytes, uvarint(valueLen), value bytes.
// Decoding rebuilds the engine's arena representation, so grouping and
// value order on the remote path are byte-identical to the in-process
// shuffle.

// AppendRecord appends one framed record to dst.
func AppendRecord(dst, key, value []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	dst = append(dst, value...)
	return dst
}

// EncodeRecords frames a record slice.
func EncodeRecords(recs []Record) []byte {
	var out []byte
	for _, r := range recs {
		out = AppendRecord(out, r.Key, r.Value)
	}
	return out
}

// DecodeRecords parses a framed record stream. Zero-length keys and values
// decode as nil, matching the arena accessors.
func DecodeRecords(b []byte) ([]Record, error) {
	var out []Record
	for off := 0; off < len(b); {
		key, n, err := readChunk(b, off)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: record %d key: %w", len(out), err)
		}
		off = n
		val, n, err := readChunk(b, off)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: record %d value: %w", len(out), err)
		}
		off = n
		out = append(out, Record{Key: key, Value: val})
	}
	return out, nil
}

// readChunk reads one uvarint-prefixed byte chunk starting at off,
// returning the chunk (nil when empty) and the next offset.
func readChunk(b []byte, off int) ([]byte, int, error) {
	l, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("truncated length at offset %d", off)
	}
	off += n
	if l > uint64(len(b)-off) {
		return nil, 0, fmt.Errorf("chunk of %d bytes overruns buffer", l)
	}
	if l == 0 {
		return nil, off, nil
	}
	end := off + int(l)
	return b[off:end:end], end, nil
}

// encodeArena frames a shuffle segment.
func encodeArena(a *bucketArena) []byte {
	var out []byte
	for i := 0; i < a.len(); i++ {
		out = AppendRecord(out, a.key(i), a.value(i))
	}
	return out
}

// decodeArena rebuilds a segment arena from its framing.
func decodeArena(b []byte) (bucketArena, error) {
	var a bucketArena
	for off := 0; off < len(b); {
		key, n, err := readChunk(b, off)
		if err != nil {
			return bucketArena{}, fmt.Errorf("mapreduce: segment record %d key: %w", a.len(), err)
		}
		off = n
		val, n, err := readChunk(b, off)
		if err != nil {
			return bucketArena{}, fmt.Errorf("mapreduce: segment record %d value: %w", a.len(), err)
		}
		off = n
		a.add(key, val)
	}
	return a, nil
}

// SegmentChecksum hashes a framed segment (FNV-1a over the wire bytes) —
// the role the arena checksums play for the in-process corruption/refetch
// path, applied to map-output transfers between worker processes.
func SegmentChecksum(seg []byte) uint64 {
	h := fnv.New64a()
	h.Write(seg)
	return h.Sum64()
}

// SegmentPayloadBytes returns the key+value volume of a framed segment —
// the quantity CounterShuffleBytes counts, excluding framing overhead so
// remote and in-process shuffle counters agree.
func SegmentPayloadBytes(seg []byte) (int64, error) {
	total := int64(0)
	for off := 0; off < len(seg); {
		for half := 0; half < 2; half++ {
			l, n := binary.Uvarint(seg[off:])
			if n <= 0 || l > uint64(len(seg)-off-n) {
				return 0, fmt.Errorf("mapreduce: malformed segment at offset %d", off)
			}
			off += n + int(l)
			total += int64(l)
		}
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Remote task runtime

// RemoteTask carries everything a worker process needs to execute one task
// attempt of a kind-registered job.
type RemoteTask struct {
	// Job is the job name (errors, history).
	Job string
	// Kind and Spec identify the registered builder and its parameters.
	Kind string
	Spec []byte
	// Cache is the job's distributed cache.
	Cache Cache
	// TaskID, Attempt, NumMappers, NumReducers and Node fill the
	// TaskContext exactly as the in-process engine would.
	TaskID      int
	Attempt     int
	NumMappers  int
	NumReducers int
	Node        string
	// SpillBudget and SpillDir, when SpillBudget > 0, switch reduce
	// attempts to the external-memory merge: fetched segments are written
	// through a budget-tracked spill writer and reduced over a streaming
	// run merge instead of one materialized arena, so a worker's resident
	// reduce input stays bounded by the budget. SpillFanIn caps the merge
	// fan-in (0 uses the spill package default). Map attempts are
	// unaffected — their output is bounded by the split size.
	SpillBudget int64
	SpillDir    string
	SpillFanIn  int
}

func (t *RemoteTask) taskContext() *TaskContext {
	return &TaskContext{
		Job:         t.Job,
		TaskID:      t.TaskID,
		Attempt:     t.Attempt,
		NumMappers:  t.NumMappers,
		NumReducers: t.NumReducers,
		Node:        t.Node,
		Cache:       t.Cache,
		Counters:    NewCounters(),
	}
}

// jobAndLayout builds the transient Job and layout shared by both remote
// attempt runners.
func (t *RemoteTask) jobAndLayout() (*Job, *resolvedJob, error) {
	funcs, err := BuildKind(t.Kind, t.Spec)
	if err != nil {
		return nil, nil, err
	}
	if funcs.NewMapper == nil || funcs.NewReducer == nil {
		return nil, nil, fmt.Errorf("mapreduce: kind %q built incomplete JobFuncs", t.Kind)
	}
	job := &Job{
		Name:        t.Job,
		NewMapper:   funcs.NewMapper,
		NewReducer:  funcs.NewReducer,
		NewCombiner: funcs.NewCombiner,
		Partition:   funcs.Partition,
		Cache:       t.Cache,
	}
	rj := &resolvedJob{
		numMappers:  t.NumMappers,
		numReducers: t.NumReducers,
		partition:   funcs.Partition,
	}
	if rj.numReducers < 1 {
		rj.numReducers = 1
	}
	if rj.partition == nil {
		rj.partition = HashPartition
	}
	return job, rj, nil
}

// RunRemoteMap executes one map-task attempt on a worker process: the
// framed split records are fed through the kind's Mapper (combiner
// applied), and the per-reducer output comes back as framed segments
// (nil for empty buckets). Counters are the attempt's task-local set; the
// master merges them only if it accepts the attempt — the same
// success-only rule the in-process engine applies. A panicking mapper is
// recovered into an error, mirroring the in-process retry path.
func RunRemoteMap(t *RemoteTask, split []byte) (segs [][]byte, counters *Counters, err error) {
	defer func() {
		if p := recover(); p != nil {
			segs, counters = nil, nil
			err = fmt.Errorf("map task %d on %s: panic: %v", t.TaskID, t.Node, p)
		}
	}()
	job, rj, err := t.jobAndLayout()
	if err != nil {
		return nil, nil, err
	}
	recs, err := DecodeRecords(split)
	if err != nil {
		return nil, nil, err
	}
	ctx := t.taskContext()
	buckets, err := attemptMap(job, rj, memorySplit(recs), ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("map task %d on %s: %w", t.TaskID, t.Node, err)
	}
	segs = make([][]byte, rj.numReducers)
	for r := range buckets {
		if buckets[r].len() > 0 {
			segs[r] = encodeArena(&buckets[r])
		}
	}
	return segs, ctx.Counters, nil
}

// RunRemoteReduce executes one reduce-task attempt on a worker process.
// segs holds one framed segment per map task in map-task order (nil
// entries are empty segments); preserving that order reproduces the
// engine's (mapper index, emission order) value grouping exactly. The
// reducer's output comes back framed.
func RunRemoteReduce(t *RemoteTask, segs [][]byte) (output []byte, counters *Counters, err error) {
	defer func() {
		if p := recover(); p != nil {
			output, counters = nil, nil
			err = fmt.Errorf("reduce task %d on %s: panic: %v", t.TaskID, t.Node, p)
		}
	}()
	job, _, err := t.jobAndLayout()
	if err != nil {
		return nil, nil, err
	}
	ctx := t.taskContext()
	var out bucketArena
	if t.SpillBudget > 0 {
		out, err = t.spilledRemoteReduce(job, segs, ctx)
	} else {
		var in bucketArena
		for m, seg := range segs {
			if len(seg) == 0 {
				continue
			}
			a, err := decodeArena(seg)
			if err != nil {
				return nil, nil, fmt.Errorf("reduce task %d: segment from map %d: %w", t.TaskID, m, err)
			}
			in.absorb(&a)
		}
		idx := in.sortedIndex()
		groups := in.groupRuns(idx)
		out, err = attemptReduce(job, &arenaGroups{in: &in, idx: idx, groups: groups}, ctx)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("reduce task %d on %s: %w", t.TaskID, t.Node, err)
	}
	return encodeArena(&out), ctx.Counters, nil
}

// spilledRemoteReduce streams the fetched segments through a
// budget-tracked spill writer and reduces over the merged runs, never
// holding the whole reducer input resident. Segments are consumed in map
// order, so the runs inherit the engine's (mapper index, emission order)
// arrival order and the merge reproduces the in-memory grouping exactly.
// All files live in a per-attempt directory removed before returning; a
// run that fails its checksum fails the attempt, which the master retries
// like any other task error.
func (t *RemoteTask) spilledRemoteReduce(job *Job, segs [][]byte, ctx *TaskContext) (bucketArena, error) {
	dir, err := os.MkdirTemp(t.SpillDir, fmt.Sprintf("reduce%d-a%d-", t.TaskID, t.Attempt))
	if err != nil {
		return bucketArena{}, fmt.Errorf("creating spill directory: %w", err)
	}
	defer os.RemoveAll(dir)
	cfg := &spill.Config{Dir: dir, Budget: t.SpillBudget, FanIn: t.SpillFanIn}
	w := spill.NewWriter(cfg, "seg", t.TaskID)
	for m, seg := range segs {
		for off := 0; off < len(seg); {
			key, n, err := readChunk(seg, off)
			if err == nil {
				off = n
				var val []byte
				if val, n, err = readChunk(seg, off); err == nil {
					off = n
					err = w.Add(key, val)
				}
			}
			if err != nil {
				w.Discard()
				return bucketArena{}, fmt.Errorf("segment from map %d: %w", m, err)
			}
		}
	}
	runs, err := w.Finish()
	if err != nil {
		w.Discard()
		return bucketArena{}, err
	}
	final, _, err := spill.MergeTree(cfg, dir, "merge", runs)
	if err != nil {
		return bucketArena{}, err
	}
	g, err := spill.NewGroups(cfg, final)
	if err != nil {
		return bucketArena{}, err
	}
	src := spillGroups{g}
	defer src.close()
	return attemptReduce(job, src, ctx)
}

// ---------------------------------------------------------------------------
// Counter transport

// CounterDump is a Counters value flattened for the wire.
type CounterDump struct {
	Sums map[string]int64
	Maxs map[string]int64
}

// Dump snapshots the counters for transport.
func (c *Counters) Dump() CounterDump {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := CounterDump{Sums: make(map[string]int64, len(c.sums)), Maxs: make(map[string]int64, len(c.maxs))}
	for k, v := range c.sums {
		d.Sums[k] = v
	}
	for k, v := range c.maxs {
		d.Maxs[k] = v
	}
	return d
}

// MergeDump folds a transported dump into c (sums add, maxes take the
// maximum), the wire twin of Merge.
func (c *Counters) MergeDump(d CounterDump) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range d.Sums {
		c.sums[k] += v
	}
	for k, v := range d.Maxs {
		if v > c.maxs[k] {
			c.maxs[k] = v
		}
	}
}

// SplitPayloads materializes a job's input splits as framed record streams,
// one per map task — what the master ships inside map-task leases. The
// split layout is identical to the in-process engine's (same Input.Splits
// call), so task counts and split contents agree across backends.
func SplitPayloads(job *Job, defaultMappers int) ([][]byte, error) {
	hint := job.NumMappers
	if hint < 1 {
		hint = defaultMappers
	}
	if hint < 1 {
		hint = 1
	}
	if job.Input == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no input", job.Name)
	}
	splits, err := job.Input.Splits(hint)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: splitting input: %w", job.Name, err)
	}
	out := make([][]byte, len(splits))
	for i, s := range splits {
		var buf []byte
		err := s.Each(func(rec Record) error {
			buf = AppendRecord(buf, rec.Key, rec.Value)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: reading split %d: %w", job.Name, i, err)
		}
		out[i] = buf
	}
	return out, nil
}

// SortedCounterNames lists a dump's counter names (sums then maxes),
// for deterministic logging in tests.
func (d CounterDump) SortedCounterNames() []string {
	names := make([]string, 0, len(d.Sums)+len(d.Maxs))
	for k := range d.Sums {
		names = append(names, k)
	}
	for k := range d.Maxs {
		names = append(names, k+".max")
	}
	sort.Strings(names)
	return names
}
