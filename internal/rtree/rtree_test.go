package rtree_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/datagen"
	"mrskyline/internal/rtree"
	"mrskyline/internal/tuple"
)

func TestBulkEmptyAndValidation(t *testing.T) {
	tr, err := rtree.Bulk(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Root() != nil || tr.Height() != 0 {
		t.Errorf("empty tree: %+v", tr)
	}
	if _, err := rtree.Bulk(tuple.List{{1, 2}, {3}}, 0); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := rtree.Bulk(tuple.List{{1}}, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestBulkStructureInvariants(t *testing.T) {
	for _, cfg := range []struct{ n, d, fanout int }{
		{1, 2, 4}, {5, 2, 4}, {100, 3, 8}, {1000, 4, 16}, {333, 2, 5},
	} {
		data := datagen.Generate(datagen.Independent, cfg.n, cfg.d, 3)
		tr, err := rtree.Bulk(data, cfg.fanout)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != cfg.n {
			t.Fatalf("Len = %d, want %d", tr.Len(), cfg.n)
		}
		// Walk: every node's MBR contains its payload; count points.
		count := 0
		var walk func(n *rtree.Node)
		walk = func(n *rtree.Node) {
			if n.Leaf() {
				if len(n.Points()) == 0 || len(n.Points()) > cfg.fanout {
					t.Fatalf("leaf size %d with fanout %d", len(n.Points()), cfg.fanout)
				}
				for _, p := range n.Points() {
					count++
					if !n.Rect().Contains(p) {
						t.Fatalf("leaf MBR %v does not contain %v", n.Rect(), p)
					}
				}
				return
			}
			if len(n.Children()) == 0 || len(n.Children()) > cfg.fanout {
				t.Fatalf("node degree %d with fanout %d", len(n.Children()), cfg.fanout)
			}
			for _, c := range n.Children() {
				if !n.Rect().ContainsRect(c.Rect()) {
					t.Fatalf("parent MBR %v does not contain child %v", n.Rect(), c.Rect())
				}
				walk(c)
			}
		}
		walk(tr.Root())
		if count != cfg.n {
			t.Fatalf("tree holds %d points, want %d", count, cfg.n)
		}
		if cfg.n > cfg.fanout && tr.Height() < 2 {
			t.Fatalf("height %d for %d points", tr.Height(), cfg.n)
		}
	}
}

func TestBulkDoesNotMutateInput(t *testing.T) {
	data := datagen.Generate(datagen.AntiCorrelated, 200, 3, 5)
	orig := data.Clone()
	if _, err := rtree.Bulk(data, 8); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !data[i].Equal(orig[i]) {
			t.Fatal("Bulk reordered the caller's slice")
		}
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := datagen.Generate(datagen.Independent, 500, 3, 7)
	tr, err := rtree.Bulk(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := make(tuple.Tuple, 3)
		hi := make(tuple.Tuple, 3)
		for k := range lo {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[k], hi[k] = a, b
		}
		q := rtree.Rect{Lo: lo, Hi: hi}
		got := tr.Search(q)
		var want tuple.List
		for _, p := range data {
			if q.Contains(p) {
				want = append(want, p)
			}
		}
		if len(got) != len(want) || !tuple.EqualAsSet(got, want) {
			t.Fatalf("trial %d: search %d points, scan %d", trial, len(got), len(want))
		}
	}
}

func TestRectHelpers(t *testing.T) {
	r := rtree.Rect{Lo: tuple.Tuple{0, 0}, Hi: tuple.Tuple{1, 1}}
	if !r.Contains(tuple.Tuple{1, 1}) || !r.Contains(tuple.Tuple{0, 0}) {
		t.Error("closed-box containment broken")
	}
	if r.Contains(tuple.Tuple{1.01, 0.5}) {
		t.Error("outside point contained")
	}
	if !r.Intersects(rtree.Rect{Lo: tuple.Tuple{1, 1}, Hi: tuple.Tuple{2, 2}}) {
		t.Error("touching rects must intersect")
	}
	if r.Intersects(rtree.Rect{Lo: tuple.Tuple{2, 2}, Hi: tuple.Tuple{3, 3}}) {
		t.Error("disjoint rects intersect")
	}
	if got := (rtree.Rect{Lo: tuple.Tuple{0.25, 0.5}, Hi: tuple.Tuple{1, 1}}).MinDistSum(); got != 0.75 {
		t.Errorf("MinDistSum = %v", got)
	}
}

func BenchmarkBulk(b *testing.B) {
	data := datagen.Generate(datagen.Independent, 10000, 4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rtree.Bulk(data, 32); err != nil {
			b.Fatal(err)
		}
	}
}
