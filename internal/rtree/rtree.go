// Package rtree provides an in-memory R-tree over multi-dimensional points,
// bulk-loaded with the Sort-Tile-Recursive (STR) packing algorithm
// [Leutenegger et al., ICDE 1997]. It is the index substrate for the BBS
// skyline kernel (internal/skyline), the classic branch-and-bound skyline
// algorithm the skyline literature measures centralized work against.
//
// Trees are immutable after Bulk and safe for concurrent readers.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"mrskyline/internal/tuple"
)

// DefaultFanout is the entries-per-node used when Bulk is given a
// non-positive fanout.
const DefaultFanout = 32

// Rect is an axis-aligned minimum bounding rectangle.
type Rect struct {
	// Lo and Hi are the per-dimension minima and maxima (inclusive).
	Lo, Hi tuple.Tuple
}

// Contains reports whether the point lies inside the rectangle (inclusive
// on both sides; MBRs of points are closed boxes).
func (r Rect) Contains(p tuple.Tuple) bool {
	for k := range p {
		if p[k] < r.Lo[k] || p[k] > r.Hi[k] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether other lies fully inside r.
func (r Rect) ContainsRect(other Rect) bool {
	for k := range r.Lo {
		if other.Lo[k] < r.Lo[k] || other.Hi[k] > r.Hi[k] {
			return false
		}
	}
	return true
}

// Intersects reports whether the rectangles overlap.
func (r Rect) Intersects(other Rect) bool {
	for k := range r.Lo {
		if other.Hi[k] < r.Lo[k] || other.Lo[k] > r.Hi[k] {
			return false
		}
	}
	return true
}

// MinDistSum is the L1 "mindist" of the rectangle from the origin — the
// sum of its lower corner, the priority BBS expands entries by.
func (r Rect) MinDistSum() float64 {
	return r.Lo.Sum()
}

// Node is one R-tree node. Leaf nodes carry points; internal nodes carry
// children. Exposed so traversal-based algorithms (BBS) can walk the tree.
type Node struct {
	leaf     bool
	rect     Rect
	points   tuple.List // leaf payload
	children []*Node    // internal payload
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.leaf }

// Rect returns the node's minimum bounding rectangle.
func (n *Node) Rect() Rect { return n.rect }

// Points returns a leaf's points (nil for internal nodes). The slice is
// shared; callers must not modify it.
func (n *Node) Points() tuple.List { return n.points }

// Children returns an internal node's children (nil for leaves).
func (n *Node) Children() []*Node { return n.children }

// Tree is a bulk-loaded R-tree.
type Tree struct {
	d      int
	fanout int
	size   int
	root   *Node
}

// Dim returns the indexed dimensionality.
func (t *Tree) Dim() int { return t.d }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Root returns the root node, or nil for an empty tree.
func (t *Tree) Root() *Node { return t.root }

// Bulk builds an R-tree over the points with STR packing. The input slice
// is not modified. fanout ≤ 0 selects DefaultFanout.
func Bulk(data tuple.List, fanout int) (*Tree, error) {
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout must be ≥ 2, got %d", fanout)
	}
	t := &Tree{fanout: fanout, size: len(data)}
	if len(data) == 0 {
		return t, nil
	}
	t.d = data.Dim()

	pts := make(tuple.List, len(data))
	copy(pts, data)
	strSort(pts, 0, t.d, fanout)

	// Pack leaves.
	var level []*Node
	for lo := 0; lo < len(pts); lo += fanout {
		hi := lo + fanout
		if hi > len(pts) {
			hi = len(pts)
		}
		n := &Node{leaf: true, points: pts[lo:hi:hi]}
		n.rect = boundPoints(n.points)
		level = append(level, n)
	}
	// Pack upper levels until a single root remains.
	for len(level) > 1 {
		var next []*Node
		for lo := 0; lo < len(level); lo += fanout {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			n := &Node{children: level[lo:hi:hi]}
			n.rect = boundNodes(n.children)
			next = append(next, n)
		}
		level = next
	}
	t.root = level[0]
	return t, nil
}

// strSort orders points with Sort-Tile-Recursive: sort by the current
// dimension, cut into vertical slabs sized so that each slab holds about
// n^((d-k-1)/(d-k)) · fanout-aligned runs, and recurse on the next
// dimension within each slab.
func strSort(pts tuple.List, k, d, fanout int) {
	if k >= d-1 || len(pts) <= fanout {
		sort.SliceStable(pts, func(i, j int) bool { return pts[i][k] < pts[j][k] })
		return
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i][k] < pts[j][k] })
	leaves := int(math.Ceil(float64(len(pts)) / float64(fanout)))
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(d-k))))
	if slabs < 1 {
		slabs = 1
	}
	per := int(math.Ceil(float64(len(pts)) / float64(slabs)))
	if per < 1 {
		per = 1
	}
	for lo := 0; lo < len(pts); lo += per {
		hi := lo + per
		if hi > len(pts) {
			hi = len(pts)
		}
		strSort(pts[lo:hi], k+1, d, fanout)
	}
}

func boundPoints(pts tuple.List) Rect {
	lo := pts[0].Clone()
	hi := pts[0].Clone()
	for _, p := range pts[1:] {
		lo.MinWith(p)
		hi.MaxWith(p)
	}
	return Rect{Lo: lo, Hi: hi}
}

func boundNodes(ns []*Node) Rect {
	lo := ns[0].rect.Lo.Clone()
	hi := ns[0].rect.Hi.Clone()
	for _, n := range ns[1:] {
		lo.MinWith(n.rect.Lo)
		hi.MaxWith(n.rect.Hi)
	}
	return Rect{Lo: lo, Hi: hi}
}

// Search returns all points within the query rectangle.
func (t *Tree) Search(q Rect) tuple.List {
	var out tuple.List
	if t.root == nil {
		return out
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.rect.Intersects(q) {
			return
		}
		if n.leaf {
			for _, p := range n.points {
				if q.Contains(p) {
					out = append(out, p)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Height returns the tree height (0 for empty, 1 for a single leaf).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
