package wal

import (
	"encoding/binary"
	"fmt"

	"mrskyline/internal/maintain"
	"mrskyline/internal/tuple"
)

// Record payloads. One record holds one delta batch — the atomic unit of
// maintain.Apply — so recovery replays whole batches or none of them:
//
//	kind    1 byte   recBatch
//	gen     uvarint  generation the batch publishes when applied
//	count   uvarint  number of deltas
//	deltas           count × (op byte, tuple wire encoding)
const recBatch = 1

// appendBatchRecord appends the wire form of one delta batch to dst.
func appendBatchRecord(dst []byte, gen uint64, deltas []maintain.Delta) []byte {
	dst = append(dst, recBatch)
	dst = binary.AppendUvarint(dst, gen)
	dst = binary.AppendUvarint(dst, uint64(len(deltas)))
	for _, d := range deltas {
		dst = append(dst, byte(d.Op))
		dst = tuple.AppendEncode(dst, d.Row)
	}
	return dst
}

// decodeBatchRecord parses one batch record payload. Every length is
// bounds-checked against the remaining bytes, so arbitrary (fuzzed) input
// errors instead of panicking or over-allocating.
func decodeBatchRecord(b []byte) (gen uint64, deltas []maintain.Delta, err error) {
	if len(b) == 0 || b[0] != recBatch {
		return 0, nil, fmt.Errorf("wal: unknown record kind")
	}
	off := 1
	gen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: truncated record generation")
	}
	off += n
	count, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: truncated record delta count")
	}
	off += n
	// A delta occupies at least 2 bytes (op + dim header), so count cannot
	// exceed what remains.
	if count > uint64(len(b)-off) {
		return 0, nil, fmt.Errorf("wal: implausible delta count %d with %d bytes left", count, len(b)-off)
	}
	deltas = make([]maintain.Delta, 0, count)
	for i := uint64(0); i < count; i++ {
		if off >= len(b) {
			return 0, nil, fmt.Errorf("wal: truncated delta %d", i)
		}
		op := maintain.Op(b[off])
		off++
		row, m, err := tuple.Decode(b[off:])
		if err != nil {
			return 0, nil, fmt.Errorf("wal: delta %d: %w", i, err)
		}
		off += m
		deltas = append(deltas, maintain.Delta{Op: op, Row: row})
	}
	if off != len(b) {
		return 0, nil, fmt.Errorf("wal: %d trailing bytes after %d deltas", len(b)-off, count)
	}
	return gen, deltas, nil
}
