package wal

// Crash-injection chaos suite. Each scenario re-executes the test binary
// as a child process that opens a Durable, applies a deterministic delta
// stream, and SIGKILLs ITSELF from the testCrash hook at a seeded,
// named point mid-batch — before the record hits the disk, after an
// unsynced write, mid-torn-write (a prefix of the record persisted),
// after fsync, after apply-before-ack, and at every checkpoint stage.
// The parent collects the generations the child acknowledged on stdout,
// recovers the directory in-process, and asserts the recovered skyline
// is byte-identical to a fresh rebuild of the first K batches for the K
// recovery reports — with K never below the acknowledged count under
// SyncAlways, and the torn tail never partially applied.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("WAL_CHAOS_DIR") != "" {
		chaosChild()
		os.Exit(0) // unreachable: chaosChild dies by SIGKILL
	}
	os.Exit(m.Run())
}

// chaosChild is the crash victim. It never returns normally: either the
// crash hook kills it, or it exits(3) to signal the hook never fired.
func chaosChild() {
	dir := os.Getenv("WAL_CHAOS_DIR")
	point := os.Getenv("WAL_CHAOS_POINT")
	hit, _ := strconv.Atoi(os.Getenv("WAL_CHAOS_HIT"))
	tear, _ := strconv.Atoi(os.Getenv("WAL_CHAOS_TEAR"))
	seed, _ := strconv.ParseInt(os.Getenv("WAL_CHAOS_SEED"), 10, 64)
	mode, err := ParseSyncMode(os.Getenv("WAL_CHAOS_SYNC"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	hits := 0
	testCrash = func(p string, _ uint64, f *os.File, pending []byte) {
		if p != point {
			return
		}
		if hits++; hits < hit {
			return
		}
		if tear > 0 && f != nil && len(pending) > 1 {
			// Simulate a torn write: a strict prefix of the record reaches
			// the disk before the "power" goes out.
			cut := len(pending) * tear / 100
			if cut == 0 {
				cut = 1
			}
			f.Write(pending[:cut])
			f.Sync()
		}
		os.Stdout.Sync()
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // the signal is fatal; never proceed past the point
	}

	o := Options{Sync: mode, CheckpointEvery: 4, SegmentBytes: 4096}
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	out := bufio.NewWriter(os.Stdout)
	for _, b := range mkBatches(seed, 200, 3) {
		res, err := d.Apply(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// The flushed ack is the durability contract under test: anything
		// acknowledged here must survive under SyncAlways.
		fmt.Fprintf(out, "ack %d\n", res.Gen)
		out.Flush()
	}
	os.Exit(3) // crash point never hit: scenario bug
}

// runChaosChild spawns the victim and returns the highest generation it
// acknowledged before being SIGKILLed.
func runChaosChild(t *testing.T, dir, point string, hit, tear int, seed int64, mode SyncMode) (ackedGen uint64) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"WAL_CHAOS_DIR="+dir,
		"WAL_CHAOS_POINT="+point,
		fmt.Sprintf("WAL_CHAOS_HIT=%d", hit),
		fmt.Sprintf("WAL_CHAOS_TEAR=%d", tear),
		fmt.Sprintf("WAL_CHAOS_SEED=%d", seed),
		"WAL_CHAOS_SYNC="+mode.String(),
	)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child exited cleanly (err=%v, stderr=%s); the crash hook must kill it", err, stderr.String())
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died with %v, want SIGKILL (stderr: %s)", ee, stderr.String())
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		if g, ok := strings.CutPrefix(line, "ack "); ok {
			v, err := strconv.ParseUint(strings.TrimSpace(g), 10, 64)
			if err != nil {
				t.Fatalf("bad ack line %q", line)
			}
			ackedGen = v
		}
	}
	return ackedGen
}

func TestChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns crash-victim child processes")
	}
	scenarios := []struct {
		point string
		hit   int
		tear  int
		mode  SyncMode
	}{
		// Mid-append crashes, every stage of a batch's life.
		{"append.write", 3, 0, SyncAlways},   // record never reaches disk
		{"append.write", 3, 60, SyncAlways},  // torn write: 60% of the record persisted
		{"append.write", 5, 30, SyncBatch},   // torn write under group commit
		{"append.unsynced", 4, 0, SyncAlways},
		{"append.synced", 4, 0, SyncAlways},  // durable but crash before apply+ack
		{"applied", 6, 0, SyncAlways},        // applied but crash before ack
		{"applied", 6, 0, SyncBatch},
		{"applied", 6, 0, SyncInterval},
		// Mid-checkpoint crashes. hit 2 for ckpt.written skips the
		// create-time seed snapshot, which passes the same point.
		{"ckpt.before", 1, 0, SyncAlways},
		{"ckpt.written", 2, 0, SyncAlways},
		{"ckpt.renamed", 1, 0, SyncAlways},
		{"ckpt.done", 1, 0, SyncAlways},
	}
	for i, sc := range scenarios {
		sc := sc
		seed := int64(100 + i)
		t.Run(fmt.Sprintf("%s_hit%d_tear%d_%s", sc.point, sc.hit, sc.tear, sc.mode), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			ackedGen := runChaosChild(t, dir, sc.point, sc.hit, sc.tear, seed, sc.mode)

			r, err := Recover(dir, Options{})
			if err != nil {
				t.Fatalf("recovery after %s crash: %v", sc.point, err)
			}
			defer r.Close()
			gen := r.Maintained().Generation()

			// A SIGKILL loses no OS-buffered file data, so regardless of sync
			// mode the recovered generation sits between the last ack and the
			// single in-flight batch; SyncAlways additionally guarantees no
			// acknowledged batch is ever lost.
			if ackedGen > 0 && gen < ackedGen {
				t.Fatalf("recovered generation %d below acknowledged %d", gen, ackedGen)
			}
			if maxGen := ackedGen + 1; strings.HasPrefix(sc.point, "append.") || sc.point == "applied" {
				if gen > maxGen {
					t.Fatalf("recovered generation %d past the one in-flight batch (acked %d)", gen, ackedGen)
				}
			}
			batches := mkBatches(seed, 200, 3)
			k := int(gen - 1) // seed publish is gen 1
			if k < 0 || k > len(batches) {
				t.Fatalf("recovered generation %d outside the sent history", gen)
			}
			mustEqualState(t, r.Maintained(), rebuild(t, k, batches, testCfg))

			if sc.tear > 0 && r.Recovery().TornBytes == 0 {
				t.Fatalf("torn-write scenario recovered with no torn bytes reported")
			}
			// The handle must remain writable after recovery.
			if _, err := r.Apply(batches[k%len(batches)]); err != nil {
				t.Fatalf("apply after recovery: %v", err)
			}
		})
	}
}

// TestChaosRepeatedCrashes chains crash → recover → crash → recover on
// one directory, the pattern a flapping process produces.
func TestChaosRepeatedCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns crash-victim child processes")
	}
	dir := t.TempDir()
	seed := int64(500)
	runChaosChild(t, dir, "applied", 5, 0, seed, SyncAlways)

	// Second incarnation: recover in-process, apply more, abandon.
	r, err := Recover(dir, Options{Sync: SyncAlways, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	batches := mkBatches(seed, 200, 3)
	k := int(r.Maintained().Generation() - 1)
	for _, b := range batches[k : k+7] {
		if _, err := r.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}

	r2, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	mustEqualState(t, r2.Maintained(), rebuild(t, k+7, batches, testCfg))
}
