package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mrskyline/internal/tuple"
)

// Snapshot file layout — a full-file checksum in the SKYRUN1 style, since
// a checkpoint is written in one piece and renamed into place:
//
//	magic   8 bytes  "SKYSNAP\n"
//	payload          version, gen, dim, ppd, windowCap (uvarints)
//	                 lo, hi (dim × float64 bits each)
//	                 uvarint(len(meta)) meta
//	                 uvarint(len(rows)) rows (tuple wire encoding,
//	                                          global arrival order)
//	sum     8 bytes  little-endian FNV-1a over everything above
//
// Rows are serialized in arrival order because reseeding maintain.New
// with that order reproduces the pre-checkpoint state exactly: per-cell
// member order, every window, the sliding-window FIFO, and therefore the
// published skyline bytes. The grid domain and PPD are persisted so
// recovery rebuilds the identical grid instead of re-deriving a
// different one from the surviving rows.
const (
	snapMagic   = "SKYSNAP\n"
	snapVersion = 1
)

// snapshotState is one decoded checkpoint.
type snapshotState struct {
	Gen       uint64
	Dim       int
	PPD       int
	WindowCap int
	Lo, Hi    tuple.Tuple
	Meta      []byte
	Rows      tuple.List
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.ckpt", gen))
}

// writeSnapshot streams st to snap-<gen>.ckpt.tmp and renames it into
// place, syncing the file and the directory, so a crash leaves either the
// previous checkpoint set or the new one — never a half-written file that
// parses.
func writeSnapshot(dir string, st snapshotState) (string, error) {
	path := snapPath(dir, st.Gen)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: creating snapshot: %w", err)
	}
	abort := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	h := newFNV()
	w := io.MultiWriter(bw, &h)

	var scratch []byte
	emit := func(b []byte) error {
		_, err := w.Write(b)
		return err
	}
	if err := emit([]byte(snapMagic)); err != nil {
		return abort(err)
	}
	scratch = binary.AppendUvarint(scratch[:0], snapVersion)
	scratch = binary.AppendUvarint(scratch, st.Gen)
	scratch = binary.AppendUvarint(scratch, uint64(st.Dim))
	scratch = binary.AppendUvarint(scratch, uint64(st.PPD))
	scratch = binary.AppendUvarint(scratch, uint64(st.WindowCap))
	for _, v := range st.Lo {
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(v))
	}
	for _, v := range st.Hi {
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(v))
	}
	scratch = binary.AppendUvarint(scratch, uint64(len(st.Meta)))
	scratch = append(scratch, st.Meta...)
	scratch = binary.AppendUvarint(scratch, uint64(len(st.Rows)))
	if err := emit(scratch); err != nil {
		return abort(err)
	}
	for _, t := range st.Rows {
		scratch = tuple.AppendEncode(scratch[:0], t)
		if err := emit(scratch); err != nil {
			return abort(err)
		}
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := bw.Write(sum[:]); err != nil {
		return abort(err)
	}
	if err := bw.Flush(); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("wal: syncing snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return abort(fmt.Errorf("wal: closing snapshot: %w", err))
	}
	crashPoint("ckpt.written", st.Gen, nil, nil)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// errSnapCorrupt marks a snapshot that fails its checksum or does not
// parse; Recover skips it in favor of an older one.
var errSnapCorrupt = fmt.Errorf("wal: corrupt snapshot")

// readSnapshot loads and verifies one checkpoint. Any framing, bounds or
// checksum problem returns errSnapCorrupt (wrapped) — never a panic —
// so recovery and the replay fuzzers can treat arbitrary bytes safely.
func readSnapshot(path string) (*snapshotState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	if len(b) < len(snapMagic)+8 || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %s: bad magic or truncated", errSnapCorrupt, path)
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	h := newFNV()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", errSnapCorrupt, path)
	}
	p := body[len(snapMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s: truncated header", errSnapCorrupt, path)
		}
		p = p[n:]
		return v, nil
	}
	version, err := next()
	if err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("%w: %s: unsupported version %d", errSnapCorrupt, path, version)
	}
	st := &snapshotState{}
	if st.Gen, err = next(); err != nil {
		return nil, err
	}
	ints := []*int{&st.Dim, &st.PPD, &st.WindowCap}
	for _, dst := range ints {
		v, err := next()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: %s: implausible header value %d", errSnapCorrupt, path, v)
		}
		*dst = int(v)
	}
	if st.Dim <= 0 || st.Dim > 1024 {
		return nil, fmt.Errorf("%w: %s: implausible dimensionality %d", errSnapCorrupt, path, st.Dim)
	}
	if len(p) < 16*st.Dim {
		return nil, fmt.Errorf("%w: %s: truncated domain", errSnapCorrupt, path)
	}
	st.Lo = make(tuple.Tuple, st.Dim)
	st.Hi = make(tuple.Tuple, st.Dim)
	for i := range st.Lo {
		st.Lo[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		st.Hi[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*(st.Dim+i):]))
	}
	p = p[16*st.Dim:]
	metaLen, err := next()
	if err != nil {
		return nil, err
	}
	if metaLen > uint64(len(p)) {
		return nil, fmt.Errorf("%w: %s: truncated meta", errSnapCorrupt, path)
	}
	st.Meta = append([]byte(nil), p[:metaLen]...)
	p = p[metaLen:]
	count, err := next()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(p)) { // a tuple occupies at least 1 byte
		return nil, fmt.Errorf("%w: %s: implausible row count %d", errSnapCorrupt, path, count)
	}
	st.Rows = make(tuple.List, 0, count)
	for i := uint64(0); i < count; i++ {
		t, n, err := tuple.Decode(p)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: row %d: %v", errSnapCorrupt, path, i, err)
		}
		if len(t) != st.Dim {
			return nil, fmt.Errorf("%w: %s: row %d has dimensionality %d, want %d", errSnapCorrupt, path, i, len(t), st.Dim)
		}
		p = p[n:]
		st.Rows = append(st.Rows, t)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %s: %d trailing bytes", errSnapCorrupt, path, len(p))
	}
	return st, nil
}

// parseSeq extracts the 16-hex-digit sequence number from names like
// wal-<seq>.log / snap-<seq>.ckpt.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// dirEntry pairs a parsed sequence number with its path.
type dirEntry struct {
	seq  uint64
	path string
}

// listDir returns the prefix/suffix-matching entries of dir sorted by
// ascending sequence number.
func listDir(dir, prefix, suffix string) ([]dirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var out []dirEntry
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, dirEntry{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}
