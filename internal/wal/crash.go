package wal

import "os"

// testCrash, when non-nil, is invoked at named crash points so the chaos
// suite can SIGKILL the process mid-operation at deterministic,
// seed-selected moments. The hook receives the point name, the generation
// being processed, and — at "append.write" only — the active segment file
// plus the exact record bytes about to be written, so it can simulate a
// torn write by persisting a prefix of them before killing the process.
// A hook that returns is a no-op for that point.
//
// Production builds never set it: every call site costs one nil check.
var testCrash func(point string, gen uint64, f *os.File, pending []byte)

// The crash points, in the order a batch passes them:
//
//	append.write     before the record bytes reach the segment
//	append.unsynced  record written, not yet fsynced
//	append.synced    record fsynced, not yet applied (SyncAlways)
//	applied          batch applied to the resident state, not yet acked
//	ckpt.before      checkpoint captured, snapshot not yet written
//	ckpt.written     snapshot tmp file synced, not yet renamed
//	ckpt.renamed     snapshot live, old segments not yet truncated
//	ckpt.done        checkpoint complete
func crashPoint(point string, gen uint64, f *os.File, pending []byte) {
	if testCrash != nil {
		testCrash(point, gen, f, pending)
	}
}
