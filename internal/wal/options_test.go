package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"always": SyncAlways, "ALWAYS": SyncAlways,
		"batch": SyncBatch, "interval": SyncInterval,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil || !strings.Contains(err.Error(), "sync mode") {
		t.Fatalf("ParseSyncMode accepted an unknown mode: %v", err)
	}
}

func TestSyncModeString(t *testing.T) {
	for mode, want := range map[SyncMode]string{
		SyncAlways: "always", SyncBatch: "batch", SyncInterval: "interval", SyncMode(7): "SyncMode(7)",
	} {
		if got := mode.String(); got != want {
			t.Fatalf("SyncMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Sync: SyncMode(9)},
		{SyncEvery: -time.Second},
		{SegmentBytes: -1},
		{SegmentBytes: 512},
	}
	for i, o := range bad {
		if _, err := Create(filepath.Join(t.TempDir(), "d"), seedRows(3), testCfg, nil, o); err == nil {
			t.Fatalf("Create accepted invalid options %d: %+v", i, o)
		}
	}
}

func TestExists(t *testing.T) {
	if Exists(filepath.Join(t.TempDir(), "missing")) {
		t.Fatal("Exists(true) for a nonexistent directory")
	}
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("Exists(true) for an empty directory")
	}
	// Unrelated files don't count as durable state.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if Exists(dir) {
		t.Fatal("Exists(true) for a directory with only unrelated files")
	}
	d, err := Create(dir, seedRows(3), testCfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !Exists(dir) {
		t.Fatal("Exists(false) for a created durable directory")
	}
	if got := d.Dir(); got != dir {
		t.Fatalf("Dir() = %q, want %q", got, dir)
	}
}

func TestLogErrorTypes(t *testing.T) {
	te := &tornError{Path: "wal-5.log", Off: 10, Lost: 4}
	if !strings.Contains(te.Error(), "wal-5.log") || !strings.Contains(te.Error(), "offset 10") {
		t.Fatalf("tornError.Error() = %q, want path and offset", te.Error())
	}
	fe := &fatalError{err: os.ErrInvalid}
	if !errors.Is(fe, os.ErrInvalid) {
		t.Fatal("fatalError does not unwrap to its cause")
	}
	if fe.Error() != os.ErrInvalid.Error() {
		t.Fatalf("fatalError.Error() = %q", fe.Error())
	}
}

// TestFailedHandleIsSticky: once the log fails, every later Apply,
// Checkpoint and the final Close checkpoint refuse with the original
// error instead of logging against unknown state.
func TestFailedHandleIsSticky(t *testing.T) {
	d, err := Create(filepath.Join(t.TempDir(), "d"), seedRows(3), testCfg, nil, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	d.mu.Lock()
	d.failed = boom
	d.mu.Unlock()
	if _, err := d.Apply(mkBatches(7, 1, 3)[0]); !errors.Is(err, boom) {
		t.Fatalf("Apply after failure = %v, want the sticky error", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, boom) {
		t.Fatalf("Checkpoint after failure = %v, want the sticky error", err)
	}
	d.Abandon()
}

// TestManualCheckpoint: explicit checkpoints work without churn — the
// no-new-records case skips the roll and simply republishes the state.
func TestManualCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "d")
	d, err := Create(dir, seedRows(3), testCfg, []byte(`{"k":1}`), Options{Sync: SyncBatch, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Meta()) != `{"k":1}` {
		t.Fatalf("Meta() = %q", d.Meta())
	}
	for _, b := range mkBatches(8, 5, 3) {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: nothing new to log, so no segment roll — still succeeds.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	r, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if string(r.Meta()) != `{"k":1}` {
		t.Fatalf("recovered Meta() = %q", r.Meta())
	}
	if rs := r.Recovery(); rs.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records after a clean checkpointed close", rs.ReplayedRecords)
	}
}
