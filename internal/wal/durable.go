package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mrskyline/internal/maintain"
	"mrskyline/internal/obs"
	"mrskyline/internal/tuple"
)

// ErrClosed is returned by operations on a closed Durable.
var ErrClosed = errors.New("wal: durable handle is closed")

// ErrNoState is returned by Recover when dir holds no durable state.
var ErrNoState = errors.New("wal: no durable state")

// RecoveryStats describes what Recover did.
type RecoveryStats struct {
	// SnapshotGen and SnapshotRows describe the checkpoint recovery
	// started from.
	SnapshotGen  uint64 `json:"snapshot_gen"`
	SnapshotRows int    `json:"snapshot_rows"`
	// ReplayedRecords and ReplayedDeltas count the log records applied on
	// top of the snapshot; SkippedRecords counts pre-snapshot remnants of
	// an interrupted truncation.
	ReplayedRecords int64 `json:"replayed_records"`
	ReplayedDeltas  int64 `json:"replayed_deltas"`
	SkippedRecords  int64 `json:"skipped_records"`
	// TornBytes is the length of the discarded torn tail (0 on a clean
	// shutdown); CorruptSnapshots counts newer snapshots skipped for
	// checksum failures before an intact one loaded.
	TornBytes        int64 `json:"torn_bytes"`
	CorruptSnapshots int   `json:"corrupt_snapshots"`
	// WallNs is the end-to-end recovery time.
	WallNs int64 `json:"wall_ns"`
}

// Durable wraps a maintain.Maintained with write-ahead durability: Apply
// logs the batch (fsynced per Options.Sync) before applying it, a
// background checkpointer bounds replay length, and Recover reopens the
// directory to the exact pre-crash state. Reads go straight to
// Maintained() — they are lock-free exactly as before.
//
// All methods are safe for concurrent use. Writers serialize on an
// internal mutex, as they already do inside maintain.
type Durable struct {
	dir  string
	o    Options
	m    *maintain.Maintained
	meta []byte
	reg  *obs.Registry

	mu            sync.Mutex
	log           *segmentLog
	recsSinceCkpt int
	failed        error
	closing       bool
	closed        bool

	ckptMu  sync.Mutex
	ckptReq chan struct{}
	syncReq chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup

	rs  RecoveryStats
	buf []byte
}

// Exists reports whether dir holds durable state (any snapshot or log
// segment).
func Exists(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if _, ok := parseSeq(e.Name(), "snap-", ".ckpt"); ok {
			return true
		}
		if _, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			return true
		}
	}
	return false
}

// Create builds a fresh durable maintained skyline at dir: the seed state
// is checkpointed immediately (so recovery always has a snapshot to start
// from) and the log opens at the following generation. It takes ownership
// of seed exactly like maintain.New. meta is an opaque caller blob
// persisted in every snapshot and returned by Meta after recovery —
// mrskyline stores the handle's orientation there. dir must not already
// hold durable state.
func Create(dir string, seed tuple.List, cfg maintain.Config, meta []byte, o Options) (*Durable, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	if Exists(dir) {
		return nil, fmt.Errorf("wal: %s already holds durable state (recover or delete it first)", dir)
	}
	m, err := maintain.New(seed, cfg)
	if err != nil {
		return nil, err
	}
	d := newDurable(dir, m, meta, o)
	gen := m.Generation()
	if _, err := writeSnapshot(dir, d.snapshotState(gen, m.ArrivalRows())); err != nil {
		return nil, err
	}
	d.log, err = openLog(dir, gen+1, o.SegmentBytes, o.Metrics)
	if err != nil {
		return nil, err
	}
	d.rs = RecoveryStats{SnapshotGen: gen, SnapshotRows: m.Size()}
	d.start()
	return d, nil
}

// Recover reopens the durable state at dir: it loads the newest intact
// snapshot, replays the remaining log records in generation order,
// truncates a torn tail in the final segment, and resumes logging on a
// fresh segment. The recovered skyline is byte-identical to the pre-crash
// state of every wholly-logged batch. A checksum break anywhere but the
// final segment's tail — or a generation gap — returns an error: the log
// refuses to serve provably wrong data.
func Recover(dir string, o Options) (*Durable, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	snaps, err := listDir(dir, "snap-", ".ckpt")
	if err != nil {
		return nil, err
	}
	segs, err := listDir(dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		if len(segs) == 0 {
			return nil, fmt.Errorf("%w in %s", ErrNoState, dir)
		}
		return nil, fmt.Errorf("wal: %s has log segments but no snapshot", dir)
	}

	var rs RecoveryStats
	var st *snapshotState
	for i := len(snaps) - 1; i >= 0; i-- {
		s, rerr := readSnapshot(snaps[i].path)
		if rerr == nil {
			st = s
			break
		}
		if !errors.Is(rerr, errSnapCorrupt) {
			return nil, rerr
		}
		rs.CorruptSnapshots++
	}
	if st == nil {
		return nil, fmt.Errorf("wal: no intact snapshot in %s (%d corrupt)", dir, rs.CorruptSnapshots)
	}
	rs.SnapshotGen, rs.SnapshotRows = st.Gen, len(st.Rows)

	m, err := maintain.New(st.Rows, maintain.Config{
		Dim:       st.Dim,
		PPD:       st.PPD,
		Lo:        st.Lo,
		Hi:        st.Hi,
		WindowCap: st.WindowCap,
		SeedGen:   st.Gen,
	})
	if err != nil {
		return nil, fmt.Errorf("wal: reseeding from snapshot gen %d: %w", st.Gen, err)
	}

	cur := st.Gen
	var sealed []segInfo
	for i, sg := range segs {
		payloads, goodOff, scanErr := scanSegment(sg.path)
		segLast := sg.seq - 1
		for _, p := range payloads {
			gen, deltas, derr := decodeBatchRecord(p)
			if derr != nil {
				return nil, fmt.Errorf("wal: segment %s: %w", sg.path, derr)
			}
			switch {
			case gen <= cur:
				rs.SkippedRecords++
			case gen == cur+1:
				if _, aerr := m.Apply(deltas); aerr != nil {
					return nil, fmt.Errorf("wal: replaying gen %d from %s: %w", gen, sg.path, aerr)
				}
				cur++
				rs.ReplayedRecords++
				rs.ReplayedDeltas += int64(len(deltas))
			default:
				return nil, fmt.Errorf("wal: generation gap in %s: record %d follows %d", sg.path, gen, cur)
			}
			segLast = gen
		}
		if scanErr != nil {
			var te *tornError
			if !errors.As(scanErr, &te) {
				return nil, scanErr
			}
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: corrupt non-final segment: %w", scanErr)
			}
			// Torn tail: everything before goodOff replayed, the rest is an
			// unacknowledgeable partial write — discard it durably.
			rs.TornBytes = te.Lost
			if goodOff <= int64(len(segMagic)) {
				if err := os.Remove(sg.path); err != nil {
					return nil, fmt.Errorf("wal: removing unreadable segment: %w", err)
				}
				continue
			}
			if err := truncateFile(sg.path, goodOff); err != nil {
				return nil, err
			}
		}
		if segLast < sg.seq {
			// Zero usable records: drop the empty segment so the fresh
			// active segment cannot collide with its name.
			if err := os.Remove(sg.path); err != nil {
				return nil, fmt.Errorf("wal: removing empty segment: %w", err)
			}
			continue
		}
		sealed = append(sealed, segInfo{firstGen: sg.seq, lastGen: segLast, path: sg.path})
	}

	d := newDurable(dir, m, st.Meta, o)
	d.log, err = openLog(dir, cur+1, o.SegmentBytes, o.Metrics)
	if err != nil {
		return nil, err
	}
	d.log.sealed = sealed
	d.cleanup(st.Gen)
	rs.WallNs = time.Since(start).Nanoseconds()
	d.rs = rs
	o.Metrics.Count("wal.recoveries", 1)
	o.Metrics.Count("wal.replay.records", rs.ReplayedRecords)
	o.Metrics.Count("wal.torn.bytes", rs.TornBytes)
	o.Metrics.Observe("wal.recovery.ns", rs.WallNs)
	d.start()
	return d, nil
}

// truncateFile durably cuts path to size.
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: opening segment for truncation: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("wal: syncing truncated segment: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing truncated segment: %w", cerr)
	}
	return nil
}

func newDurable(dir string, m *maintain.Maintained, meta []byte, o Options) *Durable {
	return &Durable{
		dir:     dir,
		o:       o,
		m:       m,
		meta:    append([]byte(nil), meta...),
		reg:     o.Metrics,
		ckptReq: make(chan struct{}, 1),
		syncReq: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
}

// start launches the background checkpointer and, for the asynchronous
// sync modes, the syncer.
func (d *Durable) start() {
	d.wg.Add(1)
	go d.checkpointer()
	if d.o.Sync == SyncBatch || d.o.Sync == SyncInterval {
		d.wg.Add(1)
		go d.syncer()
	}
}

// Maintained returns the resident skyline for reads. Mutate it only
// through Apply — direct writes would bypass the log.
func (d *Durable) Maintained() *maintain.Maintained { return d.m }

// Meta returns the opaque caller blob persisted with every snapshot.
func (d *Durable) Meta() []byte { return append([]byte(nil), d.meta...) }

// Dir returns the durable directory.
func (d *Durable) Dir() string { return d.dir }

// Recovery returns what Recover (or Create) did to open this handle.
func (d *Durable) Recovery() RecoveryStats { return d.rs }

// Apply validates the batch, appends it to the log (fsyncing per the
// sync policy), applies it to the resident state and publishes the next
// snapshot. The returned result is identical to maintain.Apply's. When
// the log itself fails (disk full, I/O error) the handle becomes
// read-only: every later Apply returns the sticky error and the resident
// state stays consistent with the log's acknowledged prefix.
func (d *Durable) Apply(deltas []maintain.Delta) (maintain.ApplyResult, error) {
	if err := d.m.CheckBatch(deltas); err != nil {
		return maintain.ApplyResult{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closing || d.closed {
		return maintain.ApplyResult{}, ErrClosed
	}
	if d.failed != nil {
		return maintain.ApplyResult{}, fmt.Errorf("wal: log failed earlier: %w", d.failed)
	}
	gen := d.m.Generation() + 1
	d.buf = appendBatchRecord(d.buf[:0], gen, deltas)
	if err := d.log.append(gen, d.buf); err != nil {
		var fe *fatalError
		if errors.As(err, &fe) {
			d.failed = err
		}
		return maintain.ApplyResult{}, err
	}
	switch d.o.Sync {
	case SyncAlways:
		crashPoint("append.unsynced", gen, nil, nil)
		if err := d.log.sync(); err != nil {
			d.failed = err
			return maintain.ApplyResult{}, err
		}
		crashPoint("append.synced", gen, nil, nil)
	default:
		select {
		case d.syncReq <- struct{}{}:
		default:
		}
	}
	res, err := d.m.Apply(deltas)
	if err != nil || res.Gen != gen {
		// CheckBatch passed, so this cannot happen; if it somehow does, the
		// log and the resident state have diverged — fail hard rather than
		// keep logging against an unknown state.
		if err == nil {
			err = fmt.Errorf("wal: applied generation %d, logged %d", res.Gen, gen)
		}
		d.failed = err
		return maintain.ApplyResult{}, d.failed
	}
	crashPoint("applied", gen, nil, nil)
	d.recsSinceCkpt++
	if d.o.CheckpointEvery > 0 && d.recsSinceCkpt >= d.o.CheckpointEvery {
		d.recsSinceCkpt = 0
		select {
		case d.ckptReq <- struct{}{}:
		default:
		}
	}
	return res, nil
}

// syncer is the background fsync loop for SyncBatch (signal-driven,
// coalescing) and SyncInterval (timer-driven).
func (d *Durable) syncer() {
	defer d.wg.Done()
	var tick <-chan time.Time
	if d.o.Sync == SyncInterval {
		t := time.NewTicker(d.o.SyncEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-d.stop:
			return
		case <-d.syncReq:
			if d.o.Sync == SyncInterval {
				continue // the ticker owns the cadence
			}
		case <-tick:
		}
		d.mu.Lock()
		if !d.closed && d.failed == nil {
			if err := d.log.sync(); err != nil {
				d.failed = err
			}
		}
		d.mu.Unlock()
	}
}

// checkpointer runs requested checkpoints off the Apply path.
func (d *Durable) checkpointer() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case <-d.ckptReq:
			d.Checkpoint() // errors are sticky in d.failed when fatal; retried next trigger otherwise
		}
	}
}

// snapshotState captures the serializable view at gen.
func (d *Durable) snapshotState(gen uint64, rows tuple.List) snapshotState {
	lo, hi := d.m.Bounds()
	return snapshotState{
		Gen:       gen,
		Dim:       d.m.Dim(),
		PPD:       d.m.PPD(),
		WindowCap: d.m.WindowCap(),
		Lo:        lo,
		Hi:        hi,
		Meta:      d.meta,
		Rows:      rows,
	}
}

// Checkpoint serializes the resident state at its current generation G,
// publishes it atomically (tmp + rename), and truncates every log segment
// whose records are all ≤ G. Skipping it never loses data — it only
// lengthens replay — so callers may treat errors as retryable unless the
// handle has already failed.
func (d *Durable) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.failed != nil {
		d.mu.Unlock()
		return d.failed
	}
	// The capture and the roll happen under the writer lock, so the sealed
	// segments hold exactly the records ≤ gen and the fresh active segment
	// starts at gen+1.
	if err := d.log.sync(); err != nil {
		d.failed = err
		d.mu.Unlock()
		return err
	}
	gen := d.m.Generation()
	rows := d.m.ArrivalRows()
	if d.log.records > 0 {
		if err := d.log.roll(gen + 1); err != nil {
			d.failed = err
			d.mu.Unlock()
			return err
		}
	}
	d.recsSinceCkpt = 0
	d.mu.Unlock()

	crashPoint("ckpt.before", gen, nil, nil)
	if _, err := writeSnapshot(d.dir, d.snapshotState(gen, rows)); err != nil {
		return err
	}
	crashPoint("ckpt.renamed", gen, nil, nil)
	d.cleanup(gen)
	d.reg.Count("wal.checkpoints", 1)
	d.reg.Observe("wal.checkpoint.ns", time.Since(start).Nanoseconds())
	crashPoint("ckpt.done", gen, nil, nil)
	return nil
}

// cleanup removes sealed segments fully covered by the snapshot at gen,
// snapshots older than it, and stray .tmp files from interrupted
// checkpoints.
func (d *Durable) cleanup(gen uint64) {
	d.mu.Lock()
	keep := d.log.sealed[:0]
	var drop []string
	for _, sg := range d.log.sealed {
		if sg.lastGen <= gen {
			drop = append(drop, sg.path)
		} else {
			keep = append(keep, sg)
		}
	}
	d.log.sealed = keep
	d.mu.Unlock()
	for _, path := range drop {
		if os.Remove(path) == nil {
			d.reg.Count("wal.segments.removed", 1)
		}
	}
	if snaps, err := listDir(d.dir, "snap-", ".ckpt"); err == nil {
		for _, sp := range snaps {
			if sp.seq < gen {
				os.Remove(sp.path)
			}
		}
	}
	if ents, err := os.ReadDir(d.dir); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".ckpt.tmp") {
				os.Remove(filepath.Join(d.dir, e.Name()))
			}
		}
	}
}

// Close writes a final checkpoint, truncates the log and releases the
// files. The handle must not be used afterwards; Close is idempotent.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed || d.closing {
		d.mu.Unlock()
		return nil
	}
	d.closing = true
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
	ckptErr := d.Checkpoint()
	d.mu.Lock()
	d.closed = true
	closeErr := d.log.close()
	d.mu.Unlock()
	if ckptErr != nil && !errors.Is(ckptErr, ErrClosed) {
		return ckptErr
	}
	return closeErr
}

// Abandon releases the files WITHOUT a final checkpoint or sync, leaving
// the directory exactly as a crash at this moment would — recovery tests
// and benches use it to measure real replay. Idempotent.
func (d *Durable) Abandon() error {
	d.mu.Lock()
	if d.closed || d.closing {
		d.mu.Unlock()
		return nil
	}
	d.closing = true
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
	d.mu.Lock()
	d.closed = true
	err := d.log.f.Close()
	d.mu.Unlock()
	return err
}
