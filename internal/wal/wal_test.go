package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mrskyline/internal/maintain"
	"mrskyline/internal/tuple"
)

// mkBatches builds a deterministic delta stream: mostly inserts with a
// sprinkling of deletes against rows inserted earlier. The same seed
// always yields the same stream, so a recovered instance can be compared
// against a fresh rebuild of any prefix.
func mkBatches(seed int64, n, dim int) [][]maintain.Delta {
	rng := rand.New(rand.NewSource(seed))
	var pool []tuple.Tuple
	out := make([][]maintain.Delta, n)
	for i := range out {
		batch := make([]maintain.Delta, 1+rng.Intn(4))
		for j := range batch {
			if len(pool) > 4 && rng.Float64() < 0.2 {
				k := rng.Intn(len(pool))
				batch[j] = maintain.Delta{Op: maintain.OpDelete, Row: pool[k].Clone()}
				pool = append(pool[:k], pool[k+1:]...)
				continue
			}
			row := make(tuple.Tuple, dim)
			for d := range row {
				row[d] = rng.Float64()
			}
			pool = append(pool, row)
			batch[j] = maintain.Delta{Op: maintain.OpInsert, Row: row.Clone()}
		}
		out[i] = batch
	}
	return out
}

// seedRows builds the deterministic seed dataset shared by a durable
// instance and its rebuild reference.
func seedRows(dim int) tuple.List {
	rng := rand.New(rand.NewSource(42))
	rows := make(tuple.List, 16)
	for i := range rows {
		rows[i] = make(tuple.Tuple, dim)
		for d := range rows[i] {
			rows[i][d] = rng.Float64()
		}
	}
	return rows
}

var testCfg = maintain.Config{Dim: 3, PPD: 4}

// rebuild replays the first k batches on a fresh maintain instance — the
// ground truth a recovered Durable must match byte for byte.
func rebuild(t *testing.T, k int, batches [][]maintain.Delta, cfg maintain.Config) *maintain.Maintained {
	t.Helper()
	m, err := maintain.New(seedRows(cfg.Dim).Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:k] {
		if _, err := m.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// mustEqualState asserts got reproduces want exactly: generation, skyline
// bytes, resident rows in arrival order.
func mustEqualState(t *testing.T, got, want *maintain.Maintained) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if gs.Gen != ws.Gen {
		t.Fatalf("generation = %d, want %d", gs.Gen, ws.Gen)
	}
	if !reflect.DeepEqual(gs.Skyline, ws.Skyline) {
		t.Fatalf("skyline diverged at gen %d:\n got %v\nwant %v", gs.Gen, gs.Skyline, ws.Skyline)
	}
	if g, w := got.ArrivalRows(), want.ArrivalRows(); !reflect.DeepEqual(g, w) {
		t.Fatalf("resident rows diverged: got %d rows, want %d", len(g), len(w))
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for gen := uint64(1); gen <= 20; gen++ {
		p := []byte{byte(gen), 0xab, byte(gen * 7)}
		want = append(want, p)
		if err := l.append(gen, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := scanSegment(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("payloads round-trip mismatch: %d vs %d records", len(got), len(want))
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, 64, nil) // minimum is clamped by Options, not here
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 40)
	for gen := uint64(1); gen <= 10; gen++ {
		if err := l.append(gen, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	if len(l.sealed) == 0 {
		t.Fatal("no segments sealed despite tiny segment size")
	}
	segs, err := listDir(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(l.sealed)+1 {
		t.Fatalf("%d segment files, want %d sealed + 1 active", len(segs), len(l.sealed))
	}
	// Every record must still be readable, in order, across the roll.
	var n uint64
	for _, sg := range segs {
		payloads, _, err := scanSegment(sg.path)
		if err != nil {
			t.Fatalf("%s: %v", sg.path, err)
		}
		n += uint64(len(payloads))
	}
	if n != 10 {
		t.Fatalf("scanned %d records across segments, want 10", n)
	}
}

func TestScanTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 5; gen++ {
		if err := l.append(gen, []byte{1, 2, 3, byte(gen)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, 1)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(b) - 1; cut > len(segMagic); cut-- {
		if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		payloads, goodOff, err := scanSegment(path)
		if err == nil {
			// A cut exactly on a record boundary is a clean shorter log.
			if goodOff != int64(cut) {
				t.Fatalf("cut at %d: clean scan stopped at %d", cut, goodOff)
			}
			continue
		}
		var te *tornError
		if !errors.As(err, &te) {
			t.Fatalf("cut at %d: error = %v, want tornError", cut, err)
		}
		if goodOff > int64(cut) || len(payloads) > 5 {
			t.Fatalf("cut at %d: goodOff %d past cut, %d payloads", cut, goodOff, len(payloads))
		}
	}
}

func TestScanBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= 5; gen++ {
		if err := l.append(gen, []byte{9, 9, 9, byte(gen)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, 1)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(orig); pos++ {
		b := append([]byte(nil), orig...)
		b[pos] ^= 0x40
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := scanSegment(path); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", pos)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := snapshotState{
		Gen:       7,
		Dim:       3,
		PPD:       4,
		WindowCap: 9,
		Lo:        tuple.Tuple{0, 0, 0},
		Hi:        tuple.Tuple{1, 2, 3},
		Meta:      []byte(`{"maximize":[true,false,true]}`),
		Rows:      seedRows(3),
	}
	path, err := writeSnapshot(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, st) {
		t.Fatalf("snapshot round-trip mismatch:\n got %+v\nwant %+v", *got, st)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path, err := writeSnapshot(dir, snapshotState{
		Gen: 3, Dim: 2, PPD: 2, Lo: tuple.Tuple{0, 0}, Hi: tuple.Tuple{1, 1},
		Rows: tuple.List{{0.5, 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(orig); pos++ {
		b := append([]byte(nil), orig...)
		b[pos] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rerr := readSnapshot(path)
		if !errors.Is(rerr, errSnapCorrupt) {
			t.Fatalf("flip at %d: error = %v, want errSnapCorrupt", pos, rerr)
		}
	}
	// Truncations must be caught too.
	for cut := len(orig) - 1; cut >= 0; cut -= 7 {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, rerr := readSnapshot(path); !errors.Is(rerr, errSnapCorrupt) {
			t.Fatalf("truncation to %d: error = %v, want errSnapCorrupt", cut, rerr)
		}
	}
}

func TestDurableCloseRecoverIdentity(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncBatch, SyncInterval} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			batches := mkBatches(1, 40, 3)
			d, err := Create(dir, seedRows(3).Clone(), testCfg, []byte("meta-blob"), Options{Sync: mode, CheckpointEvery: 16})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if _, err := d.Apply(b); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Recover(dir, Options{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if string(r.Meta()) != "meta-blob" {
				t.Fatalf("meta = %q, want %q", r.Meta(), "meta-blob")
			}
			// Close checkpoints, so a clean restart replays nothing.
			if rs := r.Recovery(); rs.ReplayedRecords != 0 || rs.TornBytes != 0 {
				t.Fatalf("clean restart replayed %d records, %d torn bytes", rs.ReplayedRecords, rs.TornBytes)
			}
			mustEqualState(t, r.Maintained(), rebuild(t, len(batches), batches, testCfg))
		})
	}
}

func TestDurableAbandonRecover(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(2, 30, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Abandon(); err != nil { // crash: no final checkpoint
		t.Fatal(err)
	}
	r, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rs := r.Recovery(); rs.ReplayedRecords != int64(len(batches)) {
		t.Fatalf("replayed %d records, want %d", rs.ReplayedRecords, len(batches))
	}
	mustEqualState(t, r.Maintained(), rebuild(t, len(batches), batches, testCfg))
}

func TestDurableResumeAfterRecover(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(3, 24, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:12] {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[12:] {
		if _, err := r.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	mustEqualState(t, r2.Maintained(), rebuild(t, len(batches), batches, testCfg))
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(4, 20, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := listDir(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments after checkpoint, want only the fresh active one", len(segs))
	}
	snaps, err := listDir(dir, "snap-", ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots after checkpoint, want 1", len(snaps))
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rs := r.Recovery(); rs.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", rs.ReplayedRecords)
	}
	mustEqualState(t, r.Maintained(), rebuild(t, len(batches), batches, testCfg))
}

func TestDurableSlidingWindow(t *testing.T) {
	cfg := maintain.Config{Dim: 3, PPD: 4, WindowCap: 20}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	var batches [][]maintain.Delta
	for i := 0; i < 60; i++ {
		row := tuple.Tuple{rng.Float64(), rng.Float64(), rng.Float64()}
		batches = append(batches, []maintain.Delta{{Op: maintain.OpInsert, Row: row}})
	}
	d, err := Create(dir, seedRows(3).Clone(), cfg, nil, Options{Sync: SyncAlways, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(clone(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want, err := maintain.New(seedRows(3).Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := want.Apply(clone(b)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Maintained().WindowCap() != cfg.WindowCap {
		t.Fatalf("recovered WindowCap = %d, want %d", r.Maintained().WindowCap(), cfg.WindowCap)
	}
	mustEqualState(t, r.Maintained(), want)
}

func clone(b []maintain.Delta) []maintain.Delta {
	out := make([]maintain.Delta, len(b))
	for i, d := range b {
		out[i] = maintain.Delta{Op: d.Op, Row: d.Row.Clone()}
	}
	return out
}

func TestRecoverNoState(t *testing.T) {
	if _, err := Recover(t.TempDir(), Options{}); !errors.Is(err, ErrNoState) {
		t.Fatalf("error = %v, want ErrNoState", err)
	}
}

func TestCreateRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{}); err == nil {
		t.Fatal("Create over existing durable state succeeded; it must refuse")
	}
}

func TestApplyAfterCloseRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(mkBatches(5, 1, 3)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestDurableDifferential churns many seeds through random crash points:
// apply a random prefix, abandon, recover, compare to a rebuild, keep
// applying, close cleanly, recover again and compare to the full rebuild.
func TestDurableDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		batches := mkBatches(seed, 30, 3)
		cut := 1 + rng.Intn(len(batches)-1)
		mode := []SyncMode{SyncAlways, SyncBatch, SyncInterval}[seed%3]
		o := Options{Sync: mode, CheckpointEvery: 1 + rng.Intn(10), SegmentBytes: 4096}
		dir := t.TempDir()

		d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:cut] {
			if _, err := d.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
		if seed%2 == 0 {
			if err := d.Abandon(); err != nil {
				t.Fatal(err)
			}
		} else if err := d.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := Recover(dir, o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Everything here went through Apply and returned, and no process
		// died: even the async modes have fsynced or still hold the records
		// in the kernel, so the full prefix must recover.
		mustEqualState(t, r.Maintained(), rebuild(t, cut, batches, testCfg))
		for _, b := range batches[cut:] {
			if _, err := r.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Recover(dir, o)
		if err != nil {
			t.Fatalf("seed %d reopen: %v", seed, err)
		}
		mustEqualState(t, r2.Maintained(), rebuild(t, len(batches), batches, testCfg))
		if err := r2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverTornTail simulates a torn final write: garbage appended to
// the active segment must be discarded, everything before it recovered.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(6, 10, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	segs, err := listDir(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].path
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x17, 0xee, 0x03, 0x41, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rs := r.Recovery(); rs.TornBytes == 0 {
		t.Fatal("recovery reported no torn bytes despite appended garbage")
	}
	mustEqualState(t, r.Maintained(), rebuild(t, len(batches), batches, testCfg))
}

// TestRecoverRefusesMidLogCorruption: a flipped bit in a sealed (non-
// final) segment is not a torn tail — recovery must error, not serve a
// state missing acknowledged batches.
func TestRecoverRefusesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(7, 150, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: -1, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	segs, err := listDir(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥ 2 segments for the test, got %d", len(segs))
	}
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, Options{}); err == nil {
		t.Fatal("recovery over corrupt sealed segment succeeded; it must refuse")
	}
}

// TestRecoverFallsBackToOlderSnapshot: when the newest checkpoint is
// corrupt, recovery loads the previous one and replays a longer log.
func TestRecoverFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(8, 20, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil { // checkpoints at the final generation
		t.Fatal(err)
	}
	snaps, err := listDir(dir, "snap-", ".ckpt")
	if err != nil {
		t.Fatal(err)
	}
	newest := snaps[len(snaps)-1].path
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // break the newest checkpoint's checksum
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint truncated the log, so with it corrupt the seed
	// snapshot alone cannot rebuild the state — unless the log survives.
	// Re-append the full history by copying in a fresh directory is
	// overkill; instead verify the corrupt-snapshot path on a directory
	// that still has its log: checkpoint only at close, log truncated.
	// Falling back here must fail loudly rather than serve the stale seed.
	_, rerr := Recover(dir, Options{})
	if rerr == nil {
		t.Fatal("recovery served stale state after newest snapshot corruption with a truncated log")
	}
}

// TestRecoverOlderSnapshotWithIntactLog is the successful fallback: the
// newest snapshot is corrupt but the log still holds every record, so
// recovery replays from the older snapshot to the exact same state.
func TestRecoverOlderSnapshotWithIntactLog(t *testing.T) {
	dir := t.TempDir()
	batches := mkBatches(9, 20, 3)
	d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	gen := d.Maintained().Generation()
	rows := d.Maintained().ArrivalRows()
	// Hand-write a "newest" checkpoint and corrupt it, keeping the log: the
	// create-time seed snapshot plus the intact log must still win.
	path, err := writeSnapshot(dir, d.snapshotState(gen, rows))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.Recovery()
	if rs.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rs.CorruptSnapshots)
	}
	if rs.ReplayedRecords != int64(len(batches)) {
		t.Fatalf("replayed %d records from the fallback snapshot, want %d", rs.ReplayedRecords, len(batches))
	}
	mustEqualState(t, r.Maintained(), rebuild(t, len(batches), batches, testCfg))
}

// TestRecoverOrErrorNeverWrong sweeps random corruptions over a durable
// directory: recovery must either reproduce a prefix of the acknowledged
// history exactly or refuse — never panic, never serve anything else.
func TestRecoverOrErrorNeverWrong(t *testing.T) {
	batches := mkBatches(10, 25, 3)
	build := func(t *testing.T) string {
		dir := t.TempDir()
		d, err := Create(dir, seedRows(3).Clone(), testCfg, nil, Options{Sync: SyncAlways, CheckpointEvery: 10, SegmentBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			if _, err := d.Apply(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Abandon(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	// Prefix states a successful recovery is allowed to surface.
	valid := make(map[uint64]*maintain.Maintained)
	for k := 0; k <= len(batches); k++ {
		m := rebuild(t, k, batches, testCfg)
		valid[m.Generation()] = m
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		dir := build(t)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		victim := filepath.Join(dir, ents[rng.Intn(len(ents))].Name())
		raw, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			raw = raw[:rng.Intn(len(raw))] // truncate
		} else {
			raw[rng.Intn(len(raw))] ^= byte(1 << rng.Intn(8)) // flip a bit
		}
		if err := os.WriteFile(victim, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(dir, Options{})
		if err != nil {
			continue // refusing is always allowed
		}
		want, ok := valid[r.Maintained().Generation()]
		if !ok {
			t.Fatalf("trial %d (%s): recovered generation %d is not a valid history prefix", trial, victim, r.Maintained().Generation())
		}
		mustEqualState(t, r.Maintained(), want)
		r.Close()
	}
}
