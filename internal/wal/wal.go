// Package wal makes maintained skylines durable: a segmented, checksummed
// write-ahead log plus snapshot checkpoints, with crash recovery back to
// byte-identical state.
//
// PR 8's internal/maintain keeps the grid, per-cell windows and the
// pruning bitstring resident — state that a process crash silently loses.
// This package brings the durability discipline MapReduce gets from
// materialized intermediates (and BSP from checkpointed supersteps) to the
// always-on maintenance layer:
//
//   - Every delta batch is appended to the log — uvarint framing with an
//     incremental FNV-1a trailer per record, the same checksum style as
//     internal/spill's SKYRUN1 runs — BEFORE it is applied to the resident
//     state, under a configurable fsync policy (always / batch / interval).
//   - A background checkpointer serializes the resident state at its
//     current generation G (rows in global arrival order, which reproduces
//     every cell window and the sliding-window eviction order exactly) and
//     truncates log segments whose records are all ≤ G.
//   - Recovery loads the newest intact snapshot, replays the remaining
//     records in generation order, truncates a torn tail, and yields a
//     skyline byte-identical to a fresh rebuild of the logged batches. A
//     batch is either wholly recovered or wholly discarded — one log
//     record per batch means a torn write can never half-apply one.
//
// Layout of a durable directory:
//
//	snap-<gen 16-hex>.ckpt   checkpoint: config + rows at generation gen
//	wal-<gen 16-hex>.log     segment whose first record has that generation
//
// Corruption rules: a snapshot that fails its checksum is skipped in
// favor of an older one; a checksum break in the final segment is a torn
// tail and is truncated; a break in any earlier segment (or a generation
// gap) is hard corruption and Recover returns an error rather than serve
// wrong data.
package wal

import (
	"fmt"
	"strings"
	"time"

	"mrskyline/internal/obs"
)

// SyncMode selects when appended records are fsynced.
type SyncMode int

const (
	// SyncAlways fsyncs before every batch acknowledgement: an
	// acknowledged batch survives any crash. The default.
	SyncAlways SyncMode = iota
	// SyncBatch acknowledges after the buffered write and lets a
	// background syncer fsync continuously, coalescing bursts into few
	// fsyncs. Loss window on a crash: the batches behind the in-flight
	// fsync (typically single-digit milliseconds).
	SyncBatch
	// SyncInterval fsyncs on a timer (Options.SyncEvery). Loss window on
	// a crash: up to one interval of acknowledged batches.
	SyncInterval
)

// String implements fmt.Stringer for SyncMode.
func (s SyncMode) String() string {
	switch s {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(s))
	}
}

// ParseSyncMode parses "always", "batch" or "interval".
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want always|batch|interval)", s)
	}
}

// Options shapes a Durable log. The zero value is ready to use: fsync
// before every acknowledgement, 1 MiB segments, a checkpoint every 256
// batches.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncMode
	// SyncEvery is the SyncInterval period (default 50ms; ignored
	// otherwise).
	SyncEvery time.Duration
	// SegmentBytes is the roll threshold: a segment that has reached it is
	// sealed and a fresh one started (default 1 MiB, minimum 4 KiB).
	SegmentBytes int64
	// CheckpointEvery is the number of applied batches between background
	// checkpoints (default 256). Negative disables automatic checkpoints;
	// Close still writes a final one.
	CheckpointEvery int
	// Metrics, when non-nil, receives the wal.* series: append bytes and
	// records, fsync count and latency histogram, segments created and
	// removed, checkpoints, replayed records and recovery wall time.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	return o
}

func (o Options) validate() error {
	switch o.Sync {
	case SyncAlways, SyncBatch, SyncInterval:
	default:
		return fmt.Errorf("wal: unknown SyncMode %d", int(o.Sync))
	}
	if o.SyncEvery < 0 {
		return fmt.Errorf("wal: SyncEvery must be ≥ 0, got %v", o.SyncEvery)
	}
	if o.SegmentBytes < 0 {
		return fmt.Errorf("wal: SegmentBytes must be ≥ 0, got %d", o.SegmentBytes)
	}
	if o.SegmentBytes > 0 && o.SegmentBytes < 4096 {
		return fmt.Errorf("wal: SegmentBytes %d below the 4096-byte minimum", o.SegmentBytes)
	}
	return nil
}
