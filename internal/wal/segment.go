package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"mrskyline/internal/obs"
)

// Segment file layout. Records are length-prefixed like spill's SKYRUN1
// runs, but because a log grows record by record the checksum cannot be a
// single end-of-file trailer: each record instead carries the running
// FNV-1a over every byte of the file so far (magic, all earlier frames,
// payloads and sums, this record's frame and payload). A reader replays
// the same incremental hash, so a flipped bit or torn write anywhere is
// caught at the first record it touches:
//
//	magic   8 bytes  "SKYWAL1\n"
//	records          uvarint(plen) payload sum8
//
// where sum8 is the little-endian running FNV-1a just described.
const segMagic = "SKYWAL1\n"

// fnv64a is a resumable 64-bit FNV-1a state (same parameters as
// hash/fnv): the value IS the checksum, so a scanner can branch the hash
// at a record boundary without re-reading the prefix.
type fnv64a uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFNV() fnv64a { return fnvOffset64 }

func (h *fnv64a) Write(p []byte) (int, error) {
	s := uint64(*h)
	for _, b := range p {
		s ^= uint64(b)
		s *= fnvPrime64
	}
	*h = fnv64a(s)
	return len(p), nil
}

func (h fnv64a) Sum64() uint64 { return uint64(h) }

// segInfo describes one sealed segment: the generations its records span
// and its path. An empty segment has lastGen == firstGen-1.
type segInfo struct {
	firstGen, lastGen uint64
	path              string
}

func segPath(dir string, firstGen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", firstGen))
}

// segmentLog is the writer side of the log: one active segment plus the
// sealed ones not yet truncated by a checkpoint. All methods must be
// called under the owning Durable's mutex.
type segmentLog struct {
	dir      string
	segBytes int64
	reg      *obs.Registry

	f                 *os.File
	h                 fnv64a
	size              int64
	records           int64
	firstGen, lastGen uint64
	sealed            []segInfo
	buf               []byte
}

// openLog creates a fresh log whose first segment starts at firstGen.
func openLog(dir string, firstGen uint64, segBytes int64, reg *obs.Registry) (*segmentLog, error) {
	l := &segmentLog{dir: dir, segBytes: segBytes, reg: reg}
	if err := l.openSegment(firstGen); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment starts a new active segment file (magic written and synced,
// directory entry synced) whose first record will carry firstGen.
func (l *segmentLog) openSegment(firstGen uint64) error {
	path := segPath(l.dir, firstGen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	h := newFNV()
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	h.Write([]byte(segMagic))
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.f, l.h = f, h
	l.size = int64(len(segMagic))
	l.records = 0
	l.firstGen, l.lastGen = firstGen, firstGen-1
	l.reg.Count("wal.segments.created", 1)
	return nil
}

// append writes one framed record carrying gen. On a short or failed
// write it truncates the file back to the pre-record offset so the log
// stays parseable; if even that repair fails the returned error is fatal
// and the caller must stop using the log.
func (l *segmentLog) append(gen uint64, payload []byte) error {
	if l.records > 0 && l.size >= l.segBytes {
		if err := l.roll(gen); err != nil {
			return err
		}
	}
	l.buf = binary.AppendUvarint(l.buf[:0], uint64(len(payload)))
	l.buf = append(l.buf, payload...)
	h := l.h // branch the running hash so a failed append leaves it intact
	h.Write(l.buf)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	h.Write(sum[:])
	l.buf = append(l.buf, sum[:]...)
	crashPoint("append.write", gen, l.f, l.buf)
	if _, err := l.f.Write(l.buf); err != nil {
		if terr := l.truncateTo(l.size); terr != nil {
			return &fatalError{fmt.Errorf("wal: append failed (%v) and truncate repair failed: %w", err, terr)}
		}
		return fmt.Errorf("wal: appending record: %w", err)
	}
	l.h = h
	l.size += int64(len(l.buf))
	l.records++
	l.lastGen = gen
	l.reg.Count("wal.append.records", 1)
	l.reg.Count("wal.append.bytes", int64(len(l.buf)))
	return nil
}

// truncateTo cuts the active segment back to off and repositions the
// write offset there.
func (l *segmentLog) truncateTo(off int64) error {
	if err := l.f.Truncate(off); err != nil {
		return err
	}
	_, err := l.f.Seek(off, 0)
	return err
}

// fatalError marks log failures the caller cannot retry past.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// sync fsyncs the active segment, recording latency.
func (l *segmentLog) sync() error {
	start := time.Now()
	err := l.f.Sync()
	l.reg.Observe("wal.fsync.ns", time.Since(start).Nanoseconds())
	l.reg.Count("wal.fsyncs", 1)
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// roll seals the active segment (synced and closed) and starts a fresh
// one whose first record will carry nextFirstGen.
func (l *segmentLog) roll(nextFirstGen uint64) error {
	if err := l.sync(); err != nil {
		return err
	}
	path := l.f.Name()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, segInfo{firstGen: l.firstGen, lastGen: l.lastGen, path: path})
	return l.openSegment(nextFirstGen)
}

// close syncs and closes the active segment.
func (l *segmentLog) close() error {
	serr := l.sync()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing segment: %w", cerr)
	}
	return nil
}

// tornError reports a segment whose bytes stop checksumming at Off —
// either a torn tail (recoverable by truncation when it is the final
// segment) or hard corruption (anywhere else).
type tornError struct {
	Path string
	Off  int64 // last offset at which the segment was intact
	Lost int64 // bytes past Off
}

func (e *tornError) Error() string {
	return fmt.Sprintf("wal: segment %s breaks at offset %d (%d bytes unreadable)", e.Path, e.Off, e.Lost)
}

// maxRecordBytes bounds a single record frame during scanning, so a
// corrupt length prefix cannot drive a giant allocation.
const maxRecordBytes = 1 << 30

// scanSegment replays one segment's records, verifying the running
// checksum record by record. It returns every intact payload (aliasing
// one shared buffer — decode before the caller drops it), the offset up
// to which the file checks out, and a *tornError when anything past that
// offset fails to parse or verify.
func scanSegment(path string) (payloads [][]byte, goodOff int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		return nil, 0, &tornError{Path: path, Off: 0, Lost: int64(len(b))}
	}
	h := newFNV()
	h.Write(b[:len(segMagic)])
	off := int64(len(segMagic))
	for off < int64(len(b)) {
		plen, n := binary.Uvarint(b[off:])
		if n <= 0 || plen > maxRecordBytes || plen > uint64(math.MaxInt64) ||
			int64(plen) > int64(len(b))-off-int64(n)-8 {
			break
		}
		end := off + int64(n) + int64(plen)
		hr := h
		hr.Write(b[off:end])
		if binary.LittleEndian.Uint64(b[end:end+8]) != hr.Sum64() {
			break
		}
		hr.Write(b[end : end+8])
		h = hr
		payloads = append(payloads, b[off+int64(n):end])
		off = end + 8
	}
	if off != int64(len(b)) {
		return payloads, off, &tornError{Path: path, Off: off, Lost: int64(len(b)) - off}
	}
	return payloads, off, nil
}

// syncDir fsyncs a directory so entry creations, renames and removals
// inside it are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("wal: syncing dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing dir after sync: %w", cerr)
	}
	return nil
}
