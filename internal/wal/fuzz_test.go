package wal

// Replay fuzzers: arbitrary bytes fed to the segment scanner, the record
// decoder and the snapshot reader must produce recover-or-error behavior
// — never a panic, never an over-allocation, and for the scanner never a
// payload past the verified prefix. `go test` runs the seed corpus; `go
// test -fuzz` explores further.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mrskyline/internal/maintain"
	"mrskyline/internal/tuple"
)

// validSegmentBytes builds an intact two-record segment in memory by
// writing one through the real writer.
func validSegmentBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	l, err := openLog(dir, 1, 1<<20, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for gen := uint64(1); gen <= 2; gen++ {
		p := appendBatchRecord(nil, gen, mkBatches(int64(gen), 1, 3)[0])
		if err := l.append(gen, p); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func validSnapshotBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path, err := writeSnapshot(dir, snapshotState{
		Gen: 5, Dim: 3, PPD: 4, Lo: tuple.Tuple{0, 0, 0}, Hi: tuple.Tuple{1, 1, 1},
		Meta: []byte(`{"maximize":null}`), Rows: seedRows(3),
	})
	if err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func FuzzScanSegment(f *testing.F) {
	valid := validSegmentBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, b []byte) {
		path := filepath.Join(t.TempDir(), "seg.log")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		payloads, goodOff, err := scanSegment(path)
		if err == nil && goodOff != int64(len(b)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", goodOff, len(b))
		}
		if goodOff > int64(len(b)) {
			t.Fatalf("goodOff %d past end of %d-byte input", goodOff, len(b))
		}
		// Whatever the scanner accepted, the decoder must handle without
		// panicking too.
		for _, p := range payloads {
			decodeBatchRecord(p)
		}
	})
}

func FuzzDecodeBatchRecord(f *testing.F) {
	f.Add(appendBatchRecord(nil, 3, mkBatches(1, 1, 3)[0]))
	f.Add([]byte{recBatch})
	f.Add([]byte{recBatch, 0x01, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		gen, deltas, err := decodeBatchRecord(b)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the identical bytes: the
		// codec is a bijection on its valid range.
		if got := appendBatchRecord(nil, gen, deltas); !bytes.Equal(got, b) {
			t.Fatalf("decode/encode round-trip diverged:\n in  %x\n out %x", b, got)
		}
		for _, d := range deltas {
			if d.Op != maintain.OpInsert && d.Op != maintain.OpDelete {
				_ = d // unknown ops decode; maintain.CheckBatch rejects them
			}
		}
	})
}

func FuzzReadSnapshot(f *testing.F) {
	valid := validSnapshotBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		path := filepath.Join(t.TempDir(), "snap.ckpt")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := readSnapshot(path)
		if err != nil {
			return
		}
		if len(st.Lo) != st.Dim || len(st.Hi) != st.Dim {
			t.Fatalf("accepted snapshot with inconsistent domain: dim %d, lo %d, hi %d", st.Dim, len(st.Lo), len(st.Hi))
		}
		for _, r := range st.Rows {
			if len(r) != st.Dim {
				t.Fatalf("accepted snapshot with ragged row")
			}
		}
	})
}
