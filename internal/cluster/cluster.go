// Package cluster simulates the compute side of a MapReduce deployment: a
// set of named nodes, each with a fixed number of task slots, onto which
// map and reduce tasks are scheduled with data-locality preference and
// bounded retry — the role Hadoop's JobTracker/TaskTrackers play in the
// paper's 13-machine cluster.
//
// Tasks run as goroutines, so the wall-clock behaviour of the simulated
// cluster mirrors the parallelism structure of the real one: a job with a
// single reduce task serializes its merge work no matter how many nodes
// exist, which is exactly the bottleneck MR-GPMRS is designed to remove.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mrskyline/internal/obs"
)

// Node describes one simulated machine.
type Node struct {
	// Name identifies the node; it must be unique within the cluster.
	Name string
	// Slots is the number of tasks the node can run concurrently.
	Slots int
	// Speed is the node's relative compute speed used by simulated-time
	// accounting (1.0 = reference; the paper's cluster mixes 2.8 GHz and
	// 2.13 GHz machines). Zero means 1.0.
	Speed float64
}

// Task is one schedulable unit of work.
type Task struct {
	// Name is used in error messages.
	Name string
	// Preferred lists nodes that hold the task's input locally; the
	// scheduler places the task there when a slot is free.
	Preferred []string
	// Run executes the task on the given node and slot (0-based within the
	// node; SlotTrack(node, slot) names its trace track). A non-nil error
	// triggers a retry on a different node (when possible) up to the
	// attempt budget.
	Run func(node string, slot int) error
}

// Stats aggregates scheduling telemetry across a Run call.
type Stats struct {
	// TasksRun counts task attempts that were started.
	TasksRun int64
	// LocalityHits counts attempts placed on a preferred node.
	LocalityHits int64
	// Retries counts attempts after a failure.
	Retries int64
	// PerNode counts attempts per node name.
	PerNode map[string]int64
}

// Cluster is a fixed set of nodes with task slots. It is safe for
// concurrent use; multiple jobs may share one cluster.
type Cluster struct {
	nodes []Node

	mu   sync.Mutex
	cond *sync.Cond
	free map[string]int
	busy map[string][]bool
	down map[string]bool

	trace *obs.Tracer
}

// New creates a cluster. Every node needs a unique name and at least one
// slot.
func New(nodes []Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: at least one node required")
	}
	free := make(map[string]int, len(nodes))
	for _, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if _, dup := free[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		if n.Slots < 1 {
			return nil, fmt.Errorf("cluster: node %q has %d slots", n.Name, n.Slots)
		}
		if n.Speed < 0 {
			return nil, fmt.Errorf("cluster: node %q has negative speed %g", n.Name, n.Speed)
		}
		free[n.Name] = n.Slots
	}
	busy := make(map[string][]bool, len(nodes))
	for _, n := range nodes {
		busy[n.Name] = make([]bool, n.Slots)
	}
	c := &Cluster{nodes: append([]Node(nil), nodes...), free: free, busy: busy, down: make(map[string]bool)}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Uniform is a convenience constructor: n nodes named node0..node{n-1} with
// the given number of slots each.
func Uniform(n, slots int) (*Cluster, error) {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node%d", i), Slots: slots}
	}
	return New(nodes)
}

// SetTrace attaches a tracer; every subsequent task attempt records a
// slot-occupancy span on its SlotTrack. A nil tracer (the default)
// disables recording. Call before Run; not synchronized with running
// jobs.
func (c *Cluster) SetTrace(tr *obs.Tracer) { c.trace = tr }

// Trace returns the tracer attached with SetTrace (nil when disabled).
func (c *Cluster) Trace() *obs.Tracer { return c.trace }

// SlotTrack names the trace track of one task slot, e.g. "node3/s1".
func SlotTrack(node string, slot int) string {
	return fmt.Sprintf("%s/s%d", node, slot)
}

// Nodes returns the node names in configuration order.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Name
	}
	return out
}

// NodeInfo returns a copy of the node configuration (names, slots, speeds)
// in configuration order. The virtual fault scheduler builds its slot
// topology from this.
func (c *Cluster) NodeInfo() []Node {
	return append([]Node(nil), c.nodes...)
}

// SetDown marks a node dead (down = true) or repaired (down = false). Dead
// nodes receive no new task placements; attempts already running on them
// finish normally — the caller decides whether their results count, the way
// a JobTracker ignores a lost tracker's output. Returns an error for
// unknown nodes.
func (c *Cluster) SetDown(name string, down bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name == name {
			if down {
				c.down[name] = true
			} else {
				delete(c.down, name)
			}
			// Placement choices may have changed; wake waiting acquires so
			// they re-evaluate (a repair can unblock a starved job).
			c.cond.Broadcast()
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown node %q", name)
}

// IsDown reports whether the node is currently marked dead.
func (c *Cluster) IsDown(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[name]
}

// TotalSlots returns the cluster-wide slot count.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Slots
	}
	return total
}

// BusySlots returns the number of slots currently occupied by running task
// attempts, across all jobs sharing the cluster. Serving front-ends expose
// it as a utilization gauge.
func (c *Cluster) BusySlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	busy := 0
	for _, n := range c.nodes {
		busy += n.Slots - c.free[n.Name]
	}
	return busy
}

// SlotSpeeds returns one relative speed per slot (a node contributes its
// speed once per slot), for simulated-time scheduling. Unset speeds read
// as 1.0.
func (c *Cluster) SlotSpeeds() []float64 {
	var out []float64
	for _, n := range c.nodes {
		sp := n.Speed
		if sp == 0 {
			sp = 1
		}
		for i := 0; i < n.Slots; i++ {
			out = append(out, sp)
		}
	}
	return out
}

// takeSlot claims the lowest free slot index on node. Caller holds c.mu
// and has checked c.free[node] > 0.
func (c *Cluster) takeSlot(node string) int {
	for i, b := range c.busy[node] {
		if !b {
			c.busy[node][i] = true
			c.free[node]--
			return i
		}
	}
	panic("cluster: free count and busy slots out of sync")
}

// acquire blocks until a slot is free, preferring the preferred nodes and
// avoiding the nodes in avoid (unless only avoided nodes exist). Dead nodes
// are never chosen. It returns the chosen node name, the claimed slot
// index on it, and whether the placement was local.
func (c *Cluster) acquire(preferred []string, avoid map[string]bool, aborted *bool) (string, int, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if *aborted {
			return "", 0, false, errAborted
		}
		// Preferred node with a free slot?
		for _, p := range preferred {
			if avoid[p] || c.down[p] {
				continue
			}
			if c.free[p] > 0 {
				return p, c.takeSlot(p), true, nil
			}
		}
		// Any non-avoided node with a free slot (configuration order for
		// determinism of the choice set, not of timing).
		alive := 0
		for _, n := range c.nodes {
			if c.down[n.Name] {
				continue
			}
			alive++
			if avoid[n.Name] {
				continue
			}
			if c.free[n.Name] > 0 {
				return n.Name, c.takeSlot(n.Name), false, nil
			}
		}
		if alive == 0 {
			return "", 0, false, errNoAliveNodes
		}
		// Everything usable is busy — or every alive node is avoided; in the
		// latter case relax the avoid set rather than deadlock.
		if len(avoid) >= alive {
			for n := range avoid {
				delete(avoid, n)
			}
			continue
		}
		c.cond.Wait()
	}
}

func (c *Cluster) release(node string, slot int) {
	c.mu.Lock()
	c.busy[node][slot] = false
	c.free[node]++
	c.cond.Broadcast()
	c.mu.Unlock()
}

var (
	errAborted      = errors.New("cluster: job aborted after failure")
	errNoAliveNodes = errors.New("cluster: no alive nodes")
)

// runAttempt executes one task attempt with the slot released on every exit
// path and panics converted to errors, so a panicking mapper or reducer
// flows through the same retry machinery as a returned error instead of
// leaking the slot and killing the process. With a tracer attached, the
// attempt is bracketed by a slot-occupancy span — ended (LIFO defers:
// recover, span, release) after panic recovery and before the slot frees,
// so spans on one slot track never overlap.
func (c *Cluster) runAttempt(task *Task, node string, slot int) (err error) {
	defer c.release(node, slot)
	sp := c.trace.Start(SlotTrack(node, slot), task.Name, obs.CatSlot)
	defer func() {
		state := "ok"
		if err != nil {
			state = "error"
		}
		sp.EndWith(obs.Arg{Key: "state", Value: state})
	}()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("task %q panicked on %s: %v", task.Name, node, p)
		}
	}()
	return task.Run(node, slot)
}

// Run executes all tasks, each allowed maxAttempts attempts (min 1). It
// returns the first task error once every started task has finished, or
// nil. Stats, when non-nil, receives scheduling telemetry.
func (c *Cluster) Run(tasks []Task, maxAttempts int, stats *Stats) error {
	return c.RunContext(context.Background(), tasks, maxAttempts, stats)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) the scheduler stops placing new attempts and returns
// ctx's error once every already-running attempt has finished. Running
// task bodies are never preempted — exactly how a JobTracker kills a job:
// pending tasks are dropped, in-flight attempts drain.
func (c *Cluster) RunContext(ctx context.Context, tasks []Task, maxAttempts int, stats *Stats) error {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		aborted  bool
		statMu   sync.Mutex
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			c.mu.Lock()
			aborted = true
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	if ctx.Done() != nil {
		// A watcher turns ctx cancellation into a job abort: waiting
		// acquires observe the aborted flag on the broadcast and unwind.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-stop:
			}
		}()
	}
	record := func(node string, local, retry bool) {
		if stats == nil {
			return
		}
		statMu.Lock()
		defer statMu.Unlock()
		stats.TasksRun++
		if local {
			stats.LocalityHits++
		}
		if retry {
			stats.Retries++
		}
		if stats.PerNode == nil {
			stats.PerNode = make(map[string]int64)
		}
		stats.PerNode[node]++
	}

	for i := range tasks {
		task := tasks[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			avoid := make(map[string]bool)
			var lastErr error
			for attempt := 1; attempt <= maxAttempts; attempt++ {
				node, slot, local, err := c.acquire(task.Preferred, avoid, &aborted)
				if err == errAborted {
					return // job already failed elsewhere
				}
				if err != nil {
					fail(fmt.Errorf("cluster: task %q: %w", task.Name, err))
					return
				}
				// Exactly one Stats record per started attempt; runAttempt
				// releases the slot on every exit path (including panics), so
				// PerNode counts stay in lockstep with TasksRun.
				record(node, local, attempt > 1)
				lastErr = c.runAttempt(&task, node, slot)
				if lastErr == nil {
					return
				}
				// Blame the node and try elsewhere, as Hadoop's speculative
				// re-execution does after a task-tracker failure.
				avoid[node] = true
			}
			fail(fmt.Errorf("cluster: task %q failed after %d attempts: %w", task.Name, maxAttempts, lastErr))
		}()
	}
	wg.Wait()
	return firstErr
}

// Paper returns the evaluation cluster of the reproduced paper: thirteen
// commodity machines — twelve with an Intel Pentium D 2.8 GHz Core2 and
// one with a 2.13 GHz part (speed 2.13/2.8 ≈ 0.76) — with the given task
// slots per node.
func Paper(slotsPerNode int) (*Cluster, error) {
	nodes := make([]Node, 13)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node%d", i), Slots: slotsPerNode, Speed: 1.0}
	}
	nodes[12].Speed = 2.13 / 2.8
	return New(nodes)
}
