package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/obs"
)

func TestNewValidation(t *testing.T) {
	if _, err := cluster.New(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := cluster.New([]cluster.Node{{Name: "", Slots: 1}}); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := cluster.New([]cluster.Node{{Name: "a", Slots: 0}}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := cluster.New([]cluster.Node{{Name: "a", Slots: 1}, {Name: "a", Slots: 1}}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestUniform(t *testing.T) {
	c, err := cluster.Uniform(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 3 || got[0] != "node0" || got[2] != "node2" {
		t.Errorf("Nodes = %v", got)
	}
	if c.TotalSlots() != 6 {
		t.Errorf("TotalSlots = %d", c.TotalSlots())
	}
}

func TestRunAllTasks(t *testing.T) {
	c, _ := cluster.Uniform(4, 2)
	var ran int64
	tasks := make([]cluster.Task, 50)
	for i := range tasks {
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(node string, _ int) error {
				atomic.AddInt64(&ran, 1)
				return nil
			},
		}
	}
	var stats cluster.Stats
	if err := c.Run(tasks, 1, &stats); err != nil {
		t.Fatal(err)
	}
	if ran != 50 {
		t.Errorf("ran %d tasks, want 50", ran)
	}
	if stats.TasksRun != 50 || stats.Retries != 0 {
		t.Errorf("stats = %+v", stats)
	}
	total := int64(0)
	for _, n := range stats.PerNode {
		total += n
	}
	if total != 50 {
		t.Errorf("per-node totals = %v", stats.PerNode)
	}
}

func TestSlotLimitRespected(t *testing.T) {
	c, _ := cluster.Uniform(2, 3) // 6 slots total
	var cur, peak int64
	var mu sync.Mutex
	tasks := make([]cluster.Task, 40)
	for i := range tasks {
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(node string, _ int) error {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				cur--
				mu.Unlock()
				return nil
			},
		}
	}
	if err := c.Run(tasks, 1, nil); err != nil {
		t.Fatal(err)
	}
	if peak > 6 {
		t.Errorf("peak concurrency %d exceeds 6 slots", peak)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d shows no parallelism", peak)
	}
}

func TestLocalityPreference(t *testing.T) {
	c, _ := cluster.Uniform(4, 4)
	var mu sync.Mutex
	placed := map[string]string{}
	tasks := make([]cluster.Task, 16)
	for i := range tasks {
		name := fmt.Sprintf("t%d", i)
		pref := fmt.Sprintf("node%d", i%4)
		tasks[i] = cluster.Task{
			Name:      name,
			Preferred: []string{pref},
			Run: func(node string, _ int) error {
				mu.Lock()
				placed[name] = node
				mu.Unlock()
				return nil
			},
		}
	}
	var stats cluster.Stats
	if err := c.Run(tasks, 1, &stats); err != nil {
		t.Fatal(err)
	}
	// With 4 slots per node and 4 tasks per preferred node, every task fits
	// on its preferred node.
	if stats.LocalityHits != 16 {
		t.Errorf("locality hits = %d, want 16 (placements: %v)", stats.LocalityHits, placed)
	}
}

func TestRetryOnDifferentNode(t *testing.T) {
	c, _ := cluster.Uniform(3, 1)
	var mu sync.Mutex
	var nodesTried []string
	task := cluster.Task{
		Name: "flaky",
		Run: func(node string, _ int) error {
			mu.Lock()
			nodesTried = append(nodesTried, node)
			n := len(nodesTried)
			mu.Unlock()
			if n < 3 {
				return errors.New("simulated crash")
			}
			return nil
		},
	}
	var stats cluster.Stats
	if err := c.Run([]cluster.Task{task}, 5, &stats); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if len(nodesTried) != 3 {
		t.Fatalf("attempts = %v", nodesTried)
	}
	if nodesTried[0] == nodesTried[1] || nodesTried[1] == nodesTried[2] || nodesTried[0] == nodesTried[2] {
		t.Errorf("retries reused a blamed node: %v", nodesTried)
	}
	if stats.Retries != 2 {
		t.Errorf("Retries = %d, want 2", stats.Retries)
	}
}

func TestRetryExhaustionFailsJob(t *testing.T) {
	c, _ := cluster.Uniform(2, 1)
	boom := errors.New("boom")
	task := cluster.Task{Name: "doomed", Run: func(string, int) error { return boom }}
	err := c.Run([]cluster.Task{task}, 3, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestAvoidSetRelaxesOnSingleNode(t *testing.T) {
	// With one node, a retry has nowhere else to go; the scheduler must
	// relax the avoid set rather than deadlock.
	c, _ := cluster.Uniform(1, 1)
	attempts := 0
	task := cluster.Task{
		Name: "stubborn",
		Run: func(node string, _ int) error {
			attempts++
			if attempts < 3 {
				return errors.New("again")
			}
			return nil
		},
	}
	done := make(chan error, 1)
	go func() { done <- c.Run([]cluster.Task{task}, 5, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler deadlocked on single-node retry")
	}
}

func TestFailureAbortsQueuedTasks(t *testing.T) {
	// After a task exhausts retries, queued tasks must not keep the job
	// alive forever; Run returns the first error.
	c, _ := cluster.Uniform(1, 1)
	block := make(chan struct{})
	var started int64
	tasks := []cluster.Task{
		{Name: "fail", Run: func(string, int) error { return errors.New("dead") }},
	}
	for i := 0; i < 20; i++ {
		tasks = append(tasks, cluster.Task{Name: fmt.Sprintf("later%d", i), Run: func(string, int) error {
			atomic.AddInt64(&started, 1)
			<-block
			return nil
		}})
	}
	done := make(chan error, 1)
	go func() { done <- c.Run(tasks, 1, nil) }()
	// Unblock any tasks that did start before the failure propagated.
	time.AfterFunc(100*time.Millisecond, func() { close(block) })
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil despite failed task")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after failure")
	}
}

func TestConcurrentJobsShareCluster(t *testing.T) {
	c, _ := cluster.Uniform(2, 2)
	var wg sync.WaitGroup
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]cluster.Task, 10)
			for i := range tasks {
				tasks[i] = cluster.Task{Name: "t", Run: func(string, int) error {
					time.Sleep(100 * time.Microsecond)
					return nil
				}}
			}
			if err := c.Run(tasks, 1, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestRunNoTasks(t *testing.T) {
	c, _ := cluster.Uniform(1, 1)
	if err := c.Run(nil, 1, nil); err != nil {
		t.Errorf("Run(nil) = %v", err)
	}
}

func TestPaperCluster(t *testing.T) {
	c, err := cluster.Paper(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 13 || c.TotalSlots() != 26 {
		t.Fatalf("paper cluster shape: %d nodes, %d slots", len(c.Nodes()), c.TotalSlots())
	}
	speeds := c.SlotSpeeds()
	if len(speeds) != 26 {
		t.Fatalf("slot speeds = %d", len(speeds))
	}
	slow := 0
	for _, s := range speeds {
		if s < 1 {
			slow++
		}
	}
	if slow != 2 {
		t.Errorf("%d slow slots, want 2 (one heterogeneous node × 2 slots)", slow)
	}
}

func TestNewRejectsNegativeSpeed(t *testing.T) {
	if _, err := cluster.New([]cluster.Node{{Name: "a", Slots: 1, Speed: -1}}); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestSlotSpeedsDefault(t *testing.T) {
	c, _ := cluster.Uniform(2, 3)
	for _, s := range c.SlotSpeeds() {
		if s != 1 {
			t.Fatalf("default speed = %v", s)
		}
	}
}

// TestPerNodeAttemptAccounting pins the attempt-accounting invariant: the
// PerNode counts must sum exactly to TasksRun, with every started attempt —
// first tries, error retries and panic retries alike — counted exactly once
// on the node that ran it.
func TestPerNodeAttemptAccounting(t *testing.T) {
	c, err := cluster.New([]cluster.Node{
		{Name: "n0", Slots: 1},
		{Name: "n1", Slots: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	tasks := []cluster.Task{
		{Name: "clean", Run: func(string, int) error { calls.Add(1); return nil }},
		{Name: "error-retry", Run: func() func(string, int) error {
			var n atomic.Int64
			return func(string, int) error {
				calls.Add(1)
				if n.Add(1) == 1 {
					return errors.New("first attempt fails")
				}
				return nil
			}
		}()},
		{Name: "panic-retry", Run: func() func(string, int) error {
			var n atomic.Int64
			return func(string, int) error {
				calls.Add(1)
				if n.Add(1) == 1 {
					panic("first attempt panics")
				}
				return nil
			}
		}()},
	}
	var stats cluster.Stats
	if err := c.Run(tasks, 3, &stats); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	// 3 tasks + 2 retries = 5 started attempts.
	if stats.TasksRun != 5 {
		t.Errorf("TasksRun = %d, want 5", stats.TasksRun)
	}
	if got := calls.Load(); got != 5 {
		t.Errorf("Run invocations = %d, want 5", got)
	}
	var perNodeSum int64
	for _, n := range stats.PerNode {
		perNodeSum += n
	}
	if perNodeSum != stats.TasksRun {
		t.Errorf("PerNode sums to %d but TasksRun = %d; attempts double- or under-counted", perNodeSum, stats.TasksRun)
	}
	if stats.Retries != 2 {
		t.Errorf("Retries = %d, want 2", stats.Retries)
	}
}

// TestTaskPanicRetries: a panicking Task.Run must release its slot and
// count as a failed attempt (this used to crash the whole process and leak
// the slot), so the task retries elsewhere and the job completes.
func TestTaskPanicRetries(t *testing.T) {
	c, err := cluster.Uniform(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int64
	tasks := []cluster.Task{{
		Name: "panicky",
		Run: func(node string, _ int) error {
			if attempts.Add(1) == 1 {
				panic("boom")
			}
			return nil
		},
	}}
	if err := c.Run(tasks, 2, nil); err != nil {
		t.Fatalf("panicking first attempt was not retried: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	// The slot leaked if a follow-up job cannot run on the same cluster.
	if err := c.Run([]cluster.Task{
		{Name: "a", Run: func(string, int) error { return nil }},
		{Name: "b", Run: func(string, int) error { return nil }},
	}, 1, nil); err != nil {
		t.Fatalf("cluster unusable after panic recovery: %v", err)
	}

	// A panic on every attempt must exhaust the budget with a clean error.
	always := []cluster.Task{{
		Name: "cursed",
		Run:  func(string, int) error { panic("always") },
	}}
	err = c.Run(always, 2, nil)
	if err == nil {
		t.Fatal("always-panicking task reported success")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempts") {
		t.Errorf("error %q does not report the attempt budget", err)
	}
}

// TestSetDown: dead nodes receive no placements; repairs restore them;
// unknown names error.
func TestSetDown(t *testing.T) {
	c, err := cluster.Uniform(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetDown("nope", true); err == nil {
		t.Error("SetDown accepted an unknown node")
	}
	if err := c.SetDown("node1", true); err != nil {
		t.Fatal(err)
	}
	if !c.IsDown("node1") {
		t.Error("node1 not reported down")
	}
	var mu sync.Mutex
	placed := map[string]int{}
	tasks := make([]cluster.Task, 6)
	for i := range tasks {
		tasks[i] = cluster.Task{Name: fmt.Sprintf("t%d", i), Run: func(node string, _ int) error {
			mu.Lock()
			placed[node]++
			mu.Unlock()
			return nil
		}}
	}
	if err := c.Run(tasks, 1, nil); err != nil {
		t.Fatal(err)
	}
	if placed["node1"] != 0 {
		t.Errorf("dead node1 received %d placements", placed["node1"])
	}
	if err := c.SetDown("node1", false); err != nil {
		t.Fatal(err)
	}
	if c.IsDown("node1") {
		t.Error("node1 still down after repair")
	}

	// With every node down, a job must fail fast instead of deadlocking.
	for _, n := range c.Nodes() {
		if err := c.SetDown(n, true); err != nil {
			t.Fatal(err)
		}
	}
	err = c.Run([]cluster.Task{{Name: "stuck", Run: func(string, int) error { return nil }}}, 1, nil)
	if err == nil {
		t.Fatal("job on an all-dead cluster reported success")
	}
	if !strings.Contains(err.Error(), "no alive nodes") {
		t.Errorf("error %q does not report dead cluster", err)
	}
}

// TestSlotOccupancySpans: with a tracer attached, every attempt records a
// span on its slot's track, spans on one track never overlap, and failed
// attempts carry an error state arg.
func TestSlotOccupancySpans(t *testing.T) {
	c, _ := cluster.Uniform(2, 2)
	tr := obs.New()
	c.SetTrace(tr)
	var failedOnce atomic.Bool
	tasks := make([]cluster.Task, 9)
	for i := range tasks {
		tasks[i] = cluster.Task{Name: fmt.Sprintf("t%d", i), Run: func(string, int) error {
			time.Sleep(200 * time.Microsecond)
			return nil
		}}
	}
	tasks[8].Run = func(string, int) error {
		if failedOnce.CompareAndSwap(false, true) {
			return errors.New("first attempt fails")
		}
		return nil
	}
	if err := c.Run(tasks, 2, nil); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 10 { // 9 tasks + 1 retry
		t.Fatalf("got %d spans, want 10", len(spans))
	}
	states := map[string]int{}
	lastEnd := map[string]time.Duration{}
	for _, s := range spans {
		if s.Cat != obs.CatSlot {
			t.Fatalf("span cat = %q", s.Cat)
		}
		var nodeIdx, slot int
		if n, _ := fmt.Sscanf(s.Track, "node%d/s%d", &nodeIdx, &slot); n != 2 {
			t.Fatalf("track %q is not a slot track", s.Track)
		}
		if s.Start < lastEnd[s.Track] {
			t.Fatalf("span %q on %s starts at %v before previous span ended at %v",
				s.Name, s.Track, s.Start, lastEnd[s.Track])
		}
		lastEnd[s.Track] = s.End
		for _, a := range s.Args {
			if a.Key == "state" {
				states[a.Value]++
			}
		}
	}
	if states["error"] != 1 || states["ok"] != 9 {
		t.Fatalf("state args = %v, want 1 error + 9 ok", states)
	}
}

func TestRunContextCancellation(t *testing.T) {
	c, _ := cluster.Uniform(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started int64
	tasks := make([]cluster.Task, 8)
	for i := range tasks {
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(string, int) error {
				if atomic.AddInt64(&started, 1) == 1 {
					close(release)
					<-ctx.Done() // hold the only slot until cancelled
				}
				return nil
			},
		}
	}
	go func() {
		<-release
		cancel()
	}()
	err := c.RunContext(ctx, tasks, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// Cancellation aborts placement: with a single slot held until the
	// cancel, most tasks must never have started.
	if n := atomic.LoadInt64(&started); n == 8 {
		t.Errorf("all %d tasks started despite cancellation", n)
	}
}

func TestBusySlots(t *testing.T) {
	c, _ := cluster.Uniform(2, 2)
	if got := c.BusySlots(); got != 0 {
		t.Fatalf("idle BusySlots = %d", got)
	}
	inTask := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- c.Run([]cluster.Task{{Name: "hold", Run: func(string, int) error {
			close(inTask)
			<-release
			return nil
		}}}, 1, nil)
	}()
	<-inTask
	if got := c.BusySlots(); got != 1 {
		t.Errorf("BusySlots during task = %d, want 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := c.BusySlots(); got != 0 {
		t.Errorf("BusySlots after run = %d, want 0", got)
	}
}
