// Package datagen produces the synthetic datasets the paper evaluates on:
// independent and anti-correlated distributions "generated according to the
// existing methods" of the classic skyline benchmark generator
// [Börzsönyi, Kossmann, Stocker: The Skyline Operator, ICDE 2001]. The
// correlated distribution from the same generator is included for
// completeness.
//
// All generators are deterministic functions of (distribution, cardinality,
// dimensionality, seed), so every experiment in this repository is exactly
// reproducible.
package datagen

import (
	"fmt"
	"math/rand"

	"mrskyline/internal/tuple"
)

// Distribution identifies a synthetic data distribution.
type Distribution int

const (
	// Independent draws every dimension uniformly from [0,1).
	Independent Distribution = iota
	// Correlated draws tuples near the main diagonal: a tuple good in one
	// dimension tends to be good in all. Skylines are tiny.
	Correlated
	// AntiCorrelated draws tuples near the anti-diagonal plane: a tuple
	// good in one dimension tends to be bad in the others. Skylines are
	// huge — the regime where MR-GPMRS shines in the paper.
	AntiCorrelated
)

// String implements fmt.Stringer for Distribution.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anticorrelated"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution converts a string (as used by the CLI tools) into a
// Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "independent", "indep", "uniform":
		return Independent, nil
	case "correlated", "corr":
		return Correlated, nil
	case "anticorrelated", "anti", "anti-correlated":
		return AntiCorrelated, nil
	default:
		return 0, fmt.Errorf("datagen: unknown distribution %q (want independent|correlated|anticorrelated)", s)
	}
}

// Generate returns card d-dimensional tuples with values in [0,1) drawn
// from the given distribution, deterministically for a given seed.
func Generate(dist Distribution, card, d int, seed int64) tuple.List {
	if card < 0 || d < 1 {
		panic(fmt.Sprintf("datagen: invalid shape card=%d d=%d", card, d))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(tuple.List, card)
	for i := range out {
		out[i] = next(dist, rng, d)
	}
	return out
}

// Stream invokes fn with each of card d-dimensional tuples in turn without
// materializing the whole dataset, stopping at the first error. The tuple
// sequence is identical to Generate's for the same parameters — both draw
// sequentially from one seeded source — so streamed and in-memory pipelines
// see byte-identical data. The tuple passed to fn is freshly allocated; fn
// may retain it.
func Stream(dist Distribution, card, d int, seed int64, fn func(tuple.Tuple) error) error {
	if card < 0 || d < 1 {
		panic(fmt.Sprintf("datagen: invalid shape card=%d d=%d", card, d))
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < card; i++ {
		if err := fn(next(dist, rng, d)); err != nil {
			return err
		}
	}
	return nil
}

// next draws one tuple. The three procedures follow the published benchmark
// generator: random_equal, random_peak and random_normal are direct
// adaptations of its helper functions.
func next(dist Distribution, rng *rand.Rand, d int) tuple.Tuple {
	switch dist {
	case Independent:
		t := make(tuple.Tuple, d)
		for k := range t {
			t[k] = rng.Float64()
		}
		return t
	case Correlated:
		return nextCorrelated(rng, d)
	case AntiCorrelated:
		return nextAntiCorrelated(rng, d)
	default:
		panic(fmt.Sprintf("datagen: unknown distribution %d", int(dist)))
	}
}

// randomEqual draws uniformly from [min, max).
func randomEqual(rng *rand.Rand, min, max float64) float64 {
	return min + rng.Float64()*(max-min)
}

// randomPeak draws a peaked value in [min, max): the mean of dim uniform
// draws, which concentrates around the midpoint as dim grows.
func randomPeak(rng *rand.Rand, min, max float64, dim int) float64 {
	s := 0.0
	for i := 0; i < dim; i++ {
		s += rng.Float64()
	}
	return min + (max-min)*s/float64(dim)
}

// randomNormal approximates a normal draw centred at med with spread vari
// using the generator's 12-fold peak construction.
func randomNormal(rng *rand.Rand, med, vari float64) float64 {
	return randomPeak(rng, med-vari, med+vari, 12)
}

// nextCorrelated draws one correlated tuple: a diagonal position v plus
// small compensating normal perturbations exchanged between neighbouring
// dimensions, retried until the tuple stays inside [0,1)^d.
func nextCorrelated(rng *rand.Rand, d int) tuple.Tuple {
	t := make(tuple.Tuple, d)
	for {
		v := randomPeak(rng, 0, 1, d)
		l := v
		if v > 0.5 {
			l = 1 - v
		}
		for k := range t {
			t[k] = v
		}
		for k := 0; k < d; k++ {
			h := randomNormal(rng, 0, l)
			t[k] += h
			t[(k+1)%d] -= h
		}
		if inUnitBox(t) {
			return t
		}
	}
}

// nextAntiCorrelated draws one anti-correlated tuple: a plane position v
// near 0.5 plus large compensating uniform perturbations exchanged between
// neighbouring dimensions, retried until the tuple stays inside [0,1)^d.
func nextAntiCorrelated(rng *rand.Rand, d int) tuple.Tuple {
	t := make(tuple.Tuple, d)
	for {
		v := randomNormal(rng, 0.5, 0.25)
		l := v
		if v > 0.5 {
			l = 1 - v
		}
		for k := range t {
			t[k] = v
		}
		for k := 0; k < d; k++ {
			h := randomEqual(rng, -l, l)
			t[k] += h
			t[(k+1)%d] -= h
		}
		if inUnitBox(t) {
			return t
		}
	}
}

func inUnitBox(t tuple.Tuple) bool {
	for _, v := range t {
		if v < 0 || v >= 1 {
			return false
		}
	}
	return true
}
