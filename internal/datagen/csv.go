package datagen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mrskyline/internal/tuple"
)

// WriteCSV writes the tuples as comma-separated lines, one tuple per line,
// using the shortest float formatting that round-trips.
func WriteCSV(w io.Writer, l tuple.List) error {
	bw := bufio.NewWriter(w)
	for _, t := range l {
		if err := writeTupleLine(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StreamCSV generates card tuples from the distribution and writes them to w
// as CSV without ever holding the dataset in memory. The output is
// byte-identical to WriteCSV(w, Generate(dist, card, d, seed)).
func StreamCSV(w io.Writer, dist Distribution, card, d int, seed int64) error {
	bw := bufio.NewWriter(w)
	err := Stream(dist, card, d, seed, func(t tuple.Tuple) error {
		return writeTupleLine(bw, t)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// writeTupleLine writes one tuple as one CSV line.
func writeTupleLine(bw *bufio.Writer, t tuple.Tuple) error {
	for k, v := range t {
		if k > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// ReadCSV parses tuples from comma-separated lines. Blank lines and lines
// starting with '#' are skipped. All tuples must share one dimensionality
// and contain only finite values.
func ReadCSV(r io.Reader) (tuple.List, error) {
	var out tuple.List
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		t := make(tuple.Tuple, len(fields))
		for k, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("datagen: line %d field %d: %w", lineNo, k+1, err)
			}
			t[k] = v
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datagen: reading CSV: %w", err)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseTupleLine parses one CSV line into a tuple; it is the record decoder
// the MapReduce text input format uses.
func ParseTupleLine(line string) (tuple.Tuple, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil
	}
	fields := strings.Split(line, ",")
	t := make(tuple.Tuple, len(fields))
	for k, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: field %d: %w", k+1, err)
		}
		t[k] = v
	}
	return t, nil
}
