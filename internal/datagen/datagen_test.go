package datagen_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mrskyline/internal/datagen"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func TestDeterminism(t *testing.T) {
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		a := datagen.Generate(dist, 500, 4, 42)
		b := datagen.Generate(dist, 500, 4, 42)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", dist)
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%v: tuple %d differs: %v vs %v", dist, i, a[i], b[i])
			}
		}
		c := datagen.Generate(dist, 500, 4, 43)
		same := true
		for i := range a {
			if !a[i].Equal(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical data", dist)
		}
	}
}

func TestShapeAndBounds(t *testing.T) {
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		for _, d := range []int{1, 2, 5, 10} {
			data := datagen.Generate(dist, 300, d, 7)
			if len(data) != 300 {
				t.Fatalf("%v d=%d: len=%d", dist, d, len(data))
			}
			if err := data.Validate(); err != nil {
				t.Fatalf("%v d=%d: %v", dist, d, err)
			}
			for i, tp := range data {
				if len(tp) != d {
					t.Fatalf("%v: tuple %d has dim %d", dist, i, len(tp))
				}
				for k, v := range tp {
					if v < 0 || v >= 1 {
						t.Fatalf("%v: tuple %d dim %d = %v outside [0,1)", dist, i, k, v)
					}
				}
			}
		}
	}
}

// pearson computes the sample correlation of dimensions a and b.
func pearson(data tuple.List, a, b int) float64 {
	n := float64(len(data))
	var sa, sb, saa, sbb, sab float64
	for _, t := range data {
		sa += t[a]
		sb += t[b]
		saa += t[a] * t[a]
		sbb += t[b] * t[b]
		sab += t[a] * t[b]
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	return cov / math.Sqrt(va*vb)
}

func TestDistributionCharacter(t *testing.T) {
	const card = 8000
	indep := datagen.Generate(datagen.Independent, card, 2, 3)
	if r := pearson(indep, 0, 1); math.Abs(r) > 0.08 {
		t.Errorf("independent correlation = %v, want ≈ 0", r)
	}
	corr := datagen.Generate(datagen.Correlated, card, 2, 3)
	if r := pearson(corr, 0, 1); r < 0.5 {
		t.Errorf("correlated correlation = %v, want strongly positive", r)
	}
	anti := datagen.Generate(datagen.AntiCorrelated, card, 2, 3)
	if r := pearson(anti, 0, 1); r > -0.5 {
		t.Errorf("anti-correlated correlation = %v, want strongly negative", r)
	}
}

func TestSkylineSizeOrdering(t *testing.T) {
	// The paper's premise: |skyline(anti)| ≫ |skyline(indep)| ≫
	// |skyline(corr)| at the same shape.
	const card, d = 4000, 4
	sizes := map[datagen.Distribution]int{}
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		data := datagen.Generate(dist, card, d, 11)
		sizes[dist] = len(skyline.BNL(data, nil))
	}
	if !(sizes[datagen.AntiCorrelated] > sizes[datagen.Independent] &&
		sizes[datagen.Independent] > sizes[datagen.Correlated]) {
		t.Errorf("skyline sizes anti=%d indep=%d corr=%d violate expected ordering",
			sizes[datagen.AntiCorrelated], sizes[datagen.Independent], sizes[datagen.Correlated])
	}
}

func TestDistributionString(t *testing.T) {
	if datagen.Independent.String() != "independent" ||
		datagen.Correlated.String() != "correlated" ||
		datagen.AntiCorrelated.String() != "anticorrelated" {
		t.Error("Distribution.String wrong")
	}
	if !strings.Contains(datagen.Distribution(9).String(), "9") {
		t.Error("unknown Distribution.String wrong")
	}
}

func TestParseDistribution(t *testing.T) {
	for s, want := range map[string]datagen.Distribution{
		"independent": datagen.Independent, "indep": datagen.Independent, "uniform": datagen.Independent,
		"correlated": datagen.Correlated, "corr": datagen.Correlated,
		"anticorrelated": datagen.AntiCorrelated, "anti": datagen.AntiCorrelated, "anti-correlated": datagen.AntiCorrelated,
	} {
		got, err := datagen.ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := datagen.ParseDistribution("zipf"); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestGenerateZeroCard(t *testing.T) {
	if got := datagen.Generate(datagen.Independent, 0, 3, 1); len(got) != 0 {
		t.Errorf("zero cardinality produced %d tuples", len(got))
	}
}

func TestGenerateInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	datagen.Generate(datagen.Independent, 10, 0, 1)
}

func TestCSVRoundTrip(t *testing.T) {
	data := datagen.Generate(datagen.AntiCorrelated, 200, 5, 9)
	var buf bytes.Buffer
	if err := datagen.WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := datagen.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("round trip length %d, want %d", len(back), len(data))
	}
	for i := range data {
		if !back[i].Equal(data[i]) {
			t.Fatalf("tuple %d: %v != %v", i, back[i], data[i])
		}
	}
}

func TestReadCSVCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n0.1,0.2\n  \n0.3,0.4\n"
	got, err := datagen.ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(tuple.Tuple{0.1, 0.2}) || !got[1].Equal(tuple.Tuple{0.3, 0.4}) {
		t.Errorf("ReadCSV = %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := datagen.ReadCSV(strings.NewReader("0.1,zzz\n")); err == nil {
		t.Error("garbage field accepted")
	}
	if _, err := datagen.ReadCSV(strings.NewReader("0.1,0.2\n0.3\n")); err == nil {
		t.Error("ragged dimensionality accepted")
	}
	if _, err := datagen.ReadCSV(strings.NewReader("0.1,NaN\n")); err == nil {
		t.Error("NaN accepted")
	}
}

func TestParseTupleLine(t *testing.T) {
	tp, err := datagen.ParseTupleLine(" 0.5 , 0.25 ")
	if err != nil || !tp.Equal(tuple.Tuple{0.5, 0.25}) {
		t.Errorf("ParseTupleLine = %v, %v", tp, err)
	}
	tp, err = datagen.ParseTupleLine("# comment")
	if err != nil || tp != nil {
		t.Errorf("comment line = %v, %v", tp, err)
	}
	tp, err = datagen.ParseTupleLine("")
	if err != nil || tp != nil {
		t.Errorf("blank line = %v, %v", tp, err)
	}
	if _, err := datagen.ParseTupleLine("a,b"); err == nil {
		t.Error("garbage accepted")
	}
}

func BenchmarkGenerateAntiCorrelated(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		datagen.Generate(datagen.AntiCorrelated, 1000, 8, int64(i))
	}
}
