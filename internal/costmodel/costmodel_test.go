package costmodel_test

import (
	"testing"

	"mrskyline/internal/costmodel"
)

func TestRemainingPartitionsSection6Example(t *testing.T) {
	// "the number of remaining partitions after pruning for the 3×3 grid is
	// 3² − 2² = 5."
	if got := costmodel.RemainingPartitions(3, 2); got != 5 {
		t.Errorf("ρrem(3,2) = %d, want 5", got)
	}
	if got := costmodel.RemainingPartitions(2, 3); got != 7 {
		t.Errorf("ρrem(2,3) = %d, want 7", got)
	}
	if got := costmodel.RemainingPartitions(1, 4); got != 1 {
		t.Errorf("ρrem(1,4) = %d, want 1", got)
	}
}

func TestPartitionComparisonsSection6Example(t *testing.T) {
	// "partition p2 has coordinates (1, 3) in the grid. The number of
	// partition-wise comparisons for p2 is thus 1 × 3 − 1 = 2."
	if got := costmodel.PartitionComparisons([]int{1, 3}); got != 2 {
		t.Errorf("ρdom((1,3)) = %d, want 2", got)
	}
	if got := costmodel.PartitionComparisons([]int{1, 1, 1}); got != 0 {
		t.Errorf("ρdom(origin) = %d, want 0", got)
	}
	if got := costmodel.PartitionComparisons([]int{2, 3, 4}); got != 23 {
		t.Errorf("ρdom((2,3,4)) = %d, want 23", got)
	}
}

func TestPartitionComparisonsPanicsOnZeroBased(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	costmodel.PartitionComparisons([]int{0, 1})
}

// bruteKappa sums Equation 7 directly.
func bruteKappa(n, d int) int64 {
	coords := make([]int, d)
	for i := range coords {
		coords[i] = 1
	}
	var total int64
	for {
		p := int64(1)
		for _, c := range coords {
			p *= int64(c)
		}
		total += p - 1
		k := d - 1
		for k >= 0 {
			coords[k]++
			if coords[k] <= n {
				break
			}
			coords[k] = 1
			k--
		}
		if k < 0 {
			return total
		}
	}
}

// bruteKappaJ sums surface j directly: c_j = 1, dims before j in [2..n],
// dims after j in [1..n].
func bruteKappaJ(n, d, j int) int64 {
	var rec func(k int, prod int64) int64
	rec = func(k int, prod int64) int64 {
		if k > d {
			return prod - 1
		}
		lo, hi := 1, n
		if k == j {
			lo, hi = 1, 1
		} else if k < j {
			lo = 2
		}
		var total int64
		for c := lo; c <= hi; c++ {
			total += rec(k+1, prod*int64(c))
		}
		return total
	}
	return rec(1, 1)
}

func TestKappaMatchesBruteForce(t *testing.T) {
	for _, cfg := range []struct{ n, d int }{{2, 2}, {3, 2}, {5, 2}, {3, 3}, {4, 3}, {2, 5}, {3, 4}} {
		if got, want := costmodel.Kappa(cfg.n, cfg.d), bruteKappa(cfg.n, cfg.d); got != want {
			t.Errorf("κ(%d,%d) = %d, want %d", cfg.n, cfg.d, got, want)
		}
		for j := 1; j <= cfg.d; j++ {
			if got, want := costmodel.KappaJ(cfg.n, cfg.d, j), bruteKappaJ(cfg.n, cfg.d, j); got != want {
				t.Errorf("κ_%d(%d,%d) = %d, want %d", j, cfg.n, cfg.d, got, want)
			}
		}
	}
}

func TestKappaMapperIsSurfaceSum(t *testing.T) {
	for _, cfg := range []struct{ n, d int }{{3, 2}, {4, 3}, {2, 6}} {
		var want int64
		for j := 1; j <= cfg.d; j++ {
			want += costmodel.KappaJ(cfg.n, cfg.d, j)
		}
		if got := costmodel.KappaMapper(cfg.n, cfg.d); got != want {
			t.Errorf("κmapper(%d,%d) = %d, want %d", cfg.n, cfg.d, got, want)
		}
	}
}

func TestKappaMapperCountsEachSurfaceCellOnce(t *testing.T) {
	// The union of the d surfaces is the set of cells with some coordinate
	// equal to 1 — exactly the ρrem surviving cells. κmapper must equal the
	// direct sum of ρdom over that union (each cell once).
	for _, cfg := range []struct{ n, d int }{{2, 2}, {3, 2}, {4, 2}, {3, 3}, {2, 4}} {
		n, d := cfg.n, cfg.d
		coords := make([]int, d)
		for i := range coords {
			coords[i] = 1
		}
		var want, cells int64
		for {
			onSurface := false
			for _, c := range coords {
				if c == 1 {
					onSurface = true
					break
				}
			}
			if onSurface {
				cells++
				p := int64(1)
				for _, c := range coords {
					p *= int64(c)
				}
				want += p - 1
			}
			k := d - 1
			for k >= 0 {
				coords[k]++
				if coords[k] <= n {
					break
				}
				coords[k] = 1
				k--
			}
			if k < 0 {
				break
			}
		}
		if got := costmodel.KappaMapper(n, d); got != want {
			t.Errorf("κmapper(%d,%d) = %d, want %d", n, d, got, want)
		}
		if cells != costmodel.RemainingPartitions(n, d) {
			t.Errorf("surface union of (%d,%d) has %d cells, ρrem says %d", n, d, cells, costmodel.RemainingPartitions(n, d))
		}
	}
}

func TestKappaReducerIsLargestSurface(t *testing.T) {
	for _, cfg := range []struct{ n, d int }{{3, 2}, {4, 3}, {3, 4}} {
		r := costmodel.KappaReducer(cfg.n, cfg.d)
		for j := 1; j <= cfg.d; j++ {
			if kj := costmodel.KappaJ(cfg.n, cfg.d, j); kj > r {
				t.Errorf("κ_%d(%d,%d) = %d exceeds κreducer = %d", j, cfg.n, cfg.d, kj, r)
			}
		}
		if r != costmodel.KappaJ(cfg.n, cfg.d, 1) {
			t.Errorf("κreducer(%d,%d) != κ₁", cfg.n, cfg.d)
		}
	}
}

func TestKappaJPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	costmodel.KappaJ(3, 2, 3)
}

func TestNoOverflowAtGridCap(t *testing.T) {
	// The largest grids the library allows (n^d ≤ 2^26) must not saturate.
	for _, cfg := range []struct{ n, d int }{{8192, 2}, {40, 5}, {6, 10}} {
		got := costmodel.KappaMapper(cfg.n, cfg.d)
		if got < 0 || got == int64(^uint64(0)>>1) {
			t.Errorf("κmapper(%d,%d) overflowed: %d", cfg.n, cfg.d, got)
		}
	}
}
