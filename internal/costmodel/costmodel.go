// Package costmodel implements the cost estimation of Section 6: upper
// bounds on the number of partition-wise comparisons (executions of the
// critical operation in ComparePartitions, line 3 of Algorithm 5) performed
// by mappers and reducers of the grid-partitioning skyline algorithms.
//
// The model assumes the worst case — every partition of every mapper is
// non-empty, and comparing partitions prunes tuples but never empties a
// partition — so its estimates are upper bounds: tight for mappers on
// independent data and progressively looser for reducers and for
// anti-correlated data, exactly the behaviour Figure 11 reports.
//
// After bitstring pruning, the surviving partitions form the d "best"
// (d−1)-dimensional surfaces of the grid. Surface j (1 ≤ j ≤ d) holds the
// cells whose j-th coordinate is 1 (1-based). A cell with coordinates
// (c_1, …, c_d) needs ∏ c_k − 1 comparisons, the size of its
// anti-dominating region (Equation 6). Summing per surface, subtracting
// surface overlaps (cells with several coordinates equal to 1 counted
// once), yields the mapper bound κ_mapper = Σ_j κ_j (Equation 8); a reducer
// of MR-GPMRS processes one surface — the largest, s₁ — giving κ_reducer
// (Equation 9).
package costmodel

import (
	"fmt"
	"math"
)

// RemainingPartitions is ρrem(n, d) of Equation 5: the number of surviving
// partitions after bitstring pruning of a fully occupied n^d grid,
// n^d − (n−1)^d.
func RemainingPartitions(n, d int) int64 {
	return ipow(n, d) - ipow(n-1, d)
}

// PartitionComparisons is ρdom of Equation 6: the number of partition-wise
// comparisons for the single partition with the given 1-based grid
// coordinates, ∏ c_k − 1.
func PartitionComparisons(coords []int) int64 {
	p := int64(1)
	for _, c := range coords {
		if c < 1 {
			panic(fmt.Sprintf("costmodel: coordinates are 1-based, got %d", c))
		}
		p = satMul(p, int64(c))
	}
	return p - 1
}

// Kappa is κ(n, d) of Equation 7: the total partition-wise comparisons over
// one full (unrestricted) surface sum Σ_{i₁..i_d = 1..n} (∏ i_k − 1).
func Kappa(n, d int) int64 {
	// Σ ∏ i_k factors into (Σ_{1..n} i)^d; subtracting 1 per cell gives
	// the −n^d term.
	s := int64(n) * int64(n+1) / 2
	prod := int64(1)
	for k := 0; k < d; k++ {
		prod = satMul(prod, s)
	}
	return prod - ipow(n, d)
}

// KappaJ is κ_j(n, d) for surface j ∈ [1, d]: the comparisons of the cells
// with c_j = 1, excluding overlap with surfaces 1..j−1 (their coordinates
// range over [2, n] instead of [1, n]).
func KappaJ(n, d, j int) int64 {
	if j < 1 || j > d {
		panic(fmt.Sprintf("costmodel: surface %d out of range [1,%d]", j, d))
	}
	full := int64(n) * int64(n+1) / 2 // Σ_{1..n} i
	tail := full - 1                  // Σ_{2..n} i
	prod, cells := int64(1), int64(1)
	for k := 1; k <= d; k++ {
		switch {
		case k == j:
			// c_j = 1 contributes factor 1 and one choice.
		case k < j:
			prod = satMul(prod, tail)
			cells = satMul(cells, int64(n-1))
		default:
			prod = satMul(prod, full)
			cells = satMul(cells, int64(n))
		}
	}
	return prod - cells
}

// KappaMapper is κ_mapper(n, d) of Equation 8: the estimated partition-wise
// comparisons of a single mapper, Σ_{j=1..d} κ_j(n, d).
func KappaMapper(n, d int) int64 {
	total := int64(0)
	for j := 1; j <= d; j++ {
		total += KappaJ(n, d, j)
	}
	return total
}

// KappaReducer is κ_reducer(n, d) of Equation 9: the estimated
// partition-wise comparisons of the busiest MR-GPMRS reducer — the one
// processing the biggest surface, s₁(n, d) = κ₁(n, d) with no overlap
// subtracted.
func KappaReducer(n, d int) int64 {
	return KappaJ(n, d, 1)
}

// ipow computes n^d in saturating int64 arithmetic.
func ipow(n, d int) int64 {
	p := int64(1)
	for i := 0; i < d; i++ {
		p = satMul(p, int64(n))
	}
	return p
}

// satMul multiplies non-negative int64s, saturating at MaxInt64.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
