package rpcexec

import (
	"fmt"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// Environment variables wiring a spawned worker to its master. The worker
// is the same binary as the driver, re-exec'd: cmd mains and TestMain call
// WorkerMain first, which takes over the process when workerEnvAddr is
// set. Re-exec'ing the same binary is what makes the kind registry work —
// every RegisterKind init that ran in the driver has run in the worker.
const (
	workerEnvAddr        = "MRSKYLINE_WORKER"
	workerEnvIndex       = "MRSKYLINE_WORKER_INDEX"
	workerEnvChaos       = "MRSKYLINE_WORKER_CHAOS"
	workerEnvTrace       = "MRSKYLINE_WORKER_TRACE"
	workerEnvSpillBudget = "MRSKYLINE_WORKER_SPILL_BUDGET"
	workerEnvSpillDir    = "MRSKYLINE_WORKER_SPILL_DIR"
	workerEnvSpillFanIn  = "MRSKYLINE_WORKER_SPILL_FANIN"
)

// WorkerMain turns the process into an rpcexec worker when the
// MRSKYLINE_WORKER environment variable names a master address, and
// returns without doing anything otherwise. Binaries that want to host
// workers (cmd/skylined, cmd/skybench, test binaries via TestMain) call it
// first thing in main.
func WorkerMain() {
	addr := os.Getenv(workerEnvAddr)
	if addr == "" {
		return
	}
	if err := runWorker(addr); err != nil {
		fmt.Fprintf(os.Stderr, "rpcexec worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// storeKey locates one map task's output in a worker's segment store.
type storeKey struct {
	job  int64
	task int
}

// worker is one worker process's state.
type worker struct {
	id    int
	index int
	node  string
	cl    *rpc.Client
	chaos *chaosSpec
	tr    *obs.Tracer

	exit atomic.Bool // set when the master asks us to shut down

	// spill, when non-nil, switches the worker to the external-memory
	// shuffle: map-output segments live as files under spill.dir instead
	// of in store, and reduce attempts run the budget-bounded run merge.
	spill *workerSpill

	storeMu sync.Mutex
	store   map[storeKey][][]byte // map output segments, index = reducer
	files   map[storeKey][]string // spill mode: segment file per reducer ("" = empty)

	peerMu sync.Mutex
	peers  map[string]*rpc.Client

	infoMu sync.Mutex
	infos  map[int64]*JobInfoReply
}

// runWorker is the worker process body: serve peer fetches, register with
// the master, heartbeat, and poll for task leases until told to exit or
// the master disappears.
func runWorker(masterAddr string) error {
	chaos, err := parseChaos(os.Getenv(workerEnvChaos))
	if err != nil {
		return err
	}
	index := 0
	fmt.Sscanf(os.Getenv(workerEnvIndex), "%d", &index)
	w := &worker{
		index: index,
		chaos: chaos,
		store: make(map[storeKey][][]byte),
		files: make(map[storeKey][]string),
		peers: make(map[string]*rpc.Client),
		infos: make(map[int64]*JobInfoReply),
	}
	if path := os.Getenv(workerEnvTrace); path != "" {
		w.tr = obs.New()
	}
	if sp, err := workerSpillFromEnv(index); err != nil {
		return err
	} else if sp != nil {
		w.spill = sp
		defer os.RemoveAll(sp.dir)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("worker listen: %w", err)
	}
	defer ln.Close()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerFetchService{w: w}); err != nil {
		return fmt.Errorf("register fetch service: %w", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	w.cl, err = rpc.Dial("tcp", masterAddr)
	if err != nil {
		return fmt.Errorf("dial master: %w", err)
	}
	// Close connections on the way out: worker processes would release them
	// at exit anyway, but workers hosted in-process (tests run runWorker in a
	// goroutine for coverage) must drop them so the master's per-connection
	// serve goroutines can finish.
	defer w.cl.Close()
	defer func() {
		w.peerMu.Lock()
		for _, cl := range w.peers {
			cl.Close()
		}
		w.peerMu.Unlock()
	}()
	var reg RegisterReply
	err = w.cl.Call("Master.Register", &RegisterArgs{
		Addr: ln.Addr().String(), PID: os.Getpid(), Index: index,
	}, &reg)
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	w.id = reg.WorkerID
	w.node = workerNode(w.id)

	hbEvery := time.Duration(reg.HeartbeatEveryNs)
	poll := time.Duration(reg.LeasePollEveryNs)
	go w.heartbeatLoop(hbEvery)

	for !w.exit.Load() {
		var lease LeaseReply
		if err := w.cl.Call("Master.Lease", &LeaseArgs{WorkerID: w.id}, &lease); err != nil {
			return fmt.Errorf("lease: %w", err) // master gone
		}
		switch lease.Kind {
		case LeaseNone:
			time.Sleep(poll)
		case LeaseExit:
			w.exit.Store(true)
		case LeaseMap:
			if err := w.runMap(&lease); err != nil {
				return err
			}
		case LeaseReduce:
			if err := w.runReduce(&lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown lease kind %q", lease.Kind)
		}
	}
	w.writeTrace()
	return nil
}

// heartbeatLoop beats until the master asks for exit or becomes
// unreachable. Each beat reports the measured round-trip time of the
// previous one, giving the master a worker-observed RTT series.
func (w *worker) heartbeatLoop(every time.Duration) {
	var prevRTT int64
	for range time.Tick(every) {
		if w.exit.Load() {
			return
		}
		var reply HeartbeatReply
		t0 := time.Now()
		err := w.cl.Call("Master.Heartbeat", &HeartbeatArgs{WorkerID: w.id, PrevRTTNs: prevRTT}, &reply)
		prevRTT = int64(time.Since(t0))
		if err != nil || reply.Exit {
			w.exit.Store(true)
			return
		}
		if len(reply.DropJobs) > 0 {
			w.dropJobs(reply.DropJobs)
		}
	}
}

// dropJobs evicts finished jobs' segments (memory and disk) and cached
// job info.
func (w *worker) dropJobs(ids []int64) {
	w.storeMu.Lock()
	dropped := func(job int64) bool {
		for _, id := range ids {
			if job == id {
				return true
			}
		}
		return false
	}
	for k := range w.store {
		if dropped(k.job) {
			delete(w.store, k)
		}
	}
	for k, paths := range w.files {
		if dropped(k.job) {
			for _, p := range paths {
				if p != "" {
					os.Remove(p)
				}
			}
			delete(w.files, k)
		}
	}
	w.storeMu.Unlock()
	w.infoMu.Lock()
	for _, id := range ids {
		delete(w.infos, id)
	}
	w.infoMu.Unlock()
}

// workerSpill is a worker's external-memory shuffle configuration: its
// private segment/run directory plus the reduce-merge budget.
type workerSpill struct {
	dir    string
	budget int64
	fanIn  int
}

// workerSpillFromEnv builds the worker's spill state from the environment
// the master set at spawn; nil when spilling is off. The worker owns a
// private subdirectory so concurrent workers never collide.
func workerSpillFromEnv(index int) (*workerSpill, error) {
	budgetStr := os.Getenv(workerEnvSpillBudget)
	if budgetStr == "" {
		return nil, nil
	}
	budget, err := strconv.ParseInt(budgetStr, 10, 64)
	if err != nil || budget <= 0 {
		return nil, fmt.Errorf("worker spill budget %q invalid", budgetStr)
	}
	base := os.Getenv(workerEnvSpillDir)
	if base == "" {
		return nil, fmt.Errorf("worker spill budget set without a directory")
	}
	fanIn := 0
	if s := os.Getenv(workerEnvSpillFanIn); s != "" {
		if fanIn, err = strconv.Atoi(s); err != nil {
			return nil, fmt.Errorf("worker spill fan-in %q invalid", s)
		}
	}
	dir, err := os.MkdirTemp(base, fmt.Sprintf("worker%d-", index))
	if err != nil {
		return nil, fmt.Errorf("worker spill dir: %w", err)
	}
	return &workerSpill{dir: dir, budget: budget, fanIn: fanIn}, nil
}

// putSegs stores one map task's output segments: in memory normally, as
// one file per non-empty segment in spill mode, so a beyond-RAM job's map
// outputs never accumulate in the worker heap.
func (w *worker) putSegs(k storeKey, segs [][]byte) error {
	if w.spill == nil {
		w.storeMu.Lock()
		w.store[k] = segs
		w.storeMu.Unlock()
		return nil
	}
	paths := make([]string, len(segs))
	for r, seg := range segs {
		if len(seg) == 0 {
			continue
		}
		p := filepath.Join(w.spill.dir, fmt.Sprintf("j%d-m%d-r%d.seg", k.job, k.task, r))
		if err := os.WriteFile(p, seg, 0o600); err != nil {
			return fmt.Errorf("storing segment: %w", err)
		}
		paths[r] = p
	}
	w.storeMu.Lock()
	w.files[k] = paths
	w.storeMu.Unlock()
	return nil
}

// getSeg loads one stored segment (nil for a stored-but-empty one); ok is
// false when the task's output is not in the store at all. Disk
// corruption of a spilled segment surfaces at the consumer as a checksum
// mismatch, feeding the existing refetch / worker-death machinery.
func (w *worker) getSeg(k storeKey, r int) (seg []byte, ok bool, err error) {
	w.storeMu.Lock()
	if w.spill == nil {
		segs, found := w.store[k]
		w.storeMu.Unlock()
		if !found || r < 0 || r >= len(segs) {
			return nil, false, nil
		}
		return segs[r], true, nil
	}
	paths, found := w.files[k]
	w.storeMu.Unlock()
	if !found || r < 0 || r >= len(paths) {
		return nil, false, nil
	}
	if paths[r] == "" {
		return nil, true, nil
	}
	seg, err = os.ReadFile(paths[r])
	if err != nil {
		return nil, true, fmt.Errorf("reading stored segment: %w", err)
	}
	return seg, true, nil
}

// jobInfo returns the job's static description, fetching it from the
// master once per job.
func (w *worker) jobInfo(jobID int64) (*JobInfoReply, error) {
	w.infoMu.Lock()
	defer w.infoMu.Unlock()
	if info, ok := w.infos[jobID]; ok {
		return info, nil
	}
	info := &JobInfoReply{}
	if err := w.cl.Call("Master.JobInfo", &JobInfoArgs{JobID: jobID}, info); err != nil {
		return nil, err
	}
	w.infos[jobID] = info
	return info, nil
}

func (w *worker) remoteTask(info *JobInfoReply, lease *LeaseReply) *mapreduce.RemoteTask {
	t := &mapreduce.RemoteTask{
		Job:         info.Name,
		Kind:        info.Kind,
		Spec:        info.Spec,
		Cache:       info.Cache,
		TaskID:      lease.TaskID,
		Attempt:     lease.Attempt,
		NumMappers:  info.NumMappers,
		NumReducers: info.NumReducers,
		Node:        w.node,
	}
	if w.spill != nil {
		t.SpillBudget = w.spill.budget
		t.SpillDir = w.spill.dir
		t.SpillFanIn = w.spill.fanIn
	}
	return t
}

// runMap executes one map lease: run the kind's mapper over the shipped
// split, keep the per-reducer segments in the local store, and report
// their checksums and sizes. A returned error means the master is
// unreachable; task errors travel inside the report.
func (w *worker) runMap(lease *LeaseReply) error {
	sp := w.tr.Start(w.node, fmt.Sprintf("map:%d", lease.TaskID), obs.CatTask)
	args := &MapDoneArgs{WorkerID: w.id, JobID: lease.JobID, TaskID: lease.TaskID, Attempt: lease.Attempt}
	info, err := w.jobInfo(lease.JobID)
	if err == nil {
		w.chaos.maybeKill(ChaosMap)
		var segs [][]byte
		var counters *mapreduce.Counters
		segs, counters, err = mapreduce.RunRemoteMap(w.remoteTask(info, lease), lease.Split)
		if err == nil {
			err = w.putSegs(storeKey{job: lease.JobID, task: lease.TaskID}, segs)
		}
		if err == nil {
			args.Checksums = make([]uint64, len(segs))
			args.Bytes = make([]int64, len(segs))
			for r, seg := range segs {
				args.Checksums[r] = mapreduce.SegmentChecksum(seg)
				args.Bytes[r] = int64(len(seg))
			}
			args.Counters = counters.Dump()
		}
	}
	if err != nil {
		args.Err = err.Error()
	}
	sp.End()
	return w.cl.Call("Master.MapDone", args, &Empty{})
}

// runReduce executes one reduce lease: fetch every source segment (local
// store for our own, Worker.Fetch RPC for peers, checksum-verified with
// one refetch), feed them to the kind's reducer in map-task order, and
// report the framed output.
func (w *worker) runReduce(lease *LeaseReply) error {
	sp := w.tr.Start(w.node, fmt.Sprintf("reduce:%d", lease.TaskID), obs.CatTask)
	args := &ReduceDoneArgs{
		WorkerID: w.id, JobID: lease.JobID, TaskID: lease.TaskID, Attempt: lease.Attempt,
		FetchFailedWorker: -1,
	}
	info, err := w.jobInfo(lease.JobID)
	if err == nil {
		segs := make([][]byte, info.NumMappers)
		for _, src := range lease.Sources {
			seg, wire, refetches, ferr := w.fetchSegment(lease, src)
			args.WireBytes += wire
			args.Refetches += refetches
			if ferr != nil {
				err = ferr
				if src.WorkerID != w.id {
					args.FetchFailedWorker = src.WorkerID
				}
				break
			}
			segs[src.MapTask] = seg
			payload, perr := mapreduce.SegmentPayloadBytes(seg)
			if perr != nil {
				err = perr
				break
			}
			args.PayloadBytes += payload
		}
		if err == nil {
			w.chaos.maybeKill(ChaosReduce)
			var out []byte
			var counters *mapreduce.Counters
			out, counters, err = mapreduce.RunRemoteReduce(w.remoteTask(info, lease), segs)
			if err == nil {
				args.Output = out
				args.Counters = counters.Dump()
			}
		}
	}
	if err != nil {
		args.Err = err.Error()
	}
	sp.End()
	return w.cl.Call("Master.ReduceDone", args, &Empty{})
}

// fetchSegment obtains one map output segment and verifies it against the
// master-recorded checksum: our own segments come from the local store,
// peers' over their Fetch RPC with bounded retries (a dead peer shows up
// as a connection error) and one checksum-mismatch refetch — the same
// detect-and-repull contract the in-process engine applies to corrupted
// shuffle segments.
func (w *worker) fetchSegment(lease *LeaseReply, src MapSource) (seg []byte, wireBytes, refetches int64, err error) {
	if src.WorkerID == w.id {
		seg, ok, err := w.getSeg(storeKey{job: lease.JobID, task: src.MapTask}, lease.TaskID)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("reduce task %d: %w", lease.TaskID, err)
		}
		if !ok {
			return nil, 0, 0, fmt.Errorf("reduce task %d: local segment for map %d missing", lease.TaskID, src.MapTask)
		}
		if mapreduce.SegmentChecksum(seg) != src.Checksum {
			return nil, 0, 0, fmt.Errorf("reduce task %d: local segment for map %d corrupt", lease.TaskID, src.MapTask)
		}
		return seg, 0, 0, nil
	}
	const fetchAttempts = 3
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(25 * time.Millisecond)
		}
		w.chaos.maybeKill(ChaosFetch)
		var reply FetchReply
		sp := w.tr.Start(w.node, fmt.Sprintf("fetch:m%d→r%d", src.MapTask, lease.TaskID), obs.CatShuffle)
		callErr := w.callPeer(src.Addr, &FetchArgs{JobID: lease.JobID, MapTask: src.MapTask, Reduce: lease.TaskID}, &reply)
		sp.End()
		if callErr != nil {
			lastErr = fmt.Errorf("fetch map %d from %s: %w", src.MapTask, workerNode(src.WorkerID), callErr)
			continue
		}
		wireBytes += int64(len(reply.Seg))
		if mapreduce.SegmentChecksum(reply.Seg) != src.Checksum {
			refetches++
			lastErr = fmt.Errorf("fetch map %d from %s: checksum mismatch", src.MapTask, workerNode(src.WorkerID))
			continue
		}
		return reply.Seg, wireBytes, refetches, nil
	}
	return nil, wireBytes, refetches, lastErr
}

// callPeer calls a peer worker's RPC service, caching connections and
// redialing once if a cached connection has gone bad.
func (w *worker) callPeer(addr string, args *FetchArgs, reply *FetchReply) error {
	for redial := 0; redial < 2; redial++ {
		w.peerMu.Lock()
		cl, ok := w.peers[addr]
		if !ok {
			var err error
			cl, err = rpc.Dial("tcp", addr)
			if err != nil {
				w.peerMu.Unlock()
				return err
			}
			w.peers[addr] = cl
		}
		w.peerMu.Unlock()
		err := cl.Call("Worker.Fetch", args, reply)
		if err == nil {
			return nil
		}
		w.peerMu.Lock()
		if w.peers[addr] == cl {
			delete(w.peers, addr)
			cl.Close()
		}
		w.peerMu.Unlock()
		if redial == 1 {
			return err
		}
	}
	return nil
}

// writeTrace dumps the worker's obs trace on clean exit (chaos-killed
// workers, by design, leave none).
func (w *worker) writeTrace() {
	path := os.Getenv(workerEnvTrace)
	if path == "" || w.tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	obs.WriteChromeTrace(f, w.tr)
}

// workerFetchService serves the peer shuffle: Worker.Fetch returns one
// stored map output segment.
type workerFetchService struct {
	w *worker
}

// Fetch implements the Worker.Fetch RPC. Under the "corrupt" chaos event
// one reply is served with a byte flipped — the stored segment stays
// pristine, so the fetcher's checksum verification catches the mismatch
// and its refetch succeeds.
func (s *workerFetchService) Fetch(args *FetchArgs, reply *FetchReply) error {
	s.w.chaos.maybeKill(ChaosServe)
	seg, ok, err := s.w.getSeg(storeKey{job: args.JobID, task: args.MapTask}, args.Reduce)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("rpcexec: worker %d has no segment for job %d map %d reduce %d",
			s.w.id, args.JobID, args.MapTask, args.Reduce)
	}
	if len(seg) > 0 && s.w.chaos.takeCorrupt() {
		bad := append([]byte(nil), seg...)
		bad[0] ^= 0xFF
		seg = bad
	}
	reply.Seg = seg
	return nil
}
