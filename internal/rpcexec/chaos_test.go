package rpcexec

import (
	"context"
	"testing"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// The chaos suite SIGKILLs live worker processes at deterministic points —
// mid-map, mid-reduce, while fetching a shuffle segment, and while serving
// one — and asserts the lease/heartbeat machinery completes the job with
// exactly the output a fault-free run produces.
//
// Layout forcing: the sum job's task sleeps (10ms) dwarf the lease poll
// (2ms), so while one worker holds a task the other reliably leases the
// next pending one. That spreads maps across both workers, which makes
// every reduce depend on a remote segment — the precondition for the
// fetch-side and serve-side kills and for exercising done-map regression.

// chaosResult bundles what every chaos scenario asserts over.
type chaosResult struct {
	res       *mapreduce.Result
	tr        *obs.Tracer
	killedPID int
}

// runChaosSum runs the sum job against workers seeded with the given chaos
// specs and returns the survivors' result. chaosWorker is the index
// expected to die.
func runChaosSum(t *testing.T, chaos []string, chaosWorker int) chaosResult {
	t.Helper()
	tr := obs.New()
	pe := newProcExec(t, fastTimings(Config{Workers: 2, Chaos: chaos, Trace: tr}))
	pids := pe.WorkerPIDs()

	const keys, records, mappers, reducers = 6, 90, 4, 3
	res, err := pe.RunContext(context.Background(), sumJob("chaos", keys, records, mappers, reducers, 10, 10))
	if err != nil {
		t.Fatalf("chaos job did not recover: %v", err)
	}
	if want := sumJobExpected(keys, records, reducers); !recordsEqual(res.Output, want) {
		t.Fatalf("chaos output mismatch:\n got %s\nwant %s", formatRecords(res.Output), formatRecords(want))
	}
	return chaosResult{res: res, tr: tr, killedPID: pids[chaosWorker]}
}

// assertDeathObserved checks the telemetry and bookkeeping a worker death
// must leave behind, and that the killed process is really gone.
func assertDeathObserved(t *testing.T, c chaosResult) {
	t.Helper()
	deaths := int64(0)
	for _, ctr := range c.tr.Metrics().Snapshot().Counters {
		if ctr.Name == "rpc.worker.deaths" {
			deaths = ctr.Value
		}
	}
	if deaths < 1 {
		t.Error("rpc.worker.deaths = 0, want >= 1")
	}
	if got := c.res.Counters.Get(mapreduce.CounterNodeFailures); got < 1 {
		t.Errorf("CounterNodeFailures = %d, want >= 1", got)
	}
	killed := 0
	for _, r := range c.res.History.Records() {
		if r.Killed {
			killed++
		}
	}
	if killed < 1 {
		t.Error("history has no killed attempts, want >= 1")
	}
	// The worker really died and was reaped: SIGKILL leaves no survivor
	// and the executor's immediate Wait leaves no zombie.
	deadline := time.Now().Add(2 * time.Second)
	for processAlive(c.killedPID) {
		if time.Now().After(deadline) {
			t.Fatalf("killed worker pid %d still in the process table", c.killedPID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkAttemptInvariants(t, c.res)
}

// TestChaosKillDuringMap: worker 0 SIGKILLs itself at the start of its
// first map attempt. The heartbeat janitor declares it dead, its leased map
// is requeued as killed, and worker 1 finishes the job alone.
func TestChaosKillDuringMap(t *testing.T) {
	c := runChaosSum(t, []string{ChaosMap}, 0)
	assertDeathObserved(t, c)
	killedMaps := 0
	for _, r := range c.res.History.Records() {
		if r.Phase == mapreduce.PhaseMap && r.Killed {
			killedMaps++
		}
	}
	if killedMaps < 1 {
		t.Error("no killed map attempt recorded")
	}
}

// TestChaosKillDuringReduce: worker 0 dies after the shuffle fetch of its
// first reduce attempt, taking its completed map outputs with it. The maps
// it hosted regress to pending and re-execute (Hadoop's map re-execution),
// so the map phase shows more successful attempts than tasks.
func TestChaosKillDuringReduce(t *testing.T) {
	c := runChaosSum(t, []string{ChaosReduce}, 0)
	assertDeathObserved(t, c)
	successMaps := 0
	for _, r := range c.res.History.Records() {
		if r.Phase == mapreduce.PhaseMap && r.Err == "" && !r.Killed {
			successMaps++
		}
	}
	// 4 map tasks; the dead worker held at least one completed map (the
	// 10ms map sleep spreads the 4 maps over both workers), so at least one
	// re-executed.
	if successMaps <= 4 {
		t.Errorf("successful map attempts = %d, want > 4 (done-map regression re-runs the dead worker's maps)", successMaps)
	}
}

// TestChaosKillDuringFetch: worker 1 dies just before issuing a peer
// shuffle fetch — the fetching side of the shuffle goes down mid-transfer.
func TestChaosKillDuringFetch(t *testing.T) {
	c := runChaosSum(t, []string{"", ChaosFetch}, 1)
	assertDeathObserved(t, c)
}

// TestChaosKillWhileServingFetch: worker 0 dies on receiving a peer's
// fetch — the serving side of the shuffle goes down, taking its map outputs
// along. The fetching worker's report carries the death evidence
// (FetchFailedWorker), so the master acts immediately instead of waiting
// out the heartbeat timeout, requeues the reduce as killed, and re-executes
// the lost maps.
func TestChaosKillWhileServingFetch(t *testing.T) {
	c := runChaosSum(t, []string{ChaosServe}, 0)
	assertDeathObserved(t, c)
	killedReduces := 0
	for _, r := range c.res.History.Records() {
		if r.Phase == mapreduce.PhaseReduce && r.Killed {
			killedReduces++
		}
	}
	if killedReduces < 1 {
		t.Error("no killed reduce attempt recorded (fetch-failure path should requeue the fetching reduce)")
	}
}

// TestChaosNthEvent: the "event:n" form arms the kill on the nth
// occurrence — worker 0 completes its first map and dies at its second.
func TestChaosNthEvent(t *testing.T) {
	c := runChaosSum(t, []string{ChaosMap + ":2"}, 0)
	assertDeathObserved(t, c)
	// The worker completed a map before dying, so that map's output was
	// lost and re-executed: more successful map attempts than map tasks.
	successMaps := 0
	for _, r := range c.res.History.Records() {
		if r.Phase == mapreduce.PhaseMap && r.Err == "" && !r.Killed {
			successMaps++
		}
	}
	if successMaps <= 4 {
		t.Errorf("successful map attempts = %d, want > 4 (first map's output died with the worker)", successMaps)
	}
}
