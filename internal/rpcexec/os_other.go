//go:build !linux

package rpcexec

import (
	"os"
	"syscall"
)

// workerSysProcAttr: parent-death signals are linux-only; elsewhere worker
// cleanup relies on Close and the heartbeat timeout.
func workerSysProcAttr() *syscall.SysProcAttr { return nil }

// selfKill terminates the process as abruptly as the platform allows.
func selfKill() {
	p, _ := os.FindProcess(os.Getpid())
	p.Kill()
	select {}
}
