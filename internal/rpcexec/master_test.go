package rpcexec

import (
	"context"
	"strings"
	"testing"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// The master unit tests drive the RPC handlers directly — no processes, no
// sockets — so every scheduling transition (fencing, expiry, death,
// regression, failure budgets) is exercised deterministically.

// newTestMaster builds a master with inert watchdog timings (the tests
// trigger transitions explicitly) and registers n fake workers.
func newTestMaster(t *testing.T, n int, tr *obs.Tracer) *master {
	t.Helper()
	cfg, err := (&Config{
		Workers:           n,
		LeaseTimeout:      time.Hour,
		HeartbeatInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
		Trace:             tr,
	}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	m, err := newMaster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.stop)
	for i := 0; i < n; i++ {
		var reply RegisterReply
		if err := m.Register(&RegisterArgs{Addr: "127.0.0.1:0", PID: 1000 + i, Index: i}, &reply); err != nil {
			t.Fatalf("Register: %v", err)
		}
		if reply.WorkerID != i {
			t.Fatalf("Register assigned id %d, want %d", reply.WorkerID, i)
		}
		if reply.HeartbeatEveryNs != int64(time.Hour) || reply.LeasePollEveryNs <= 0 {
			t.Fatalf("Register reply timings = %+v", reply)
		}
	}
	return m
}

// addTestJob registers a bare two-map job directly with the master.
func addTestJob(m *master, maps, reduces, maxAttempts int) *jobState {
	splits := make([][]byte, maps)
	for i := range splits {
		splits[i] = mapreduce.AppendRecord(nil, []byte("k"), []byte{byte(i)})
	}
	return m.addJob(&mapreduce.Job{Name: "unit", Kind: testSumKind}, splits, reduces, maxAttempts)
}

func lease(t *testing.T, m *master, worker int) *LeaseReply {
	t.Helper()
	var reply LeaseReply
	if err := m.Lease(&LeaseArgs{WorkerID: worker}, &reply); err != nil {
		t.Fatalf("Lease(worker %d): %v", worker, err)
	}
	return &reply
}

func mapDone(t *testing.T, m *master, l *LeaseReply, worker int, segBytes []int64) {
	t.Helper()
	checks := make([]uint64, len(segBytes))
	for i, b := range segBytes {
		if b > 0 {
			checks[i] = uint64(100 + i)
		}
	}
	err := m.MapDone(&MapDoneArgs{
		WorkerID: worker, JobID: l.JobID, TaskID: l.TaskID, Attempt: l.Attempt,
		Checksums: checks, Bytes: segBytes,
	}, &Empty{})
	if err != nil {
		t.Fatalf("MapDone: %v", err)
	}
}

func TestLeaseOrderingAndReduceGating(t *testing.T) {
	m := newTestMaster(t, 2, nil)
	j := addTestJob(m, 2, 2, 3)

	l0 := lease(t, m, 0)
	l1 := lease(t, m, 1)
	if l0.Kind != LeaseMap || l1.Kind != LeaseMap || l0.TaskID == l1.TaskID {
		t.Fatalf("expected two distinct map leases, got %+v and %+v", l0, l1)
	}
	if len(l0.Split) == 0 {
		t.Error("map lease carries no split payload")
	}
	// Maps in flight: nothing else runnable, and reduces must not start.
	if l := lease(t, m, 0); l.Kind != LeaseNone {
		t.Fatalf("lease during map flight = %q, want none", l.Kind)
	}

	mapDone(t, m, l0, 0, []int64{4, 0}) // map → reduce 0 only
	if l := lease(t, m, 0); l.Kind != LeaseNone {
		t.Fatalf("reduce leased before all maps done: %+v", l)
	}
	mapDone(t, m, l1, 1, []int64{3, 5})

	r0 := lease(t, m, 0)
	if r0.Kind != LeaseReduce {
		t.Fatalf("lease after maps done = %q, want reduce", r0.Kind)
	}
	// Sources list non-empty segments only, in map-task order.
	var wantSources int
	switch r0.TaskID {
	case 0:
		wantSources = 2
	case 1:
		wantSources = 1
	}
	if len(r0.Sources) != wantSources {
		t.Fatalf("reduce %d sources = %+v, want %d entries", r0.TaskID, r0.Sources, wantSources)
	}
	for i := 1; i < len(r0.Sources); i++ {
		if r0.Sources[i-1].MapTask >= r0.Sources[i].MapTask {
			t.Error("sources not in map-task order")
		}
	}

	// Finish both reduces; the job resolves cleanly.
	r1 := lease(t, m, 1)
	for worker, r := range map[int]*LeaseReply{0: r0, 1: r1} {
		err := m.ReduceDone(&ReduceDoneArgs{
			WorkerID: worker, JobID: r.JobID, TaskID: r.TaskID, Attempt: r.Attempt,
			FetchFailedWorker: -1, Output: mapreduce.AppendRecord(nil, []byte("k"), []byte("v")),
		}, &Empty{})
		if err != nil {
			t.Fatalf("ReduceDone: %v", err)
		}
	}
	select {
	case <-j.done:
	default:
		t.Fatal("job not finished after all reduces reported")
	}
	if j.err != nil {
		t.Fatalf("job error = %v", j.err)
	}
}

func TestLeaseExpiryRequeuesAsKilled(t *testing.T) {
	tr := obs.New()
	m := newTestMaster(t, 2, tr)
	addTestJob(m, 1, 1, 3)

	l := lease(t, m, 0)
	if l.Kind != LeaseMap || l.Attempt != 1 {
		t.Fatalf("first lease = %+v", l)
	}
	// Push the clock past the deadline by hand: expiry is a watchdog
	// decision, tested here without waiting an hour.
	m.mu.Lock()
	m.expireLeases(time.Now().Add(2 * time.Hour))
	m.mu.Unlock()

	// The stale holder's report must be fenced off…
	mapDone(t, m, l, 0, []int64{1})
	// …and the re-lease goes out as attempt 2.
	l2 := lease(t, m, 1)
	if l2.Kind != LeaseMap || l2.Attempt != 2 {
		t.Fatalf("post-expiry lease = %+v, want map attempt 2", l2)
	}
	mapDone(t, m, l2, 1, []int64{1})

	j := m.jobs[l.JobID]
	m.mu.Lock()
	recs := j.history.Records()
	mapsDone := j.mapsDone
	m.mu.Unlock()
	if mapsDone != 1 {
		t.Fatalf("mapsDone = %d after fenced stale report + accepted report, want 1", mapsDone)
	}
	if len(recs) != 2 || !recs[0].Killed || !strings.Contains(recs[0].Err, "lease expired") {
		t.Fatalf("history = %+v, want killed attempt 1 then success", recs)
	}
	if recs[1].Err != "" || recs[1].Killed || recs[1].Attempt != 2 {
		t.Fatalf("second record = %+v, want clean attempt 2", recs[1])
	}
	if got := j.counters.Get(mapreduce.CounterTaskFailures); got != 0 {
		t.Fatalf("CounterTaskFailures = %d, expiry must not count as failure", got)
	}
	expired := int64(0)
	for _, c := range tr.Metrics().Snapshot().Counters {
		if c.Name == "rpc.lease.expired" {
			expired = c.Value
		}
	}
	if expired != 1 {
		t.Fatalf("rpc.lease.expired = %d, want 1", expired)
	}
}

func TestTaskFailureBudget(t *testing.T) {
	m := newTestMaster(t, 1, nil)
	j := addTestJob(m, 1, 1, 2) // two strikes

	for attempt := 1; attempt <= 2; attempt++ {
		l := lease(t, m, 0)
		if l.Attempt != attempt {
			t.Fatalf("lease attempt = %d, want %d", l.Attempt, attempt)
		}
		err := m.MapDone(&MapDoneArgs{
			WorkerID: 0, JobID: l.JobID, TaskID: l.TaskID, Attempt: l.Attempt,
			Err: "synthetic task error",
		}, &Empty{})
		if err != nil {
			t.Fatalf("MapDone: %v", err)
		}
	}
	select {
	case <-j.done:
	default:
		t.Fatal("job not failed after exhausting MaxAttempts")
	}
	if j.err == nil || !strings.Contains(j.err.Error(), "failed 2 times") {
		t.Fatalf("job error = %v, want MaxAttempts failure", j.err)
	}
	if got := j.counters.Get(mapreduce.CounterTaskFailures); got != 2 {
		t.Fatalf("CounterTaskFailures = %d, want 2", got)
	}
	if failed := j.history.Failed(); len(failed) != 2 {
		t.Fatalf("history.Failed() = %d records, want 2", len(failed))
	}
}

func TestWorkerDeathRegressesDoneMaps(t *testing.T) {
	tr := obs.New()
	m := newTestMaster(t, 2, tr)
	j := addTestJob(m, 2, 1, 3)

	l0 := lease(t, m, 0)
	l1 := lease(t, m, 1)
	mapDone(t, m, l0, 0, []int64{2})
	mapDone(t, m, l1, 1, []int64{2})
	r := lease(t, m, 1)
	if r.Kind != LeaseReduce || len(r.Sources) != 2 {
		t.Fatalf("reduce lease = %+v, want 2 sources", r)
	}

	// Worker 0 dies: its done map regresses, worker 1's reduce lease (which
	// depends on worker 0's segment) is requeued by the fetch-failure path
	// below — here the death alone must already regress the map.
	m.mu.Lock()
	m.markWorkerDead(0, "unit test")
	mapsDone := j.mapsDone
	m.mu.Unlock()
	if mapsDone != 1 {
		t.Fatalf("mapsDone = %d after output holder died, want 1", mapsDone)
	}
	if got := j.counters.Get(mapreduce.CounterNodeFailures); got != 1 {
		t.Fatalf("CounterNodeFailures = %d, want 1", got)
	}

	// Dead workers lease nothing; the survivor re-runs the lost map.
	if l := lease(t, m, 0); l.Kind != LeaseExit {
		t.Fatalf("dead worker lease = %q, want exit", l.Kind)
	}
	l0b := lease(t, m, 1)
	if l0b.Kind != LeaseMap || l0b.TaskID != l0.TaskID || l0b.Attempt != 2 {
		t.Fatalf("regressed map re-lease = %+v, want task %d attempt 2", l0b, l0.TaskID)
	}

	deaths := int64(0)
	for _, c := range tr.Metrics().Snapshot().Counters {
		if c.Name == "rpc.worker.deaths" {
			deaths = c.Value
		}
	}
	if deaths != 1 {
		t.Fatalf("rpc.worker.deaths = %d, want 1", deaths)
	}

	// Idempotent: declaring the same worker dead twice changes nothing.
	m.mu.Lock()
	m.markWorkerDead(0, "again")
	m.mu.Unlock()
	if got := j.counters.Get(mapreduce.CounterNodeFailures); got != 1 {
		t.Fatalf("CounterNodeFailures after duplicate death = %d, want 1", got)
	}
}

func TestReduceFetchFailureKillsServingWorker(t *testing.T) {
	m := newTestMaster(t, 2, nil)
	j := addTestJob(m, 1, 1, 3)

	lm := lease(t, m, 0)
	mapDone(t, m, lm, 0, []int64{2})
	r := lease(t, m, 1)
	if r.Kind != LeaseReduce {
		t.Fatalf("lease = %+v, want reduce", r)
	}
	// Worker 1 cannot reach worker 0 mid-shuffle: the report is evidence of
	// worker 0's death, the reduce attempt is killed (not failed), and the
	// lost map regresses immediately — no heartbeat timeout involved.
	err := m.ReduceDone(&ReduceDoneArgs{
		WorkerID: 1, JobID: r.JobID, TaskID: r.TaskID, Attempt: r.Attempt,
		Err: "fetch map 0 from worker-0: connection refused", FetchFailedWorker: 0,
	}, &Empty{})
	if err != nil {
		t.Fatalf("ReduceDone: %v", err)
	}
	m.mu.Lock()
	alive := m.workers[0].alive
	mapsDone := j.mapsDone
	m.mu.Unlock()
	if alive {
		t.Fatal("worker 0 still alive after fetch-failure evidence")
	}
	if mapsDone != 0 {
		t.Fatalf("mapsDone = %d, want 0 (lost output regressed)", mapsDone)
	}
	if got := j.counters.Get(mapreduce.CounterTaskFailures); got != 0 {
		t.Fatalf("CounterTaskFailures = %d, fetch failure must not charge the budget", got)
	}
	killed := 0
	for _, rec := range j.history.Records() {
		if rec.Killed && rec.Phase == mapreduce.PhaseReduce {
			killed++
		}
	}
	if killed != 1 {
		t.Fatalf("killed reduce records = %d, want 1", killed)
	}
}

func TestAllWorkersDeadFailsJobs(t *testing.T) {
	m := newTestMaster(t, 1, nil)
	j := addTestJob(m, 1, 1, 3)
	lease(t, m, 0)
	m.mu.Lock()
	m.markWorkerDead(0, "unit test")
	m.mu.Unlock()
	select {
	case <-j.done:
	default:
		t.Fatal("job not failed with no workers left")
	}
	if j.err == nil || !strings.Contains(j.err.Error(), "all workers dead") {
		t.Fatalf("job error = %v, want 'all workers dead'", j.err)
	}
}

func TestHeartbeatControlPlane(t *testing.T) {
	m := newTestMaster(t, 1, nil)

	var hb HeartbeatReply
	if err := m.Heartbeat(&HeartbeatArgs{WorkerID: 7}, &hb); err == nil {
		t.Error("heartbeat from unknown worker: want error")
	}
	if err := m.Heartbeat(&HeartbeatArgs{WorkerID: 0, PrevRTTNs: 1234}, &hb); err != nil || hb.Exit {
		t.Fatalf("heartbeat = %+v, %v; want no exit", hb, err)
	}

	// A finished job's id rides the next heartbeat as a drop notice, once.
	j := addTestJob(m, 1, 1, 3)
	m.mu.Lock()
	m.failJob(j, nil)
	m.mu.Unlock()
	if err := m.Heartbeat(&HeartbeatArgs{WorkerID: 0}, &hb); err != nil {
		t.Fatal(err)
	}
	if len(hb.DropJobs) != 1 || hb.DropJobs[0] != j.id {
		t.Fatalf("DropJobs = %v, want [%d]", hb.DropJobs, j.id)
	}
	if err := m.Heartbeat(&HeartbeatArgs{WorkerID: 0}, &hb); err != nil || len(hb.DropJobs) != 0 {
		t.Fatalf("second heartbeat DropJobs = %v, want empty", hb.DropJobs)
	}

	m.beginShutdown()
	if err := m.Heartbeat(&HeartbeatArgs{WorkerID: 0}, &hb); err != nil || !hb.Exit {
		t.Fatalf("heartbeat after shutdown = %+v, want Exit", hb)
	}
	if l := lease(t, m, 0); l.Kind != LeaseExit {
		t.Fatalf("lease after shutdown = %q, want exit", l.Kind)
	}
}

func TestStaleReportsAreDropped(t *testing.T) {
	m := newTestMaster(t, 1, nil)
	j := addTestJob(m, 1, 1, 3)
	l := lease(t, m, 0)

	// Unknown job, out-of-range task, wrong attempt: all silently dropped.
	if err := m.MapDone(&MapDoneArgs{WorkerID: 0, JobID: 999, TaskID: 0, Attempt: 1}, &Empty{}); err != nil {
		t.Fatal(err)
	}
	if err := m.MapDone(&MapDoneArgs{WorkerID: 0, JobID: l.JobID, TaskID: 99, Attempt: 1}, &Empty{}); err != nil {
		t.Fatal(err)
	}
	if err := m.MapDone(&MapDoneArgs{WorkerID: 0, JobID: l.JobID, TaskID: 0, Attempt: 7}, &Empty{}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReduceDone(&ReduceDoneArgs{WorkerID: 0, JobID: 999, TaskID: 0, Attempt: 1, FetchFailedWorker: -1}, &Empty{}); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	mapsDone, recs := j.mapsDone, len(j.history.Records())
	m.mu.Unlock()
	if mapsDone != 0 || recs != 0 {
		t.Fatalf("stale reports mutated state: mapsDone=%d, records=%d", mapsDone, recs)
	}

	// Cancelled jobs drop late reports too.
	m.cancelJob(j, context.Canceled)
	if err := m.MapDone(&MapDoneArgs{WorkerID: 0, JobID: l.JobID, TaskID: 0, Attempt: l.Attempt, Bytes: []int64{1}, Checksums: []uint64{1}}, &Empty{}); err != nil {
		t.Fatal(err)
	}
	m.dropJob(j)
	if err := m.JobInfo(&JobInfoArgs{JobID: l.JobID}, &JobInfoReply{}); err == nil {
		t.Error("JobInfo for dropped job: want error")
	}
}

func TestJobInfo(t *testing.T) {
	m := newTestMaster(t, 1, nil)
	addTestJob(m, 2, 3, 3)
	var info JobInfoReply
	if err := m.JobInfo(&JobInfoArgs{JobID: 1}, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "unit" || info.Kind != testSumKind || info.NumMappers != 2 || info.NumReducers != 3 {
		t.Fatalf("JobInfo = %+v", info)
	}
}
