//go:build unix

package rpcexec

import (
	"errors"
	"syscall"
)

// processAlive reports whether pid still exists in the process table.
// Workers are reaped by ProcExecutor the moment they exit, so a dead worker
// never lingers as a zombie and kill(pid, 0) answers ESRCH.
func processAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return !errors.Is(err, syscall.ESRCH)
}
