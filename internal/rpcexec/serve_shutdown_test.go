package rpcexec

import (
	"context"
	"errors"
	"testing"
	"time"

	"mrskyline"
	"mrskyline/internal/datagen"
)

// TestServiceShutdownLeavesNoWorkerProcesses covers the serving layer's
// shutdown contract with an external executor: NewService takes ownership
// of the ProcExecutor, a query cancelled mid-lease aborts without wedging
// anything, and Close tears the worker processes down — verified against
// the live process table, not the executor's own bookkeeping.
func TestServiceShutdownLeavesNoWorkerProcesses(t *testing.T) {
	pe, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pids := pe.WorkerPIDs()

	svc, err := mrskyline.NewService(mrskyline.ServiceConfig{Executor: pe})
	if err != nil {
		pe.Close()
		t.Fatalf("NewService: %v", err)
	}
	if got := svc.Stats().TotalSlots; got != 2 {
		t.Errorf("Stats().TotalSlots = %d, want 2 (external executor)", got)
	}

	// A workload big enough to still be mid-lease when the context dies.
	tuples := datagen.Generate(datagen.AntiCorrelated, 30000, 5, 1)
	data := make([][]float64, len(tuples))
	for i, tp := range tuples {
		data[i] = tp
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = svc.Compute(ctx, data, mrskyline.Options{Algorithm: mrskyline.GPSRS})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query error = %v, want context.Canceled (or fast success)", err)
	}

	// Close shuts the owned executor down; every worker leaves the process
	// table — cancellation must not strand a worker behind a lost lease.
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, pid := range pids {
		deadline := time.Now().Add(3 * time.Second)
		for processAlive(pid) {
			if time.Now().After(deadline) {
				t.Fatalf("worker pid %d leaked past Service.Close", pid)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
