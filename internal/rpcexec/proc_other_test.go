//go:build !unix

package rpcexec

// processAlive's non-unix fallback: without kill(pid, 0) there is no cheap
// liveness probe, so the process-table assertions become no-ops.
func processAlive(pid int) bool { return false }
