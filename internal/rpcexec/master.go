package rpcexec

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strconv"
	"sync"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// Task and job lifecycle inside the master. A task is pending until a
// worker leases it, leased until the worker reports, and done once a
// success report is accepted:
//
//	pending ──lease──▶ leased ──success report──▶ done
//	   ▲                  │
//	   │   failure report (counts toward MaxAttempts)
//	   ├──────────────────┤
//	   │   lease deadline passed, or holder declared dead (Killed record,
//	   │   does not count toward MaxAttempts)
//	   └──────────────────┘
//
// A done map task regresses to pending if the worker holding its output
// dies (Hadoop's map re-execution); reduce tasks are leased only while
// every map task is done, so a reduce lease always has a complete source
// list. Workers are declared dead when their heartbeat goes stale or when
// a reducer reports a failed fetch from them; death requeues their leased
// tasks and their hosted map outputs. Stale reports — from a worker that
// lost its lease but kept computing — are fenced by (worker, attempt)
// against the current lease and dropped.

type taskStatus int

const (
	taskPending taskStatus = iota
	taskLeased
	taskDone
)

// taskState is one task's scheduling state. Map tasks use checksums/bytes
// (their output stays on the worker); reduce tasks use output.
type taskState struct {
	status   taskStatus
	attempts int // lease grants so far; the next grant is attempt attempts+1
	failures int // failed attempts, counted against MaxAttempts
	worker   int // lease holder while leased; output holder once done (maps)
	attempt  int // attempt number of the current lease / accepted attempt
	deadline time.Time
	granted  time.Time
	startOff time.Duration // lease grant offset from job start, for TaskRecord

	checksums []uint64 // map: per-reducer segment checksums
	segBytes  []int64  // map: per-reducer segment sizes
	output    []byte   // reduce: framed output records
}

// jobState is one submitted job.
type jobState struct {
	id          int64
	name        string
	kind        string
	spec        []byte
	cache       mapreduce.Cache
	numReducers int
	maxAttempts int
	splits      [][]byte
	maps        []taskState
	reduces     []taskState
	mapsDone    int
	reducesDone int

	counters *mapreduce.Counters
	history  *mapreduce.History
	start    time.Time
	mapEnd   time.Time // moment mapsDone last reached len(maps)

	err      error
	finished bool
	done     chan struct{} // closed when finished

	span obs.SpanRef
}

// workerState is the master's view of one worker process.
type workerState struct {
	id       int
	addr     string
	pid      int
	alive    bool
	lastSeen time.Time
	dropQ    []int64 // finished jobs whose segments the worker may evict
}

// master owns the job table and worker registry and serves the Master RPC
// service. One mutex guards all state: every RPC is a short critical
// section, and task bodies run worker-side.
type master struct {
	mu sync.Mutex

	leaseTimeout     time.Duration
	heartbeatEvery   time.Duration
	heartbeatTimeout time.Duration
	leasePollEvery   time.Duration
	expectedWorkers  int
	tr               *obs.Tracer

	ln       net.Listener
	addr     string
	workers  []*workerState
	jobs     map[int64]*jobState
	jobOrder []int64
	nextJob  int64
	shutdown bool

	janitorStop chan struct{}
	wg          sync.WaitGroup
}

func newMaster(cfg Config) (*master, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("rpcexec: master listen: %w", err)
	}
	m := &master{
		leaseTimeout:     cfg.LeaseTimeout,
		heartbeatEvery:   cfg.HeartbeatInterval,
		heartbeatTimeout: cfg.HeartbeatTimeout,
		leasePollEvery:   cfg.LeasePoll,
		expectedWorkers:  cfg.Workers,
		tr:               cfg.Trace,
		ln:               ln,
		addr:             ln.Addr().String(),
		jobs:             make(map[int64]*jobState),
		janitorStop:      make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", m); err != nil {
		ln.Close()
		return nil, fmt.Errorf("rpcexec: register master service: %w", err)
	}
	m.wg.Add(2)
	go m.acceptLoop(srv)
	go m.janitor()
	return m, nil
}

func (m *master) acceptLoop(srv *rpc.Server) {
	defer m.wg.Done()
	var connWG sync.WaitGroup
	defer connWG.Wait()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			srv.ServeConn(conn)
		}()
	}
}

// janitor is the lease/heartbeat watchdog: it declares workers dead when
// their heartbeat goes stale and reclaims leases whose deadline passed.
func (m *master) janitor() {
	defer m.wg.Done()
	tick := time.NewTicker(m.heartbeatEvery / 2)
	defer tick.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-tick.C:
			m.mu.Lock()
			for _, w := range m.workers {
				if w.alive && now.Sub(w.lastSeen) > m.heartbeatTimeout {
					m.markWorkerDead(w.id, "heartbeat timeout")
				}
			}
			m.expireLeases(now)
			m.mu.Unlock()
		}
	}
}

// expireLeases requeues every leased task whose deadline passed. Expiry is
// a scheduler decision, not a task failure: the attempt is recorded as
// killed and does not count toward MaxAttempts. Called with m.mu held.
func (m *master) expireLeases(now time.Time) {
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		if j == nil || j.finished {
			continue
		}
		for ti := range j.maps {
			m.expireLease(j, mapreduce.PhaseMap, ti, now)
		}
		for ti := range j.reduces {
			m.expireLease(j, mapreduce.PhaseReduce, ti, now)
		}
	}
}

func (m *master) expireLease(j *jobState, phase mapreduce.Phase, ti int, now time.Time) {
	t := m.task(j, phase, ti)
	if t.status != taskLeased || now.Before(t.deadline) {
		return
	}
	m.tr.Metrics().Count("rpc.lease.expired", 1)
	m.requeueKilled(j, phase, ti, "lease expired on "+workerNode(t.worker))
}

// requeueKilled records the current lease as a killed attempt and returns
// the task to pending. Called with m.mu held.
func (m *master) requeueKilled(j *jobState, phase mapreduce.Phase, ti int, reason string) {
	t := m.task(j, phase, ti)
	j.history.Append(mapreduce.TaskRecord{
		Phase: phase, TaskID: ti, Attempt: t.attempt,
		Node: workerNode(t.worker), Start: t.startOff,
		Duration: time.Since(t.granted),
		Err:      fmt.Sprintf("%s task %d attempt %d killed: %s", phase, ti, t.attempt, reason),
		Killed:   true,
	})
	t.status = taskPending
}

func (m *master) task(j *jobState, phase mapreduce.Phase, ti int) *taskState {
	if phase == mapreduce.PhaseMap {
		return &j.maps[ti]
	}
	return &j.reduces[ti]
}

// markWorkerDead handles one worker's death: its leased tasks are requeued
// as killed, map outputs it hosted regress to pending for re-execution,
// and jobs with no live workers left fail. Idempotent. Called with m.mu
// held.
func (m *master) markWorkerDead(id int, reason string) {
	w := m.workers[id]
	if !w.alive {
		return
	}
	w.alive = false
	m.tr.Metrics().Count("rpc.worker.deaths", 1)
	anyAlive := false
	for _, other := range m.workers {
		if other.alive {
			anyAlive = true
			break
		}
	}
	for _, jid := range m.jobOrder {
		j := m.jobs[jid]
		if j == nil || j.finished {
			continue
		}
		j.counters.Add(mapreduce.CounterNodeFailures, 1)
		for ti := range j.maps {
			t := &j.maps[ti]
			switch {
			case t.status == taskLeased && t.worker == id:
				m.requeueKilled(j, mapreduce.PhaseMap, ti, "worker died: "+reason)
			case t.status == taskDone && t.worker == id:
				// The output lives on the dead worker: re-execute the map, as
				// Hadoop re-runs completed maps of a lost node. Determinism of
				// the map body guarantees the re-executed segments are
				// byte-identical, so already-recorded checksums would remain
				// valid — but they are rebuilt from the new report anyway.
				t.status = taskPending
				t.checksums, t.segBytes = nil, nil
				j.mapsDone--
			}
		}
		for ti := range j.reduces {
			t := &j.reduces[ti]
			if t.status == taskLeased && t.worker == id {
				m.requeueKilled(j, mapreduce.PhaseReduce, ti, "worker died: "+reason)
			}
		}
		if !anyAlive {
			m.failJob(j, errors.New("all workers dead"))
		}
	}
}

// failJob finishes a job with an error. Called with m.mu held.
func (m *master) failJob(j *jobState, err error) {
	if j.finished {
		return
	}
	j.err = err
	m.finishJob(j)
}

// finishJob closes out a job: the done channel is closed, the job leaves
// the scheduling order, and every live worker is told (on its next
// heartbeat) to evict the job's shuffle segments. Called with m.mu held.
func (m *master) finishJob(j *jobState) {
	j.finished = true
	j.span.EndWith(obs.Arg{Key: "state", Value: map[bool]string{true: "error", false: "ok"}[j.err != nil]})
	close(j.done)
	for _, w := range m.workers {
		if w.alive {
			w.dropQ = append(w.dropQ, j.id)
		}
	}
}

// touch refreshes a worker's liveness clock. Called with m.mu held.
func (m *master) touch(id int) *workerState {
	if id < 0 || id >= len(m.workers) {
		return nil
	}
	w := m.workers[id]
	w.lastSeen = time.Now()
	return w
}

// registeredWorkers counts registrations (alive or not).
func (m *master) registeredWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// beginShutdown flips the master into drain mode: leases and heartbeats
// start telling workers to exit.
func (m *master) beginShutdown() {
	m.mu.Lock()
	m.shutdown = true
	m.mu.Unlock()
}

// stop tears the master down after workers are gone.
func (m *master) stop() {
	close(m.janitorStop)
	m.ln.Close()
	m.wg.Wait()
}

// ---------------------------------------------------------------------------
// Job submission (driver side)

// addJob registers a job and returns its state; the done channel resolves
// it.
func (m *master) addJob(job *mapreduce.Job, splits [][]byte, numReducers, maxAttempts int) *jobState {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextJob++
	j := &jobState{
		id:          m.nextJob,
		name:        job.Name,
		kind:        job.Kind,
		spec:        job.Spec,
		cache:       job.Cache,
		numReducers: numReducers,
		maxAttempts: maxAttempts,
		splits:      splits,
		maps:        make([]taskState, len(splits)),
		reduces:     make([]taskState, numReducers),
		counters:    mapreduce.NewCounters(),
		history:     &mapreduce.History{},
		start:       time.Now(),
		done:        make(chan struct{}),
	}
	j.span = m.tr.Start(obs.DriverTrack, "job:"+j.name, obs.CatJob,
		obs.Arg{Key: "executor", Value: "process"},
		obs.Arg{Key: "mappers", Value: strconv.Itoa(len(j.maps))},
		obs.Arg{Key: "reducers", Value: strconv.Itoa(numReducers)})
	m.jobs[j.id] = j
	m.jobOrder = append(m.jobOrder, j.id)
	return j
}

// cancelJob aborts a job (driver context cancelled). Leased attempts keep
// running worker-side; their reports are dropped because the job is
// finished.
func (m *master) cancelJob(j *jobState, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failJob(j, err)
}

// dropJob removes a resolved job from the table.
func (m *master) dropJob(j *jobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, j.id)
	for i, id := range m.jobOrder {
		if id == j.id {
			m.jobOrder = append(m.jobOrder[:i], m.jobOrder[i+1:]...)
			break
		}
	}
}

// ---------------------------------------------------------------------------
// Master RPC service

// Register implements the Master.Register RPC.
func (m *master) Register(args *RegisterArgs, reply *RegisterReply) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := len(m.workers)
	m.workers = append(m.workers, &workerState{
		id: id, addr: args.Addr, pid: args.PID, alive: true, lastSeen: time.Now(),
	})
	reply.WorkerID = id
	reply.HeartbeatEveryNs = int64(m.heartbeatEvery)
	reply.LeasePollEveryNs = int64(m.leasePollEvery)
	return nil
}

// Heartbeat implements the Master.Heartbeat RPC.
func (m *master) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.touch(args.WorkerID)
	if w == nil {
		return fmt.Errorf("rpcexec: unknown worker %d", args.WorkerID)
	}
	if args.PrevRTTNs > 0 {
		m.tr.Metrics().Observe("rpc.heartbeat.rtt.ns", args.PrevRTTNs)
	}
	reply.Exit = m.shutdown || !w.alive
	reply.DropJobs, w.dropQ = w.dropQ, nil
	return nil
}

// Lease implements the Master.Lease RPC: grant the worker one runnable
// task. Jobs are scanned in submission order; within a job, reduce tasks
// become runnable only while every map task is done, preserving the
// synchronous-round structure of the computation on the wire.
func (m *master) Lease(args *LeaseArgs, reply *LeaseReply) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.touch(args.WorkerID)
	if w == nil {
		return fmt.Errorf("rpcexec: unknown worker %d", args.WorkerID)
	}
	if m.shutdown || !w.alive {
		reply.Kind = LeaseExit
		return nil
	}
	now := time.Now()
	for _, jid := range m.jobOrder {
		j := m.jobs[jid]
		if j == nil || j.finished {
			continue
		}
		if j.mapsDone < len(j.maps) {
			for ti := range j.maps {
				if j.maps[ti].status != taskPending {
					continue
				}
				m.grant(j, &j.maps[ti], w.id, now)
				reply.Kind = LeaseMap
				reply.JobID = j.id
				reply.TaskID = ti
				reply.Attempt = j.maps[ti].attempt
				reply.Split = j.splits[ti]
				return nil
			}
			continue // maps in flight; this job has nothing else runnable yet
		}
		for ti := range j.reduces {
			if j.reduces[ti].status != taskPending {
				continue
			}
			m.grant(j, &j.reduces[ti], w.id, now)
			reply.Kind = LeaseReduce
			reply.JobID = j.id
			reply.TaskID = ti
			reply.Attempt = j.reduces[ti].attempt
			reply.Sources = m.sources(j, ti)
			return nil
		}
	}
	reply.Kind = LeaseNone
	return nil
}

// grant moves a pending task to leased. Called with m.mu held.
func (m *master) grant(j *jobState, t *taskState, worker int, now time.Time) {
	t.attempts++
	t.status = taskLeased
	t.worker = worker
	t.attempt = t.attempts
	t.granted = now
	t.deadline = now.Add(m.leaseTimeout)
	t.startOff = now.Sub(j.start)
	m.tr.Metrics().Count("rpc.lease.granted", 1)
}

// sources builds a reduce task's fetch list (non-empty segments only, in
// map-task order). Called with m.mu held and all maps done.
func (m *master) sources(j *jobState, reduce int) []MapSource {
	var srcs []MapSource
	for mi := range j.maps {
		t := &j.maps[mi]
		if t.segBytes == nil || t.segBytes[reduce] == 0 {
			continue
		}
		srcs = append(srcs, MapSource{
			MapTask:  mi,
			WorkerID: t.worker,
			Addr:     m.workers[t.worker].addr,
			Checksum: t.checksums[reduce],
			Bytes:    t.segBytes[reduce],
		})
	}
	return srcs
}

// accepts reports whether a task report matches the current lease. Called
// with m.mu held.
func accepts(t *taskState, worker, attempt int) bool {
	return t.status == taskLeased && t.worker == worker && t.attempt == attempt
}

// MapDone implements the Master.MapDone RPC.
func (m *master) MapDone(args *MapDoneArgs, _ *Empty) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.touch(args.WorkerID)
	j := m.jobs[args.JobID]
	if w == nil || j == nil || j.finished || args.TaskID >= len(j.maps) {
		return nil // job resolved or unknown: stale report, drop
	}
	t := &j.maps[args.TaskID]
	if !accepts(t, args.WorkerID, args.Attempt) {
		return nil // fenced: the lease moved on (expiry, death, reassignment)
	}
	rec := mapreduce.TaskRecord{
		Phase: mapreduce.PhaseMap, TaskID: args.TaskID, Attempt: args.Attempt,
		Node: workerNode(args.WorkerID), Start: t.startOff, Duration: time.Since(t.granted),
	}
	if args.Err != "" {
		rec.Err = args.Err
		j.history.Append(rec)
		j.counters.Add(mapreduce.CounterTaskFailures, 1)
		t.failures++
		t.status = taskPending
		if t.failures >= j.maxAttempts {
			m.failJob(j, fmt.Errorf("map task %d failed %d times: %s", args.TaskID, t.failures, args.Err))
		}
		return nil
	}
	if !w.alive {
		return nil // output location is gone; let re-execution proceed
	}
	j.history.Append(rec)
	t.status = taskDone
	t.checksums = args.Checksums
	t.segBytes = args.Bytes
	j.counters.MergeDump(args.Counters)
	m.tr.Record(obs.Span{
		Track: cluster.SlotTrack(workerNode(args.WorkerID), 0),
		Name:  fmt.Sprintf("map:%s:%d", j.name, args.TaskID), Cat: obs.CatTask,
		Start: m.tr.Now() - rec.Duration, End: m.tr.Now(),
	})
	j.mapsDone++
	if j.mapsDone == len(j.maps) {
		j.mapEnd = time.Now()
	}
	return nil
}

// ReduceDone implements the Master.ReduceDone RPC.
func (m *master) ReduceDone(args *ReduceDoneArgs, _ *Empty) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.touch(args.WorkerID)
	j := m.jobs[args.JobID]
	if w == nil || j == nil || j.finished || args.TaskID >= len(j.reduces) {
		return nil
	}
	t := &j.reduces[args.TaskID]
	if !accepts(t, args.WorkerID, args.Attempt) {
		return nil
	}
	if args.Err != "" {
		if args.FetchFailedWorker >= 0 && args.FetchFailedWorker < len(m.workers) {
			// The attempt died of a peer's death, not its own bug: record it
			// killed (no MaxAttempts charge), requeue, and act on the death
			// evidence now — the heartbeat janitor would reach the same
			// verdict a timeout later.
			m.requeueKilled(j, mapreduce.PhaseReduce, args.TaskID, args.Err)
			m.markWorkerDead(args.FetchFailedWorker, "unreachable during shuffle fetch")
			return nil
		}
		j.history.Append(mapreduce.TaskRecord{
			Phase: mapreduce.PhaseReduce, TaskID: args.TaskID, Attempt: args.Attempt,
			Node: workerNode(args.WorkerID), Start: t.startOff, Duration: time.Since(t.granted),
			Err: args.Err,
		})
		j.counters.Add(mapreduce.CounterTaskFailures, 1)
		t.failures++
		t.status = taskPending
		if t.failures >= j.maxAttempts {
			m.failJob(j, fmt.Errorf("reduce task %d failed %d times: %s", args.TaskID, t.failures, args.Err))
		}
		return nil
	}
	j.history.Append(mapreduce.TaskRecord{
		Phase: mapreduce.PhaseReduce, TaskID: args.TaskID, Attempt: args.Attempt,
		Node: workerNode(args.WorkerID), Start: t.startOff, Duration: time.Since(t.granted),
	})
	t.status = taskDone
	t.output = args.Output
	j.counters.MergeDump(args.Counters)
	j.counters.Add(mapreduce.CounterShuffleBytes, args.PayloadBytes)
	if args.Refetches > 0 {
		j.counters.Add(mapreduce.CounterShuffleCorruptions, args.Refetches)
	}
	m.tr.Metrics().Count("rpc.shuffle.wire.bytes", args.WireBytes)
	m.tr.Record(obs.Span{
		Track: cluster.SlotTrack(workerNode(args.WorkerID), 0),
		Name:  fmt.Sprintf("reduce:%s:%d", j.name, args.TaskID), Cat: obs.CatTask,
		Start: m.tr.Now() - time.Since(t.granted), End: m.tr.Now(),
	})
	j.reducesDone++
	if j.reducesDone == len(j.reduces) {
		m.finishJob(j)
	}
	return nil
}

// JobInfo implements the Master.JobInfo RPC.
func (m *master) JobInfo(args *JobInfoArgs, reply *JobInfoReply) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[args.JobID]
	if j == nil {
		return fmt.Errorf("rpcexec: unknown job %d", args.JobID)
	}
	reply.Name = j.name
	reply.Kind = j.kind
	reply.Spec = j.spec
	reply.Cache = j.cache
	reply.NumMappers = len(j.maps)
	reply.NumReducers = j.numReducers
	return nil
}
