package rpcexec

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"mrskyline/internal/baseline"
	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/tuple"
)

// TestSumJobEndToEnd runs the kind-registered sum job on real worker
// processes and checks its exact output and counters.
func TestSumJobEndToEnd(t *testing.T) {
	pe := newProcExec(t, Config{Workers: 2})
	const keys, records, mappers, reducers = 7, 120, 4, 3
	res, err := pe.RunContext(context.Background(), sumJob("sum-e2e", keys, records, mappers, reducers, 0, 0))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	want := sumJobExpected(keys, records, reducers)
	if !recordsEqual(res.Output, want) {
		t.Fatalf("output mismatch:\n got %s\nwant %s", formatRecords(res.Output), formatRecords(want))
	}
	if got := res.Counters.Get(mapreduce.CounterMapInputRecords); got != int64(records) {
		t.Errorf("%s = %d, want %d", mapreduce.CounterMapInputRecords, got, records)
	}
	if res.Counters.Get(mapreduce.CounterShuffleBytes) == 0 {
		t.Error("CounterShuffleBytes = 0, want > 0")
	}
	checkAttemptInvariants(t, res)
	succ := 0
	for _, r := range res.History.Records() {
		if r.Err == "" && !r.Killed {
			succ++
		}
	}
	if succ != mappers+reducers {
		t.Errorf("history has %d successful attempts, want %d (fault-free run)", succ, mappers+reducers)
	}
}

// TestRunContextRejectsUnshippableJobs covers the validation surface:
// kindless jobs, unregistered kinds, and jobs missing a mapper or reducer.
func TestRunContextRejectsUnshippableJobs(t *testing.T) {
	pe := newProcExec(t, Config{Workers: 1})
	ctx := context.Background()

	job := sumJob("no-kind", 2, 10, 1, 1, 0, 0)
	job.Kind = ""
	if _, err := pe.RunContext(ctx, job); err == nil || !strings.Contains(err.Error(), "no Kind") {
		t.Errorf("kindless job: err = %v, want 'no Kind'", err)
	}

	job = sumJob("bad-kind", 2, 10, 1, 1, 0, 0)
	job.Kind = "rpcexec-test/never-registered"
	if _, err := pe.RunContext(ctx, job); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Errorf("unregistered kind: err = %v, want 'not registered'", err)
	}

	job = sumJob("no-reducer", 2, 10, 1, 1, 0, 0)
	job.NewReducer = nil
	if _, err := pe.RunContext(ctx, job); err == nil || !strings.Contains(err.Error(), "missing a mapper or reducer") {
		t.Errorf("reducerless job: err = %v, want 'missing a mapper or reducer'", err)
	}

	job = sumJob("no-input", 2, 10, 1, 1, 0, 0)
	job.Input = nil
	if _, err := pe.RunContext(ctx, job); err == nil || !strings.Contains(err.Error(), "no input") {
		t.Errorf("inputless job: err = %v, want 'no input'", err)
	}
}

// TestRunContextCancel cancels a job mid-flight and checks the executor
// survives to run the next one: workers are not respawned or torn down, the
// abandoned attempts are fenced off.
func TestRunContextCancel(t *testing.T) {
	pe := newProcExec(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Long task sleeps hold the job open far past the cancellation.
		_, err := pe.RunContext(ctx, sumJob("cancelled", 4, 40, 4, 2, 800, 800))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let leases go out
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("cancelled job error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not return")
	}

	// The executor still works: the abandoned attempts' late reports are
	// dropped by fencing, not mistaken for this job's tasks.
	res, err := pe.RunContext(context.Background(), sumJob("after-cancel", 3, 60, 2, 2, 0, 0))
	if err != nil {
		t.Fatalf("job after cancel: %v", err)
	}
	if want := sumJobExpected(3, 60, 2); !recordsEqual(res.Output, want) {
		t.Fatalf("output after cancel mismatch:\n got %s\nwant %s", formatRecords(res.Output), formatRecords(want))
	}
}

// TestCloseIdempotent double-closes and checks worker processes are gone.
func TestCloseIdempotent(t *testing.T) {
	pe, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pids := pe.WorkerPIDs()
	if len(pids) != 2 {
		t.Fatalf("WorkerPIDs = %v, want 2 entries", pids)
	}
	if err := pe.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := pe.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for _, pid := range pids {
		if processAlive(pid) {
			t.Errorf("worker pid %d still alive after Close", pid)
		}
	}
}

// TestConfigValidation covers Config.withDefaults rejections.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Error("New with 0 workers: want error")
	}
	if _, err := New(Config{Workers: 1, Chaos: []string{"map", "map"}}); err == nil {
		t.Error("New with more chaos specs than workers: want error")
	}
	if _, err := New(Config{Workers: 1, BinPath: "/nonexistent/worker-binary"}); err == nil {
		t.Error("New with bogus BinPath: want error")
	}
}

// ---------------------------------------------------------------------------
// Differential property test: the determinism contract of DESIGN.md §12.
// Across seeds, dimensions and algorithms, the process backend's skyline is
// byte-identical to the in-process engine's.

func TestDifferentialProcessVsInprocess(t *testing.T) {
	const workers = 3
	seeds := 30
	if testing.Short() {
		seeds = 6
	}

	pe := newProcExec(t, Config{Workers: workers})
	cl, err := cluster.Uniform(workers, 1)
	if err != nil {
		t.Fatalf("cluster.Uniform: %v", err)
	}
	eng := mapreduce.NewEngine(cl)

	type algo struct {
		name string
		run  func(exec mapreduce.Executor, data tuple.List) (tuple.List, error)
	}
	coreCfg := func(exec mapreduce.Executor) core.Config {
		// Pin task counts to the worker count so both backends use the same
		// task layout (the in-process cluster is workers×1, so its defaults
		// agree — pinning makes the equivalence explicit).
		return core.Config{Engine: exec, NumMappers: workers, NumReducers: workers}
	}
	algos := []algo{
		{"MR-GPSRS", func(exec mapreduce.Executor, data tuple.List) (tuple.List, error) {
			sky, _, err := core.GPSRS(coreCfg(exec), data)
			return sky, err
		}},
		{"MR-GPMRS", func(exec mapreduce.Executor, data tuple.List) (tuple.List, error) {
			sky, _, err := core.GPMRS(coreCfg(exec), data)
			return sky, err
		}},
		{"MR-BNL", func(exec mapreduce.Executor, data tuple.List) (tuple.List, error) {
			sky, _, err := baseline.MRBNL(baseline.Config{Engine: exec, NumMappers: workers}, data)
			return sky, err
		}},
	}
	dists := []datagen.Distribution{datagen.AntiCorrelated, datagen.Independent, datagen.Correlated}

	for seed := 1; seed <= seeds; seed++ {
		data := datagen.Generate(dists[seed%len(dists)], 250+17*seed, 2+seed%3, int64(seed))
		for _, a := range algos {
			skyIn, err := a.run(eng, data)
			if err != nil {
				t.Fatalf("seed %d %s in-process: %v", seed, a.name, err)
			}
			skyProc, err := a.run(pe, data)
			if err != nil {
				t.Fatalf("seed %d %s process: %v", seed, a.name, err)
			}
			if !bytes.Equal(tuple.EncodeList(skyIn), tuple.EncodeList(skyProc)) {
				t.Errorf("seed %d %s: backends diverge: in-process %d tuples, process %d tuples",
					seed, a.name, len(skyIn), len(skyProc))
			}
		}
	}
}

// TestWallTracerPlumbed checks the executor surfaces its configured tracer
// and the master feeds rpc telemetry into it.
func TestWallTracerPlumbed(t *testing.T) {
	tr := obs.New()
	pe := newProcExec(t, Config{Workers: 2, Trace: tr})
	if pe.WallTracer() != tr {
		t.Fatal("WallTracer did not return the configured tracer")
	}
	if pe.TotalSlots() != 2 || pe.NumNodes() != 2 {
		t.Fatalf("TotalSlots/NumNodes = %d/%d, want 2/2", pe.TotalSlots(), pe.NumNodes())
	}
	if _, err := pe.RunContext(context.Background(), sumJob("traced", 5, 80, 3, 2, 0, 0)); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	snap := tr.Metrics().Snapshot()
	leases, wire := int64(0), int64(-1)
	for _, c := range snap.Counters {
		switch c.Name {
		case "rpc.lease.granted":
			leases = c.Value
		case "rpc.shuffle.wire.bytes":
			wire = c.Value
		}
	}
	if leases != 5 {
		t.Errorf("rpc.lease.granted = %d, want 5 (3 maps + 2 reduces)", leases)
	}
	if wire < 0 {
		t.Error("rpc.shuffle.wire.bytes counter missing")
	}
}
