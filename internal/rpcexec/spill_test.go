package rpcexec

import (
	"context"
	"testing"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
)

// TestSpilledProcessMatchesExpected: workers running under a tiny spill
// budget (every segment cut into many runs, fan-in 2 forcing multi-round
// merges) must produce exactly the output of the in-memory wire across a
// spread of task layouts.
func TestSpilledProcessMatchesExpected(t *testing.T) {
	shapes := []struct{ keys, records, mappers, reducers int }{
		{6, 90, 4, 3},
		{1, 40, 3, 1},
		{11, 200, 5, 4},
		{4, 1, 1, 3}, // mostly-empty reduces
	}
	pe := newProcExec(t, Config{
		Workers:     2,
		SpillBudget: 256,
		SpillDir:    t.TempDir(),
		SpillFanIn:  2,
	})
	for _, s := range shapes {
		res, err := pe.RunContext(context.Background(),
			sumJob("spill", s.keys, s.records, s.mappers, s.reducers, 0, 0))
		if err != nil {
			t.Fatalf("shape %+v: %v", s, err)
		}
		if want := sumJobExpected(s.keys, s.records, s.reducers); !recordsEqual(res.Output, want) {
			t.Errorf("shape %+v output mismatch:\n got %s\nwant %s",
				s, formatRecords(res.Output), formatRecords(want))
		}
		checkAttemptInvariants(t, res)
	}
}

// TestChaosCorruptRefetch: one worker serves a single shuffle Fetch with a
// flipped byte (its stored data stays pristine). The fetcher's checksum
// must catch the damage, refetch, and complete the job with the exact
// fault-free output while surfacing the corruption in the job counters.
// Run on both shuffle paths: in-memory segments and spilled run files.
func TestChaosCorruptRefetch(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"memory", func(t *testing.T) Config { return Config{Workers: 2} }},
		{"spilled", func(t *testing.T) Config {
			return Config{Workers: 2, SpillBudget: 256, SpillDir: t.TempDir(), SpillFanIn: 2}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.New()
			cfg := tc.cfg(t)
			cfg.Chaos = []string{ChaosCorrupt}
			cfg.Trace = tr
			pe := newProcExec(t, fastTimings(cfg))

			// The 10ms task sleeps spread maps across both workers so
			// reduces depend on remote segments — a Fetch must happen for
			// the corruptor to poison.
			const keys, records, mappers, reducers = 6, 90, 4, 3
			res, err := pe.RunContext(context.Background(),
				sumJob("corrupt", keys, records, mappers, reducers, 10, 10))
			if err != nil {
				t.Fatalf("corrupted fetch did not recover: %v", err)
			}
			if want := sumJobExpected(keys, records, reducers); !recordsEqual(res.Output, want) {
				t.Fatalf("output mismatch after refetch:\n got %s\nwant %s",
					formatRecords(res.Output), formatRecords(want))
			}
			if got := res.Counters.Get(mapreduce.CounterShuffleCorruptions); got < 1 {
				t.Errorf("CounterShuffleCorruptions = %d, want >= 1", got)
			}
			// Corruption is repaired by refetch, not by killing the worker.
			for _, ctr := range tr.Metrics().Snapshot().Counters {
				if ctr.Name == "rpc.worker.deaths" && ctr.Value > 0 {
					t.Errorf("rpc.worker.deaths = %d, want 0 (corrupt serve must not kill anyone)", ctr.Value)
				}
			}
			checkAttemptInvariants(t, res)
		})
	}
}

// TestSpillConfigValidation: the executor rejects unusable spill settings
// at construction.
func TestSpillConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 1, SpillBudget: -1},
		{Workers: 1, SpillBudget: 1024},                                             // budget without dir
		{Workers: 1, SpillBudget: 1024, SpillDir: "/no/such/dir/exists/here"},       // dir missing
		{Workers: 1, SpillBudget: 1024, SpillDir: string([]byte{0}), SpillFanIn: 2}, // unusable dir
		{Workers: 1, SpillBudget: 1024, SpillDir: ".", SpillFanIn: 1},               // fan-in 1
		{Workers: 1, SpillBudget: 1024, SpillDir: ".", SpillFanIn: -3},              // negative fan-in
	}
	for i, cfg := range bad {
		if pe, err := New(cfg); err == nil {
			pe.Close()
			t.Errorf("case %d: New(%+v) accepted an invalid spill config", i, cfg)
		}
	}
}

// TestSpillDirWithoutBudgetRejected: the shared budget/dir rule
// (spill.ValidateSetup) applies to the process executor too — a spill
// directory with a zero budget is a configuration error, exactly as
// mrskyline.Options and ServiceConfig treat it, instead of the silently
// ignored setting it used to be here.
func TestSpillDirWithoutBudgetRejected(t *testing.T) {
	if pe, err := New(Config{Workers: 1, SpillDir: t.TempDir()}); err == nil {
		pe.Close()
		t.Error("SpillDir with zero SpillBudget accepted")
	}
}
