package rpcexec

import (
	"context"
	"net/rpc"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mrskyline/internal/mapreduce"
)

// Worker coverage strategy: ProcExecutor's real workers live in child
// processes, outside `go test -cover`'s view. These tests run runWorker in
// goroutines against a real master instead — the worker body cannot tell
// the difference (everything crosses loopback TCP either way), and the
// coverage profile sees every line it executes.

// startInprocWorkers runs n workers as goroutines and returns a cleanup
// that drains them after the master begins shutdown.
func startInprocWorkers(t *testing.T, m *master, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runWorker(m.addr)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.registeredWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatal("in-process workers did not register")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Cleanup(func() {
		m.beginShutdown()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("in-process workers did not exit after shutdown")
			return
		}
		m.stop()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d exited with error: %v", i, err)
			}
		}
	})
}

func inprocConfig(workers int) Config {
	cfg, err := (&Config{
		Workers:           workers,
		LeaseTimeout:      20 * time.Second,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		LeasePoll:         2 * time.Millisecond,
	}).withDefaults()
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestInprocessWorkersEndToEnd drives the full worker body — register,
// heartbeat, lease loop, map execution, local and peer shuffle fetches,
// reduce execution, job-drop eviction, clean exit — in-process.
func TestInprocessWorkersEndToEnd(t *testing.T) {
	cfg := inprocConfig(2)
	m, err := newMaster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	startInprocWorkers(t, m, 2)
	pe := &ProcExecutor{cfg: cfg, m: m}

	const keys, records, mappers, reducers = 6, 90, 4, 3
	// The 10ms task sleeps spread maps over both workers, so reduces mix
	// local-store reads with peer Worker.Fetch calls.
	res, err := pe.RunContext(context.Background(), sumJob("inproc", keys, records, mappers, reducers, 10, 10))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if want := sumJobExpected(keys, records, reducers); !recordsEqual(res.Output, want) {
		t.Fatalf("output mismatch:\n got %s\nwant %s", formatRecords(res.Output), formatRecords(want))
	}
	checkAttemptInvariants(t, res)

	// A second job covers the cached-peer-connection path and the job-info
	// cache across jobs; the pause in between lets the finished first job's
	// drop notice ride a heartbeat and exercise segment eviction.
	time.Sleep(3 * cfg.HeartbeatInterval)
	res, err = pe.RunContext(context.Background(), sumJob("inproc-2", 4, 64, 3, 2, 5, 5))
	if err != nil {
		t.Fatalf("second RunContext: %v", err)
	}
	if want := sumJobExpected(4, 64, 2); !recordsEqual(res.Output, want) {
		t.Fatalf("second output mismatch:\n got %s\nwant %s", formatRecords(res.Output), formatRecords(want))
	}
}

// TestInprocessWorkerTrace covers the worker-side tracer: spans recorded
// around tasks and the Chrome trace written on clean exit.
func TestInprocessWorkerTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "worker.trace.json")
	t.Setenv(workerEnvTrace, path)

	cfg := inprocConfig(1)
	m, err := newMaster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan error, 1)
	go func() { started <- runWorker(m.addr) }()
	deadline := time.Now().Add(10 * time.Second)
	for m.registeredWorkers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker did not register")
		}
		time.Sleep(2 * time.Millisecond)
	}
	pe := &ProcExecutor{cfg: cfg, m: m}
	if _, err := pe.RunContext(context.Background(), sumJob("traced-worker", 3, 30, 2, 2, 0, 0)); err != nil {
		t.Fatalf("RunContext: %v", err)
	}

	m.beginShutdown()
	select {
	case err := <-started:
		if err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit")
	}
	m.stop()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("worker trace not written: %v", err)
	}
	for _, want := range []string{"map:", "reduce:"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("worker trace has no %q span", want)
		}
	}
}

// TestFetchSegmentLocalErrors covers the local-store failure paths of
// fetchSegment directly.
func TestFetchSegmentLocalErrors(t *testing.T) {
	w := &worker{id: 3, store: make(map[storeKey][][]byte), peers: map[string]*rpc.Client{}, chaos: &chaosSpec{}}
	lease := &LeaseReply{JobID: 9, TaskID: 0}

	// Missing segment.
	_, _, _, err := w.fetchSegment(lease, MapSource{MapTask: 0, WorkerID: 3})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing local segment: err = %v", err)
	}

	// Stored but corrupt (checksum mismatch).
	seg := mapreduce.AppendRecord(nil, []byte("k"), []byte("v"))
	w.store[storeKey{job: 9, task: 0}] = [][]byte{seg}
	_, _, _, err = w.fetchSegment(lease, MapSource{MapTask: 0, WorkerID: 3, Checksum: mapreduce.SegmentChecksum(seg) + 1})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt local segment: err = %v", err)
	}

	// Intact.
	got, wire, refetch, err := w.fetchSegment(lease, MapSource{MapTask: 0, WorkerID: 3, Checksum: mapreduce.SegmentChecksum(seg)})
	if err != nil || wire != 0 || refetch != 0 || string(got) != string(seg) {
		t.Errorf("local fetch = %x, wire %d, refetch %d, err %v", got, wire, refetch, err)
	}
}

// TestCallPeerDialError covers the redial path's terminal failure.
func TestCallPeerDialError(t *testing.T) {
	w := &worker{peers: map[string]*rpc.Client{}}
	err := w.callPeer("127.0.0.1:1", &FetchArgs{}, &FetchReply{})
	if err == nil {
		t.Error("callPeer to closed port: want error")
	}
}

// TestWorkerFetchServiceMissing covers Fetch's error reply for segments the
// worker does not hold.
func TestWorkerFetchServiceMissing(t *testing.T) {
	w := &worker{id: 1, store: make(map[storeKey][][]byte), chaos: &chaosSpec{}}
	svc := &workerFetchService{w: w}
	var reply FetchReply
	if err := svc.Fetch(&FetchArgs{JobID: 1, MapTask: 0, Reduce: 0}, &reply); err == nil {
		t.Error("fetch of unknown segment: want error")
	}
	w.store[storeKey{job: 1, task: 0}] = [][]byte{[]byte("seg")}
	if err := svc.Fetch(&FetchArgs{JobID: 1, MapTask: 0, Reduce: 5}, &reply); err == nil {
		t.Error("fetch with out-of-range reduce: want error")
	}
	if err := svc.Fetch(&FetchArgs{JobID: 1, MapTask: 0, Reduce: 0}, &reply); err != nil || string(reply.Seg) != "seg" {
		t.Errorf("fetch = %q, %v", reply.Seg, err)
	}
}

// TestParseChaos covers the chaos-spec grammar.
func TestParseChaos(t *testing.T) {
	for _, tc := range []struct {
		in    string
		event string
		nth   int32
		ok    bool
	}{
		{"", "", 0, true},
		{"map", ChaosMap, 1, true},
		{"reduce:3", ChaosReduce, 3, true},
		{"fetch", ChaosFetch, 1, true},
		{"serve:2", ChaosServe, 2, true},
		{"explode", "", 0, false},
		{"map:0", "", 0, false},
		{"map:x", "", 0, false},
	} {
		spec, err := parseChaos(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseChaos(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && tc.in != "" && (spec.event != tc.event || spec.nth != tc.nth) {
			t.Errorf("parseChaos(%q) = {%s %d}, want {%s %d}", tc.in, spec.event, spec.nth, tc.event, tc.nth)
		}
	}

	// Non-matching events never arm the kill; the zero spec is inert.
	spec, _ := parseChaos("map:100")
	spec.maybeKill(ChaosReduce)
	spec.maybeKill(ChaosMap) // hit 1 of 100: still alive
	if spec.hits.Load() != 1 {
		t.Errorf("hits = %d, want 1 (only matching events count)", spec.hits.Load())
	}
	(&chaosSpec{}).maybeKill(ChaosMap)
}
