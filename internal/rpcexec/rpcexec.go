package rpcexec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/spill"
)

// Config shapes a ProcExecutor.
type Config struct {
	// Workers is the number of worker processes to spawn (required, >= 1).
	Workers int
	// BinPath is the worker binary; defaults to os.Args[0] — the current
	// binary re-exec'd, which is required for the kind registry to line up.
	BinPath string
	// LeaseTimeout bounds one task attempt before the master reclaims the
	// lease (default 5s).
	LeaseTimeout time.Duration
	// HeartbeatInterval is the worker beacon period (default 50ms);
	// HeartbeatTimeout is how stale a worker's last contact may go before
	// the master declares it dead (default 1s).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// LeasePoll is the idle worker's lease polling period (default 2ms).
	LeasePoll time.Duration
	// Trace, when non-nil, receives the master's spans and rpc.* metrics.
	Trace *obs.Tracer
	// Chaos[i], when set, tells worker i to SIGKILL itself at a chaos
	// event ("map", "reduce", "fetch", "serve", optionally ":n"). Tests
	// only.
	Chaos []string
	// TraceDir, when set, makes each worker write its own obs Chrome trace
	// to TraceDir/worker-<i>.trace.json on clean exit.
	TraceDir string
	// SpillBudget and SpillDir, when SpillBudget > 0, switch workers to
	// the external-memory shuffle: map-output segments are stored as files
	// under a per-worker subdirectory of SpillDir (served to peers from
	// disk) and reduce attempts merge spilled runs under the budget
	// instead of materializing their whole input. SpillFanIn caps the
	// merge fan-in (0 uses the spill package default).
	SpillBudget int64
	SpillDir    string
	SpillFanIn  int
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.Workers < 1 {
		return cfg, errors.New("rpcexec: Config.Workers must be >= 1")
	}
	if cfg.BinPath == "" {
		cfg.BinPath = os.Args[0]
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 5 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = time.Second
	}
	if cfg.LeasePoll <= 0 {
		cfg.LeasePoll = 2 * time.Millisecond
	}
	if len(cfg.Chaos) > cfg.Workers {
		return cfg, errors.New("rpcexec: more chaos specs than workers")
	}
	// The budget/dir pairing rule is shared with every other front end
	// (spill.ValidateSetup); only the stricter bits are rpcexec's own — an
	// explicit SpillDir is required because workers run in re-exec'd
	// processes with their own temp dirs.
	if err := spill.ValidateSetup(cfg.SpillBudget, cfg.SpillDir); err != nil {
		return cfg, fmt.Errorf("rpcexec: %w", err)
	}
	if cfg.SpillBudget > 0 {
		if cfg.SpillDir == "" {
			return cfg, errors.New("rpcexec: Config.SpillDir is required when SpillBudget is set")
		}
		if cfg.SpillFanIn < 0 || cfg.SpillFanIn == 1 {
			return cfg, fmt.Errorf("rpcexec: Config.SpillFanIn must be >= 2 (or 0 for the default), got %d", cfg.SpillFanIn)
		}
	}
	return cfg, nil
}

// ProcExecutor is the multi-process mapreduce.Executor: worker OS
// processes driven by an in-driver master over net/rpc. Workers are
// spawned once at New and serve every job until Close; dead workers are
// not respawned (capacity degrades, correctness does not — the lease
// machinery re-executes their tasks elsewhere).
type ProcExecutor struct {
	cfg    Config
	m      *master
	procs  []*exec.Cmd
	waits  []chan error
	closed bool
}

var _ mapreduce.Executor = (*ProcExecutor)(nil)

// New starts the master and spawns cfg.Workers worker processes, waiting
// until all have registered.
func New(cfg Config) (*ProcExecutor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m, err := newMaster(cfg)
	if err != nil {
		return nil, err
	}
	p := &ProcExecutor{cfg: cfg, m: m}
	for i := 0; i < cfg.Workers; i++ {
		if err := p.spawn(i); err != nil {
			p.Close()
			return nil, err
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for m.registeredWorkers() < cfg.Workers {
		if time.Now().After(deadline) {
			p.Close()
			return nil, fmt.Errorf("rpcexec: only %d/%d workers registered in time", m.registeredWorkers(), cfg.Workers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p, nil
}

func (p *ProcExecutor) spawn(i int) error {
	cmd := exec.Command(p.cfg.BinPath)
	cmd.Env = append(os.Environ(),
		workerEnvAddr+"="+p.m.addr,
		workerEnvIndex+"="+strconv.Itoa(i),
	)
	if i < len(p.cfg.Chaos) && p.cfg.Chaos[i] != "" {
		cmd.Env = append(cmd.Env, workerEnvChaos+"="+p.cfg.Chaos[i])
	}
	if p.cfg.TraceDir != "" {
		path := filepath.Join(p.cfg.TraceDir, fmt.Sprintf("worker-%d.trace.json", i))
		cmd.Env = append(cmd.Env, workerEnvTrace+"="+path)
	}
	if p.cfg.SpillBudget > 0 {
		cmd.Env = append(cmd.Env,
			workerEnvSpillBudget+"="+strconv.FormatInt(p.cfg.SpillBudget, 10),
			workerEnvSpillDir+"="+p.cfg.SpillDir,
			workerEnvSpillFanIn+"="+strconv.Itoa(p.cfg.SpillFanIn),
		)
	}
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = workerSysProcAttr() // die with the driver (linux)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("rpcexec: spawn worker %d: %w", i, err)
	}
	// Reap immediately on exit so chaos-killed workers never linger as
	// zombies — the shutdown tests assert on the live process table.
	wait := make(chan error, 1)
	go func() { wait <- cmd.Wait() }()
	p.procs = append(p.procs, cmd)
	p.waits = append(p.waits, wait)
	return nil
}

// TotalSlots implements mapreduce.Executor: each worker runs one task at a
// time.
func (p *ProcExecutor) TotalSlots() int { return p.cfg.Workers }

// NumNodes implements mapreduce.Executor: every worker process is its own
// failure domain.
func (p *ProcExecutor) NumNodes() int { return p.cfg.Workers }

// WallTracer implements mapreduce.Executor.
func (p *ProcExecutor) WallTracer() *obs.Tracer { return p.cfg.Trace }

// WorkerPIDs returns the spawned workers' process ids, in spawn order;
// tests use it for process-table assertions.
func (p *ProcExecutor) WorkerPIDs() []int {
	pids := make([]int, len(p.procs))
	for i, c := range p.procs {
		pids[i] = c.Process.Pid
	}
	return pids
}

// RunContext implements mapreduce.Executor. The job must carry a
// registered Kind (see mapreduce.RegisterKind); its closures never cross
// the process boundary. Cancelling ctx abandons the job: in-flight worker
// attempts finish and are dropped by the master's fencing, and the worker
// processes live on to serve the next job (Close tears them down).
func (p *ProcExecutor) RunContext(ctx context.Context, job *mapreduce.Job) (*mapreduce.Result, error) {
	if job.Kind == "" {
		return nil, fmt.Errorf("rpcexec: job %q has no Kind: the process executor needs a registered job kind to reconstruct its functions worker-side", job.Name)
	}
	if !mapreduce.KindRegistered(job.Kind) {
		return nil, fmt.Errorf("rpcexec: job %q: kind %q is not registered in this binary", job.Name, job.Kind)
	}
	if job.NewMapper == nil || job.NewReducer == nil {
		return nil, fmt.Errorf("rpcexec: job %q is missing a mapper or reducer", job.Name)
	}
	splits, err := mapreduce.SplitPayloads(job, p.TotalSlots())
	if err != nil {
		return nil, err
	}
	numReducers := job.NumReducers
	if numReducers < 1 {
		numReducers = 1
	}
	maxAttempts := job.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 3
	}
	j := p.m.addJob(job, splits, numReducers, maxAttempts)
	select {
	case <-ctx.Done():
		p.m.cancelJob(j, ctx.Err())
		<-j.done
		p.m.dropJob(j)
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, ctx.Err())
	case <-j.done:
	}
	defer p.m.dropJob(j)
	return p.assemble(j, job.Name)
}

// assemble turns a finished jobState into a Result, mirroring the
// in-process engine's contract: output ordered by reduce task then
// emission order, counters from accepted attempts only, full attempt
// History — and on error a partial Result carrying History and counters.
func (p *ProcExecutor) assemble(j *jobState, name string) (*mapreduce.Result, error) {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	res := &mapreduce.Result{Counters: j.counters, History: j.history}
	if !j.mapEnd.IsZero() {
		res.MapTime = j.mapEnd.Sub(j.start)
		res.ReduceTime = time.Since(j.mapEnd)
	}
	if j.err != nil {
		return res, fmt.Errorf("mapreduce: job %q: %w", name, j.err)
	}
	for r := range j.reduces {
		recs, err := mapreduce.DecodeRecords(j.reduces[r].output)
		if err != nil {
			return res, fmt.Errorf("mapreduce: job %q: decoding reduce %d output: %w", name, r, err)
		}
		res.Output = append(res.Output, recs...)
	}
	return res, nil
}

// Close shuts the executor down: workers are asked to exit via their next
// lease/heartbeat, given a grace period, then SIGKILLed; the master stops
// after all worker processes are reaped. Safe to call twice.
func (p *ProcExecutor) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.m.beginShutdown()
	grace := time.After(2 * time.Second)
	for i, wait := range p.waits {
		select {
		case <-wait:
		case <-grace:
			p.procs[i].Process.Kill()
			<-wait
			// Re-arm an already-fired grace channel for the remaining
			// workers: they get killed immediately too.
			expired := make(chan time.Time)
			close(expired)
			grace = expired
		}
	}
	p.m.stop()
	return nil
}
