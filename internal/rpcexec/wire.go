// Package rpcexec is the multi-process execution backend: a master inside
// the driver process serves net/rpc on loopback, and workers are real OS
// processes (the same binary re-exec'd through WorkerMain) that register,
// heartbeat, pull task leases, execute map/reduce attempts via the
// mapreduce kind registry, and serve their map output to peer workers for
// the shuffle. The in-process engine stays the default backend; this one
// makes the PR 2 recovery semantics — task lease with timeout,
// re-execution on worker death, checksummed shuffle fetch with refetch —
// real across process boundaries. See DESIGN.md §12 for the wire protocol
// and the determinism argument.
package rpcexec

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"mrskyline/internal/mapreduce"
)

// Lease kinds returned by Master.Lease.
const (
	// LeaseNone: no runnable task right now; poll again.
	LeaseNone = "none"
	// LeaseMap carries a map task: Split holds the framed input records.
	LeaseMap = "map"
	// LeaseReduce carries a reduce task: Sources lists where to fetch each
	// map task's output segment for this reducer.
	LeaseReduce = "reduce"
	// LeaseExit tells the worker to shut down cleanly.
	LeaseExit = "exit"
)

// RegisterArgs announces a freshly started worker to the master.
type RegisterArgs struct {
	// Addr is the worker's own RPC listener (peers fetch shuffle segments
	// from it).
	Addr string
	// PID is the worker's OS process id; tests use it for process-table
	// assertions and Close uses it as the kill target of last resort.
	PID int
	// Index is the worker's spawn index (worker-<Index> in task records).
	Index int
}

// RegisterReply assigns the worker its id and its polling cadence, so all
// timing configuration lives in one place (the executor config).
type RegisterReply struct {
	WorkerID         int
	HeartbeatEveryNs int64
	LeasePollEveryNs int64
}

// HeartbeatArgs is the periodic liveness beacon. PrevRTTNs is the
// worker-measured round-trip time of its previous heartbeat call (0 on the
// first), which the master feeds into the rpc.heartbeat.rtt.ns histogram.
type HeartbeatArgs struct {
	WorkerID  int
	PrevRTTNs int64
}

// HeartbeatReply piggybacks control signals on the heartbeat: Exit asks
// the worker to shut down, DropJobs lists jobs whose shuffle segments the
// worker may evict from its output store.
type HeartbeatReply struct {
	Exit     bool
	DropJobs []int64
}

// LeaseArgs requests a task lease.
type LeaseArgs struct {
	WorkerID int
}

// MapSource locates one map task's output segment for a reducer: which
// worker holds it, the address to fetch it from, and the checksum and size
// the fetched bytes must match. Sources with zero bytes are omitted from
// leases entirely.
type MapSource struct {
	MapTask  int
	WorkerID int
	Addr     string
	Checksum uint64
	Bytes    int64
}

// LeaseReply is one granted task (or none/exit).
type LeaseReply struct {
	Kind    string
	JobID   int64
	TaskID  int
	Attempt int
	// Split is the map task's framed input records (LeaseMap only).
	Split []byte
	// Sources lists the reduce task's input segments in ascending MapTask
	// order (LeaseReduce only).
	Sources []MapSource
}

// JobInfoArgs fetches a job's static description, cached worker-side so a
// job's kind, spec and distributed cache cross the wire once per worker
// rather than once per lease.
type JobInfoArgs struct {
	JobID int64
}

// JobInfoReply is the static half of a job.
type JobInfoReply struct {
	Name        string
	Kind        string
	Spec        []byte
	Cache       mapreduce.Cache
	NumMappers  int
	NumReducers int
}

// MapDoneArgs reports one map attempt. On success the output segments stay
// in the worker's memory — only their per-reducer checksums and sizes
// travel — and the master records the worker as the output's location. On
// failure Err carries the task error.
type MapDoneArgs struct {
	WorkerID int
	JobID    int64
	TaskID   int
	Attempt  int
	Err      string
	// Checksums and Bytes describe the per-reducer segments (index =
	// reducer); empty segments have Bytes 0.
	Checksums []uint64
	Bytes     []int64
	Counters  mapreduce.CounterDump
}

// ReduceDoneArgs reports one reduce attempt with its framed output.
type ReduceDoneArgs struct {
	WorkerID int
	JobID    int64
	TaskID   int
	Attempt  int
	Err      string
	// FetchFailedWorker is -1 normally; when >= 0 the attempt aborted
	// because that peer could not serve a segment (connection refused or
	// checksum mismatch after refetch) — evidence of worker death the
	// master acts on immediately instead of waiting out the heartbeat
	// timeout, and grounds for recording the attempt as killed rather than
	// failed.
	FetchFailedWorker int
	// Output is the reduce task's framed output records.
	Output   []byte
	Counters mapreduce.CounterDump
	// PayloadBytes is the key+value volume of the attempt's shuffle input
	// (the in-process engine's CounterShuffleBytes quantity); WireBytes is
	// the subset that actually crossed the network (peer fetches);
	// Refetches counts checksum-mismatch refetches.
	PayloadBytes int64
	WireBytes    int64
	Refetches    int64
}

// Empty is the reply type of fire-and-forget RPCs.
type Empty struct{}

// FetchArgs asks a worker for one of its map output segments.
type FetchArgs struct {
	JobID   int64
	MapTask int
	Reduce  int
}

// FetchReply carries the framed segment (nil when empty).
type FetchReply struct {
	Seg []byte
}

// ---------------------------------------------------------------------------
// Chaos specs

// Chaos events a worker can be told to die at.
const (
	// ChaosMap: SIGKILL self at the start of a map task body.
	ChaosMap = "map"
	// ChaosReduce: SIGKILL self after fetching a reduce task's input, before
	// running the reducer.
	ChaosReduce = "reduce"
	// ChaosFetch: SIGKILL self just before issuing a peer shuffle fetch (the
	// fetching side dies mid-shuffle).
	ChaosFetch = "fetch"
	// ChaosServe: SIGKILL self on receiving a peer's Fetch RPC (the serving
	// side dies mid-shuffle, taking its map outputs with it).
	ChaosServe = "serve"
	// ChaosCorrupt: do not die — serve one peer Fetch with a single byte
	// flipped in the reply. The fetcher's checksum verification must catch
	// it and refetch; the stored segment itself stays pristine.
	ChaosCorrupt = "corrupt"
)

// chaosSpec is a parsed worker chaos directive: die by SIGKILL on the
// nth occurrence of event. The zero value never fires. hits is atomic
// because the serve hook fires on RPC-serving goroutines while the task
// hooks fire on the lease loop.
type chaosSpec struct {
	event string
	nth   int32
	hits  atomic.Int32
}

// parseChaos parses "event" or "event:n" (n >= 1, default 1).
func parseChaos(s string) (*chaosSpec, error) {
	spec := &chaosSpec{}
	if s == "" {
		return spec, nil
	}
	event, nthStr, hasNth := strings.Cut(s, ":")
	spec.event, spec.nth = event, 1
	if hasNth {
		n, err := strconv.Atoi(nthStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("rpcexec: bad chaos count in %q", s)
		}
		spec.nth = int32(n)
	}
	switch event {
	case ChaosMap, ChaosReduce, ChaosFetch, ChaosServe, ChaosCorrupt:
		return spec, nil
	}
	return nil, fmt.Errorf("rpcexec: unknown chaos event %q", event)
}

// maybeKill SIGKILLs the process if this occurrence of event is the
// configured one. A SIGKILL cannot be caught or cleaned up after — exactly
// the failure mode the lease/heartbeat machinery must absorb.
func (c *chaosSpec) maybeKill(event string) {
	if c.event != event {
		return
	}
	if c.hits.Add(1) == c.nth {
		selfKill()
	}
}

// takeCorrupt reports whether this serve should corrupt its reply: true
// exactly once, on the nth ChaosCorrupt occurrence.
func (c *chaosSpec) takeCorrupt() bool {
	if c.event != ChaosCorrupt {
		return false
	}
	return c.hits.Add(1) == c.nth
}

// workerNode names worker i the way task records and trace tracks see it.
func workerNode(i int) string { return "worker-" + strconv.Itoa(i) }
