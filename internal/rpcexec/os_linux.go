package rpcexec

import "syscall"

// workerSysProcAttr makes workers die with the driver: PDEATHSIG delivers
// SIGKILL to a worker the moment its parent exits, so a crashed or killed
// driver can never strand worker processes.
func workerSysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}

// selfKill is the chaos hook's exit: raw SIGKILL to self, uncatchable and
// with no deferred cleanup — indistinguishable from the OOM killer.
func selfKill() {
	syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}
