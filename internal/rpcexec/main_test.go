package rpcexec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"mrskyline/internal/mapreduce"
)

// TestMain is the worker re-exec entry point: ProcExecutor spawns the test
// binary itself (BinPath defaults to os.Args[0]), and WorkerMain takes the
// process over when the master address environment variable is set.
func TestMain(m *testing.M) {
	WorkerMain()
	os.Exit(m.Run())
}

// ---------------------------------------------------------------------------
// A kind-registered test job: per-key integer sums, with optional task
// sleeps so tests can force task attempts to spread across workers.

const testSumKind = "rpcexec-test/sum"

type sumSpec struct {
	// MapSleepMs / ReduceSleepMs hold each task attempt open, so a peer
	// worker polling every LeasePoll reliably grabs the next pending task.
	MapSleepMs    int
	ReduceSleepMs int
}

func sumSpecBytes(mapMs, reduceMs int) []byte {
	b, err := json.Marshal(sumSpec{MapSleepMs: mapMs, ReduceSleepMs: reduceMs})
	if err != nil {
		panic(err)
	}
	return b
}

func newSumMapper(s sumSpec) mapreduce.Mapper {
	return mapreduce.MapperFuncs{
		MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, emit mapreduce.Emitter) error {
			emit(rec.Key, rec.Value)
			return nil
		},
		FlushFn: func(_ *mapreduce.TaskContext, _ mapreduce.Emitter) error {
			time.Sleep(time.Duration(s.MapSleepMs) * time.Millisecond)
			return nil
		},
	}
}

func newSumReducer(s sumSpec) mapreduce.Reducer {
	return mapreduce.ReducerFuncs{
		ReduceFn: func(_ *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
			var total uint64
			for _, v := range values {
				n, k := binary.Uvarint(v)
				if k <= 0 {
					return fmt.Errorf("bad sum value %x", v)
				}
				total += n
			}
			emit(key, binary.AppendUvarint(nil, total))
			return nil
		},
		FlushFn: func(_ *mapreduce.TaskContext, _ mapreduce.Emitter) error {
			time.Sleep(time.Duration(s.ReduceSleepMs) * time.Millisecond)
			return nil
		},
	}
}

func init() {
	mapreduce.RegisterKind(testSumKind, func(spec []byte) (*mapreduce.JobFuncs, error) {
		var s sumSpec
		if err := json.Unmarshal(spec, &s); err != nil {
			return nil, err
		}
		return &mapreduce.JobFuncs{
			NewMapper:  func() mapreduce.Mapper { return newSumMapper(s) },
			NewReducer: func() mapreduce.Reducer { return newSumReducer(s) },
		}, nil
	})
}

// sumJob builds a runnable sum job: records records round-robined over keys
// k0..k<keys-1> with value i, split into mappers map tasks.
func sumJob(name string, keys, records, mappers, reducers, mapSleepMs, reduceSleepMs int) *mapreduce.Job {
	recs := make([]mapreduce.Record, records)
	for i := range recs {
		recs[i] = mapreduce.Record{
			Key:   []byte(fmt.Sprintf("k%d", i%keys)),
			Value: binary.AppendUvarint(nil, uint64(i)),
		}
	}
	spec := sumSpecBytes(mapSleepMs, reduceSleepMs)
	funcs, err := mapreduce.BuildKind(testSumKind, spec)
	if err != nil {
		panic(err)
	}
	return &mapreduce.Job{
		Name:        name,
		Input:       mapreduce.MemoryInput{Records: recs},
		NumMappers:  mappers,
		NumReducers: reducers,
		NewMapper:   funcs.NewMapper,
		NewReducer:  funcs.NewReducer,
		Kind:        testSumKind,
		Spec:        spec,
	}
}

// sumJobExpected computes the sum job's exact expected output: reduce tasks
// in order, keys sorted within each task, each key's round-robin total.
func sumJobExpected(keys, records, reducers int) []mapreduce.Record {
	totals := make(map[string]uint64)
	for i := 0; i < records; i++ {
		totals[fmt.Sprintf("k%d", i%keys)] += uint64(i)
	}
	var out []mapreduce.Record
	for r := 0; r < reducers; r++ {
		var ks []string
		for k := range totals {
			if mapreduce.HashPartition([]byte(k), reducers) == r {
				ks = append(ks, k)
			}
		}
		sortStrings(ks)
		for _, k := range ks {
			out = append(out, mapreduce.Record{
				Key:   []byte(k),
				Value: binary.AppendUvarint(nil, totals[k]),
			})
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func recordsEqual(a, b []mapreduce.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i].Key) != string(b[i].Key) || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

func formatRecords(recs []mapreduce.Record) string {
	s := ""
	for _, r := range recs {
		n, _ := binary.Uvarint(r.Value)
		s += fmt.Sprintf("%s=%d ", r.Key, n)
	}
	return s
}

// newProcExec starts a process executor torn down with the test.
func newProcExec(t *testing.T, cfg Config) *ProcExecutor {
	t.Helper()
	pe, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	t.Cleanup(func() { pe.Close() })
	return pe
}

// fastTimings are chaos-test timings: quick heartbeats so worker death is
// detected in well under a second, lease poll tight enough that an idle
// worker grabs pending work while a peer is mid-task.
func fastTimings(cfg Config) Config {
	cfg.HeartbeatInterval = 20 * time.Millisecond
	cfg.HeartbeatTimeout = 300 * time.Millisecond
	cfg.LeasePoll = 2 * time.Millisecond
	cfg.LeaseTimeout = 20 * time.Second
	return cfg
}

// checkAttemptInvariants asserts the attempt-accounting contract of task
// records reported by remote workers:
//
//   - per (phase, task), attempts are dense starting at 1 — every lease
//     grant eventually yields exactly one record on a job that completes;
//   - killed attempts carry Killed and a non-empty Err;
//   - reduce tasks succeed exactly once and the success is the last record;
//   - map tasks succeed at least once (a completed map re-executes when the
//     worker hosting its output dies), and any record after the last
//     success is a kill — a regressed map's re-execution can still be in
//     flight when the job's final reduce lands, so its lease is reclaimed
//     rather than reported;
//   - the process backend never launches speculative attempts;
//   - CounterTaskFailures counts exactly the non-killed failures.
func checkAttemptInvariants(t *testing.T, res *mapreduce.Result) {
	t.Helper()
	type taskKey struct {
		phase mapreduce.Phase
		id    int
	}
	byTask := make(map[taskKey][]mapreduce.TaskRecord)
	failures := int64(0)
	for _, r := range res.History.Records() { // sorted by phase, task, attempt
		if r.Speculative {
			t.Errorf("speculative attempt from process backend: %+v", r)
		}
		if r.Killed && r.Err == "" {
			t.Errorf("killed attempt without kill reason: %+v", r)
		}
		if r.Err != "" && !r.Killed {
			failures++
		}
		k := taskKey{r.Phase, r.TaskID}
		byTask[k] = append(byTask[k], r)
	}
	for k, recs := range byTask {
		successes, lastSuccess := 0, -1
		for i, r := range recs {
			if r.Attempt != i+1 {
				t.Errorf("%v task %d: attempt sequence not dense: record %d has attempt %d",
					k.phase, k.id, i, r.Attempt)
			}
			if r.Err == "" && !r.Killed {
				successes++
				lastSuccess = i
			}
		}
		if successes < 1 {
			t.Errorf("%v task %d: no successful attempt", k.phase, k.id)
			continue
		}
		for _, r := range recs[lastSuccess+1:] {
			if !r.Killed {
				t.Errorf("%v task %d: non-killed record after final success: %+v", k.phase, k.id, r)
			}
		}
		if k.phase == mapreduce.PhaseReduce && (successes != 1 || lastSuccess != len(recs)-1) {
			t.Errorf("reduce task %d: %d successful attempts (last record index %d of %d), want exactly one final success",
				k.id, successes, lastSuccess, len(recs))
		}
	}
	if got := res.Counters.Get(mapreduce.CounterTaskFailures); got != failures {
		t.Errorf("CounterTaskFailures = %d, history has %d non-killed failures", got, failures)
	}
}
