package dfs_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"mrskyline/internal/dfs"
)

func newFS(t testing.TB, blockSize, replication, nodes int) *dfs.FS {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	fs, err := dfs.New(dfs.Config{BlockSize: blockSize, Replication: replication, Nodes: names})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidation(t *testing.T) {
	if _, err := dfs.New(dfs.Config{Nodes: nil}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := dfs.New(dfs.Config{BlockSize: -1, Nodes: []string{"a"}}); err == nil {
		t.Error("negative block size accepted")
	}
	if _, err := dfs.New(dfs.Config{Nodes: []string{"a", "a"}}); err == nil {
		t.Error("duplicate nodes accepted")
	}
	if _, err := dfs.New(dfs.Config{Nodes: []string{""}}); err == nil {
		t.Error("empty node name accepted")
	}
	// Replication above node count is capped, not an error.
	fs, err := dfs.New(dfs.Config{Replication: 10, Nodes: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("f")
	if len(blocks[0].Hosts) != 2 {
		t.Errorf("capped replication placed %d replicas", len(blocks[0].Hosts))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, 16, 2, 4)
	data := []byte("The quick brown fox jumps over the lazy dog, twice over.")
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("ReadFile = %q, want %q", got, data)
	}
	info, err := fs.Stat("f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) {
		t.Errorf("Size = %d, want %d", info.Size, len(data))
	}
	wantBlocks := (len(data) + 15) / 16
	if info.Blocks != wantBlocks {
		t.Errorf("Blocks = %d, want %d", info.Blocks, wantBlocks)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newFS(t, 16, 1, 2)
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty file read = %q, %v", got, err)
	}
	if !fs.Exists("empty") {
		t.Error("empty file does not exist")
	}
}

func TestBlockLayout(t *testing.T) {
	fs := newFS(t, 10, 2, 3)
	data := make([]byte, 35)
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(blocks))
	}
	off := int64(0)
	for i, b := range blocks {
		if b.Index != i || b.Offset != off {
			t.Errorf("block %d: index=%d offset=%d", i, b.Index, b.Offset)
		}
		if len(b.Hosts) != 2 {
			t.Errorf("block %d: %d replicas, want 2", i, len(b.Hosts))
		}
		off += int64(b.Length)
	}
	if off != 35 {
		t.Errorf("total length %d", off)
	}
}

func TestPlacementSpreads(t *testing.T) {
	fs := newFS(t, 4, 1, 4)
	if err := fs.WriteFile("f", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("f")
	used := map[string]int{}
	for _, b := range blocks {
		for _, h := range b.Hosts {
			used[h]++
		}
	}
	if len(used) != 4 {
		t.Errorf("round-robin placement used only %d of 4 nodes: %v", len(used), used)
	}
}

func TestReadAt(t *testing.T) {
	fs := newFS(t, 8, 1, 3)
	data := []byte("0123456789abcdefghijklmnop")
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	// Read across a block boundary.
	buf := make([]byte, 10)
	n, err := fs.ReadAt("f", buf, 5)
	if err != nil || n != 10 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if string(buf) != "56789abcde" {
		t.Errorf("ReadAt content = %q", buf)
	}
	// Short read at the tail returns io.EOF.
	n, err = fs.ReadAt("f", buf, int64(len(data))-3)
	if err != io.EOF || n != 3 {
		t.Errorf("tail ReadAt = %d, %v", n, err)
	}
	// Reading at EOF.
	if _, err := fs.ReadAt("f", buf, int64(len(data))); err != io.EOF {
		t.Errorf("EOF ReadAt err = %v", err)
	}
	// Negative offset.
	if _, err := fs.ReadAt("f", buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := newFS(t, 16, 1, 2)
	for _, name := range []string{"a/1", "a/2", "b/1"} {
		if err := fs.WriteFile(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List("a/"); len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Errorf("List(a/) = %v", got)
	}
	if got := fs.List(""); len(got) != 3 {
		t.Errorf("List() = %v", got)
	}
	if err := fs.Delete("a/1"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a/1") {
		t.Error("deleted file exists")
	}
	if err := fs.Delete("a/1"); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := fs.ReadFile("a/1"); err == nil {
		t.Error("reading deleted file succeeded")
	}
}

func TestOverwrite(t *testing.T) {
	fs := newFS(t, 16, 1, 2)
	fs.WriteFile("f", []byte("old"))
	fs.WriteFile("f", []byte("new content"))
	got, err := fs.ReadFile("f")
	if err != nil || string(got) != "new content" {
		t.Errorf("overwrite read = %q, %v", got, err)
	}
}

func TestCreateWriter(t *testing.T) {
	fs := newFS(t, 8, 1, 2)
	w, err := fs.Create("stream")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(w, "hello ")
	fmt.Fprintf(w, "world")
	if fs.Exists("stream") {
		t.Error("file visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("stream")
	if string(got) != "hello world" {
		t.Errorf("streamed content = %q", got)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	fs := newFS(t, 8, 2, 3)
	data := make([]byte, 40)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}

	// One node down: every block still has a replica (replication 2 over 3
	// nodes), so reads succeed and Blocks reports reduced hosts.
	if err := fs.SetNodeDown("node0", true); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("f"); err != nil {
		t.Errorf("read with one node down failed: %v", err)
	}
	blocks, _ := fs.Blocks("f")
	for _, b := range blocks {
		for _, h := range b.Hosts {
			if h == "node0" {
				t.Error("down node reported as replica host")
			}
		}
	}

	// Two nodes down: some block loses all replicas.
	fs.SetNodeDown("node1", true)
	if _, err := fs.ReadFile("f"); err == nil {
		t.Error("read succeeded with majority of nodes down")
	}

	// Recovery restores readability.
	fs.SetNodeDown("node0", false)
	fs.SetNodeDown("node1", false)
	if _, err := fs.ReadFile("f"); err != nil {
		t.Errorf("read after recovery failed: %v", err)
	}
	if err := fs.SetNodeDown("ghost", true); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := newFS(t, 64, 2, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			name := fmt.Sprintf("file%d", i)
			data := make([]byte, 300)
			rng.Read(data)
			for rep := 0; rep < 50; rep++ {
				if err := fs.WriteFile(name, data); err != nil {
					t.Error(err)
					return
				}
				got, err := fs.ReadFile(name)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent read mismatch: %v", err)
					return
				}
				fs.List("")
			}
		}(i)
	}
	wg.Wait()
}

func TestErrorsOnMissing(t *testing.T) {
	fs := newFS(t, 16, 1, 1)
	if _, err := fs.Stat("nope"); err == nil {
		t.Error("Stat on missing file succeeded")
	}
	if _, err := fs.Blocks("nope"); err == nil {
		t.Error("Blocks on missing file succeeded")
	}
	if _, err := fs.ReadAt("nope", make([]byte, 1), 0); err == nil {
		t.Error("ReadAt on missing file succeeded")
	}
	if err := fs.WriteFile("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := fs.Create(""); err == nil {
		t.Error("Create with empty name accepted")
	}
}

func TestReReplicate(t *testing.T) {
	fs := newFS(t, 8, 2, 4)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}

	// Fail one node, repair, then fail another that originally held
	// replicas: reads must still succeed because repair re-spread them.
	if err := fs.SetNodeDown("node0", true); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReReplicate(); err != nil {
		t.Fatalf("ReReplicate: %v", err)
	}
	blocks, _ := fs.Blocks("f")
	for i, b := range blocks {
		if len(b.Hosts) < 2 {
			t.Fatalf("block %d has %d live replicas after repair", i, len(b.Hosts))
		}
		for _, h := range b.Hosts {
			if h == "node0" {
				t.Fatalf("block %d still lists failed node", i)
			}
		}
	}
	fs.SetNodeDown("node1", true)
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatalf("read after repair + second failure: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content corrupted by re-replication")
	}
}

func TestReReplicateReportsLostBlocks(t *testing.T) {
	fs := newFS(t, 8, 1, 2) // replication 1: a single failure loses blocks
	if err := fs.WriteFile("f", make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	fs.SetNodeDown("node0", true)
	fs.SetNodeDown("node1", true)
	if err := fs.ReReplicate(); err == nil {
		t.Fatal("all replicas lost but ReReplicate reported success")
	}
}

func TestReReplicateCapsAtLiveNodes(t *testing.T) {
	fs := newFS(t, 8, 3, 3)
	fs.WriteFile("f", make([]byte, 8))
	fs.SetNodeDown("node2", true)
	if err := fs.ReReplicate(); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("f")
	if len(blocks[0].Hosts) != 2 {
		t.Errorf("replicas = %d, want 2 (all live nodes)", len(blocks[0].Hosts))
	}
}
