// Package dfs is an in-memory stand-in for the distributed file system a
// MapReduce deployment runs on (HDFS in the paper's Hadoop cluster).
//
// Files are split into fixed-size blocks; each block is replicated on a
// configurable number of simulated nodes. The MapReduce engine asks for a
// file's block layout to derive input splits and schedules map tasks with
// data locality (a mapper prefers a node hosting its split's first block),
// exactly the structure Hadoop provides.
//
// The file system is safe for concurrent use.
package dfs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// DefaultBlockSize is used when Config.BlockSize is zero. It is deliberately
// small compared to HDFS's 64 MB: experiments at laptop scale still get
// multi-block files and therefore meaningful splits.
const DefaultBlockSize = 1 << 20

// Config parametrizes a file system.
type Config struct {
	// BlockSize is the maximum block length in bytes.
	BlockSize int
	// Replication is the number of nodes each block is stored on; it is
	// capped at the number of nodes.
	Replication int
	// Nodes names the storage nodes. Must be non-empty and unique.
	Nodes []string
}

// FS is an in-memory distributed file system.
type FS struct {
	cfg Config

	mu     sync.RWMutex
	files  map[string]*file
	cursor int // round-robin placement cursor
	down   map[string]bool
}

type file struct {
	blocks []*block
	size   int64
}

type block struct {
	data  []byte
	hosts []string
}

// BlockInfo describes one block of a file to the outside world.
type BlockInfo struct {
	// File is the file name.
	File string
	// Index is the block's position within the file.
	Index int
	// Offset is the byte offset of the block's first byte in the file.
	Offset int64
	// Length is the block length in bytes.
	Length int
	// Hosts lists the nodes holding a live replica.
	Hosts []string
}

// FileInfo describes a file.
type FileInfo struct {
	Name   string
	Size   int64
	Blocks int
}

// New creates a file system.
func New(cfg Config) (*FS, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %d", cfg.BlockSize)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dfs: at least one node required")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, fmt.Errorf("dfs: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("dfs: duplicate node name %q", n)
		}
		seen[n] = true
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(cfg.Nodes) {
		cfg.Replication = len(cfg.Nodes)
	}
	return &FS{
		cfg:   cfg,
		files: make(map[string]*file),
		down:  make(map[string]bool),
	}, nil
}

// Nodes returns the configured node names.
func (fs *FS) Nodes() []string {
	out := make([]string, len(fs.cfg.Nodes))
	copy(out, fs.cfg.Nodes)
	return out
}

// BlockSize returns the configured block size.
func (fs *FS) BlockSize() int { return fs.cfg.BlockSize }

// placeReplicas picks Replication live hosts round-robin. Caller holds mu.
func (fs *FS) placeReplicas() []string {
	var hosts []string
	n := len(fs.cfg.Nodes)
	for i := 0; i < n && len(hosts) < fs.cfg.Replication; i++ {
		h := fs.cfg.Nodes[(fs.cursor+i)%n]
		if !fs.down[h] {
			hosts = append(hosts, h)
		}
	}
	fs.cursor = (fs.cursor + 1) % n
	return hosts
}

// WriteFile stores data under name, replacing any existing file.
func (fs *FS) WriteFile(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &file{size: int64(len(data))}
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > len(data) {
			end = len(data)
		}
		hosts := fs.placeReplicas()
		if len(hosts) == 0 {
			return fmt.Errorf("dfs: no live nodes to place block of %q", name)
		}
		b := &block{data: append([]byte(nil), data[off:end]...), hosts: hosts}
		f.blocks = append(f.blocks, b)
		if len(data) == 0 {
			break
		}
	}
	fs.files[name] = f
	return nil
}

// Create returns a writer that accumulates data and stores it as name on
// Close. It exists so producers can stream without assembling the file
// themselves.
func (fs *FS) Create(name string) (io.WriteCloser, error) {
	if name == "" {
		return nil, fmt.Errorf("dfs: empty file name")
	}
	return &writer{fs: fs, name: name}, nil
}

type writer struct {
	fs   *FS
	name string
	buf  []byte
	done bool
}

func (w *writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("dfs: write to closed writer for %q", w.name)
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	return w.fs.WriteFile(w.name, w.buf)
}

// ReadFile returns the file's full contents.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	out := make([]byte, 0, f.size)
	for i, b := range f.blocks {
		if fs.liveHosts(b) == 0 {
			return nil, fmt.Errorf("dfs: block %d of %q has no live replica", i, name)
		}
		out = append(out, b.data...)
	}
	return out, nil
}

// ReadAt reads up to len(p) bytes starting at byte offset off, returning the
// number of bytes read. It returns io.EOF when off is at or beyond the end
// of the file, mirroring io.ReaderAt semantics closely enough for the input
// split reader.
func (fs *FS) ReadAt(name string, p []byte, off int64) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("dfs: file %q does not exist", name)
	}
	if off < 0 {
		return 0, fmt.Errorf("dfs: negative offset %d", off)
	}
	if off >= f.size {
		return 0, io.EOF
	}
	n := 0
	bs := int64(fs.cfg.BlockSize)
	for n < len(p) && off < f.size {
		bi := int(off / bs)
		b := f.blocks[bi]
		if fs.liveHosts(b) == 0 {
			return n, fmt.Errorf("dfs: block %d of %q has no live replica", bi, name)
		}
		inner := int(off % bs)
		c := copy(p[n:], b.data[inner:])
		n += c
		off += int64(c)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (fs *FS) liveHosts(b *block) int {
	live := 0
	for _, h := range b.hosts {
		if !fs.down[h] {
			live++
		}
	}
	return live
}

// Stat describes a file.
func (fs *FS) Stat(name string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("dfs: file %q does not exist", name)
	}
	return FileInfo{Name: name, Size: f.size, Blocks: len(f.blocks)}, nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// Delete removes a file. Deleting a non-existent file is an error so that
// job-chain bookkeeping bugs surface.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("dfs: file %q does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// List returns the names of all files with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for name := range fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Blocks returns the block layout of a file, with only live replicas in
// Hosts. The engine turns each block into one input split.
func (fs *FS) Blocks(name string) ([]BlockInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q does not exist", name)
	}
	out := make([]BlockInfo, len(f.blocks))
	off := int64(0)
	for i, b := range f.blocks {
		var hosts []string
		for _, h := range b.hosts {
			if !fs.down[h] {
				hosts = append(hosts, h)
			}
		}
		out[i] = BlockInfo{File: name, Index: i, Offset: off, Length: len(b.data), Hosts: hosts}
		off += int64(len(b.data))
	}
	return out, nil
}

// SetNodeDown marks a node as failed (true) or recovered (false). Blocks
// whose replicas are all down become unreadable until recovery, which the
// fault-injection tests exercise.
func (fs *FS) SetNodeDown(node string, down bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	found := false
	for _, n := range fs.cfg.Nodes {
		if n == node {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("dfs: unknown node %q", node)
	}
	if down {
		fs.down[node] = true
	} else {
		delete(fs.down, node)
	}
	return nil
}

// ReReplicate restores the configured replication factor for every block
// that lost replicas to node failures, copying from a live replica onto
// live nodes that do not yet hold the block — the job HDFS's NameNode does
// continuously. Blocks with no live replica are irrecoverable and reported.
func (fs *FS) ReReplicate() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var lost []string
	for name, f := range fs.files {
		for i, b := range f.blocks {
			var live []string
			holder := map[string]bool{}
			for _, h := range b.hosts {
				holder[h] = true
				if !fs.down[h] {
					live = append(live, h)
				}
			}
			if len(live) == 0 {
				lost = append(lost, fmt.Sprintf("%s/block%d", name, i))
				continue
			}
			want := fs.cfg.Replication
			if want > fs.liveNodeCount() {
				want = fs.liveNodeCount()
			}
			// Copy onto live nodes not yet holding the block, round-robin.
			newHosts := append([]string(nil), live...)
			for i := 0; i < len(fs.cfg.Nodes) && len(newHosts) < want; i++ {
				h := fs.cfg.Nodes[(fs.cursor+i)%len(fs.cfg.Nodes)]
				if fs.down[h] || holder[h] {
					continue
				}
				newHosts = append(newHosts, h)
			}
			fs.cursor = (fs.cursor + 1) % len(fs.cfg.Nodes)
			b.hosts = newHosts
		}
	}
	if len(lost) > 0 {
		sort.Strings(lost)
		return fmt.Errorf("dfs: %d blocks have no live replica: %v", len(lost), lost)
	}
	return nil
}

// liveNodeCount counts nodes not marked down. Caller holds mu.
func (fs *FS) liveNodeCount() int {
	n := 0
	for _, name := range fs.cfg.Nodes {
		if !fs.down[name] {
			n++
		}
	}
	return n
}
