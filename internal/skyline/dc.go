package skyline

import (
	"sort"

	"mrskyline/internal/tuple"
)

// dcThreshold is the recursion cutoff below which D&C falls back to the
// BNL window.
const dcThreshold = 64

// DC computes the skyline with the divide-and-conquer approach of
// [Börzsönyi et al., ICDE 2001]: split the data at the median of one
// dimension, solve both halves recursively, and merge by filtering the
// worse half's skyline against the better half's.
//
// The merge is sound because a tuple whose split-dimension value is
// strictly above the median can never dominate a tuple at or below it, so
// cross-half domination only flows from the lower half to the upper one.
// The split dimension rotates with recursion depth, which keeps the halves
// balanced on anti-correlated inputs too.
func DC(data tuple.List, c *Count) tuple.List {
	if len(data) == 0 {
		return nil
	}
	work := make(tuple.List, len(data))
	copy(work, data)
	return dc(work, 0, c)
}

func dc(data tuple.List, depth int, c *Count) tuple.List {
	if len(data) <= dcThreshold {
		return BNL(data, c)
	}
	d := len(data[0])
	for try := 0; try < d; try++ {
		k := (depth + try) % d
		sort.SliceStable(data, func(i, j int) bool { return data[i][k] < data[j][k] })
		mid := len(data) / 2
		// Grow the lower half through ties so the upper half is strictly
		// above the split value on dimension k; if everything above the
		// median ties, this dimension cannot split — try the next one.
		for mid < len(data) && data[mid][k] == data[mid-1][k] {
			mid++
		}
		if mid == len(data) {
			continue
		}
		lower := dc(data[:mid], depth+try+1, c)
		upper := dc(data[mid:], depth+try+1, c)
		return append(lower, Filter(upper, lower, c)...)
	}
	// Every dimension is constant across the (remaining) data: all tuples
	// are identical and the window returns them unchanged.
	return BNL(data, c)
}
