//go:build !amd64

package window

// masksBlock classifies one full block column with the portable
// branch-lean kernel; amd64 overrides this with an AVX2 dispatch.
func masksBlock(col *[BlockSize]float64, tv float64) (less, greater uint32) {
	return masks16(col, tv)
}
