package window_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// equalSumWindow builds a dominance-free window of exactly n random
// d-dimensional tuples by normalizing every tuple to the same coordinate
// sum: dominance implies a strictly smaller sum, so equal-sum tuples are
// pairwise incomparable and the window never shrinks or rejects. This
// pins the window size exactly, unlike sampling a skyline.
func equalSumWindow(rng *rand.Rand, n, d int) tuple.List {
	out := make(tuple.List, n)
	for i := range out {
		t := make(tuple.Tuple, d)
		var sum float64
		for k := range t {
			t[k] = 0.1 + rng.Float64()
			sum += t[k]
		}
		for k := range t {
			t[k] *= float64(d) / (2 * sum) // every tuple sums to d/2
		}
		out[i] = t
	}
	return out
}

var benchDims = []int{2, 4, 6, 8, 10}
var benchWindows = []int{16, 64, 256, 1024, 4096}

// BenchmarkInsertTuple measures one window insertion that scans the full
// window — the candidate is dominated only by the last window tuple, so
// both kernels examine all n pairs and leave the window unchanged
// (stable, mutation-free repeated measurement).
func BenchmarkInsertTuple(b *testing.B) {
	for _, d := range benchDims {
		for _, n := range benchWindows {
			rows := equalSumWindow(rand.New(rand.NewSource(int64(d*100000+n))), n, d)
			cand := rows[n-1].Clone()
			for k := range cand {
				cand[k] += 1e-9
			}
			b.Run(fmt.Sprintf("kernel=scalar/d=%d/w=%d", d, n), func(b *testing.B) {
				var c skyline.Count
				for i := 0; i < b.N; i++ {
					rows = skyline.InsertTuple(cand, rows, &c)
				}
				if len(rows) != n {
					b.Fatalf("window drifted to %d tuples", len(rows))
				}
			})
			w := window.FromList(d, rows)
			b.Run(fmt.Sprintf("kernel=columnar/d=%d/w=%d", d, n), func(b *testing.B) {
				var c skyline.Count
				for i := 0; i < b.N; i++ {
					if w.Insert(cand, &c) {
						b.Fatal("candidate entered the window")
					}
				}
				if w.Len() != n {
					b.Fatalf("window drifted to %d tuples", w.Len())
				}
			})
		}
	}
}

// BenchmarkDominance measures the pure membership check over a window no
// tuple of which dominates the probe — the SFS inner loop's worst case,
// scanning all n pairs.
func BenchmarkDominance(b *testing.B) {
	for _, d := range benchDims {
		for _, n := range benchWindows {
			rng := rand.New(rand.NewSource(int64(d*200000 + n)))
			rows := equalSumWindow(rng, n, d)
			probe := equalSumWindow(rng, 1, d)[0]
			b.Run(fmt.Sprintf("kernel=scalar/d=%d/w=%d", d, n), func(b *testing.B) {
				var c skyline.Count
				for i := 0; i < b.N; i++ {
					for _, u := range rows {
						c.Add(1)
						if tuple.Dominates(u, probe) {
							b.Fatal("probe dominated")
						}
					}
				}
			})
			w := window.FromList(d, rows)
			b.Run(fmt.Sprintf("kernel=columnar/d=%d/w=%d", d, n), func(b *testing.B) {
				var c skyline.Count
				for i := 0; i < b.N; i++ {
					if w.Dominated(probe, &c) {
						b.Fatal("probe dominated")
					}
				}
			})
		}
	}
}
