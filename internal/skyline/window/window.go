// Package window implements the columnar block-dominance kernel shared by
// every skyline algorithm in this repository.
//
// A Window stores a local-skyline window as struct-of-arrays []float64
// columns instead of a []tuple.Tuple row slice, and classifies one
// candidate tuple against a block of window tuples per pass over the
// columns using better/worse bitmasks. The column sweep is branch-lean:
// each comparison contributes one bit through a conditional the compiler
// lowers without a data-dependent jump, so the classification throughput
// does not collapse on the unpredictable comparison outcomes that real
// skyline data produces (on anti-correlated inputs every branch of the
// scalar tuple.Compare is a coin flip).
//
// The kernel preserves the scalar reference semantics of
// skyline.InsertTuple / skyline.Filter pair for pair: windows evolve in
// the same order, produce the same contents, and Count.DominanceTests
// advances by exactly the same amounts — including inside the block that
// terminates a scan, where the mask's trailing-zero position recovers the
// index at which the scalar loop would have stopped. Differential tests
// in this package fuzz that equivalence.
package window

import (
	"fmt"
	"math/bits"
	"time"

	"mrskyline/internal/obs"
	"mrskyline/internal/tuple"
)

// BlockSize is the number of window tuples classified per pass over the
// columns. 16 keeps a block's slice of one column inside two cache lines
// while amortizing the per-block mask bookkeeping.
const BlockSize = 16

// Count tallies tuple-pair dominance classifications. A nil *Count is
// valid and counts nothing. It is the unit the paper's Section 6 cost
// model estimates, so the columnar kernel counts pairs classified —
// including block-masked ones — exactly as the scalar reference loop
// does.
type Count struct {
	// DominanceTests is the number of tuple-pair dominance evaluations.
	DominanceTests int64
}

// Add adds n pair classifications to the counter; nil-safe.
func (c *Count) Add(n int64) {
	if c != nil {
		c.DominanceTests += n
	}
}

// Metric names published by instrumented windows (see Instrument).
const (
	// MetricDominanceTests is the obs counter of pair classifications.
	MetricDominanceTests = "algo.dominance.tests"
	// MetricInsertNs is the obs histogram of per-Insert latencies.
	MetricInsertNs = "algo.insert.ns"
)

// Window is a dominance-free local-skyline window in columnar layout:
// cols[k][i] holds tuple i's value on dimension k, and rows[i] is the
// original tuple handle (the algorithms emit tuples, so the row view is
// kept alongside the columns). The zero Window is not usable; create
// with New or FromList. A nil *Window is a valid empty read-only window.
type Window struct {
	dim  int
	cols [][]float64
	rows tuple.List
	// evicts is the per-block eviction mask scratch reused across Inserts.
	evicts []uint32
	// reg, when non-nil, receives MetricDominanceTests /  MetricInsertNs.
	// Nil costs one predictable branch per operation (pay-for-use).
	reg *obs.Registry
}

// New returns an empty window for dim-dimensional tuples.
func New(dim int) *Window {
	if dim <= 0 {
		panic(fmt.Sprintf("window: invalid dimensionality %d", dim))
	}
	return &Window{dim: dim, cols: make([][]float64, dim)}
}

// FromList columnarizes an existing tuple list into a window without any
// dominance testing — the caller asserts l is dominance-free (every list
// in this repository is built through InsertTuple or a Window). The
// window references l's tuples but not the slice itself.
func FromList(dim int, l tuple.List) *Window {
	w := New(dim)
	for _, t := range l {
		w.Append(t)
	}
	return w
}

// Instrument attaches an obs metrics registry: Insert observes
// MetricInsertNs per call, and every classifying operation adds its pair
// count to MetricDominanceTests. A nil registry detaches.
func (w *Window) Instrument(reg *obs.Registry) { w.reg = reg }

// Len returns the number of tuples in the window; nil-safe.
func (w *Window) Len() int {
	if w == nil {
		return 0
	}
	return len(w.rows)
}

// Dim returns the window's dimensionality.
func (w *Window) Dim() int { return w.dim }

// Rows returns the window's tuples in insertion order. The slice is the
// window's live backing store: it is invalidated by the next mutating
// call, and appending to or reordering it corrupts the window. Callers
// either treat it as a read-only snapshot or take ownership of a window
// they will no longer mutate. Nil-safe.
func (w *Window) Rows() tuple.List {
	if w == nil {
		return nil
	}
	return w.rows
}

// At returns the i-th tuple of the window.
func (w *Window) At(i int) tuple.Tuple { return w.rows[i] }

// Contains reports whether the window holds a tuple equal to t — same
// values on every dimension. It is a pure membership scan: no dominance
// classification happens and no counters advance (equality is not a
// dominance test under Definition 1). The incremental maintainer uses it
// to decide whether a deleted tuple was part of a cell's local skyline.
// Nil-safe.
func (w *Window) Contains(t tuple.Tuple) bool {
	if w == nil {
		return false
	}
	for _, u := range w.rows {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Reset empties the window in place, retaining the column and row capacity
// for reuse. Callers that rebuild a window from scratch repeatedly (the
// delete-repair path of the incremental maintainer) avoid reallocating its
// backing arrays each time.
func (w *Window) Reset() {
	for k := range w.cols {
		w.cols[k] = w.cols[k][:0]
	}
	w.rows = w.rows[:0]
}

// Append adds t to the window without any dominance checks. It is the
// fast path for callers that already know t belongs: SFS processes
// tuples in monotone-score order, so a tuple that survives the
// membership check can never be evicted and never evicts (sorted-order
// early termination), and FromList trusts its input.
func (w *Window) Append(t tuple.Tuple) {
	if len(t) != w.dim {
		panic(fmt.Sprintf("window: tuple dimensionality %d does not match window d=%d", len(t), w.dim))
	}
	for k := 0; k < w.dim; k++ {
		w.cols[k] = append(w.cols[k], t[k])
	}
	w.rows = append(w.rows, t)
}

// b2u converts a comparison outcome to a mask bit. The compiler lowers
// this pattern to a flag-materializing instruction rather than a jump,
// which is what keeps the block sweep branch-lean.
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// fullMask has one bit per lane of a complete block.
const fullMask = uint32(1)<<BlockSize - 1

// masks16 classifies tv against one full-block column slice, returning
// the 16-lane masks of tv < col[i] (less) and tv > col[i] (greater).
// The constant indices and constant shift amounts are what make the
// kernel fast: the compiler emits sixteen independent
// load/compare/set chains with no bounds checks, no variable shifts,
// and no data-dependent branch, so the comparisons schedule at full ILP
// width regardless of their outcomes. Each column value is loaded once
// and feeds both masks; the masks accumulate over four independent
// chains apiece so no single OR chain serializes the block.
func masks16(col *[BlockSize]float64, tv float64) (less, greater uint32) {
	var l0, l1, l2, l3, g0, g1, g2, g3 uint32
	v0, v1, v2, v3 := col[0], col[1], col[2], col[3]
	l0 = b2u(tv < v0) | b2u(tv < v1)<<1 | b2u(tv < v2)<<2 | b2u(tv < v3)<<3
	g0 = b2u(tv > v0) | b2u(tv > v1)<<1 | b2u(tv > v2)<<2 | b2u(tv > v3)<<3
	v0, v1, v2, v3 = col[4], col[5], col[6], col[7]
	l1 = b2u(tv < v0)<<4 | b2u(tv < v1)<<5 | b2u(tv < v2)<<6 | b2u(tv < v3)<<7
	g1 = b2u(tv > v0)<<4 | b2u(tv > v1)<<5 | b2u(tv > v2)<<6 | b2u(tv > v3)<<7
	v0, v1, v2, v3 = col[8], col[9], col[10], col[11]
	l2 = b2u(tv < v0)<<8 | b2u(tv < v1)<<9 | b2u(tv < v2)<<10 | b2u(tv < v3)<<11
	g2 = b2u(tv > v0)<<8 | b2u(tv > v1)<<9 | b2u(tv > v2)<<10 | b2u(tv > v3)<<11
	v0, v1, v2, v3 = col[12], col[13], col[14], col[15]
	l3 = b2u(tv < v0)<<12 | b2u(tv < v1)<<13 | b2u(tv < v2)<<14 | b2u(tv < v3)<<15
	g3 = b2u(tv > v0)<<12 | b2u(tv > v1)<<13 | b2u(tv > v2)<<14 | b2u(tv > v3)<<15
	return l0 | l1 | l2 | l3, g0 | g1 | g2 | g3
}

// classifyBlock classifies candidate t against the bn window tuples
// starting at base, returning bitmasks over the block: bit i of better
// (worse) is set when t is strictly better (worse) than tuple base+i on
// at least one dimension. Once every pair in the block has both bits set
// the remaining columns cannot change any classification and the sweep
// stops early.
func (w *Window) classifyBlock(t tuple.Tuple, base, bn int) (better, worse uint32) {
	if bn == BlockSize {
		for k := 0; k < w.dim; k++ {
			l, g := masksBlock((*[BlockSize]float64)(w.cols[k][base:]), t[k])
			better |= l
			worse |= g
			if better&worse == fullMask {
				break // every pair already incomparable
			}
		}
		return better, worse
	}
	full := uint32(1)<<uint(bn) - 1
	for k := 0; k < w.dim; k++ {
		col := w.cols[k][base : base+bn : base+bn]
		tv := t[k]
		var bb, ww uint32
		for i, v := range col {
			bb |= b2u(tv < v) << uint(i)
			ww |= b2u(tv > v) << uint(i)
		}
		better |= bb
		worse |= ww
		if better&worse == full {
			break
		}
	}
	return better, worse
}

// dominatedInBlock reports whether any tuple of the block starting at
// base dominates t, returning the in-block index of the first dominator
// (-1 if none). It is the membership-check variant of classifyBlock: it
// only needs the worse&^better mask, so it can additionally stop as soon
// as t is strictly better than every tuple of the block on some
// dimension seen so far — none of them can dominate t then.
func (w *Window) dominatedInBlock(t tuple.Tuple, base, bn int) int {
	var better, worse uint32
	if bn == BlockSize {
		for k := 0; k < w.dim; k++ {
			l, g := masksBlock((*[BlockSize]float64)(w.cols[k][base:]), t[k])
			better |= l
			worse |= g
			if better == fullMask {
				return -1 // t beats every block tuple somewhere: no dominator here
			}
		}
		if dom := worse &^ better; dom != 0 {
			return bits.TrailingZeros32(dom)
		}
		return -1
	}
	full := uint32(1)<<uint(bn) - 1
	for k := 0; k < w.dim; k++ {
		col := w.cols[k][base : base+bn : base+bn]
		tv := t[k]
		var bb, ww uint32
		for i, v := range col {
			bb |= b2u(tv < v) << uint(i)
			ww |= b2u(tv > v) << uint(i)
		}
		better |= bb
		worse |= ww
		if better == full {
			return -1
		}
	}
	if dom := worse &^ better; dom != 0 {
		return bits.TrailingZeros32(dom)
	}
	return -1
}

// Insert implements Algorithm 4 against the columnar window: t is
// dropped when a window tuple dominates it, window tuples t dominates
// are evicted, and t is appended otherwise. It reports whether t entered
// the window.
//
// The window must be dominance-free, which Insert itself maintains.
// Counting matches the scalar reference exactly: one test per window
// tuple examined, where a scan that a dominator terminates counts only
// the pairs up to and including the dominator — the block mask's
// trailing-zero position recovers that index. As in the scalar path,
// when a dominator exists the dominance-free invariant guarantees t has
// evicted nothing (a tuple dominated by a window tuple cannot dominate
// another window tuple, by transitivity), so stopping at the dominating
// block leaves the window untouched.
func (w *Window) Insert(t tuple.Tuple, c *Count) bool {
	if len(t) != w.dim {
		panic(fmt.Sprintf("window: tuple dimensionality %d does not match window d=%d", len(t), w.dim))
	}
	var t0 time.Time
	if w.reg != nil {
		t0 = time.Now()
	}
	n := len(w.rows)
	nBlocks := (n + BlockSize - 1) / BlockSize
	if cap(w.evicts) < nBlocks {
		w.evicts = make([]uint32, nBlocks)
	}
	evicts := w.evicts[:nBlocks]
	anyEvict := false
	pairs := int64(n)
	inserted := true
	for b := 0; b < nBlocks; b++ {
		base := b * BlockSize
		bn := n - base
		if bn > BlockSize {
			bn = BlockSize
		}
		better, worse := w.classifyBlock(t, base, bn)
		if dom := worse &^ better; dom != 0 {
			// A window tuple dominates t: the scalar loop stops at the
			// first such tuple, having examined exactly the pairs before
			// and including it.
			pairs = int64(base + bits.TrailingZeros32(dom) + 1)
			inserted = false
			break
		}
		if ev := better &^ worse; ev != 0 {
			evicts[b] = ev
			anyEvict = true
		} else {
			evicts[b] = 0
		}
	}
	c.Add(pairs)
	if inserted {
		if anyEvict {
			w.compactEvicted(n)
		}
		w.Append(t)
	}
	if w.reg != nil {
		w.reg.Observe(MetricInsertNs, int64(time.Since(t0)))
		w.reg.Count(MetricDominanceTests, pairs)
	}
	return inserted
}

// compactEvicted removes the rows whose bits are set in the eviction
// scratch, preserving order, over the first n rows.
func (w *Window) compactEvicted(n int) {
	out := 0
	for i := 0; i < n; i++ {
		if w.evicts[i/BlockSize]&(1<<uint(i%BlockSize)) != 0 {
			continue
		}
		if out != i {
			w.rows[out] = w.rows[i]
			for k := 0; k < w.dim; k++ {
				w.cols[k][out] = w.cols[k][i]
			}
		}
		out++
	}
	w.rows = w.rows[:out]
	for k := 0; k < w.dim; k++ {
		w.cols[k] = w.cols[k][:out]
	}
}

// Dominated reports whether any window tuple dominates t — the pure
// membership check that SFS insertion degrades to under sorted-order
// early termination, and the inner operation of Filter. Counting matches
// the scalar loop: one test per tuple examined, stopping at the first
// dominator.
func (w *Window) Dominated(t tuple.Tuple, c *Count) bool {
	if w == nil {
		return false
	}
	if len(t) != w.dim {
		panic(fmt.Sprintf("window: tuple dimensionality %d does not match window d=%d", len(t), w.dim))
	}
	n := len(w.rows)
	dominated := false
	pairs := int64(n)
	for base := 0; base < n; base += BlockSize {
		bn := n - base
		if bn > BlockSize {
			bn = BlockSize
		}
		if i := w.dominatedInBlock(t, base, bn); i >= 0 {
			pairs = int64(base + i + 1)
			dominated = true
			break
		}
	}
	c.Add(pairs)
	if w.reg != nil {
		w.reg.Count(MetricDominanceTests, pairs)
	}
	return dominated
}

// FilterBy removes from w every tuple dominated by a tuple of by,
// preserving order — the inner operation of ComparePartitions
// (Algorithm 5, line 3) as a window-to-window pass. w and by may be the
// same window only if w is dominance-free (then nothing is removed).
func (w *Window) FilterBy(by *Window, c *Count) {
	if by.Len() == 0 || w.Len() == 0 {
		return
	}
	if w.dim != by.dim {
		panic(fmt.Sprintf("window: dimensionality mismatch %d vs %d", w.dim, by.dim))
	}
	n := len(w.rows)
	out := 0
	for i := 0; i < n; i++ {
		if by.Dominated(w.rows[i], c) {
			continue
		}
		if out != i {
			w.rows[out] = w.rows[i]
			for k := 0; k < w.dim; k++ {
				w.cols[k][out] = w.cols[k][i]
			}
		}
		out++
	}
	w.rows = w.rows[:out]
	for k := 0; k < w.dim; k++ {
		w.cols[k] = w.cols[k][:out]
	}
}
