package window

import (
	"math/rand"
	"testing"
)

// TestMasksBlockMatchesMasks16 pins the dispatch kernel (AVX2 on amd64
// when available) to the portable masks16 bit for bit, including ties:
// equal lanes must set neither mask bit.
func TestMasksBlockMatchesMasks16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		var col [BlockSize]float64
		for i := range col {
			col[i] = float64(rng.Intn(8)) / 8
		}
		tv := float64(rng.Intn(8)) / 8
		wantL, wantG := masks16(&col, tv)
		gotL, gotG := masksBlock(&col, tv)
		if gotL != wantL || gotG != wantG {
			t.Fatalf("trial %d: masksBlock(%v, %v) = %04x/%04x, want %04x/%04x",
				trial, col, tv, gotL, gotG, wantL, wantG)
		}
	}
}
