// AVX2 block-mask kernel: one full 16-lane column block classified per
// call. See masks_amd64.go for the dispatch contract and window.go
// (masks16) for the semantics being reproduced.

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 requires three checks: the OS must have enabled XSAVE
// (CPUID.1:ECX.OSXSAVE), the enabled XCR0 state must cover XMM and YMM
// registers (XGETBV bits 1 and 2), and the CPU must report AVX2
// (CPUID.7.0:EBX bit 5).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27|1<<28), R8       // OSXSAVE and AVX
	CMPL R8, $(1<<27|1<<28)
	JNE  unsupported
	MOVL $0, CX
	XGETBV                         // XCR0 into DX:AX
	ANDL $6, AX                    // XMM and YMM state enabled
	CMPL AX, $6
	JNE  unsupported
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX               // AVX2
	JZ   unsupported
	MOVB $1, ret+0(FP)
	RET
unsupported:
	MOVB $0, ret+0(FP)
	RET

// func masksAVX2(col *[16]float64, tv float64) (less, greater uint32)
//
// Bit i of less (greater) is tv < col[i] (tv > col[i]). Four VCMPPD per
// direction classify all 16 lanes; VMOVMSKPD extracts the lane sign
// masks. Inputs are finite by the tuple validation contract, so the
// ordered-quiet predicate (LT_OQ) agrees exactly with Go's < operator.
TEXT ·masksAVX2(SB), NOSPLIT, $0-24
	MOVQ         col+0(FP), AX
	VBROADCASTSD tv+8(FP), Y0
	VMOVUPD      (AX), Y1
	VMOVUPD      32(AX), Y2
	VMOVUPD      64(AX), Y3
	VMOVUPD      96(AX), Y4

	// less[i] = tv < col[i]
	VCMPPD    $0x11, Y1, Y0, Y5
	VCMPPD    $0x11, Y2, Y0, Y6
	VCMPPD    $0x11, Y3, Y0, Y7
	VCMPPD    $0x11, Y4, Y0, Y8
	VMOVMSKPD Y5, R8
	VMOVMSKPD Y6, R9
	VMOVMSKPD Y7, R10
	VMOVMSKPD Y8, R11
	SHLL      $4, R9
	SHLL      $8, R10
	SHLL      $12, R11
	ORL       R9, R8
	ORL       R11, R10
	ORL       R10, R8

	// greater[i] = col[i] < tv
	VCMPPD    $0x11, Y0, Y1, Y5
	VCMPPD    $0x11, Y0, Y2, Y6
	VCMPPD    $0x11, Y0, Y3, Y7
	VCMPPD    $0x11, Y0, Y4, Y8
	VMOVMSKPD Y5, AX
	VMOVMSKPD Y6, CX
	VMOVMSKPD Y7, DX
	VMOVMSKPD Y8, BX
	SHLL      $4, CX
	SHLL      $8, DX
	SHLL      $12, BX
	ORL       CX, AX
	ORL       BX, DX
	ORL       DX, AX

	VZEROUPPER
	MOVL R8, less+16(FP)
	MOVL AX, greater+20(FP)
	RET
