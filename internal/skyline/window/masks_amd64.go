//go:build amd64

package window

// hasAVX2 selects the assembly block kernel once at startup; the check
// covers CPU support and OS-enabled YMM state.
var hasAVX2 = cpuHasAVX2()

// cpuHasAVX2 is implemented in masks_amd64.s.
func cpuHasAVX2() bool

// masksAVX2 is masks16 as four 4-lane VCMPPD per mask direction; it
// assumes BlockSize == 16. Implemented in masks_amd64.s.
func masksAVX2(col *[BlockSize]float64, tv float64) (less, greater uint32)

// masksBlock classifies one full block column, dispatching to the AVX2
// kernel when available and the portable branch-lean masks16 otherwise.
func masksBlock(col *[BlockSize]float64, tv float64) (less, greater uint32) {
	if hasAVX2 {
		return masksAVX2(col, tv)
	}
	return masks16(col, tv)
}
