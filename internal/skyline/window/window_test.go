// Differential tests: the columnar block kernel must reproduce the
// scalar reference (skyline.InsertTuple and the plain membership loop)
// exactly — same window contents in the same order, same insertion
// outcomes, and the same Count.DominanceTests advance on every single
// call. The generators cover the regimes that exercise different mask
// paths: random (mixed outcomes), anti-correlated (incomparable-heavy,
// saturates the early-exit mask), duplicate-heavy (equal tuples and
// evictions), and all-equal (pure equality, nothing dominates).
package window_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/obs"
	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// generators produce deterministic datasets per distribution name.
var generators = map[string]func(rng *rand.Rand, n, d int) tuple.List{
	"random": func(rng *rand.Rand, n, d int) tuple.List {
		out := make(tuple.List, n)
		for i := range out {
			t := make(tuple.Tuple, d)
			for k := range t {
				t[k] = rng.Float64()
			}
			out[i] = t
		}
		return out
	},
	"anticorrelated": func(rng *rand.Rand, n, d int) tuple.List {
		// Points scattered around the hyperplane sum = d/2: good on one
		// dimension means bad on another, so almost every pair is
		// incomparable and the masks saturate.
		out := make(tuple.List, n)
		for i := range out {
			t := make(tuple.Tuple, d)
			var sum float64
			for k := range t {
				t[k] = rng.Float64()
				sum += t[k]
			}
			shift := sum/float64(d) - 0.5
			for k := range t {
				t[k] -= shift
			}
			out[i] = t
		}
		return out
	},
	"duplicate-heavy": func(rng *rand.Rand, n, d int) tuple.List {
		// Coarse value grid plus whole-tuple repeats: lots of equal
		// values per dimension, frequent exact duplicates, frequent
		// dominance (so evictions and drops both trigger).
		out := make(tuple.List, 0, n)
		for len(out) < n {
			if len(out) > 0 && rng.Intn(4) == 0 {
				out = append(out, out[rng.Intn(len(out))])
				continue
			}
			t := make(tuple.Tuple, d)
			for k := range t {
				t[k] = float64(rng.Intn(4)) / 4
			}
			out = append(out, t)
		}
		return out
	},
	"all-equal": func(rng *rand.Rand, n, d int) tuple.List {
		t := make(tuple.Tuple, d)
		for k := range t {
			t[k] = rng.Float64()
		}
		out := make(tuple.List, n)
		for i := range out {
			out[i] = t
		}
		return out
	},
}

// scalarDominated is the scalar reference of Window.Dominated: one test
// per tuple examined, stopping at the first dominator.
func scalarDominated(t tuple.Tuple, s tuple.List, c *skyline.Count) bool {
	for _, u := range s {
		c.Add(1)
		if tuple.Dominates(u, t) {
			return true
		}
	}
	return false
}

func sameList(a, b tuple.List) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestInsertMatchesScalarReference drives the columnar Insert and the
// scalar InsertTuple side by side and asserts exact agreement after
// every insertion: window contents and order, and the precise
// DominanceTests advance (including scans cut short by a dominator
// inside a block).
func TestInsertMatchesScalarReference(t *testing.T) {
	for name, gen := range generators {
		for _, d := range []int{1, 2, 3, 4, 6, 9} {
			rng := rand.New(rand.NewSource(int64(42 + d)))
			data := gen(rng, 400, d)
			w := window.New(d)
			var s tuple.List
			var cw, cs skyline.Count
			for i, tp := range data {
				w.Insert(tp, &cw)
				s = skyline.InsertTuple(tp, s, &cs)
				if cw.DominanceTests != cs.DominanceTests {
					t.Fatalf("%s d=%d step %d: columnar counted %d tests, scalar %d",
						name, d, i, cw.DominanceTests, cs.DominanceTests)
				}
				if !sameList(w.Rows(), s) {
					t.Fatalf("%s d=%d step %d: windows diverged (%d vs %d tuples)",
						name, d, i, w.Len(), len(s))
				}
			}
		}
	}
}

// TestDominatedMatchesScalarReference probes dominance-free windows with
// fresh tuples and asserts Dominated agrees with the scalar membership
// loop on both the verdict and the count advance.
func TestDominatedMatchesScalarReference(t *testing.T) {
	for name, gen := range generators {
		for _, d := range []int{1, 2, 4, 7} {
			rng := rand.New(rand.NewSource(int64(7 * d)))
			var cnt skyline.Count
			sky := skyline.BNL(gen(rng, 500, d), &cnt)
			w := window.FromList(d, sky)
			for i, probe := range gen(rng, 300, d) {
				var cw, cs skyline.Count
				got := w.Dominated(probe, &cw)
				want := scalarDominated(probe, sky, &cs)
				if got != want || cw.DominanceTests != cs.DominanceTests {
					t.Fatalf("%s d=%d probe %d: columnar (%v, %d), scalar (%v, %d)",
						name, d, i, got, cw.DominanceTests, want, cs.DominanceTests)
				}
			}
		}
	}
}

// TestFilterByMatchesScalarReference filters one local skyline by
// another — the ComparePartitions inner operation — and checks survivors
// and counts against the scalar loops.
func TestFilterByMatchesScalarReference(t *testing.T) {
	for name, gen := range generators {
		for _, d := range []int{2, 3, 5} {
			rng := rand.New(rand.NewSource(int64(100 + d)))
			var cnt skyline.Count
			a := skyline.BNL(gen(rng, 400, d), &cnt)
			b := skyline.BNL(gen(rng, 400, d), &cnt)

			var cw skyline.Count
			wa := window.FromList(d, a)
			wa.FilterBy(window.FromList(d, b), &cw)

			var cs skyline.Count
			var want tuple.List
			for _, tp := range a {
				if !scalarDominated(tp, b, &cs) {
					want = append(want, tp)
				}
			}
			if cw.DominanceTests != cs.DominanceTests {
				t.Fatalf("%s d=%d: columnar counted %d tests, scalar %d",
					name, d, cw.DominanceTests, cs.DominanceTests)
			}
			if !sameList(wa.Rows(), want) {
				t.Fatalf("%s d=%d: survivors diverged (%d vs %d tuples)",
					name, d, wa.Len(), len(want))
			}
		}
	}
}

// TestWindowStaysDominanceFree asserts the structural invariant every
// algorithm relies on: after any insertion sequence no window tuple
// dominates another.
func TestWindowStaysDominanceFree(t *testing.T) {
	for name, gen := range generators {
		rng := rand.New(rand.NewSource(3))
		w := window.New(3)
		for _, tp := range gen(rng, 600, 3) {
			w.Insert(tp, nil)
		}
		rows := w.Rows()
		for i, a := range rows {
			for j, b := range rows {
				if i != j && tuple.Dominates(a, b) {
					t.Fatalf("%s: window tuple %d dominates tuple %d", name, i, j)
				}
			}
		}
	}
}

// TestInstrumentedWindowPublishesMetrics checks the obs wiring: an
// instrumented window publishes the pair-classification counter and the
// per-insert latency histogram, in agreement with the Count it was
// handed; a detached window publishes nothing.
func TestInstrumentedWindowPublishesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	w := window.New(2)
	w.Instrument(reg)
	rng := rand.New(rand.NewSource(9))
	var cnt skyline.Count
	inserts := int64(0)
	for _, tp := range generators["random"](rng, 200, 2) {
		w.Insert(tp, &cnt)
		inserts++
	}
	w.Dominated(tuple.Tuple{0.5, 0.5}, &cnt)
	snap := reg.Snapshot()
	var tests int64
	for _, c := range snap.Counters {
		if c.Name == window.MetricDominanceTests {
			tests = c.Value
		}
	}
	if tests != cnt.DominanceTests {
		t.Errorf("metric %s = %d, want %d", window.MetricDominanceTests, tests, cnt.DominanceTests)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == window.MetricInsertNs {
			found = true
			if h.Count != inserts {
				t.Errorf("metric %s observed %d samples, want %d", window.MetricInsertNs, h.Count, inserts)
			}
		}
	}
	if !found {
		t.Errorf("metric %s not published", window.MetricInsertNs)
	}

	// Detached windows must not publish (pay-for-use).
	w2 := window.New(2)
	w2.Insert(tuple.Tuple{0.1, 0.2}, nil)
	if s := (&obs.Registry{}).Snapshot(); len(s.Counters) != 0 {
		t.Errorf("uninstrumented window published metrics: %v", s)
	}
}

// FuzzInsertDifferential fuzzes the Insert equivalence: arbitrary bytes
// become a tuple stream on a coarse value grid (maximizing duplicate
// values, equal tuples, and dominance), and the columnar and scalar
// windows must stay identical in contents, order, and counts.
func FuzzInsertDifferential(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 15, 0})
	f.Add(uint8(4), []byte{9, 9, 9, 9, 1, 2, 3, 4, 4, 3, 2, 1})
	f.Add(uint8(1), []byte{5, 5, 5, 4, 6})
	f.Add(uint8(6), []byte{})
	f.Fuzz(func(t *testing.T, dim uint8, raw []byte) {
		d := int(dim%6) + 1
		w := window.New(d)
		var s tuple.List
		var cw, cs skyline.Count
		for i := 0; i+d <= len(raw); i += d {
			tp := make(tuple.Tuple, d)
			for k := 0; k < d; k++ {
				tp[k] = float64(raw[i+k]%16) / 16
			}
			w.Insert(tp, &cw)
			s = skyline.InsertTuple(tp, s, &cs)
			if cw.DominanceTests != cs.DominanceTests {
				t.Fatalf("step %d: columnar counted %d tests, scalar %d", i/d, cw.DominanceTests, cs.DominanceTests)
			}
			if !sameList(w.Rows(), s) {
				t.Fatalf("step %d: windows diverged (%d vs %d tuples)", i/d, w.Len(), len(s))
			}
		}
	})
}

func TestContains(t *testing.T) {
	w := window.FromList(2, tuple.List{{0.1, 0.9}, {0.9, 0.1}})
	if !w.Contains(tuple.Tuple{0.1, 0.9}) || !w.Contains(tuple.Tuple{0.9, 0.1}) {
		t.Fatal("Contains missed a held tuple")
	}
	if w.Contains(tuple.Tuple{0.5, 0.5}) {
		t.Fatal("Contains reported an absent tuple")
	}
	// Value equality, not identity: a fresh equal slice matches, and no
	// dominance counters advance (Contains is bookkeeping, not work).
	var cnt window.Count
	if w.Dominated(tuple.Tuple{0.95, 0.95}, &cnt); cnt.DominanceTests == 0 {
		t.Fatal("sanity: Dominated should count tests")
	}
	before := cnt.DominanceTests
	_ = w.Contains(tuple.Tuple{0.1, 0.9})
	if cnt.DominanceTests != before {
		t.Fatal("Contains advanced dominance counters")
	}
	var nilW *window.Window
	if nilW.Contains(tuple.Tuple{0.1, 0.9}) {
		t.Fatal("nil window Contains reported true")
	}
}

func TestReset(t *testing.T) {
	var cnt window.Count
	w := window.FromList(2, tuple.List{{0.4, 0.6}, {0.6, 0.4}})
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	if w.Contains(tuple.Tuple{0.4, 0.6}) {
		t.Fatal("Reset window still contains old tuple")
	}
	// The reset window behaves exactly like a fresh one under inserts —
	// the delete-repair rebuild path of the incremental maintainer.
	rows := tuple.List{{0.5, 0.5}, {0.2, 0.8}, {0.7, 0.7}, {0.2, 0.8}}
	for _, r := range rows {
		w.Insert(r, &cnt)
	}
	fresh := window.New(2)
	var cnt2 window.Count
	for _, r := range rows {
		fresh.Insert(r, &cnt2)
	}
	if got, want := w.Rows(), fresh.Rows(); !tuple.EqualAsSet(got, want) || len(got) != len(want) {
		t.Fatalf("reset-rebuilt window %v != fresh window %v", got, want)
	}
}
