package skyline

import (
	"container/heap"

	"mrskyline/internal/rtree"
	"mrskyline/internal/tuple"
)

// BBS computes the skyline with branch-and-bound over an R-tree
// [Papadias, Tao, Fu, Seeger: Progressive skyline computation in database
// systems, SIGMOD 2003 / TODS 2005] — the classic I/O-optimal centralized
// algorithm, included as the strongest single-node comparator for the
// MapReduce kernels.
//
// Entries (nodes and points) are expanded in ascending order of the L1
// mindist of their MBR. Because any dominator of a point has a strictly
// smaller coordinate sum, every potential dominator is in the result set
// before the point itself is popped, so a single dominance check against
// the current result decides membership. Node entries dominated by a
// result point are pruned without expansion — whole subtrees are skipped.
func BBS(data tuple.List, c *Count) tuple.List {
	tree, err := rtree.Bulk(data, 0)
	if err != nil {
		// The kernels share the contract that data was validated upstream;
		// an invalid list here is a programming error.
		panic(err)
	}
	return BBSOverTree(tree, c)
}

// BBSOverTree runs BBS over an already-built R-tree, allowing index reuse
// across repeated skyline computations.
func BBSOverTree(tree *rtree.Tree, c *Count) tuple.List {
	if tree.Root() == nil {
		return nil
	}
	var result tuple.List
	pq := &bbsHeap{}
	heap.Push(pq, bbsEntry{key: tree.Root().Rect().MinDistSum(), node: tree.Root()})

	dominatedBy := func(lo tuple.Tuple) bool {
		for _, s := range result {
			c.Add(1)
			if tuple.Dominates(s, lo) {
				return true
			}
		}
		return false
	}

	for pq.Len() > 0 {
		e := heap.Pop(pq).(bbsEntry)
		if e.node != nil {
			// A node whose lower corner is dominated cannot contain any
			// skyline point (every point in it is dominated too).
			if dominatedBy(e.node.Rect().Lo) {
				continue
			}
			if e.node.Leaf() {
				for _, p := range e.node.Points() {
					heap.Push(pq, bbsEntry{key: p.Sum(), point: p})
				}
			} else {
				for _, child := range e.node.Children() {
					heap.Push(pq, bbsEntry{key: child.Rect().MinDistSum(), node: child})
				}
			}
			continue
		}
		if !dominatedBy(e.point) {
			result = append(result, e.point)
		}
	}
	return result
}

// bbsEntry is one priority-queue element: either a tree node or a point.
type bbsEntry struct {
	key   float64
	node  *rtree.Node
	point tuple.Tuple
}

type bbsHeap []bbsEntry

func (h bbsHeap) Len() int            { return len(h) }
func (h bbsHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h bbsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bbsHeap) Push(x interface{}) { *h = append(*h, x.(bbsEntry)) }
func (h *bbsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
