package skyline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// TestWindowDominanceFreeInvariant checks the invariant InsertTuple both
// requires and maintains: after any insertion sequence, no window element
// dominates another.
func TestWindowDominanceFreeInvariant(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		d := int(dRaw%4) + 1
		var w tuple.List
		for i := 0; i < n; i++ {
			tp := make(tuple.Tuple, d)
			for k := range tp {
				tp[k] = float64(rng.Intn(4))
			}
			w = skyline.InsertTuple(tp, w, nil)
		}
		for i := range w {
			for j := range w {
				if i != j && tuple.Dominates(w[i], w[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAllKernelsAgree checks that the four kernels compute identical
// skylines (as sets) on arbitrary inputs.
func TestAllKernelsAgree(t *testing.T) {
	kernels := []skyline.Kernel{skyline.KernelBNL, skyline.KernelSFS, skyline.KernelDC, skyline.KernelBBS}
	f := func(seed int64, nRaw uint8, dRaw uint8, discrete bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 150
		d := int(dRaw%5) + 1
		data := randomList(rng, n, d, discrete)
		ref := kernels[0].Compute(data, nil)
		for _, k := range kernels[1:] {
			if !tuple.EqualAsSet(k.Compute(data, nil), ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFilterIsIdempotent checks Filter(Filter(s, by), by) = Filter(s, by).
func TestFilterIsIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomList(rng, rng.Intn(60), 3, true)
		by := randomList(rng, rng.Intn(60), 3, true)
		once := skyline.Filter(s.Clone(), by, nil)
		twice := skyline.Filter(once.Clone(), by, nil)
		return tuple.EqualAsSet(once, twice) && len(once) == len(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSkylineIsIdempotent checks skyline(skyline(R)) = skyline(R).
func TestSkylineIsIdempotent(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(dRaw%4) + 1
		data := randomList(rng, rng.Intn(200), d, false)
		once := skyline.BNL(data, nil)
		twice := skyline.BNL(once, nil)
		return tuple.EqualAsSet(once, twice) && len(once) == len(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSkylineSubsetOfInput checks every skyline tuple comes from the input.
func TestSkylineSubsetOfInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randomList(rng, rng.Intn(150), 3, true)
		for _, s := range skyline.SFS(data, nil) {
			if !data.Contains(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
