package skyline

import (
	"fmt"
	"testing"

	"mrskyline/internal/datagen"
)

// BenchmarkInsertTuple measures the Algorithm 4 window insertion every
// mapper and reducer runs per tuple, across the distributions' extremes:
// correlated data keeps windows tiny, anti-correlated data keeps nearly
// everything in the window.
func BenchmarkInsertTuple(b *testing.B) {
	for _, dist := range []datagen.Distribution{datagen.Correlated, datagen.Independent, datagen.AntiCorrelated} {
		for _, d := range []int{2, 6} {
			data := datagen.Generate(dist, 2000, d, 1)
			b.Run(fmt.Sprintf("%v/d=%d", dist, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var c Count
					window := data[:0:0]
					for _, t := range data {
						window = InsertTuple(t, window, &c)
					}
					if len(window) == 0 {
						b.Fatal("empty skyline")
					}
				}
			})
		}
	}
}
