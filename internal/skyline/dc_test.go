package skyline_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func TestDCAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(5)
		n := rng.Intn(400) // crosses the recursion threshold both ways
		data := randomList(rng, n, d, trial%2 == 0)
		got := skyline.DC(data, nil)
		want := skyline.Naive(data)
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("trial %d (n=%d d=%d): DC=%d naive=%d", trial, n, d, len(got), len(want))
		}
	}
}

func TestDCDoesNotMutateInputOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	data := randomList(rng, 300, 3, false)
	orig := data.Clone()
	skyline.DC(data, nil)
	for i := range data {
		if !data[i].Equal(orig[i]) {
			t.Fatal("DC reordered the caller's slice")
		}
	}
}

func TestDCAllIdentical(t *testing.T) {
	data := make(tuple.List, 500) // above the recursion threshold
	for i := range data {
		data[i] = tuple.Tuple{0.5, 0.5}
	}
	got := skyline.DC(data, nil)
	if len(got) != 500 {
		t.Fatalf("identical tuples: |skyline| = %d, want 500", len(got))
	}
}

func TestDCConstantDimension(t *testing.T) {
	// One constant dimension must not break the split rotation.
	rng := rand.New(rand.NewSource(53))
	data := make(tuple.List, 400)
	for i := range data {
		data[i] = tuple.Tuple{7, rng.Float64(), rng.Float64()}
	}
	got := skyline.DC(data, nil)
	want := skyline.Naive(data)
	if !tuple.EqualAsSet(got, want) {
		t.Fatalf("constant-dim: DC=%d naive=%d", len(got), len(want))
	}
}

func TestDCAntiChain(t *testing.T) {
	var data tuple.List
	for i := 0; i < 1000; i++ {
		data = append(data, tuple.Tuple{float64(i), float64(999 - i)})
	}
	if got := skyline.DC(data, nil); len(got) != 1000 {
		t.Fatalf("anti-chain skyline = %d, want 1000", len(got))
	}
}

func TestDCCountsComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	data := randomList(rng, 500, 3, false)
	var c skyline.Count
	skyline.DC(data, &c)
	if c.DominanceTests == 0 {
		t.Error("DC comparisons not counted")
	}
}

func TestKernelDC(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	data := randomList(rng, 200, 4, false)
	got := skyline.KernelDC.Compute(data, nil)
	if !tuple.EqualAsSet(got, skyline.Naive(data)) {
		t.Fatal("KernelDC.Compute wrong")
	}
	if skyline.KernelDC.String() != "dc" {
		t.Errorf("KernelDC.String = %q", skyline.KernelDC.String())
	}
}

func BenchmarkDC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomList(rng, 5000, 4, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.DC(data, nil)
	}
}
