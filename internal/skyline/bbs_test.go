package skyline_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/rtree"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func TestBBSAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(5)
		n := rng.Intn(400)
		data := randomList(rng, n, d, trial%2 == 0)
		got := skyline.BBS(data, nil)
		want := skyline.Naive(data)
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("trial %d (n=%d d=%d): BBS=%d naive=%d", trial, n, d, len(got), len(want))
		}
	}
}

func TestBBSDuplicates(t *testing.T) {
	data := tuple.List{{0.1, 0.9}, {0.1, 0.9}, {0.5, 0.5}, {0.9, 0.9}}
	got := skyline.BBS(data, nil)
	dups := 0
	for _, p := range got {
		if p.Equal(tuple.Tuple{0.1, 0.9}) {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("BBS kept %d duplicates, want 2 (got %v)", dups, got)
	}
	for _, p := range got {
		if p.Equal(tuple.Tuple{0.9, 0.9}) {
			t.Fatal("dominated tuple in BBS result")
		}
	}
}

func TestBBSEmpty(t *testing.T) {
	if got := skyline.BBS(nil, nil); len(got) != 0 {
		t.Errorf("BBS(nil) = %v", got)
	}
}

func TestBBSOverTreeReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	data := randomList(rng, 500, 3, false)
	tree, err := rtree.Bulk(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	a := skyline.BBSOverTree(tree, nil)
	b := skyline.BBSOverTree(tree, nil)
	if !tuple.EqualAsSet(a, b) || !tuple.EqualAsSet(a, skyline.Naive(data)) {
		t.Fatal("BBSOverTree reuse inconsistent")
	}
}

func TestBBSPrunesSubtrees(t *testing.T) {
	// On a correlated dataset most of the tree is dominated: BBS must do
	// dramatically fewer dominance tests than the naive pairwise count.
	rng := rand.New(rand.NewSource(63))
	var data tuple.List
	for i := 0; i < 4000; i++ {
		v := rng.Float64()
		data = append(data, tuple.Tuple{v + rng.Float64()*0.01, v + rng.Float64()*0.01})
	}
	var c skyline.Count
	got := skyline.BBS(data, &c)
	if !tuple.EqualAsSet(got, skyline.Naive(data)) {
		t.Fatal("BBS wrong on correlated data")
	}
	var cb skyline.Count
	skyline.BNL(data, &cb)
	if c.DominanceTests >= cb.DominanceTests {
		t.Errorf("BBS did %d tests, BNL %d — no pruning benefit", c.DominanceTests, cb.DominanceTests)
	}
}

func TestKernelBBS(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	data := randomList(rng, 200, 4, false)
	got := skyline.KernelBBS.Compute(data, nil)
	if !tuple.EqualAsSet(got, skyline.Naive(data)) {
		t.Fatal("KernelBBS.Compute wrong")
	}
	if skyline.KernelBBS.String() != "bbs" {
		t.Errorf("KernelBBS.String = %q", skyline.KernelBBS.String())
	}
}

func BenchmarkBBS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomList(rng, 5000, 4, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.BBS(data, nil)
	}
}
