package skyline_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func randomList(rng *rand.Rand, n, d int, discrete bool) tuple.List {
	l := make(tuple.List, n)
	for i := range l {
		l[i] = make(tuple.Tuple, d)
		for k := range l[i] {
			if discrete {
				l[i][k] = float64(rng.Intn(4))
			} else {
				l[i][k] = rng.Float64()
			}
		}
	}
	return l
}

func TestInsertTuple(t *testing.T) {
	var c skyline.Count
	var w tuple.List
	w = skyline.InsertTuple(tuple.Tuple{5, 5}, w, &c)
	if len(w) != 1 {
		t.Fatalf("window = %v", w)
	}
	// Dominated incoming tuple is rejected.
	w = skyline.InsertTuple(tuple.Tuple{6, 6}, w, &c)
	if len(w) != 1 || !w[0].Equal(tuple.Tuple{5, 5}) {
		t.Fatalf("window after dominated insert = %v", w)
	}
	// Dominating incoming tuple evicts.
	w = skyline.InsertTuple(tuple.Tuple{4, 4}, w, &c)
	if len(w) != 1 || !w[0].Equal(tuple.Tuple{4, 4}) {
		t.Fatalf("window after dominating insert = %v", w)
	}
	// Incomparable tuple coexists.
	w = skyline.InsertTuple(tuple.Tuple{1, 9}, w, &c)
	if len(w) != 2 {
		t.Fatalf("window after incomparable insert = %v", w)
	}
	// A tuple dominating several window members evicts all of them.
	w = skyline.InsertTuple(tuple.Tuple{1, 4}, w, &c)
	if len(w) != 1 || !w[0].Equal(tuple.Tuple{1, 4}) {
		t.Fatalf("window after multi-evict = %v", w)
	}
	if c.DominanceTests == 0 {
		t.Error("comparisons not counted")
	}
}

func TestInsertTupleDuplicates(t *testing.T) {
	var w tuple.List
	w = skyline.InsertTuple(tuple.Tuple{1, 2}, w, nil)
	w = skyline.InsertTuple(tuple.Tuple{1, 2}, w, nil)
	if len(w) != 2 {
		t.Fatalf("duplicates must both be retained, window = %v", w)
	}
	// A dominator still evicts all duplicates.
	w = skyline.InsertTuple(tuple.Tuple{0, 0}, w, nil)
	if len(w) != 1 {
		t.Fatalf("duplicates not evicted, window = %v", w)
	}
}

func TestBNLAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(5)
		n := rng.Intn(120)
		data := randomList(rng, n, d, trial%2 == 0)
		got := skyline.BNL(data, nil)
		want := skyline.Naive(data)
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("trial %d (n=%d d=%d): BNL=%v naive=%v", trial, n, d, got, want)
		}
	}
}

func TestSFSAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(5)
		n := rng.Intn(120)
		data := randomList(rng, n, d, trial%2 == 1)
		got := skyline.SFS(data, nil)
		want := skyline.Naive(data)
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("trial %d (n=%d d=%d): SFS=%v naive=%v", trial, n, d, got, want)
		}
	}
}

func TestSkylineMinimalityAndCompleteness(t *testing.T) {
	// The skyline must contain no dominated tuple (minimality) and every
	// non-dominated tuple (completeness).
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		data := randomList(rng, 80, 3, true)
		sky := skyline.BNL(data, nil)
		for _, s := range sky {
			for _, u := range data {
				if tuple.Dominates(u, s) {
					t.Fatalf("skyline tuple %v dominated by %v", s, u)
				}
			}
		}
		for _, u := range data {
			dominated := false
			for _, v := range data {
				if tuple.Dominates(v, u) {
					dominated = true
					break
				}
			}
			if !dominated && !sky.Contains(u) {
				t.Fatalf("non-dominated tuple %v missing from skyline", u)
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, k := range []skyline.Kernel{skyline.KernelBNL, skyline.KernelSFS} {
		if got := k.Compute(nil, nil); len(got) != 0 {
			t.Errorf("%v: empty input produced %v", k, got)
		}
		one := tuple.List{{3, 4}}
		if got := k.Compute(one, nil); len(got) != 1 || !got[0].Equal(one[0]) {
			t.Errorf("%v: singleton input produced %v", k, got)
		}
	}
}

func TestAllDuplicates(t *testing.T) {
	data := tuple.List{{1, 1}, {1, 1}, {1, 1}}
	for _, k := range []skyline.Kernel{skyline.KernelBNL, skyline.KernelSFS} {
		got := k.Compute(data, nil)
		if len(got) == 0 || !got[0].Equal(tuple.Tuple{1, 1}) {
			t.Errorf("%v: all-duplicates skyline = %v", k, got)
		}
	}
}

func TestTotalOrderChain(t *testing.T) {
	// A fully ordered chain has a single skyline tuple.
	var data tuple.List
	for i := 0; i < 50; i++ {
		data = append(data, tuple.Tuple{float64(i), float64(i)})
	}
	got := skyline.BNL(data, nil)
	if len(got) != 1 || !got[0].Equal(tuple.Tuple{0, 0}) {
		t.Errorf("chain skyline = %v", got)
	}
}

func TestAntiChain(t *testing.T) {
	// A pure anti-chain is its own skyline.
	var data tuple.List
	for i := 0; i < 50; i++ {
		data = append(data, tuple.Tuple{float64(i), float64(49 - i)})
	}
	got := skyline.SFS(data, nil)
	if len(got) != 50 {
		t.Errorf("anti-chain skyline size = %d, want 50", len(got))
	}
}

func TestFilter(t *testing.T) {
	var c skyline.Count
	s := tuple.List{{2, 2}, {0, 5}, {9, 9}}
	by := tuple.List{{1, 1}, {8, 8}}
	got := skyline.Filter(s, by, &c)
	want := tuple.List{{0, 5}}
	if !tuple.EqualAsSet(got, want) {
		t.Errorf("Filter = %v, want %v", got, want)
	}
	if c.DominanceTests == 0 {
		t.Error("Filter comparisons not counted")
	}
	// Filtering by nothing keeps everything.
	if got := skyline.Filter(s.Clone(), nil, nil); len(got) != 3 {
		t.Errorf("Filter by empty = %v", got)
	}
}

func TestSFSDoesNotMutateInput(t *testing.T) {
	data := tuple.List{{3, 3}, {1, 1}, {2, 2}}
	orig := data.Clone()
	skyline.SFS(data, nil)
	for i := range data {
		if !data[i].Equal(orig[i]) {
			t.Fatal("SFS reordered the caller's slice")
		}
	}
}

func TestKernelString(t *testing.T) {
	if skyline.KernelBNL.String() != "bnl" || skyline.KernelSFS.String() != "sfs" {
		t.Error("Kernel.String wrong")
	}
	if skyline.Kernel(9).String() != "unknown" {
		t.Error("unknown Kernel.String wrong")
	}
}

func TestNilCountIsSafe(t *testing.T) {
	data := tuple.List{{1, 2}, {2, 1}}
	skyline.BNL(data, nil)
	skyline.SFS(data, nil)
	skyline.Filter(data.Clone(), data, nil)
}

func TestSFSComparesLessOnSkylineHeavyInput(t *testing.T) {
	// The presorting advantage SFS exists for: on an anti-chain-heavy
	// input, SFS needs no evictions and at most as many comparisons.
	rng := rand.New(rand.NewSource(44))
	var data tuple.List
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		data = append(data, tuple.Tuple{x, 1 - x})
	}
	var cb, cs skyline.Count
	skyline.BNL(data, &cb)
	skyline.SFS(data, &cs)
	if cs.DominanceTests > cb.DominanceTests {
		t.Errorf("SFS did %d comparisons, BNL %d", cs.DominanceTests, cb.DominanceTests)
	}
}

func BenchmarkBNL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomList(rng, 5000, 4, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.BNL(data, nil)
	}
}

func BenchmarkSFS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomList(rng, 5000, 4, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.SFS(data, nil)
	}
}
