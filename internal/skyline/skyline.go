// Package skyline implements the centralized skyline kernels the MapReduce
// algorithms are built from: the block-nested-loop insertion of
// Algorithm 4 (InsertTuple), the BNL skyline [Börzsönyi et al., ICDE 2001],
// the sort-filter-skyline variant with presorting [Chomicki et al., ICDE
// 2003], a naive O(n²) reference used by tests, and the cross-partition
// false-positive elimination of Algorithm 5 (ComparePartitions).
//
// The production dominance hot path lives in the columnar block kernel of
// mrskyline/internal/skyline/window; BNL, SFS and Filter here run on it.
// InsertTuple is retained as the scalar reference the window package's
// differential tests compare against, pair for pair.
package skyline

import (
	"sort"

	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// Count tallies tuple-dominance comparisons. It is an alias of the window
// kernel's counter so scalar and columnar call sites share one accounting
// unit. A nil *Count is valid and counts nothing; tasks aggregate into
// shared counters at the end.
type Count = window.Count

// InsertTuple implements Algorithm 4: it merges tuple t into the local
// skyline window s, dropping t if dominated and evicting any window tuples
// t dominates. It returns the updated window. The window slice is modified
// in place and must not be shared.
//
// The window must be dominance-free (no element dominating another), which
// InsertTuple itself maintains. Duplicate handling follows Definition 1:
// equal tuples do not dominate each other, so duplicates of a skyline
// tuple are all retained.
//
// InsertTuple is the scalar reference implementation of the columnar
// window.Window.Insert: the two must agree on the resulting window —
// contents and order — and on the exact DominanceTests advance for every
// call. The window package's differential tests enforce this.
func InsertTuple(t tuple.Tuple, s tuple.List, c *Count) tuple.List {
	out := s[:0]
	for i, u := range s {
		c.Add(1)
		switch tuple.Compare(u, t) {
		case tuple.DomLeft:
			// u dominates t: discard t. By transitivity and the
			// dominance-free invariant, t cannot have evicted anything
			// before this point, so restoring the untouched tail yields
			// the original window.
			out = append(out, s[i:]...)
			return out
		case tuple.DomRight:
			// t dominates u: evict u.
		default:
			// Incomparable or equal: u stays.
			out = append(out, u)
		}
	}
	return append(out, t)
}

// BNL computes the skyline of data with the block-nested-loop algorithm on
// the columnar window kernel, assuming the window always fits in memory
// (it does in every mapper and reducer of this repository: windows hold
// local skylines only).
func BNL(data tuple.List, c *Count) tuple.List {
	if len(data) == 0 {
		return nil
	}
	w := window.New(len(data[0]))
	for _, t := range data {
		w.Insert(t, c)
	}
	return w.Rows()
}

// SFS computes the skyline with the sort-filter-skyline presorting
// technique: tuples are processed in ascending order of a monotone score
// (the entry sum), which guarantees that no later tuple can dominate an
// earlier one. Each incoming tuple therefore degrades to a pure window
// membership check — it never evicts — halving the comparison work on
// skyline-heavy inputs.
func SFS(data tuple.List, c *Count) tuple.List {
	if len(data) == 0 {
		return nil
	}
	sorted := make(tuple.List, len(data))
	copy(sorted, data)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Sum() < sorted[j].Sum()
	})
	w := window.New(len(data[0]))
	for _, t := range sorted {
		if !w.Dominated(t, c) {
			w.Append(t)
		}
	}
	return w.Rows()
}

// Naive computes the skyline by comparing every pair of tuples. It is the
// oracle used by tests and deliberately has no cleverness to inherit a bug
// from.
func Naive(data tuple.List) tuple.List {
	var out tuple.List
	for i, t := range data {
		dominated := false
		for j, u := range data {
			if i == j {
				continue
			}
			if tuple.Dominates(u, t) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	return out
}

// Filter removes from s every tuple dominated by a tuple of by, returning
// the reduced slice (s is modified in place). It is the inner operation of
// ComparePartitions (Algorithm 5, line 3). The filtering list is
// columnarized once and scanned with the block kernel; callers filtering
// by the same window repeatedly should hold a window.Window and use
// FilterBy directly.
func Filter(s tuple.List, by tuple.List, c *Count) tuple.List {
	if len(s) == 0 || len(by) == 0 {
		return s
	}
	bw := window.FromList(len(by[0]), by)
	out := s[:0]
	for _, t := range s {
		if !bw.Dominated(t, c) {
			out = append(out, t)
		}
	}
	return out
}

// Kernel selects the local-skyline algorithm used inside mappers and
// reducers. The paper's algorithms use BNL (Algorithm 4); SFS is the
// future-work variant evaluated in the ablation benchmarks.
type Kernel int

const (
	// KernelBNL is the block-nested-loop window of Algorithm 4.
	KernelBNL Kernel = iota
	// KernelSFS is sort-filter-skyline with presorting.
	KernelSFS
	// KernelDC is the divide-and-conquer algorithm of Börzsönyi et al.
	KernelDC
	// KernelBBS is branch-and-bound over an R-tree (Papadias et al.).
	KernelBBS
)

// String implements fmt.Stringer for Kernel.
func (k Kernel) String() string {
	switch k {
	case KernelBNL:
		return "bnl"
	case KernelSFS:
		return "sfs"
	case KernelDC:
		return "dc"
	case KernelBBS:
		return "bbs"
	default:
		return "unknown"
	}
}

// Compute runs the selected kernel over data.
func (k Kernel) Compute(data tuple.List, c *Count) tuple.List {
	switch k {
	case KernelSFS:
		return SFS(data, c)
	case KernelDC:
		return DC(data, c)
	case KernelBBS:
		return BBS(data, c)
	default:
		return BNL(data, c)
	}
}
