package core_test

import (
	"strings"
	"testing"

	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func TestHybridCorrectness(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	cfg.PPD = 3
	cfg.NumReducers = 4
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
		data := datagen.Generate(dist, 600, 4, 55)
		want := skyline.Naive(data)
		got, stats, err := core.Hybrid(cfg, data)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("%v: wrong skyline", dist)
		}
		if !strings.HasPrefix(stats.Algorithm, "Hybrid(") {
			t.Errorf("%v: Algorithm = %q", dist, stats.Algorithm)
		}
	}
}

func TestHybridSwitchesByThreshold(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	cfg.PPD = 3
	cfg.NumReducers = 4
	data := datagen.Generate(datagen.AntiCorrelated, 800, 4, 5)

	// Threshold 0 forces the multi-reducer branch (workload estimate is
	// always positive here); an enormous threshold forces single-reducer.
	_, multi, err := core.HybridWithThreshold(cfg, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Algorithm != "Hybrid(MR-GPMRS)" {
		t.Errorf("low threshold chose %q", multi.Algorithm)
	}
	_, single, err := core.HybridWithThreshold(cfg, data, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if single.Algorithm != "Hybrid(MR-GPSRS)" {
		t.Errorf("high threshold chose %q", single.Algorithm)
	}
}

func TestHybridEmpty(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	got, stats, err := core.Hybrid(cfg, nil)
	if err != nil || len(got) != 0 || stats.Algorithm != "Hybrid" {
		t.Errorf("empty hybrid: %v, %+v, %v", got, stats, err)
	}
}
