package core

import (
	"fmt"
	"time"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// GPSRS computes the skyline of data with MR-GPSRS (Section 4): grid
// partitioning, bitstring pruning, per-partition local skylines on the
// mappers (Algorithm 3) and a single reducer assembling the global skyline
// (Algorithm 6).
func GPSRS(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	start := time.Now()
	if len(data) == 0 {
		return nil, &Stats{Algorithm: "MR-GPSRS"}, nil
	}
	prep, err := prepare(&cfg, data)
	if err != nil {
		return nil, nil, err
	}
	return gpsrsRun(cfg, mapreduce.TupleInput(data), prep, start)
}

// GPSRSFromInput is GPSRS over an arbitrary input source (e.g. a
// DFS-resident CSV file read through mapreduce.DFSLineInput with
// CSVRecordDecoder) without materializing the data in memory. d is the
// dimensionality; approxCard is the input cardinality — an estimate
// suffices, and it is only consulted by the Section 3.3 PPD job when
// cfg.PPD is 0.
func GPSRSFromInput(cfg Config, input mapreduce.Input, d, approxCard int) (tuple.List, *Stats, error) {
	start := time.Now()
	prep, err := prepareInput(&cfg, input, d, approxCard)
	if err != nil {
		return nil, nil, err
	}
	return gpsrsRun(cfg, input, prep, start)
}

// gpsrsRun executes the skyline job of MR-GPSRS against an already-prepared
// grid and bitstring; Hybrid reuses it after making its choice.
func gpsrsRun(cfg Config, input mapreduce.Input, prep *BitstringResult, start time.Time) (tuple.List, *Stats, error) {
	stats := statsFromPrep("MR-GPSRS", prep)

	skyStart := time.Now()
	g, bs := prep.Grid, prep.Bitstring
	job := &mapreduce.Job{
		Name:        "mr-gpsrs",
		Input:       input,
		NumMappers:  cfg.mappers(),
		NumReducers: 1,
		MaxAttempts: cfg.MaxAttempts,
		Cache:       mapreduce.Cache{cacheKeyBitstring: bs.Encode()},
		NewMapper:   func() mapreduce.Mapper { return newGPMapper(&cfg, g) },
		NewReducer:  func() mapreduce.Reducer { return newGPSRSReducer(g) },
	}
	cfg.markKind(job, KindGPSRS, skySpec{Grid: gridSpecOf(g), Kernel: int(cfg.Kernel)})
	res, err := cfg.Engine.RunContext(cfg.ctx(), job)
	if err != nil {
		return nil, nil, err
	}
	sky, err := decodeTupleOutput(res.Output)
	if err != nil {
		return nil, nil, err
	}
	finishStats(stats, prep, res, sky, skyStart, start)
	return sky, stats, nil
}

// newGPSRSReducer builds the single reducer of MR-GPSRS (Algorithm 6).
// State: the merged per-partition columnar windows.
func newGPSRSReducer(g *grid.Grid) mapreduce.Reducer {
	var (
		merged = make(winMap)
		cnt    skyline.Count
	)
	return mapreduce.ReducerFuncs{
		ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, _ mapreduce.Emitter) error {
			// One key per partition; values are the mappers' local
			// windows for it (lines 1–6).
			p, err := decodeKey(key)
			if err != nil {
				return err
			}
			if p < 0 || p >= g.NumPartitions() {
				return fmt.Errorf("core: partition key %d out of range", p)
			}
			w := merged.window(p, g.Dim(), ctx.Trace.Metrics())
			for _, v := range values {
				l, _, err := tuple.DecodeList(v)
				if err != nil {
					return err
				}
				for _, t := range l {
					w.Insert(t, &cnt)
				}
			}
			return nil
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			// Lines 7–8: eliminate cross-partition false positives,
			// then output the union (line 9).
			doneMerge := ctx.Trace.Timed(ctx.Track, "merge", obs.CatAlgo, "algo.merge.ns")
			var partCmp int64
			comparePartitions(merged, g, &cnt, &partCmp)
			doneMerge()
			ctx.Counters.SetMax(counterPartCmpReduceMax, partCmp)
			ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
			var scratch []byte
			for _, p := range merged.sortedPartitions() {
				for _, t := range merged[p].Rows() {
					scratch = tuple.AppendEncode(scratch[:0], t)
					emit(nil, scratch)
				}
			}
			return nil
		},
	}
}

// newGPMapper wires localState into the Mapper contract for GPSRS
// (Algorithm 3): the global bitstring is read from the distributed cache on
// the first record, per-partition windows are maintained across the split,
// and Flush emits one record per non-empty partition keyed by partition
// index.
func newGPMapper(cfg *Config, g *grid.Grid) mapreduce.Mapper {
	var state *localState
	return mapreduce.MapperFuncs{
		MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
			if state == nil {
				bs, _, err := bitstring.Decode(ctx.Cache.MustGet(cacheKeyBitstring))
				if err != nil {
					return err
				}
				state = newLocalState(g, bs, cfg.Kernel, ctx.Trace.Metrics())
			}
			t, err := cfg.decode(rec)
			if err != nil || t == nil {
				return err
			}
			return state.add(t)
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			if state == nil {
				return nil // empty split
			}
			doneLocal := ctx.Trace.Timed(ctx.Track, "local-skyline", obs.CatAlgo, "algo.local_skyline.ns")
			s := state.finish()
			doneLocal()
			state.recordCounters(ctx, mapreduce.PhaseMap)
			var scratch []byte
			for _, p := range s.sortedPartitions() {
				scratch = tuple.AppendEncodeList(scratch[:0], s[p].Rows())
				emit(encodeKey(p), scratch)
			}
			return nil
		},
	}
}

// decodeTupleOutput parses reducer output records (one encoded tuple each).
func decodeTupleOutput(recs []mapreduce.Record) (tuple.List, error) {
	out := make(tuple.List, 0, len(recs))
	for _, rec := range recs {
		t, _, err := tuple.Decode(rec.Value)
		if err != nil {
			return nil, fmt.Errorf("core: decoding skyline output: %w", err)
		}
		out = append(out, t)
	}
	return out, nil
}

// statsFromPrep seeds a Stats from the bitstring phase.
func statsFromPrep(algo string, prep *BitstringResult) *Stats {
	return &Stats{
		Algorithm:           algo,
		PPD:                 prep.PPD,
		AutoPPD:             prep.AutoPPD,
		Partitions:          prep.Grid.NumPartitions(),
		NonEmpty:            prep.NonEmpty,
		Surviving:           prep.Bitstring.Count(),
		ShuffleBytes:        prep.Job.Counters.Get(mapreduce.CounterShuffleBytes),
		BitstringTime:       prep.Job.MapTime + prep.Job.ReduceTime,
		SimulatedTotal:      prep.Job.SimulatedTime,
		TaskFailures:        prep.Job.Counters.Get(mapreduce.CounterTaskFailures),
		SpeculativeLaunched: prep.Job.Counters.Get(mapreduce.CounterSpeculativeLaunched),
		SpeculativeWon:      prep.Job.Counters.Get(mapreduce.CounterSpeculativeWon),
		NodeFailures:        prep.Job.Counters.Get(mapreduce.CounterNodeFailures),
		ShuffleCorruptions:  prep.Job.Counters.Get(mapreduce.CounterShuffleCorruptions),
	}
}

// finishStats folds the skyline job's result into the Stats.
func finishStats(st *Stats, prep *BitstringResult, res *mapreduce.Result, sky tuple.List, skyStart, start time.Time) {
	st.SkylineSize = len(sky)
	st.MapperPartCmpMax = res.Counters.GetMax(counterPartCmpMapMax)
	st.ReducerPartCmpMax = res.Counters.GetMax(counterPartCmpReduceMax)
	st.DominanceTests = res.Counters.Get(counterDominanceTests)
	st.ShuffleBytes += res.Counters.Get(mapreduce.CounterShuffleBytes)
	st.ReduceOutputRecords = res.Counters.Get(mapreduce.CounterReduceOutputRecords)
	st.TaskFailures += res.Counters.Get(mapreduce.CounterTaskFailures)
	st.SpeculativeLaunched += res.Counters.Get(mapreduce.CounterSpeculativeLaunched)
	st.SpeculativeWon += res.Counters.Get(mapreduce.CounterSpeculativeWon)
	st.NodeFailures += res.Counters.Get(mapreduce.CounterNodeFailures)
	st.ShuffleCorruptions += res.Counters.Get(mapreduce.CounterShuffleCorruptions)
	st.SkylineTime = time.Since(skyStart)
	st.Total = time.Since(start)
	st.SimulatedTotal += res.SimulatedTime
}
