package core

import (
	"math/rand"
	"testing"

	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

func TestKeyRoundTrip(t *testing.T) {
	for _, id := range []int{0, 1, 255, 1 << 20, 1<<40 + 3} {
		got, err := decodeKey(encodeKey(id))
		if err != nil || got != id {
			t.Errorf("decodeKey(encodeKey(%d)) = %d, %v", id, got, err)
		}
	}
	if _, err := decodeKey([]byte{1, 2, 3}); err == nil {
		t.Error("short key accepted")
	}
}

func TestKeyOrderingMatchesNumeric(t *testing.T) {
	prev := encodeKey(0)
	for id := 1; id < 5000; id += 7 {
		cur := encodeKey(id)
		if string(prev) >= string(cur) {
			t.Fatalf("key ordering broken at %d", id)
		}
		prev = cur
	}
}

// winMapOf columnarizes per-partition tuple lists into a winMap for
// encoding tests.
func winMapOf(dim int, lists map[int]tuple.List) winMap {
	wm := make(winMap, len(lists))
	for p, l := range lists {
		wm[p] = window.FromList(dim, l)
	}
	return wm
}

func TestPartMapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		pm := make(map[int]tuple.List)
		nParts := rng.Intn(10)
		for i := 0; i < nParts; i++ {
			p := rng.Intn(1000)
			l := make(tuple.List, 1+rng.Intn(5))
			for j := range l {
				l[j] = tuple.Tuple{rng.Float64(), rng.Float64()}
			}
			pm[p] = l
		}
		wm := winMapOf(2, pm)
		parts := wm.sortedPartitions()
		enc := encodePartMap(wm, parts)
		dec, err := decodePartMap(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(pm) {
			t.Fatalf("decoded %d partitions, want %d", len(dec), len(pm))
		}
		for p, l := range pm {
			got := dec[p]
			if len(got) != len(l) {
				t.Fatalf("partition %d: %d tuples, want %d", p, len(got), len(l))
			}
			for i := range l {
				if !got[i].Equal(l[i]) {
					t.Fatalf("partition %d tuple %d mismatch", p, i)
				}
			}
		}
	}
}

func TestPartMapSubsetEncoding(t *testing.T) {
	wm := winMapOf(1, map[int]tuple.List{1: {{0.1}}, 2: {{0.2}}, 3: {{0.3}}})
	enc := encodePartMap(wm, []int{1, 3, 99}) // 99 absent: skipped
	dec, err := decodePartMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[1] == nil || dec[3] == nil {
		t.Errorf("subset decode = %v", dec)
	}
}

func TestPartMapEmptyListsSkipped(t *testing.T) {
	wm := winMap{5: window.New(1)}
	enc := encodePartMap(wm, []int{5})
	dec, err := decodePartMap(enc)
	if err != nil || len(dec) != 0 {
		t.Errorf("empty-list encoding: %v, %v", dec, err)
	}
}

func TestPartMapDecodeErrors(t *testing.T) {
	wm := winMapOf(2, map[int]tuple.List{1: {{0.5, 0.5}}})
	enc := encodePartMap(wm, []int{1})
	for i := 0; i < len(enc); i++ {
		if _, err := decodePartMap(enc[:i]); err == nil {
			t.Errorf("truncation to %d bytes accepted", i)
		}
	}
	if _, err := decodePartMap(append(enc, 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := decodePartMap(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestPPDCandidates(t *testing.T) {
	// Full series for small cardinality.
	got := ppdCandidates(100, 2, -1) // nm = 10
	if len(got) != 9 || got[0] != 2 || got[len(got)-1] != 10 {
		t.Errorf("full candidates = %v", got)
	}
	// Thinned series keeps endpoints and stays within the bound.
	got = ppdCandidates(1_000_000, 2, 8) // nm = 1000
	if len(got) > 8 || got[0] != 2 || got[len(got)-1] != 1000 {
		t.Errorf("thinned candidates = %v", got)
	}
	// Default bound applies when 0.
	got = ppdCandidates(1_000_000, 2, 0)
	if len(got) > DefaultMaxPPDCandidates {
		t.Errorf("default-thinned candidates = %v", got)
	}
	// Tiny data: nm = 2, single candidate.
	got = ppdCandidates(5, 3, 0)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("tiny candidates = %v", got)
	}
}
