package core

import (
	"encoding/json"
	"fmt"

	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
)

// Every core job's task functions are pure functions of a small
// serializable parameter set: the grid is rebuilt from (d, ppd, bounds),
// the global bitstring travels in the distributed cache, and GPMRS group
// structure is recomputed in-task from that bitstring. The kinds
// registered here let rpcexec worker processes reconstruct the exact
// mapper/reducer closures the driver built, which is what makes
// process-executor output byte-identical to the in-process engine's. Jobs
// configured with a custom DecodeRecord are not stamped with a kind (a Go
// function cannot be serialized), so they stay in-process-only.

// Job kinds registered by this package.
const (
	KindBitstringGen = "core/bitstring-gen"
	KindPPDSelect    = "core/ppd-select"
	KindGPSRS        = "core/gpsrs"
	KindGPMRS        = "core/gpmrs"
)

func init() {
	mapreduce.RegisterKind(KindBitstringGen, buildBitstringKind)
	mapreduce.RegisterKind(KindPPDSelect, buildPPDSelectKind)
	mapreduce.RegisterKind(KindGPSRS, buildGPSRSKind)
	mapreduce.RegisterKind(KindGPMRS, buildGPMRSKind)
}

// gridSpec is a grid flattened to its construction parameters.
type gridSpec struct {
	D   int       `json:"d"`
	PPD int       `json:"ppd"`
	Lo  []float64 `json:"lo"`
	Hi  []float64 `json:"hi"`
}

func gridSpecOf(g *grid.Grid) gridSpec {
	return gridSpec{D: g.Dim(), PPD: g.PPD(), Lo: g.Lo(), Hi: g.Hi()}
}

func (s gridSpec) build() (*grid.Grid, error) {
	return grid.NewWithBounds(s.D, s.PPD, s.Lo, s.Hi)
}

// skySpec parametrizes the GPSRS/GPMRS skyline jobs.
type skySpec struct {
	Grid   gridSpec `json:"grid"`
	Kernel int      `json:"kernel"`
	Merge  int      `json:"merge,omitempty"` // GPMRS only
}

// bitstringSpec parametrizes the Algorithm 1–2 bitstring job.
type bitstringSpec struct {
	Grid           gridSpec `json:"grid"`
	DisablePruning bool     `json:"disablePruning,omitempty"`
}

// ppdSelectSpec parametrizes the Section 3.3 PPD-selection job.
type ppdSelectSpec struct {
	D              int       `json:"d"`
	Card           int       `json:"card"`
	Lo             []float64 `json:"lo,omitempty"`
	Hi             []float64 `json:"hi,omitempty"`
	Candidates     []int     `json:"candidates"`
	DisablePruning bool      `json:"disablePruning,omitempty"`
}

// markKind stamps a job with its kind and serialized spec when the job is
// reconstructible out of process — i.e. when records are decoded with the
// default binary tuple codec. A custom DecodeRecord closure cannot cross a
// process boundary, so such jobs keep an empty Kind and the process
// executor rejects them with a clear error.
func (c *Config) markKind(job *mapreduce.Job, kind string, spec any) {
	if c.DecodeRecord != nil {
		return
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("core: marshalling %s spec: %v", kind, err)) // specs are plain data; cannot fail
	}
	job.Kind, job.Spec = kind, b
}

func buildGPSRSKind(spec []byte) (*mapreduce.JobFuncs, error) {
	var s skySpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, fmt.Errorf("core: gpsrs spec: %w", err)
	}
	g, err := s.Grid.build()
	if err != nil {
		return nil, err
	}
	cfg := &Config{Kernel: skyline.Kernel(s.Kernel)}
	return &mapreduce.JobFuncs{
		NewMapper:  func() mapreduce.Mapper { return newGPMapper(cfg, g) },
		NewReducer: func() mapreduce.Reducer { return newGPSRSReducer(g) },
	}, nil
}

func buildGPMRSKind(spec []byte) (*mapreduce.JobFuncs, error) {
	var s skySpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, fmt.Errorf("core: gpmrs spec: %w", err)
	}
	g, err := s.Grid.build()
	if err != nil {
		return nil, err
	}
	cfg := &Config{Kernel: skyline.Kernel(s.Kernel), Merge: grid.MergeStrategy(s.Merge)}
	return &mapreduce.JobFuncs{
		NewMapper:  func() mapreduce.Mapper { return newGPMRSMapper(cfg, g) },
		NewReducer: func() mapreduce.Reducer { return newGPMRSReducer(cfg, g) },
		Partition:  gpmrsPartition,
	}, nil
}

func buildBitstringKind(spec []byte) (*mapreduce.JobFuncs, error) {
	var s bitstringSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, fmt.Errorf("core: bitstring spec: %w", err)
	}
	g, err := s.Grid.build()
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	return &mapreduce.JobFuncs{
		NewMapper:  func() mapreduce.Mapper { return newBitstringMapper(cfg, g) },
		NewReducer: func() mapreduce.Reducer { return newBitstringReducer(g, s.DisablePruning) },
	}, nil
}

func buildPPDSelectKind(spec []byte) (*mapreduce.JobFuncs, error) {
	var s ppdSelectSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, fmt.Errorf("core: ppd-select spec: %w", err)
	}
	cfg := &Config{Lo: s.Lo, Hi: s.Hi}
	grids := make(map[int]*grid.Grid, len(s.Candidates))
	for _, j := range s.Candidates {
		g, err := cfg.newGrid(s.D, j)
		if err != nil {
			return nil, fmt.Errorf("core: ppd-select candidate %d: %w", j, err)
		}
		grids[j] = g
	}
	return &mapreduce.JobFuncs{
		NewMapper:  func() mapreduce.Mapper { return newPPDSelectMapper(cfg, s.D, s.Candidates, grids) },
		NewReducer: func() mapreduce.Reducer { return newPPDSelectReducer(s.Card, s.Candidates, grids, s.DisablePruning) },
	}, nil
}
