package core

import (
	"encoding/binary"
	"fmt"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/tuple"
)

// BitstringResult is the outcome of the bitstring-generation phase.
type BitstringResult struct {
	// Grid is the grid the bitstring indexes.
	Grid *grid.Grid
	// Bitstring is the pruned global bitstring (Equation 2), ready for the
	// distributed cache of the skyline job.
	Bitstring *bitstring.Bitstring
	// NonEmpty is the occupied-partition count before pruning.
	NonEmpty int
	// PPD is the grid's partitions-per-dimension.
	PPD int
	// AutoPPD reports whether the Section 3.3 job selected the PPD.
	AutoPPD bool
	// Job carries the MapReduce result (counters, timings).
	Job *mapreduce.Result
}

// BuildBitstring runs the bitstring generation of Section 3.2 (Algorithms
// 1–2) for a fixed grid: every mapper folds its split into a local
// occupancy bitstring, a single reducer ORs the local bitstrings into the
// global one and prunes dominated partitions.
//
// When disablePruning is set the reducer skips the Equation 2 step
// (ablation only).
func BuildBitstring(cfg *Config, g *grid.Grid, input mapreduce.Input, disablePruning bool) (*BitstringResult, error) {
	job := &mapreduce.Job{
		Name:        "bitstring-gen",
		Input:       input,
		NumMappers:  cfg.mappers(),
		NumReducers: 1,
		MaxAttempts: cfg.MaxAttempts,
		NewMapper:   func() mapreduce.Mapper { return newBitstringMapper(cfg, g) },
		NewReducer:  func() mapreduce.Reducer { return newBitstringReducer(g, disablePruning) },
	}
	cfg.markKind(job, KindBitstringGen, bitstringSpec{Grid: gridSpecOf(g), DisablePruning: disablePruning})
	doneExch := cfg.Engine.WallTracer().Timed(obs.DriverTrack, "bitstring-exchange", obs.CatAlgo, "algo.bitstring_exchange.ns")
	res, err := cfg.Engine.RunContext(cfg.ctx(), job)
	doneExch()
	if err != nil {
		return nil, err
	}
	if len(res.Output) != 1 {
		return nil, fmt.Errorf("core: bitstring job produced %d outputs, want 1", len(res.Output))
	}
	bs, _, err := bitstring.Decode(res.Output[0].Value)
	if err != nil {
		return nil, fmt.Errorf("core: decoding global bitstring: %w", err)
	}
	return &BitstringResult{
		Grid:      g,
		Bitstring: bs,
		NonEmpty:  int(res.Counters.Get("bitstring.nonempty")),
		PPD:       g.PPD(),
		Job:       res,
	}, nil
}

// newBitstringMapper builds an Algorithm 1 mapper: fold the split into a
// local occupancy bitstring, emitted on flush.
func newBitstringMapper(cfg *Config, g *grid.Grid) mapreduce.Mapper {
	local := bitstring.New(g.NumPartitions())
	return mapreduce.MapperFuncs{
		MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
			t, err := cfg.decode(rec)
			if err != nil {
				return err
			}
			if t == nil {
				return nil
			}
			if len(t) != g.Dim() {
				return fmt.Errorf("core: tuple dimensionality %d does not match grid d=%d", len(t), g.Dim())
			}
			local.Set(g.Locate(t))
			return nil
		},
		FlushFn: func(_ *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			emit(nil, local.Encode())
			return nil
		},
	}
}

// newBitstringReducer builds the Algorithm 2 reducer: OR the local
// bitstrings into the global one and prune dominated partitions.
func newBitstringReducer(g *grid.Grid, disablePruning bool) mapreduce.Reducer {
	global := bitstring.New(g.NumPartitions())
	return mapreduce.ReducerFuncs{
		ReduceFn: func(_ *mapreduce.TaskContext, _ []byte, values [][]byte, _ mapreduce.Emitter) error {
			for _, v := range values {
				local, _, err := bitstring.Decode(v)
				if err != nil {
					return err
				}
				global.Or(local)
			}
			return nil
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			ctx.Counters.Add("bitstring.nonempty", int64(global.Count()))
			if !disablePruning {
				g.Prune(global)
			}
			ctx.Counters.Add("bitstring.surviving", int64(global.Count()))
			emit(nil, global.Encode())
			return nil
		},
	}
}

// newPPDSelectMapper builds the Section 3.3 mapper: one local occupancy
// bitstring per candidate PPD, emitted keyed by the candidate on flush.
func newPPDSelectMapper(cfg *Config, d int, candidates []int, grids map[int]*grid.Grid) mapreduce.Mapper {
	locals := make(map[int]*bitstring.Bitstring, len(candidates))
	for _, j := range candidates {
		locals[j] = bitstring.New(grids[j].NumPartitions())
	}
	return mapreduce.MapperFuncs{
		MapFn: func(_ *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
			t, err := cfg.decode(rec)
			if err != nil {
				return err
			}
			if t == nil {
				return nil
			}
			if len(t) != d {
				return fmt.Errorf("core: tuple dimensionality %d, want %d", len(t), d)
			}
			for _, j := range candidates {
				locals[j].Set(grids[j].Locate(t))
			}
			return nil
		},
		FlushFn: func(_ *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			for _, j := range candidates {
				emit(encodeKey(j), locals[j].Encode())
			}
			return nil
		},
	}
}

// newPPDSelectReducer builds the Section 3.3 reducer: merge each
// candidate's bitstrings, count ρ, pick the candidate minimizing
// |c/ρ − c/j^d|, prune the winner and emit uvarint(best) ++ bitstring.
func newPPDSelectReducer(card int, candidates []int, grids map[int]*grid.Grid, disablePruning bool) mapreduce.Reducer {
	merged := make(map[int]*bitstring.Bitstring, len(candidates))
	return mapreduce.ReducerFuncs{
		ReduceFn: func(_ *mapreduce.TaskContext, key []byte, values [][]byte, _ mapreduce.Emitter) error {
			j, err := decodeKey(key)
			if err != nil {
				return err
			}
			g, ok := grids[j]
			if !ok {
				return fmt.Errorf("core: unexpected PPD candidate %d", j)
			}
			global := bitstring.New(g.NumPartitions())
			for _, v := range values {
				local, _, err := bitstring.Decode(v)
				if err != nil {
					return err
				}
				global.Or(local)
			}
			merged[j] = global
			return nil
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			d := grids[candidates[0]].Dim()
			rho := make(map[int]int, len(merged))
			for j, bs := range merged {
				rho[j] = bs.Count()
			}
			best := grid.ChoosePPD(card, d, rho)
			bs, ok := merged[best]
			if !ok {
				// No input at all: fall back to an empty PPD-2 grid.
				best = candidates[0]
				bs = bitstring.New(grids[best].NumPartitions())
			}
			ctx.Counters.Add("bitstring.nonempty", int64(bs.Count()))
			if !disablePruning {
				grids[best].Prune(bs)
			}
			ctx.Counters.Add("bitstring.surviving", int64(bs.Count()))
			payload := binary.AppendUvarint(nil, uint64(best))
			payload = bs.AppendEncode(payload)
			emit(nil, payload)
			return nil
		},
	}
}

// ppdCandidates returns the candidate PPD series of Section 3.3 — the
// integers from 2 to nm — optionally thinned to at most maxCandidates
// values spread evenly across the range (endpoints always kept). A
// maxCandidates < 0 keeps the full series; 0 applies the default bound.
func ppdCandidates(card, d, maxCandidates int) []int {
	nm := grid.MaxCandidatePPD(card, d, grid.MaxPartitions)
	full := make([]int, 0, nm-1)
	for j := 2; j <= nm; j++ {
		full = append(full, j)
	}
	if maxCandidates == 0 {
		maxCandidates = DefaultMaxPPDCandidates
	}
	if maxCandidates < 0 || len(full) <= maxCandidates {
		return full
	}
	out := make([]int, 0, maxCandidates)
	seen := make(map[int]bool, maxCandidates)
	for i := 0; i < maxCandidates; i++ {
		// Even spacing over the index range keeps both endpoints.
		idx := i * (len(full) - 1) / (maxCandidates - 1)
		j := full[idx]
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// ChoosePPDAndBitstring runs the extended MapReduce flow of Section 3.3:
// mappers emit one local bitstring per candidate PPD, keyed by the
// candidate; the single reducer merges each candidate's bitstrings, counts
// non-empty partitions ρ, selects the candidate minimizing |c/ρ − c/j^d|,
// prunes the winning global bitstring and returns it. The separate
// bitstring-generation job becomes unnecessary: its work is subsumed here.
func ChoosePPDAndBitstring(cfg *Config, d, card int, input mapreduce.Input, disablePruning bool) (*BitstringResult, error) {
	candidates := ppdCandidates(card, d, cfg.MaxPPDCandidates)
	if len(candidates) == 0 {
		candidates = []int{2}
	}
	doneGrids := cfg.Engine.WallTracer().Timed(obs.DriverTrack, "grid-build", obs.CatAlgo, "algo.grid_build.ns")
	grids := make(map[int]*grid.Grid, len(candidates))
	for _, j := range candidates {
		g, err := cfg.newGrid(d, j)
		if err != nil {
			doneGrids()
			return nil, fmt.Errorf("core: candidate PPD %d: %w", j, err)
		}
		grids[j] = g
	}
	doneGrids()

	job := &mapreduce.Job{
		Name:        "ppd-select",
		Input:       input,
		NumMappers:  cfg.mappers(),
		NumReducers: 1,
		MaxAttempts: cfg.MaxAttempts,
		NewMapper:   func() mapreduce.Mapper { return newPPDSelectMapper(cfg, d, candidates, grids) },
		NewReducer:  func() mapreduce.Reducer { return newPPDSelectReducer(card, candidates, grids, disablePruning) },
	}
	cfg.markKind(job, KindPPDSelect, ppdSelectSpec{
		D: d, Card: card, Lo: cfg.Lo, Hi: cfg.Hi,
		Candidates: candidates, DisablePruning: disablePruning,
	})
	doneExch := cfg.Engine.WallTracer().Timed(obs.DriverTrack, "bitstring-exchange", obs.CatAlgo, "algo.bitstring_exchange.ns")
	res, err := cfg.Engine.RunContext(cfg.ctx(), job)
	doneExch()
	if err != nil {
		return nil, err
	}
	if len(res.Output) != 1 {
		return nil, fmt.Errorf("core: ppd job produced %d outputs, want 1", len(res.Output))
	}
	payload := res.Output[0].Value
	best64, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("core: malformed ppd job output")
	}
	bs, _, err := bitstring.Decode(payload[n:])
	if err != nil {
		return nil, fmt.Errorf("core: decoding chosen bitstring: %w", err)
	}
	best := int(best64)
	return &BitstringResult{
		Grid:      grids[best],
		Bitstring: bs,
		NonEmpty:  int(res.Counters.Get("bitstring.nonempty")),
		PPD:       best,
		AutoPPD:   true,
		Job:       res,
	}, nil
}

// prepare resolves the grid + global bitstring for an in-memory skyline
// run.
func prepare(cfg *Config, data tuple.List) (*BitstringResult, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	return prepareInput(cfg, mapreduce.TupleInput(data), data.Dim(), len(data))
}

// prepareInput resolves the grid + global bitstring for a skyline run over
// an arbitrary input source. A fixed PPD uses the plain Algorithm 1–2 job.
// With PPD 0 and a TPP target, the PPD comes directly from Equation 4
// (n = (c/TPP)^(1/d)); with neither, the full Section 3.3 selection job
// runs. card is the (possibly estimated) input cardinality.
func prepareInput(cfg *Config, input mapreduce.Input, d, card int) (*BitstringResult, error) {
	if err := cfg.validate(d); err != nil {
		return nil, err
	}
	ppd := cfg.PPD
	if ppd == 0 && cfg.TPP > 0 {
		ppd = grid.PPDForTPP(card, d, cfg.TPP, grid.MaxPartitions)
	}
	if ppd != 0 {
		doneGrid := cfg.Engine.WallTracer().Timed(obs.DriverTrack, "grid-build", obs.CatAlgo, "algo.grid_build.ns")
		g, err := cfg.newGrid(d, ppd)
		doneGrid()
		if err != nil {
			return nil, err
		}
		return BuildBitstring(cfg, g, input, cfg.DisablePruning)
	}
	return ChoosePPDAndBitstring(cfg, d, card, input, cfg.DisablePruning)
}
