package core

import (
	"fmt"
	"time"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// GPMRS computes the skyline of data with MR-GPMRS (Section 5): the local
// phase of Algorithm 8 on the mappers, independent partition groups
// (Algorithm 7) merged down to the reducer count (Section 5.4.1), and
// parallel reducers each finishing its groups independently (Algorithm 9),
// with replicated partitions output only by their designated responsible
// group (Section 5.4.2).
func GPMRS(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	start := time.Now()
	if len(data) == 0 {
		return nil, &Stats{Algorithm: "MR-GPMRS"}, nil
	}
	prep, err := prepare(&cfg, data)
	if err != nil {
		return nil, nil, err
	}
	return gpmrsRun(cfg, mapreduce.TupleInput(data), prep, start)
}

// GPMRSFromInput is GPMRS over an arbitrary input source; see
// GPSRSFromInput for the contract of d and approxCard.
func GPMRSFromInput(cfg Config, input mapreduce.Input, d, approxCard int) (tuple.List, *Stats, error) {
	start := time.Now()
	prep, err := prepareInput(&cfg, input, d, approxCard)
	if err != nil {
		return nil, nil, err
	}
	return gpmrsRun(cfg, input, prep, start)
}

// gpmrsRun executes the skyline job of MR-GPMRS against an already-prepared
// grid and bitstring; Hybrid reuses it after making its choice.
func gpmrsRun(cfg Config, input mapreduce.Input, prep *BitstringResult, start time.Time) (tuple.List, *Stats, error) {
	stats := statsFromPrep("MR-GPMRS", prep)
	g, bs := prep.Grid, prep.Bitstring
	r := cfg.reducers()

	// Driver-side view of the deterministic group structure, for stats.
	groups := g.IndependentGroups(bs)
	merged := grid.MergeGroups(groups, r, cfg.Merge)
	stats.Groups = len(groups)
	stats.MergedGroups = len(merged)

	skyStart := time.Now()
	job := &mapreduce.Job{
		Name:        "mr-gpmrs",
		Input:       input,
		NumMappers:  cfg.mappers(),
		NumReducers: r,
		MaxAttempts: cfg.MaxAttempts,
		Cache:       mapreduce.Cache{cacheKeyBitstring: bs.Encode()},
		Partition:   gpmrsPartition,
		NewMapper:   func() mapreduce.Mapper { return newGPMRSMapper(&cfg, g) },
		NewReducer:  func() mapreduce.Reducer { return newGPMRSReducer(&cfg, g) },
	}
	cfg.markKind(job, KindGPMRS, skySpec{Grid: gridSpecOf(g), Kernel: int(cfg.Kernel), Merge: int(cfg.Merge)})
	res, err := cfg.Engine.RunContext(cfg.ctx(), job)
	if err != nil {
		return nil, nil, err
	}
	sky, err := decodeTupleOutput(res.Output)
	if err != nil {
		return nil, nil, err
	}
	finishStats(stats, prep, res, sky, skyStart, start)
	return sky, stats, nil
}

// gpmrsPartition routes merged-group bucket IDs to reduce tasks. Bucket
// IDs are dense in [0, min(r, groups)), so identity routing sends bucket b
// to reduce task b (Algorithm 8's "i % r" with the merge step already
// applied).
func gpmrsPartition(key []byte, r int) int {
	b, err := decodeKey(key)
	if err != nil || b < 0 {
		return 0
	}
	return b % r
}

// newGPMRSMapper implements Algorithm 8: the local phase of Algorithm 3
// (lines 1–10) followed by group generation (line 11) and distribution of
// each merged group's local skylines to its reducer (lines 12–19).
func newGPMRSMapper(cfg *Config, g *grid.Grid) mapreduce.Mapper {
	var (
		state *localState
		bs    *bitstring.Bitstring
	)
	return mapreduce.MapperFuncs{
		MapFn: func(ctx *mapreduce.TaskContext, rec mapreduce.Record, _ mapreduce.Emitter) error {
			if state == nil {
				var err error
				bs, _, err = bitstring.Decode(ctx.Cache.MustGet(cacheKeyBitstring))
				if err != nil {
					return err
				}
				state = newLocalState(g, bs, cfg.Kernel, ctx.Trace.Metrics())
			}
			t, err := cfg.decode(rec)
			if err != nil || t == nil {
				return err
			}
			return state.add(t)
		},
		FlushFn: func(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
			if state == nil {
				return nil // empty split contributes nothing
			}
			doneLocal := ctx.Trace.Timed(ctx.Track, "local-skyline", obs.CatAlgo, "algo.local_skyline.ns")
			s := state.finish()
			doneLocal()
			state.recordCounters(ctx, mapreduce.PhaseMap)
			// Line 11: generate groups — identically on every mapper, as a
			// pure function of the cached bitstring and the reducer count.
			merged := grid.MergeGroups(g.IndependentGroups(bs), ctx.NumReducers, cfg.Merge)
			var scratch []byte
			for _, mg := range merged {
				scratch = appendPartMap(scratch[:0], s, mg.Partitions)
				if len(scratch) <= 1 {
					continue // this mapper holds nothing for the group
				}
				emit(encodeKey(mg.ID), scratch)
			}
			return nil
		},
	}
}

// newGPMRSReducer implements Algorithm 9 for one reduce task. The task's
// key is its merged-group bucket ID; the group structure is recomputed from
// the cached bitstring, which also yields the responsible-partition
// designation of Section 5.4.2.
func newGPMRSReducer(cfg *Config, g *grid.Grid) mapreduce.Reducer {
	var (
		cnt     skyline.Count
		partCmp int64
	)
	return mapreduce.ReducerFuncs{
		ReduceFn: func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emitter) error {
			defer ctx.Trace.Timed(ctx.Track, "merge", obs.CatAlgo, "algo.merge.ns")()
			b, err := decodeKey(key)
			if err != nil {
				return err
			}
			bs, _, err := bitstring.Decode(ctx.Cache.MustGet(cacheKeyBitstring))
			if err != nil {
				return err
			}
			merged := grid.MergeGroups(g.IndependentGroups(bs), ctx.NumReducers, cfg.Merge)
			var mg *grid.MergedGroup
			for i := range merged {
				if merged[i].ID == b {
					mg = &merged[i]
					break
				}
			}
			if mg == nil {
				return fmt.Errorf("core: reducer received unknown group bucket %d", b)
			}
			// Lines 1–8: merge the mappers' windows per partition.
			s := make(winMap)
			for _, v := range values {
				pm, err := decodePartMap(v)
				if err != nil {
					return err
				}
				for p, l := range pm {
					if !mg.HasPartition(p) {
						return fmt.Errorf("core: bucket %d received foreign partition %d", b, p)
					}
					w := s.window(p, g.Dim(), ctx.Trace.Metrics())
					for _, t := range l {
						w.Insert(t, &cnt)
					}
				}
			}
			// Lines 9–10: eliminate false positives within the group.
			comparePartitions(s, g, &cnt, &partCmp)
			// Line 11 + Section 5.4.2: output only designated partitions.
			var scratch []byte
			for _, p := range s.sortedPartitions() {
				if !mg.Responsible[p] {
					continue
				}
				for _, t := range s[p].Rows() {
					scratch = tuple.AppendEncode(scratch[:0], t)
					emit(nil, scratch)
				}
			}
			return nil
		},
		FlushFn: func(ctx *mapreduce.TaskContext, _ mapreduce.Emitter) error {
			ctx.Counters.SetMax(counterPartCmpReduceMax, partCmp)
			ctx.Counters.Add(counterDominanceTests, cnt.DominanceTests)
			return nil
		},
	}
}
