package core

import (
	"fmt"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// localState is the shared mapper-side machinery of Algorithms 3 and 8:
// per-partition local skyline windows (columnar, see the window package)
// gated by the global bitstring, followed by cross-partition
// false-positive elimination.
type localState struct {
	g      *grid.Grid
	bs     *bitstring.Bitstring
	kernel skyline.Kernel
	reg    *obs.Registry
	s      winMap
	// buffered tuples per partition, used by the batch kernels (SFS, D&C),
	// which need the whole partition before running.
	pending map[int]tuple.List
	cnt     skyline.Count
	// partCmp counts partition-wise comparisons (Algorithm 5 line 3
	// executions) performed by this task.
	partCmp int64
}

func newLocalState(g *grid.Grid, bs *bitstring.Bitstring, kernel skyline.Kernel, reg *obs.Registry) *localState {
	ls := &localState{g: g, bs: bs, kernel: kernel, reg: reg, s: make(winMap)}
	if kernel != skyline.KernelBNL {
		ls.pending = make(map[int]tuple.List)
	}
	return ls
}

// add processes one input tuple (Algorithm 3 lines 2–8): locate its
// partition, skip it when the bitstring pruned the partition, otherwise
// fold it into the partition's local skyline window.
func (ls *localState) add(t tuple.Tuple) error {
	if len(t) != ls.g.Dim() {
		return fmt.Errorf("core: tuple dimensionality %d does not match grid d=%d", len(t), ls.g.Dim())
	}
	j := ls.g.Locate(t)
	if !ls.bs.Get(j) {
		return nil
	}
	if ls.pending != nil {
		ls.pending[j] = append(ls.pending[j], t)
		return nil
	}
	ls.s.window(j, ls.g.Dim(), ls.reg).Insert(t, &ls.cnt)
	return nil
}

// finish completes the local phase: materialize batch-kernel windows if
// needed, then run ComparePartitions across the mapper's partitions
// (Algorithm 3 lines 9–10). It returns the resulting window map.
func (ls *localState) finish() winMap {
	if ls.pending != nil {
		for p, data := range ls.pending {
			w := window.FromList(ls.g.Dim(), ls.kernel.Compute(data, &ls.cnt))
			w.Instrument(ls.reg)
			ls.s[p] = w
		}
		ls.pending = nil
	}
	comparePartitions(ls.s, ls.g, &ls.cnt, &ls.partCmp)
	return ls.s
}

// recordCounters folds the task's comparison telemetry into its counter
// set; max-counters give the busiest task per phase (Figure 11), the sum
// counter gives total dominance work.
func (ls *localState) recordCounters(ctx *mapreduce.TaskContext, phase mapreduce.Phase) {
	name := counterPartCmpMapMax
	if phase == mapreduce.PhaseReduce {
		name = counterPartCmpReduceMax
	}
	ctx.Counters.SetMax(name, ls.partCmp)
	ctx.Counters.Add(counterDominanceTests, ls.cnt.DominanceTests)
}

// comparePartitions implements Algorithm 5 applied to every partition of S
// (as Algorithm 3 lines 9–10 and Algorithm 6 lines 7–8 do): for each local
// skyline S_p, remove the tuples dominated by a tuple of any S_pi with
// pi ∈ p.ADR. partCmp is incremented once per (p, pi) pair processed — the
// "critical operation" the Section 6 cost model estimates.
//
// The result is order-independent: a tuple of S_p survives exactly when no
// tuple in any anti-dominating partition's window dominates it, so mutating
// S in place during the loop cannot change the outcome (a window tuple
// removed early is itself dominated by a tuple in a window that also
// filters S_p, by ADR transitivity).
func comparePartitions(s winMap, g *grid.Grid, cnt *skyline.Count, partCmp *int64) {
	parts := s.sortedPartitions()
	for _, p := range parts {
		sp := s[p]
		for _, pi := range parts {
			if pi == p || s[pi].Len() == 0 || !g.InADR(pi, p) {
				continue
			}
			*partCmp++
			sp.FilterBy(s[pi], cnt)
			if sp.Len() == 0 {
				break
			}
		}
	}
	// Drop partitions whose windows were fully eliminated so they are not
	// shuffled as empty payloads.
	for _, p := range parts {
		if s[p].Len() == 0 {
			delete(s, p)
		}
	}
}
