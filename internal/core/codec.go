package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mrskyline/internal/obs"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// Shuffle keys are fixed-width big-endian integers so that the engine's
// lexicographic key ordering coincides with numeric ordering.

// encodeKey renders a non-negative integer id as an 8-byte big-endian key.
func encodeKey(id int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

// decodeKey parses a key produced by encodeKey.
func decodeKey(k []byte) (int, error) {
	if len(k) != 8 {
		return 0, fmt.Errorf("core: malformed key of %d bytes", len(k))
	}
	return int(binary.BigEndian.Uint64(k)), nil
}

// partMap is the shuffle-boundary representation of "a set of local
// skylines S_p for non-empty partitions p": decodePartMap yields plain
// tuple lists, which the receiving task folds into its columnar windows.
type partMap map[int]tuple.List

// winMap is the in-task representation of the same S, held as columnar
// dominance windows (the hot-path layout of Algorithms 3 and 8).
type winMap map[int]*window.Window

// window returns the partition's window, creating (and instrumenting) an
// empty one on first use.
func (wm winMap) window(p, dim int, reg *obs.Registry) *window.Window {
	w := wm[p]
	if w == nil {
		w = window.New(dim)
		w.Instrument(reg)
		wm[p] = w
	}
	return w
}

// sortedPartitions returns the map's keys in ascending order; all emission
// and comparison loops iterate in this order so task output is
// byte-deterministic.
func (wm winMap) sortedPartitions() []int {
	out := make([]int, 0, len(wm))
	for p := range wm {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// appendPartMap appends the serialization of a subset of wm (the partitions
// listed in parts, skipping absent ones) to dst:
//
//	uvarint entryCount | entries × (uvarint partition | tuple list)
func appendPartMap(dst []byte, wm winMap, parts []int) []byte {
	cnt := 0
	for _, p := range parts {
		if wm[p].Len() > 0 {
			cnt++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(cnt))
	for _, p := range parts {
		w := wm[p]
		if w.Len() == 0 {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(p))
		dst = tuple.AppendEncodeList(dst, w.Rows())
	}
	return dst
}

// encodePartMap is appendPartMap into a fresh buffer.
func encodePartMap(wm winMap, parts []int) []byte {
	return appendPartMap(nil, wm, parts)
}

// decodePartMap parses one encodePartMap payload.
func decodePartMap(b []byte) (partMap, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("core: truncated partition map header")
	}
	if cnt > uint64(len(b)) {
		return nil, fmt.Errorf("core: implausible partition map count %d", cnt)
	}
	off := n
	pm := make(partMap, cnt)
	for i := uint64(0); i < cnt; i++ {
		p, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("core: truncated partition id at entry %d", i)
		}
		off += n
		l, m, err := tuple.DecodeList(b[off:])
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", p, err)
		}
		off += m
		pm[int(p)] = l
	}
	if off != len(b) {
		return nil, fmt.Errorf("core: %d trailing bytes after partition map", len(b)-off)
	}
	return pm, nil
}
