// Package core implements the paper's contribution: grid-partitioning-based
// skyline computation in MapReduce.
//
//   - Bitstring generation (Section 3.2, Algorithms 1–2): mappers build
//     local occupancy bitstrings; a single reducer ORs them and prunes
//     dominated partitions (Equation 2).
//   - PPD selection (Section 3.3): mappers emit one local bitstring per
//     candidate partitions-per-dimension value; the reducer merges per
//     candidate and picks the PPD whose achieved tuples-per-partition is
//     closest to the independent-distribution prediction of Equation 3.
//   - MR-GPSRS (Section 4, Algorithms 3–6): mappers compute per-partition
//     local skylines gated by the bitstring and eliminate cross-partition
//     false positives locally; a single reducer merges per-partition
//     windows and repeats the elimination globally.
//   - MR-GPMRS (Section 5, Algorithms 7–9): mappers additionally generate
//     independent partition groups from the bitstring, merge them down to
//     the reducer count (Section 5.4.1), and route each group's local
//     skylines to its reducer; reducers finish their groups independently
//     and in parallel, emitting each replicated partition only from its
//     designated responsible group (Section 5.4.2).
//
// # Configuration and state
//
// Static job configuration (dimensionality, PPD, reducer count, kernel,
// merge strategy) is captured in task closures — the moral equivalent of
// Hadoop's JobConf. The data-dependent global bitstring travels through the
// engine's distributed cache, exactly as the paper prescribes. Tasks keep
// no other shared state.
//
// One deliberate deviation: the paper sends an explicit "designation
// notification" alongside mapper output to tell reducers which of them
// outputs a replicated partition (Section 5.4.2). Because group generation,
// merging and designation are pure deterministic functions of the global
// bitstring and the reducer count, every task here recomputes them and the
// notification is redundant; the outcome (exactly one reducer outputs each
// partition) is identical and the shuffle carries less data.
package core
