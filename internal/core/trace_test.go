package core_test

import (
	"bytes"
	"testing"

	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// tracedConfig builds a config with a fresh tracer attached; plan may be
// nil for a wall-clock run.
func tracedConfig(t *testing.T, plan *mapreduce.FaultPlan) (core.Config, *obs.Tracer) {
	t.Helper()
	c, err := cluster.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c)
	eng.Faults = plan
	tr := obs.New()
	eng.SetTrace(tr)
	return core.Config{Engine: eng, PPD: 4}, tr
}

// exportTrace renders the tracer as Chrome trace JSON and validates it
// against the schema: only M/X events, named tids, non-negative and
// monotonic timestamps per track, spans nested or disjoint.
func exportTrace(t *testing.T, tr *obs.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema validation: %v", err)
	}
	return buf.Bytes()
}

// TestGPMRSWallTraceValidates runs MR-GPMRS end-to-end on the wall clock
// with tracing on: the exported Chrome trace must validate against the
// schema and contain every span category the instrumentation emits, and
// the metrics registry must hold the per-phase histograms.
func TestGPMRSWallTraceValidates(t *testing.T) {
	cfg, tr := tracedConfig(t, nil)
	data := datagen.Generate(datagen.Independent, 400, 3, 7)
	sky, _, err := core.GPMRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.EqualAsSet(sky, skyline.Naive(data)) {
		t.Fatal("tracing changed the skyline")
	}
	exportTrace(t, tr)

	cats := map[string]int{}
	names := map[string]int{}
	for _, s := range tr.Spans() {
		cats[s.Cat]++
		names[s.Name]++
	}
	for _, cat := range []string{obs.CatJob, obs.CatPhase, obs.CatSlot, obs.CatShuffle, obs.CatAlgo} {
		if cats[cat] == 0 {
			t.Errorf("no %s spans recorded; cats = %v", cat, cats)
		}
	}
	for _, name := range []string{"local-skyline", "merge", "bitstring-exchange", "grid-build"} {
		if names[name] == 0 {
			t.Errorf("no %q algo spans recorded", name)
		}
	}

	snap := tr.Metrics().Snapshot()
	hists := map[string]bool{}
	for _, h := range snap.Histograms {
		if h.Count <= 0 {
			t.Errorf("histogram %s has count %d", h.Name, h.Count)
		}
		hists[h.Name] = true
	}
	for _, want := range []string{
		"mr.task.map.ns", "mr.task.reduce.ns", "mr.shuffle.reducer.bytes",
		"mr.spill.map.bytes", "algo.local_skyline.ns", "algo.merge.ns",
		"algo.grid_build.ns", "algo.bitstring_exchange.ns",
	} {
		if !hists[want] {
			t.Errorf("histogram %s missing from snapshot", want)
		}
	}
}

// TestGPMRSVirtualTraceDeterministic runs MR-GPMRS under a FaultPlan —
// the virtual-clock path — twice with identical setups: both exported
// traces must validate and be byte-identical, and must contain only
// virtual spans (no wall-clock slot spans).
func TestGPMRSVirtualTraceDeterministic(t *testing.T) {
	data := datagen.Generate(datagen.Independent, 400, 3, 7)
	run := func() []byte {
		cfg, tr := tracedConfig(t, &mapreduce.FaultPlan{
			Seed:          11,
			CrashRate:     0.15,
			StragglerRate: 0.3,
			CorruptRate:   0.1,
			Speculative:   &mapreduce.SpeculativeConfig{},
		})
		if _, _, err := core.GPMRS(cfg, data); err != nil {
			t.Fatal(err)
		}
		for _, s := range tr.Spans() {
			if s.Cat == obs.CatSlot {
				t.Fatalf("wall-clock slot span %q leaked into a virtual trace", s.Name)
			}
		}
		return exportTrace(t, tr)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical virtual-clock runs exported different traces")
	}
}
