package core

import (
	"time"

	"mrskyline/internal/mapreduce"
	"mrskyline/internal/tuple"
)

// DefaultHybridThreshold is the estimated-skyline-workload level above
// which Hybrid switches from the single reducer of MR-GPSRS to the parallel
// reducers of MR-GPMRS.
const DefaultHybridThreshold = 20000

// Hybrid implements the paper's future-work proposal: "a hybrid method can
// be developed by combining MR-GPSRS and MR-GPMRS [that is] able to switch
// between the two algorithms automatically".
//
// The switch uses only information the bitstring phase already produces, so
// it costs nothing extra. The global bitstring gives the occupied-partition
// count ρ before pruning and the surviving count after; with c input tuples
// the average occupancy is c/ρ, so the tuples that survive partition
// pruning — the upper bound of the work the reducer side will see — number
// about surviving·c/ρ. MR-GPMRS's parallel reducers only pay off when this
// workload is large (the paper: "the fraction of skyline tuples in the data
// set needs to be high enough for the extra overhead to be offset"), so
// Hybrid picks MR-GPMRS when the estimate exceeds threshold (and more than
// one independent group exists to parallelize over), MR-GPSRS otherwise.
func Hybrid(cfg Config, data tuple.List) (tuple.List, *Stats, error) {
	return hybridWithThreshold(cfg, data, DefaultHybridThreshold)
}

// HybridWithThreshold is Hybrid with an explicit switching threshold;
// the ablation benchmarks sweep it.
func HybridWithThreshold(cfg Config, data tuple.List, threshold int64) (tuple.List, *Stats, error) {
	return hybridWithThreshold(cfg, data, threshold)
}

func hybridWithThreshold(cfg Config, data tuple.List, threshold int64) (tuple.List, *Stats, error) {
	start := time.Now()
	if len(data) == 0 {
		return nil, &Stats{Algorithm: "Hybrid"}, nil
	}
	prep, err := prepare(&cfg, data)
	if err != nil {
		return nil, nil, err
	}
	surviving := int64(prep.Bitstring.Count())
	var estWorkload int64
	if prep.NonEmpty > 0 {
		estWorkload = surviving * int64(len(data)) / int64(prep.NonEmpty)
	}
	groups := prep.Grid.IndependentGroups(prep.Bitstring)
	useMulti := estWorkload > threshold && len(groups) >= 2 && cfg.reducers() > 1

	var (
		sky tuple.List
		st  *Stats
	)
	input := mapreduce.TupleInput(data)
	if useMulti {
		sky, st, err = gpmrsRun(cfg, input, prep, start)
	} else {
		sky, st, err = gpsrsRun(cfg, input, prep, start)
	}
	if err != nil {
		return nil, nil, err
	}
	st.Algorithm = "Hybrid(" + st.Algorithm + ")"
	return sky, st, nil
}
