package core_test

import (
	"bytes"
	"testing"

	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/dfs"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// TestFromDFSEndToEnd exercises the full HDFS-like path the paper's jobs
// run on: a CSV dataset written into the simulated distributed file
// system, split per block, parsed by the CSV record decoder inside map
// tasks, and pushed through PPD selection + both skyline algorithms.
func TestFromDFSEndToEnd(t *testing.T) {
	const card, d = 1500, 3
	data := datagen.Generate(datagen.AntiCorrelated, card, d, 19)
	want := skyline.Naive(data)

	var buf bytes.Buffer
	if err := datagen.WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t, 4, 2)
	fsys, err := dfs.New(dfs.Config{
		BlockSize:   2048, // many blocks → many splits → real healing at work
		Replication: 2,
		Nodes:       cfg.Engine.(*mapreduce.Engine).Cluster().Nodes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile("data.csv", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	info, err := fsys.Stat("data.csv")
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocks < 4 {
		t.Fatalf("dataset occupies only %d blocks; splits untested", info.Blocks)
	}

	cfg.DecodeRecord = core.CSVRecordDecoder(d)
	cfg.NumReducers = 3
	input := mapreduce.DFSLineInput{FS: fsys, Path: "data.csv"}

	for _, run := range []struct {
		name string
		fn   func() (tuple.List, *core.Stats, error)
	}{
		{"GPSRS", func() (tuple.List, *core.Stats, error) {
			return core.GPSRSFromInput(cfg, input, d, card)
		}},
		{"GPMRS", func() (tuple.List, *core.Stats, error) {
			return core.GPMRSFromInput(cfg, input, d, card)
		}},
	} {
		got, stats, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("%s from DFS: wrong skyline (%d vs %d)", run.name, len(got), len(want))
		}
		if !stats.AutoPPD {
			t.Errorf("%s: PPD job did not run", run.name)
		}
	}
}

// TestFromDFSWithComments checks that the CSV decoder skips comments and
// blank lines flowing through the engine.
func TestFromDFSWithComments(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	fsys, err := dfs.New(dfs.Config{BlockSize: 16, Replication: 1, Nodes: cfg.Engine.(*mapreduce.Engine).Cluster().Nodes()})
	if err != nil {
		t.Fatal(err)
	}
	content := "# header\n0.1,0.9\n\n0.9,0.1\n# mid comment\n0.5,0.5\n"
	if err := fsys.WriteFile("d.csv", []byte(content)); err != nil {
		t.Fatal(err)
	}
	cfg.DecodeRecord = core.CSVRecordDecoder(2)
	cfg.PPD = 2
	got, _, err := core.GPSRSFromInput(cfg, mapreduce.DFSLineInput{FS: fsys, Path: "d.csv"}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := tuple.List{{0.1, 0.9}, {0.9, 0.1}, {0.5, 0.5}}
	if !tuple.EqualAsSet(got, want) {
		t.Fatalf("skyline = %v, want %v", got, want)
	}
}

// TestFromDFSBadRecordFailsJob checks that a malformed record surfaces as
// a job error rather than being silently dropped.
func TestFromDFSBadRecordFails(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	fsys, _ := dfs.New(dfs.Config{BlockSize: 64, Replication: 1, Nodes: cfg.Engine.(*mapreduce.Engine).Cluster().Nodes()})
	fsys.WriteFile("bad.csv", []byte("0.1,0.2\nnot,numbers,here\n"))
	cfg.DecodeRecord = core.CSVRecordDecoder(2)
	cfg.PPD = 2
	cfg.MaxAttempts = 1
	if _, _, err := core.GPSRSFromInput(cfg, mapreduce.DFSLineInput{FS: fsys, Path: "bad.csv"}, 2, 2); err == nil {
		t.Fatal("malformed record accepted")
	}
	// Wrong arity is also rejected.
	fsys.WriteFile("ragged.csv", []byte("0.1,0.2\n0.3,0.4,0.5\n"))
	if _, _, err := core.GPSRSFromInput(cfg, mapreduce.DFSLineInput{FS: fsys, Path: "ragged.csv"}, 2, 2); err == nil {
		t.Fatal("ragged record accepted")
	}
}
