package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

func testConfig(t testing.TB, nodes, slots int) core.Config {
	t.Helper()
	c, err := cluster.Uniform(nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{Engine: mapreduce.NewEngine(c)}
}

type algo struct {
	name string
	run  func(core.Config, tuple.List) (tuple.List, *core.Stats, error)
}

var algos = []algo{
	{"GPSRS", core.GPSRS},
	{"GPMRS", core.GPMRS},
}

func TestAgainstReferenceAcrossDistributions(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	for _, a := range algos {
		for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
			for _, shape := range []struct{ card, d int }{{300, 2}, {500, 3}, {200, 5}, {400, 7}} {
				name := fmt.Sprintf("%s/%v/c%d-d%d", a.name, dist, shape.card, shape.d)
				t.Run(name, func(t *testing.T) {
					data := datagen.Generate(dist, shape.card, shape.d, 99)
					want := skyline.Naive(data)
					c := cfg
					c.PPD = 3
					got, stats, err := a.run(c, data)
					if err != nil {
						t.Fatal(err)
					}
					if !tuple.EqualAsSet(got, want) {
						t.Fatalf("skyline mismatch: got %d tuples, want %d", len(got), len(want))
					}
					if stats.SkylineSize != len(got) {
						t.Errorf("stats.SkylineSize = %d, want %d", stats.SkylineSize, len(got))
					}
				})
			}
		}
	}
}

func TestAgainstReferenceAcrossShapes(t *testing.T) {
	// Vary mapper count, reducer count, PPD and both algorithm knobs.
	rng := rand.New(rand.NewSource(123))
	base := testConfig(t, 5, 2)
	for trial := 0; trial < 25; trial++ {
		card := 50 + rng.Intn(400)
		d := 1 + rng.Intn(6)
		dist := datagen.Distribution(rng.Intn(3))
		data := datagen.Generate(dist, card, d, int64(trial))
		want := skyline.Naive(data)

		cfg := base
		cfg.NumMappers = 1 + rng.Intn(8)
		cfg.NumReducers = 1 + rng.Intn(8)
		cfg.PPD = 2 + rng.Intn(4)
		if d >= 5 {
			cfg.PPD = 2 + rng.Intn(2)
		}
		cfg.Kernel = skyline.Kernel(rng.Intn(4)) // BNL, SFS, D&C or BBS
		if rng.Intn(2) == 0 {
			cfg.Merge = grid.MergeByCommunication
		}
		if rng.Intn(4) == 0 {
			cfg.DisablePruning = true
		}
		for _, a := range algos {
			got, _, err := a.run(cfg, data)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			if !tuple.EqualAsSet(got, want) {
				t.Fatalf("trial %d %s (card=%d d=%d dist=%v m=%d r=%d ppd=%d kernel=%v merge=%v prune=%v): got %d want %d",
					trial, a.name, card, d, dist, cfg.NumMappers, cfg.NumReducers, cfg.PPD,
					cfg.Kernel, cfg.Merge, !cfg.DisablePruning, len(got), len(want))
			}
		}
	}
}

func TestGPMRSNoDuplicateOutput(t *testing.T) {
	// Replicated partitions must be output exactly once (Section 5.4.2):
	// the result may contain genuine duplicates only if the input does.
	cfg := testConfig(t, 4, 2)
	cfg.PPD = 4
	cfg.NumReducers = 3
	data := datagen.Generate(datagen.AntiCorrelated, 600, 3, 5)
	got, _, err := core.GPMRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, tp := range got {
		seen[tp.String()]++
	}
	for s, n := range seen {
		if n > 1 {
			t.Errorf("tuple %s output %d times", s, n)
		}
	}
}

func TestAutoPPD(t *testing.T) {
	cfg := testConfig(t, 3, 2)
	data := datagen.Generate(datagen.Independent, 2000, 3, 17)
	want := skyline.Naive(data)
	for _, a := range algos {
		got, stats, err := a.run(cfg, data) // PPD = 0 → Section 3.3 job
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("%s: wrong skyline with auto PPD", a.name)
		}
		if !stats.AutoPPD || stats.PPD < 2 {
			t.Errorf("%s: stats = %+v, expected auto-chosen PPD ≥ 2", a.name, stats)
		}
	}
}

func TestAutoPPDFullCandidateSeries(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	cfg.MaxPPDCandidates = -1 // full series of Section 3.3
	data := datagen.Generate(datagen.AntiCorrelated, 300, 2, 23)
	want := skyline.Naive(data)
	got, _, err := core.GPSRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.EqualAsSet(got, want) {
		t.Fatal("wrong skyline with full candidate series")
	}
}

func TestEmptyInput(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	for _, a := range algos {
		got, stats, err := a.run(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(got) != 0 || stats.SkylineSize != 0 {
			t.Errorf("%s: empty input produced %v", a.name, got)
		}
	}
}

func TestSingleTuple(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	cfg.PPD = 2
	data := tuple.List{{0.3, 0.7}}
	for _, a := range algos {
		got, _, err := a.run(cfg, data)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(got) != 1 || !got[0].Equal(data[0]) {
			t.Errorf("%s: singleton skyline = %v", a.name, got)
		}
	}
}

func TestDuplicateTuplesPreserved(t *testing.T) {
	// Equal tuples do not dominate each other, so input duplicates of a
	// skyline point must all survive.
	cfg := testConfig(t, 3, 2)
	cfg.PPD = 3
	cfg.NumMappers = 1 // both duplicates on one mapper keeps the count exact
	data := tuple.List{{0.1, 0.9}, {0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}, {0.8, 0.8}}
	for _, a := range algos {
		got, _, err := a.run(cfg, data)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		dups := 0
		for _, tp := range got {
			if tp.Equal(tuple.Tuple{0.1, 0.9}) {
				dups++
			}
		}
		if dups != 2 {
			t.Errorf("%s: duplicate skyline tuple kept %d times, want 2 (got %v)", a.name, dups, got)
		}
	}
}

func TestIdenticalResultsAcrossReducerCounts(t *testing.T) {
	cfg := testConfig(t, 6, 2)
	cfg.PPD = 4
	data := datagen.Generate(datagen.AntiCorrelated, 800, 4, 31)
	want := skyline.Naive(data)
	for r := 1; r <= 9; r += 2 {
		c := cfg
		c.NumReducers = r
		got, stats, err := core.GPMRS(c, data)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("r=%d: wrong skyline (%d vs %d)", r, len(got), len(want))
		}
		if stats.MergedGroups > r {
			t.Errorf("r=%d: %d merged groups exceed reducer count", r, stats.MergedGroups)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	cfg.PPD = 4
	cfg.NumReducers = 3
	data := datagen.Generate(datagen.AntiCorrelated, 1000, 3, 7)
	_, stats, err := core.GPMRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Algorithm != "MR-GPMRS" {
		t.Errorf("Algorithm = %q", stats.Algorithm)
	}
	if stats.Partitions != 64 {
		t.Errorf("Partitions = %d, want 64", stats.Partitions)
	}
	if stats.NonEmpty == 0 || stats.Surviving == 0 || stats.Surviving > stats.NonEmpty {
		t.Errorf("NonEmpty=%d Surviving=%d", stats.NonEmpty, stats.Surviving)
	}
	if stats.Groups == 0 || stats.MergedGroups == 0 {
		t.Errorf("Groups=%d MergedGroups=%d", stats.Groups, stats.MergedGroups)
	}
	if stats.DominanceTests == 0 {
		t.Error("DominanceTests = 0")
	}
	if stats.ShuffleBytes == 0 {
		t.Error("ShuffleBytes = 0")
	}
	if stats.MapperPartCmpMax == 0 {
		t.Error("MapperPartCmpMax = 0")
	}
	if stats.Total <= 0 || stats.SkylineTime <= 0 || stats.BitstringTime <= 0 {
		t.Errorf("timings: total=%v sky=%v bs=%v", stats.Total, stats.SkylineTime, stats.BitstringTime)
	}
}

func TestPruningReducesSurvivors(t *testing.T) {
	cfg := testConfig(t, 3, 2)
	cfg.PPD = 5
	data := datagen.Generate(datagen.Independent, 5000, 2, 3)
	_, pruned, err := core.GPSRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePruning = true
	_, unpruned, err := core.GPSRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Surviving >= unpruned.Surviving {
		t.Errorf("pruning did not reduce partitions: %d vs %d", pruned.Surviving, unpruned.Surviving)
	}
	// With 5000 uniform tuples in 25 cells, every cell is non-empty and
	// Equation 2 leaves ρrem(5,2) = 25 − 16 = 9.
	if pruned.Surviving != 9 {
		t.Errorf("Surviving = %d, want 9", pruned.Surviving)
	}
	if unpruned.Surviving != 25 {
		t.Errorf("unpruned Surviving = %d, want 25", unpruned.Surviving)
	}
}

func TestConfigValidation(t *testing.T) {
	data := tuple.List{{0.5, 0.5}}
	if _, _, err := core.GPSRS(core.Config{}, data); err == nil {
		t.Error("missing engine accepted")
	}
	cfg := testConfig(t, 1, 1)
	cfg.PPD = 1
	if _, _, err := core.GPSRS(cfg, data); err == nil {
		t.Error("PPD=1 accepted")
	}
	cfg.PPD = -3
	if _, _, err := core.GPMRS(cfg, data); err == nil {
		t.Error("negative PPD accepted")
	}
	cfg.PPD = 2
	if _, _, err := core.GPSRS(cfg, tuple.List{{0.1, 0.2}, {0.1}}); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestFaultToleranceEndToEnd(t *testing.T) {
	// Every first attempt of every task fails; the job chain must still
	// produce the correct skyline via retries.
	cfg := testConfig(t, 4, 2)
	cfg.PPD = 3
	cfg.NumReducers = 3
	cfg.Engine.(*mapreduce.Engine).FaultInjector = func(phase mapreduce.Phase, taskID, attempt int) error {
		if attempt == 1 {
			return fmt.Errorf("injected %v-%d failure", phase, taskID)
		}
		return nil
	}
	data := datagen.Generate(datagen.AntiCorrelated, 400, 3, 13)
	want := skyline.Naive(data)
	for _, a := range algos {
		got, _, err := a.run(cfg, data)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("%s: wrong skyline under fault injection", a.name)
		}
	}
}

func TestHighDimensionalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(t, 4, 2)
	cfg.PPD = 2
	cfg.NumReducers = 4
	data := datagen.Generate(datagen.AntiCorrelated, 300, 10, 3)
	want := skyline.Naive(data)
	for _, a := range algos {
		got, _, err := a.run(cfg, data)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if !tuple.EqualAsSet(got, want) {
			t.Fatalf("%s: wrong skyline at d=10", a.name)
		}
	}
}

func TestAllTuplesIdentical(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	cfg.PPD = 3
	data := make(tuple.List, 20)
	for i := range data {
		data[i] = tuple.Tuple{0.4, 0.4}
	}
	for _, a := range algos {
		got, _, err := a.run(cfg, data)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: all-identical input produced empty skyline", a.name)
		}
		for _, tp := range got {
			if !tp.Equal(tuple.Tuple{0.4, 0.4}) {
				t.Fatalf("%s: unexpected tuple %v", a.name, tp)
			}
		}
	}
}

func TestTPPDrivenPPD(t *testing.T) {
	// With PPD 0 and a TPP target, Equation 4 fixes the grid directly:
	// n = (c/TPP)^(1/d). 3200 tuples at TPP 50 in 2-d → n = 8.
	cfg := testConfig(t, 3, 2)
	cfg.TPP = 50
	data := datagen.Generate(datagen.AntiCorrelated, 3200, 2, 41)
	want := skyline.Naive(data)
	got, stats, err := core.GPSRS(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.EqualAsSet(got, want) {
		t.Fatal("wrong skyline with TPP-driven PPD")
	}
	if stats.PPD != 8 {
		t.Errorf("PPD = %d, want 8 (Equation 4)", stats.PPD)
	}
	if stats.AutoPPD {
		t.Error("Equation 4 path must not report the Section 3.3 job")
	}
}
