package core

import (
	"context"
	"fmt"
	"time"

	"mrskyline/internal/datagen"
	"mrskyline/internal/grid"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// Config parametrizes the grid-partitioning skyline algorithms. The zero
// value of every optional field selects the paper's default behaviour.
type Config struct {
	// Engine executes the MapReduce jobs; required. Any
	// mapreduce.Executor works: the in-process *mapreduce.Engine (the
	// default everywhere) or rpcexec's multi-process backend.
	Engine mapreduce.Executor
	// Ctx, when non-nil, bounds every job of the run: it flows into
	// Executor.RunContext, so a deadline or cancellation aborts
	// queued admission waits and stops task placement. Nil means
	// context.Background().
	Ctx context.Context

	// NumMappers is the map task count (the m of the paper). Defaults to
	// the cluster's total slot count.
	NumMappers int
	// NumReducers is the reduce task count for MR-GPMRS (the r of
	// Algorithm 8). MR-GPSRS always uses a single reducer. Defaults to the
	// number of cluster nodes, matching the paper's "one reducer per node".
	NumReducers int

	// PPD fixes the partitions-per-dimension. Zero selects it with the
	// MapReduce heuristic of Section 3.3.
	PPD int
	// TPP, with PPD 0, derives the grid granularity directly from
	// Equation 4 (n = (c/TPP)^(1/d)) instead of running the Section 3.3
	// selection job. Zero means "no target": PPD 0 then selects via the
	// MapReduce heuristic.
	TPP int
	// MaxPPDCandidates bounds how many candidate PPD values the Section
	// 3.3 job evaluates. The paper's mappers build one bitstring for every
	// integer in [2, c^(1/d)], which is quadratic-plus memory at high
	// cardinality; by default this implementation thins the series to at
	// most DefaultMaxPPDCandidates values spread evenly across the range
	// (always including both endpoints). Set to a negative value to force
	// the full series.
	MaxPPDCandidates int

	// Kernel is the local-skyline algorithm inside tasks (default BNL, the
	// paper's Algorithm 4; SFS is the future-work ablation).
	Kernel skyline.Kernel
	// Merge selects the group-merging policy of Section 5.4.1 (default:
	// computation-cost balancing, the paper's choice).
	Merge grid.MergeStrategy
	// DisablePruning skips the Equation 2 partition pruning on the global
	// bitstring (occupancy only). Ablation switch; never an improvement.
	DisablePruning bool
	// MaxAttempts bounds task attempts per the engine's retry policy.
	MaxAttempts int

	// Lo and Hi bound the data domain per dimension (half-open boxes
	// [Lo, Hi)); both nil selects the unit box [0,1)^d the synthetic
	// generators produce. Tuples outside the box are clamped into boundary
	// grid cells, which degrades pruning but never correctness.
	Lo, Hi []float64

	// DecodeRecord parses one input record into a tuple inside map tasks.
	// Nil selects the binary tuple codec (the format mapreduce.TupleInput
	// produces). CSVRecordDecoder reads comma-separated text, the format
	// DFS-resident datasets use. A (nil, nil) return skips the record
	// (blank lines, comments).
	DecodeRecord func(rec mapreduce.Record) (tuple.Tuple, error)
}

// ctx resolves the run context.
func (c *Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// decode parses a record with the configured decoder.
func (c *Config) decode(rec mapreduce.Record) (tuple.Tuple, error) {
	if c.DecodeRecord != nil {
		return c.DecodeRecord(rec)
	}
	return mapreduce.DecodeTupleRecord(rec)
}

// CSVRecordDecoder returns a DecodeRecord for comma-separated text records
// of dimensionality d; blank and '#'-comment lines are skipped.
func CSVRecordDecoder(d int) func(rec mapreduce.Record) (tuple.Tuple, error) {
	return func(rec mapreduce.Record) (tuple.Tuple, error) {
		t, err := datagen.ParseTupleLine(string(rec.Value))
		if err != nil {
			return nil, err
		}
		if t == nil {
			return nil, nil
		}
		if len(t) != d {
			return nil, fmt.Errorf("core: CSV record has %d fields, want %d", len(t), d)
		}
		return t, nil
	}
}

// DefaultMaxPPDCandidates is the default thinning bound for the PPD
// selection job.
const DefaultMaxPPDCandidates = 16

// validate normalizes and checks the configuration against the data shape.
func (c *Config) validate(d int) error {
	if c.Engine == nil {
		return fmt.Errorf("core: Config.Engine is required")
	}
	if d < 1 {
		return fmt.Errorf("core: dimensionality must be ≥ 1, got %d", d)
	}
	if c.PPD < 0 {
		return fmt.Errorf("core: PPD must be ≥ 0, got %d", c.PPD)
	}
	if c.PPD == 1 {
		return fmt.Errorf("core: PPD 1 creates a single partition; use ≥ 2 or 0 for auto")
	}
	if (c.Lo == nil) != (c.Hi == nil) {
		return fmt.Errorf("core: Lo and Hi must both be set or both nil")
	}
	if c.Lo != nil && (len(c.Lo) != d || len(c.Hi) != d) {
		return fmt.Errorf("core: bounds dimensionality %d/%d does not match data d=%d", len(c.Lo), len(c.Hi), d)
	}
	return nil
}

// newGrid builds a d-dimensional grid with n PPD over the configured
// domain (unit box by default).
func (c *Config) newGrid(d, n int) (*grid.Grid, error) {
	if c.Lo == nil {
		return grid.New(d, n)
	}
	return grid.NewWithBounds(d, n, c.Lo, c.Hi)
}

func (c *Config) mappers() int {
	if c.NumMappers > 0 {
		return c.NumMappers
	}
	return c.Engine.TotalSlots()
}

func (c *Config) reducers() int {
	if c.NumReducers > 0 {
		return c.NumReducers
	}
	return c.Engine.NumNodes()
}

// Stats reports what one algorithm run did: grid shape, pruning
// effectiveness, job counters and phase timings. The experiment harness
// turns these into the paper's figures.
type Stats struct {
	// Algorithm names the algorithm that produced the stats.
	Algorithm string
	// PPD is the grid's partitions-per-dimension (chosen or fixed).
	PPD int
	// AutoPPD reports whether the Section 3.3 job chose the PPD.
	AutoPPD bool
	// Partitions is n^d.
	Partitions int
	// NonEmpty is the number of occupied partitions before pruning.
	NonEmpty int
	// Surviving is the number of partitions left after Equation 2 pruning.
	Surviving int
	// Groups is the number of independent partition groups (MR-GPMRS).
	Groups int
	// MergedGroups is the number of reducer buckets after merging.
	MergedGroups int
	// SkylineSize is the global skyline cardinality.
	SkylineSize int

	// MapperPartCmpMax / ReducerPartCmpMax are the partition-wise
	// comparison counts of the busiest mapper and reducer (the measured
	// series of Figure 11).
	MapperPartCmpMax  int64
	ReducerPartCmpMax int64
	// DominanceTests is the total number of tuple-pair dominance checks
	// across all tasks of the skyline job.
	DominanceTests int64
	// ShuffleBytes is the total key+value volume shuffled by all jobs.
	ShuffleBytes int64
	// ReduceOutputRecords is the skyline job's reduce output record count
	// (mapreduce.CounterReduceOutputRecords). The chaos harness compares it
	// between faulty and fault-free runs: recovery must not duplicate or
	// drop output.
	ReduceOutputRecords int64

	// Fault-injection telemetry, summed over both jobs; all zero unless the
	// engine carries a mapreduce.FaultPlan.

	// TaskFailures counts failed task attempts (injected crashes and task
	// errors).
	TaskFailures int64
	// SpeculativeLaunched / SpeculativeWon count speculative duplicate
	// attempts launched and races the duplicate won.
	SpeculativeLaunched int64
	SpeculativeWon      int64
	// NodeFailures counts whole-node deaths during the run.
	NodeFailures int64
	// ShuffleCorruptions counts shuffle segments refetched after checksum
	// mismatch.
	ShuffleCorruptions int64

	// BitstringTime covers PPD selection and/or bitstring generation;
	// SkylineTime covers the skyline job; Total is their sum. All three
	// are host wall-clock times.
	BitstringTime time.Duration
	SkylineTime   time.Duration
	Total         time.Duration
	// SimulatedTotal is the summed simulated cluster time of both jobs;
	// zero unless the engine carries a mapreduce.SimConfig. The experiment
	// harness plots this, because the paper's runtime curves are cluster
	// makespans, which a single host cannot observe as wall-clock.
	SimulatedTotal time.Duration
}

// Counter names used by the skyline jobs.
const (
	// counterPartCmp accumulates executions of the critical operation of
	// ComparePartitions (line 3 of Algorithm 5) within one task; tasks
	// fold it into the job-level maxima below.
	counterPartCmpMapMax    = "gp.partcmp.map"
	counterPartCmpReduceMax = "gp.partcmp.reduce"
	counterDominanceTests   = "gp.dominance.tests"
)

// cacheKeyBitstring is the distributed-cache entry holding the global
// bitstring for the skyline jobs.
const cacheKeyBitstring = "global-bitstring"
