package spill

import (
	"fmt"
	"os"
)

// ValidateSetup is the one shared check for the budget/dir pair as every
// front end receives it — mrskyline.Options, mrskyline.ServiceConfig,
// rpcexec.Config and the CLI flags all enforce exactly this rule:
//
//   - the budget must not be negative;
//   - a spill directory without a positive budget is a configuration
//     error (the directory would silently never be used);
//   - with a positive budget, a non-empty directory must exist. An empty
//     directory is allowed here because most callers default it to the
//     system temp dir; callers that require an explicit directory (the
//     process executor ships it to workers) check that themselves.
//
// Callers wrap the returned error with their own prefix.
func ValidateSetup(budget int64, dir string) error {
	if budget < 0 {
		return fmt.Errorf("spill budget must be ≥ 0, got %d", budget)
	}
	if dir != "" && budget == 0 {
		return fmt.Errorf("spill dir %q set but spill budget is 0 (set a positive budget to enable spilling)", dir)
	}
	if budget > 0 && dir != "" {
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return fmt.Errorf("spill dir %q is not a usable directory", dir)
		}
	}
	return nil
}
