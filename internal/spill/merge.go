package spill

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// bufSize derives the per-reader buffer size from the budget: a merge
// holds fanIn read buffers plus one write buffer, and together they
// should stay a modest fraction of the budget. Clamped to [4 KiB, 1 MiB].
func (c *Config) bufSize() int {
	f := c.fanIn()
	b := c.Budget / int64(4*(f+1))
	if b < 4<<10 {
		b = 4 << 10
	}
	if b > 1<<20 {
		b = 1 << 20
	}
	return int(b)
}

// Merger streams the k-way merge of sorted runs: records come out in
// (key bytes, run index) order, which — for runs listed in arrival order —
// is exactly the (key, arrival) order of the in-memory shuffle sort.
type Merger struct {
	cfg     *Config
	readers []*RunReader
	keys    [][]byte // current head record per reader; nil = drained
	vals    [][]byte
	advance int // reader whose head was handed out by the last Next
	open    int
}

// NewMerger opens every run. The run list must not exceed the config's
// fan-in; reduce longer lists with MergeTree first.
func NewMerger(cfg *Config, runs []RunFile) (*Merger, error) {
	if len(runs) > cfg.fanIn() {
		return nil, fmt.Errorf("spill: merging %d runs exceeds fan-in %d (run MergeTree first)", len(runs), cfg.fanIn())
	}
	m := &Merger{
		cfg:     cfg,
		readers: make([]*RunReader, len(runs)),
		keys:    make([][]byte, len(runs)),
		vals:    make([][]byte, len(runs)),
		advance: -1,
	}
	bs := cfg.bufSize()
	for i, rf := range runs {
		r, err := OpenRun(rf, bs)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.readers[i] = r
		m.open++
		cfg.Stats.addResident(int64(bs))
		if err := m.pull(i); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// pull advances reader i to its next record.
func (m *Merger) pull(i int) error {
	k, v, err := m.readers[i].Next()
	switch {
	case err == io.EOF:
		m.keys[i], m.vals[i] = nil, nil
		m.readers[i].Close()
		m.readers[i] = nil
		m.open--
		m.cfg.Stats.addResident(-int64(m.cfg.bufSize()))
		return nil
	case err != nil:
		return err
	}
	m.keys[i], m.vals[i] = k, v
	return nil
}

// Next returns the smallest head record. The slices are valid until the
// following Next call. io.EOF signals a clean end of every run.
func (m *Merger) Next() (key, value []byte, err error) {
	if m.advance >= 0 {
		if err := m.pull(m.advance); err != nil {
			return nil, nil, err
		}
		m.advance = -1
	}
	best := -1
	for i, k := range m.keys {
		if m.readers[i] == nil && k == nil {
			continue
		}
		if m.keys[i] == nil {
			continue
		}
		if best == -1 || bytes.Compare(k, m.keys[best]) < 0 {
			best = i
		}
	}
	if best == -1 {
		return nil, nil, io.EOF
	}
	m.advance = best
	return m.keys[best], m.vals[best], nil
}

// Close releases every reader. Safe after partial construction and after
// EOF.
func (m *Merger) Close() {
	for i, r := range m.readers {
		if r != nil {
			r.Close()
			m.readers[i] = nil
			m.open--
			m.cfg.Stats.addResident(-int64(m.cfg.bufSize()))
		}
	}
}

// MergeTree reduces a run list to at most fan-in F runs by repeated
// contiguous F-way merge rounds, each a single streaming pass writing its
// output as a new run into dir (named prefix-r<round>-<group>.run,
// tagged -1). With R input runs the tree completes in ⌈log_F R⌉ − 1
// rounds, after which one final F-way merge can stream straight into the
// consumer — the round-efficient shape of MapReduce merge sorting.
//
// It returns the final run list plus every intermediate file created
// (temps), which the caller removes once the final merge has been
// consumed. Input runs are never deleted: they may be the engine's
// re-execution source of truth.
func MergeTree(cfg *Config, dir, prefix string, runs []RunFile) (final []RunFile, temps []string, err error) {
	f := cfg.fanIn()
	round := 0
	for len(runs) > f {
		var next []RunFile
		for lo := 0; lo < len(runs); lo += f {
			hi := lo + f
			if hi > len(runs) {
				hi = len(runs)
			}
			if hi-lo == 1 {
				// A lone trailing run passes through unchanged; its position
				// keeps the arrival order intact.
				next = append(next, runs[lo])
				continue
			}
			path := filepath.Join(dir, prefix+"-r"+strconv.Itoa(round)+"-"+strconv.Itoa(lo/f)+".run")
			rf, merr := mergeOnce(cfg, path, runs[lo:hi])
			if merr != nil {
				removePaths(temps)
				return nil, nil, merr
			}
			temps = append(temps, path)
			next = append(next, rf)
		}
		runs = next
		round++
		if s := cfg.Stats; s != nil {
			s.MergeRounds.Add(1)
		}
		cfg.Metrics.Count("mr.spill.merge.rounds", 1)
	}
	cfg.Metrics.Gauge("mr.spill.merge.fanin", int64(f))
	return runs, temps, nil
}

// mergeOnce merges one contiguous group of runs into a single new run.
func mergeOnce(cfg *Config, path string, group []RunFile) (RunFile, error) {
	m, err := NewMerger(cfg, group)
	if err != nil {
		return RunFile{}, err
	}
	defer m.Close()
	rw, err := createRun(path, -1)
	if err != nil {
		return RunFile{}, err
	}
	cfg.Stats.addResident(int64(cfg.bufSize()))
	defer cfg.Stats.addResident(-int64(cfg.bufSize()))
	for {
		k, v, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rw.abort()
			return RunFile{}, err
		}
		if err := rw.add(k, v); err != nil {
			rw.abort()
			return RunFile{}, err
		}
	}
	rf, err := rw.finish()
	if err != nil {
		return RunFile{}, err
	}
	if s := cfg.Stats; s != nil {
		s.RunsWritten.Add(1)
		s.SpillBytes.Add(rf.PayloadBytes)
	}
	cfg.Metrics.Count("mr.spill.runs", 1)
	cfg.Metrics.Count("mr.spill.bytes", rf.PayloadBytes)
	return rf, nil
}

// Groups streams a merged run list as per-key groups in key order: the
// reduce-side view of a spilled shuffle. Each group's values live in one
// arena reused across groups, so resident memory is bounded by the merge
// buffers plus the largest single group.
type Groups struct {
	m    *Merger
	done bool

	// Pending first record of the next group (read-ahead past a key
	// boundary); owned copies in next{Key,Val}Buf.
	pending bool
	nextKey []byte
	nextVal []byte

	key  []byte
	vals [][]byte
	aren []byte
}

// NewGroups opens the group stream over runs (at most fan-in of them).
func NewGroups(cfg *Config, runs []RunFile) (*Groups, error) {
	m, err := NewMerger(cfg, runs)
	if err != nil {
		return nil, err
	}
	return &Groups{m: m}, nil
}

// Next returns the next key group. Returned slices are valid until the
// following Next call; ok is false when the stream is cleanly drained.
func (g *Groups) Next() (key []byte, vals [][]byte, ok bool, err error) {
	if g.done {
		return nil, nil, false, nil
	}
	g.aren = g.aren[:0]
	g.vals = g.vals[:0]
	if !g.pending {
		k, v, err := g.m.Next()
		if err == io.EOF {
			g.done = true
			g.m.Close()
			return nil, nil, false, nil
		}
		if err != nil {
			g.m.Close()
			return nil, nil, false, err
		}
		g.nextKey = append(g.nextKey[:0], k...)
		g.nextVal = append(g.nextVal[:0], v...)
		g.pending = true
	}
	g.key = append(g.key[:0], g.nextKey...)
	g.appendVal(g.nextVal)
	g.pending = false
	for {
		k, v, err := g.m.Next()
		if err == io.EOF {
			g.done = true
			g.m.Close()
			break
		}
		if err != nil {
			g.m.Close()
			return nil, nil, false, err
		}
		if !bytes.Equal(k, g.key) {
			g.nextKey = append(g.nextKey[:0], k...)
			g.nextVal = append(g.nextVal[:0], v...)
			g.pending = true
			break
		}
		g.appendVal(v)
	}
	// Arena growth may have reallocated; rebuild value views against the
	// final backing array.
	vals = make([][]byte, len(g.vals))
	copy(vals, g.vals)
	return g.key, vals, true, nil
}

// appendVal copies one value into the group arena and records its span.
func (g *Groups) appendVal(v []byte) {
	off := len(g.aren)
	g.aren = append(g.aren, v...)
	end := off + len(v)
	if len(v) == 0 {
		g.vals = append(g.vals, nil)
		return
	}
	g.vals = append(g.vals, g.aren[off:end:end])
}

// Close releases the underlying merger; safe to call at any point.
func (g *Groups) Close() {
	if !g.done {
		g.m.Close()
		g.done = true
	}
}

// removeRuns deletes run files, ignoring errors (best-effort cleanup).
func removeRuns(runs []RunFile) {
	for _, r := range runs {
		os.Remove(r.Path)
	}
}

// removePaths deletes files, ignoring errors.
func removePaths(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}
