package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(&Config{Dir: t.TempDir(), Budget: 1}).Enabled() {
		t.Error("budgeted config reports disabled")
	}
}

func TestCorruptErrorMessage(t *testing.T) {
	err := &CorruptError{Path: "/runs/m0.run", Tag: 7}
	msg := err.Error()
	if !strings.Contains(msg, "/runs/m0.run") || !strings.Contains(msg, "7") {
		t.Errorf("Error() = %q, want path and tag included", msg)
	}
}

func TestWriterLenAndDiscard(t *testing.T) {
	stats := &Stats{}
	cfg := &Config{Dir: t.TempDir(), Budget: 64, FanIn: 2, Stats: stats}
	w := NewWriter(cfg, "d", 3)
	for i := 0; i < 20; i++ {
		if err := w.Add([]byte(fmt.Sprintf("key%02d", i)), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() == 0 {
		t.Error("Len() = 0 with records buffered")
	}
	if stats.RunsWritten.Load() == 0 {
		t.Fatal("tiny budget wrote no runs before Discard")
	}
	w.Discard()
	if w.Len() != 0 {
		t.Errorf("Len() = %d after Discard", w.Len())
	}
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("Discard left %d run files on disk", len(ents))
	}
}

// TestMergerCloseMidStream: closing before the merge is drained releases
// every open run reader and is idempotent.
func TestMergerCloseMidStream(t *testing.T) {
	cfg := &Config{Dir: t.TempDir(), Budget: 32, FanIn: 4, Stats: &Stats{}}
	w := NewWriter(cfg, "m", 0)
	for i := 0; i < 30; i++ {
		if err := w.Add([]byte(fmt.Sprintf("k%03d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(cfg, runs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	m.Close()
	m.Close() // idempotent

	g, err := NewGroups(cfg, runs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := g.Next(); !ok || err != nil {
		t.Fatalf("Groups first Next: ok=%v err=%v", ok, err)
	}
	g.Close()
	g.Close()
	removeRuns(runs)
	if matches, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.run")); len(matches) != 0 {
		t.Errorf("removeRuns left %d files", len(matches))
	}
}

// TestWriterEmptyFinish: a writer that never saw a record produces no runs.
func TestWriterEmptyFinish(t *testing.T) {
	cfg := &Config{Dir: t.TempDir(), Budget: 64, Stats: &Stats{}}
	runs, err := NewWriter(cfg, "e", 0).Finish()
	if err != nil {
		t.Fatal(err)
	}
	if runs != nil {
		t.Errorf("empty writer produced %d runs", len(runs))
	}
}

// TestCreateRunBadDir: run creation into a missing directory fails cleanly.
func TestCreateRunBadDir(t *testing.T) {
	cfg := &Config{Dir: filepath.Join(t.TempDir(), "missing", "sub"), Budget: 8, Stats: &Stats{}}
	w := NewWriter(cfg, "x", 0)
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = w.Add([]byte("aaaa"), []byte("bbbb"))
	}
	if err == nil {
		_, err = w.Finish()
	}
	if err == nil {
		t.Error("spilling into a missing directory succeeded")
	}
}

// TestLargeRecordsRoundtrip exercises multi-byte uvarint length prefixes
// (lengths >= 128) through the writer, merge, and checksum verification.
func TestLargeRecordsRoundtrip(t *testing.T) {
	cfg := &Config{Dir: t.TempDir(), Budget: 4096, FanIn: 2, Stats: &Stats{}}
	w := NewWriter(cfg, "big", 0)
	key := bytesRepeat('k', 200)
	val := bytesRepeat('v', 1000)
	for i := 0; i < 8; i++ {
		if err := w.Add(append(key, byte('a'+i)), val); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	final, temps, err := MergeTree(cfg, cfg.Dir, "bigmerge", runs)
	if err != nil {
		t.Fatal(err)
	}
	defer removePaths(temps)
	g, err := NewGroups(cfg, final)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	n := 0
	for {
		k, vals, ok, err := g.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		if len(k) != 201 || len(vals) != 1 || len(vals[0]) != 1000 {
			t.Fatalf("group shape: klen=%d groups=%d", len(k), len(vals))
		}
		n++
	}
	if n != 8 {
		t.Errorf("streamed %d groups, want 8", n)
	}
}

func bytesRepeat(b byte, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return s
}
