package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// Run file layout. Records are length-prefixed with the same uvarint
// framing shuffle segments use on the rpcexec wire, bracketed by a fixed
// header and trailer:
//
//	magic   8 bytes  "SKYRUN1\n"
//	records          uvarint(klen) key uvarint(vlen) value ...
//	count   8 bytes  little-endian record count
//	frames  8 bytes  little-endian byte length of the records region
//	sum     8 bytes  little-endian FNV-1a over everything above
//
// The checksum covers the magic, every record byte and the two trailer
// counts, and is verified incrementally as a reader streams the file: a
// flipped bit anywhere surfaces as *CorruptError by the time the run is
// drained, before its consumer commits anything derived from it.

const (
	runMagic       = "SKYRUN1\n"
	runTrailerSize = 24
)

// RunFile describes one sorted run on disk.
type RunFile struct {
	// Path is the file location.
	Path string
	// Tag identifies the run's producer (the engine stores the map-task
	// id); it travels into CorruptError so consumers can re-execute the
	// producer. Intermediate merge outputs carry -1.
	Tag int
	// Records is the record count.
	Records int64
	// PayloadBytes is the key+value volume (framing excluded) — the
	// quantity shuffle counters measure.
	PayloadBytes int64
	// FrameBytes is the byte length of the records region.
	FrameBytes int64
}

// runWriter streams one run file, hashing as it writes.
type runWriter struct {
	f       *os.File
	bw      *bufio.Writer
	h       io.Writer // bw tee'd into the FNV hash
	sum     interface{ Sum64() uint64 }
	rf      RunFile
	scratch [2 * binary.MaxVarintLen64]byte
}

// createRun opens a new run file at path.
func createRun(path string, tag int) (*runWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("spill: creating run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	h := fnv.New64a()
	w := &runWriter{f: f, bw: bw, h: io.MultiWriter(bw, h), sum: h, rf: RunFile{Path: path, Tag: tag}}
	if _, err := w.h.Write([]byte(runMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// add appends one framed record.
func (w *runWriter) add(key, value []byte) error {
	n := binary.PutUvarint(w.scratch[:], uint64(len(key)))
	if _, err := w.h.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.h.Write(key); err != nil {
		return err
	}
	n = binary.PutUvarint(w.scratch[:], uint64(len(value)))
	if _, err := w.h.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.h.Write(value); err != nil {
		return err
	}
	w.rf.Records++
	w.rf.PayloadBytes += int64(len(key) + len(value))
	w.rf.FrameBytes += int64(uvarintLen(uint64(len(key))) + len(key) + uvarintLen(uint64(len(value))) + len(value))
	return nil
}

// finish writes the trailer and closes the file, returning the completed
// descriptor. The file is removed on error.
func (w *runWriter) finish() (RunFile, error) {
	rf, err := w.finishInner()
	if err != nil {
		w.f.Close()
		os.Remove(w.rf.Path)
		return RunFile{}, err
	}
	return rf, nil
}

func (w *runWriter) finishInner() (RunFile, error) {
	var buf [runTrailerSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(w.rf.Records))
	binary.LittleEndian.PutUint64(buf[8:], uint64(w.rf.FrameBytes))
	if _, err := w.h.Write(buf[:16]); err != nil {
		return RunFile{}, err
	}
	binary.LittleEndian.PutUint64(buf[16:], w.sum.Sum64())
	if _, err := w.bw.Write(buf[16:24]); err != nil {
		return RunFile{}, err
	}
	if err := w.bw.Flush(); err != nil {
		return RunFile{}, err
	}
	if err := w.f.Close(); err != nil {
		return RunFile{}, err
	}
	return w.rf, nil
}

// abort discards a partially written run.
func (w *runWriter) abort() {
	w.f.Close()
	os.Remove(w.rf.Path)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// RunReader replays one run file in record order, verifying the checksum
// incrementally; the final Next that returns io.EOF has proven the whole
// file intact (or returned *CorruptError).
type RunReader struct {
	rf        RunFile
	f         *os.File
	br        *bufio.Reader
	h         interface{ Sum64() uint64 }
	hw        io.Writer
	remaining int64 // record-region bytes left
	read      int64 // records consumed
	buf       []byte
	wantSum   uint64
	scratch   [8]byte
}

// OpenRun opens a run file for streaming. bufSize shapes the read buffer
// (≤ 0 uses 64 KiB).
func OpenRun(rf RunFile, bufSize int) (*RunReader, error) {
	if bufSize <= 0 {
		bufSize = 1 << 16
	}
	f, err := os.Open(rf.Path)
	if err != nil {
		return nil, fmt.Errorf("spill: opening run: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &RunReader{rf: rf, f: f}
	// The trailer is read up front: the counts locate the record region
	// and the stored checksum is compared once streaming reaches the end.
	if st.Size() < int64(len(runMagic))+runTrailerSize {
		f.Close()
		return nil, &CorruptError{Path: rf.Path, Tag: rf.Tag}
	}
	var trailer [runTrailerSize]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-runTrailerSize); err != nil {
		f.Close()
		return nil, err
	}
	count := int64(binary.LittleEndian.Uint64(trailer[0:]))
	frames := int64(binary.LittleEndian.Uint64(trailer[8:]))
	r.wantSum = binary.LittleEndian.Uint64(trailer[16:])
	if frames != st.Size()-int64(len(runMagic))-runTrailerSize || count < 0 {
		f.Close()
		return nil, &CorruptError{Path: rf.Path, Tag: rf.Tag}
	}
	r.remaining = frames
	r.rf.Records = count
	r.rf.FrameBytes = frames
	h := fnv.New64a()
	r.h, r.hw = h, h
	r.br = bufio.NewReaderSize(f, bufSize)
	var magic [len(runMagic)]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil || string(magic[:]) != runMagic {
		f.Close()
		return nil, &CorruptError{Path: rf.Path, Tag: rf.Tag}
	}
	r.hw.Write(magic[:])
	return r, nil
}

// Next returns the next record. The returned slices are valid until the
// following Next call. At end of file the checksum is verified: a clean
// end returns io.EOF, a mismatch returns *CorruptError.
func (r *RunReader) Next() (key, value []byte, err error) {
	if r.remaining == 0 {
		return nil, nil, r.verify()
	}
	// Reads interleave with hash updates in exact file order (klen prefix,
	// key, vlen prefix, value) so the incremental sum matches the writer's.
	klen, err := r.readLen()
	if err != nil {
		return nil, nil, err
	}
	if cap(r.buf) < klen {
		r.buf = make([]byte, klen)
	}
	r.buf = r.buf[:klen]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return nil, nil, r.corrupt()
	}
	r.hw.Write(r.buf)
	r.remaining -= int64(klen)
	vlen, err := r.readLen()
	if err != nil {
		return nil, nil, err
	}
	need := klen + vlen
	if cap(r.buf) < need {
		grown := make([]byte, need)
		copy(grown, r.buf)
		r.buf = grown
	}
	r.buf = r.buf[:need]
	if _, err := io.ReadFull(r.br, r.buf[klen:]); err != nil {
		return nil, nil, r.corrupt()
	}
	r.hw.Write(r.buf[klen:])
	r.remaining -= int64(vlen)
	r.read++
	if r.read > r.rf.Records {
		return nil, nil, r.corrupt()
	}
	return r.buf[:klen:klen], r.buf[klen:need:need], nil
}

// readLen reads one uvarint length prefix, bounded by the remaining
// record-region bytes.
func (r *RunReader) readLen() (int, error) {
	n := 0
	for shift := uint(0); ; shift += 7 {
		if r.remaining == 0 || shift > 63 {
			return 0, r.corrupt()
		}
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, r.corrupt()
		}
		r.scratch[0] = b
		r.hw.Write(r.scratch[:1])
		r.remaining--
		n |= int(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if n < 0 || int64(n) > r.remaining {
		return 0, r.corrupt()
	}
	return n, nil
}

// verify checks the trailer checksum once the record region is drained.
func (r *RunReader) verify() error {
	if r.read != r.rf.Records {
		return r.corrupt()
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.rf.Records))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.rf.FrameBytes))
	r.hw.Write(buf[:])
	if r.h.Sum64() != r.wantSum {
		return r.corrupt()
	}
	return io.EOF
}

func (r *RunReader) corrupt() error {
	return &CorruptError{Path: r.rf.Path, Tag: r.rf.Tag}
}

// Close releases the underlying file.
func (r *RunReader) Close() error { return r.f.Close() }
