package spill

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"slices"
)

// arenaRec locates one record inside a Writer's arena (key at off, value
// immediately after), mirroring the engine's bucket-arena layout.
type arenaRec struct {
	off  int
	klen int32
	vlen int32
}

// arenaRecOverhead is the bookkeeping cost per buffered record charged
// against the budget alongside the payload bytes.
const arenaRecOverhead = 16

// Writer accumulates records and flushes a sorted run file whenever its
// resident bytes (payload plus per-record bookkeeping) exceed the
// config's budget. Runs cut this way are totally ordered in arrival time
// — every record of run i was added before every record of run i+1 — so a
// merge that breaks key ties by run index reproduces the global
// (key, arrival order) of a single in-memory sort.
//
// A Writer is not safe for concurrent use; the engine drives one writer
// per shuffle segment.
type Writer struct {
	cfg    *Config
	prefix string
	tag    int
	seq    int

	data []byte
	recs []arenaRec
	runs []RunFile
}

// NewWriter creates a writer whose runs are named prefix-<seq>.run inside
// cfg.Dir and tagged with tag (the producer identity carried into
// CorruptError).
func NewWriter(cfg *Config, prefix string, tag int) *Writer {
	return &Writer{cfg: cfg, prefix: prefix, tag: tag}
}

// resident is the writer's budget charge.
func (w *Writer) resident() int64 {
	return int64(len(w.data)) + int64(len(w.recs))*arenaRecOverhead
}

// Add buffers one record (bytes are copied, so callers may reuse their
// scratch), spilling a sorted run first if the arena is over budget.
func (w *Writer) Add(key, value []byte) error {
	if w.cfg.Budget > 0 && len(w.recs) > 0 && w.resident()+int64(len(key)+len(value))+arenaRecOverhead > w.cfg.Budget {
		if err := w.spill(); err != nil {
			return err
		}
	}
	off := len(w.data)
	w.data = append(w.data, key...)
	w.data = append(w.data, value...)
	w.recs = append(w.recs, arenaRec{off: off, klen: int32(len(key)), vlen: int32(len(value))})
	w.cfg.Stats.addResident(int64(len(key)+len(value)) + arenaRecOverhead)
	return nil
}

// Len returns the number of records currently buffered in memory.
func (w *Writer) Len() int { return len(w.recs) }

func (w *Writer) key(i int) []byte {
	r := w.recs[i]
	end := r.off + int(r.klen)
	return w.data[r.off:end:end]
}

func (w *Writer) value(i int) []byte {
	r := w.recs[i]
	lo := r.off + int(r.klen)
	end := lo + int(r.vlen)
	return w.data[lo:end:end]
}

// spill sorts the arena (stable: key bytes, then arrival order) and
// writes it as one run file.
func (w *Writer) spill() error {
	idx := w.sortedIndex()
	path := filepath.Join(w.cfg.Dir, fmt.Sprintf("%s-%d.run", w.prefix, w.seq))
	w.seq++
	rw, err := createRun(path, w.tag)
	if err != nil {
		return err
	}
	for _, i := range idx {
		if err := rw.add(w.key(int(i)), w.value(int(i))); err != nil {
			rw.abort()
			return err
		}
	}
	rf, err := rw.finish()
	if err != nil {
		return err
	}
	w.runs = append(w.runs, rf)
	w.cfg.Stats.addResident(-w.resident())
	if s := w.cfg.Stats; s != nil {
		s.RunsWritten.Add(1)
		s.SpillBytes.Add(rf.PayloadBytes)
	}
	w.cfg.Metrics.Count("mr.spill.runs", 1)
	w.cfg.Metrics.Count("mr.spill.bytes", rf.PayloadBytes)
	w.data, w.recs = w.data[:0], w.recs[:0]
	return nil
}

// Finish flushes any buffered records as a final run and returns every
// run written, in arrival order. A writer that never received a record
// returns nil. The writer must not be reused afterwards.
func (w *Writer) Finish() ([]RunFile, error) {
	if len(w.recs) > 0 {
		if err := w.spill(); err != nil {
			return nil, err
		}
	}
	w.data = nil
	w.recs = nil
	return w.runs, nil
}

// Discard drops buffered state and deletes any runs already written; used
// on error paths.
func (w *Writer) Discard() {
	w.cfg.Stats.addResident(-w.resident())
	w.data, w.recs = nil, nil
	removeRuns(w.runs)
	w.runs = nil
}

// sortKey pairs a record index with the big-endian packing of its key's
// first eight bytes plus the key length — the same prefix trick the
// engine's in-memory shuffle sorts with, so spilled and resident paths
// order identically.
type sortKey struct {
	prefix uint64
	klen   int32
	idx    int32
}

func keyPrefix(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var p uint64
	for i, b := range k {
		p |= uint64(b) << (56 - 8*i)
	}
	return p
}

// sortedIndex orders the arena's records by key bytes, ties broken by
// arrival order.
func (w *Writer) sortedIndex() []int32 {
	sk := make([]sortKey, len(w.recs))
	for i := range sk {
		sk[i] = sortKey{prefix: keyPrefix(w.key(i)), klen: w.recs[i].klen, idx: int32(i)}
	}
	slices.SortFunc(sk, func(x, y sortKey) int {
		if x.prefix != y.prefix {
			return cmp.Compare(x.prefix, y.prefix)
		}
		if x.klen > 8 && y.klen > 8 {
			if c := bytes.Compare(w.key(int(x.idx))[8:], w.key(int(y.idx))[8:]); c != 0 {
				return c
			}
		} else if x.klen != y.klen {
			return cmp.Compare(x.klen, y.klen)
		}
		return cmp.Compare(x.idx, y.idx)
	})
	idx := make([]int32, len(sk))
	for i, k := range sk {
		idx[i] = k.idx
	}
	return idx
}
