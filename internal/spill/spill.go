// Package spill is the external-memory shuffle substrate: it bounds how
// many shuffle bytes stay resident by flushing sorted, checksummed,
// length-prefixed run files to disk and replaying them through a k-way
// merge, so reducer inputs far larger than RAM stream through a fixed
// byte budget.
//
// Three pieces compose:
//
//   - Writer accumulates records in an in-memory arena and, whenever the
//     arena exceeds the configured budget, sorts it by raw key bytes
//     (stable, so arrival order survives as the tie-break) and flushes it
//     as one run file. A sequence of runs cut this way is totally ordered
//     in arrival time: every record of run i was added before every record
//     of run i+1.
//
//   - MergeTree reduces a long run list to at most fan-in F runs by
//     repeated contiguous F-way merge rounds — the round-efficient merge
//     shape of Goodrich's MapReduce sorting simulation, where each round
//     is one streaming pass. Contiguous grouping plus index tie-breaking
//     preserves the global (key, arrival) order end to end.
//
//   - Groups streams the final merge as per-key groups in key order, the
//     exact order the in-memory sort-based shuffle produces, so a reducer
//     fed from disk is byte-for-byte indistinguishable from one fed from
//     an arena.
//
// Run files carry an FNV-1a checksum verified as they are replayed; a
// mismatch surfaces as *CorruptError naming the file and its tag, which
// the engine maps to re-execution of the task that produced the run (and
// rpcexec's fetch path maps to its bounded-refetch contract).
package spill

import (
	"fmt"
	"os"
	"sync/atomic"

	"mrskyline/internal/obs"
)

// DefaultFanIn is the merge fan-in used when Config.FanIn is zero: up to
// 8 runs are open simultaneously per merge, so a merge round holds at most
// 8 read buffers plus one write buffer resident.
const DefaultFanIn = 8

// Config shapes every spill decision of one job or engine. The zero value
// never spills (Budget 0 means unbounded residency), matching the
// engines' default all-in-RAM behaviour.
type Config struct {
	// Dir is the directory run files are written to; required whenever
	// Budget > 0. Callers typically place a per-job subdirectory here and
	// remove it when the job resolves.
	Dir string
	// Budget is the resident-byte bound: a Writer flushes its arena to a
	// sorted run once the arena's key+value payload exceeds it. 0 disables
	// spilling entirely.
	Budget int64
	// FanIn is the merge fan-in F (default DefaultFanIn): at most F runs
	// are merged per round, and a reduce-side merge never opens more than
	// F runs at once.
	FanIn int
	// Metrics, when non-nil, receives the mr.spill.* series: runs written,
	// spill bytes, merge rounds and fan-in. A nil registry is silently
	// discarded (obs registries are nil-safe).
	Metrics *obs.Registry
	// Stats, when non-nil, accumulates machine-readable totals across
	// every writer and merge attached to this config; RunSpillBench reads
	// them for BENCH_spill.json.
	Stats *Stats
}

// Enabled reports whether this configuration actually spills.
func (c *Config) Enabled() bool { return c != nil && c.Budget > 0 }

func (c *Config) fanIn() int {
	if c == nil || c.FanIn < 2 {
		return DefaultFanIn
	}
	return c.FanIn
}

// Validate checks the configuration as front ends receive it.
func (c *Config) Validate() error {
	if c == nil || c.Budget == 0 {
		return nil
	}
	if c.Budget < 0 {
		return fmt.Errorf("spill: budget must be positive, got %d", c.Budget)
	}
	if c.Dir == "" {
		return fmt.Errorf("spill: a spill directory is required when a budget is set")
	}
	if c.FanIn < 0 || c.FanIn == 1 {
		return fmt.Errorf("spill: merge fan-in must be ≥ 2 (or 0 for the default), got %d", c.FanIn)
	}
	if st, err := os.Stat(c.Dir); err != nil || !st.IsDir() {
		return fmt.Errorf("spill: directory %s is not a usable directory", c.Dir)
	}
	return nil
}

// Stats aggregates spill activity. All fields are updated atomically, so
// one Stats may be shared across concurrent writers and merges.
type Stats struct {
	// RunsWritten counts run files flushed (initial spills and merge-round
	// outputs alike).
	RunsWritten atomic.Int64
	// SpillBytes is the total key+value payload written to runs.
	SpillBytes atomic.Int64
	// MergeRounds counts completed merge rounds across all merge trees.
	MergeRounds atomic.Int64
	// resident tracks currently resident spill bytes (writer arenas plus
	// merge buffers); peak is its high-water mark — the number the
	// beyond-RAM bench holds against the budget.
	resident atomic.Int64
	peak     atomic.Int64
}

// PeakResident returns the high-water mark of resident spill bytes.
func (s *Stats) PeakResident() int64 {
	if s == nil {
		return 0
	}
	return s.peak.Load()
}

// addResident moves the resident gauge by delta and advances the peak.
func (s *Stats) addResident(delta int64) {
	if s == nil {
		return
	}
	v := s.resident.Add(delta)
	for {
		p := s.peak.Load()
		if v <= p || s.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// CorruptError reports a run file whose contents do not match its
// checksum. Tag carries the producer identity the writer recorded (the
// engine stores the map-task id there), so the consumer can re-execute
// the producer instead of merely failing.
type CorruptError struct {
	Path string
	Tag  int
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("spill: run %s (tag %d) failed its checksum", e.Path, e.Tag)
}
