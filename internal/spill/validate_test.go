package spill

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidateSetup(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope")
	file := filepath.Join(dir, "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		budget int64
		dir    string
		wantOK bool
	}{
		{"all zero", 0, "", true},
		{"budget only (default dir)", 1 << 20, "", true},
		{"budget and dir", 1 << 20, dir, true},
		{"negative budget", -1, "", false},
		{"negative budget with dir", -1, dir, false},
		{"dir without budget", 0, dir, false},
		{"missing dir", 1 << 20, missing, false},
		{"dir is a file", 1 << 20, file, false},
	}
	for _, c := range cases {
		err := ValidateSetup(c.budget, c.dir)
		if (err == nil) != c.wantOK {
			t.Errorf("%s: ValidateSetup(%d, %q) = %v, want ok=%v", c.name, c.budget, c.dir, err, c.wantOK)
		}
	}
}
