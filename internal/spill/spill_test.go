package spill

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"testing"
)

// testConfig returns a config spilling into a fresh temp dir.
func testConfig(t testing.TB, budget int64, fanIn int) *Config {
	t.Helper()
	return &Config{Dir: t.TempDir(), Budget: budget, FanIn: fanIn, Stats: &Stats{}}
}

type rec struct{ k, v []byte }

// randomRecs draws n records with small keys drawn from a limited alphabet
// so duplicates (and thus grouping and tie-breaks) actually occur.
func randomRecs(rng *rand.Rand, n int) []rec {
	recs := make([]rec, n)
	for i := range recs {
		k := make([]byte, 1+rng.Intn(12))
		for j := range k {
			k[j] = byte('a' + rng.Intn(4))
		}
		v := make([]byte, rng.Intn(20))
		rng.Read(v)
		// A sprinkle of empty values exercises the zero-length frame path.
		if rng.Intn(10) == 0 {
			v = nil
		}
		recs[i] = rec{k, v}
	}
	return recs
}

// stableByKey returns recs stably sorted by key bytes — the global
// (key, arrival) order every spilled pipeline must reproduce.
func stableByKey(recs []rec) []rec {
	out := make([]rec, len(recs))
	copy(out, recs)
	sort.SliceStable(out, func(i, j int) bool { return bytes.Compare(out[i].k, out[j].k) < 0 })
	return out
}

func writeAll(t *testing.T, cfg *Config, prefix string, tag int, recs []rec) []RunFile {
	t.Helper()
	w := NewWriter(cfg, prefix, tag)
	for _, r := range recs {
		if err := w.Add(r.k, r.v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	runs, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return runs
}

// drain streams every record of runs through a Merger.
func drain(t *testing.T, cfg *Config, runs []RunFile) []rec {
	t.Helper()
	m, err := NewMerger(cfg, runs)
	if err != nil {
		t.Fatalf("NewMerger: %v", err)
	}
	defer m.Close()
	var out []rec
	for {
		k, v, err := m.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec{append([]byte(nil), k...), append([]byte(nil), v...)})
	}
}

func TestRunCodecRoundtrip(t *testing.T) {
	cfg := testConfig(t, 1<<20, 0)
	rng := rand.New(rand.NewSource(1))
	recs := randomRecs(rng, 500)
	runs := writeAll(t, cfg, "codec", 7, recs)
	if len(runs) != 1 {
		t.Fatalf("got %d runs under a large budget, want 1", len(runs))
	}
	rf := runs[0]
	if rf.Tag != 7 {
		t.Errorf("Tag = %d, want 7", rf.Tag)
	}
	if rf.Records != 500 {
		t.Errorf("Records = %d, want 500", rf.Records)
	}
	var wantPayload int64
	for _, r := range recs {
		wantPayload += int64(len(r.k) + len(r.v))
	}
	if rf.PayloadBytes != wantPayload {
		t.Errorf("PayloadBytes = %d, want %d", rf.PayloadBytes, wantPayload)
	}
	got := drain(t, cfg, runs)
	want := stableByKey(recs)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].k, want[i].k) || !bytes.Equal(got[i].v, want[i].v) {
			t.Fatalf("record %d = (%q, %x), want (%q, %x)", i, got[i].k, got[i].v, want[i].k, want[i].v)
		}
	}
}

func TestWriterBudgetCutsRuns(t *testing.T) {
	cfg := testConfig(t, 512, 0)
	rng := rand.New(rand.NewSource(2))
	recs := randomRecs(rng, 400)
	runs := writeAll(t, cfg, "cut", 0, recs)
	if len(runs) < 2 {
		t.Fatalf("got %d runs under a 512-byte budget, want several", len(runs))
	}
	if got := cfg.Stats.RunsWritten.Load(); got != int64(len(runs)) {
		t.Errorf("Stats.RunsWritten = %d, want %d", got, len(runs))
	}
	if peak := cfg.Stats.PeakResident(); peak > 512+64 {
		t.Errorf("peak resident %d greatly exceeds the 512-byte budget", peak)
	}
	// Each run is internally sorted, and the runs partition the records in
	// arrival order: run i's records were all added before run i+1's.
	seen := 0
	for _, rf := range runs {
		r, err := OpenRun(rf, 0)
		if err != nil {
			t.Fatalf("OpenRun: %v", err)
		}
		var prev []byte
		chunk := map[string]int{}
		n := 0
		for {
			k, v, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if prev != nil && bytes.Compare(prev, k) > 0 {
				t.Fatalf("run %s not sorted: %q after %q", rf.Path, k, prev)
			}
			prev = append(prev[:0], k...)
			chunk[string(k)+"\x00"+string(v)]++
			n++
		}
		r.Close()
		// The run's multiset must equal the corresponding arrival chunk.
		for _, rc := range recs[seen : seen+n] {
			key := string(rc.k) + "\x00" + string(rc.v)
			if chunk[key] == 0 {
				t.Fatalf("run %s missing record %q from its arrival chunk", rf.Path, key)
			}
			chunk[key]--
		}
		seen += n
	}
	if seen != len(recs) {
		t.Fatalf("runs hold %d records, want %d", seen, len(recs))
	}
}

// TestMergePreservesGlobalOrder is the core ordering property: records
// pushed through budget-cut runs and a multi-round merge tree come out in
// exactly the stable (key, arrival) order of one in-memory sort — across
// multiple writers concatenated in writer order, as the engine lists a
// reducer's runs mapper by mapper.
func TestMergePreservesGlobalOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig(t, 256, 2)
		var all []rec
		var runs []RunFile
		for w := 0; w < 3; w++ {
			recs := randomRecs(rng, 100+rng.Intn(200))
			runs = append(runs, writeAll(t, cfg, fmt.Sprintf("w%d", w), w, recs)...)
			all = append(all, recs...)
		}
		final, temps, err := MergeTree(cfg, cfg.Dir, "mt", runs)
		if err != nil {
			t.Fatalf("seed %d: MergeTree: %v", seed, err)
		}
		if len(final) > 2 {
			t.Fatalf("seed %d: %d final runs exceed fan-in 2", seed, len(final))
		}
		got := drain(t, cfg, final)
		want := stableByKey(all)
		if len(got) != len(want) {
			t.Fatalf("seed %d: merged %d records, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].k, want[i].k) || !bytes.Equal(got[i].v, want[i].v) {
				t.Fatalf("seed %d: record %d = (%q, %x), want (%q, %x)",
					seed, i, got[i].k, got[i].v, want[i].k, want[i].v)
			}
		}
		removePaths(temps)
	}
}

func TestMergeTreeMultiRound(t *testing.T) {
	cfg := testConfig(t, 128, 2)
	rng := rand.New(rand.NewSource(3))
	runs := writeAll(t, cfg, "many", 0, randomRecs(rng, 600))
	if len(runs) < 8 {
		t.Fatalf("only %d runs; the budget should cut at least 8", len(runs))
	}
	final, temps, err := MergeTree(cfg, cfg.Dir, "mt", runs)
	if err != nil {
		t.Fatalf("MergeTree: %v", err)
	}
	defer removePaths(temps)
	if len(final) > 2 {
		t.Errorf("%d final runs exceed fan-in 2", len(final))
	}
	if rounds := cfg.Stats.MergeRounds.Load(); rounds < 2 {
		t.Errorf("MergeRounds = %d, want ≥ 2 for %d runs at fan-in 2", rounds, len(runs))
	}
	for _, rf := range final {
		if rf.Tag != -1 && len(runs) > 2 {
			t.Errorf("final merge output carries tag %d, want -1", rf.Tag)
		}
	}
	// Source runs must survive the tree (they are the repair input).
	for _, rf := range runs {
		if _, err := os.Stat(rf.Path); err != nil {
			t.Errorf("source run %s deleted by MergeTree: %v", rf.Path, err)
		}
	}
}

func TestMergerRejectsOverFanIn(t *testing.T) {
	cfg := testConfig(t, 64, 2)
	rng := rand.New(rand.NewSource(4))
	runs := writeAll(t, cfg, "over", 0, randomRecs(rng, 200))
	if len(runs) <= 2 {
		t.Skipf("budget produced only %d runs", len(runs))
	}
	if _, err := NewMerger(cfg, runs); err == nil {
		t.Fatal("NewMerger accepted more runs than the fan-in")
	}
}

func TestGroupsStreamsKeyGroups(t *testing.T) {
	cfg := testConfig(t, 200, 0)
	rng := rand.New(rand.NewSource(5))
	recs := randomRecs(rng, 300)
	runs := writeAll(t, cfg, "grp", 0, recs)
	final, temps, err := MergeTree(cfg, cfg.Dir, "mt", runs)
	if err != nil {
		t.Fatalf("MergeTree: %v", err)
	}
	defer removePaths(temps)
	g, err := NewGroups(cfg, final)
	if err != nil {
		t.Fatalf("NewGroups: %v", err)
	}
	defer g.Close()

	// Expected: group the stable-sorted records by key.
	want := stableByKey(recs)
	i := 0
	var prevKey []byte
	total := 0
	for {
		key, vals, ok, err := g.Next()
		if err != nil {
			t.Fatalf("Groups.Next: %v", err)
		}
		if !ok {
			break
		}
		if prevKey != nil && bytes.Compare(prevKey, key) >= 0 {
			t.Fatalf("group keys not strictly increasing: %q then %q", prevKey, key)
		}
		prevKey = append(prevKey[:0], key...)
		for _, v := range vals {
			if i >= len(want) {
				t.Fatal("more grouped values than records")
			}
			if !bytes.Equal(key, want[i].k) || !bytes.Equal(v, want[i].v) {
				t.Fatalf("group record %d = (%q, %x), want (%q, %x)", i, key, v, want[i].k, want[i].v)
			}
			i++
		}
		total += len(vals)
	}
	if total != len(recs) {
		t.Fatalf("groups delivered %d values, want %d", total, len(recs))
	}
}

func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	recs := randomRecs(rng, 200)

	// Flip single bytes at several offsets: inside the magic, the payload
	// and the trailer. Every flip must surface as *CorruptError carrying
	// the producer tag by the time the run is drained.
	cfg := testConfig(t, 1<<20, 0)
	pristine := writeAll(t, cfg, "corrupt", 42, recs)[0]
	raw, err := os.ReadFile(pristine.Path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(runMagic) + 1, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xFF
		if err := os.WriteFile(pristine.Path, bad, 0o600); err != nil {
			t.Fatal(err)
		}
		err := drainErr(cfg, pristine)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: got %v, want *CorruptError", off, err)
		}
		if ce.Tag != 42 {
			t.Errorf("flip at %d: Tag = %d, want 42", off, ce.Tag)
		}
	}
	// Restored, the run reads cleanly again.
	if err := os.WriteFile(pristine.Path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := drainErr(cfg, pristine); err != io.EOF {
		t.Fatalf("pristine run: got %v, want io.EOF", err)
	}
	// Truncation is also corruption.
	if err := os.WriteFile(pristine.Path, raw[:len(raw)-9], 0o600); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if err := drainErr(cfg, pristine); !errors.As(err, &ce) {
		t.Fatalf("truncated run: got %v, want *CorruptError", err)
	}
}

// drainErr reads the run to completion and returns the terminal error
// (io.EOF on a clean drain).
func drainErr(cfg *Config, rf RunFile) error {
	r, err := OpenRun(rf, 0)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		if _, _, err := r.Next(); err != nil {
			return err
		}
	}
}

func TestConfigValidate(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		cfg *Config
		ok  bool
	}{
		{nil, true},
		{&Config{}, true},
		{&Config{Dir: dir, Budget: 1 << 20}, true},
		{&Config{Dir: dir, Budget: 1 << 20, FanIn: 2}, true},
		{&Config{Dir: dir, Budget: -1}, false},
		{&Config{Budget: 1 << 20}, false},
		{&Config{Dir: dir, Budget: 1 << 20, FanIn: 1}, false},
		{&Config{Dir: dir, Budget: 1 << 20, FanIn: -3}, false},
		{&Config{Dir: dir + "/nope", Budget: 1 << 20}, false},
	}
	for i, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%+v): Validate() = %v, want ok=%v", i, c.cfg, err, c.ok)
		}
	}
}

func TestStatsPeakResident(t *testing.T) {
	s := &Stats{}
	s.addResident(100)
	s.addResident(200)
	s.addResident(-150)
	s.addResident(50)
	if got := s.PeakResident(); got != 300 {
		t.Errorf("PeakResident = %d, want 300", got)
	}
	var nilStats *Stats
	nilStats.addResident(5) // must not panic
	if nilStats.PeakResident() != 0 {
		t.Error("nil Stats PeakResident != 0")
	}
}

func BenchmarkRunCodec(b *testing.B) {
	cfg := &Config{Dir: b.TempDir(), Budget: 1 << 30, Stats: &Stats{}}
	rng := rand.New(rand.NewSource(1))
	recs := randomRecs(rng, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriter(cfg, fmt.Sprintf("b%d", i), 0)
		for _, r := range recs {
			if err := w.Add(r.k, r.v); err != nil {
				b.Fatal(err)
			}
		}
		runs, err := w.Finish()
		if err != nil {
			b.Fatal(err)
		}
		r, err := OpenRun(runs[0], 0)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, _, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
		removeRuns(runs)
	}
}

func BenchmarkSpillMerge(b *testing.B) {
	dir := b.TempDir()
	cfg := &Config{Dir: dir, Budget: 64 << 10, FanIn: 4, Stats: &Stats{}}
	rng := rand.New(rand.NewSource(1))
	recs := randomRecs(rng, 50_000)
	runs, err := func() ([]RunFile, error) {
		w := NewWriter(cfg, "bench", 0)
		for _, r := range recs {
			if err := w.Add(r.k, r.v); err != nil {
				return nil, err
			}
		}
		return w.Finish()
	}()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		final, temps, err := MergeTree(cfg, dir, fmt.Sprintf("mt%d", i), runs)
		if err != nil {
			b.Fatal(err)
		}
		m, err := NewMerger(cfg, final)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, _, err := m.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		m.Close()
		removePaths(temps)
		if n != len(recs) {
			b.Fatalf("merged %d records, want %d", n, len(recs))
		}
	}
}
