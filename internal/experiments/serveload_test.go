package experiments_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mrskyline/internal/experiments"
)

func TestServeLoad(t *testing.T) {
	res, err := experiments.ServeLoad(experiments.ServeLoadConfig{
		Queries: 24,
		Workers: 6,
		Card:    200,
		Dim:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.ThroughputQPS <= 0 {
		t.Errorf("throughput = %v, want > 0", res.ThroughputQPS)
	}
	if res.LatencyP50Ms <= 0 || res.LatencyP99Ms < res.LatencyP50Ms {
		t.Errorf("latency percentiles inconsistent: p50=%v p99=%v", res.LatencyP50Ms, res.LatencyP99Ms)
	}
	if res.Admitted < int64(res.Queries) {
		t.Errorf("admitted = %d, want ≥ %d", res.Admitted, res.Queries)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := experiments.WriteServeBenchJSON(path, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back experiments.ServeLoadResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("BENCH_serve.json does not round-trip: %v", err)
	}
	if back.Queries != res.Queries || back.ThroughputQPS != res.ThroughputQPS {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, res)
	}
}

// TestServeLoadChurn is the update-heavy serving benchmark at smoke
// scale: the churn phase must populate the maintained-vs-recompute
// fields, keep cardinality stable, and show the maintained read beating
// a full recompute.
func TestServeLoadChurn(t *testing.T) {
	res, err := experiments.ServeLoad(experiments.ServeLoadConfig{
		Queries:       6,
		Workers:       3,
		Card:          400,
		Dim:           3,
		ChurnFraction: 0.01,
		DeltaBatches:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnFraction != 0.01 || res.DeltaBatches != 4 {
		t.Fatalf("churn config not echoed: %+v", res)
	}
	// 1% of 400 = 4 ops per batch × 4 batches.
	if res.DeltaOps != 16 {
		t.Errorf("delta ops = %d, want 16", res.DeltaOps)
	}
	// One generation per batch on top of the seed publish.
	if res.FinalGen != 1+uint64(res.DeltaBatches) {
		t.Errorf("final gen = %d, want %d", res.FinalGen, 1+res.DeltaBatches)
	}
	if res.FinalSkylineSize <= 0 {
		t.Errorf("final skyline size = %d, want > 0", res.FinalSkylineSize)
	}
	if res.RecomputeP50Ms <= 0 {
		t.Errorf("recompute p50 = %v, want > 0", res.RecomputeP50Ms)
	}
	// The whole point: a maintained read is much cheaper than recomputing.
	if res.MaintainedSpeedupP50 < 5 {
		t.Errorf("maintained speedup p50 = %v, want ≥ 5", res.MaintainedSpeedupP50)
	}

	// Churn fields survive the BENCH_serve.json round trip.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := experiments.WriteServeBenchJSON(path, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back experiments.ServeLoadResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.MaintainedSpeedupP50 != res.MaintainedSpeedupP50 || back.FinalGen != res.FinalGen {
		t.Errorf("churn fields lost in round trip: %+v vs %+v", back, res)
	}
}

func TestServeLoadChurnValidation(t *testing.T) {
	if _, err := experiments.ServeLoad(experiments.ServeLoadConfig{ChurnFraction: 1.5}); err == nil {
		t.Error("churn fraction > 1 accepted")
	}
	if _, err := experiments.ServeLoad(experiments.ServeLoadConfig{ChurnFraction: -0.1}); err == nil {
		t.Error("negative churn fraction accepted")
	}
}
