package experiments_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mrskyline/internal/experiments"
)

func TestServeLoad(t *testing.T) {
	res, err := experiments.ServeLoad(experiments.ServeLoadConfig{
		Queries: 24,
		Workers: 6,
		Card:    200,
		Dim:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.ThroughputQPS <= 0 {
		t.Errorf("throughput = %v, want > 0", res.ThroughputQPS)
	}
	if res.LatencyP50Ms <= 0 || res.LatencyP99Ms < res.LatencyP50Ms {
		t.Errorf("latency percentiles inconsistent: p50=%v p99=%v", res.LatencyP50Ms, res.LatencyP99Ms)
	}
	if res.Admitted < int64(res.Queries) {
		t.Errorf("admitted = %d, want ≥ %d", res.Admitted, res.Queries)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := experiments.WriteServeBenchJSON(path, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back experiments.ServeLoadResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("BENCH_serve.json does not round-trip: %v", err)
	}
	if back.Queries != res.Queries || back.ThroughputQPS != res.ThroughputQPS {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, res)
	}
}
