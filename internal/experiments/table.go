package experiments

import (
	"fmt"
	"strings"
)

// Table is a figure's data in row/column form — the series the paper plots.
type Table struct {
	// Title identifies the table (e.g. "Figure 7(c): runtime [s] vs
	// dimensionality, independent, card=40000").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one row per sweep point.
	Rows [][]string
}

// Add appends one row; the cell count must match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, header has %d", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed:
// cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell returns the value at (row, column name), or "" when out of range.
func (t *Table) Cell(row int, column string) string {
	if row < 0 || row >= len(t.Rows) {
		return ""
	}
	for i, c := range t.Columns {
		if c == column {
			return t.Rows[row][i]
		}
	}
	return ""
}
