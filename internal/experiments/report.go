package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ShapeCheck is one qualitative property a figure is expected to exhibit —
// the reproduction target. Absolute numbers differ from the paper's
// testbed by construction; these checks encode who wins, what scales, and
// where the paper's DNF exclusions bite.
type ShapeCheck struct {
	// Figure is the experiment id the check applies to (e.g. "fig8").
	Figure string
	// Name is a short label.
	Name string
	// Claim quotes or paraphrases the paper's finding.
	Claim string
	// Eval inspects the figure's tables; ok reports whether the shape
	// holds, detail explains the observation.
	Eval func(res *FigureResult) (ok bool, detail string)
}

// cellFloat parses a runtime cell; DNF parses as +inf (it lost by
// definition), empty as an error.
func cellFloat(tab *Table, row int, col string) (float64, error) {
	v := tab.Cell(row, col)
	if v == "DNF" {
		return inf, nil
	}
	if v == "" {
		return 0, fmt.Errorf("missing cell (%d, %s)", row, col)
	}
	return strconv.ParseFloat(v, 64)
}

var inf = 1e300

// ShapeChecks returns the reproduction criteria for every figure.
func ShapeChecks() []ShapeCheck {
	return []ShapeCheck{
		{
			Figure: "fig7",
			Name:   "gpsrs-best-independent",
			Claim:  `"For independent data distribution, MR-GPSRS performs the best" — in particular it never loses to MR-GPMRS, whose multiple reducers do not pay off on small skylines.`,
			Eval: func(res *FigureResult) (bool, string) {
				worst := 0.0
				for _, tab := range res.Tables {
					for i := range tab.Rows {
						s, err1 := cellFloat(tab, i, AlgoGPSRS)
						m, err2 := cellFloat(tab, i, AlgoGPMRS)
						if err1 != nil || err2 != nil {
							return false, "unparseable cells"
						}
						if r := s / m; r > worst {
							worst = r
						}
					}
				}
				// Allow measurement noise: GPSRS within 25% of GPMRS on
				// every point, and never slower by more.
				return worst <= 1.25, fmt.Sprintf("max GPSRS/GPMRS runtime ratio %.2f (want ≤ 1.25)", worst)
			},
		},
		{
			Figure: "fig8",
			Name:   "baselines-collapse-high-dim-anti",
			Claim:  `"MR-Angle and MR-BNL cannot terminate in a reasonable period of time for higher dimensionalities" on anti-correlated data (Figures 8(b), 8(d)), while MR-GPMRS scales.`,
			Eval: func(res *FigureResult) (bool, string) {
				if len(res.Tables) < 2 {
					return false, "missing high-cardinality table"
				}
				tab := res.Tables[1] // the (c,d) panel: high cardinality
				for i := range tab.Rows {
					dim, _ := strconv.Atoi(tab.Cell(i, "dim"))
					if dim < 7 {
						continue
					}
					g, err1 := cellFloat(tab, i, AlgoGPMRS)
					b, err2 := cellFloat(tab, i, AlgoBNL)
					a, err3 := cellFloat(tab, i, AlgoAngle)
					if err1 != nil || err2 != nil || err3 != nil {
						return false, "unparseable cells"
					}
					if g >= b || g >= a {
						return false, fmt.Sprintf("at d=%d GPMRS (%.3f) does not beat baselines (%.3f, %.3f)", dim, g, b, a)
					}
				}
				return true, "MR-GPMRS beats (or outlives) both baselines for every d ≥ 7"
			},
		},
		{
			Figure: "fig9",
			Name:   "gpmrs-survives-8d-anti-cardinality",
			Claim:  `Figure 9(d): on 8-d anti-correlated data MR-GPMRS handles every cardinality, while MR-GPSRS "fails to terminate in a reasonable period of time for the highest cardinalities" and the baselines stop even earlier.`,
			Eval: func(res *FigureResult) (bool, string) {
				if len(res.Tables) < 4 {
					return false, "missing panel (d)"
				}
				tab := res.Tables[3]
				for i := range tab.Rows {
					if g, err := cellFloat(tab, i, AlgoGPMRS); err != nil || g >= inf {
						return false, fmt.Sprintf("GPMRS missing at row %d", i)
					}
				}
				last := len(tab.Rows) - 1
				s, _ := cellFloat(tab, last, AlgoGPSRS)
				b, _ := cellFloat(tab, last, AlgoBNL)
				if s < inf && b < inf {
					// At heavily scaled-down cardinalities nothing DNFs;
					// then GPMRS must at least win outright at the top.
					g, _ := cellFloat(tab, last, AlgoGPMRS)
					return g < s && g < b, fmt.Sprintf("no DNFs at this scale; GPMRS=%.3f vs GPSRS=%.3f, BNL=%.3f at top cardinality", g, s, b)
				}
				return true, "single-reducer algorithms DNF at the highest cardinalities, MR-GPMRS completes all"
			},
		},
		{
			Figure: "fig10",
			Name:   "reducers-help-anti-not-independent",
			Claim:  `"For the independent data set, increasing reducers does not improve the skyline computation runtime. In contrast, more reducers clearly shortens the runtime for computing skyline on the anti-correlated data set", with the largest improvement from 1 to 5.`,
			Eval: func(res *FigureResult) (bool, string) {
				// The reducer count where the gain lands depends on the
				// group-merge balance and the hardware (the paper saw the
				// biggest step at 1→5 on its cluster); the claim checked
				// here is the distribution asymmetry itself: some
				// multi-reducer configuration clearly beats the single
				// reducer on anti-correlated data, while none meaningfully
				// beats it on independent data.
				tab := res.Tables[0]
				a1, err1 := cellFloat(tab, 0, "anticorrelated")
				i1, err2 := cellFloat(tab, 0, "independent")
				if err1 != nil || err2 != nil {
					return false, "unparseable cells"
				}
				bestAnti, bestAntiR := a1, 1
				iLast := i1
				for row := 1; row < len(tab.Rows); row++ {
					a, err1 := cellFloat(tab, row, "anticorrelated")
					i, err2 := cellFloat(tab, row, "independent")
					if err1 != nil || err2 != nil {
						return false, "unparseable cells"
					}
					if a < bestAnti {
						bestAnti = a
						bestAntiR, _ = strconv.Atoi(tab.Cell(row, "reducers"))
					}
					iLast = i
				}
				antiImproves := bestAnti < a1
				indepFlat := iLast < 1.5*i1
				return antiImproves && indepFlat,
					fmt.Sprintf("anti: 1 reducer %.3f → best %.3f at r=%d; independent 1→17: %.3f→%.3f",
						a1, bestAnti, bestAntiR, i1, iLast)
			},
		},
		{
			Figure: "fig11",
			Name:   "estimates-upper-bound-measured",
			Claim:  `"the estimated cost is higher than the real cost in every case" — the Section 6 model upper-bounds the measured partition-wise comparisons for mappers and reducers on both distributions.`,
			Eval: func(res *FigureResult) (bool, string) {
				for _, tab := range res.Tables {
					for i := range tab.Rows {
						for _, pair := range [][2]string{
							{"measured(indep)", "estimate(indep)"},
							{"measured(anti)", "estimate(anti)"},
						} {
							m, err1 := strconv.ParseInt(tab.Cell(i, pair[0]), 10, 64)
							e, err2 := strconv.ParseInt(tab.Cell(i, pair[1]), 10, 64)
							if err1 != nil || err2 != nil {
								return false, "unparseable cells"
							}
							if m > e {
								return false, fmt.Sprintf("%s row %d: measured %d > estimate %d", tab.Title, i, m, e)
							}
						}
					}
				}
				return true, "estimate ≥ measured at every point"
			},
		},
		{
			Figure: "ablation-prune",
			Name:   "pruning-never-hurts-shuffle",
			Claim:  "Bitstring pruning (Equation 2) can only remove data before the shuffle; shuffle volume with pruning is never larger than without.",
			Eval: func(res *FigureResult) (bool, string) {
				tab := res.Tables[0]
				for i := range tab.Rows {
					p, err1 := strconv.ParseInt(tab.Cell(i, "prunedShuffleB"), 10, 64)
					u, err2 := strconv.ParseInt(tab.Cell(i, "unprunedShuffleB"), 10, 64)
					if err1 != nil || err2 != nil {
						return false, "unparseable cells"
					}
					if p > u {
						return false, fmt.Sprintf("row %d: pruned shuffle %d > unpruned %d", i, p, u)
					}
				}
				return true, "pruned shuffle ≤ unpruned shuffle everywhere"
			},
		},
		{
			Figure: "ablation-hybrid",
			Name:   "hybrid-tracks-the-winner",
			Claim:  "The future-work hybrid must never be meaningfully worse than the better of MR-GPSRS and MR-GPMRS (it runs the same jobs after a free decision).",
			Eval: func(res *FigureResult) (bool, string) {
				tab := res.Tables[0]
				worst := 0.0
				for i := range tab.Rows {
					s, err1 := cellFloat(tab, i, "GPSRS[s]")
					m, err2 := cellFloat(tab, i, "GPMRS[s]")
					h, err3 := cellFloat(tab, i, "Hybrid[s]")
					if err1 != nil || err2 != nil || err3 != nil {
						return false, "unparseable cells"
					}
					best := s
					if m < best {
						best = m
					}
					if r := h / best; r > worst {
						worst = r
					}
				}
				return worst <= 1.25, fmt.Sprintf("max Hybrid/best ratio %.2f (want ≤ 1.25)", worst)
			},
		},
	}
}

// Report runs every figure and shape check and renders a Markdown document
// recording paper-vs-measured for each one. It is how EXPERIMENTS.md is
// generated.
func Report(s Setup, w io.Writer) error {
	s = s.withDefaults()
	fmt.Fprintf(w, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(w, "Generated by `cmd/skyreport`. Setup: %d nodes × %d slots, %d reducers (0 = one per node), seed %d, scale %.3g (paper cardinalities × scale, floor 1000)",
		s.Nodes, s.SlotsPerNode, s.Reducers, s.Seed, s.Scale)
	if s.NoSim {
		fmt.Fprintf(w, ", host wall-clock times.\n\n")
	} else {
		fmt.Fprintf(w, ", simulated cluster times (see `mapreduce.SimConfig`).\n\n")
	}
	fmt.Fprintf(w, "Absolute numbers are not comparable to the paper's 13-machine Hadoop\ncluster; each figure is reproduced by its *shape*, verified by the checks\nbelow (also enforced in `internal/experiments` tests at test scale).\n\n")

	checksByFigure := map[string][]ShapeCheck{}
	for _, c := range ShapeChecks() {
		checksByFigure[c.Figure] = append(checksByFigure[c.Figure], c)
	}

	allPass := true
	for _, name := range FigureNames() {
		start := time.Now()
		res, err := RunFigure(name, s)
		if err != nil {
			return fmt.Errorf("experiments: report: %s: %w", name, err)
		}
		fmt.Fprintf(w, "## %s (`%s`, ran in %.1fs)\n\n", res.Name, name, time.Since(start).Seconds())
		for _, tab := range res.Tables {
			fmt.Fprintf(w, "```\n%s```\n\n", tab.String())
		}
		for _, check := range checksByFigure[name] {
			ok, detail := check.Eval(res)
			status := "PASS"
			if !ok {
				status = "FAIL"
				allPass = false
			}
			fmt.Fprintf(w, "- **[%s] %s** — %s\n  Measured: %s.\n", status, check.Name, check.Claim, detail)
		}
		fmt.Fprintln(w)
	}
	if allPass {
		fmt.Fprintf(w, "**All shape checks passed.**\n")
	} else {
		fmt.Fprintf(w, "**Some shape checks failed** — see FAIL entries above; scale-sensitive\nshapes may need a larger `-scale`.\n")
	}
	return nil
}

// reportContainsFail is a test hook: it scans rendered report text for
// failed checks.
func reportContainsFail(report string) bool {
	return strings.Contains(report, "[FAIL]")
}
